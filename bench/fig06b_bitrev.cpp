// Figure 6b: latency vs offered load under bit-reversal permutation
// traffic (active endpoints = largest power of two, paper Section V-B).

#include "bench_common.hpp"

int main() {
  slimfly::bench::run_fig6("fig06b", "Bit reversal traffic (Figure 6b)",
                           "bitrev");
  return 0;
}
