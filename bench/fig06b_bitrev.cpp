// Figure 6b: latency vs offered load under bit-reversal permutation
// traffic (active endpoints = largest power of two, paper Section V-B).

#include "bench_common.hpp"

int main() {
  using namespace slimfly;
  bench::run_fig6("fig06b", "Bit reversal traffic (Figure 6b)",
                  [](const Topology& topo) {
                    return sim::make_bit_reversal(topo.num_endpoints());
                  });
  return 0;
}
