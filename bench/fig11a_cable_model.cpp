// Figures 11a / 12a / 13a: cable cost models — $/Gb/s vs length for
// electric and optical cables across the three cable families.

#include "bench_common.hpp"

#include "cost/cables.hpp"

namespace slimfly::bench {
namespace {

void run() {
  Table table({"cable_family", "type", "length_m", "$_per_gbps", "$_per_cable"});
  for (const auto& model :
       {cost::cable_fdr10(), cost::cable_qdr56(), cost::cable_elpeus10()}) {
    for (int len : {1, 2, 5, 10, 15, 20, 30}) {
      table.add_row({model.name, "electric", Table::num(static_cast<std::int64_t>(len)),
                     Table::num(model.electric_cost(len) / model.rate_gbps, 2),
                     Table::num(model.electric_cost(len), 2)});
      table.add_row({model.name, "optical", Table::num(static_cast<std::int64_t>(len)),
                     Table::num(model.optical_cost(len) / model.rate_gbps, 2),
                     Table::num(model.optical_cost(len), 2)});
    }
    table.add_row({model.name, "crossover", Table::num(model.crossover_meters(), 1),
                   "-", "-"});
  }
  print_table("fig11a", "Cable cost models (Figures 11a/12a/13a)", table);
}

}  // namespace
}  // namespace slimfly::bench

int main() {
  slimfly::bench::run();
  return 0;
}
