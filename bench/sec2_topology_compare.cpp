// Section 2/7 cross-topology shootout: Slim Fly vs the alternative
// low-diameter designs the paper argues against (random-shortcut DLN, Long
// Hop Cayley graphs, random port augmentation) plus Dragonfly, at matched
// endpoint counts under random and adversarial traffic.
//
// Thin wrapper over the checked-in examples/suites/cmp_lowdiameter.json
// suite — the grid lives in the file, not here. Equivalent invocations:
//
//   ./build/sec2_topology_compare                 # default (small) scale
//   ./build/sec2_topology_compare paper           # the paper-size networks
//   ./build/sweep --config examples/suites/cmp_lowdiameter.json [--scale s]

#include <fstream>

#include "bench_common.hpp"
#include "exp/suite.hpp"

namespace {

// The binary runs from build/ in the dev loop and from anywhere in CI, so
// probe the usual relative locations before the configured source tree.
std::string find_suite() {
  const char* candidates[] = {
      "examples/suites/cmp_lowdiameter.json",
      "../examples/suites/cmp_lowdiameter.json",
      SLIMFLY_SOURCE_DIR "/examples/suites/cmp_lowdiameter.json",
  };
  for (const char* path : candidates) {
    if (std::ifstream(path).good()) return path;
  }
  throw std::invalid_argument(
      "cannot find examples/suites/cmp_lowdiameter.json (run from the repo "
      "root or the build directory)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slimfly;
  try {
    exp::Suite suite = exp::load_suite_file(find_suite());
    std::string scale = argc > 1 ? argv[1] : "";
    if (scale.empty() && bench::paper_scale()) scale = "paper";
    exp::ExperimentSpec spec = exp::suite_to_spec(suite, scale);
    spec.config.intra_threads = exp::intra_threads_from_env();
    bench::run_experiment(
        spec, "Low-diameter topology comparison (Section 2/7 shootout)");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
