// Table II: network diameters — formula vs measured for every topology.

#include "bench_common.hpp"

#include "analysis/metrics.hpp"
#include "topo/dln.hpp"
#include "topo/flatbutterfly.hpp"
#include "topo/hypercube.hpp"
#include "topo/longhop.hpp"
#include "topo/torus.hpp"

namespace slimfly::bench {
namespace {

void run() {
  Table table({"topology", "routers", "formula_D", "measured_D"});
  auto row = [&](const Topology& topo, const std::string& formula) {
    table.add_row({topo.symbol(),
                   Table::num(static_cast<std::int64_t>(topo.num_routers())), formula,
                   Table::num(static_cast<std::int64_t>(analysis::diameter(topo.graph())))});
  };

  Torus t3({8, 8, 8});
  row(t3, Table::num(static_cast<std::int64_t>(t3.diameter())));
  Torus t5({3, 3, 3, 3, 3});
  row(t5, Table::num(static_cast<std::int64_t>(t5.diameter())));
  Hypercube hc(9);
  row(hc, "9");
  LongHop lh(9, 6);
  row(lh, "4-6");
  FatTree3 ft(8);
  row(ft, "4");
  FlattenedButterfly fbf(3, 5);
  row(fbf, "3");
  auto df = Dragonfly::balanced(3);
  row(*df, "3");
  Dln dln(338, 14, 3);
  row(dln, "3-10");
  sf::SlimFlyMMS sf_small(7);
  row(sf_small, "2");
  sf::SlimFlyMMS sf_big(paper_scale() ? 19 : 11);
  row(sf_big, "2");

  print_table("table02", "Topology diameters (Table II)", table);
}

}  // namespace
}  // namespace slimfly::bench

int main() {
  slimfly::bench::run();
  return 0;
}
