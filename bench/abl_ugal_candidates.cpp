// Ablation (paper Sections IV-C1/IV-C2): the number of random Valiant
// candidates UGAL draws per packet. The paper compared 2-10 and found 4
// empirically best for average latency; this bench regenerates the sweep
// on uniform and worst-case traffic.
//
// Declarative since the suite-file PR: the candidate count rides the
// routing spec string ("UGAL-L:c=8"), so the whole ablation is one
// ExperimentSpec on the engine. The same grid is checked in as
// examples/suites/abl_ugal.json for `sweep --config`.

#include "bench_common.hpp"

int main() {
  using namespace slimfly;
  const std::string topo =
      bench::paper_scale() ? "slimfly:q=19" : "slimfly:q=7";

  exp::ExperimentSpec spec;
  spec.name = "abl_ugal";
  spec.loads = {0.1, 0.3, 0.5, 0.7, 0.9};
  spec.config = bench::make_sim_config();
  for (int candidates : {1, 2, 4, 8}) {
    for (const char* mode : {"UGAL-L", "UGAL-G"}) {
      const std::string routing =
          std::string(mode) + ":c=" + std::to_string(candidates);
      const std::string tag =
          std::string(mode) + "-c" + std::to_string(candidates);
      spec.series.push_back({topo, routing, "uniform", tag + "-rand", {}});
      spec.series.push_back({topo, routing, "worst-sf", tag + "-worst", {}});
    }
  }

  bench::run_experiment(spec,
                        "UGAL candidate-count ablation (Section IV-C)");
  return 0;
}
