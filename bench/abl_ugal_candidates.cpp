// Ablation (paper Sections IV-C1/IV-C2): the number of random Valiant
// candidates UGAL draws per packet. The paper compared 2-10 and found 4
// empirically best for average latency; this bench regenerates the sweep
// on uniform and worst-case traffic.

#include "bench_common.hpp"

#include "sim/routing/ugal.hpp"

namespace slimfly::bench {
namespace {

void run() {
  sf::SlimFlyMMS topo(paper_scale() ? 19 : 7);
  sim::SimConfig cfg = make_sim_config();
  auto dist = std::make_shared<sim::DistanceTable>(topo.graph());
  Table table = latency_table();

  for (int candidates : {1, 2, 4, 8}) {
    for (auto mode : {sim::UgalMode::Local, sim::UgalMode::Global}) {
      sim::UgalRouting routing(topo, *dist, mode, candidates);
      std::string tag = routing.name() + "-c" + std::to_string(candidates);
      std::vector<double> loads = {0.1, 0.3, 0.5, 0.7, 0.9};
      sweep_into_table(table, tag + "-rand", topo, routing,
                       [&] { return sim::make_uniform(topo.num_endpoints()); },
                       cfg, loads);
      sweep_into_table(table, tag + "-worst", topo, routing,
                       [&] { return sim::make_worst_case_sf(topo); }, cfg,
                       loads);
      std::cout << "  [abl_ugal] " << tag << " done\n" << std::flush;
    }
  }
  print_table("abl_ugal", "UGAL candidate-count ablation (Section IV-C)", table);
}

}  // namespace
}  // namespace slimfly::bench

int main() {
  slimfly::bench::run();
  return 0;
}
