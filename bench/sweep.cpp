// Generic spec-driven sweep driver: any (topology x routing x traffic x
// load) scenario from the command line, no new binary required.
//
//   sweep --topo torus:dims=8x8x8 --traffic stencil3d
//   sweep --topo slimfly:q=7 --topo hypercube:n=9 \
//         --routing MIN --routing UGAL-L --traffic uniform --loads 0.2,0.5,0.8
//   sweep --topo slimfly:q=19 --loads 0.5 --intra 0   # one big point,
//                                                     # router-parallel
//   sweep --list
//
// Axes repeat; the engine runs the compatible cross-product over all cores
// (SF_THREADS to override) and writes BENCH_<name>.json. The spec-string
// grammar for every axis is documented in docs/SPEC_GRAMMAR.md.

#include <algorithm>
#include <cstring>
#include <sstream>

#include "bench_common.hpp"

namespace {

std::vector<double> parse_loads(const std::string& csv) {
  std::vector<double> loads;
  std::stringstream ss(csv);
  std::string part;
  while (std::getline(ss, part, ',')) {
    std::size_t pos = 0;
    double v = std::stod(part, &pos);
    if (pos != part.size() || v <= 0.0) {
      throw std::invalid_argument("malformed load \"" + part +
                                  "\" (must be a positive number)");
    }
    loads.push_back(v);
  }
  if (loads.empty()) throw std::invalid_argument("empty load list");
  // The engine's saturation truncation assumes an ascending grid; a
  // descending list would silently drop valid low-load points.
  std::sort(loads.begin(), loads.end());
  return loads;
}

void print_registries() {
  using namespace slimfly;
  std::cout << "topologies (topo::make specs):\n";
  for (const auto& spec : topo::example_specs())
    std::cout << "  " << spec << "  (family "
              << topo::parse_spec(spec).family << ")\n";
  std::cout << "routings:\n ";
  for (const auto& name : sim::routing_names()) std::cout << " " << name;
  std::cout << "\ntraffics:\n ";
  for (const auto& name : sim::traffic_names()) std::cout << " " << name;
  std::cout << "\n";
}

int usage(const char* argv0, int exit_code) {
  std::cout
      << "usage: " << argv0
      << " [--name TAG] [--topo SPEC]... [--routing NAME]...\n"
         "       [--traffic NAME]... [--loads L1,L2,...] [--seed N]\n"
         "       [--intra N] [--no-truncate] [--list] [--help]\n"
         "defaults: the Section V evaluation trio, MIN routing, uniform\n"
         "traffic, the Figure 6 load grid, SF_BENCH_SCALE-dependent cycles.\n"
         "--intra N: router-parallel workers inside each point (0 = auto\n"
         "  split with the across-point level; default SF_INTRA_THREADS or\n"
         "  1). Results are bit-identical for every worker count.\n"
         "env: SF_THREADS (across-point workers, 0/unset = all cores),\n"
         "  SF_INTRA_THREADS (as --intra), SF_BENCH_SCALE (small|paper).\n"
         "Spec-string grammar for every axis: docs/SPEC_GRAMMAR.md;\n"
         "paper->code map and engine internals: docs/ARCHITECTURE.md.\n";
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slimfly;

  std::string name = "sweep";
  std::vector<std::string> topos, routings, traffics;
  std::vector<double> loads = bench::bench_loads();
  sim::SimConfig cfg = bench::make_sim_config();
  bool truncate = true;

  auto next_arg = [&](int& i) -> const char* {
    if (i + 1 >= argc) throw std::invalid_argument("missing value for flag");
    return argv[++i];
  };
  try {
    for (int i = 1; i < argc; ++i) {
      if (!std::strcmp(argv[i], "--list")) {
        print_registries();
        return 0;
      } else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
        return usage(argv[0], 0);
      } else if (!std::strcmp(argv[i], "--name")) {
        name = next_arg(i);
      } else if (!std::strcmp(argv[i], "--topo")) {
        topos.push_back(next_arg(i));
      } else if (!std::strcmp(argv[i], "--routing")) {
        routings.push_back(next_arg(i));
      } else if (!std::strcmp(argv[i], "--traffic")) {
        traffics.push_back(next_arg(i));
      } else if (!std::strcmp(argv[i], "--loads")) {
        loads = parse_loads(next_arg(i));
      } else if (!std::strcmp(argv[i], "--seed")) {
        std::string value = next_arg(i);
        // Digits only: stoull would silently wrap a negative to a huge seed.
        if (value.empty() ||
            value.find_first_not_of("0123456789") != std::string::npos) {
          throw std::invalid_argument("malformed seed \"" + value + "\"");
        }
        cfg.seed = std::stoull(value);
      } else if (!std::strcmp(argv[i], "--intra")) {
        std::string value = next_arg(i);
        // Same bounds as the SF_INTRA_THREADS policy: digits only, and a
        // cap that keeps absurd counts from wrapping through the int cast.
        if (value.empty() || value.size() > 4 ||
            value.find_first_not_of("0123456789") != std::string::npos ||
            std::stoul(value) > 4096) {
          throw std::invalid_argument("malformed --intra \"" + value +
                                      "\" (want 0..4096; 0 = auto)");
        }
        cfg.intra_threads = static_cast<int>(std::stoul(value));
      } else if (!std::strcmp(argv[i], "--no-truncate")) {
        truncate = false;
      } else {
        return usage(argv[0], 2);
      }
    }

    if (topos.empty()) topos = bench::eval_trio_specs();
    if (routings.empty()) routings = {"MIN"};
    if (traffics.empty()) traffics = {"uniform"};

    auto spec = exp::ExperimentSpec::cross(name, topos, routings, traffics,
                                           loads, cfg);
    spec.truncate_at_saturation = truncate;
    if (spec.series.empty()) {
      std::cerr << "no compatible (topology, routing, traffic) combination\n";
      return 1;
    }
    bench::run_experiment(spec, "command-line sweep");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
