// Generic spec-driven sweep driver: any (topology x routing x traffic x
// load) scenario from the command line or a suite file, no new binary
// required.
//
//   sweep --topo torus:dims=8x8x8 --traffic stencil3d
//   sweep --topo slimfly:q=7 --topo hypercube:n=9
//         --routing MIN --routing UGAL-L:c=8 --traffic uniform --loads 0.2,0.5
//   sweep --config examples/suites/fig06a.json --scale small
//   sweep --name t --topo slimfly:q=5 --emit-config t.json   # export, no run
//   sweep diff tests/golden/BENCH_golden_mini.json BENCH_golden_mini.json
//   sweep diff --against HEAD~1 BENCH_hotpath.json   # old side from git
//   sweep --list
//
// Axes repeat; the engine runs the compatible cross-product over all cores
// (SF_THREADS to override) and writes BENCH_<name>.json. The spec-string
// grammar and the suite-file schema are documented in docs/SPEC_GRAMMAR.md.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "bench_common.hpp"
#include "exp/diff.hpp"
#include "exp/suite.hpp"

namespace {

std::vector<double> parse_loads(const std::string& csv) {
  std::vector<double> loads;
  std::stringstream ss(csv);
  std::string part;
  while (std::getline(ss, part, ',')) {
    std::size_t pos = 0;
    double v = std::stod(part, &pos);
    if (pos != part.size() || v <= 0.0) {
      throw std::invalid_argument("malformed load \"" + part +
                                  "\" (must be a positive number)");
    }
    loads.push_back(v);
  }
  if (loads.empty()) throw std::invalid_argument("empty load list");
  // The engine's saturation truncation assumes an ascending grid; a
  // descending list would silently drop valid low-load points.
  std::sort(loads.begin(), loads.end());
  return loads;
}

double parse_tolerance(const std::string& value, const char* flag) {
  std::size_t pos = 0;
  double v = std::stod(value, &pos);
  // stod happily parses "nan" (which fails every comparison) and "inf"
  // (which would wave every regression through) — both defeat the gate.
  if (pos != value.size() || !std::isfinite(v) || v < 0.0) {
    throw std::invalid_argument(std::string("malformed ") + flag + " \"" +
                                value + "\" (want a finite number >= 0)");
  }
  return v;
}

void print_registries() {
  using namespace slimfly;
  std::cout << "topologies (topo::make specs):\n";
  for (const auto& spec : topo::example_specs())
    std::cout << "  " << spec << "  (family "
              << topo::parse_spec(spec).family << ")\n";
  std::cout << "routings:\n ";
  for (const auto& name : sim::routing_names()) std::cout << " " << name;
  std::cout << "\n  (UGAL-L/UGAL-G take :c=<1..64>, VAL takes"
               " :hoplimit=<1..255>)\n";
  std::cout << "traffics:\n ";
  for (const auto& name : sim::traffic_names()) std::cout << " " << name;
  std::cout << "\n  parameterized workloads (docs/SPEC_GRAMMAR.md):\n"
               "    burst:on=,off=,mult=[,seed=][,base=]\n"
               "    hotspot:frac=,heat=[,seed=][,base=]\n"
               "    allreduce:ranks=[,algo=ring|tree]\n"
               "    trace:file=PATH.json\n";
}

int usage(const char* argv0, int exit_code) {
  std::cout
      << "usage: " << argv0
      << " [--name TAG] [--topo SPEC]... [--routing SPEC]...\n"
         "       [--traffic NAME]... [--loads L1,L2,...] [--seed N]\n"
         "       [--intra N] [--engine NAME] [--oracle NAME]\n"
         "       [--scheduler NAME] [--no-truncate] [--list] [--help]\n"
         "   or: " << argv0
      << " --config SUITE.json [--scale NAME] [--name TAG]\n"
         "       [--seed N] [--intra N] [--engine NAME] [--oracle NAME]\n"
         "       [--scheduler NAME] [--no-truncate]\n"
         "   or: " << argv0
      << " ... --emit-config PATH   (write the suite JSON, run nothing;\n"
         "       PATH \"-\" = stdout)\n"
         "   or: " << argv0
      << " diff A.json B.json [--rel-tol R] [--abs-tol A]\n"
         "       [--allow-missing] [--verbose]\n"
         "   or: " << argv0
      << " diff --against GIT-REV B.json   (A = GIT-REV's version of B's\n"
         "       path, via `git show`; compares history against the tree)\n"
         "defaults: the Section V evaluation trio, MIN routing, uniform\n"
         "traffic, the Figure 6 load grid, SF_BENCH_SCALE-dependent cycles.\n"
         "--config: run a suite file (checked-in suites: examples/suites/);\n"
         "  --scale picks one of its named scales (default: SF_BENCH_SCALE\n"
         "  when the suite declares it, else the suite's own default).\n"
         "diff: join two BENCH_*.json trajectories on run-point identity\n"
         "  and exit 1 on any out-of-tolerance delta or missing point\n"
         "  (defaults demand exact equality; wall time is never gated).\n"
         "--intra N: router-parallel workers inside each point (0 = auto\n"
         "  split with the across-point level; default SF_INTRA_THREADS or\n"
         "  1). Results are bit-identical for every worker count.\n"
         "--engine NAME: stepping engine, cycle or active (default\n"
         "  SF_ENGINE or cycle). Bit-identical results either way; active\n"
         "  skips quiet routers and fast-forwards idle stretches.\n"
         "--oracle NAME: distance oracle, auto, table, or family (default\n"
         "  SF_ORACLE or auto). Bit-identical results either way; family\n"
         "  answers from per-topology structure instead of the O(N^2) BFS\n"
         "  table, auto picks table below 4096 routers and family above.\n"
         "--scheduler NAME: point scheduler, static or stealing (default\n"
         "  SF_SCHEDULER or static). Bit-identical results either way;\n"
         "  stealing lets big points absorb workers freed by finished\n"
         "  points instead of stepping single-file at the tail of a grid.\n"
         "env: SF_THREADS (across-point workers, 0/unset = all cores),\n"
         "  SF_INTRA_THREADS (as --intra), SF_ENGINE (as --engine),\n"
         "  SF_ORACLE (as --oracle), SF_SCHEDULER (as --scheduler),\n"
         "  SF_BENCH_SCALE (small|paper).\n"
         "Spec-string grammar and suite schema: docs/SPEC_GRAMMAR.md;\n"
         "paper->code map and engine internals: docs/ARCHITECTURE.md;\n"
         "sanitizer presets, linter, determinism tooling: "
         "docs/CORRECTNESS.md.\n";
  return exit_code;
}

// `git show REV:./PATH` through a pipe — the old side of `diff --against`.
// REV and PATH are embedded in a shell command line, so both are
// whitelist-validated first; PATH is additionally anchored to the
// repository-relative form (the leading "./" makes git resolve it against
// the current directory, and absolute paths are rejected outright).
std::string git_show_file(const std::string& rev, const std::string& path) {
  auto ok_chars = [](const std::string& s, const char* extra) {
    for (char c : s) {
      if (std::isalnum(static_cast<unsigned char>(c))) continue;
      if (std::strchr(extra, c)) continue;
      return false;
    }
    return !s.empty();
  };
  if (!ok_chars(rev, "._/^~@-") || rev.front() == '-') {
    throw std::invalid_argument("malformed --against revision \"" + rev +
                                "\" (want a git rev: letters, digits, "
                                "._/^~@-)");
  }
  if (!ok_chars(path, "._/-") || path.front() == '/' ||
      path.find("..") != std::string::npos) {
    throw std::invalid_argument("malformed path \"" + path +
                                "\" for --against (want a relative path)");
  }
  const std::string cmd =
      "git show '" + rev + ":./" + path + "' 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (!pipe) throw std::runtime_error("cannot run git show");
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) text.append(buf, n);
  const int status = pclose(pipe);
  if (status != 0) {
    throw std::runtime_error("git show " + rev + ":./" + path +
                             " failed (unknown revision, or the file does "
                             "not exist at that revision?)");
  }
  return text;
}

int run_diff(int argc, char** argv) {
  using namespace slimfly;
  std::vector<std::string> files;
  std::string against;
  exp::DiffOptions options;
  bool verbose = false;
  auto next_arg = [&](int& i) -> const char* {
    if (i + 1 >= argc) throw std::invalid_argument("missing value for flag");
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--rel-tol")) {
      options.rel_tol = parse_tolerance(next_arg(i), "--rel-tol");
    } else if (!std::strcmp(argv[i], "--abs-tol")) {
      options.abs_tol = parse_tolerance(next_arg(i), "--abs-tol");
    } else if (!std::strcmp(argv[i], "--allow-missing")) {
      options.allow_missing = true;
    } else if (!std::strcmp(argv[i], "--against")) {
      against = next_arg(i);
    } else if (!std::strcmp(argv[i], "--verbose")) {
      verbose = true;
    } else if (argv[i][0] == '-') {
      return usage(argv[0], 2);
    } else {
      files.push_back(argv[i]);
    }
  }
  exp::Trajectory a, b;
  std::string a_name;
  if (!against.empty()) {
    // Historical mode: the old side comes out of git, the new side is the
    // working-tree file at the same repository-relative path.
    if (files.size() != 1) {
      std::cerr << "error: diff --against needs exactly one BENCH_*.json "
                   "file (the working-tree side; the old side is read from "
                   "git at " << against << ")\n";
      return 2;
    }
    a_name = against + ":" + files[0];
    a = exp::parse_bench_json(git_show_file(against, files[0]), a_name);
    b = exp::load_bench_file(files[0]);
  } else {
    if (files.size() != 2) {
      std::cerr << "error: diff needs exactly two BENCH_*.json files "
                   "(or one file with --against GIT-REV)\n";
      return 2;
    }
    a_name = files[0];
    a = exp::load_bench_file(files[0]);
    b = exp::load_bench_file(files[1]);
  }
  std::cout << "diff " << a_name << " (" << a.points.size() << " points) vs "
            << files.back() << " (" << b.points.size() << " points)\n";
  exp::DiffReport report = exp::diff_trajectories(a, b, options);
  exp::print_diff(std::cout, report, verbose);
  return report.passed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slimfly;

  if (argc > 1 && !std::strcmp(argv[1], "diff")) {
    try {
      return run_diff(argc, argv);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  std::string name;
  std::vector<std::string> topos, routings, traffics;
  std::vector<double> loads;
  std::string config_path, scale, emit_path;
  std::optional<std::uint64_t> seed;
  std::optional<int> intra;
  std::optional<sim::StepEngine> engine;
  std::optional<sim::OracleMode> oracle;
  std::optional<exp::SchedulerMode> scheduler;
  bool truncate = true, truncate_flag = false;

  auto next_arg = [&](int& i) -> const char* {
    if (i + 1 >= argc) throw std::invalid_argument("missing value for flag");
    return argv[++i];
  };
  try {
    for (int i = 1; i < argc; ++i) {
      if (!std::strcmp(argv[i], "--list")) {
        print_registries();
        return 0;
      } else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
        return usage(argv[0], 0);
      } else if (!std::strcmp(argv[i], "--name")) {
        name = next_arg(i);
      } else if (!std::strcmp(argv[i], "--topo")) {
        topos.push_back(next_arg(i));
      } else if (!std::strcmp(argv[i], "--routing")) {
        routings.push_back(next_arg(i));
      } else if (!std::strcmp(argv[i], "--traffic")) {
        traffics.push_back(next_arg(i));
      } else if (!std::strcmp(argv[i], "--loads")) {
        loads = parse_loads(next_arg(i));
      } else if (!std::strcmp(argv[i], "--config")) {
        config_path = next_arg(i);
      } else if (!std::strcmp(argv[i], "--scale")) {
        scale = next_arg(i);
      } else if (!std::strcmp(argv[i], "--emit-config")) {
        emit_path = next_arg(i);
      } else if (!std::strcmp(argv[i], "--seed")) {
        std::string value = next_arg(i);
        // Digits only: stoull would silently wrap a negative to a huge seed.
        if (value.empty() ||
            value.find_first_not_of("0123456789") != std::string::npos) {
          throw std::invalid_argument("malformed seed \"" + value + "\"");
        }
        seed = std::stoull(value);
      } else if (!std::strcmp(argv[i], "--intra")) {
        std::string value = next_arg(i);
        // Same bounds as the SF_INTRA_THREADS policy: digits only, and a
        // cap that keeps absurd counts from wrapping through the int cast.
        if (value.empty() || value.size() > 4 ||
            value.find_first_not_of("0123456789") != std::string::npos ||
            std::stoul(value) > 4096) {
          throw std::invalid_argument("malformed --intra \"" + value +
                                      "\" (want 0..4096; 0 = auto)");
        }
        intra = static_cast<int>(std::stoul(value));
      } else if (!std::strcmp(argv[i], "--engine")) {
        engine = exp::step_engine_from_string(next_arg(i), "--engine");
      } else if (!std::strcmp(argv[i], "--oracle")) {
        oracle = exp::oracle_from_string(next_arg(i), "--oracle");
      } else if (!std::strcmp(argv[i], "--scheduler")) {
        scheduler = exp::scheduler_from_string(next_arg(i), "--scheduler");
      } else if (!std::strcmp(argv[i], "--no-truncate")) {
        truncate = false;
        truncate_flag = true;
      } else {
        return usage(argv[0], 2);
      }
    }

    exp::ExperimentSpec spec;
    std::size_t threads_hint = 0;
    if (!config_path.empty()) {
      if (!topos.empty() || !routings.empty() || !traffics.empty() ||
          !loads.empty()) {
        throw std::invalid_argument(
            "--config cannot be combined with --topo/--routing/--traffic/"
            "--loads (use --emit-config to turn a CLI invocation into a "
            "suite file and edit that)");
      }
      exp::Suite suite = exp::load_suite_file(config_path);
      // Scale precedence: --scale flag, then SF_BENCH_SCALE when the suite
      // declares that scale, then the suite's own default.
      if (scale.empty()) {
        const char* env = std::getenv("SF_BENCH_SCALE");
        if (env && *env && suite.scales.count(env)) scale = env;
      }
      spec = exp::suite_to_spec(suite, scale);
      threads_hint = suite.threads;
      if (!name.empty()) spec.name = name;
      if (truncate_flag) spec.truncate_at_saturation = truncate;
      // Intra-point precedence mirrors the CLI path: --intra flag, then an
      // explicit suite value, then SF_INTRA_THREADS, then sequential — so
      // the CI regression matrix's intra axis reaches --config runs too.
      if (!intra && !exp::suite_sets_config_key(suite, scale, "intra_threads")) {
        spec.config.intra_threads = exp::intra_threads_from_env();
      }
      // Engine precedence, same shape: --engine flag, then an explicit
      // suite value, then SF_ENGINE, then the cycle default.
      if (!engine && !exp::suite_sets_config_key(suite, scale, "engine")) {
        spec.config.engine = exp::engine_from_env();
      }
      // Oracle precedence, same shape again: --oracle flag, then an
      // explicit suite value, then SF_ORACLE, then auto.
      if (!oracle && !exp::suite_sets_config_key(suite, scale, "oracle")) {
        spec.config.oracle = exp::oracle_from_env();
      }
      // Scheduler precedence: --scheduler flag, then the suite's own hint,
      // then SF_SCHEDULER (the ExperimentEngine ctor default), then static.
      // A suite-level key like `threads`, not a config key — byte-identical
      // results either way.
      if (!scheduler && !suite.scheduler.empty()) {
        scheduler = exp::scheduler_from_string(suite.scheduler,
                                               "suite \"scheduler\"");
      }
    } else {
      if (!scale.empty()) {
        throw std::invalid_argument("--scale requires --config");
      }
      if (topos.empty()) topos = bench::eval_trio_specs();
      if (routings.empty()) routings = {"MIN"};
      if (traffics.empty()) traffics = {"uniform"};
      if (loads.empty()) loads = bench::bench_loads();
      spec = exp::ExperimentSpec::cross(name.empty() ? "sweep" : name, topos,
                                        routings, traffics, loads,
                                        bench::make_sim_config());
      spec.truncate_at_saturation = truncate;
    }
    if (seed) spec.config.seed = *seed;
    if (intra) spec.config.intra_threads = *intra;
    if (engine) spec.config.engine = *engine;
    if (oracle) spec.config.oracle = *oracle;
    if (spec.series.empty()) {
      std::cerr << "no compatible (topology, routing, traffic) combination\n";
      return 1;
    }

    if (!emit_path.empty()) {
      const std::string text = exp::serialize_suite(exp::suite_from_spec(
          spec, threads_hint,
          scheduler ? exp::to_string(*scheduler) : std::string()));
      if (emit_path == "-") {
        std::cout << text;
      } else {
        std::ofstream os(emit_path);
        if (!os) {
          throw std::invalid_argument("cannot write \"" + emit_path + "\"");
        }
        os << text;
        std::cout << "wrote " << emit_path << " (" << spec.series.size()
                  << " series x " << spec.loads.size() << " loads)\n";
      }
      return 0;
    }

    // Across-point worker precedence: SF_THREADS env, then the suite's
    // hint, then all hardware threads (the engine's own fallback).
    std::size_t threads = exp::threads_from_env();
    if (threads == 0) threads = threads_hint;
    bench::run_experiment(spec, "command-line sweep", threads, scheduler);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
