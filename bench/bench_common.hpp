#pragma once
// Shared scaffolding for the per-figure/table bench binaries.
//
// Scale: SF_BENCH_SCALE=small (default) runs ~2K-endpoint networks so the
// whole suite finishes on a laptop; SF_BENCH_SCALE=paper uses the paper's
// ~10K-endpoint configurations (q=19 Slim Fly, k=27 Dragonfly, k=44 fat
// tree). The paper reports that 1K-10K networks agree within 10%
// (Section V), so the small scale preserves every qualitative conclusion.

#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "sf/mms.hpp"
#include "sim/simulation.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace slimfly::bench {

inline bool paper_scale() {
  const char* env = std::getenv("SF_BENCH_SCALE");
  return env && std::string(env) == "paper";
}

/// The Section V evaluation trio (Slim Fly / Dragonfly / fat tree) in
/// balanced full-bandwidth configurations of comparable size.
struct EvalTrio {
  std::unique_ptr<sf::SlimFlyMMS> sf;
  std::unique_ptr<Dragonfly> df;
  std::unique_ptr<FatTree3> ft;
};

inline EvalTrio make_eval_trio() {
  EvalTrio trio;
  if (paper_scale()) {
    trio.sf = std::make_unique<sf::SlimFlyMMS>(19);     // N=10830, k=44
    trio.df = std::make_unique<Dragonfly>(7, 14, 7, 99);// N=9702,  k=27
    trio.ft = std::make_unique<FatTree3>(22);           // N=10648, k=44
  } else {
    trio.sf = std::make_unique<sf::SlimFlyMMS>(7);      // N=588, k=17
    trio.df = std::make_unique<Dragonfly>(4, 8, 4, 33); // N=1056, k=15
    trio.ft = std::make_unique<FatTree3>(8);            // N=512, k=16
  }
  return trio;
}

inline sim::SimConfig make_sim_config() {
  sim::SimConfig cfg;
  if (paper_scale()) {
    cfg.warmup_cycles = 3000;
    cfg.measure_cycles = 3000;
    cfg.drain_cycles = 40000;
  } else {
    cfg.warmup_cycles = 800;
    cfg.measure_cycles = 1000;
    cfg.drain_cycles = 8000;
  }
  return cfg;
}

/// Offered-load grid used by the Figure 6/8 sweeps.
inline std::vector<double> bench_loads() {
  return {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
}

inline void print_table(const std::string& tag, const std::string& title,
                        const Table& table) {
  std::cout << "\n== " << tag << ": " << title << " ==\n";
  table.print(std::cout);
  table.print_csv(std::cout, tag);
  std::cout.flush();
}

/// Runs one routing curve of a latency-vs-load figure and appends rows.
inline void sweep_into_table(
    Table& table, const std::string& series, const Topology& topo,
    sim::RoutingAlgorithm& routing,
    const std::function<std::unique_ptr<sim::TrafficPattern>()>& traffic,
    const sim::SimConfig& cfg, const std::vector<double>& loads = {}) {
  auto points = sim::load_sweep(topo, routing, traffic, cfg,
                                loads.empty() ? bench_loads() : loads, true);
  for (const auto& pt : points) {
    table.add_row({series, Table::num(pt.load, 2),
                   Table::num(pt.result.avg_latency, 1),
                   Table::num(pt.result.avg_network_latency, 1),
                   Table::num(pt.result.accepted_load, 3),
                   pt.result.saturated ? "yes" : "no"});
  }
}

inline Table latency_table() {
  return Table({"series", "offered", "latency", "net_latency", "accepted", "saturated"});
}

/// The Figure 6 comparison: SF under MIN/VAL/UGAL-L/UGAL-G, DF under
/// DF-UGAL-L, FT under ANCA — each with its own traffic instance (the
/// worst-case figure uses per-topology adversarial patterns).
inline void run_fig6(
    const std::string& tag, const std::string& title,
    const std::function<std::unique_ptr<sim::TrafficPattern>(const Topology&)>&
        traffic_for) {
  EvalTrio trio = make_eval_trio();
  sim::SimConfig cfg = make_sim_config();
  Table table = latency_table();

  auto sweep = [&](const std::string& series, const Topology& topo,
                   sim::RoutingKind kind,
                   std::shared_ptr<sim::DistanceTable> dist = nullptr)
      -> std::shared_ptr<sim::DistanceTable> {
    auto bundle = sim::make_routing(kind, topo, std::move(dist));
    sweep_into_table(table, series, topo, *bundle.algorithm,
                     [&] { return traffic_for(topo); }, cfg);
    std::cout << "  [" << tag << "] " << series << " done\n" << std::flush;
    return bundle.distances;
  };

  auto sf_dist = sweep("SF-MIN", *trio.sf, sim::RoutingKind::Minimal);
  sweep("SF-VAL", *trio.sf, sim::RoutingKind::Valiant, sf_dist);
  sweep("SF-UGAL-L", *trio.sf, sim::RoutingKind::UgalL, sf_dist);
  sweep("SF-UGAL-G", *trio.sf, sim::RoutingKind::UgalG, sf_dist);
  sweep("DF-UGAL-L", *trio.df, sim::RoutingKind::DragonflyUgalL);
  sweep("FT-ANCA", *trio.ft, sim::RoutingKind::FatTreeAnca);

  print_table(tag, title, table);
}

}  // namespace slimfly::bench
