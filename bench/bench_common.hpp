#pragma once
// Shared scaffolding for the per-figure/table bench binaries.
//
// Scale: SF_BENCH_SCALE=small (default) runs ~2K-endpoint networks so the
// whole suite finishes on a laptop; SF_BENCH_SCALE=paper uses the paper's
// ~10K-endpoint configurations (q=19 Slim Fly, k=27 Dragonfly, k=44 fat
// tree). The paper reports that 1K-10K networks agree within 10%
// (Section V), so the small scale preserves every qualitative conclusion.
//
// Figure sweeps are declarative: bench binaries build an
// exp::ExperimentSpec (registry strings for every axis) and hand it to the
// ExperimentEngine, which runs all points in parallel (SF_THREADS workers,
// 0/unset = all cores) and drops BENCH_<tag>.json next to the binary's cwd.

#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/experiment.hpp"
#include "sf/mms.hpp"
#include "sim/simulation.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/registry.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace slimfly::bench {

inline bool paper_scale() {
  const char* env = std::getenv("SF_BENCH_SCALE");
  return env && std::string(env) == "paper";
}

/// Topology registry specs for the Section V evaluation trio
/// (Slim Fly / Dragonfly / fat tree), balanced and of comparable size.
/// Index 0 = SF, 1 = DF, 2 = FT.
inline std::vector<std::string> eval_trio_specs() {
  if (paper_scale()) {
    return {"slimfly:q=19",               // N=10830, k=44
            "dragonfly:p=7,a=14,h=7,g=99",// N=9702,  k=27
            "fattree:k=22"};              // N=10648, k=44
  }
  return {"slimfly:q=7",                  // N=588,  k=17
          "dragonfly:p=4,a=8,h=4,g=33",   // N=1056, k=15
          "fattree:k=8"};                 // N=512,  k=16
}

/// The trio as typed topology objects, for benches that need member access
/// (buffer studies, cost model). Thin wrapper over the topology registry.
struct EvalTrio {
  std::unique_ptr<sf::SlimFlyMMS> sf;
  std::unique_ptr<Dragonfly> df;
  std::unique_ptr<FatTree3> ft;
};

template <class T>
std::unique_ptr<T> topo_cast(std::unique_ptr<Topology> topo) {
  auto* typed = dynamic_cast<T*>(topo.get());
  if (!typed) throw std::logic_error("eval trio spec built unexpected type");
  topo.release();
  return std::unique_ptr<T>(typed);
}

inline EvalTrio make_eval_trio() {
  auto specs = eval_trio_specs();
  EvalTrio trio;
  trio.sf = topo_cast<sf::SlimFlyMMS>(topo::make(specs[0]));
  trio.df = topo_cast<Dragonfly>(topo::make(specs[1]));
  trio.ft = topo_cast<FatTree3>(topo::make(specs[2]));
  return trio;
}

inline sim::SimConfig make_sim_config() {
  sim::SimConfig cfg;
  if (paper_scale()) {
    cfg.warmup_cycles = 3000;
    cfg.measure_cycles = 3000;
    cfg.drain_cycles = 40000;
  } else {
    cfg.warmup_cycles = 800;
    cfg.measure_cycles = 1000;
    cfg.drain_cycles = 8000;
  }
  // Router-parallel stepping inside each point (SF_INTRA_THREADS; 0 lets
  // the engine split workers between the two levels). Never changes
  // results, only wall time — see docs/ARCHITECTURE.md.
  cfg.intra_threads = exp::intra_threads_from_env();
  // Stepping engine (SF_ENGINE: cycle | active). Bit-identical results
  // either way; active wins when the network is mostly idle.
  cfg.engine = exp::engine_from_env();
  // Distance oracle (SF_ORACLE: auto | table | family). Bit-identical
  // results either way; family sidesteps the O(N^2) BFS table at scale.
  cfg.oracle = exp::oracle_from_env();
  return cfg;
}

/// Offered-load grid used by the Figure 6/8 sweeps.
inline std::vector<double> bench_loads() {
  return {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
}

inline void print_table(const std::string& tag, const std::string& title,
                        const Table& table) {
  std::cout << "\n== " << tag << ": " << title << " ==\n";
  table.print(std::cout);
  table.print_csv(std::cout, tag);
  std::cout.flush();
}

/// One-line host shape + resolved worker split, printed at bench startup so
/// every BENCH log records how the machine was actually used (the numbers
/// are execution-only — results never depend on them).
inline void print_host_shape(const exp::ExperimentEngine& engine,
                             std::size_t n_points, int requested_intra) {
  const auto sched = engine.schedule(n_points, requested_intra);
  std::cout << "[host] hardware_concurrency="
            << std::thread::hardware_concurrency() << " engine_threads="
            << engine.threads() << " scheduler="
            << exp::to_string(engine.scheduler()) << " across=" << sched.first
            << " intra=" << sched.second
            << (engine.scheduler() == exp::SchedulerMode::Stealing
                    ? " (stealing: intra grows as points drain)"
                    : "")
            << "\n"
            << std::flush;
}

/// Runs a spec on the engine, prints the table + CSV, writes
/// BENCH_<spec.name>.json, and reports points/threads/wall time.
/// `threads` 0 defers to SF_THREADS / hardware (the engine's own policy);
/// `scheduler` unset defers to SF_SCHEDULER (static when that is unset).
inline void run_experiment(
    const exp::ExperimentSpec& spec, const std::string& title,
    std::size_t threads = 0,
    std::optional<exp::SchedulerMode> scheduler = std::nullopt) {
  exp::ExperimentEngine engine(threads);
  if (scheduler) engine.set_scheduler(*scheduler);
  print_host_shape(engine, spec.series.size() * spec.loads.size(),
                   spec.config.intra_threads);
  Timer timer;
  // Progress heartbeat: paper-scale runs take hours, so echo each finished
  // point (matches the old per-series "done" lines, at finer grain).
  auto results = engine.run(
      spec, [&spec](const exp::PreparedSeries& series,
                    const exp::RunResult& point) {
        // Saturated points may be dropped from the final table/JSON when
        // the spec truncates at saturation, hence the marker: more "done"
        // lines than kept points is expected in parallel runs.
        std::cout << "  [" << spec.name << "] " << series.label << " @ "
                  << Table::num(point.load, 2) << " done ("
                  << Table::num(point.wall_seconds, 1) << "s)"
                  << (point.result.saturated ? " [saturated]" : "") << "\n"
                  << std::flush;
      });
  double wall = timer.seconds();
  print_table(spec.name, title, exp::to_table(spec, results));
  std::string json = exp::write_json_file(spec, results, engine.threads());
  std::string csv = exp::write_csv_file(spec, results);
  std::cout << "[" << spec.name << "] " << results.size() << " points kept on "
            << engine.threads() << " threads in " << Table::num(wall, 2)
            << "s" << (json.empty() ? "" : ", wrote " + json)
            << (csv.empty() ? "" : " + " + csv) << "\n"
            << std::flush;
}

/// Runs one routing curve of a latency-vs-load figure and appends rows.
/// (Sequential compatibility path for benches that sweep hand-built
/// objects; the load sweep itself goes through the engine.)
inline void sweep_into_table(
    Table& table, const std::string& series, const Topology& topo,
    sim::RoutingAlgorithm& routing,
    const std::function<std::unique_ptr<sim::TrafficPattern>()>& traffic,
    const sim::SimConfig& cfg, const std::vector<double>& loads = {}) {
  auto points = sim::load_sweep(topo, routing, traffic, cfg,
                                loads.empty() ? bench_loads() : loads, true);
  for (const auto& pt : points) {
    table.add_row({series, Table::num(pt.load, 2),
                   Table::num(pt.result.avg_latency, 1),
                   Table::num(pt.result.avg_network_latency, 1),
                   Table::num(pt.result.accepted_load, 3),
                   pt.result.saturated ? "yes" : "no"});
  }
}

inline Table latency_table() {
  return Table({"series", "offered", "latency", "net_latency", "accepted", "saturated"});
}

/// The Figure 6 comparison as data: SF under MIN/VAL/UGAL-L/UGAL-G, DF
/// under DF-UGAL-L, FT under ANCA, one traffic registry name shared by all
/// (the worst-case figure passes "worstcase", which resolves to each
/// topology's own adversarial pattern).
inline exp::ExperimentSpec fig6_spec(const std::string& tag,
                                     const std::string& traffic) {
  auto topos = eval_trio_specs();
  exp::ExperimentSpec spec;
  spec.name = tag;
  spec.loads = bench_loads();
  spec.config = make_sim_config();
  for (const char* routing : {"MIN", "VAL", "UGAL-L", "UGAL-G"}) {
    spec.series.push_back(
        {topos[0], routing, traffic, "SF-" + std::string(routing)});
  }
  spec.series.push_back({topos[1], "DF-UGAL-L", traffic, "DF-UGAL-L"});
  spec.series.push_back({topos[2], "FT-ANCA", traffic, "FT-ANCA"});
  return spec;
}

inline void run_fig6(const std::string& tag, const std::string& title,
                     const std::string& traffic) {
  run_experiment(fig6_spec(tag, traffic), title);
}

}  // namespace slimfly::bench
