// Figures 8b-8e: oversubscribed Slim Fly — the balanced network plus
// concentrations p+1 and p+3 (the paper's p=16 and p=18 on q=19), each
// under uniform random and worst-case traffic with all four SF routings.
// Expected: accepted bandwidth decreases gently with oversubscription
// (87.5% -> 80% -> 75% at paper scale), latency barely changes.

#include "bench_common.hpp"

int main() {
  using namespace slimfly;
  const int q = bench::paper_scale() ? 19 : 7;
  const int balanced_p = sf::SlimFlyMMS::balanced_concentration(q);

  exp::ExperimentSpec spec;
  spec.name = "fig08be";
  spec.loads = {0.1, 0.3, 0.5, 0.7, 0.8, 0.9};
  spec.config = bench::make_sim_config();
  for (int p : {balanced_p, balanced_p + 1, balanced_p + 3}) {
    std::string topo =
        "slimfly:q=" + std::to_string(q) + ",p=" + std::to_string(p);
    for (const char* routing : {"MIN", "VAL", "UGAL-L", "UGAL-G"}) {
      std::string tag = "p" + std::to_string(p) + "-" + routing;
      spec.series.push_back({topo, routing, "uniform", tag + "-rand"});
      spec.series.push_back({topo, routing, "worst-sf", tag + "-worst"});
    }
  }

  bench::run_experiment(spec, "Oversubscribed Slim Fly (Figures 8b-8e)");
  return 0;
}
