// Figures 8b-8e: oversubscribed Slim Fly — the balanced network plus
// concentrations p+1 and p+3 (the paper's p=16 and p=18 on q=19), each
// under uniform random and worst-case traffic with all four SF routings.
// Expected: accepted bandwidth decreases gently with oversubscription
// (87.5% -> 80% -> 75% at paper scale), latency barely changes.

#include "bench_common.hpp"

namespace slimfly::bench {
namespace {

void run() {
  int q = paper_scale() ? 19 : 7;
  int balanced_p = sf::SlimFlyMMS::balanced_concentration(q);
  sim::SimConfig cfg = make_sim_config();
  Table table = latency_table();

  for (int p : {balanced_p, balanced_p + 1, balanced_p + 3}) {
    sf::SlimFlyMMS topo(q, p);
    auto dist = std::make_shared<sim::DistanceTable>(topo.graph());
    for (auto kind : {sim::RoutingKind::Minimal, sim::RoutingKind::Valiant,
                      sim::RoutingKind::UgalL, sim::RoutingKind::UgalG}) {
      auto bundle = sim::make_routing(kind, topo, dist);
      std::string tag = "p" + std::to_string(p) + "-" + sim::to_string(kind);
      std::vector<double> loads = {0.1, 0.3, 0.5, 0.7, 0.8, 0.9};
      sweep_into_table(table, tag + "-rand", topo, *bundle.algorithm,
                       [&] { return sim::make_uniform(topo.num_endpoints()); },
                       cfg, loads);
      sweep_into_table(table, tag + "-worst", topo, *bundle.algorithm,
                       [&] { return sim::make_worst_case_sf(topo); }, cfg,
                       loads);
      std::cout << "  [fig08be] " << tag << " done\n" << std::flush;
    }
  }

  print_table("fig08be", "Oversubscribed Slim Fly (Figures 8b-8e)", table);
}

}  // namespace
}  // namespace slimfly::bench

int main() {
  slimfly::bench::run();
  return 0;
}
