// Section IV-D: virtual channels needed for deadlock freedom.
//  * Hop-indexed VCs: 2 for SF minimal, 4 for SF adaptive (analytic).
//  * DFSSSP-style channel-dependency layering for generic deployments:
//    few VCs for SF, notably more for sparse DLN random topologies.

#include "bench_common.hpp"

#include "sim/routing/dfsssp.hpp"
#include "topo/dln.hpp"
#include "topo/hypercube.hpp"

namespace slimfly::bench {
namespace {

void run() {
  Table table({"network", "routers", "scheme", "VCs"});
  auto row = [&](const std::string& name, int nr, const std::string& scheme, int vcs) {
    table.add_row({name, Table::num(static_cast<std::int64_t>(nr)), scheme,
                   Table::num(static_cast<std::int64_t>(vcs))});
  };

  // Analytic hop-index scheme (Gopal): #VCs = max hops.
  row("SF (any q)", 0, "hop-index, minimal (D=2)", 2);
  row("SF (any q)", 0, "hop-index, UGAL/VAL (<=4 hops)", 4);

  for (int q : {5, 7, 9, 11}) {
    sf::SlimFlyMMS topo(q);
    auto r = sim::dfsssp_vc_count(topo.graph());
    row("SF q=" + std::to_string(q), topo.num_routers(), "DFSSSP layering",
        r.vcs_used);
  }
  // DLN analogues of the paper's 338/1682-endpoint random networks.
  for (auto [nr, k] : std::vector<std::pair<int, int>>{
           {113, 5}, {338, 5}, {338, 8}, {561, 5}}) {
    Dln dln(nr, k, 3);
    auto r = sim::dfsssp_vc_count(dln.graph());
    row("DLN Nr=" + std::to_string(nr) + " k'=" + std::to_string(k), nr,
        "DFSSSP layering", r.vcs_used);
  }
  Hypercube hc(8);
  row("HC n=8", 256, "DFSSSP layering", sim::dfsssp_vc_count(hc.graph()).vcs_used);

  print_table("sec4d", "Deadlock-freedom VC requirements (Section IV-D)", table);
}

}  // namespace
}  // namespace slimfly::bench

int main() {
  slimfly::bench::run();
  return 0;
}
