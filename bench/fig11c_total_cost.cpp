// Figures 11c / 12c / 13c: total network cost vs size for all nine
// topologies, under each of the three cable families.
// Expected: SF cheapest among full-bandwidth networks at every size, ~25%
// below DF; low-radix topologies (tori, HC, LH) far more expensive per
// endpoint; cable family shifts relative costs by only ~1-2%.

#include "bench_common.hpp"

#include "cost/costmodel.hpp"
#include "sf/enumerate.hpp"
#include "topo/dln.hpp"
#include "topo/flatbutterfly.hpp"
#include "topo/hypercube.hpp"
#include "topo/longhop.hpp"
#include "topo/torus.hpp"

namespace slimfly::bench {
namespace {

void add(Table& table, const Topology& topo, const cost::CableModel& cables) {
  auto c = cost::evaluate_cost(topo, cables);
  table.add_row({cables.name, c.topology,
                 Table::num(static_cast<std::int64_t>(c.num_endpoints)),
                 Table::num(static_cast<std::int64_t>(c.num_routers)),
                 Table::num(c.total_cost, 0), Table::num(c.cost_per_endpoint, 0)});
}

void run() {
  Table table({"cables", "topology", "endpoints", "routers", "total_$", "$_per_endpoint"});
  int cap = paper_scale() ? 12000 : 3000;

  for (const auto& cables :
       {cost::cable_fdr10(), cost::cable_qdr56(), cost::cable_elpeus10()}) {
    for (const auto& c : sf::enumerate_slimfly(cap)) {
      if (c.num_endpoints < 150) continue;
      add(table, sf::SlimFlyMMS(c.q), cables);
    }
    for (int p = 2;; ++p) {
      auto df = Dragonfly::balanced(p);
      if (df->num_endpoints() > cap) break;
      add(table, *df, cables);
    }
    for (int p = 6; p * p * p <= cap; p += 3) add(table, FatTree3(p), cables);
    for (int c2 = 4; c2 * c2 * c2 * c2 <= cap; ++c2) {
      add(table, FlattenedButterfly(3, c2), cables);
    }
    for (int n = 8; (1 << n) <= cap; ++n) add(table, Hypercube(n), cables);
    for (int n = 8; (1 << n) <= cap; ++n) add(table, LongHop(n, 6), cables);
    for (int e = 6; e * e * e <= cap; e += 2) add(table, Torus({e, e, e}), cables);
    for (int e = 3; e * e * e * e * e <= cap; ++e) {
      add(table, Torus({e, e, e, e, e}), cables);
    }
    for (int nr : {256, 512}) {
      if (nr * 3 > cap) break;
      add(table, Dln(nr, 14, 3), cables);
    }
  }

  print_table("fig11c", "Total network cost (Figures 11c/12c/13c)", table);
}

}  // namespace
}  // namespace slimfly::bench

int main() {
  slimfly::bench::run();
  return 0;
}
