// Figure 8a: influence of input buffer size (8..256 flits/port) on Slim Fly
// latency under worst-case traffic with Valiant routing.
// Expected shape: smaller buffers -> lower in-network latency (stiff
// backpressure), larger buffers -> higher sustainable bandwidth.
//
// Declarative since the suite-file PR: the buffer size is a per-series
// SimConfig override, so the whole study is one ExperimentSpec on the
// engine. The same grid is checked in as examples/suites/fig08a_buffers.json
// for `sweep --config`.

#include "bench_common.hpp"

int main() {
  using namespace slimfly;
  const std::string topo =
      bench::paper_scale() ? "slimfly:q=19" : "slimfly:q=7";

  exp::ExperimentSpec spec;
  spec.name = "fig08a";
  spec.loads = bench::bench_loads();
  spec.config = bench::make_sim_config();
  for (int buffers : {8, 16, 32, 64, 128, 256}) {
    spec.series.push_back(
        {topo, "VAL", "worst-sf", "buf" + std::to_string(buffers),
         {{"buffer_per_port", static_cast<double>(buffers)}}});
  }

  bench::run_experiment(spec,
                        "Buffer size study, worst-case traffic (Figure 8a)");
  return 0;
}
