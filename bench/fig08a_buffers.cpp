// Figure 8a: influence of input buffer size (8..256 flits/port) on Slim Fly
// latency under worst-case traffic with Valiant routing.
// Expected shape: smaller buffers -> lower in-network latency (stiff
// backpressure), larger buffers -> higher sustainable bandwidth.

#include "bench_common.hpp"

namespace slimfly::bench {
namespace {

void run() {
  EvalTrio trio = make_eval_trio();
  sim::SimConfig base_cfg = make_sim_config();
  Table table = latency_table();

  auto dist = std::make_shared<sim::DistanceTable>(trio.sf->graph());
  for (int buffers : {8, 16, 32, 64, 128, 256}) {
    sim::SimConfig cfg = base_cfg;
    cfg.buffer_per_port = buffers;
    auto bundle = sim::make_routing(sim::RoutingKind::Valiant, *trio.sf, dist);
    sweep_into_table(table, "buf" + std::to_string(buffers), *trio.sf,
                     *bundle.algorithm,
                     [&] { return sim::make_worst_case_sf(*trio.sf); }, cfg);
    std::cout << "  [fig08a] buffers=" << buffers << " done\n" << std::flush;
  }

  print_table("fig08a", "Buffer size study, worst-case traffic (Figure 8a)", table);
}

}  // namespace
}  // namespace slimfly::bench

int main() {
  slimfly::bench::run();
  return 0;
}
