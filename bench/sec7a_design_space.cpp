// Section VII-A: the design space of balanced full-bandwidth networks up
// to 20,000 endpoints — 11 Slim Fly variants vs 8 Dragonflies.

#include "bench_common.hpp"

#include "sf/enumerate.hpp"

namespace slimfly::bench {
namespace {

void run() {
  Table table({"family", "q_or_p", "k'", "p", "k", "routers", "endpoints"});
  auto sfs = sf::enumerate_slimfly(20000);
  for (const auto& c : sfs) {
    table.add_row({"SF", Table::num(static_cast<std::int64_t>(c.q)),
                   Table::num(static_cast<std::int64_t>(c.k_net)),
                   Table::num(static_cast<std::int64_t>(c.concentration)),
                   Table::num(static_cast<std::int64_t>(c.router_radix)),
                   Table::num(static_cast<std::int64_t>(c.num_routers)),
                   Table::num(static_cast<std::int64_t>(c.num_endpoints))});
  }
  auto dfs = sf::enumerate_dragonfly(20000);
  for (const auto& c : dfs) {
    table.add_row({"DF", Table::num(static_cast<std::int64_t>(c.p)),
                   Table::num(static_cast<std::int64_t>(c.a - 1 + c.h)),
                   Table::num(static_cast<std::int64_t>(c.p)),
                   Table::num(static_cast<std::int64_t>(c.router_radix)),
                   Table::num(static_cast<std::int64_t>(c.num_routers)),
                   Table::num(static_cast<std::int64_t>(c.num_endpoints))});
  }
  print_table("sec7a", "Balanced designs <= 20k endpoints (Section VII-A)", table);
  std::cout << "SF designs: " << sfs.size() << " (paper: 11), DF designs: "
            << dfs.size() << " (paper: 8)\n";
}

}  // namespace
}  // namespace slimfly::bench

int main() {
  slimfly::bench::run();
  return 0;
}
