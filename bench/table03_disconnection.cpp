// Table III: disconnection resiliency — the largest fraction of randomly
// removed cables (5% steps) that leaves the network connected.
// Expected ordering: SF / DLN / FBF-3 most resilient; DF below them;
// tori degrade with size; HC / LH flat.

#include "bench_common.hpp"

#include "analysis/resilience.hpp"
#include "sf/enumerate.hpp"
#include "topo/dln.hpp"
#include "topo/flatbutterfly.hpp"
#include "topo/hypercube.hpp"
#include "topo/longhop.hpp"
#include "topo/torus.hpp"

namespace slimfly::bench {
namespace {

void run() {
  analysis::ResilienceOptions opts;
  opts.trials = paper_scale() ? 20 : 10;

  Table table({"topology", "endpoints", "max_removable_%"});
  auto row = [&](const Topology& topo) {
    table.add_row({topo.symbol(),
                   Table::num(static_cast<std::int64_t>(topo.num_endpoints())),
                   Table::num(static_cast<std::int64_t>(
                       analysis::max_failures_connected(topo.graph(), opts)))});
  };

  // N ~ 256-class and ~1K-class rows (Table III columns).
  row(Torus({6, 6, 6}));
  row(Torus({3, 3, 3, 3, 3}));
  row(Hypercube(8));
  row(LongHop(8, 4));
  row(FatTree3(6));
  row(*Dragonfly::balanced(2));
  row(FlattenedButterfly(3, 4));
  row(Dln(256, 14, 1));
  row(sf::SlimFlyMMS(5));
  row(sf::SlimFlyMMS(7));
  if (paper_scale()) {
    row(Torus({10, 10, 10}));
    row(Hypercube(10));
    row(LongHop(10, 5));
    row(*Dragonfly::balanced(3));
    row(FlattenedButterfly(3, 6));
    row(Dln(1024, 14, 1));
    row(sf::SlimFlyMMS(11));
    row(sf::SlimFlyMMS(13));
  }

  print_table("table03", "Disconnection resiliency (Table III)", table);
}

}  // namespace
}  // namespace slimfly::bench

int main() {
  slimfly::bench::run();
  return 0;
}
