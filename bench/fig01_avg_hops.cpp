// Figure 1: average number of network hops under uniform traffic with
// minimal routing, for all nine topologies across network sizes.
// Expected shape: SF lowest (<2) at every size; DF/FBF below FT; tori and
// hypercubes grow with N.

#include "bench_common.hpp"

#include "analysis/metrics.hpp"
#include "sf/enumerate.hpp"
#include "topo/dln.hpp"
#include "topo/flatbutterfly.hpp"
#include "topo/hypercube.hpp"
#include "topo/longhop.hpp"
#include "topo/torus.hpp"

namespace slimfly::bench {
namespace {

void add(Table& table, const Topology& topo) {
  table.add_row({topo.symbol(), Table::num(static_cast<std::int64_t>(topo.num_endpoints())),
                 Table::num(static_cast<std::int64_t>(topo.num_routers())),
                 Table::num(static_cast<std::int64_t>(topo.router_radix())),
                 Table::num(analysis::average_endpoint_distance(topo), 3)});
}

void run() {
  Table table({"topology", "endpoints", "routers", "radix", "avg_hops"});
  int cap = paper_scale() ? 5000 : 2500;

  // Slim Fly across its balanced family.
  for (const auto& c : sf::enumerate_slimfly(cap)) {
    if (c.num_endpoints < 150) continue;
    add(table, sf::SlimFlyMMS(c.q));
  }
  // Dragonfly balanced family.
  for (int p = 2; ; ++p) {
    auto df = Dragonfly::balanced(p);
    if (df->num_endpoints() > cap) break;
    add(table, *df);
  }
  // Fat tree (paper-slim), FBF-3.
  for (int p = 6; p * p * p <= cap; p += 3) add(table, FatTree3(p));
  for (int c = 4; c * c * c * c <= cap; ++c) add(table, FlattenedButterfly(3, c));
  // Low-radix families (p = 1).
  for (int n = 8; (1 << n) <= cap; ++n) add(table, Hypercube(n));
  for (int n = 8; (1 << n) <= cap; ++n) add(table, LongHop(n, 6));
  for (int e = 6; e * e * e <= cap; e += 2) add(table, Torus({e, e, e}));
  for (int e = 3; e * e * e * e * e <= cap; ++e) add(table, Torus({e, e, e, e, e}));
  // DLN random topologies (p = 3 small-scale analogue of floor(sqrt(k))).
  for (int nr : {128, 256, 512}) {
    if (nr * 3 > cap) break;
    add(table, Dln(nr, 14, 3));
  }

  print_table("fig01", "Average hops, uniform traffic, minimal routing", table);
}

}  // namespace
}  // namespace slimfly::bench

int main() {
  slimfly::bench::run();
  return 0;
}
