// Microbenchmarks (google-benchmark): construction speed of the MMS
// machinery, distance tables, the partitioner, and simulator cycle rate.

#include <benchmark/benchmark.h>

#include "analysis/partition.hpp"
#include "gf/gf.hpp"
#include "sf/mms.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace slimfly;

void BM_FieldConstruction(benchmark::State& state) {
  int q = static_cast<int>(state.range(0));
  for (auto _ : state) {
    gf::Field f(q);
    benchmark::DoNotOptimize(f.primitive_element());
  }
}
BENCHMARK(BM_FieldConstruction)->Arg(19)->Arg(49)->Arg(64);

void BM_SlimFlyConstruction(benchmark::State& state) {
  int q = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sf::SlimFlyMMS topo(q);
    benchmark::DoNotOptimize(topo.num_routers());
  }
}
BENCHMARK(BM_SlimFlyConstruction)->Arg(5)->Arg(11)->Arg(19);

void BM_DistanceTable(benchmark::State& state) {
  sf::SlimFlyMMS topo(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    sim::DistanceTable dt(topo.graph());
    benchmark::DoNotOptimize(dt.diameter());
  }
}
BENCHMARK(BM_DistanceTable)->Arg(7)->Arg(11);

void BM_Bisection(benchmark::State& state) {
  sf::SlimFlyMMS topo(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = analysis::bisect(topo.graph(), 2);
    benchmark::DoNotOptimize(r.cut_edges);
  }
}
BENCHMARK(BM_Bisection)->Arg(7)->Arg(11);

void BM_SimulatorCycles(benchmark::State& state) {
  // Cycles/second of the flit-level engine on the q=7 Slim Fly at 30% load.
  sf::SlimFlyMMS topo(7);
  auto routing = sim::make_routing(sim::RoutingKind::Minimal, topo);
  auto traffic = sim::make_uniform(topo.num_endpoints());
  sim::SimConfig cfg;
  sim::Network net(topo, *routing.algorithm, *traffic, cfg, 0.3);
  for (auto _ : state) {
    net.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorCycles);

}  // namespace

BENCHMARK_MAIN();
