// Figure 6a: latency vs offered load under uniform random traffic.
// Expected shape: SF-MIN and SF-UGAL-G best; SF-VAL saturates below 50%;
// SF-UGAL-L ~80%; SF has the lowest zero-load latency of the three
// topologies (diameter 2).

#include "bench_common.hpp"

int main() {
  slimfly::bench::run_fig6("fig06a", "Uniform random traffic (Figure 6a)",
                           "uniform");
  return 0;
}
