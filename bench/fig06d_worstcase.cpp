// Figure 6d: latency vs offered load under adversarial traffic — each
// topology gets its own worst case (Fig. 9 pattern for SF, +1-group for
// DF, forced core crossing for FT; the "worstcase" registry entry
// dispatches per topology). Expected: SF-MIN collapses early; VAL/UGAL
// disperse the load; FT sustains the most (full bisection).

#include "bench_common.hpp"

int main() {
  slimfly::bench::run_fig6("fig06d",
                           "Worst-case adversarial traffic (Figure 6d)",
                           "worstcase");
  return 0;
}
