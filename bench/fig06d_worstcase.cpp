// Figure 6d: latency vs offered load under adversarial traffic — each
// topology gets its own worst case (Fig. 9 pattern for SF, +1-group for
// DF, forced core crossing for FT). Expected: SF-MIN collapses early;
// VAL/UGAL disperse the load; FT sustains the most (full bisection).

#include "bench_common.hpp"

int main() {
  using namespace slimfly;
  bench::run_fig6("fig06d", "Worst-case adversarial traffic (Figure 6d)",
                  [](const Topology& topo) -> std::unique_ptr<sim::TrafficPattern> {
                    if (const auto* df = dynamic_cast<const Dragonfly*>(&topo)) {
                      return sim::make_worst_case_df(*df);
                    }
                    if (const auto* ft = dynamic_cast<const FatTree3*>(&topo)) {
                      return sim::make_worst_case_ft(*ft);
                    }
                    return sim::make_worst_case_sf(topo);
                  });
  return 0;
}
