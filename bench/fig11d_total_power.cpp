// Figures 11d / 12d / 13d: total power consumption vs network size.
// Expected: SF > 25% more energy-efficient than DF / FBF-3 / DLN; tori and
// hypercubes burn several times more per endpoint (one router each).

#include "bench_common.hpp"

#include "cost/power.hpp"
#include "sf/enumerate.hpp"
#include "topo/dln.hpp"
#include "topo/flatbutterfly.hpp"
#include "topo/hypercube.hpp"
#include "topo/longhop.hpp"
#include "topo/torus.hpp"

namespace slimfly::bench {
namespace {

void add(Table& table, const Topology& topo) {
  cost::PowerModel power;
  table.add_row({topo.symbol(),
                 Table::num(static_cast<std::int64_t>(topo.num_endpoints())),
                 Table::num(power.network_watts(topo), 0),
                 Table::num(power.watts_per_endpoint(topo), 2)});
}

void run() {
  Table table({"topology", "endpoints", "total_W", "W_per_endpoint"});
  int cap = paper_scale() ? 12000 : 3000;

  for (const auto& c : sf::enumerate_slimfly(cap)) {
    if (c.num_endpoints < 150) continue;
    add(table, sf::SlimFlyMMS(c.q));
  }
  for (int p = 2;; ++p) {
    auto df = Dragonfly::balanced(p);
    if (df->num_endpoints() > cap) break;
    add(table, *df);
  }
  for (int p = 6; p * p * p <= cap; p += 3) add(table, FatTree3(p));
  for (int c2 = 4; c2 * c2 * c2 * c2 <= cap; ++c2) add(table, FlattenedButterfly(3, c2));
  for (int n = 8; (1 << n) <= cap; ++n) add(table, Hypercube(n));
  for (int n = 8; (1 << n) <= cap; ++n) add(table, LongHop(n, 6));
  for (int e = 6; e * e * e <= cap; e += 2) add(table, Torus({e, e, e}));
  for (int e = 3; e * e * e * e * e <= cap; ++e) add(table, Torus({e, e, e, e, e}));
  for (int nr : {256, 512}) {
    if (nr * 3 > cap) break;
    add(table, Dln(nr, 14, 3));
  }

  print_table("fig11d", "Total network power (Figures 11d/12d/13d)", table);
}

}  // namespace
}  // namespace slimfly::bench

int main() {
  slimfly::bench::run();
  return 0;
}
