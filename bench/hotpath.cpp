// Hot-path microbenchmark: a small battery of simulation points, each run
// under BOTH stepping engines (cycle and active), reporting the stepping
// loop's work rate — simulated Mcycles/s and flit-hops/s (one flit-hop per
// crossbar grant) — plus how many cycles the active engine actually stepped
// versus fast-forwarded. Writes BENCH_hotpath.json for the CI perf-smoke
// job, which uploads it as an artifact; throughput is reported, never
// gated, matching the `sweep diff` wall-time policy.
//
// Battery cells:
//   * reference — slimfly:q=11 | UGAL-L | uniform @ 0.5, the README's
//     before/after point (busy network; the cycle engine's home turf).
//   * lowload   — torus:dims=8x8x8 | MIN | stencil3d @ 0.002, a mostly-idle
//     network where the active engine's router skipping dominates.
//   * drain     — slimfly:q=11 | UGAL-L | uniform @ 0.7, where the
//     post-injection drain tail is the bulk of the simulated cycles.
//
//   hotpath [--topo SPEC] [--routing SPEC] [--traffic NAME] [--load L]
//           [--out PATH]
//
// Passing any of --topo/--routing/--traffic/--load replaces the battery
// with that single custom cell (still run under both engines).
// SF_BENCH_SCALE / SF_INTRA_THREADS apply as everywhere else.

#include <cstring>
#include <fstream>
#include <optional>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "exp/json.hpp"
#include "sim/network.hpp"
#include "util/rss.hpp"

namespace {

using namespace slimfly;

int usage(const char* argv0, int code) {
  std::cout << "usage: " << argv0
            << " [--topo SPEC] [--routing SPEC] [--traffic NAME]\n"
               "       [--load L] [--out PATH]\n"
               "defaults: the three-cell battery (reference / lowload / "
               "drain),\nBENCH_hotpath.json; any cell flag switches to a "
               "single custom cell.\nEvery cell runs under both stepping "
               "engines.\n";
  return code;
}

struct Cell {
  std::string name;
  std::string topo;
  std::string routing;
  std::string traffic;
  double load = 0.5;
  /// Extra simulated cycles for cells whose wall time would otherwise be
  /// too short to time reliably (0 = the SF_BENCH_SCALE default).
  std::int64_t min_measure = 0;
};

struct EngineRun {
  sim::SimResult res;
  double wall = 0.0;
  double mcyc = 0.0;
  double fhps = 0.0;
};

struct CellResult {
  Cell cell;
  EngineRun cycle;
  EngineRun active;
  double speedup = 0.0;  ///< active Mcycles/s over cycle Mcycles/s
  /// Process peak RSS after this cell's runs — monotone over the process,
  /// so the first (largest-network) cell is the meaningful reading; the CI
  /// soft-compare reports its delta PR-over-PR, never gates it.
  std::uint64_t peak_rss = 0;
};

EngineRun run_cell(const Cell& cell, sim::StepEngine engine,
                   int intra_override = -1) {
  auto topo = topo::make(cell.topo);
  auto bundle = sim::make_routing_spec(cell.routing, *topo);
  auto traffic = sim::make_traffic(cell.traffic, *topo);
  sim::SimConfig cfg = bench::make_sim_config();
  cfg.engine = engine;
  if (intra_override >= 0) cfg.intra_threads = intra_override;
  if (cfg.num_vcs < bundle.algorithm->max_hops()) {
    cfg.num_vcs = bundle.algorithm->max_hops();
  }
  if (cfg.measure_cycles < cell.min_measure) {
    cfg.measure_cycles = cell.min_measure;
  }

  sim::Network net(*topo, *bundle.algorithm, *traffic, cfg, cell.load);
  // Pre-reserve the latency pools so the measured region is exactly the
  // allocation-free steady-state loop (tests/hotpath_test.cpp asserts
  // that property under a counting allocator, for both engines).
  net.reserve_measurement_stats();
  Timer timer;
  EngineRun run;
  run.res = net.run();
  run.wall = timer.seconds();
  if (run.wall > 0.0) {
    run.mcyc = static_cast<double>(run.res.cycles) / run.wall / 1e6;
    run.fhps = static_cast<double>(run.res.flit_hops) / run.wall;
  }
  return run;
}

void print_engine_line(const char* name, const EngineRun& r) {
  std::cout << "  " << name << ": " << exp::json::number(r.mcyc)
            << " Mcycles/s, " << exp::json::number(r.fhps)
            << " flit-hops/s, wall " << exp::json::number(r.wall) << " s\n"
            << "    cycles " << r.res.cycles << " (stepped "
            << r.res.cycles_stepped << ", fast-forwarded "
            << (r.res.cycles - r.res.cycles_stepped) << ")\n";
}

void write_engine_json(std::ostream& os, const EngineRun& r) {
  const char* in = "          ";
  os << in << "\"cycles\": " << r.res.cycles << ",\n"
     << in << "\"cycles_stepped\": " << r.res.cycles_stepped << ",\n"
     << in << "\"cycles_fast_forwarded\": "
     << (r.res.cycles - r.res.cycles_stepped) << ",\n"
     << in << "\"flit_hops\": " << r.res.flit_hops << ",\n"
     << in << "\"wall_seconds\": " << exp::json::number(r.wall) << ",\n"
     << in << "\"mcycles_per_sec\": " << exp::json::number(r.mcyc) << ",\n"
     << in << "\"flit_hops_per_sec\": " << exp::json::number(r.fhps) << ",\n"
     << in << "\"latency\": " << exp::json::number(r.res.avg_latency)
     << ",\n"
     << in << "\"accepted\": " << exp::json::number(r.res.accepted_load)
     << ",\n"
     << in << "\"saturated\": " << (r.res.saturated ? "true" : "false")
     << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_hotpath.json";
  Cell custom{"custom", "slimfly:q=11", "UGAL-L", "uniform", 0.5, 0};
  bool single = false;

  auto next_arg = [&](int& i) -> const char* {
    if (i + 1 >= argc) throw std::invalid_argument("missing value for flag");
    return argv[++i];
  };
  try {
    for (int i = 1; i < argc; ++i) {
      if (!std::strcmp(argv[i], "--topo")) {
        custom.topo = next_arg(i);
        single = true;
      } else if (!std::strcmp(argv[i], "--routing")) {
        custom.routing = next_arg(i);
        single = true;
      } else if (!std::strcmp(argv[i], "--traffic")) {
        custom.traffic = next_arg(i);
        single = true;
      } else if (!std::strcmp(argv[i], "--load")) {
        std::size_t pos = 0;
        custom.load = std::stod(next_arg(i), &pos);
        if (custom.load <= 0.0)
          throw std::invalid_argument("--load must be > 0");
        single = true;
      } else if (!std::strcmp(argv[i], "--out")) {
        out_path = next_arg(i);
      } else {
        return usage(argv[0], 2);
      }
    }

    // Host shape, so every BENCH log records how the machine was used —
    // the numbers are execution-only, results never depend on them.
    std::cout << "[host] hardware_concurrency="
              << std::thread::hardware_concurrency()
              << " intra_threads=" << exp::intra_threads_from_env()
              << " (SF_INTRA_THREADS; 0 = all cores per point)\n"
              << std::flush;

    std::vector<Cell> cells;
    if (single) {
      cells.push_back(custom);
    } else {
      cells.push_back(
          {"reference", "slimfly:q=11", "UGAL-L", "uniform", 0.5, 0});
      // The low-load cell gets a longer measured window: at ~1 injected
      // packet per cycle network-wide its wall time under the active
      // engine would otherwise be too short to time.
      cells.push_back({"lowload", "torus:dims=8x8x8", "MIN", "stencil3d",
                       0.002, 6000});
      cells.push_back(
          {"drain", "slimfly:q=11", "UGAL-L", "uniform", 0.7, 0});
      // Sparse ON/OFF tenants: long OFF segments leave most routers idle,
      // so the cell records how much of the burst workload's idle time the
      // active engine's wake scheduling reclaims.
      cells.push_back({"sparse-burst", "slimfly:q=11", "MIN",
                       "burst:on=40,off=2000,mult=25,base=uniform", 0.02,
                       6000});
    }

    std::vector<CellResult> results;
    for (const Cell& cell : cells) {
      std::cout << "hotpath[" << cell.name << "]: " << cell.topo << " | "
                << cell.routing << " | " << cell.traffic << " @ "
                << cell.load << "\n";
      CellResult r;
      r.cell = cell;
      r.cycle = run_cell(cell, sim::StepEngine::Cycle);
      r.active = run_cell(cell, sim::StepEngine::Active);
      r.speedup = r.cycle.mcyc > 0.0 ? r.active.mcyc / r.cycle.mcyc : 0.0;
      r.peak_rss = peak_rss_bytes();
      print_engine_line("engine cycle ", r.cycle);
      print_engine_line("engine active", r.active);
      std::cout << "  active/cycle speedup: "
                << exp::json::number(r.speedup) << "x\n";
      results.push_back(std::move(r));
    }

    // Intra-point scaling curve: the reference cell re-run under the cycle
    // engine with fixed stepping teams of 1/2/4 (+ all hardware threads
    // when the host has more). Recorded in the BENCH trajectory so the
    // multi-core speedup (or, on small hosts, the barrier overhead of
    // oversubscribed teams) is a tracked number, not folklore. Results are
    // bit-identical for every team size; only the wall time moves.
    struct ScalePoint {
      int workers;
      double wall;
      double mcyc;
    };
    std::vector<ScalePoint> scaling;
    if (!single) {
      std::vector<int> teams = {1, 2, 4};
      const int hw = static_cast<int>(std::thread::hardware_concurrency());
      if (hw > 4) teams.push_back(hw);
      std::cout << "hotpath[scaling]: " << cells.front().topo
                << " | cycle engine | intra team sweep\n";
      for (int w : teams) {
        EngineRun r = run_cell(cells.front(), sim::StepEngine::Cycle, w);
        scaling.push_back({w, r.wall, r.mcyc});
        std::cout << "  intra=" << w << ": " << exp::json::number(r.mcyc)
                  << " Mcycles/s, wall " << exp::json::number(r.wall)
                  << " s\n";
      }
    }

    std::ofstream os(out_path);
    if (!os) throw std::invalid_argument("cannot write \"" + out_path + "\"");
    os << "{\n  \"bench\": \"hotpath\",\n  \"cells\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const CellResult& r = results[i];
      os << "    {\n"
         << "      \"name\": " << exp::json::quote(r.cell.name) << ",\n"
         << "      \"topology\": " << exp::json::quote(r.cell.topo) << ",\n"
         << "      \"routing\": " << exp::json::quote(r.cell.routing)
         << ",\n"
         << "      \"traffic\": " << exp::json::quote(r.cell.traffic)
         << ",\n"
         << "      \"load\": " << exp::json::number(r.cell.load) << ",\n"
         << "      \"active_speedup\": " << exp::json::number(r.speedup)
         << ",\n"
         << "      \"peak_rss_bytes\": " << r.peak_rss << ",\n"
         << "      \"engines\": {\n        \"cycle\": {\n";
      write_engine_json(os, r.cycle);
      os << "        },\n        \"active\": {\n";
      write_engine_json(os, r.active);
      os << "        }\n      }\n    }"
         << (i + 1 < results.size() ? "," : "") << "\n";
    }
    // The first cell's cycle-engine numbers also land at the top level,
    // keeping older BENCH_hotpath.json consumers working.
    const CellResult& head = results.front();
    os << "  ],\n";
    if (!scaling.empty()) {
      os << "  \"intra_scaling\": [\n";
      for (std::size_t i = 0; i < scaling.size(); ++i) {
        os << "    {\"workers\": " << scaling[i].workers
           << ", \"wall_seconds\": " << exp::json::number(scaling[i].wall)
           << ", \"mcycles_per_sec\": " << exp::json::number(scaling[i].mcyc)
           << "}" << (i + 1 < scaling.size() ? "," : "") << "\n";
      }
      os << "  ],\n";
    }
    os << "  \"topology\": " << exp::json::quote(head.cell.topo) << ",\n"
       << "  \"routing\": " << exp::json::quote(head.cell.routing) << ",\n"
       << "  \"traffic\": " << exp::json::quote(head.cell.traffic) << ",\n"
       << "  \"load\": " << exp::json::number(head.cell.load) << ",\n"
       << "  \"intra_threads\": " << exp::intra_threads_from_env() << ",\n"
       << "  \"cycles\": " << head.cycle.res.cycles << ",\n"
       << "  \"flit_hops\": " << head.cycle.res.flit_hops << ",\n"
       << "  \"wall_seconds\": " << exp::json::number(head.cycle.wall)
       << ",\n"
       << "  \"mcycles_per_sec\": " << exp::json::number(head.cycle.mcyc)
       << ",\n"
       << "  \"flit_hops_per_sec\": " << exp::json::number(head.cycle.fhps)
       << ",\n"
       << "  \"latency\": "
       << exp::json::number(head.cycle.res.avg_latency) << ",\n"
       << "  \"accepted\": "
       << exp::json::number(head.cycle.res.accepted_load) << ",\n"
       << "  \"saturated\": "
       << (head.cycle.res.saturated ? "true" : "false") << "\n"
       << "}\n";
    std::cout << "wrote " << out_path << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
