// Hot-path microbenchmark: runs one simulation point (default: the
// slimfly:q=11 | UGAL-L | uniform @ 0.5 point the README's before/after
// numbers use) on a directly-driven Network and reports the stepping
// loop's work rate — simulated Mcycles/s and flit-hops/s (one flit-hop per
// crossbar grant). Writes BENCH_hotpath.json for the CI perf-smoke job,
// which uploads it as an artifact; throughput is reported, never gated,
// matching the `sweep diff` wall-time policy.
//
//   hotpath [--topo SPEC] [--routing SPEC] [--traffic NAME] [--load L]
//           [--out PATH]
//
// SF_BENCH_SCALE / SF_INTRA_THREADS apply as everywhere else.

#include <cstring>
#include <fstream>
#include <optional>

#include "bench_common.hpp"
#include "exp/json.hpp"
#include "sim/network.hpp"

namespace {

int usage(const char* argv0, int code) {
  std::cout << "usage: " << argv0
            << " [--topo SPEC] [--routing SPEC] [--traffic NAME]\n"
               "       [--load L] [--out PATH]\n"
               "defaults: slimfly:q=11 UGAL-L uniform @ 0.5, BENCH_hotpath.json\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slimfly;
  std::string topo_spec = "slimfly:q=11";
  std::string routing_spec = "UGAL-L";
  std::string traffic_name = "uniform";
  std::string out_path = "BENCH_hotpath.json";
  double load = 0.5;

  auto next_arg = [&](int& i) -> const char* {
    if (i + 1 >= argc) throw std::invalid_argument("missing value for flag");
    return argv[++i];
  };
  try {
    for (int i = 1; i < argc; ++i) {
      if (!std::strcmp(argv[i], "--topo")) {
        topo_spec = next_arg(i);
      } else if (!std::strcmp(argv[i], "--routing")) {
        routing_spec = next_arg(i);
      } else if (!std::strcmp(argv[i], "--traffic")) {
        traffic_name = next_arg(i);
      } else if (!std::strcmp(argv[i], "--load")) {
        std::size_t pos = 0;
        load = std::stod(next_arg(i), &pos);
        if (load <= 0.0) throw std::invalid_argument("--load must be > 0");
      } else if (!std::strcmp(argv[i], "--out")) {
        out_path = next_arg(i);
      } else {
        return usage(argv[0], 2);
      }
    }

    auto topo = topo::make(topo_spec);
    auto bundle = sim::make_routing_spec(routing_spec, *topo);
    auto traffic = sim::make_traffic(traffic_name, *topo);
    sim::SimConfig cfg = bench::make_sim_config();
    if (cfg.num_vcs < bundle.algorithm->max_hops()) {
      cfg.num_vcs = bundle.algorithm->max_hops();
    }

    sim::Network net(*topo, *bundle.algorithm, *traffic, cfg, load);
    // Pre-reserve the latency pools so the measured region is exactly the
    // allocation-free steady-state loop (tests/hotpath_test.cpp asserts
    // that property under a counting allocator).
    net.reserve_measurement_stats();
    Timer timer;
    sim::SimResult res = net.run();
    const double wall = timer.seconds();

    const double mcyc = wall > 0.0
                            ? static_cast<double>(res.cycles) / wall / 1e6
                            : 0.0;
    const double fhps = wall > 0.0
                            ? static_cast<double>(res.flit_hops) / wall
                            : 0.0;
    std::cout << "hotpath: " << topo_spec << " | " << routing_spec << " | "
              << traffic_name << " @ " << load << "\n"
              << "  cycles          " << res.cycles << "\n"
              << "  flit-hops       " << res.flit_hops << "\n"
              << "  wall            " << exp::json::number(wall) << " s\n"
              << "  Mcycles/s       " << exp::json::number(mcyc) << "\n"
              << "  flit-hops/s     " << exp::json::number(fhps) << "\n"
              << "  avg latency     " << exp::json::number(res.avg_latency) << "\n"
              << "  accepted load   " << exp::json::number(res.accepted_load)
              << (res.saturated ? "  [saturated]" : "") << "\n";

    std::ofstream os(out_path);
    if (!os) throw std::invalid_argument("cannot write \"" + out_path + "\"");
    os << "{\n"
       << "  \"bench\": \"hotpath\",\n"
       << "  \"topology\": \"" << topo_spec << "\",\n"
       << "  \"routing\": \"" << routing_spec << "\",\n"
       << "  \"traffic\": \"" << traffic_name << "\",\n"
       << "  \"load\": " << exp::json::number(load) << ",\n"
       << "  \"intra_threads\": " << static_cast<int>(net.intra_threads())
       << ",\n"
       << "  \"cycles\": " << res.cycles << ",\n"
       << "  \"flit_hops\": " << res.flit_hops << ",\n"
       << "  \"wall_seconds\": " << exp::json::number(wall) << ",\n"
       << "  \"mcycles_per_sec\": " << exp::json::number(mcyc) << ",\n"
       << "  \"flit_hops_per_sec\": " << exp::json::number(fhps) << ",\n"
       << "  \"latency\": " << exp::json::number(res.avg_latency) << ",\n"
       << "  \"accepted\": " << exp::json::number(res.accepted_load) << ",\n"
       << "  \"saturated\": " << (res.saturated ? "true" : "false") << "\n"
       << "}\n";
    std::cout << "wrote " << out_path << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
