// Section VII-A extension (paper: "left for future research"): fill spare
// router ports with random channels. Starting from the balanced Slim Fly,
// add 1-5 random cables per router (as if deploying on 48-port routers)
// and measure the structural gains: average distance, bisection bandwidth,
// and resiliency — plus the copper-only intra-rack variant.

#include "bench_common.hpp"

#include "analysis/metrics.hpp"
#include "analysis/partition.hpp"
#include "analysis/resilience.hpp"
#include "topo/augmented.hpp"

namespace slimfly::bench {
namespace {

void add(Table& table, const std::string& label, const Topology& topo) {
  analysis::ResilienceOptions opts;
  opts.trials = 6;
  table.add_row({label,
                 Table::num(static_cast<std::int64_t>(topo.graph().num_edges())),
                 Table::num(analysis::average_endpoint_distance(topo), 3),
                 Table::num(analysis::bisection_bandwidth_gbps(topo, 10.0, 4), 0),
                 Table::num(static_cast<std::int64_t>(
                     analysis::max_failures_connected(topo.graph(), opts)))});
}

void run() {
  sf::SlimFlyMMS base(paper_scale() ? 19 : 11);
  Table table({"network", "cables", "avg_hops", "bisection_gbps", "resil_%"});
  add(table, "SF baseline", base);
  for (int extra : {1, 2, 5}) {
    AugmentedTopology global(base, extra, /*intra_rack_only=*/false);
    add(table, "SF +" + std::to_string(extra) + " random", global);
  }
  AugmentedTopology copper(base, 2, /*intra_rack_only=*/true);
  add(table, "SF +2 intra-rack only", copper);

  print_table("sec7a_rnd", "Random spare-port channels (Section VII-A extension)",
              table);
}

}  // namespace
}  // namespace slimfly::bench

int main() {
  slimfly::bench::run();
  return 0;
}
