// Figure 5a: router counts vs the diameter-2 Moore bound.
// Series: Moore bound, Slim Fly MMS, 2-level flattened butterfly,
// 2-level fat tree, Long Hop. Expected: SF ~88% of the bound at k'=96,
// FBF ~20-26%, FT ~1.6%, LH ~1%.

#include "bench_common.hpp"

#include "analysis/moore.hpp"
#include "sf/generators.hpp"

namespace slimfly::bench {
namespace {

void run() {
  Table table({"series", "k_net", "routers", "fraction_of_MB"});
  auto row = [&](const std::string& series, int k, long long nr) {
    table.add_row({series, Table::num(static_cast<std::int64_t>(k)),
                   Table::num(static_cast<std::int64_t>(nr)),
                   Table::num(analysis::moore_fraction(nr, k, 2), 4)});
  };

  // Slim Fly MMS family: q prime power, k' = (3q - delta)/2, Nr = 2q^2.
  for (int q = 4; q <= 67; ++q) {
    if (!sf::is_valid_mms_q(q)) continue;
    int delta = sf::delta_of_q(q);
    int k = (3 * q - delta) / 2;
    row("SlimFly-MMS", k, 2LL * q * q);
  }
  // Moore bound itself at the same radices.
  for (int k = 5; k <= 100; k += 5) {
    row("MooreBound2", k, analysis::moore_bound(k, 2));
  }
  // 2-level flattened butterfly: c x c array, k' = 2(c-1), Nr = c^2.
  for (int c = 4; c <= 51; c += 4) row("FlatButterfly2", 2 * (c - 1), 1LL * c * c);
  // 2-level fat tree from radix-k' switches: k' leaves + k'/2 spines.
  for (int k = 8; k <= 100; k += 8) row("FatTree2", k, k + k / 2);
  // Long Hop (Cayley over Z_2^n, n + L generators; Nr = 2^n). Tomic's
  // diameter-2 constructions need k' ~ Nr/2: use L = 2^(n-1) - n.
  for (int n = 4; n <= 10; ++n) {
    int nr = 1 << n;
    row("LongHop", nr / 2, nr);
  }

  print_table("fig05a", "Moore bound comparison, diameter 2", table);
}

}  // namespace
}  // namespace slimfly::bench

int main() {
  slimfly::bench::run();
  return 0;
}
