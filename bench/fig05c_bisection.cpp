// Figure 5c: bisection bandwidth (10 Gb/s links) vs network size.
// SF and DLN are measured with the FM partitioner (the paper used METIS);
// the closed-form families (HC, FT at N/2; tori; DF/FBF near N/4; LH at
// 3N/2) are measured too, cross-checking the formulas.
// Expected ordering: LH > FT/HC > SF > DF/FBF > tori.

#include "bench_common.hpp"

#include "analysis/partition.hpp"
#include "sf/enumerate.hpp"
#include "topo/dln.hpp"
#include "topo/flatbutterfly.hpp"
#include "topo/hypercube.hpp"
#include "topo/longhop.hpp"
#include "topo/torus.hpp"

namespace slimfly::bench {
namespace {

void add(Table& table, const Topology& topo, int starts = 6) {
  double bb = analysis::bisection_bandwidth_gbps(topo, 10.0, starts);
  table.add_row({topo.symbol(), Table::num(static_cast<std::int64_t>(topo.num_endpoints())),
                 Table::num(bb, 0),
                 Table::num(bb / (10.0 * topo.num_endpoints() / 2.0), 3)});
}

void run() {
  Table table({"topology", "endpoints", "bisection_gbps", "fraction_of_full"});
  int cap = paper_scale() ? 8000 : 2500;

  for (const auto& c : sf::enumerate_slimfly(cap)) {
    if (c.num_endpoints < 150) continue;
    add(table, sf::SlimFlyMMS(c.q));
  }
  for (int p = 2;; ++p) {
    auto df = Dragonfly::balanced(p);
    if (df->num_endpoints() > cap) break;
    add(table, *df);
  }
  for (int p = 6; p * p * p <= cap; p += 3) add(table, FatTree3(p));
  for (int c = 4; c * c * c * c <= cap; ++c) add(table, FlattenedButterfly(3, c));
  for (int n = 8; (1 << n) <= cap; ++n) add(table, Hypercube(n));
  for (int n = 8; (1 << n) <= cap; ++n) add(table, LongHop(n, 6));
  for (int e = 6; e * e * e <= cap; e += 2) add(table, Torus({e, e, e}));
  for (int e = 3; e * e * e * e * e <= cap; ++e) add(table, Torus({e, e, e, e, e}));
  for (int nr : {128, 256, 512}) {
    if (nr * 3 > cap) break;
    add(table, Dln(nr, 14, 3));
  }

  print_table("fig05c", "Bisection bandwidth (10 Gb/s links)", table);
}

}  // namespace
}  // namespace slimfly::bench

int main() {
  slimfly::bench::run();
  return 0;
}
