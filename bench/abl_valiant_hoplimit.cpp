// Ablation (paper Section IV-B): constraining Valiant paths to at most 3
// hops. The paper reports the constraint *increases* average latency by
// limiting path diversity; this bench regenerates the comparison.
//
// Declarative since the suite-file PR: the hop cap rides the routing spec
// string ("VAL:hoplimit=3"). The same grid is checked in as
// examples/suites/abl_valiant.json for `sweep --config`.

#include <cstring>

#include "bench_common.hpp"

int main() {
  using namespace slimfly;
  const std::string topo =
      bench::paper_scale() ? "slimfly:q=19" : "slimfly:q=7";

  exp::ExperimentSpec spec;
  spec.name = "abl_val";
  spec.loads = bench::bench_loads();
  spec.config = bench::make_sim_config();
  for (const char* routing : {"VAL", "VAL:hoplimit=3"}) {
    const std::string tag =
        std::strcmp(routing, "VAL") ? "VAL-3" : "VAL";
    spec.series.push_back({topo, routing, "uniform", tag + "-rand", {}});
    spec.series.push_back({topo, routing, "worst-sf", tag + "-worst", {}});
  }

  bench::run_experiment(spec, "Valiant hop-limit ablation (Section IV-B)");
  return 0;
}
