// Ablation (paper Section IV-B): constraining Valiant paths to at most 3
// hops. The paper reports the constraint *increases* average latency by
// limiting path diversity; this bench regenerates the comparison.

#include "bench_common.hpp"

#include "sim/routing/valiant.hpp"

namespace slimfly::bench {
namespace {

void run() {
  sf::SlimFlyMMS topo(paper_scale() ? 19 : 7);
  sim::SimConfig cfg = make_sim_config();
  auto dist = std::make_shared<sim::DistanceTable>(topo.graph());
  Table table = latency_table();

  sim::ValiantRouting val(topo, *dist);
  sim::ValiantRouting val3(topo, *dist, 3);
  for (auto* routing : {&val, &val3}) {
    sweep_into_table(table, routing->name() + "-rand", topo, *routing,
                     [&] { return sim::make_uniform(topo.num_endpoints()); }, cfg);
    sweep_into_table(table, routing->name() + "-worst", topo, *routing,
                     [&] { return sim::make_worst_case_sf(topo); }, cfg);
    std::cout << "  [abl_val] " << routing->name() << " done\n" << std::flush;
  }
  print_table("abl_val", "Valiant hop-limit ablation (Section IV-B)", table);
}

}  // namespace
}  // namespace slimfly::bench

int main() {
  slimfly::bench::run();
  return 0;
}
