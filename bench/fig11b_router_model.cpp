// Figure 11b: router cost model — $ vs radix (linear fit to Mellanox IB
// FDR10, f(k) = 350.4 k - 892.3).

#include "bench_common.hpp"

#include "cost/routers.hpp"

namespace slimfly::bench {
namespace {

void run() {
  cost::RouterCostModel model;
  Table table({"radix", "cost_$"});
  for (int k : {8, 16, 24, 36, 43, 48, 64, 80, 96, 108}) {
    table.add_row({Table::num(static_cast<std::int64_t>(k)),
                   Table::num(model.cost(k), 0)});
  }
  print_table("fig11b", "Router cost model (Figure 11b)", table);
}

}  // namespace
}  // namespace slimfly::bench

int main() {
  slimfly::bench::run();
  return 0;
}
