// Table IV: the detailed cost & power case study around the k~43,
// N~10K design point — low-radix networks of comparable size, high-radix
// networks of comparable N or identical radix, the special DF with both,
// and the Slim Fly. Headline: SF ~25% cheaper and ~25% more power-
// efficient than the comparable DF.
//
// Always runs at the paper's sizes (this bench is analytic — no cycle
// simulation — so the full-size networks are cheap to build).

#include "bench_common.hpp"

#include "cost/costmodel.hpp"
#include "topo/dln.hpp"
#include "topo/flatbutterfly.hpp"
#include "topo/hypercube.hpp"
#include "topo/longhop.hpp"
#include "topo/torus.hpp"

namespace slimfly::bench {
namespace {

void add(Table& table, const std::string& label, const Topology& topo) {
  auto c = cost::evaluate_cost(topo, cost::cable_fdr10());
  table.add_row({label, Table::num(static_cast<std::int64_t>(c.num_endpoints)),
                 Table::num(static_cast<std::int64_t>(c.num_routers)),
                 Table::num(static_cast<std::int64_t>(c.router_radix)),
                 Table::num(c.electric_cables), Table::num(c.fiber_cables),
                 Table::num(c.cost_per_endpoint, 0),
                 Table::num(c.watts_per_endpoint, 2)});
}

void run() {
  Table table({"config", "N", "Nr", "k", "electric", "fiber", "$_per_node",
               "W_per_node"});

  // Low-radix topologies with N comparable to the SF (Table IV left).
  add(table, "T3D", Torus({22, 22, 22}));                // 10648
  add(table, "T5D", Torus({6, 6, 6, 6, 8}));             // 10368 (paper's size)
  add(table, "HC", Hypercube(13));                       // 8192
  add(table, "LH-HC", LongHop(13, 6));                   // 8192, k=19
  // High-radix topologies with comparable N (Table IV middle).
  add(table, "FT-3 (p=22)", FatTree3(22));               // 10648, k=44
  add(table, "DLN (Nr=1386)", Dln(1386, 18, 7));         // ~9702
  add(table, "FBF-3 (c=10)", FlattenedButterfly(3, 10)); // 10000
  add(table, "DF (p=7)", Dragonfly(7, 14, 7, 99));       // 9702, k=27
  // The special DF with comparable N AND identical k (Table IV right).
  add(table, "DF (k=43)", Dragonfly(11, 22, 11, 45));    // 10890, k=43
  // Slim Fly flagship.
  add(table, "SF (q=19)", sf::SlimFlyMMS(19));           // 10830, k=44

  print_table("table04", "Cost & power case study (Table IV)", table);

  // Headline ratios.
  auto sf_cost = cost::evaluate_cost(sf::SlimFlyMMS(19), cost::cable_fdr10());
  auto df_cost = cost::evaluate_cost(Dragonfly(11, 22, 11, 45), cost::cable_fdr10());
  Table headline({"metric", "SF", "DF(k=43)", "SF_advantage_%"});
  headline.add_row({"$_per_node", Table::num(sf_cost.cost_per_endpoint, 0),
                    Table::num(df_cost.cost_per_endpoint, 0),
                    Table::num(100.0 * (1.0 - sf_cost.cost_per_endpoint /
                                                  df_cost.cost_per_endpoint), 1)});
  headline.add_row({"W_per_node", Table::num(sf_cost.watts_per_endpoint, 2),
                    Table::num(df_cost.watts_per_endpoint, 2),
                    Table::num(100.0 * (1.0 - sf_cost.watts_per_endpoint /
                                                  df_cost.watts_per_endpoint), 1)});
  print_table("table04-headline", "SF vs DF headline advantage", headline);
}

}  // namespace
}  // namespace slimfly::bench

int main() {
  slimfly::bench::run();
  return 0;
}
