// Figure 6c: latency vs offered load under the shift pattern
// (d = (s mod N/2) + N/2 or (s mod N/2), probability 1/2 each).

#include "bench_common.hpp"

int main() {
  slimfly::bench::run_fig6("fig06c", "Shift traffic (Figure 6c)", "shift");
  return 0;
}
