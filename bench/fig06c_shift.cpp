// Figure 6c: latency vs offered load under the shift pattern
// (d = (s mod N/2) + N/2 or (s mod N/2), probability 1/2 each).

#include "bench_common.hpp"

int main() {
  using namespace slimfly;
  bench::run_fig6("fig06c", "Shift traffic (Figure 6c)",
                  [](const Topology& topo) {
                    return sim::make_shift(topo.num_endpoints());
                  });
  return 0;
}
