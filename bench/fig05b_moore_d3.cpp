// Figure 5b: router counts vs the diameter-3 Moore bound.
// Series: Moore bound, Delorme graphs (~68%), BDF graphs (~30%),
// Dragonfly (~14%), 3-level flattened butterfly (~5%).

#include "bench_common.hpp"

#include "analysis/moore.hpp"
#include "sf/bdf.hpp"
#include "sf/delorme.hpp"
#include "util/numtheory.hpp"

namespace slimfly::bench {
namespace {

void run() {
  Table table({"series", "k_net", "routers", "fraction_of_MB"});
  auto row = [&](const std::string& series, long long k, long long nr) {
    table.add_row({series, Table::num(k), Table::num(nr),
                   Table::num(analysis::moore_fraction(nr, static_cast<int>(k), 3), 4)});
  };

  for (int k = 5; k <= 100; k += 5) {
    row("MooreBound3", k, analysis::moore_bound(k, 3));
  }
  // BDF: odd prime powers u, k' = 3(u+1)/2.
  for (int u = 3; u <= 67; u += 2) {
    if (!as_prime_power(u)) continue;
    auto m = sf::bdf_model(u);
    row("SlimFly-BDF", m.k_net, m.num_routers);
  }
  // Delorme: prime powers v, k' = (v+1)^2.
  for (const auto& m : sf::delorme_family(100)) {
    row("SlimFly-DEL", m.k_net, m.num_routers);
  }
  // Balanced Dragonfly: k' = a-1+h = 3p-1, Nr = 2p(2p^2+1).
  for (int p = 2; 3 * p - 1 <= 100; ++p) {
    row("Dragonfly", 3 * p - 1, 2LL * p * (2LL * p * p + 1));
  }
  // FBF-3: k' = 3(c-1), Nr = c^3.
  for (int c = 3; 3 * (c - 1) <= 100; ++c) {
    row("FlatButterfly3", 3 * (c - 1), 1LL * c * c * c);
  }

  print_table("fig05b", "Moore bound comparison, diameter 3", table);
}

}  // namespace
}  // namespace slimfly::bench

int main() {
  slimfly::bench::run();
  return 0;
}
