// Section III-D3: resiliency measured as the largest removable link
// fraction keeping the average path length within +1 hop.
// Expected: DLN ~60%, SF ~55%, tori ~55%, DF ~45% at paper scale.

#include "bench_common.hpp"

#include "analysis/resilience.hpp"
#include "topo/dln.hpp"
#include "topo/hypercube.hpp"
#include "topo/torus.hpp"

namespace slimfly::bench {
namespace {

void run() {
  analysis::ResilienceOptions opts;
  opts.trials = paper_scale() ? 16 : 8;

  Table table({"topology", "endpoints", "max_removable_%_avg+1"});
  auto row = [&](const Topology& topo) {
    table.add_row({topo.symbol(),
                   Table::num(static_cast<std::int64_t>(topo.num_endpoints())),
                   Table::num(static_cast<std::int64_t>(
                       analysis::max_failures_avg_distance(topo.graph(), 1.0, opts)))});
  };

  row(sf::SlimFlyMMS(5));
  row(sf::SlimFlyMMS(7));
  row(*Dragonfly::balanced(2));
  row(Dln(256, 14, 1));
  row(Torus({6, 6, 6}));
  row(Hypercube(8));
  if (paper_scale()) {
    row(sf::SlimFlyMMS(11));
    row(*Dragonfly::balanced(3));
    row(Dln(1024, 14, 1));
  }

  print_table("sec3d3", "Average-path-increase resiliency (Section III-D3)", table);
}

}  // namespace
}  // namespace slimfly::bench

int main() {
  slimfly::bench::run();
  return 0;
}
