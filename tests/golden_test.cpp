// Golden-trajectory regression harness: the pinned examples/suites/
// golden_mini.json suite is run here and its full stats output compared
// *exactly* against tests/golden/golden_mini.trajectory. Bit-identical
// determinism (PR 1/2) makes exact comparison valid; the thread matrix
// re-checks it under every (across-point x intra-point) worker combination
// the satellite CI matrix uses.
//
// Regenerating after an intentional simulator change:
//   SF_UPDATE_GOLDEN=1 ./build/golden_test
// rewrites BOTH golden files (the .trajectory and the BENCH json). The
// BENCH regeneration preserves the prior file's wall_seconds per matching
// point (exp::preserve_wall_seconds), so its git diff shows only
// result-bearing changes — wall time never churns. Say so in the PR — a
// golden change is a results change.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "cost/costmodel.hpp"
#include "exp/diff.hpp"
#include "exp/json.hpp"
#include "exp/suite.hpp"
#include "topo/registry.hpp"

namespace slimfly {
namespace {

std::string source_path(const std::string& rel) {
  return std::string(SLIMFLY_SOURCE_DIR) + "/" + rel;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

exp::ExperimentSpec golden_spec() {
  return exp::suite_to_spec(
      exp::load_suite_file(source_path("examples/suites/golden_mini.json")));
}

const std::string kTrajectoryPath = "tests/golden/golden_mini.trajectory";

TEST(GoldenTrajectory, MatchesCheckedInTrajectoryExactly) {
  exp::ExperimentSpec spec = golden_spec();
  exp::ExperimentEngine engine(1);
  std::vector<exp::RunResult> results = engine.run(spec);
  const std::string got = exp::golden_trajectory(spec, results);
  if (std::getenv("SF_UPDATE_GOLDEN")) {
    std::ofstream os(source_path(kTrajectoryPath));
    ASSERT_TRUE(os.good());
    os << got;
    std::cout << "updated " << kTrajectoryPath << "\n";
    // Also regenerate the BENCH golden, preserving the prior file's wall
    // times per matching point so the diff shows only result-bearing
    // changes (wall-derived throughput follows the preserved wall).
    std::size_t preserved = 0;
    try {
      exp::Trajectory prior = exp::load_bench_file(
          source_path("tests/golden/BENCH_golden_mini.json"));
      preserved = exp::preserve_wall_seconds(prior, spec, results);
    } catch (const std::exception&) {
      // First generation: no prior file to preserve from.
    }
    const std::string path =
        exp::write_json_file(spec, results, 1, source_path("tests/golden"));
    ASSERT_FALSE(path.empty());
    std::cout << "updated " << path << " (" << preserved
              << " wall times preserved)\n";
    return;
  }
  const std::string want = read_file(source_path(kTrajectoryPath));
  EXPECT_EQ(want, got)
      << "golden trajectory drifted; if the simulator change is intentional, "
         "regenerate with SF_UPDATE_GOLDEN=1 (see tests/golden/README.md)";
}

TEST(GoldenTrajectory, BitIdenticalAcrossThreadAndEngineMatrix) {
  exp::ExperimentSpec spec = golden_spec();
  const std::string want = read_file(source_path(kTrajectoryPath));
  // SF_THREADS x SF_INTRA_THREADS x SF_ENGINE x SF_ORACLE matrix,
  // constructed directly so the test is hermetic against the environment.
  // engine(1) with intra=2 clamps to sequential (one worker owns the whole
  // budget) — still compared. The stepping engine is a scheduling knob and
  // the distance oracle a memory knob: every cell reproduces the same
  // pinned trajectory (the SF-UGAL-L-active and DLN-UGAL-L-oracle series
  // keep their per-series overrides in every cell).
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (int intra : {1, 2}) {
      for (sim::StepEngine step_engine :
           {sim::StepEngine::Cycle, sim::StepEngine::Active}) {
        for (sim::OracleMode oracle :
             {sim::OracleMode::Table, sim::OracleMode::Family}) {
          exp::ExperimentSpec run = spec;
          run.config.intra_threads = intra;
          run.config.engine = step_engine;
          run.config.oracle = oracle;
          exp::ExperimentEngine engine(threads);
          const std::string got = exp::golden_trajectory(run, engine.run(run));
          EXPECT_EQ(want, got)
              << "SF_THREADS=" << threads << " SF_INTRA_THREADS=" << intra
              << " SF_ENGINE=" << sim::to_string(step_engine)
              << " SF_ORACLE=" << sim::to_string(oracle);
        }
      }
    }
  }
}

TEST(GoldenTrajectory, SchedulerAxisIsByteIdentical) {
  exp::ExperimentSpec spec = golden_spec();
  const std::string want = read_file(source_path(kTrajectoryPath));
  // The point scheduler (static split vs work stealing) is execution-only:
  // whichever runner claims a point, the point's seed comes from
  // exp::point_seed and its stepping team only changes how many workers
  // cover the fixed shard set between the same barriers. Every cell must
  // reproduce the pinned trajectory byte-for-byte — including stealing
  // teams that grow mid-point as sibling points drain (threads > points
  // makes spares available immediately).
  for (std::size_t threads : {std::size_t{2}, std::size_t{32}}) {
    for (exp::SchedulerMode mode :
         {exp::SchedulerMode::Static, exp::SchedulerMode::Stealing}) {
      exp::ExperimentEngine engine(threads);
      engine.set_scheduler(mode);
      const std::string got = exp::golden_trajectory(spec, engine.run(spec));
      EXPECT_EQ(want, got) << "SF_THREADS=" << threads
                           << " SF_SCHEDULER=" << exp::to_string(mode);
    }
  }
}

TEST(GoldenTrajectory, DiffAgainstCheckedInBenchPasses) {
  exp::ExperimentSpec spec = golden_spec();
  exp::ExperimentEngine engine(2);
  exp::Trajectory now = exp::trajectory_of(spec, engine.run(spec));
  exp::Trajectory golden =
      exp::load_bench_file(source_path("tests/golden/BENCH_golden_mini.json"));
  exp::DiffReport report = exp::diff_trajectories(golden, now);
  if (!report.passed) {
    std::ostringstream os;
    exp::print_diff(os, report, false);
    FAIL() << "sweep-diff regression against tests/golden/"
              "BENCH_golden_mini.json:\n"
           << os.str();
  }
  EXPECT_EQ(report.compared, 20u);  // 10 series x 2 loads, no truncation
}

// The analysis/cost layers' outputs for every distinct golden_mini
// topology, as one deterministic text block — the static-analysis
// counterpart of the simulation trajectory. Every number goes through
// exp::json::number (shortest round-trip form), so the comparison is exact.
std::string metrics_and_cost_block(const exp::ExperimentSpec& spec) {
  std::vector<std::string> specs;
  for (const auto& s : spec.series) {
    bool seen = false;
    for (const auto& t : specs) seen = seen || t == s.topology;
    if (!seen) specs.push_back(s.topology);
  }
  std::ostringstream os;
  for (const auto& t : specs) {
    auto topo = topo::make(t);
    const Graph& g = topo->graph();
    const cost::NetworkCost c = cost::evaluate_cost(*topo, cost::cable_fdr10());
    os << t << "\n"
       << "  routers=" << topo->num_routers()
       << " endpoints=" << topo->num_endpoints()
       << " radix=" << topo->network_radix() << "\n"
       << "  diameter=" << analysis::diameter(g)
       << " avg_distance=" << exp::json::number(analysis::average_distance(g))
       << " avg_endpoint_distance="
       << exp::json::number(analysis::average_endpoint_distance(*topo))
       << " connected=" << (analysis::is_connected(g) ? "yes" : "no") << "\n"
       << "  cost[fdr10]: electric=" << c.electric_cables
       << " fiber=" << c.fiber_cables
       << " routers=" << exp::json::number(c.router_cost)
       << " cables=" << exp::json::number(c.cable_cost)
       << " total=" << exp::json::number(c.total_cost)
       << " per_endpoint=" << exp::json::number(c.cost_per_endpoint) << "\n"
       << "  power: total_w=" << exp::json::number(c.watts_total)
       << " per_endpoint_w=" << exp::json::number(c.watts_per_endpoint)
       << "\n";
  }
  return os.str();
}

const std::string kMetricsPath = "tests/golden/golden_mini.metrics";

TEST(GoldenMetrics, AnalysisAndCostMatchCheckedInGolden) {
  // Pins src/analysis (BFS metrics) and src/cost (cable/router/power
  // models) for the same topology set the trajectory pins the simulator
  // for: a drive-by change to either layer fails here, not in a figure
  // reviewed by eye. Regenerate with SF_UPDATE_GOLDEN=1 (see
  // tests/golden/README.md) — and say so in the PR, it is a results change.
  const std::string got = metrics_and_cost_block(golden_spec());
  if (std::getenv("SF_UPDATE_GOLDEN")) {
    std::ofstream os(source_path(kMetricsPath));
    ASSERT_TRUE(os.good());
    os << got;
    std::cout << "updated " << kMetricsPath << "\n";
    return;
  }
  const std::string want = read_file(source_path(kMetricsPath));
  EXPECT_EQ(want, got)
      << "analysis/cost golden drifted; if the change is intentional, "
         "regenerate with SF_UPDATE_GOLDEN=1 (see tests/golden/README.md)";
}

TEST(GoldenTrajectory, PerturbedTrajectoryIsCaught) {
  exp::Trajectory golden =
      exp::load_bench_file(source_path("tests/golden/BENCH_golden_mini.json"));
  exp::Trajectory perturbed = golden;
  perturbed.points.at(3).latency += 1e-9;  // even an ULP-scale drift fails
  EXPECT_FALSE(exp::diff_trajectories(golden, perturbed).passed);
}

}  // namespace
}  // namespace slimfly
