// Golden-trajectory regression harness: the pinned examples/suites/
// golden_mini.json suite is run here and its full stats output compared
// *exactly* against tests/golden/golden_mini.trajectory. Bit-identical
// determinism (PR 1/2) makes exact comparison valid; the thread matrix
// re-checks it under every (across-point x intra-point) worker combination
// the satellite CI matrix uses.
//
// Regenerating after an intentional simulator change:
//   SF_UPDATE_GOLDEN=1 ./build/golden_test
// rewrites BOTH golden files (the .trajectory and the BENCH json). The
// BENCH regeneration preserves the prior file's wall_seconds per matching
// point (exp::preserve_wall_seconds), so its git diff shows only
// result-bearing changes — wall time never churns. Say so in the PR — a
// golden change is a results change.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/diff.hpp"
#include "exp/suite.hpp"

namespace slimfly {
namespace {

std::string source_path(const std::string& rel) {
  return std::string(SLIMFLY_SOURCE_DIR) + "/" + rel;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

exp::ExperimentSpec golden_spec() {
  return exp::suite_to_spec(
      exp::load_suite_file(source_path("examples/suites/golden_mini.json")));
}

const std::string kTrajectoryPath = "tests/golden/golden_mini.trajectory";

TEST(GoldenTrajectory, MatchesCheckedInTrajectoryExactly) {
  exp::ExperimentSpec spec = golden_spec();
  exp::ExperimentEngine engine(1);
  std::vector<exp::RunResult> results = engine.run(spec);
  const std::string got = exp::golden_trajectory(spec, results);
  if (std::getenv("SF_UPDATE_GOLDEN")) {
    std::ofstream os(source_path(kTrajectoryPath));
    ASSERT_TRUE(os.good());
    os << got;
    std::cout << "updated " << kTrajectoryPath << "\n";
    // Also regenerate the BENCH golden, preserving the prior file's wall
    // times per matching point so the diff shows only result-bearing
    // changes (wall-derived throughput follows the preserved wall).
    std::size_t preserved = 0;
    try {
      exp::Trajectory prior = exp::load_bench_file(
          source_path("tests/golden/BENCH_golden_mini.json"));
      preserved = exp::preserve_wall_seconds(prior, spec, results);
    } catch (const std::exception&) {
      // First generation: no prior file to preserve from.
    }
    const std::string path =
        exp::write_json_file(spec, results, 1, source_path("tests/golden"));
    ASSERT_FALSE(path.empty());
    std::cout << "updated " << path << " (" << preserved
              << " wall times preserved)\n";
    return;
  }
  const std::string want = read_file(source_path(kTrajectoryPath));
  EXPECT_EQ(want, got)
      << "golden trajectory drifted; if the simulator change is intentional, "
         "regenerate with SF_UPDATE_GOLDEN=1 (see tests/golden/README.md)";
}

TEST(GoldenTrajectory, BitIdenticalAcrossThreadAndEngineMatrix) {
  exp::ExperimentSpec spec = golden_spec();
  const std::string want = read_file(source_path(kTrajectoryPath));
  // SF_THREADS x SF_INTRA_THREADS x SF_ENGINE x SF_ORACLE matrix,
  // constructed directly so the test is hermetic against the environment.
  // engine(1) with intra=2 clamps to sequential (one worker owns the whole
  // budget) — still compared. The stepping engine is a scheduling knob and
  // the distance oracle a memory knob: every cell reproduces the same
  // pinned trajectory (the SF-UGAL-L-active and DLN-UGAL-L-oracle series
  // keep their per-series overrides in every cell).
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (int intra : {1, 2}) {
      for (sim::StepEngine step_engine :
           {sim::StepEngine::Cycle, sim::StepEngine::Active}) {
        for (sim::OracleMode oracle :
             {sim::OracleMode::Table, sim::OracleMode::Family}) {
          exp::ExperimentSpec run = spec;
          run.config.intra_threads = intra;
          run.config.engine = step_engine;
          run.config.oracle = oracle;
          exp::ExperimentEngine engine(threads);
          const std::string got = exp::golden_trajectory(run, engine.run(run));
          EXPECT_EQ(want, got)
              << "SF_THREADS=" << threads << " SF_INTRA_THREADS=" << intra
              << " SF_ENGINE=" << sim::to_string(step_engine)
              << " SF_ORACLE=" << sim::to_string(oracle);
        }
      }
    }
  }
}

TEST(GoldenTrajectory, DiffAgainstCheckedInBenchPasses) {
  exp::ExperimentSpec spec = golden_spec();
  exp::ExperimentEngine engine(2);
  exp::Trajectory now = exp::trajectory_of(spec, engine.run(spec));
  exp::Trajectory golden =
      exp::load_bench_file(source_path("tests/golden/BENCH_golden_mini.json"));
  exp::DiffReport report = exp::diff_trajectories(golden, now);
  if (!report.passed) {
    std::ostringstream os;
    exp::print_diff(os, report, false);
    FAIL() << "sweep-diff regression against tests/golden/"
              "BENCH_golden_mini.json:\n"
           << os.str();
  }
  EXPECT_EQ(report.compared, 20u);  // 10 series x 2 loads, no truncation
}

TEST(GoldenTrajectory, PerturbedTrajectoryIsCaught) {
  exp::Trajectory golden =
      exp::load_bench_file(source_path("tests/golden/BENCH_golden_mini.json"));
  exp::Trajectory perturbed = golden;
  perturbed.points.at(3).latency += 1e-9;  // even an ULP-scale drift fails
  EXPECT_FALSE(exp::diff_trajectories(golden, perturbed).passed);
}

}  // namespace
}  // namespace slimfly
