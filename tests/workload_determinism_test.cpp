// Property-test harness for the workload layer (burst/hotspot modulation,
// dependency-aware trace replay, allreduce collectives):
//   1. Every parameterized pattern is byte-identical across the full
//      SF_THREADS x SF_INTRA_THREADS x SF_ENGINE x SF_ORACLE matrix.
//   2. Trace-replay ordering is independent of shard count and engine down
//      to the windowed-stats rows.
//   3. Burst offered load converges to the configured mean (load x mult x
//      duty cycle); hotspot endpoints absorb their configured share.
//   4. Dependency stalls show up in windowed stats for replay and are
//      identically zero for independent injection — the causality signature
//      that independent injection cannot reproduce.
//   5. The trace JSON parser rejects malformed input with named errors:
//      cycles (explicit and FIFO-implied), dangling references, duplicate
//      endpoints, depth-bombed JSON — plus the spec-grammar negatives.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "exp/diff.hpp"
#include "exp/experiment.hpp"
#include "sf/mms.hpp"
#include "sim/simulation.hpp"
#include "sim/traffic.hpp"
#include "sim/workload.hpp"

namespace slimfly::sim {
namespace {

// ---- helpers ---------------------------------------------------------------

void expect_throws_with(const std::function<void()>& fn,
                        const std::vector<std::string>& needles) {
  try {
    fn();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (const auto& needle : needles) {
      EXPECT_NE(msg.find(needle), std::string::npos)
          << "message \"" << msg << "\" lacks \"" << needle << "\"";
    }
  }
}

std::string write_temp_trace(const std::string& name, const std::string& text) {
  const std::string path = "/tmp/slimfly_workload_" + name + ".json";
  std::ofstream os(path);
  os << text;
  return path;
}

SimConfig quick_config() {
  SimConfig cfg;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 300;
  cfg.drain_cycles = 4000;
  return cfg;
}

// A request/reply trace over endpoint pairs (2i, 2i+1): each side's next
// message waits on the peer's previous one, so every send after the first
// carries a genuine dependency stall.
std::string reqreply_trace_text(int pairs, int rounds) {
  std::string s = "{\"trace\": \"reqreply\", \"endpoints\": {";
  for (int p = 0; p < pairs; ++p) {
    const int a = 2 * p, b = 2 * p + 1;
    std::string la, lb;
    for (int k = 0; k < rounds; ++k) {
      la += (k ? ", " : "");
      lb += (k ? ", " : "");
      if (k == 0) {
        la += "{\"dst\": " + std::to_string(b) + "}";
      } else {
        la += "{\"dst\": " + std::to_string(b) + ", \"after\": \"" +
              std::to_string(b) + "." + std::to_string(k - 1) + "\"}";
      }
      lb += "{\"dst\": " + std::to_string(a) + ", \"after\": \"" +
            std::to_string(a) + "." + std::to_string(k) + "\"}";
    }
    s += (p ? ", " : "") + ("\"" + std::to_string(a) + "\": [" + la + "], \"" +
                            std::to_string(b) + "\": [" + lb + "]");
  }
  return s + "}}";
}

// ---- 1. full-matrix byte identity ------------------------------------------

void expect_matrix_identical(const std::string& traffic_spec) {
  exp::ExperimentSpec spec;
  spec.name = "workload_matrix";
  spec.loads = {0.2};
  spec.config = quick_config();
  spec.truncate_at_saturation = false;
  spec.series.push_back({"slimfly:q=5", "UGAL-L", traffic_spec, "", {}});
  exp::ExperimentEngine reference(1);
  const std::string want = exp::golden_trajectory(spec, reference.run(spec));
  EXPECT_NE(want.find(traffic_spec), std::string::npos);
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (int intra : {1, 2}) {
      for (StepEngine step_engine : {StepEngine::Cycle, StepEngine::Active}) {
        exp::ExperimentSpec run = spec;
        run.config.intra_threads = intra;
        run.config.engine = step_engine;
        // Fold the oracle axis in without doubling the matrix: the family
        // oracle rides on the active-engine cells.
        run.config.oracle = step_engine == StepEngine::Active
                                ? OracleMode::Family
                                : OracleMode::Auto;
        exp::ExperimentEngine engine(threads);
        EXPECT_EQ(want, exp::golden_trajectory(run, engine.run(run)))
            << traffic_spec << " threads=" << threads << " intra=" << intra
            << " engine=" << to_string(step_engine);
      }
    }
  }
}

TEST(WorkloadMatrix, BurstIsByteIdentical) {
  expect_matrix_identical("burst:on=50,off=150,mult=4,base=uniform");
}

TEST(WorkloadMatrix, HotspotIsByteIdentical) {
  expect_matrix_identical("hotspot:frac=0.05,heat=4,base=uniform");
}

TEST(WorkloadMatrix, ComposedHotspotOverBurstIsByteIdentical) {
  expect_matrix_identical(
      "hotspot:frac=0.05,heat=4,base=burst:on=50;off=150;mult=3");
}

TEST(WorkloadMatrix, AllreduceRingIsByteIdentical) {
  expect_matrix_identical("allreduce:ranks=64,algo=ring");
}

TEST(WorkloadMatrix, AllreduceTreeIsByteIdentical) {
  expect_matrix_identical("allreduce:ranks=64,algo=tree");
}

TEST(WorkloadMatrix, TraceReplayIsByteIdentical) {
  const std::string path =
      write_temp_trace("matrix", reqreply_trace_text(8, 12));
  expect_matrix_identical("trace:file=" + path);
  std::remove(path.c_str());
}

// ---- 2. replay ordering independent of shards, down to the windows ---------

TEST(WorkloadWindows, TraceReplayWindowsIdenticalAcrossShardsAndEngines) {
  const std::string path =
      write_temp_trace("windows", reqreply_trace_text(10, 20));
  sf::SlimFlyMMS topo(5);
  SimConfig base = quick_config();
  base.stats_window = 50;
  std::vector<std::vector<WindowStats>> runs;
  for (int intra : {1, 4}) {
    for (StepEngine engine : {StepEngine::Cycle, StepEngine::Active}) {
      auto routing = make_routing(RoutingKind::Minimal, topo);
      auto traffic = make_traffic("trace:file=" + path, topo);
      SimConfig cfg = base;
      cfg.intra_threads = intra;
      cfg.engine = engine;
      auto r = simulate(topo, *routing.algorithm, *traffic, cfg, 0.2);
      EXPECT_EQ(r.stats_window, 50);
      EXPECT_FALSE(r.windows.empty());
      runs.push_back(r.windows);
    }
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    ASSERT_EQ(runs[0].size(), runs[i].size()) << "run " << i;
    for (std::size_t w = 0; w < runs[0].size(); ++w) {
      EXPECT_EQ(runs[0][w].generated, runs[i][w].generated) << i << "/" << w;
      EXPECT_EQ(runs[0][w].delivered, runs[i][w].delivered) << i << "/" << w;
      EXPECT_EQ(runs[0][w].latency_sum, runs[i][w].latency_sum) << i << "/" << w;
      EXPECT_EQ(runs[0][w].dep_stalled_sends, runs[i][w].dep_stalled_sends)
          << i << "/" << w;
      EXPECT_EQ(runs[0][w].dep_stall_cycles, runs[i][w].dep_stall_cycles)
          << i << "/" << w;
    }
  }
  std::remove(path.c_str());
}

// ---- 3. statistical convergence --------------------------------------------

TEST(WorkloadConvergence, BurstMultiplierAveragesToDutyCycleTimesMult) {
  // on=50, off=150, mult=4: duty 1/4, mean multiplier 1.0. The multiplier
  // sequence is deterministic, so a long deterministic average suffices.
  sf::SlimFlyMMS topo(5);
  auto t = make_traffic("burst:on=50,off=150,mult=4,base=uniform", topo);
  ASSERT_TRUE(t->modulates_rate());
  double sum = 0.0;
  const std::int64_t horizon = 200000;
  const int endpoints = 8;
  for (int e = 0; e < endpoints; ++e) {
    for (std::int64_t c = 0; c < horizon; ++c) sum += t->rate_multiplier(e, c);
  }
  const double mean = sum / (static_cast<double>(horizon) * endpoints);
  EXPECT_NEAR(mean, 1.0, 0.05);
}

TEST(WorkloadConvergence, BurstOfferedLoadConvergesToConfiguredMean) {
  // End-to-end: accepted throughput of an unsaturated burst run matches
  // load x mult x duty = load (mean multiplier 1).
  sf::SlimFlyMMS topo(5);
  auto routing = make_routing(RoutingKind::Minimal, topo);
  auto traffic = make_traffic("burst:on=50,off=150,mult=4,base=uniform", topo);
  SimConfig cfg;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 4000;
  cfg.drain_cycles = 20000;
  auto r = simulate(topo, *routing.algorithm, *traffic, cfg, 0.15);
  EXPECT_FALSE(r.saturated);
  EXPECT_NEAR(r.accepted_load, 0.15, 0.02);
}

TEST(WorkloadConvergence, HotspotEndpointsAbsorbConfiguredShare) {
  // N=1000, frac=0.01 (H=10), heat=20: hot endpoints receive ~H*heat/N =
  // 20% of all traffic, each one ~20x the uniform share.
  auto t = make_hotspot(make_uniform(1000), 1000, 0.01, 20.0, 7);
  Rng rng(42);
  std::vector<std::int64_t> hits(1000, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++hits[static_cast<std::size_t>(
      t->destination(i % 17, rng))];
  std::vector<std::int64_t> sorted = hits;
  std::sort(sorted.begin(), sorted.end(), std::greater<std::int64_t>());
  std::int64_t hot = 0;
  for (int i = 0; i < 10; ++i) hot += sorted[static_cast<std::size_t>(i)];
  const double hot_share = static_cast<double>(hot) / draws;
  EXPECT_NEAR(hot_share, 0.2, 0.02);
  // The 11th-busiest endpoint is a cold one: near the uniform share.
  EXPECT_LT(static_cast<double>(sorted[10]) / draws, 0.004);
}

// ---- 4. dependency stalls are the replay signature -------------------------

TEST(WorkloadWindows, DependencyStallsNonzeroForReplayZeroForInjection) {
  const std::string path =
      write_temp_trace("stalls", reqreply_trace_text(10, 20));
  sf::SlimFlyMMS topo(5);
  SimConfig cfg = quick_config();
  cfg.stats_window = 50;

  auto routing = make_routing(RoutingKind::Minimal, topo);
  auto replay = make_traffic("trace:file=" + path, topo);
  auto rr = simulate(topo, *routing.algorithm, *replay, cfg, 0.2);
  std::int64_t stalled = 0, stall_cycles = 0, generated = 0;
  for (const auto& w : rr.windows) {
    stalled += w.dep_stalled_sends;
    stall_cycles += w.dep_stall_cycles;
    generated += w.generated;
  }
  EXPECT_GT(generated, 0);
  EXPECT_GT(stalled, 0) << "request->reply chains must stall on their deps";
  EXPECT_GT(stall_cycles, stalled);  // each reply waits >= 1 cycle round-trip

  auto routing2 = make_routing(RoutingKind::Minimal, topo);
  auto uniform = make_traffic("uniform", topo);
  auto ru = simulate(topo, *routing2.algorithm, *uniform, cfg, 0.2);
  for (const auto& w : ru.windows) {
    EXPECT_EQ(w.dep_stalled_sends, 0);
    EXPECT_EQ(w.dep_stall_cycles, 0);
  }
  std::remove(path.c_str());
}

// ---- 5. parser and grammar negatives ---------------------------------------

TEST(TraceParser, RejectsExplicitDependencyCycle) {
  expect_throws_with(
      [] {
        parse_workload_trace(
            R"({"endpoints": {"0": [{"dst": 1, "after": "1.0"}],
                              "1": [{"dst": 0, "after": "0.0"}]}})",
            "t");
      },
      {"dependency cycle involving message", "FIFO"});
}

TEST(TraceParser, RejectsCycleThroughImplicitFifoEdges) {
  // Acyclic on explicit edges alone (1.0 -> 0.0 and 0.1 -> 1.0 never meet);
  // the implicit FIFO edge 0.0 -> 0.1 closes the loop 1.0 -> 0.0 -> 0.1 ->
  // 1.0, so validation must consider both edge kinds together.
  expect_throws_with(
      [] {
        parse_workload_trace(
            R"({"endpoints": {"0": [{"dst": 1, "after": "1.0"}, {"dst": 1}],
                              "1": [{"dst": 0, "after": "0.1"}]}})",
            "t");
      },
      {"dependency cycle involving message"});
}

TEST(TraceParser, NamedErrorsForMalformedEndpoints) {
  expect_throws_with([] { parse_workload_trace(R"({"trace": "x"})", "t"); },
                     {"missing \"endpoints\" object"});
  expect_throws_with(
      [] { parse_workload_trace(R"({"endpoints": {}})", "t"); },
      {"must list at least one endpoint"});
  expect_throws_with(
      [] {
        parse_workload_trace(R"({"endpoints": {"x1": [{"dst": 0}]}})", "t");
      },
      {"not a decimal number"});
  expect_throws_with(
      [] {
        parse_workload_trace(
            R"({"endpoints": {"7": [{"dst": 1}], "007": [{"dst": 1}]}})", "t");
      },
      {"endpoint 7 is declared more than once"});
  expect_throws_with(
      [] { parse_workload_trace(R"({"endpoints": {"0": [{"dst": 0}]}})", "t"); },
      {"message 0.0 sends to itself"});
  expect_throws_with(
      [] {
        parse_workload_trace(R"({"endpoints": {"0": [{"after": "1.0"}]}})",
                             "t");
      },
      {"missing \"dst\""});
  expect_throws_with(
      [] {
        parse_workload_trace(
            R"({"endpoints": {"0": [{"dst": 1, "when": 3}]}})", "t");
      },
      {"unknown key \"when\""});
}

TEST(TraceParser, NamedErrorsForBadAfterReferences) {
  expect_throws_with(
      [] {
        parse_workload_trace(
            R"({"endpoints": {"0": [{"dst": 1, "after": "nope"}]}})", "t");
      },
      {"not of the form \"<endpoint>.<index>\""});
  expect_throws_with(
      [] {
        parse_workload_trace(
            R"({"endpoints": {"0": [{"dst": 1, "after": "3.0"}]}})", "t");
      },
      {"references undeclared endpoint 3"});
  expect_throws_with(
      [] {
        parse_workload_trace(
            R"({"endpoints": {"0": [{"dst": 1, "after": "1.5"}],
                              "1": [{"dst": 0}]}})",
            "t");
      },
      {"references a message that does not exist", "endpoint 1 has 1"});
  expect_throws_with(
      [] {
        parse_workload_trace(
            R"({"endpoints": {"0": [{"dst": 1, "after": "0.0"}]}})", "t");
      },
      {"depends on itself"});
}

TEST(TraceParser, DepthBombedJsonHitsTheNestingCap) {
  std::string bomb = R"({"endpoints": {"0": )";
  for (int i = 0; i < 70; ++i) bomb += "[";
  expect_throws_with([&] { parse_workload_trace(bomb, "t"); },
                     {"nesting deeper than 64 levels"});
}

TEST(TraceParser, UnreadableFileNamesThePath) {
  expect_throws_with(
      [] { load_workload_trace("/nonexistent/trace.json"); },
      {"cannot read trace file", "/nonexistent/trace.json",
       "working directory"});
}

TEST(SpecGrammar, NamedErrorsForBadWorkloadSpecs) {
  expect_throws_with([] { validate_traffic_spec("burst:on=50,mult=4"); },
                     {"missing required parameter \"off\""});
  expect_throws_with(
      [] { validate_traffic_spec("burst:on=50,off=150,mult=0"); },
      {"mult must be in (0, 1e6]"});
  expect_throws_with(
      [] { validate_traffic_spec("burst:on=50,off=150,mult=4,fuzz=1"); },
      {"unknown parameter \"fuzz\""});
  expect_throws_with([] { validate_traffic_spec("hotspot:frac=1.5,heat=8"); },
                     {"frac must be in (0, 1]"});
  expect_throws_with([] { validate_traffic_spec("allreduce:ranks=12,algo=tree"); },
                     {"power-of-two ranks"});
  expect_throws_with([] { validate_traffic_spec("trace:"); },
                     {"expected key=value parameters"});
  expect_throws_with([] { validate_traffic_spec("uniform:x=1"); },
                     {"takes no parameters"});
  expect_throws_with([] { validate_traffic_spec("nosuchpattern"); },
                     {"unknown traffic pattern", "SPEC_GRAMMAR"});
  expect_throws_with(
      [] {
        validate_traffic_spec("burst:on=1,off=1,mult=1,base=allreduce:ranks=4");
      },
      {"cannot wrap the self-clocked base"});
}

TEST(SpecGrammar, HotspotRedirectProbabilityBoundIsNamed) {
  // frac=0.5, heat=4 on N=50: q = 25*3/25 = 3 > 1 — impossible to satisfy.
  sf::SlimFlyMMS topo(5);
  expect_throws_with(
      [&] { make_traffic("hotspot:frac=0.5,heat=4,base=uniform", topo); },
      {"redirect probability", "q = H(heat-1)/(N-H)", "lower heat or frac"});
}

}  // namespace
}  // namespace slimfly::sim
