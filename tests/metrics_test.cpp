#include <gtest/gtest.h>

#include <cmath>

#include "analysis/metrics.hpp"
#include "sf/mms.hpp"
#include "topo/hypercube.hpp"
#include "topo/torus.hpp"

namespace slimfly::analysis {
namespace {

Graph path_graph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  g.finalize();
  return g;
}

TEST(Bfs, PathDistances) {
  Graph g = path_graph(5);
  auto d = bfs_distances(g, 0);
  EXPECT_EQ(d, (std::vector<int>{0, 1, 2, 3, 4}));
  d = bfs_distances(g, 2);
  EXPECT_EQ(d, (std::vector<int>{2, 1, 0, 1, 2}));
}

TEST(Bfs, DisconnectedMarksUnreachable) {
  Graph g(3);
  g.add_edge(0, 1);
  g.finalize();
  auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], -1);
  EXPECT_EQ(diameter(g), -1);
  EXPECT_FALSE(is_connected(g));
  EXPECT_EQ(largest_component(g), 2);
}

TEST(Diameter, KnownTopologies) {
  EXPECT_EQ(diameter(Hypercube(5).graph()), 5);
  EXPECT_EQ(diameter(Torus({5, 5}).graph()), 4);
  EXPECT_EQ(diameter(sf::SlimFlyMMS(7).graph()), 2);
}

TEST(AverageDistance, CompleteGraphIsOne) {
  Graph g(5);
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) g.add_edge(i, j);
  }
  g.finalize();
  EXPECT_DOUBLE_EQ(average_distance(g), 1.0);
}

TEST(AverageDistance, HypercubeClosedForm) {
  // Average distance of an n-cube over ordered pairs: n * 2^(n-1) / (2^n - 1).
  int n = 6;
  Hypercube hc(n);
  double expected = n * std::pow(2.0, n - 1) / (std::pow(2.0, n) - 1.0);
  EXPECT_NEAR(average_distance(hc.graph()), expected, 1e-9);
}

TEST(AverageEndpointDistance, BelowDiameterForSlimFly) {
  sf::SlimFlyMMS topo(7);
  double avg = average_endpoint_distance(topo);
  EXPECT_GT(avg, 1.0);
  EXPECT_LT(avg, 2.0);  // diameter 2, many direct pairs
}

TEST(AverageEndpointDistance, SameRouterPairsCountZero) {
  // Two routers, one edge, p=2: ordered pairs: 4 same-router (0 hops,
  // excluding self) -> distance contributions only from cross pairs.
  Graph g(2);
  g.add_edge(0, 1);
  g.finalize();
  class Tiny : public Topology {
   public:
    explicit Tiny(Graph gr) : Topology(std::move(gr), 2, 2) {}
    std::string name() const override { return "tiny"; }
    std::string symbol() const override { return "T"; }
  } tiny(std::move(g));
  // 12 ordered distinct pairs; 8 cross pairs at distance 1, 4 same-router.
  EXPECT_NEAR(average_endpoint_distance(tiny), 8.0 / 12.0, 1e-9);
}

TEST(DistanceHistogram, SlimFlyMooreStructure) {
  // For a diameter-2 graph: per source 1 at distance 0, k' at distance 1,
  // rest at distance 2.
  sf::SlimFlyMMS topo(5);
  auto h = distance_histogram(topo.graph());
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0], 50);
  EXPECT_EQ(h[1], 50 * 7);
  EXPECT_EQ(h[2], 50 * 42);
}

TEST(Eccentricity, CenterOfPath) {
  Graph g = path_graph(7);
  EXPECT_EQ(eccentricity(g, 3), 3);
  EXPECT_EQ(eccentricity(g, 0), 6);
}

}  // namespace
}  // namespace slimfly::analysis
