#include <gtest/gtest.h>

#include "topo/graph.hpp"

namespace slimfly {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g(0);
  g.finalize();
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_TRUE(g.is_regular());
}

TEST(Graph, BasicConstruction) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  g.finalize();
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.max_degree(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, DuplicateEdgesDeduplicated) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.degree(0), 1);
}

TEST(Graph, SelfLoopRejected) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(Graph, OutOfRangeRejected) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 2), std::out_of_range);
  EXPECT_THROW(g.add_edge(-1, 0), std::out_of_range);
}

TEST(Graph, EdgesListSortedPairs) {
  Graph g(4);
  g.add_edge(3, 1);
  g.add_edge(2, 0);
  g.finalize();
  auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  for (auto [u, v] : edges) EXPECT_LT(u, v);
}

TEST(Graph, QueriesBeforeFinalizeThrow) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.has_edge(0, 1), std::logic_error);
  EXPECT_THROW(g.edges(), std::logic_error);
}

TEST(Graph, NeighborsSortedAfterFinalize) {
  Graph g(5);
  g.add_edge(0, 4);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.finalize();
  EXPECT_EQ(g.neighbors(0), (std::vector<int>{2, 3, 4}));
}

}  // namespace
}  // namespace slimfly
