#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hpp"

namespace slimfly {
namespace {

TEST(Table, AlignedOutput) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os, "tag");
  EXPECT_EQ(os.str(), "csv,tag,a,b\ncsv,tag,1,2\n");
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(42)), "42");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

}  // namespace
}  // namespace slimfly
