// Field axioms and structure of GF(p^m) for every prime power up to 128 —
// the foundation the MMS construction stands on.

#include <gtest/gtest.h>

#include "gf/gf.hpp"
#include "util/numtheory.hpp"

namespace slimfly::gf {
namespace {

class FieldAxioms : public ::testing::TestWithParam<int> {};

TEST_P(FieldAxioms, AdditionGroup) {
  Field f(GetParam());
  int q = f.q();
  for (int a = 0; a < q; ++a) {
    EXPECT_EQ(f.add(a, 0), a);
    EXPECT_EQ(f.add(a, f.neg(a)), 0);
    for (int b = 0; b < q; ++b) {
      EXPECT_EQ(f.add(a, b), f.add(b, a));
    }
  }
}

TEST_P(FieldAxioms, AdditionAssociative) {
  Field f(GetParam());
  int q = f.q();
  // Sample triples for large fields, exhaustive for small ones.
  int stride = q > 16 ? 5 : 1;
  for (int a = 0; a < q; a += stride) {
    for (int b = 0; b < q; b += stride) {
      for (int c = 0; c < q; c += stride) {
        EXPECT_EQ(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
      }
    }
  }
}

TEST_P(FieldAxioms, MultiplicationGroup) {
  Field f(GetParam());
  int q = f.q();
  for (int a = 0; a < q; ++a) {
    EXPECT_EQ(f.mul(a, 1), a);
    EXPECT_EQ(f.mul(a, 0), 0);
    if (a != 0) {
      EXPECT_EQ(f.mul(a, f.inv(a)), 1) << "a=" << a;
    }
  }
}

TEST_P(FieldAxioms, Distributive) {
  Field f(GetParam());
  int q = f.q();
  int stride = q > 16 ? 7 : 1;
  for (int a = 0; a < q; a += stride) {
    for (int b = 0; b < q; b += stride) {
      for (int c = 0; c < q; c += stride) {
        EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
      }
    }
  }
}

TEST_P(FieldAxioms, PrimitiveElementGeneratesUnits) {
  Field f(GetParam());
  int q = f.q();
  int xi = f.primitive_element();
  std::vector<bool> seen(static_cast<std::size_t>(q), false);
  int x = 1;
  for (int i = 0; i < q - 1; ++i) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(x)]) << "xi has order < q-1";
    seen[static_cast<std::size_t>(x)] = true;
    x = f.mul(x, xi);
  }
  EXPECT_EQ(x, 1) << "xi^(q-1) != 1";
  for (int e = 1; e < q; ++e) EXPECT_TRUE(seen[static_cast<std::size_t>(e)]);
}

TEST_P(FieldAxioms, FrobeniusIsAdditive) {
  // (a + b)^p == a^p + b^p in characteristic p.
  Field f(GetParam());
  int q = f.q();
  int stride = q > 32 ? 3 : 1;
  for (int a = 0; a < q; a += stride) {
    for (int b = 0; b < q; b += stride) {
      EXPECT_EQ(f.pow(f.add(a, b), f.p()),
                f.add(f.pow(a, f.p()), f.pow(b, f.p())));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrimePowers, FieldAxioms,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 17,
                                           19, 23, 25, 27, 29, 32, 37, 49, 64,
                                           81, 121, 125, 128));

TEST(Field, RejectsNonPrimePowers) {
  EXPECT_THROW(Field(0), std::invalid_argument);
  EXPECT_THROW(Field(1), std::invalid_argument);
  EXPECT_THROW(Field(6), std::invalid_argument);
  EXPECT_THROW(Field(12), std::invalid_argument);
  EXPECT_THROW(Field(100), std::invalid_argument);
  EXPECT_THROW(Field(4097), std::invalid_argument);
}

TEST(Field, InverseOfZeroThrows) {
  Field f(7);
  EXPECT_THROW(f.inv(0), std::domain_error);
  EXPECT_THROW(f.div(3, 0), std::domain_error);
}

TEST(Field, ElementRangeChecked) {
  Field f(9);
  EXPECT_THROW(f.add(0, 9), std::out_of_range);
  EXPECT_THROW(f.mul(-1, 0), std::out_of_range);
}

TEST(Field, ExtensionFieldHasCorrectCharacteristic) {
  Field f(27);
  EXPECT_EQ(f.p(), 3);
  EXPECT_EQ(f.degree(), 3);
  // char 3: x + x + x == 0
  for (int a = 0; a < 27; ++a) {
    EXPECT_EQ(f.add(f.add(a, a), a), 0);
  }
}

TEST(Field, OrderDividesGroupOrder) {
  Field f(25);
  for (int a = 1; a < 25; ++a) {
    EXPECT_EQ((f.q() - 1) % f.order(a), 0);
  }
}

}  // namespace
}  // namespace slimfly::gf
