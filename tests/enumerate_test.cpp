#include <gtest/gtest.h>

#include "sf/enumerate.hpp"

namespace slimfly::sf {
namespace {

TEST(Enumerate, ElevenBalancedSlimFliesUpTo20k) {
  // Paper Section VII-A: "For network sizes up to 20,000, there are 11
  // balanced SF variants ... DF offers only 8 such designs."
  auto sfs = enumerate_slimfly(20000);
  EXPECT_EQ(sfs.size(), 11u);
  auto dfs = enumerate_dragonfly(20000);
  EXPECT_EQ(dfs.size(), 8u);
}

TEST(Enumerate, SlimFlyEntriesConsistent) {
  for (const auto& c : enumerate_slimfly(25000)) {
    EXPECT_EQ(c.num_routers, 2 * c.q * c.q);
    EXPECT_EQ(c.k_net, (3 * c.q - c.delta) / 2);
    EXPECT_EQ(c.concentration, (c.k_net + 1) / 2);
    EXPECT_EQ(c.router_radix, c.k_net + c.concentration);
    EXPECT_EQ(c.num_endpoints, c.num_routers * c.concentration);
  }
}

TEST(Enumerate, FlagshipAppears) {
  auto sfs = enumerate_slimfly(20000);
  bool found = false;
  for (const auto& c : sfs) {
    if (c.q == 19) {
      found = true;
      EXPECT_EQ(c.num_endpoints, 10830);
      EXPECT_EQ(c.router_radix, 44);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Enumerate, SortedByEndpoints) {
  auto sfs = enumerate_slimfly(50000);
  for (std::size_t i = 1; i < sfs.size(); ++i) {
    EXPECT_LE(sfs[i - 1].num_endpoints, sfs[i].num_endpoints);
  }
}

TEST(Enumerate, DragonflyBalancedRelations) {
  for (const auto& c : enumerate_dragonfly(20000)) {
    EXPECT_EQ(c.a, 2 * c.p);
    EXPECT_EQ(c.h, c.p);
    EXPECT_EQ(c.g, c.a * c.h + 1);
    EXPECT_EQ(c.router_radix, 4 * c.p - 1);
  }
}

TEST(PickSlimFly, SmallestAboveThreshold) {
  auto c = pick_slimfly(10000);
  ASSERT_TRUE(c.has_value());
  EXPECT_GE(c->num_endpoints, 10000);
  EXPECT_EQ(c->q, 19);  // 10830 is the smallest >= 10000
}

TEST(ClosestSlimFly, NearestByEndpointCount) {
  auto c = closest_slimfly(10000);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->q, 19);
  c = closest_slimfly(300);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->q, 5);  // N=200 vs q=7's 882
}

}  // namespace
}  // namespace slimfly::sf
