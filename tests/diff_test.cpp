#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "exp/diff.hpp"
#include "exp/experiment.hpp"

namespace slimfly {
namespace {

/// A small fabricated two-series trajectory — no simulation needed to test
/// the join/tolerance machinery.
exp::ExperimentSpec fake_spec() {
  exp::ExperimentSpec spec;
  spec.name = "fake";
  spec.loads = {0.1, 0.5};
  spec.config.seed = 9;
  spec.series = {{"slimfly:q=5", "MIN", "uniform", "A", {}},
                 {"slimfly:q=5", "VAL", "uniform", "B", {}}};
  return spec;
}

std::vector<exp::RunResult> fake_results(const exp::ExperimentSpec& spec) {
  std::vector<exp::RunResult> results;
  for (std::size_t s = 0; s < spec.series.size(); ++s) {
    for (std::size_t l = 0; l < spec.loads.size(); ++l) {
      exp::RunResult r;
      r.series_index = s;
      r.load = spec.loads[l];
      r.seed = exp::point_seed(spec, s, l);
      r.wall_seconds = 0.25 + static_cast<double>(s);
      r.result.avg_latency = 10.0 + static_cast<double>(s * 10 + l);
      r.result.avg_network_latency = r.result.avg_latency - 0.5;
      r.result.p99_latency = r.result.avg_latency * 3;
      r.result.accepted_load = spec.loads[l];
      r.result.delivered = 1000 + static_cast<std::int64_t>(s * 100 + l);
      r.result.saturated = false;
      results.push_back(r);
    }
  }
  return results;
}

TEST(TrajectoryJson, WriteParseRoundTrip) {
  auto spec = fake_spec();
  auto results = fake_results(spec);
  std::ostringstream os;
  exp::write_json(os, spec, results, 2);
  exp::Trajectory parsed = exp::parse_bench_json(os.str());
  exp::Trajectory direct = exp::trajectory_of(spec, results);
  EXPECT_EQ(parsed.experiment, "fake");
  ASSERT_EQ(parsed.points.size(), direct.points.size());
  for (std::size_t i = 0; i < parsed.points.size(); ++i) {
    EXPECT_EQ(parsed.points[i].key(), direct.points[i].key());
    EXPECT_EQ(parsed.points[i].seed, direct.points[i].seed);
    EXPECT_EQ(parsed.points[i].latency, direct.points[i].latency);
    EXPECT_EQ(parsed.points[i].accepted, direct.points[i].accepted);
    EXPECT_EQ(parsed.points[i].delivered, direct.points[i].delivered);
    EXPECT_EQ(parsed.points[i].saturated, direct.points[i].saturated);
  }
  // The full diff pipeline sees the two representations as identical.
  exp::DiffReport report = exp::diff_trajectories(parsed, direct);
  EXPECT_TRUE(report.passed);
  EXPECT_EQ(report.regressions, 0u);
  EXPECT_EQ(report.compared, 4u);
}

TEST(TrajectoryDiff, IdenticalTrajectoriesPass) {
  auto spec = fake_spec();
  auto t = exp::trajectory_of(spec, fake_results(spec));
  exp::DiffReport report = exp::diff_trajectories(t, t);
  EXPECT_TRUE(report.passed);
  EXPECT_EQ(report.regressions, 0u);
}

TEST(TrajectoryDiff, PerturbationFailsAndToleranceForgives) {
  auto spec = fake_spec();
  auto a = exp::trajectory_of(spec, fake_results(spec));
  auto b = a;
  b.points[1].latency += 0.5;  // ~4% of 11

  exp::DiffReport exact = exp::diff_trajectories(a, b);
  EXPECT_FALSE(exact.passed);
  EXPECT_EQ(exact.regressions, 1u);
  // The failing metric is named.
  bool found = false;
  for (const auto& point : exact.points) {
    for (const auto& metric : point.metrics) {
      if (metric.out_of_tolerance) {
        EXPECT_STREQ(metric.name, "latency");
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);

  exp::DiffOptions loose;
  loose.rel_tol = 0.10;
  EXPECT_TRUE(exp::diff_trajectories(a, b, loose).passed);
  exp::DiffOptions absolute;
  absolute.abs_tol = 1.0;
  EXPECT_TRUE(exp::diff_trajectories(a, b, absolute).passed);
}

TEST(TrajectoryDiff, MissingPointsFailUnlessAllowed) {
  auto spec = fake_spec();
  auto a = exp::trajectory_of(spec, fake_results(spec));
  auto b = a;
  b.points.pop_back();

  exp::DiffReport report = exp::diff_trajectories(a, b);
  EXPECT_FALSE(report.passed);
  ASSERT_EQ(report.only_in_a.size(), 1u);
  EXPECT_EQ(report.only_in_a[0], a.points.back().key());

  exp::DiffOptions allow;
  allow.allow_missing = true;
  EXPECT_TRUE(exp::diff_trajectories(a, b, allow).passed);
  // ... but two disjoint trajectories never pass (nothing compared).
  exp::Trajectory empty;
  EXPECT_FALSE(exp::diff_trajectories(a, empty, allow).passed);
}

TEST(TrajectoryDiff, SeedAndSaturationChangesAreNeverTolerated) {
  auto spec = fake_spec();
  auto a = exp::trajectory_of(spec, fake_results(spec));
  exp::DiffOptions loose;
  loose.rel_tol = 1e9;

  auto b = a;
  b.points[0].seed ^= 1;
  EXPECT_FALSE(exp::diff_trajectories(a, b, loose).passed);

  auto c = a;
  c.points[2].saturated = true;
  exp::DiffReport report = exp::diff_trajectories(a, c, loose);
  EXPECT_FALSE(report.passed);
  EXPECT_TRUE(report.points[2].saturated_flip);
}

TEST(TrajectoryDiff, WallTimeIsNeverGated) {
  auto spec = fake_spec();
  auto a = exp::trajectory_of(spec, fake_results(spec));
  auto b = a;
  for (auto& point : b.points) point.wall_seconds *= 100.0;
  EXPECT_TRUE(exp::diff_trajectories(a, b).passed);
}

TEST(TrajectoryJson, DuplicateRunPointIdentityRejected) {
  // Two unlabeled series with identical axes collapse to one join key —
  // ambiguous, so the parser refuses instead of silently shadowing.
  exp::ExperimentSpec spec = fake_spec();
  spec.series[1] = spec.series[0];
  auto results = fake_results(spec);
  std::ostringstream os;
  exp::write_json(os, spec, results, 1);
  EXPECT_THROW(exp::parse_bench_json(os.str()), std::invalid_argument);
}

TEST(TrajectoryJson, MalformedDocumentsAreNamedErrors) {
  EXPECT_THROW(exp::parse_bench_json("{}"), std::invalid_argument);
  EXPECT_THROW(exp::parse_bench_json("[]"), std::invalid_argument);
  EXPECT_THROW(exp::parse_bench_json("{\"series\": [{\"points\": "
                                     "[{\"load\": 0.1}]}]}"),
               std::invalid_argument);
  try {
    exp::parse_bench_json("{\"series\": [{\"label\": \"x\", \"points\": "
                          "[{\"load\": 0.1, \"latency\": 1, "
                          "\"network_latency\": 1, \"p99_latency\": 1, "
                          "\"accepted\": 0.1, \"delivered\": 10}]}]}",
                          "F.json");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("F.json"), std::string::npos) << msg;
    EXPECT_NE(msg.find("saturated"), std::string::npos) << msg;
  }
}

TEST(TrajectoryDiff, PrintReportsSummaryAndVerdict) {
  auto spec = fake_spec();
  auto a = exp::trajectory_of(spec, fake_results(spec));
  auto b = a;
  b.points[0].accepted += 1.0;
  exp::DiffReport report = exp::diff_trajectories(a, b);
  std::ostringstream os;
  exp::print_diff(os, report, false);
  const std::string out = os.str();
  EXPECT_NE(out.find("FAIL"), std::string::npos);
  EXPECT_NE(out.find("accepted"), std::string::npos);
  EXPECT_NE(out.find("compared 4 points"), std::string::npos);
  EXPECT_NE(out.find("not gated"), std::string::npos);
}

}  // namespace
}  // namespace slimfly
