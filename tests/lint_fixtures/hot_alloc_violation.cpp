// Fixture: the `hot-alloc` rule must fire on allocating constructs inside a
// /* SF_HOT */ annotated function. Never compiled — scanned by
// scripts/sf_lint.py --self-test.
#include <vector>

struct Queue {
  std::vector<int> items;  // declaration outside SF_HOT: not a finding

  /* SF_HOT */ void enqueue(int v) {
    items.push_back(v);                // hot-alloc: allocating container call
    int* scratch = new int[4];         // hot-alloc: operator new
    delete[] scratch;
  }
};

/* SF_HOT */ int hot_sum(const Queue& q) {
  std::vector<int> copy(q.items);      // hot-alloc: vector construction
  int s = 0;
  for (int v : copy) s += v;
  return s;
}
