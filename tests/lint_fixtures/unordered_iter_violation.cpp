// Fixture: the `unordered-iter` rule must fire on iteration over
// std::unordered_map/std::unordered_set — hash-table iteration order is an
// implementation detail, and accumulating doubles in that order is
// platform-dependent (the exact bug fixed in src/analysis/channelload.cpp).
// Never compiled — scanned by scripts/sf_lint.py --self-test.
#include <unordered_map>
#include <unordered_set>

double total_load(const std::unordered_map<long, double>& input) {
  std::unordered_map<long, double> load(input);
  double total = 0.0;
  for (const auto& kv : load) {     // unordered-iter: range-for over map
    total += kv.second;
  }
  return total;
}

int count_members(const std::unordered_set<int>& input) {
  std::unordered_set<int> members(input);
  int n = 0;
  for (auto it = members.begin(); it != members.end(); ++it) {
    // unordered-iter: explicit begin() iteration
    ++n;
  }
  return n;
}
