// Clean twin of hot_alloc_violation.cpp: the same shapes with the
// allocations either moved outside the SF_HOT region (setup time), replaced
// by index arithmetic over preallocated storage, or confined to a throw
// statement (exceptions are off the steady-state path, so building the
// error message may allocate).
#include <cstddef>
#include <stdexcept>
#include <vector>

struct Queue {
  std::vector<int> items;
  std::size_t head = 0;
  std::size_t tail = 0;

  // Setup-time allocation: not annotated, so the linter ignores it.
  void reserve_capacity(std::size_t n) { items.resize(n); }

  /* SF_HOT */ void enqueue(int v) {
    if (tail >= items.size()) {
      throw std::runtime_error("queue overflow at " + std::to_string(tail));
    }
    items[tail] = v;  // preallocated slot: no allocation on the hot path
    ++tail;
  }
};

/* SF_HOT */ int hot_sum(const Queue& q) {
  int s = 0;
  for (std::size_t i = q.head; i < q.tail; ++i) s += q.items[i];
  return s;
}

// Fixed-capacity receivers (InlinePath, FixedRing) never allocate —
// push_back on them writes a preallocated slot, so the rule exempts them.
// A std::vector<T>& parameter references existing storage: also exempt.
struct InlinePath {
  int hops[4];
  int n = 0;
  void push_back(int x) { hops[n++] = x; }
};

/* SF_HOT */ void build_route(InlinePath& out, std::vector<int>& scratch) {
  out.push_back(1);
  (void)scratch;
}

// LazyRing receivers are exempt like FixedRing: the logical capacity is
// fixed at wire() and growth is the sanctioned pool-backed settling path
// (see scripts/sf_lint.py; hotpath_test enforces the dynamic guarantee).
template <typename T>
struct LazyRing {
  void push_back(const T&) {}
};

struct Line {
  LazyRing<int> ring;
  /* SF_HOT */ void push(int v) { ring.push_back(v); }
};
