// Fixture: the `float-stats` rule must fire on any `float` in src/ —
// a float latency accumulator quantizes after ~2^24 flits, silently skewing
// means long before a golden test could notice. Never compiled — scanned by
// scripts/sf_lint.py --self-test.

float running_mean(const float* samples, int n) {  // float-stats (x3)
  float acc = 0.0f;                                // float-stats
  for (int i = 0; i < n; ++i) acc += samples[i];
  return n > 0 ? acc / static_cast<float>(n) : 0.0f;  // float-stats
}
