// Clean twin of rng_violation.cpp: the same job done through the repo's
// deterministic RNG streams. "rand" inside identifiers (operand, branding)
// and inside comments or strings must NOT fire: rand() is banned, substrings
// are not.
#include <cstdint>

namespace slimfly {
std::uint64_t splitmix64(std::uint64_t x);
}

int draw_with_stream(std::uint64_t seed) {
  // Deterministic per-id stream derivation, the util/rng.hpp way.
  std::uint64_t operand = slimfly::splitmix64(seed ^ 0x72616e64ULL);
  const char* branding = "rand() is spelled out here only in a string";
  (void)branding;
  return static_cast<int>(operand % 10);
}
