// Fixture: the `rng` rule must fire on every global/platform randomness
// source used outside util/rng.hpp. Never compiled — scanned by
// scripts/sf_lint.py --self-test.
#include <random>

int draw_with_global_rng() {
  std::random_device rd;                    // rng: nondeterministic seed
  std::mt19937 gen(rd());                   // rng: std <random> engine
  std::uniform_int_distribution<int> d(0, 9);  // rng: std distribution
  return d(gen);
}

long stamp_with_wall_clock() {
  return std::time(nullptr);                // rng: wall clock
}

double elapsed_via_alias() {
  using clock = std::chrono::steady_clock;
  auto t0 = clock::now();                   // rng: aliased clock read
  return std::chrono::duration<double>(clock::now() - t0).count();
}
