// Fixture: an inline waiver WITHOUT a justification must be rejected as an
// error — waivers are cheap, but each one has to say why.
// Scanned by scripts/sf_lint.py --self-test; never compiled.

float bare_waiver() {  // sf-lint: allow(float-stats)
  return 0.0f;         // sf-lint: allow(float-stats)
}
