// Fixture: the `stoi` rule must fire on the stoi/atoi parsing family.
// std::stoi accepts leading whitespace, signs, and partial parses ("12abc"
// yields 12); atoi returns 0 on garbage. Config parsing must go through the
// vetted strict helpers instead. Never compiled — scanned by
// scripts/sf_lint.py --self-test.
#include <cstdlib>
#include <string>

int parse_radix(const std::string& s) {
  return std::stoi(s);                     // stoi: partial-parse hazard
}

int parse_env(const char* v) {
  return atoi(v);                          // stoi: returns 0 on garbage
}
