// Clean twin of stoi_violation.cpp: strict digit-by-digit parsing that
// rejects signs, whitespace, empty input, and trailing garbage — the shape
// of the vetted registry helpers.
#include <string>

bool parse_strict_int(const std::string& s, int* out) {
  if (s.empty()) return false;
  long value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
    if (value > 2147483647L) return false;
  }
  *out = static_cast<int>(value);
  return true;
}
