// Fixture: an inline waiver with a justification must suppress its finding.
// Scanned by scripts/sf_lint.py --self-test; never compiled.

float interop_sample(  // sf-lint: allow(float-stats) fixture: external ABI requires float here
    const float* p) {  // sf-lint: allow(float-stats) fixture: external ABI requires float here
  return p[0];
}
