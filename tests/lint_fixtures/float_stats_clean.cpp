// Clean twin of float_stats_violation.cpp: accumulate in double (exact for
// integer-valued latencies up to 2^53) — identifiers merely containing the
// letters "float" must not fire.
int floating_point_mode = 0;  // substring of the keyword: not a finding

double running_mean(const double* samples, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += samples[i];
  return n > 0 ? acc / n : 0.0;
}
