// Clean twin of unordered_iter_violation.cpp: unordered containers used as
// pure lookup structures (find/count/operator[]) with any traversal done in
// a deterministic external order — the pattern required of code feeding
// point_seed, stats, or trajectory output.
#include <unordered_map>
#include <vector>

double total_load(const std::vector<long>& keys,
                  const std::unordered_map<long, double>& load) {
  // Traverse in the caller-supplied (deterministic) key order; the hash
  // table only answers point queries.
  double total = 0.0;
  for (long k : keys) {
    auto it = load.find(k);
    if (it != load.end()) total += it->second;
  }
  return total;
}
