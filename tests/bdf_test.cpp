// Diameter-3 machinery: polarity graphs, the * product, property P*, and
// the assembled BDF graphs for small u.

#include <gtest/gtest.h>

#include "analysis/metrics.hpp"
#include "sf/bdf.hpp"
#include "sf/delorme.hpp"

namespace slimfly::sf {
namespace {

TEST(BdfModel, ClosedForm) {
  // Section II-C: k' = 3(u+1)/2, Nr = (u+1)(u^2+u+1).
  auto m = bdf_model(3);
  EXPECT_EQ(m.k_net, 6);
  EXPECT_EQ(m.num_routers, 4 * 13);
  m = bdf_model(9);  // odd prime power
  EXPECT_EQ(m.k_net, 15);
  EXPECT_EQ(m.num_routers, 10 * 91);
  EXPECT_THROW(bdf_model(4), std::invalid_argument);  // even
  EXPECT_THROW(bdf_model(15), std::invalid_argument); // not a prime power
}

TEST(BdfModel, MatchesCubicFormula) {
  // Nr = 8/27 k'^3 - 4/9 k'^2 + 2/3 k' must equal (u+1)(u^2+u+1).
  for (int u : {3, 5, 7, 9, 11, 13}) {
    auto m = bdf_model(u);
    double k = m.k_net;
    double nr = 8.0 / 27.0 * k * k * k - 4.0 / 9.0 * k * k + 2.0 / 3.0 * k;
    EXPECT_NEAR(static_cast<double>(m.num_routers), nr, 0.5) << "u=" << u;
  }
}

class PolarityGraphTest : public ::testing::TestWithParam<int> {};

TEST_P(PolarityGraphTest, ProjectivePlaneStructure) {
  int u = GetParam();
  Graph g = polarity_graph(u);
  EXPECT_EQ(g.num_vertices(), u * u + u + 1);
  // Degree u+1, except u+1 absolute points of degree u.
  int deg_u = 0, deg_u1 = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) == u) ++deg_u;
    else if (g.degree(v) == u + 1) ++deg_u1;
    else FAIL() << "unexpected degree " << g.degree(v);
  }
  EXPECT_EQ(deg_u, u + 1);
  EXPECT_EQ(analysis::diameter(g), 2);
}

INSTANTIATE_TEST_SUITE_P(SmallPlanes, PolarityGraphTest,
                         ::testing::Values(2, 3, 4, 5, 7));

TEST(PStar, C4WithAntipodalInvolution) {
  Graph c4(4);
  c4.add_edge(0, 1);
  c4.add_edge(1, 2);
  c4.add_edge(2, 3);
  c4.add_edge(3, 0);
  c4.finalize();
  EXPECT_TRUE(has_pstar_property(c4, {2, 3, 0, 1}));
  EXPECT_FALSE(has_pstar_property(c4, {1, 0, 3, 2}));  // adjacent-swap fails
  EXPECT_FALSE(has_pstar_property(c4, {1, 2, 3, 0}));  // not an involution
}

TEST(PStar, SearchFindsKnownGraphs) {
  // u=3: C4 (degree 2 on 4 vertices); u=5: the prism (degree 3 on 6).
  auto g4 = find_pstar_graph(4, 2);
  ASSERT_TRUE(g4.has_value());
  EXPECT_TRUE(has_pstar_property(g4->graph, g4->involution));
  auto g6 = find_pstar_graph(6, 3);
  ASSERT_TRUE(g6.has_value());
  EXPECT_TRUE(has_pstar_property(g6->graph, g6->involution));
}

TEST(StarProduct, SizeAndDegree) {
  Graph g1(2);
  g1.add_edge(0, 1);
  g1.finalize();
  Graph g2(3);
  g2.add_edge(0, 1);
  g2.add_edge(1, 2);
  g2.finalize();
  StarArcs arcs;
  arcs.arcs = {{0, 1}};
  arcs.bijections = {{0, 1, 2}};  // identity
  Graph prod = star_product(g1, g2, arcs);
  EXPECT_EQ(prod.num_vertices(), 6);
  // Each vertex: deg_G2(a2) + 1 (one arc endpoint per G1 edge).
  EXPECT_EQ(prod.degree(0 * 3 + 0), 1 + 1);
  EXPECT_EQ(prod.degree(0 * 3 + 1), 2 + 1);
}

TEST(StarProduct, ValidatesArity) {
  Graph g1(2);
  g1.add_edge(0, 1);
  g1.finalize();
  Graph g2(2);
  g2.add_edge(0, 1);
  g2.finalize();
  StarArcs arcs;
  arcs.arcs = {{0, 1}};
  arcs.bijections = {{0}};  // wrong arity
  EXPECT_THROW(star_product(g1, g2, arcs), std::invalid_argument);
}

TEST(SlimFlyBdf, DiameterThreeForU3) {
  SlimFlyBDF topo(3);
  EXPECT_EQ(topo.num_routers(), 52);
  EXPECT_EQ(topo.k_net(), 6);
  int d = analysis::diameter(topo.graph());
  EXPECT_LE(d, 3);
  EXPECT_GE(d, 2);
  EXPECT_LE(topo.graph().max_degree(), topo.k_net());
}

TEST(SlimFlyBdf, DiameterThreeForU5) {
  SlimFlyBDF topo(5);
  EXPECT_EQ(topo.num_routers(), 6 * 31);
  EXPECT_EQ(topo.k_net(), 9);
  EXPECT_LE(analysis::diameter(topo.graph()), 3);
}

TEST(Delorme, ClosedForm) {
  auto m = delorme_model(2);
  EXPECT_EQ(m.k_net, 9);
  EXPECT_EQ(m.num_routers, 9LL * 25);
  EXPECT_THROW(delorme_model(6), std::invalid_argument);
}

TEST(Delorme, FamilyBounded) {
  auto family = delorme_family(100);
  for (const auto& m : family) EXPECT_LE(m.k_net, 100);
  EXPECT_GE(family.size(), 3u);  // v = 2, 3, 4, 5, 7, 8, 9 -> (v+1)^2 <= 100
}

}  // namespace
}  // namespace slimfly::sf
