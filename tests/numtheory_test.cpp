#include <gtest/gtest.h>

#include "util/numtheory.hpp"

namespace slimfly {
namespace {

TEST(IsPrime, SmallValues) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(19));
  EXPECT_FALSE(is_prime(91));  // 7 * 13
  EXPECT_TRUE(is_prime(7919));
}

TEST(AsPrimePower, RecognizesPrimePowers) {
  auto pp = as_prime_power(8);
  ASSERT_TRUE(pp);
  EXPECT_EQ(pp->p, 2);
  EXPECT_EQ(pp->m, 3);

  pp = as_prime_power(125);
  ASSERT_TRUE(pp);
  EXPECT_EQ(pp->p, 5);
  EXPECT_EQ(pp->m, 3);

  pp = as_prime_power(17);
  ASSERT_TRUE(pp);
  EXPECT_EQ(pp->p, 17);
  EXPECT_EQ(pp->m, 1);
}

TEST(AsPrimePower, RejectsComposites) {
  EXPECT_FALSE(as_prime_power(1));
  EXPECT_FALSE(as_prime_power(6));
  EXPECT_FALSE(as_prime_power(12));
  EXPECT_FALSE(as_prime_power(100));  // 2^2 * 5^2
  EXPECT_FALSE(as_prime_power(0));
}

TEST(PowMod, Basics) {
  EXPECT_EQ(pow_mod(2, 10, 1000), 24);
  EXPECT_EQ(pow_mod(3, 0, 7), 1);
  EXPECT_EQ(pow_mod(5, 3, 7), 6);
  EXPECT_EQ(pow_mod(0, 5, 7), 0);
}

TEST(InvMod, FermatInverse) {
  for (int a = 1; a < 19; ++a) {
    EXPECT_EQ(mul_mod(a, inv_mod(a, 19), 19), 1);
  }
  EXPECT_THROW(inv_mod(0, 7), std::invalid_argument);
}

TEST(PrimitiveRoot, GeneratesFullGroup) {
  for (std::int64_t p : {3, 5, 7, 11, 13, 17, 19, 23}) {
    std::int64_t g = primitive_root(p);
    std::vector<bool> seen(static_cast<std::size_t>(p), false);
    std::int64_t x = 1;
    for (int i = 0; i < p - 1; ++i) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(x)]);
      seen[static_cast<std::size_t>(x)] = true;
      x = mul_mod(x, g, p);
    }
    EXPECT_EQ(x, 1);
  }
}

TEST(PrimitiveRoot, KnownValueForQ5) {
  EXPECT_EQ(primitive_root(5), 2);  // the paper's worked example uses xi = 2
}

TEST(Gcd, Basics) {
  EXPECT_EQ(gcd(12, 18), 6);
  EXPECT_EQ(gcd(17, 5), 1);
  EXPECT_EQ(gcd(0, 7), 7);
  EXPECT_EQ(gcd(-12, 18), 6);
}

}  // namespace
}  // namespace slimfly
