#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/metrics.hpp"
#include "sf/mms.hpp"
#include "sim/traffic.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"

namespace slimfly::sim {
namespace {

TEST(Uniform, NeverSelf) {
  auto t = make_uniform(16);
  Rng rng(1);
  for (int s = 0; s < 16; ++s) {
    for (int trial = 0; trial < 50; ++trial) {
      int d = t->destination(s, rng);
      EXPECT_NE(d, s);
      EXPECT_GE(d, 0);
      EXPECT_LT(d, 16);
    }
  }
}

TEST(Uniform, CoversAllDestinations) {
  auto t = make_uniform(8);
  Rng rng(2);
  std::vector<int> hits(8, 0);
  for (int trial = 0; trial < 2000; ++trial) {
    ++hits[static_cast<std::size_t>(t->destination(0, rng))];
  }
  EXPECT_EQ(hits[0], 0);
  for (int d = 1; d < 8; ++d) EXPECT_GT(hits[static_cast<std::size_t>(d)], 150);
}

TEST(Shuffle, RotatesAddressBits) {
  auto t = make_shuffle(16);  // 16 active, 4 bits
  Rng rng(1);
  EXPECT_EQ(t->destination(0b0001, rng), 0b0010);
  EXPECT_EQ(t->destination(0b1000, rng), 0b0001);
  EXPECT_EQ(t->destination(0b1010, rng), 0b0101);
  EXPECT_EQ(t->destination(0b0000, rng), -1);  // fixed point -> idle
}

TEST(Shuffle, DeactivatesBeyondPowerOfTwo) {
  auto t = make_shuffle(20);  // active = 16
  Rng rng(1);
  for (int s = 16; s < 20; ++s) {
    EXPECT_EQ(t->destination(s, rng), -1);
    EXPECT_FALSE(t->is_active(s));
  }
}

TEST(BitReversal, ReversesBits) {
  auto t = make_bit_reversal(16);
  Rng rng(1);
  EXPECT_EQ(t->destination(0b0001, rng), 0b1000);
  EXPECT_EQ(t->destination(0b0011, rng), 0b1100);
  EXPECT_EQ(t->destination(0b0110, rng), -1);  // palindrome -> self -> idle
}

TEST(BitComplement, Complements) {
  auto t = make_bit_complement(16);
  Rng rng(1);
  EXPECT_EQ(t->destination(0b0000, rng), 0b1111);
  EXPECT_EQ(t->destination(0b1010, rng), 0b0101);
  // Complement never fixes a point: all 16 active.
  for (int s = 0; s < 16; ++s) EXPECT_TRUE(t->is_active(s));
}

TEST(BitPermutations, AreInvolutionsOrPermutations) {
  // Destination maps must be injective on the active set.
  for (auto* factory : {&make_shuffle, &make_bit_reversal, &make_bit_complement}) {
    auto t = (*factory)(32);
    Rng rng(1);
    std::vector<int> seen(32, 0);
    for (int s = 0; s < 32; ++s) {
      int d = t->destination(s, rng);
      if (d >= 0) ++seen[static_cast<std::size_t>(d)];
    }
    for (int d = 0; d < 32; ++d) EXPECT_LE(seen[static_cast<std::size_t>(d)], 1);
  }
}

TEST(Shift, MatchesPaperDefinition) {
  auto t = make_shift(100);
  Rng rng(3);
  for (int s = 0; s < 100; ++s) {
    for (int trial = 0; trial < 20; ++trial) {
      int d = t->destination(s, rng);
      int base = s % 50;
      EXPECT_TRUE(d == base || d == base + 50) << "s=" << s << " d=" << d;
      EXPECT_NE(d, s);
    }
  }
}

TEST(WorstCaseSf, OverloadsSingleLinks) {
  sf::SlimFlyMMS topo(5);
  auto t = make_worst_case_sf(topo);
  Rng rng(4);
  // Pattern is a fixed endpoint map; count how many distinct source routers
  // target the most popular router: that is the link-overload factor.
  std::vector<int> router_hits(static_cast<std::size_t>(topo.num_routers()), 0);
  int active = 0;
  for (int e = 0; e < topo.num_endpoints(); ++e) {
    int d = t->destination(e, rng);
    if (d < 0) continue;
    ++active;
    EXPECT_NE(topo.endpoint_router(d), topo.endpoint_router(e));
    ++router_hits[static_cast<std::size_t>(topo.endpoint_router(d))];
  }
  EXPECT_GT(active, topo.num_endpoints() / 3);  // construction covers most routers
  int max_hits = *std::max_element(router_hits.begin(), router_hits.end());
  // Some router receives from >= 3 full routers' worth of endpoints.
  EXPECT_GE(max_hits, 3 * topo.concentration());
}

TEST(WorstCaseSf, SendersUseTwoHopPaths) {
  sf::SlimFlyMMS topo(5);
  auto t = make_worst_case_sf(topo);
  Rng rng(5);
  auto dist_ok = [&](int e, int d) {
    auto dv = analysis::bfs_distances(topo.graph(), topo.endpoint_router(e));
    int dd = dv[static_cast<std::size_t>(topo.endpoint_router(d))];
    return dd >= 1 && dd <= 2;
  };
  for (int e = 0; e < topo.num_endpoints(); e += 5) {
    int d = t->destination(e, rng);
    if (d >= 0) {
      EXPECT_TRUE(dist_ok(e, d));
    }
  }
}

TEST(WorstCaseDf, TargetsSuccessorGroup) {
  auto df = Dragonfly::balanced(2);
  auto t = make_worst_case_df(*df);
  Rng rng(6);
  for (int e = 0; e < df->num_endpoints(); ++e) {
    int src_group = df->group_of(df->endpoint_router(e));
    int d = t->destination(e, rng);
    EXPECT_EQ(df->group_of(df->endpoint_router(d)),
              (src_group + 1) % df->groups());
  }
}

TEST(WorstCaseFt, CrossesPods) {
  FatTree3 ft(3, FatTreeVariant::PaperSlim);
  auto t = make_worst_case_ft(ft);
  Rng rng(7);
  for (int e = 0; e < ft.num_endpoints(); ++e) {
    int d = t->destination(e, rng);
    EXPECT_NE(ft.pod(ft.endpoint_router(e)), ft.pod(ft.endpoint_router(d)));
  }
}

}  // namespace
}  // namespace slimfly::sim
