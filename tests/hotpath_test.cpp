// Hot-path guarantees: (1) steady-state Network::step() performs ZERO heap
// allocations per cycle — enforced with a counting global allocator — and
// (2) the data-oriented storage (ring buffers, receiver-side flit lines,
// per-router route caches and occupancy masks) still produces bit-identical
// trajectories across the SF_THREADS x SF_INTRA_THREADS matrix.
//
// The allocation guard covers the transition from warmup into the
// measurement window, so it exercises delivery recording too (the network
// pre-reserves its latency pools via reserve_measurement_stats). Setup —
// wiring, first-touch growth of endpoint source rings, scratch sizing — is
// allowed to allocate; the measured region is not.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "exp/diff.hpp"
#include "exp/experiment.hpp"
#include "sf/mms.hpp"
#include "sim/ring.hpp"
#include "sim/simulation.hpp"
#include "sim/slab.hpp"

namespace {
std::atomic<long long> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace slimfly::sim {
namespace {

SimConfig guard_config() {
  SimConfig cfg;
  cfg.warmup_cycles = 400;
  cfg.measure_cycles = 400;
  cfg.drain_cycles = 4000;
  return cfg;
}

// Steps `settle` cycles (allocations allowed: source rings grow on first
// use), then asserts the next `measured` cycles allocate nothing. The
// window straddles warmup -> measurement, covering every phase plus stats
// recording. Both stepping engines must hold the guarantee: the active
// engine's wake heaps, outboxes and active lists are sized at wire() for
// their worst case, so steady-state scheduling never grows them.
void expect_allocation_free_steady_state(RoutingKind kind, double load,
                                         StepEngine engine) {
  sf::SlimFlyMMS topo(5);
  auto routing = make_routing(kind, topo);
  auto traffic = make_uniform(topo.num_endpoints());
  SimConfig cfg = guard_config();
  cfg.engine = engine;
  Network net(topo, *routing.algorithm, *traffic, cfg, load);
  net.reserve_measurement_stats();
  for (int i = 0; i < 300; ++i) net.step();
  const long long before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 200; ++i) net.step();
  const long long during =
      g_allocations.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(during, 0) << to_string(kind) << " engine=" << to_string(engine)
                       << ": steady-state stepping must not allocate";
  EXPECT_GT(net.flit_hops(), 0);  // the guard window did real work
}

TEST(HotPathAllocationGuard, MinimalRoutingSteadyStateIsAllocationFree) {
  expect_allocation_free_steady_state(RoutingKind::Minimal, 0.3,
                                      StepEngine::Cycle);
  expect_allocation_free_steady_state(RoutingKind::Minimal, 0.3,
                                      StepEngine::Active);
}

TEST(HotPathAllocationGuard, UgalSteadyStateIsAllocationFree) {
  expect_allocation_free_steady_state(RoutingKind::UgalL, 0.3,
                                      StepEngine::Cycle);
  expect_allocation_free_steady_state(RoutingKind::UgalL, 0.3,
                                      StepEngine::Active);
}

TEST(HotPathAllocationGuard, DeepQueueHighLoadIsAllocationFree) {
  // 0.7 offered load — the highest load q=5 UGAL-L sustains (accepted
  // tracks offered; 0.8+ backlogs the injectors, and an unbounded source
  // backlog legitimately grows forever) — drives the lazily-backed VC
  // rings, staging rings and event lines deep into their slabs, so the
  // guard window churns the deepest queues the flow control admits at a
  // stable operating point. Growth past the settle phase must come from
  // the SlabPool's preloaded float, never the allocator.
  expect_allocation_free_steady_state(RoutingKind::UgalL, 0.7,
                                      StepEngine::Cycle);
  expect_allocation_free_steady_state(RoutingKind::UgalL, 0.7,
                                      StepEngine::Active);
}

TEST(HotPathAllocationGuard, LazyRingGrowthIsPoolServed) {
  // The pooled-storage invariant in isolation: after the reserve float is
  // charged, a LazyRing doubling all the way to its logical capacity — the
  // late-straggler case the Network-level guards can only sample — never
  // touches the allocator, and steady churn at the high-water mark is free.
  SlabPool pool;
  pool.preload();
  LazyRing<int> ring;
  ring.reset(2048, &pool);  // full growth = 8 KiB, the preload ceiling
  for (int i = 0; i < 8; ++i) ring.push_back(i);  // settle: first slab
  const long long before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 8; i < 2048; ++i) ring.push_back(i);  // doubles to capacity
  while (!ring.empty()) ring.drop_front();
  for (int i = 0; i < 5000; ++i) {  // steady churn at high water
    ring.push_back(i);
    ring.drop_front();
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0)
      << "LazyRing growth must be pool-served after preload";
  EXPECT_EQ(ring.physical_capacity(), 2048u);
}

TEST(HotPathAllocationGuard, ActiveEngineLowLoadIsAllocationFree) {
  // Low load is the active engine's hot regime: routers sleep, injector
  // arrivals are batch-planned, and the wake heaps churn constantly — all
  // of it must run out of the capacity reserved at construction.
  expect_allocation_free_steady_state(RoutingKind::Minimal, 0.05,
                                      StepEngine::Active);
}

// Workload-layer variant of the guard: a traffic spec string instead of a
// RoutingKind, so the modulated injection path (burst) and self-clocked
// replay (allreduce) run under the counting allocator. Windowed stats are
// enabled too — the rows are preallocated at construction.
void expect_workload_allocation_free(const std::string& traffic_spec,
                                     double load, StepEngine engine) {
  sf::SlimFlyMMS topo(5);
  auto routing = make_routing(RoutingKind::Minimal, topo);
  auto traffic = make_traffic(traffic_spec, topo);
  SimConfig cfg = guard_config();
  cfg.engine = engine;
  cfg.stats_window = 50;
  Network net(topo, *routing.algorithm, *traffic, cfg, load);
  net.reserve_measurement_stats();
  for (int i = 0; i < 300; ++i) net.step();
  const long long before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 200; ++i) net.step();
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0)
      << traffic_spec << " engine=" << to_string(engine)
      << ": steady-state stepping must not allocate";
}

TEST(HotPathAllocationGuard, BurstModulationIsAllocationFree) {
  // ON/OFF modulation exercises per-endpoint segment state in the cycle
  // engine and the modulated batch planner in the active engine.
  expect_workload_allocation_free("burst:on=50,off=150,mult=4,base=uniform",
                                  0.3, StepEngine::Cycle);
  expect_workload_allocation_free("burst:on=50,off=150,mult=4,base=uniform",
                                  0.3, StepEngine::Active);
}

TEST(HotPathAllocationGuard, DependencyReplayIsAllocationFree) {
  // Self-clocked replay: completion outboxes, the unlock scratch and the
  // wake heap budget must all run out of their construction-time reserves.
  // 128 ring ranks give 2*127*128 = 32512 messages — the replay spans the
  // whole 500-step guard window.
  expect_workload_allocation_free("allreduce:ranks=128,algo=ring", 0.3,
                                  StepEngine::Cycle);
  expect_workload_allocation_free("allreduce:ranks=128,algo=ring", 0.3,
                                  StepEngine::Active);
}

TEST(HotPathAllocationGuard, FatTreeGatherPathIsAllocationFree) {
  // FT-ANCA takes the non-cacheable allocator path (per-iteration
  // re-derivation), which must be just as allocation-free.
  for (StepEngine engine : {StepEngine::Cycle, StepEngine::Active}) {
    FatTree3 topo(4);
    auto routing = make_routing(RoutingKind::FatTreeAnca, topo);
    auto traffic = make_uniform(topo.num_endpoints());
    SimConfig cfg = guard_config();
    cfg.engine = engine;
    Network net(topo, *routing.algorithm, *traffic, cfg, 0.3);
    net.reserve_measurement_stats();
    for (int i = 0; i < 300; ++i) net.step();
    const long long before = g_allocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 200; ++i) net.step();
    EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0)
        << "engine=" << to_string(engine);
  }
}

TEST(HotPathStorage, BitIdenticalAcrossThreadMatrix) {
  // The new storage under sharded stepping: every (across x intra) worker
  // combination must reproduce the sequential trajectory byte-for-byte.
  exp::ExperimentSpec spec = exp::ExperimentSpec::cross(
      "hotpath_matrix", {"slimfly:q=5"}, {"MIN", "UGAL-L"}, {"uniform"},
      {0.2, 0.6}, guard_config());
  spec.truncate_at_saturation = false;
  exp::ExperimentEngine reference(1);
  const std::string want = exp::golden_trajectory(spec, reference.run(spec));
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    for (int intra : {1, 2}) {
      for (StepEngine step_engine : {StepEngine::Cycle, StepEngine::Active}) {
        exp::ExperimentSpec run = spec;
        run.config.intra_threads = intra;
        run.config.engine = step_engine;
        exp::ExperimentEngine engine(threads);
        EXPECT_EQ(want, exp::golden_trajectory(run, engine.run(run)))
            << "threads=" << threads << " intra=" << intra
            << " engine=" << to_string(step_engine);
      }
    }
  }
}

}  // namespace
}  // namespace slimfly::sim
