// Stepping-engine equivalence: the active engine (active-set scheduling +
// idle fast-forward) is a pure wall-time optimization — every simulation it
// runs must be bit-identical to the cycle engine's, across routings
// (including per-hop adaptive FT-ANCA), traffic patterns, saturation, and
// every intra-thread worker count. Only the cycles-stepped audit counter may
// differ, and only downward.

#include <gtest/gtest.h>

#include <cstdlib>

#include "exp/experiment.hpp"
#include "sf/mms.hpp"
#include "sim/simulation.hpp"
#include "topo/fattree.hpp"
#include "topo/registry.hpp"

namespace slimfly::sim {
namespace {

SimConfig quick_config() {
  SimConfig cfg;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 400;
  cfg.drain_cycles = 4000;
  cfg.seed = 11;
  return cfg;
}

void expect_same_result(const SimResult& a, const SimResult& b,
                        const std::string& what) {
  // Byte-identical, not approximately equal: the engine knob promises the
  // stepping strategy cannot leak into the simulation.
  EXPECT_EQ(a.avg_latency, b.avg_latency) << what;
  EXPECT_EQ(a.avg_network_latency, b.avg_network_latency) << what;
  EXPECT_EQ(a.p99_latency, b.p99_latency) << what;
  EXPECT_EQ(a.accepted_load, b.accepted_load) << what;
  EXPECT_EQ(a.delivered, b.delivered) << what;
  EXPECT_EQ(a.saturated, b.saturated) << what;
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.flit_hops, b.flit_hops) << what;
}

SimResult run_point(const Topology& topo, RoutingKind kind, double load,
                    StepEngine engine, int intra_threads = 1) {
  auto bundle = make_routing(kind, topo);
  auto traffic = make_uniform(topo.num_endpoints());
  SimConfig cfg = quick_config();
  cfg.engine = engine;
  cfg.intra_threads = intra_threads;
  return simulate(topo, *bundle.algorithm, *traffic, cfg, load);
}

TEST(Engine, EveryRoutingBitIdenticalAcrossEngines) {
  sf::SlimFlyMMS sf(5);
  for (RoutingKind kind : {RoutingKind::Minimal, RoutingKind::Valiant,
                           RoutingKind::UgalL, RoutingKind::UgalG}) {
    for (double load : {0.1, 0.4}) {
      SimResult cycle = run_point(sf, kind, load, StepEngine::Cycle);
      SimResult active = run_point(sf, kind, load, StepEngine::Active);
      expect_same_result(cycle, active,
                         to_string(kind) + " load=" + std::to_string(load));
      // The cycle engine steps every cycle by definition; the active engine
      // may step fewer, never more.
      EXPECT_EQ(cycle.cycles_stepped, cycle.cycles);
      EXPECT_LE(active.cycles_stepped, active.cycles);
    }
  }
}

TEST(Engine, PerHopAdaptiveRoutingBitIdentical) {
  // FT-ANCA reads queue estimates during allocation; a missed wake would
  // surface as a stale estimate on a sleeping router and diverging ports.
  FatTree3 ft(4);
  expect_same_result(run_point(ft, RoutingKind::FatTreeAnca, 0.3,
                               StepEngine::Cycle),
                     run_point(ft, RoutingKind::FatTreeAnca, 0.3,
                               StepEngine::Active),
                     "FT-ANCA");
}

TEST(Engine, SaturatedWorstCaseBitIdentical) {
  // Past saturation every router is live every cycle — the active set is
  // the whole network, so this is the adversarial case for busy-mask and
  // wake bookkeeping (any router wrongly put to sleep changes results).
  sf::SlimFlyMMS sf(5);
  SimConfig cfg = quick_config();
  cfg.drain_cycles = 800;
  auto run_at = [&](StepEngine engine) {
    auto bundle = make_routing(RoutingKind::Minimal, sf);
    auto traffic = make_worst_case_sf(sf);
    SimConfig c = cfg;
    c.engine = engine;
    return simulate(sf, *bundle.algorithm, *traffic, c, 0.9);
  };
  SimResult cycle = run_at(StepEngine::Cycle);
  EXPECT_TRUE(cycle.saturated);
  expect_same_result(cycle, run_at(StepEngine::Active), "saturated");
}

TEST(Engine, ActiveEngineBitIdenticalAcrossIntraThreadCounts) {
  // The active engine composes with router-parallel stepping: per-shard
  // heaps plus cross-shard wake outboxes must keep the full
  // engine x worker-count matrix on one trajectory.
  sf::SlimFlyMMS sf(5);
  SimResult want = run_point(sf, RoutingKind::UgalL, 0.3, StepEngine::Cycle);
  for (int intra : {1, 2, 4}) {
    expect_same_result(want,
                       run_point(sf, RoutingKind::UgalL, 0.3,
                                 StepEngine::Active, intra),
                       "active intra=" + std::to_string(intra));
  }
}

TEST(Engine, StepLevelStateMatchesCycleEngine) {
  // Beyond the SimResult summary: the in-flight population and delivery
  // counters agree cycle by cycle. step() always advances exactly one cycle
  // under both engines (fast-forward lives in run() only), so lock-step
  // stepping is well defined.
  sf::SlimFlyMMS sf(5);
  auto bundle_a = make_routing(RoutingKind::Minimal, sf);
  auto bundle_b = make_routing(RoutingKind::Minimal, sf);
  auto traffic_a = make_uniform(sf.num_endpoints());
  auto traffic_b = make_uniform(sf.num_endpoints());
  SimConfig cfg = quick_config();
  cfg.engine = StepEngine::Cycle;
  Network cycle(sf, *bundle_a.algorithm, *traffic_a, cfg, 0.4);
  cfg.engine = StepEngine::Active;
  Network active(sf, *bundle_b.algorithm, *traffic_b, cfg, 0.4);
  for (int c = 0; c < 300; ++c) {
    cycle.step();
    active.step();
    if (c % 25 == 0) {
      EXPECT_EQ(cycle.flits_in_flight(), active.flits_in_flight())
          << "cycle " << c;
      EXPECT_EQ(cycle.stats().total_delivered(),
                active.stats().total_delivered())
          << "cycle " << c;
    }
  }
  EXPECT_EQ(cycle.cycles_stepped(), 300);
  EXPECT_EQ(active.cycles_stepped(), 300);
}

TEST(Engine, FastForwardSkipsIdleStretchesWithoutChangingResults) {
  // A near-idle network: injections are rare enough that the whole network
  // regularly empties, so run() under the active engine must fast-forward
  // (cycles_stepped < cycles) while reproducing the cycle engine's result —
  // including the total cycle count, which stats windows hang off.
  auto topo = topo::make("torus:dims=4x4");
  auto run_at = [&](StepEngine engine) {
    auto bundle = make_routing(RoutingKind::Minimal, *topo);
    auto traffic = make_uniform(topo->num_endpoints());
    SimConfig cfg = quick_config();
    cfg.engine = engine;
    return simulate(*topo, *bundle.algorithm, *traffic, cfg, 0.005);
  };
  SimResult cycle = run_at(StepEngine::Cycle);
  SimResult active = run_at(StepEngine::Active);
  expect_same_result(cycle, active, "near-idle");
  EXPECT_GT(cycle.delivered, 0);
  EXPECT_EQ(cycle.cycles_stepped, cycle.cycles);
  EXPECT_LT(active.cycles_stepped, active.cycles)
      << "active engine never fast-forwarded a near-idle run";
}

TEST(Engine, ZeroLoadRunFastForwardsToTheEnd) {
  // load <= 0 means no endpoint ever injects: the active engine should
  // step (almost) nothing and still agree on the empty-run summary.
  sf::SlimFlyMMS sf(5);
  auto run_at = [&](StepEngine engine) {
    auto bundle = make_routing(RoutingKind::Minimal, sf);
    auto traffic = make_uniform(sf.num_endpoints());
    SimConfig cfg = quick_config();
    cfg.engine = engine;
    return simulate(sf, *bundle.algorithm, *traffic, cfg, 0.0);
  };
  SimResult cycle = run_at(StepEngine::Cycle);
  SimResult active = run_at(StepEngine::Active);
  expect_same_result(cycle, active, "zero load");
  EXPECT_EQ(cycle.delivered, 0);
  EXPECT_EQ(active.cycles_stepped, 0);
}

TEST(Engine, RegistryEngineOverrideBitIdentical) {
  // The per-series "engine" config override — the golden_mini mechanism —
  // reproduces the unoverridden trajectory, including per-point seeds
  // (point_seed skips the engine key so both series draw the same streams).
  exp::ExperimentSpec spec;
  spec.name = "engines";
  spec.loads = {0.1, 0.4};
  spec.config = quick_config();
  spec.series = {{"slimfly:q=5", "UGAL-L", "uniform", "SF"},
                 {"fattree:k=4", "FT-ANCA", "uniform", "FT"}};
  exp::ExperimentSpec overridden = spec;
  for (auto& series : overridden.series) {
    series.config_overrides["engine"] =
        static_cast<double>(StepEngine::Active);
  }
  exp::ExperimentEngine engine(1);
  auto want = engine.run(spec);
  auto got = engine.run(overridden);
  ASSERT_FALSE(want.empty());
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].seed, got[i].seed) << "point " << i;
    expect_same_result(want[i].result, got[i].result,
                       "override point " + std::to_string(i));
  }
}

TEST(Engine, StepEngineFromString) {
  EXPECT_EQ(exp::step_engine_from_string("cycle", "t"), StepEngine::Cycle);
  EXPECT_EQ(exp::step_engine_from_string("active", "t"), StepEngine::Active);
  EXPECT_THROW(exp::step_engine_from_string("warp", "t"),
               std::invalid_argument);
  EXPECT_THROW(exp::step_engine_from_string("", "t"), std::invalid_argument);
}

TEST(Engine, EngineFromEnv) {
  setenv("SF_ENGINE", "active", 1);
  EXPECT_EQ(exp::engine_from_env(), StepEngine::Active);
  setenv("SF_ENGINE", "cycle", 1);
  EXPECT_EQ(exp::engine_from_env(), StepEngine::Cycle);
  setenv("SF_ENGINE", "junk", 1);
  EXPECT_EQ(exp::engine_from_env(), StepEngine::Cycle);
  unsetenv("SF_ENGINE");
  EXPECT_EQ(exp::engine_from_env(), StepEngine::Cycle);
}

}  // namespace
}  // namespace slimfly::sim
