// Distance-oracle certification: every per-family oracle must agree with
// BFS (the dense DistanceTable) on every pair, report the exact diameter,
// and replicate the dense sample_minimal_path walk bit-for-bit — the
// properties that make OracleMode a pure memory knob that can never change
// simulation results.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sf/mms.hpp"
#include "sim/routing/oracle.hpp"
#include "sim/routing/routing.hpp"
#include "topo/dln.hpp"
#include "topo/hypercube.hpp"
#include "topo/registry.hpp"
#include "topo/topology.hpp"
#include "topo/torus.hpp"

namespace slimfly::sim {
namespace {

/// Small instances of every registry family (exhaustive pair checks stay
/// cheap), plus extras that hit oracle paths the example specs miss:
/// non-square torus, classic fat tree, an augmented spec whose result is
/// NOT diameter-2 (forcing the CompressedBfs fallback), and a second
/// slimfly q to cover both generator-set parities.
std::vector<std::string> certification_specs() {
  std::vector<std::string> specs = topo::example_specs();
  specs.push_back("slimfly:q=7");
  specs.push_back("torus:dims=5x3x4");
  specs.push_back("torus:dims=6");
  specs.push_back("fattree:k=4,variant=classic");
  specs.push_back("fattree:k=6");
  specs.push_back("flatbutterfly:n=3,extent=3");
  specs.push_back("dragonfly:p=2,a=3,h=1");  // sparse globals, diameter 3
  specs.push_back("augmented:base=torus:dims=4x4x3,extra=1,seed=9");
  return specs;
}

TEST(FamilyOracle, MatchesBfsExhaustivelyOnEveryFamily) {
  for (const std::string& spec : certification_specs()) {
    SCOPED_TRACE(spec);
    auto topo = topo::make(spec);
    const Graph& g = topo->graph();
    DistanceTable bfs(g);
    auto oracle = make_family_oracle(*topo);
    ASSERT_NE(oracle, nullptr);
    EXPECT_EQ(oracle->diameter(), bfs.diameter());
    const int n = topo->num_routers();
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        ASSERT_EQ(oracle->dist(u, v), bfs.dist(u, v))
            << "dist(" << u << ", " << v << ")";
      }
    }
  }
}

TEST(FamilyOracle, SymmetryAndTriangleInequality) {
  // Implied by BFS equality on undirected graphs, but asserted directly so
  // a future oracle cannot pass a weakened BFS check and still violate
  // metric axioms the routing stack relies on.
  for (const std::string& spec : certification_specs()) {
    SCOPED_TRACE(spec);
    auto topo = topo::make(spec);
    auto oracle = make_family_oracle(*topo);
    const int n = topo->num_routers();
    Rng rng(0xface);
    for (int t = 0; t < 2000; ++t) {
      const int u = rng.next_int(0, n - 1);
      const int v = rng.next_int(0, n - 1);
      const int w = rng.next_int(0, n - 1);
      const int duv = oracle->dist(u, v);
      EXPECT_EQ(duv, oracle->dist(v, u));
      EXPECT_EQ(duv == 0, u == v);
      EXPECT_LE(duv, oracle->dist(u, w) + oracle->dist(w, v));
      EXPECT_LE(duv, oracle->diameter());
    }
  }
}

TEST(FamilyOracle, SpotChecksOnMediumInstances) {
  // Large enough that the exhaustive loop above would dominate test time;
  // seeded random pairs keep the medium sizes honest.
  for (const std::string& spec :
       {std::string("slimfly:q=17"), std::string("dragonfly:p=4,a=8,h=4,g=33"),
        std::string("fattree:k=12"), std::string("torus:dims=8x8x8"),
        std::string("hypercube:n=10"), std::string("dln:n=256,k=7,p=2")}) {
    SCOPED_TRACE(spec);
    auto topo = topo::make(spec);
    DistanceTable bfs(topo->graph());
    auto oracle = make_family_oracle(*topo);
    EXPECT_EQ(oracle->diameter(), bfs.diameter());
    const int n = topo->num_routers();
    Rng rng(0xbeef);
    for (int t = 0; t < 20000; ++t) {
      const int u = rng.next_int(0, n - 1);
      const int v = rng.next_int(0, n - 1);
      ASSERT_EQ(oracle->dist(u, v), bfs.dist(u, v))
          << "dist(" << u << ", " << v << ")";
    }
  }
}

TEST(FamilyOracle, SampleMinimalPathBitIdenticalToDenseTable) {
  // The sharp edge of the whole refactor: identical paths AND identical RNG
  // consumption, otherwise swapping oracles would shift every subsequent
  // draw in a simulation. Run table and oracle from equal-seeded streams,
  // compare paths, then compare the streams' next outputs.
  for (const std::string& spec : certification_specs()) {
    SCOPED_TRACE(spec);
    auto topo = topo::make(spec);
    const Graph& g = topo->graph();
    DistanceTable table(g);
    auto oracle = make_family_oracle(*topo);
    const int n = topo->num_routers();
    Rng pick(0x5eed);
    for (int t = 0; t < 500; ++t) {
      const int u = pick.next_int(0, n - 1);
      const int v = pick.next_int(0, n - 1);
      const std::uint64_t seed = pick.next_u32();
      Rng rng_a(seed), rng_b(seed);
      InlinePath a{u}, b{u};
      table.sample_minimal_path(g, u, v, rng_a, a);
      oracle->sample_minimal_path(g, u, v, rng_b, b);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
      // Post-state: the next draws must match, proving both walks consumed
      // the stream identically.
      ASSERT_EQ(rng_a.next_u32(), rng_b.next_u32());
    }
  }
}

TEST(CompressedBfsOracle, RejectsDisconnectedGraphs) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  EXPECT_THROW(CompressedBfsOracle{g}, std::invalid_argument);
}

TEST(Diameter2Oracle, BuildsOnlyWhenDiameterIsAtMostTwo) {
  // C5: diameter 2 — try_build succeeds and answers exactly.
  Graph c5(5);
  for (int i = 0; i < 5; ++i) c5.add_edge(i, (i + 1) % 5);
  c5.finalize();
  auto oracle = Diameter2Oracle::try_build(c5);
  ASSERT_NE(oracle, nullptr);
  EXPECT_EQ(oracle->diameter(), 2);
  DistanceTable bfs(c5);
  for (int u = 0; u < 5; ++u)
    for (int v = 0; v < 5; ++v) EXPECT_EQ(oracle->dist(u, v), bfs.dist(u, v));

  // P4 (path graph): diameter 3 — the verification sweep must refuse.
  Graph p4(4);
  p4.add_edge(0, 1);
  p4.add_edge(1, 2);
  p4.add_edge(2, 3);
  p4.finalize();
  EXPECT_EQ(Diameter2Oracle::try_build(p4), nullptr);

  // K4: diameter 1 stays exact too.
  Graph k4(4);
  for (int u = 0; u < 4; ++u)
    for (int v = u + 1; v < 4; ++v) k4.add_edge(u, v);
  k4.finalize();
  auto complete = Diameter2Oracle::try_build(k4);
  ASSERT_NE(complete, nullptr);
  EXPECT_EQ(complete->diameter(), 1);
}

TEST(OracleFactory, ModeAndAutoThresholdSelection) {
  sf::SlimFlyMMS small(5);  // 50 routers, well under the dense limit
  auto table = make_distance_oracle(small, OracleMode::Table);
  EXPECT_NE(dynamic_cast<const DistanceTable*>(table.get()), nullptr);
  auto family = make_distance_oracle(small, OracleMode::Family);
  EXPECT_NE(dynamic_cast<const SlimFlyOracle*>(family.get()), nullptr);
  auto auto_small = make_distance_oracle(small, OracleMode::Auto);
  EXPECT_NE(dynamic_cast<const DistanceTable*>(auto_small.get()), nullptr);

  // 2^13 = 8192 routers > kDenseOracleRouterLimit: Auto flips to family.
  Hypercube big(13);
  ASSERT_GT(big.num_routers(), kDenseOracleRouterLimit);
  auto auto_big = make_distance_oracle(big, OracleMode::Auto);
  EXPECT_NE(dynamic_cast<const HypercubeOracle*>(auto_big.get()), nullptr);
  EXPECT_EQ(auto_big->diameter(), 13);
  EXPECT_EQ(auto_big->dist(0, (1 << 13) - 1), 13);
}

TEST(OracleFactory, FamilySelectionPerTopology) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"slimfly:q=5", "SlimFlyOracle"},
      {"torus:dims=4x4x4", "TorusOracle"},
      {"hypercube:n=6", "HypercubeOracle"},
      {"flatbutterfly:n=2,extent=4", "FlatButterflyOracle"},
      {"fattree:k=4", "FatTreeOracle"},
      {"dragonfly:p=2,a=4,h=2", "DragonflyOracle"},
  };
  for (const auto& [spec, expected] : cases) {
    SCOPED_TRACE(spec);
    auto topo = topo::make(spec);
    auto oracle = make_family_oracle(*topo);
    std::string got;
    if (dynamic_cast<const SlimFlyOracle*>(oracle.get())) got = "SlimFlyOracle";
    else if (dynamic_cast<const TorusOracle*>(oracle.get())) got = "TorusOracle";
    else if (dynamic_cast<const HypercubeOracle*>(oracle.get()))
      got = "HypercubeOracle";
    else if (dynamic_cast<const FlatButterflyOracle*>(oracle.get()))
      got = "FlatButterflyOracle";
    else if (dynamic_cast<const FatTreeOracle*>(oracle.get()))
      got = "FatTreeOracle";
    else if (dynamic_cast<const DragonflyOracle*>(oracle.get()))
      got = "DragonflyOracle";
    else
      got = "other";
    EXPECT_EQ(got, expected);
  }
  // Random families land on the compressed-BFS fallback.
  auto dln = topo::make("dln:n=36,k=6,p=2");
  EXPECT_NE(dynamic_cast<const CompressedBfsOracle*>(
                make_family_oracle(*dln).get()),
            nullptr);
}

}  // namespace
}  // namespace slimfly::sim
