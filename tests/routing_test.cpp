// Routing algorithms in isolation: path validity, length bounds, and the
// distance table they share.

#include <gtest/gtest.h>

#include <set>

#include "sf/mms.hpp"
#include "sim/network.hpp"
#include "sim/routing/dragonfly_routing.hpp"
#include "sim/routing/minimal.hpp"
#include "sim/routing/oracle.hpp"
#include "sim/routing/ugal.hpp"
#include "sim/routing/valiant.hpp"
#include "sim/simulation.hpp"
#include "topo/dragonfly.hpp"
#include "topo/hypercube.hpp"
#include "topo/registry.hpp"

namespace slimfly::sim {
namespace {

template <typename PathLike>  // InlinePath or std::vector<int>
bool is_walk(const Graph& g, const PathLike& path) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!g.has_edge(path[i], path[i + 1])) return false;
  }
  return true;
}

TEST(DistanceTable, MatchesBfsOnSlimFly) {
  sf::SlimFlyMMS topo(5);
  DistanceTable dt(topo.graph());
  EXPECT_EQ(dt.diameter(), 2);
  for (int u = 0; u < 50; u += 3) {
    for (int v = 0; v < 50; v += 7) {
      if (u == v) {
        EXPECT_EQ(dt.dist(u, v), 0);
      } else if (topo.graph().has_edge(u, v)) {
        EXPECT_EQ(dt.dist(u, v), 1);
      } else {
        EXPECT_EQ(dt.dist(u, v), 2);
      }
    }
  }
}

TEST(DistanceTable, DisconnectedThrows) {
  Graph g(3);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_THROW(DistanceTable{g}, std::invalid_argument);
}

TEST(DistanceTable, SampledPathsAreMinimalWalks) {
  Hypercube hc(5);
  DistanceTable dt(hc.graph());
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    int u = rng.next_int(0, 31), v = rng.next_int(0, 31);
    InlinePath path{u};
    dt.sample_minimal_path(hc.graph(), u, v, rng, path);
    EXPECT_EQ(static_cast<int>(path.size()) - 1, dt.dist(u, v));
    EXPECT_TRUE(is_walk(hc.graph(), path));
    EXPECT_EQ(path.back(), v);
  }
}

TEST(DistanceTable, SamplingCoversAllMinimalNextHops) {
  // From any SF router there are multiple minimal paths to a distance-2
  // target through distinct common neighbours only when they exist; for the
  // Hoffman-Singleton graph the common neighbour is unique, so the sampled
  // intermediate must be constant. Use the hypercube instead for diversity.
  Hypercube hc(4);
  DistanceTable dt(hc.graph());
  Rng rng(3);
  int u = 0, v = 3;  // distance 2, two minimal intermediates: 1 and 2
  std::set<int> intermediates;
  for (int t = 0; t < 100; ++t) {
    InlinePath path{u};
    dt.sample_minimal_path(hc.graph(), u, v, rng, path);
    ASSERT_EQ(path.size(), 3u);
    intermediates.insert(path[1]);
  }
  EXPECT_EQ(intermediates.size(), 2u);
}

class RoutingPaths : public ::testing::Test {
 protected:
  RoutingPaths()
      : topo_(7),
        bundle_(make_routing(RoutingKind::Minimal, topo_)),
        traffic_(make_uniform(topo_.num_endpoints())),
        net_(topo_, *bundle_.algorithm, *traffic_, SimConfig{}, 0.0) {}

  Packet make_pkt(int src_ep, int dst_ep) {
    Packet p;
    p.src_endpoint = src_ep;
    p.dst_endpoint = dst_ep;
    p.dst_router =
        static_cast<std::uint16_t>(topo_.endpoint_router(dst_ep));
    return p;
  }

  int src_router_of(const Packet& p) const {
    return topo_.endpoint_router(p.src_endpoint);
  }

  sf::SlimFlyMMS topo_;
  RoutingBundle bundle_;
  std::unique_ptr<TrafficPattern> traffic_;
  Network net_;
};

TEST_F(RoutingPaths, MinimalAtMostTwoHops) {
  MinimalRouting routing(topo_, *bundle_.distances);
  Rng rng(1);
  for (int t = 0; t < 300; ++t) {
    Packet p = make_pkt(rng.next_int(0, topo_.num_endpoints() - 1),
                        rng.next_int(0, topo_.num_endpoints() - 1));
    routing.route_at_injection(net_, p, rng);
    EXPECT_LE(p.path.size(), 3u);  // <= 2 links
    EXPECT_TRUE(is_walk(topo_.graph(), p.path));
    EXPECT_EQ(p.path.front(), src_router_of(p));
    EXPECT_EQ(p.path.back(), p.dst_router);
  }
}

TEST_F(RoutingPaths, ValiantAtMostFourHops) {
  ValiantRouting routing(topo_, *bundle_.distances);
  Rng rng(2);
  for (int t = 0; t < 300; ++t) {
    Packet p = make_pkt(0, rng.next_int(0, topo_.num_endpoints() - 1));
    routing.route_at_injection(net_, p, rng);
    EXPECT_LE(p.path.size(), 5u);  // 2, 3 or 4 links per Section IV-B
    EXPECT_TRUE(is_walk(topo_.graph(), p.path));
  }
}

TEST_F(RoutingPaths, ValiantHopLimitRespected) {
  ValiantRouting routing(topo_, *bundle_.distances, 3);
  Rng rng(3);
  for (int t = 0; t < 200; ++t) {
    Packet p = make_pkt(1, rng.next_int(0, topo_.num_endpoints() - 1));
    routing.route_at_injection(net_, p, rng);
    EXPECT_LE(p.path.size(), 4u);
  }
}

TEST_F(RoutingPaths, UgalChoosesMinimalAtZeroLoad) {
  // With all queues empty, UGAL's cost reduces to hop count: it must pick
  // the minimal path.
  UgalRouting routing(topo_, *bundle_.distances, UgalMode::Local);
  Rng rng(4);
  for (int t = 0; t < 200; ++t) {
    Packet p = make_pkt(5, rng.next_int(0, topo_.num_endpoints() - 1));
    routing.route_at_injection(net_, p, rng);
    EXPECT_EQ(static_cast<int>(p.path.size()) - 1,
              bundle_.distances->dist(src_router_of(p), p.dst_router));
  }
}

TEST_F(RoutingPaths, UgalGlobalChoosesMinimalAtZeroLoad) {
  UgalRouting routing(topo_, *bundle_.distances, UgalMode::Global);
  Rng rng(5);
  for (int t = 0; t < 200; ++t) {
    Packet p = make_pkt(9, rng.next_int(0, topo_.num_endpoints() - 1));
    routing.route_at_injection(net_, p, rng);
    EXPECT_EQ(static_cast<int>(p.path.size()) - 1,
              bundle_.distances->dist(src_router_of(p), p.dst_router));
  }
}

TEST(DragonflySampler, PathsStayValid) {
  auto df = Dragonfly::balanced(2);
  DistanceTable dt(df->graph());
  auto sampler = dragonfly_group_sampler(*df, dt);
  Rng rng(6);
  for (int t = 0; t < 200; ++t) {
    int src = rng.next_int(0, df->num_routers() - 1);
    int dst = rng.next_int(0, df->num_routers() - 1);
    InlinePath path;
    sampler(src, dst, rng, path);
    EXPECT_EQ(path.front(), src);
    if (src != dst) {
      EXPECT_EQ(path.back(), dst);
    }
    EXPECT_TRUE(is_walk(df->graph(), path));
    EXPECT_LE(path.size(), 7u);  // <= 6 links for group-Valiant
  }
}

TEST(InlinePathLimits, OverflowThrowsNamedError) {
  InlinePath p;
  for (int i = 0; i < InlinePath::kMaxRouters; ++i) p.push_back(i);
  EXPECT_EQ(p.size(), static_cast<std::size_t>(InlinePath::kMaxRouters));
  EXPECT_THROW(p.push_back(1), PathOverflowError);
  // Router ids are stored as uint16; anything wider is a named error, not
  // silent truncation.
  InlinePath q;
  EXPECT_THROW(q.push_back(70000), PathOverflowError);
  EXPECT_THROW(q.push_back(-1), PathOverflowError);
}

TEST(RoutingBase, NextRouterFollowsPath) {
  sf::SlimFlyMMS topo(5);
  auto bundle = make_routing(RoutingKind::Minimal, topo);
  auto traffic = make_uniform(topo.num_endpoints());
  Network net(topo, *bundle.algorithm, *traffic, SimConfig{}, 0.0);
  Packet p;
  p.path = {0, 7, 13};
  p.hop = 0;
  EXPECT_EQ(bundle.algorithm->next_router(net, p, 0), 7);
  p.hop = 1;
  EXPECT_EQ(bundle.algorithm->next_router(net, p, 7), 13);
  p.hop = 2;
  EXPECT_EQ(bundle.algorithm->next_router(net, p, 13), -1);
  EXPECT_THROW(bundle.algorithm->next_router(net, p, 5), std::logic_error);
}

TEST(OracleBitIdentity, SimulateByteIdenticalUnderTableAndFamilyOracles) {
  // One simulated point per (topology, routing) cell, run twice: once with
  // the dense table, once with the per-family oracle. Every stats field
  // must be byte-identical — the oracle is a memory knob, never a result
  // knob. VAL and the UGAL pair consume RNG inside sample_minimal_path, so
  // a single extra (or missing) draw anywhere would cascade into every
  // field here.
  SimConfig cfg;
  cfg.warmup_cycles = 150;
  cfg.measure_cycles = 300;
  cfg.drain_cycles = 3000;
  cfg.seed = 23;
  for (const std::string& spec :
       {std::string("slimfly:q=5"), std::string("torus:dims=4x4"),
        std::string("hypercube:n=6"), std::string("dln:n=36,k=6,p=2,seed=3")}) {
    SCOPED_TRACE(spec);
    auto topo = topo::make(spec);
    for (const char* routing : {"MIN", "VAL", "UGAL-L", "UGAL-G"}) {
      SCOPED_TRACE(routing);
      auto run_with = [&](OracleMode mode) {
        auto bundle = make_routing_spec(
            routing, *topo, make_distance_oracle(*topo, mode));
        auto traffic = make_uniform(topo->num_endpoints());
        return simulate(*topo, *bundle.algorithm, *traffic, cfg, 0.3);
      };
      const SimResult a = run_with(OracleMode::Table);
      const SimResult b = run_with(OracleMode::Family);
      EXPECT_EQ(a.avg_latency, b.avg_latency);
      EXPECT_EQ(a.avg_network_latency, b.avg_network_latency);
      EXPECT_EQ(a.p99_latency, b.p99_latency);
      EXPECT_EQ(a.accepted_load, b.accepted_load);
      EXPECT_EQ(a.delivered, b.delivered);
      EXPECT_EQ(a.saturated, b.saturated);
    }
  }
}

TEST(RoutingFactory, TypeChecks) {
  sf::SlimFlyMMS topo(5);
  EXPECT_THROW(make_routing(RoutingKind::DragonflyUgalL, topo),
               std::invalid_argument);
  EXPECT_THROW(make_routing(RoutingKind::FatTreeAnca, topo),
               std::invalid_argument);
}

}  // namespace
}  // namespace slimfly::sim
