#include <gtest/gtest.h>

#include "analysis/metrics.hpp"
#include "sf/sfgrouped.hpp"

namespace slimfly::sf {
namespace {

TEST(SfGrouped, StructureSmall) {
  SfGroupedDragonfly topo(5, 1, 4);  // 4 groups of Hoffman-Singleton
  EXPECT_EQ(topo.num_routers(), 200);
  EXPECT_EQ(topo.groups(), 4);
  EXPECT_EQ(topo.group_size(), 50);
  // Network radix: k' (intra) + h (global) on every router.
  EXPECT_EQ(topo.graph().max_degree(), 7 + 1);
  EXPECT_TRUE(topo.graph().is_regular());
}

TEST(SfGrouped, DiameterWithinBound) {
  SfGroupedDragonfly topo(5, 1, 4);
  int d = analysis::diameter(topo.graph());
  EXPECT_GE(d, 3);
  EXPECT_LE(d, SfGroupedDragonfly::kDiameterBound);
}

TEST(SfGrouped, GlobalLinksBalanced) {
  SfGroupedDragonfly topo(5, 1, 4);
  // Every group must spend exactly a*h = 50 global ports.
  for (int grp = 0; grp < 4; ++grp) {
    int global = 0;
    for (int r = grp * 50; r < (grp + 1) * 50; ++r) {
      for (int n : topo.graph().neighbors(r)) {
        if (topo.group_of(n) != grp) ++global;
      }
    }
    EXPECT_EQ(global, 50) << "group " << grp;
  }
}

TEST(SfGrouped, RacksFollowSfStructure) {
  SfGroupedDragonfly topo(5, 1, 3);
  EXPECT_EQ(topo.num_racks(), 15);  // g * q
  std::vector<int> count(15, 0);
  for (int r = 0; r < topo.num_routers(); ++r) {
    ++count[static_cast<std::size_t>(topo.rack_of_router(r))];
  }
  for (int c : count) EXPECT_EQ(c, 10);  // 2q per rack
}

TEST(SfGrouped, MuchLargerGroupsThanDragonflyPerRadix) {
  // The point of Section VII-B: a Slim Fly group of radix k'=7 holds 50
  // routers where a Dragonfly clique of the same local radix holds 8.
  SfGroupedDragonfly topo(5, 1, 3);
  EXPECT_EQ(topo.group_size(), 50);
  // Dragonfly local clique with degree 7 would have a = 8 routers.
  EXPECT_GT(topo.group_size(), 8 * 4);
}

TEST(SfGrouped, RejectsBadParameters) {
  EXPECT_THROW(SfGroupedDragonfly(5, 0, 3), std::invalid_argument);
  EXPECT_THROW(SfGroupedDragonfly(5, 1, 1), std::invalid_argument);
  EXPECT_THROW(SfGroupedDragonfly(5, 1, 52), std::invalid_argument);  // > a*h+1
}

TEST(SfGrouped, ConcentrationDefaultsToSfBalanced) {
  SfGroupedDragonfly topo(5, 1, 3);
  EXPECT_EQ(topo.concentration(), 4);  // ceil(7/2)
  EXPECT_EQ(topo.num_endpoints(), 150 * 4);
}

}  // namespace
}  // namespace slimfly::sf
