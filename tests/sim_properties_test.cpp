// Simulator property tests: determinism, per-VC FIFO delivery, buffer
// bounds under overload, and latency decomposition invariants.

#include <gtest/gtest.h>

#include "sf/mms.hpp"
#include "sim/simulation.hpp"

namespace slimfly::sim {
namespace {

SimConfig quick() {
  SimConfig cfg;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 500;
  cfg.drain_cycles = 5000;
  return cfg;
}

TEST(SimProperties, DeterministicAcrossRuns) {
  sf::SlimFlyMMS topo(5);
  auto run_once = [&] {
    auto routing = make_routing(RoutingKind::UgalL, topo);
    auto traffic = make_uniform(topo.num_endpoints());
    return simulate(topo, *routing.algorithm, *traffic, quick(), 0.35);
  };
  SimResult a = run_once();
  SimResult b = run_once();
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_DOUBLE_EQ(a.avg_latency, b.avg_latency);
  EXPECT_DOUBLE_EQ(a.accepted_load, b.accepted_load);
}

TEST(SimProperties, SeedChangesOutcome) {
  sf::SlimFlyMMS topo(5);
  auto run_with = [&](std::uint64_t seed) {
    SimConfig cfg = quick();
    cfg.seed = seed;
    auto routing = make_routing(RoutingKind::Minimal, topo);
    auto traffic = make_uniform(topo.num_endpoints());
    return simulate(topo, *routing.algorithm, *traffic, cfg, 0.35);
  };
  EXPECT_NE(run_with(1).delivered, run_with(2).delivered);
}

TEST(SimProperties, NetworkLatencyNeverExceedsTotal) {
  sf::SlimFlyMMS topo(5);
  for (double load : {0.1, 0.5, 0.8}) {
    auto routing = make_routing(RoutingKind::Minimal, topo);
    auto traffic = make_uniform(topo.num_endpoints());
    SimResult r = simulate(topo, *routing.algorithm, *traffic, quick(), load);
    EXPECT_LE(r.avg_network_latency, r.avg_latency + 1e-9) << load;
    EXPECT_GT(r.avg_network_latency, 0.0) << load;
  }
}

TEST(SimProperties, FlitsBoundedByBufferCapacityUnderOverload) {
  // Even at 100% adversarial injection, in-network flits cannot exceed the
  // total buffering (credits make overflow structurally impossible; this
  // exercises the invariant end to end).
  sf::SlimFlyMMS topo(5);
  auto routing = make_routing(RoutingKind::Minimal, topo);
  auto traffic = make_worst_case_sf(topo);
  SimConfig cfg = quick();
  Network net(topo, *routing.algorithm, *traffic, cfg, 1.0);
  for (int i = 0; i < 1500; ++i) net.step();
  std::int64_t ports = 0;
  for (int r = 0; r < topo.num_routers(); ++r) {
    ports += topo.graph().degree(r) + topo.endpoints_at(r);
  }
  // inputs (buffer_per_port) + staging + channel occupancy per port.
  std::int64_t cap = ports * (cfg.buffer_per_port + cfg.output_staging +
                              cfg.channel_latency + cfg.router_pipeline);
  EXPECT_LE(net.flits_in_flight(), cap);
  EXPECT_GT(net.stats().total_delivered(), 0);
}

TEST(SimProperties, ZeroLoadDeliversNothing) {
  sf::SlimFlyMMS topo(5);
  auto routing = make_routing(RoutingKind::Minimal, topo);
  auto traffic = make_uniform(topo.num_endpoints());
  SimResult r = simulate(topo, *routing.algorithm, *traffic, quick(), 0.0);
  EXPECT_EQ(r.delivered, 0);
  EXPECT_FALSE(r.saturated);
}

TEST(SimProperties, SingleSourceFifoPerConnection) {
  // With one active endpoint and minimal routing (fixed route per pair),
  // packets between the same pair must arrive in generation order — checked
  // indirectly: latency of consecutive deliveries to a fixed destination is
  // consistent with FIFO queueing (no reordering surfaced as negative
  // inter-delivery spacing). The stronger end-to-end check: delivered count
  // equals generated count at low load (no loss, no duplication).
  sf::SlimFlyMMS topo(5);
  auto routing = make_routing(RoutingKind::Minimal, topo);
  auto traffic = make_uniform(topo.num_endpoints());
  Network net(topo, *routing.algorithm, *traffic, quick(), 0.05);
  SimResult r = net.run();
  EXPECT_EQ(net.stats().measured_delivered(), net.stats().measured_generated());
  EXPECT_FALSE(r.saturated);
}

TEST(SimProperties, HigherLoadDeliversMore) {
  sf::SlimFlyMMS topo(5);
  std::int64_t prev = 0;
  for (double load : {0.1, 0.3, 0.6}) {
    auto routing = make_routing(RoutingKind::Minimal, topo);
    auto traffic = make_uniform(topo.num_endpoints());
    SimResult r = simulate(topo, *routing.algorithm, *traffic, quick(), load);
    EXPECT_GT(r.delivered, prev);
    prev = r.delivered;
  }
}

TEST(SimProperties, OversubscribedVariantStillDeadlockFree) {
  sf::SlimFlyMMS topo(5, 8);  // heavy oversubscription (balanced p = 4)
  auto routing = make_routing(RoutingKind::UgalL, topo);
  auto traffic = make_uniform(topo.num_endpoints());
  SimConfig cfg = quick();
  cfg.drain_cycles = 1500;
  SimResult r = simulate(topo, *routing.algorithm, *traffic, cfg, 0.9);
  EXPECT_GT(r.delivered, 0);  // progress despite overload
}

}  // namespace
}  // namespace slimfly::sim
