#include <gtest/gtest.h>

#include "analysis/connectivity.hpp"
#include "sf/mms.hpp"
#include "topo/dragonfly.hpp"
#include "topo/hypercube.hpp"
#include "topo/torus.hpp"

namespace slimfly::analysis {
namespace {

Graph path_graph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  g.finalize();
  return g;
}

TEST(EdgeDisjointPaths, PathGraphHasOne) {
  Graph g = path_graph(5);
  EXPECT_EQ(edge_disjoint_paths(g, 0, 4), 1);
  EXPECT_THROW(edge_disjoint_paths(g, 2, 2), std::invalid_argument);
}

TEST(EdgeDisjointPaths, CycleHasTwo) {
  Graph g(6);
  for (int i = 0; i < 6; ++i) g.add_edge(i, (i + 1) % 6);
  g.finalize();
  EXPECT_EQ(edge_disjoint_paths(g, 0, 3), 2);
}

TEST(EdgeDisjointPaths, CompleteGraph) {
  int n = 6;
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.add_edge(i, j);
  }
  g.finalize();
  EXPECT_EQ(edge_disjoint_paths(g, 0, 5), n - 1);
}

TEST(EdgeConnectivity, KnownGraphs) {
  EXPECT_EQ(edge_connectivity(path_graph(4)), 1);
  Hypercube hc(4);
  EXPECT_EQ(edge_connectivity(hc.graph()), 4);  // n-cube is n-edge-connected
  Torus t({4, 4});
  EXPECT_EQ(edge_connectivity(t.graph()), 4);   // degree-4 and maximally connected
}

TEST(EdgeConnectivity, DisconnectedIsZero) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  EXPECT_EQ(edge_connectivity(g), 0);
}

TEST(EdgeConnectivity, SlimFlyIsMaximallyConnected) {
  // The paper explains SF's resiliency by expander-like path diversity:
  // the MMS graph achieves the maximum possible edge connectivity, k'.
  for (int q : {5, 7}) {
    sf::SlimFlyMMS topo(q);
    EXPECT_EQ(edge_connectivity(topo.graph()), topo.k_net()) << "q=" << q;
  }
}

TEST(EdgeConnectivity, DragonflyGlobalLinksLimitDiversity) {
  // Between routers in different DF groups the diversity is bounded by the
  // group's global cabling; SF pairs always enjoy full k' diversity.
  sf::SlimFlyMMS sf_topo(5);
  auto df = Dragonfly::balanced(2);
  // Same-size comparison is not possible; compare diversity relative to
  // router degree instead.
  int sf_div = edge_disjoint_paths(sf_topo.graph(), 0, sf_topo.num_routers() - 1);
  int df_div = edge_disjoint_paths(df->graph(), 0, df->num_routers() - 1);
  EXPECT_EQ(sf_div, sf_topo.graph().degree(0));
  EXPECT_LE(df_div, df->graph().degree(0));
}

TEST(EdgeDisjointPaths, MatchesMinDegreeBoundOnSlimFly) {
  sf::SlimFlyMMS topo(5);
  // Sample pairs: diversity always equals k' (vertex-transitive, maximally
  // edge-connected).
  for (int v : {1, 7, 23, 42, 49}) {
    EXPECT_EQ(edge_disjoint_paths(topo.graph(), 0, v), 7);
  }
}

}  // namespace
}  // namespace slimfly::analysis
