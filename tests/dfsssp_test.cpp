#include <gtest/gtest.h>

#include "sf/mms.hpp"
#include "sim/routing/dfsssp.hpp"
#include "topo/dln.hpp"
#include "topo/fattree.hpp"
#include "topo/hypercube.hpp"

namespace slimfly::sim {
namespace {

TEST(Dfsssp, TreeNeedsOneVc) {
  // A tree has no cycles in its channel dependency graph.
  Graph g(7);
  for (int i = 1; i < 7; ++i) g.add_edge(i, (i - 1) / 2);
  g.finalize();
  auto r = dfsssp_vc_count(g);
  EXPECT_EQ(r.vcs_used, 1);
  EXPECT_EQ(r.routes, 7 * 6);
}

TEST(Dfsssp, RingNeedsMoreThanOneVc) {
  Graph g(8);
  for (int i = 0; i < 8; ++i) g.add_edge(i, (i + 1) % 8);
  g.finalize();
  auto r = dfsssp_vc_count(g);
  EXPECT_GE(r.vcs_used, 2);
}

TEST(Dfsssp, SlimFlyNeedsFewVcs) {
  // Paper Section IV-D: OFED DFSSSP consistently needed 3 VCs on SF.
  for (int q : {5, 7}) {
    sf::SlimFlyMMS topo(q);
    auto r = dfsssp_vc_count(topo.graph());
    EXPECT_GE(r.vcs_used, 1) << "q=" << q;
    EXPECT_LE(r.vcs_used, 4) << "q=" << q;
  }
}

TEST(Dfsssp, DlnNeedsMoreVcsThanSlimFly) {
  // The paper's comparison: DLN random topologies needed 8-15 VCs versus
  // SF's 3. The paper's DLNs are much sparser relative to size than SF
  // (ring + few shortcuts); compare at matched router count and realistic
  // DLN radix. Absolute numbers are heuristic-dependent; the ordering must
  // hold.
  sf::SlimFlyMMS sf_topo(7);  // 98 routers, k' = 11
  Dln dln(98, 5, 3);          // sparse shortcuts, diameter ~4-5
  auto sf_r = dfsssp_vc_count(sf_topo.graph());
  auto dln_r = dfsssp_vc_count(dln.graph());
  EXPECT_GT(dln_r.vcs_used, 0);
  EXPECT_GT(sf_r.vcs_used, 0);
  EXPECT_LE(sf_r.vcs_used, 4);
  EXPECT_GE(dln_r.vcs_used, sf_r.vcs_used);
}

TEST(Dfsssp, HypercubeDimensionOrderIsCheap) {
  Hypercube hc(5);
  auto r = dfsssp_vc_count(hc.graph());
  EXPECT_GE(r.vcs_used, 1);
  EXPECT_LE(r.vcs_used, 3);
}

TEST(Dfsssp, DisconnectedThrows) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  EXPECT_THROW(dfsssp_vc_count(g), std::invalid_argument);
}

TEST(Dfsssp, MaxLayersExceededReportsZero) {
  Graph g(12);
  for (int i = 0; i < 12; ++i) g.add_edge(i, (i + 1) % 12);
  g.finalize();
  auto r = dfsssp_vc_count(g, 1);  // rings cannot fit in one layer
  EXPECT_EQ(r.vcs_used, 0);
}

}  // namespace
}  // namespace slimfly::sim
