// Cross-module integration: end-to-end reproductions of the paper's
// qualitative claims at test-friendly scale.

#include <gtest/gtest.h>

#include "slimfly.hpp"

namespace slimfly {
namespace {

TEST(Integration, SlimFlyHasLowestAverageDistance) {
  // Figure 1's ordering at ~200-900 endpoints: SF < DF < FT.
  sf::SlimFlyMMS sf_topo(5);                        // N = 200
  auto df = Dragonfly::balanced(2);                 // N = 144
  FatTree3 ft(6, FatTreeVariant::PaperSlim);        // N = 216
  double sf_avg = analysis::average_endpoint_distance(sf_topo);
  double df_avg = analysis::average_endpoint_distance(*df);
  double ft_avg = analysis::average_endpoint_distance(ft);
  EXPECT_LT(sf_avg, df_avg);
  EXPECT_LT(df_avg, ft_avg);
  EXPECT_LT(sf_avg, 2.0);
}

TEST(Integration, MinCollapsesEarlyOnWorstCase) {
  // Section V-C / Figure 6d: minimal routing saturates at a small fraction
  // of injection on the worst-case pattern. On the Hoffman-Singleton
  // network every attacked link carries (k'-1)*p = 24 flows, so the MIN
  // saturation point is ~1/24 — tiny — while it runs fine at 2%.
  sf::SlimFlyMMS topo(5);
  auto routing = sim::make_routing(sim::RoutingKind::Minimal, topo);
  sim::SimConfig cfg;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 800;
  cfg.drain_cycles = 4000;
  auto traffic = sim::make_worst_case_sf(topo);
  auto low = sim::simulate(topo, *routing.algorithm, *traffic, cfg, 0.02);
  EXPECT_FALSE(low.saturated);
  traffic = sim::make_worst_case_sf(topo);
  auto high = sim::simulate(topo, *routing.algorithm, *traffic, cfg, 0.55);
  EXPECT_TRUE(high.saturated);
  // Accepted bandwidth stays far below offered at the high point.
  EXPECT_LT(high.accepted_load, 0.35);
}

TEST(Integration, ValiantRescuesWorstCase) {
  // Figure 6d: VAL sustains several times the load at which MIN collapses
  // (the paper shows 40% at q=19; the tiny q=5 network's worst case is
  // relatively harsher, shifting both saturation points down).
  sf::SlimFlyMMS topo(5);
  sim::SimConfig cfg;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 800;
  cfg.drain_cycles = 8000;
  double load = 0.15;
  auto val = sim::make_routing(sim::RoutingKind::Valiant, topo);
  auto traffic = sim::make_worst_case_sf(topo);
  auto rval = sim::simulate(topo, *val.algorithm, *traffic, cfg, load);
  EXPECT_FALSE(rval.saturated) << "VAL should sustain 15% on worst-case";
  EXPECT_GT(rval.accepted_load, 0.12);
  auto min = sim::make_routing(sim::RoutingKind::Minimal, topo);
  traffic = sim::make_worst_case_sf(topo);
  auto rmin = sim::simulate(topo, *min.algorithm, *traffic, cfg, load);
  EXPECT_TRUE(rmin.saturated) << "MIN must collapse at the same load";
  EXPECT_LT(rmin.accepted_load, rval.accepted_load);
}

TEST(Integration, UgalMatchesMinOnUniform) {
  // Figure 6a: UGAL-G tracks MIN on uniform traffic at moderate load.
  sf::SlimFlyMMS topo(5);
  sim::SimConfig cfg;
  cfg.warmup_cycles = 400;
  cfg.measure_cycles = 600;
  auto min_r = sim::make_routing(sim::RoutingKind::Minimal, topo);
  auto ugal_r = sim::make_routing(sim::RoutingKind::UgalG, topo);
  auto ta = sim::make_uniform(topo.num_endpoints());
  auto tb = sim::make_uniform(topo.num_endpoints());
  auto rmin = sim::simulate(topo, *min_r.algorithm, *ta, cfg, 0.4);
  auto rugal = sim::simulate(topo, *ugal_r.algorithm, *tb, cfg, 0.4);
  EXPECT_FALSE(rmin.saturated);
  EXPECT_FALSE(rugal.saturated);
  EXPECT_LT(std::abs(rugal.avg_latency - rmin.avg_latency),
            0.5 * rmin.avg_latency + 5.0);
}

TEST(Integration, SmallBuffersLowerLatencyNearSaturation) {
  // Figure 8a: smaller buffers mean stiffer backpressure and lower queueing
  // latency near saturation (big buffers instead buy bandwidth). Uniform
  // traffic at high load shows the effect cleanly.
  sf::SlimFlyMMS topo(5);
  auto routing = sim::make_routing(sim::RoutingKind::Minimal, topo);
  sim::SimConfig small_cfg;
  small_cfg.buffer_per_port = 16;
  small_cfg.warmup_cycles = 600;
  small_cfg.measure_cycles = 800;
  small_cfg.drain_cycles = 20000;
  sim::SimConfig big_cfg = small_cfg;
  big_cfg.buffer_per_port = 256;
  auto ta = sim::make_uniform(topo.num_endpoints());
  auto tb = sim::make_uniform(topo.num_endpoints());
  auto rs = sim::simulate(topo, *routing.algorithm, *ta, small_cfg, 0.9);
  auto rb = sim::simulate(topo, *routing.algorithm, *tb, big_cfg, 0.9);
  // In-network latency (the Figure 8a metric): with small buffers queued
  // packets wait at the source instead of inside the network.
  EXPECT_LT(rs.avg_network_latency, rb.avg_network_latency);
}

TEST(Integration, BisectionOrderingMatchesFigure5c) {
  // SF > DF in links/endpoint; FT-3 at full bisection.
  sf::SlimFlyMMS sf_topo(5);
  auto df = Dragonfly::balanced(2);
  double sf_bb = analysis::bisection_bandwidth_gbps(sf_topo) /
                 sf_topo.num_endpoints();
  double df_bb = analysis::bisection_bandwidth_gbps(*df) / df->num_endpoints();
  EXPECT_GT(sf_bb, df_bb);
}

TEST(Integration, OversubscriptionDegradesGracefully) {
  // Section V-E: p = 16 vs 15 loses a little accepted bandwidth, not much.
  sf::SlimFlyMMS balanced(5);           // p = 4
  sf::SlimFlyMMS oversub(5, 6);         // 50% oversubscribed
  sim::SimConfig cfg;
  cfg.warmup_cycles = 400;
  cfg.measure_cycles = 600;
  cfg.drain_cycles = 4000;
  auto ra = sim::make_routing(sim::RoutingKind::Minimal, balanced);
  auto rb = sim::make_routing(sim::RoutingKind::Minimal, oversub);
  auto ta = sim::make_uniform(balanced.num_endpoints());
  auto tb = sim::make_uniform(oversub.num_endpoints());
  auto res_a = sim::simulate(balanced, *ra.algorithm, *ta, cfg, 0.5);
  auto res_b = sim::simulate(oversub, *rb.algorithm, *tb, cfg, 0.5);
  EXPECT_FALSE(res_a.saturated);
  // The oversubscribed network still moves a large fraction of traffic.
  EXPECT_GT(res_b.accepted_load, 0.3);
}

TEST(Integration, CostAndPowerAdvantageHoldsAcrossCableFamilies) {
  // Section VI-B1: the cable choice moves relative costs by only a few %.
  sf::SlimFlyMMS sf_topo(11);
  Dragonfly df(5, 10, 5, 51);  // comparable scale
  for (const auto& cables :
       {cost::cable_fdr10(), cost::cable_qdr56(), cost::cable_elpeus10()}) {
    auto sf_cost = cost::evaluate_cost(sf_topo, cables);
    auto df_cost = cost::evaluate_cost(df, cables);
    EXPECT_LT(sf_cost.cost_per_endpoint, df_cost.cost_per_endpoint)
        << cables.name;
  }
}

TEST(Integration, QuickstartApiCompiles) {
  // The README quickstart, as a test.
  sf::SlimFlyMMS sf_topo(5);
  auto routing = sim::make_routing(sim::RoutingKind::UgalL, sf_topo);
  auto traffic = sim::make_uniform(sf_topo.num_endpoints());
  sim::SimConfig cfg;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 300;
  auto result = sim::simulate(sf_topo, *routing.algorithm, *traffic, cfg, 0.2);
  EXPECT_GT(result.delivered, 0);
}

}  // namespace
}  // namespace slimfly
