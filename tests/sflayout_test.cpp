#include <gtest/gtest.h>

#include "sf/layout.hpp"

namespace slimfly::sf {
namespace {

TEST(MmsLayout, PaperExampleQ19) {
  // Section VI-A: q=19 racks, each 38 routers / 570 endpoints, 2q = 38
  // cables between every pair of racks.
  SlimFlyMMS topo(19);
  MmsLayout layout = compute_layout(topo);
  EXPECT_EQ(layout.num_racks, 19);
  EXPECT_EQ(layout.routers_per_rack, 38);
  EXPECT_EQ(layout.endpoints_per_rack, 570);
  EXPECT_EQ(layout.inter_rack_cables, 38);
}

TEST(MmsLayout, InterRackCablesAre2q) {
  for (int q : {5, 7, 9, 11}) {
    SlimFlyMMS topo(q);
    MmsLayout layout = compute_layout(topo);
    EXPECT_EQ(layout.inter_rack_cables, 2 * q) << "q=" << q;
    EXPECT_EQ(cables_between_racks(topo, 0, 1), 2 * q) << "q=" << q;
  }
}

TEST(MmsLayout, CableConservation) {
  SlimFlyMMS topo(7);
  MmsLayout layout = compute_layout(topo);
  long long pairs = static_cast<long long>(layout.num_racks) *
                    (layout.num_racks - 1) / 2;
  EXPECT_EQ(layout.total_electric + layout.total_fiber, topo.graph().num_edges());
  EXPECT_EQ(layout.total_fiber, pairs * layout.inter_rack_cables);
  EXPECT_EQ(layout.total_electric,
            static_cast<long long>(layout.num_racks) * layout.intra_rack_cables);
}

TEST(MmsLayout, IntraRackStructure) {
  // Per rack: q|X|/2 + q|X'|/2 intra-subgroup + q cross-subgroup cables.
  SlimFlyMMS topo(5);
  MmsLayout layout = compute_layout(topo);
  int x_size = static_cast<int>(topo.generators().x.size());
  int xp_size = static_cast<int>(topo.generators().xprime.size());
  EXPECT_EQ(layout.intra_rack_cables, 5 * x_size / 2 + 5 * xp_size / 2 + 5);
}

TEST(MmsLayout, SymmetricAcrossAllRackPairs) {
  SlimFlyMMS topo(7);
  for (int i = 0; i < 7; ++i) {
    for (int j = 0; j < 7; ++j) {
      if (i == j) continue;
      EXPECT_EQ(cables_between_racks(topo, i, j), 14);
    }
  }
}

}  // namespace
}  // namespace slimfly::sf
