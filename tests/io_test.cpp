#include <gtest/gtest.h>

#include <sstream>

#include "sf/mms.hpp"
#include "topo/io.hpp"

namespace slimfly {
namespace {

TEST(EdgeList, RoundTrip) {
  sf::SlimFlyMMS topo(5);
  std::stringstream buffer;
  write_edge_list(buffer, topo.graph());
  Graph loaded = read_edge_list(buffer);
  EXPECT_EQ(loaded.num_vertices(), topo.num_routers());
  EXPECT_EQ(loaded.num_edges(), topo.graph().num_edges());
  EXPECT_EQ(loaded.edges(), topo.graph().edges());
}

TEST(EdgeList, HeaderCarriesIsolatedVertices) {
  Graph g(5);
  g.add_edge(0, 1);
  g.finalize();
  std::stringstream buffer;
  write_edge_list(buffer, g);
  Graph loaded = read_edge_list(buffer);
  EXPECT_EQ(loaded.num_vertices(), 5);  // vertices 2-4 isolated but preserved
}

TEST(EdgeList, HeaderlessInputInfersSize) {
  std::stringstream buffer("0 1\n1 2\n");
  Graph g = read_edge_list(buffer);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(EdgeList, MalformedLineThrows) {
  std::stringstream buffer("0 x\n");
  EXPECT_THROW(read_edge_list(buffer), std::invalid_argument);
}

TEST(EdgeList, FileRoundTrip) {
  sf::SlimFlyMMS topo(5);
  const std::string path = "/tmp/slimfly_io_test.edges";
  save_edge_list(path, topo.graph());
  Graph loaded = load_edge_list(path);
  EXPECT_EQ(loaded.edges(), topo.graph().edges());
}

TEST(EdgeList, MissingFileThrows) {
  EXPECT_THROW(load_edge_list("/nonexistent/nope.edges"), std::runtime_error);
}

TEST(Dot, ContainsAllRoutersAndEdges) {
  sf::SlimFlyMMS topo(5);
  std::stringstream buffer;
  write_dot(buffer, topo);
  std::string out = buffer.str();
  EXPECT_NE(out.find("graph"), std::string::npos);
  EXPECT_NE(out.find("r49"), std::string::npos);
  EXPECT_NE(out.find("(+4 ep)"), std::string::npos);  // concentration label
  // One line per edge.
  std::size_t count = 0;
  for (std::size_t pos = 0; (pos = out.find(" -- ", pos)) != std::string::npos; ++pos) {
    ++count;
  }
  EXPECT_EQ(count, static_cast<std::size_t>(topo.graph().num_edges()));
}

}  // namespace
}  // namespace slimfly
