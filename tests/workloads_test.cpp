// Stencil and trace-replay workloads (the paper's motivating HPC patterns).

#include <gtest/gtest.h>

#include <set>

#include "sf/mms.hpp"
#include "sim/simulation.hpp"
#include "sim/traffic.hpp"

namespace slimfly::sim {
namespace {

TEST(Stencil3d, SendsToSixNeighbours) {
  auto t = make_stencil3d(27);  // 3x3x3 grid
  Rng rng(1);
  // Endpoint (1,1,1) = index 13: collect its 6 round-robin destinations.
  std::set<int> dsts;
  for (int i = 0; i < 6; ++i) dsts.insert(t->destination(13, rng));
  EXPECT_EQ(dsts.size(), 6u);
  // All destinations differ from 13 in exactly one coordinate by +-1 mod 3.
  for (int d : dsts) {
    int diff = 0;
    int a = 13, b = d;
    for (int dim = 0; dim < 3; ++dim) {
      int ca = a % 3, cb = b % 3;
      if (ca != cb) {
        ++diff;
        EXPECT_TRUE((ca + 1) % 3 == cb || (cb + 1) % 3 == ca);
      }
      a /= 3;
      b /= 3;
    }
    EXPECT_EQ(diff, 1);
  }
}

TEST(Stencil3d, PeriodicBoundaries) {
  auto t = make_stencil3d(8);  // 2x2x2
  Rng rng(1);
  for (int i = 0; i < 6; ++i) {
    int d = t->destination(0, rng);
    EXPECT_NE(d, 0);
    EXPECT_LT(d, 8);
  }
}

TEST(Stencil3d, ExcessEndpointsIdle) {
  auto t = make_stencil3d(30);  // grid 27, endpoints 27-29 idle
  Rng rng(1);
  for (int e = 27; e < 30; ++e) {
    EXPECT_EQ(t->destination(e, rng), -1);
    EXPECT_FALSE(t->is_active(e));
  }
  EXPECT_TRUE(t->is_active(0));
}

TEST(Stencil3d, RunsOnSlimFly) {
  sf::SlimFlyMMS topo(5);
  auto routing = make_routing(RoutingKind::Minimal, topo);
  auto traffic = make_stencil3d(topo.num_endpoints());
  SimConfig cfg;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 500;
  auto r = simulate(topo, *routing.algorithm, *traffic, cfg, 0.4);
  EXPECT_FALSE(r.saturated);
  EXPECT_GT(r.delivered, 0);
}

TEST(Trace, RoundRobinOverFlows) {
  auto t = make_trace(8, {{0, 1}, {0, 2}, {0, 3}});
  Rng rng(1);
  EXPECT_EQ(t->destination(0, rng), 1);
  EXPECT_EQ(t->destination(0, rng), 2);
  EXPECT_EQ(t->destination(0, rng), 3);
  EXPECT_EQ(t->destination(0, rng), 1);  // wraps
}

TEST(Trace, DuplicateFlowsWeightTheRoundRobin) {
  // Listing a flow k times gives it k slots in the source's round-robin —
  // the documented way to express unequal flow volumes in a communication
  // matrix (see make_trace in sim/traffic.hpp). This pins the contract so
  // the duplicates are never "deduplicated" as a cleanup.
  auto t = make_trace(8, {{0, 1}, {0, 2}, {0, 1}});
  Rng rng(1);
  EXPECT_EQ(t->destination(0, rng), 1);
  EXPECT_EQ(t->destination(0, rng), 2);
  EXPECT_EQ(t->destination(0, rng), 1);
  EXPECT_EQ(t->destination(0, rng), 1);  // wraps: 1 has 2 of 3 slots
  int ones = 0;
  for (int i = 0; i < 300; ++i) ones += t->destination(0, rng) == 1;
  EXPECT_EQ(ones, 200);
}

TEST(Trace, SourcesWithoutFlowsIdle) {
  auto t = make_trace(4, {{0, 1}});
  Rng rng(1);
  EXPECT_EQ(t->destination(2, rng), -1);
  EXPECT_FALSE(t->is_active(2));
  EXPECT_TRUE(t->is_active(0));
}

TEST(Trace, ValidatesFlows) {
  EXPECT_THROW(make_trace(4, {{0, 4}}), std::invalid_argument);
  EXPECT_THROW(make_trace(4, {{2, 2}}), std::invalid_argument);
  EXPECT_THROW(make_trace(4, {{-1, 0}}), std::invalid_argument);
}

TEST(Trace, ReplayOnNetwork) {
  // All-to-one incast trace: heavy load on one router's ejection ports.
  sf::SlimFlyMMS topo(5);
  std::vector<std::pair<int, int>> flows;
  for (int e = 4; e < topo.num_endpoints(); e += 7) flows.emplace_back(e, 0);
  auto routing = make_routing(RoutingKind::Minimal, topo);
  auto traffic = make_trace(topo.num_endpoints(), flows);
  SimConfig cfg;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 400;
  cfg.drain_cycles = 3000;
  auto r = simulate(topo, *routing.algorithm, *traffic, cfg, 0.3);
  EXPECT_GT(r.delivered, 0);  // incast congests but must keep moving
}

}  // namespace
}  // namespace slimfly::sim
