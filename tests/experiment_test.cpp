#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "sf/mms.hpp"
#include "sim/simulation.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/registry.hpp"

namespace slimfly {
namespace {

sim::SimConfig tiny_config() {
  sim::SimConfig cfg;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 100;
  cfg.drain_cycles = 2000;
  cfg.seed = 7;
  return cfg;
}

exp::ExperimentSpec tiny_spec() {
  exp::ExperimentSpec spec;
  spec.name = "tiny";
  spec.loads = {0.1, 0.3};
  spec.config = tiny_config();
  spec.series = {{"slimfly:q=5", "MIN", "uniform", "SF-MIN"},
                 {"slimfly:q=5", "VAL", "uniform", "SF-VAL"},
                 {"fattree:k=4", "FT-ANCA", "uniform", "FT"}};
  return spec;
}

void expect_identical(const std::vector<exp::RunResult>& a,
                      const std::vector<exp::RunResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].series_index, b[i].series_index);
    EXPECT_EQ(a[i].load, b[i].load);
    EXPECT_EQ(a[i].seed, b[i].seed);
    // Bit-identical simulation, not approximately equal: every point owns
    // its Network/Rng/traffic, so the thread schedule must not matter.
    EXPECT_EQ(a[i].result.avg_latency, b[i].result.avg_latency);
    EXPECT_EQ(a[i].result.avg_network_latency, b[i].result.avg_network_latency);
    EXPECT_EQ(a[i].result.p99_latency, b[i].result.p99_latency);
    EXPECT_EQ(a[i].result.accepted_load, b[i].result.accepted_load);
    EXPECT_EQ(a[i].result.delivered, b[i].result.delivered);
    EXPECT_EQ(a[i].result.saturated, b[i].result.saturated);
  }
}

TEST(ExperimentEngine, ParallelMatchesSequentialBitIdentical) {
  auto spec = tiny_spec();
  exp::ExperimentEngine sequential(1);
  exp::ExperimentEngine parallel(4);
  auto seq = sequential.run(spec);
  auto par = parallel.run(spec);
  ASSERT_FALSE(seq.empty());
  expect_identical(seq, par);
}

TEST(ExperimentEngine, RepeatedRunsIdentical) {
  auto spec = tiny_spec();
  exp::ExperimentEngine engine(2);
  expect_identical(engine.run(spec), engine.run(spec));
}

TEST(ExperimentEngine, ResultsOrderedBySeriesThenLoad) {
  auto spec = tiny_spec();
  exp::ExperimentEngine engine(4);
  auto results = engine.run(spec);
  for (std::size_t i = 1; i < results.size(); ++i) {
    bool ordered = results[i - 1].series_index < results[i].series_index ||
                   (results[i - 1].series_index == results[i].series_index &&
                    results[i - 1].load < results[i].load);
    EXPECT_TRUE(ordered) << "result " << i << " out of order";
  }
}

TEST(ExperimentEngine, PerPointWallTimeRecorded) {
  auto spec = tiny_spec();
  exp::ExperimentEngine engine(2);
  for (const auto& r : engine.run(spec)) {
    EXPECT_GT(r.wall_seconds, 0.0);
  }
}

TEST(ExperimentEngine, IncompatibleSeriesThrows) {
  auto spec = tiny_spec();
  spec.series.push_back({"slimfly:q=5", "FT-ANCA", "uniform", "bad"});
  exp::ExperimentEngine engine(1);
  EXPECT_THROW(engine.run(spec), std::invalid_argument);
}

TEST(ExperimentSpec, CrossFiltersIncompatibleCombos) {
  auto spec = exp::ExperimentSpec::cross(
      "x", {"slimfly:q=5", "dragonfly:p=2,a=4,h=2", "fattree:k=4"},
      sim::routing_names(), {"uniform", "worstcase", "worst-ft"}, {0.1},
      tiny_config());
  ASSERT_FALSE(spec.series.empty());
  for (const auto& s : spec.series) {
    const std::string family = topo::parse_spec(s.topology).family;
    const std::string need =
        sim::routing_requirement(sim::routing_kind_from_string(s.routing));
    EXPECT_TRUE(need.empty() || need == family)
        << s.routing << " on " << s.topology;
    const std::string tneed = sim::traffic_requirement(s.traffic);
    EXPECT_TRUE(tneed.empty() || tneed == family)
        << s.traffic << " on " << s.topology;
  }
  // DF-UGAL-L appears exactly once per Dragonfly traffic combo, never on
  // the other topologies.
  for (const auto& s : spec.series) {
    if (s.routing == "DF-UGAL-L") EXPECT_EQ("dragonfly",
                                            topo::parse_spec(s.topology).family);
    if (s.routing == "FT-ANCA") EXPECT_EQ("fattree",
                                          topo::parse_spec(s.topology).family);
  }
}

TEST(ExperimentSpec, PointSeedDeterministicAndSpread) {
  auto spec = tiny_spec();
  EXPECT_EQ(exp::point_seed(spec, 0, 0), exp::point_seed(spec, 0, 0));
  EXPECT_NE(exp::point_seed(spec, 0, 0), exp::point_seed(spec, 0, 1));
  EXPECT_NE(exp::point_seed(spec, 0, 0), exp::point_seed(spec, 1, 0));
  auto other = spec;
  other.config.seed = 8;
  EXPECT_NE(exp::point_seed(spec, 0, 0), exp::point_seed(other, 0, 0));
}

TEST(ExperimentEngine, ThreadsFromEnv) {
  setenv("SF_THREADS", "3", 1);
  EXPECT_EQ(exp::threads_from_env(), 3u);
  exp::ExperimentEngine engine;
  EXPECT_EQ(engine.threads(), 3u);
  setenv("SF_THREADS", "0", 1);
  EXPECT_EQ(exp::threads_from_env(), 0u);
  // Negatives, junk, and absurd counts all mean "auto", never a
  // wrapped-around or astronomical worker count.
  setenv("SF_THREADS", "-1", 1);
  EXPECT_EQ(exp::threads_from_env(), 0u);
  setenv("SF_THREADS", "lots", 1);
  EXPECT_EQ(exp::threads_from_env(), 0u);
  setenv("SF_THREADS", "99999", 1);
  EXPECT_EQ(exp::threads_from_env(), 0u);
  unsetenv("SF_THREADS");
  EXPECT_EQ(exp::threads_from_env(), 0u);
  exp::ExperimentEngine defaulted;
  EXPECT_GE(defaulted.threads(), 1u);
}

// ---- registry round-trips ---------------------------------------------------

TEST(TopologyRegistry, RoundTripEveryFamily) {
  auto examples = topo::example_specs();
  ASSERT_EQ(examples.size(), topo::registry_names().size());
  for (const auto& spec : examples) {
    auto parsed = topo::parse_spec(spec);
    EXPECT_TRUE(topo::is_registered(parsed.family)) << spec;
    auto topo = topo::make(spec);
    ASSERT_NE(topo, nullptr) << spec;
    EXPECT_EQ(topo::family_of(*topo), parsed.family) << spec;
    EXPECT_FALSE(topo->name().empty()) << spec;
    EXPECT_GT(topo->num_endpoints(), 0) << spec;
  }
}

TEST(TopologyRegistry, RejectsMalformedSpecs) {
  EXPECT_THROW(topo::make("nosuch:q=5"), std::invalid_argument);
  EXPECT_THROW(topo::make("slimfly"), std::invalid_argument);        // missing q
  EXPECT_THROW(topo::make("slimfly:q=x"), std::invalid_argument);    // not an int
  EXPECT_THROW(topo::make("slimfly:q=5,zz=1"), std::invalid_argument);
  EXPECT_THROW(topo::make("torus:dims=4x"), std::invalid_argument);
  EXPECT_THROW(topo::make(":q=5"), std::invalid_argument);
}

TEST(RoutingRegistry, RoundTripEveryName) {
  auto names = sim::routing_names();
  EXPECT_EQ(names.size(), 6u);
  for (const auto& name : names) {
    EXPECT_EQ(sim::to_string(sim::routing_kind_from_string(name)), name);
  }
  EXPECT_THROW(sim::routing_kind_from_string("NOPE"), std::invalid_argument);
}

TEST(RoutingRegistry, SupportMatchesRequirement) {
  sf::SlimFlyMMS sf(5);
  Dragonfly df(2, 4, 2, 9);
  FatTree3 ft(4);
  EXPECT_TRUE(sim::routing_supported(sim::RoutingKind::Minimal, sf));
  EXPECT_TRUE(sim::routing_supported(sim::RoutingKind::DragonflyUgalL, df));
  EXPECT_FALSE(sim::routing_supported(sim::RoutingKind::DragonflyUgalL, sf));
  EXPECT_TRUE(sim::routing_supported(sim::RoutingKind::FatTreeAnca, ft));
  EXPECT_FALSE(sim::routing_supported(sim::RoutingKind::FatTreeAnca, df));
  // String-keyed make_routing round-trips through the kind.
  auto bundle = sim::make_routing("UGAL-G", sf);
  EXPECT_EQ(bundle.algorithm->name(), "UGAL-G");
}

TEST(RoutingRegistry, ErrorsNameTheOffendingSpec) {
  // CLI users must be able to self-serve from the message alone: it names
  // the string they typed and the valid alternatives, not just an enum.
  try {
    sim::routing_kind_from_string("UGAL");  // plausible typo
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("\"UGAL\""), std::string::npos) << msg;
    EXPECT_NE(msg.find("UGAL-L"), std::string::npos) << msg;
    EXPECT_NE(msg.find("FT-ANCA"), std::string::npos) << msg;
  }
  // Routing on the wrong topology: the message names the topology it
  // actually got and its registry family.
  sf::SlimFlyMMS sf(5);
  try {
    sim::make_routing(sim::RoutingKind::FatTreeAnca, sf);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("FT-ANCA"), std::string::npos) << msg;
    EXPECT_NE(msg.find(sf.name()), std::string::npos) << msg;
    EXPECT_NE(msg.find("slimfly"), std::string::npos) << msg;
  }
}

TEST(TrafficRegistry, RoundTripEveryName) {
  sf::SlimFlyMMS sf(5);
  Dragonfly df(2, 4, 2, 9);
  FatTree3 ft(4);
  for (const auto& name : sim::traffic_names()) {
    const std::string need = sim::traffic_requirement(name);
    const Topology& topo = need == "dragonfly"
                               ? static_cast<const Topology&>(df)
                               : need == "fattree"
                                     ? static_cast<const Topology&>(ft)
                                     : static_cast<const Topology&>(sf);
    auto pattern = sim::make_traffic(name, topo);
    ASSERT_NE(pattern, nullptr) << name;
    // name() maps back into the registry ("worstcase" dispatches onto the
    // concrete worst-* entry; every other name round-trips exactly).
    auto again = sim::make_traffic(pattern->name(), topo);
    EXPECT_EQ(again->name(), pattern->name()) << name;
    if (name != "worstcase") EXPECT_EQ(pattern->name(), name);
  }
  EXPECT_THROW(sim::make_traffic("nosuch", sf), std::invalid_argument);
  EXPECT_THROW(sim::make_traffic("worst-df", sf), std::invalid_argument);
  EXPECT_THROW(sim::make_traffic("worst-ft", df), std::invalid_argument);
}

TEST(LoadSweep, LegacySeedSemanticsPreserved) {
  // load_sweep is now a wrapper over the engine's sequential path; it must
  // still run every point with the caller's config seed and a fresh traffic
  // instance, exactly like a hand-written simulate() loop.
  sf::SlimFlyMMS topo(5);
  auto cfg = tiny_config();
  auto bundle = sim::make_routing(sim::RoutingKind::Minimal, topo);
  auto points = sim::load_sweep(
      topo, *bundle.algorithm,
      [&] { return sim::make_uniform(topo.num_endpoints()); }, cfg,
      {0.1, 0.3}, true);
  ASSERT_GE(points.size(), 1u);
  for (const auto& pt : points) {
    auto traffic = sim::make_uniform(topo.num_endpoints());
    auto direct = sim::simulate(topo, *bundle.algorithm, *traffic, cfg, pt.load);
    EXPECT_EQ(pt.result.avg_latency, direct.avg_latency);
    EXPECT_EQ(pt.result.accepted_load, direct.accepted_load);
    EXPECT_EQ(pt.result.delivered, direct.delivered);
  }
}

}  // namespace
}  // namespace slimfly
