#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "sf/mms.hpp"
#include "sim/simulation.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/registry.hpp"

namespace slimfly {
namespace {

sim::SimConfig tiny_config() {
  sim::SimConfig cfg;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 100;
  cfg.drain_cycles = 2000;
  cfg.seed = 7;
  return cfg;
}

exp::ExperimentSpec tiny_spec() {
  exp::ExperimentSpec spec;
  spec.name = "tiny";
  spec.loads = {0.1, 0.3};
  spec.config = tiny_config();
  spec.series = {{"slimfly:q=5", "MIN", "uniform", "SF-MIN"},
                 {"slimfly:q=5", "VAL", "uniform", "SF-VAL"},
                 {"fattree:k=4", "FT-ANCA", "uniform", "FT"}};
  return spec;
}

void expect_identical(const std::vector<exp::RunResult>& a,
                      const std::vector<exp::RunResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].series_index, b[i].series_index);
    EXPECT_EQ(a[i].load, b[i].load);
    EXPECT_EQ(a[i].seed, b[i].seed);
    // Bit-identical simulation, not approximately equal: every point owns
    // its Network/Rng/traffic, so the thread schedule must not matter.
    EXPECT_EQ(a[i].result.avg_latency, b[i].result.avg_latency);
    EXPECT_EQ(a[i].result.avg_network_latency, b[i].result.avg_network_latency);
    EXPECT_EQ(a[i].result.p99_latency, b[i].result.p99_latency);
    EXPECT_EQ(a[i].result.accepted_load, b[i].result.accepted_load);
    EXPECT_EQ(a[i].result.delivered, b[i].result.delivered);
    EXPECT_EQ(a[i].result.saturated, b[i].result.saturated);
  }
}

TEST(ExperimentEngine, ParallelMatchesSequentialBitIdentical) {
  auto spec = tiny_spec();
  exp::ExperimentEngine sequential(1);
  exp::ExperimentEngine parallel(4);
  auto seq = sequential.run(spec);
  auto par = parallel.run(spec);
  ASSERT_FALSE(seq.empty());
  expect_identical(seq, par);
}

TEST(ExperimentEngine, RepeatedRunsIdentical) {
  auto spec = tiny_spec();
  exp::ExperimentEngine engine(2);
  expect_identical(engine.run(spec), engine.run(spec));
}

TEST(ExperimentEngine, ResultsOrderedBySeriesThenLoad) {
  auto spec = tiny_spec();
  exp::ExperimentEngine engine(4);
  auto results = engine.run(spec);
  for (std::size_t i = 1; i < results.size(); ++i) {
    bool ordered = results[i - 1].series_index < results[i].series_index ||
                   (results[i - 1].series_index == results[i].series_index &&
                    results[i - 1].load < results[i].load);
    EXPECT_TRUE(ordered) << "result " << i << " out of order";
  }
}

TEST(ExperimentEngine, PerPointWallTimeRecorded) {
  auto spec = tiny_spec();
  exp::ExperimentEngine engine(2);
  for (const auto& r : engine.run(spec)) {
    EXPECT_GT(r.wall_seconds, 0.0);
  }
}

TEST(ExperimentEngine, IncompatibleSeriesThrows) {
  auto spec = tiny_spec();
  spec.series.push_back({"slimfly:q=5", "FT-ANCA", "uniform", "bad"});
  exp::ExperimentEngine engine(1);
  EXPECT_THROW(engine.run(spec), std::invalid_argument);
}

TEST(ExperimentSpec, CrossFiltersIncompatibleCombos) {
  auto spec = exp::ExperimentSpec::cross(
      "x", {"slimfly:q=5", "dragonfly:p=2,a=4,h=2", "fattree:k=4"},
      sim::routing_names(), {"uniform", "worstcase", "worst-ft"}, {0.1},
      tiny_config());
  ASSERT_FALSE(spec.series.empty());
  for (const auto& s : spec.series) {
    const std::string family = topo::parse_spec(s.topology).family;
    const std::string need =
        sim::routing_requirement(sim::routing_kind_from_string(s.routing));
    EXPECT_TRUE(need.empty() || need == family)
        << s.routing << " on " << s.topology;
    const std::string tneed = sim::traffic_requirement(s.traffic);
    EXPECT_TRUE(tneed.empty() || tneed == family)
        << s.traffic << " on " << s.topology;
  }
  // DF-UGAL-L appears exactly once per Dragonfly traffic combo, never on
  // the other topologies.
  for (const auto& s : spec.series) {
    if (s.routing == "DF-UGAL-L") {
      EXPECT_EQ("dragonfly", topo::parse_spec(s.topology).family);
    }
    if (s.routing == "FT-ANCA") {
      EXPECT_EQ("fattree", topo::parse_spec(s.topology).family);
    }
  }
}

TEST(ExperimentSpec, PointSeedDeterministicAndSpread) {
  auto spec = tiny_spec();
  EXPECT_EQ(exp::point_seed(spec, 0, 0), exp::point_seed(spec, 0, 0));
  EXPECT_NE(exp::point_seed(spec, 0, 0), exp::point_seed(spec, 0, 1));
  EXPECT_NE(exp::point_seed(spec, 0, 0), exp::point_seed(spec, 1, 0));
  auto other = spec;
  other.config.seed = 8;
  EXPECT_NE(exp::point_seed(spec, 0, 0), exp::point_seed(other, 0, 0));
}

TEST(ExperimentEngine, ThreadsFromEnv) {
  setenv("SF_THREADS", "3", 1);
  EXPECT_EQ(exp::threads_from_env(), 3u);
  exp::ExperimentEngine engine;
  EXPECT_EQ(engine.threads(), 3u);
  setenv("SF_THREADS", "0", 1);
  EXPECT_EQ(exp::threads_from_env(), 0u);
  // Negatives, junk, and absurd counts all mean "auto", never a
  // wrapped-around or astronomical worker count.
  setenv("SF_THREADS", "-1", 1);
  EXPECT_EQ(exp::threads_from_env(), 0u);
  setenv("SF_THREADS", "lots", 1);
  EXPECT_EQ(exp::threads_from_env(), 0u);
  setenv("SF_THREADS", "99999", 1);
  EXPECT_EQ(exp::threads_from_env(), 0u);
  unsetenv("SF_THREADS");
  EXPECT_EQ(exp::threads_from_env(), 0u);
  exp::ExperimentEngine defaulted;
  EXPECT_GE(defaulted.threads(), 1u);
}

// ---- registry round-trips ---------------------------------------------------

TEST(TopologyRegistry, RoundTripEveryFamily) {
  auto examples = topo::example_specs();
  ASSERT_EQ(examples.size(), topo::registry_names().size());
  for (const auto& spec : examples) {
    auto parsed = topo::parse_spec(spec);
    EXPECT_TRUE(topo::is_registered(parsed.family)) << spec;
    auto topo = topo::make(spec);
    ASSERT_NE(topo, nullptr) << spec;
    EXPECT_EQ(topo::family_of(*topo), parsed.family) << spec;
    EXPECT_FALSE(topo->name().empty()) << spec;
    EXPECT_GT(topo->num_endpoints(), 0) << spec;
  }
}

TEST(TopologyRegistry, RejectsMalformedSpecs) {
  EXPECT_THROW(topo::make("nosuch:q=5"), std::invalid_argument);
  EXPECT_THROW(topo::make("slimfly"), std::invalid_argument);        // missing q
  EXPECT_THROW(topo::make("slimfly:q=x"), std::invalid_argument);    // not an int
  EXPECT_THROW(topo::make("slimfly:q=5,zz=1"), std::invalid_argument);
  EXPECT_THROW(topo::make("torus:dims=4x"), std::invalid_argument);
  EXPECT_THROW(topo::make(":q=5"), std::invalid_argument);
}

TEST(TopologyRegistry, ValuesAreCanonicalDigitsOnly) {
  // std::stoi used to wave through leading whitespace and +/- signs; such
  // specs are not canonical and would not round-trip via --emit-config.
  EXPECT_THROW(topo::validate_spec("hypercube:n=+6"), std::invalid_argument);
  EXPECT_THROW(topo::make("hypercube:n=+6"), std::invalid_argument);
  EXPECT_THROW(topo::make("hypercube:n=-6"), std::invalid_argument);
  EXPECT_THROW(topo::make("torus:dims= 8x8"), std::invalid_argument);
  EXPECT_THROW(topo::make("torus:dims=8x 8"), std::invalid_argument);
  EXPECT_THROW(topo::make("slimfly:q= 5"), std::invalid_argument);
  EXPECT_THROW(topo::make("slimfly:q=5 "), std::invalid_argument);
  EXPECT_THROW(topo::make("slimfly:q=0x5"), std::invalid_argument);
  // Leading zeros or a trailing comma would give one instance two
  // spellings — and since exp::point_seed hashes the raw spec string, two
  // different stream sets.
  EXPECT_THROW(topo::validate_spec("hypercube:n=06"), std::invalid_argument);
  EXPECT_THROW(topo::make("dln:n=36,k=6,p=2,seed=007"), std::invalid_argument);
  EXPECT_THROW(topo::validate_spec("hypercube:n=6,"), std::invalid_argument);
  EXPECT_THROW(topo::validate_spec("hypercube:"), std::invalid_argument);
  EXPECT_NO_THROW(topo::validate_spec("augmented:q=5,extra=2,p=0"));  // bare 0 is canonical
  // Out-of-int-range values fail at parse, before any constructor runs.
  EXPECT_THROW(topo::make("slimfly:q=99999999999"), std::invalid_argument);
  // The canonical forms still parse.
  EXPECT_NO_THROW(topo::validate_spec("hypercube:n=6"));
  EXPECT_NO_THROW(topo::validate_spec("torus:dims=8x8"));
}

TEST(TopologyRegistry, ExoticFamiliesValidateTheirSpecs) {
  // Missing required keys.
  EXPECT_THROW(topo::make("dln:n=36,k=6"), std::invalid_argument);   // no p
  EXPECT_THROW(topo::make("dln:k=6,p=2"), std::invalid_argument);    // no n
  EXPECT_THROW(topo::make("longhop:n=5"), std::invalid_argument);    // no extra
  EXPECT_THROW(topo::make("augmented:q=5"), std::invalid_argument);  // no extra
  // Zero/negative radix, degree, or concentration.
  EXPECT_THROW(topo::make("dln:n=36,k=0,p=2"), std::invalid_argument);
  EXPECT_THROW(topo::make("dln:n=36,k=-3,p=2"), std::invalid_argument);
  EXPECT_THROW(topo::make("dln:n=36,k=36,p=2"), std::invalid_argument);
  EXPECT_THROW(topo::make("dln:n=4,k=3,p=2"), std::invalid_argument);
  EXPECT_THROW(topo::make("dln:n=36,k=6,p=0"), std::invalid_argument);
  EXPECT_THROW(topo::make("longhop:n=0,extra=2"), std::invalid_argument);
  EXPECT_THROW(topo::make("longhop:n=21,extra=2"), std::invalid_argument);
  EXPECT_THROW(topo::make("longhop:n=5,extra=27"), std::invalid_argument);
  // Within the structural ceiling but beyond the balanced-weight candidate
  // pool: make() must throw a named error, never index past the pool.
  EXPECT_THROW(topo::make("longhop:n=6,extra=43"), std::invalid_argument);
  EXPECT_THROW(topo::make("longhop:n=5,extra=2,p=0"), std::invalid_argument);
  EXPECT_THROW(topo::make("augmented:q=5,extra=0"), std::invalid_argument);
  EXPECT_THROW(topo::make("augmented:q=6,extra=2"), std::invalid_argument);  // q not an MMS prime power
  // Unknown keys.
  EXPECT_THROW(topo::make("dln:n=36,k=6,p=2,zz=1"), std::invalid_argument);
  EXPECT_THROW(topo::make("longhop:n=5,extra=2,q=3"), std::invalid_argument);
  EXPECT_THROW(topo::make("augmented:q=5,extra=2,n=9"), std::invalid_argument);
  // Malformed seeds (signs and junk are not canonical digits).
  EXPECT_THROW(topo::make("dln:n=36,k=6,p=2,seed=-1"), std::invalid_argument);
  EXPECT_THROW(topo::make("longhop:n=5,extra=2,seed=1x"), std::invalid_argument);
  // The error names the offending spec so CLI users can self-serve.
  try {
    topo::make("dln:n=36,k=36,p=2");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("dln:n=36,k=36,p=2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("k must be"), std::string::npos) << msg;
  }
  // Semantic errors escaping a constructor get the spec prefixed by make(),
  // so a failing cell in a wide suite is identifiable from the message.
  try {
    topo::make("augmented:q=6,extra=2");  // q=6 is not an MMS prime power
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("augmented:q=6,extra=2"), std::string::npos) << msg;
  }
  try {
    topo::make("dln:n=55,k=53,p=1");  // deterministic matching exhaustion
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("dln:n=55,k=53,p=1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("seed=1"), std::string::npos) << msg;
  }
}

TEST(TopologyRegistry, SeedIsPartOfSpecIdentity) {
  // A spec string fully identifies the instance: same seed, same graph —
  // and because exp::point_seed hashes the whole spec string, it also
  // identifies the traffic streams every run point draws.
  auto a1 = topo::make("dln:n=36,k=6,p=2,seed=5");
  auto a2 = topo::make("dln:n=36,k=6,p=2,seed=5");
  EXPECT_EQ(a1->graph().edges(), a2->graph().edges());
  auto b = topo::make("dln:n=36,k=6,p=2,seed=6");
  EXPECT_NE(a1->graph().edges(), b->graph().edges());
  // Default seeds are pinned and shared with the constructors'
  // kDefaultSeed, so omitting seed= matches both the explicit spelling and
  // a direct construction.
  auto d1 = topo::make("dln:n=36,k=6,p=2");
  auto d2 = topo::make("dln:n=36,k=6,p=2,seed=1");
  EXPECT_EQ(d1->graph().edges(), d2->graph().edges());
  EXPECT_EQ(topo::make("longhop:n=5,extra=2")->graph().edges(),
            topo::make("longhop:n=5,extra=2,seed=7")->graph().edges());
  EXPECT_EQ(topo::make("augmented:q=5,extra=2")->graph().edges(),
            topo::make("augmented:q=5,extra=2,seed=11")->graph().edges());
  auto l1 = topo::make("longhop:n=5,extra=2,seed=9");
  auto l2 = topo::make("longhop:n=5,extra=2,seed=9");
  EXPECT_EQ(l1->graph().edges(), l2->graph().edges());
  auto g1 = topo::make("augmented:q=5,extra=2,seed=3");
  auto g2 = topo::make("augmented:q=5,extra=2,seed=3");
  EXPECT_EQ(g1->graph().edges(), g2->graph().edges());
  auto g3 = topo::make("augmented:q=5,extra=2,seed=4");
  EXPECT_NE(g1->graph().edges(), g3->graph().edges());
}

TEST(TopologyRegistry, AugmentedTakesAnyBaseSpec) {
  // base=<spec> port-augments any registry topology; the nested spec
  // spells its ',' as ';' so the outer parameter list still splits cleanly.
  auto torus = topo::make("augmented:base=torus:dims=4x4,extra=2");
  EXPECT_EQ(topo::family_of(*torus), "augmented");
  EXPECT_EQ(torus->num_endpoints(), topo::make("torus:dims=4x4")->num_endpoints());
  auto with_conc = topo::make("augmented:base=torus:dims=4x4;c=2,extra=2");
  EXPECT_EQ(with_conc->num_endpoints(),
            topo::make("torus:dims=4x4,c=2")->num_endpoints());
  EXPECT_NO_THROW(topo::make("augmented:base=hypercube:n=5,extra=1"));
  // validate_spec recursively validates the translated base without
  // constructing, so structural errors surface on --emit-config paths too.
  EXPECT_NO_THROW(topo::validate_spec("augmented:base=torus:dims=4x4;c=2,extra=2"));
  EXPECT_THROW(topo::validate_spec("augmented:base=nosuch:q=1,extra=2"),
               std::invalid_argument);
  EXPECT_THROW(topo::validate_spec("augmented:base=torus:dims=4x,extra=2"),
               std::invalid_argument);
  // Exactly one base spelling: base= excludes the legacy q=/p= shorthand.
  EXPECT_THROW(topo::validate_spec("augmented:base=torus:dims=4x4,q=5,extra=2"),
               std::invalid_argument);
  EXPECT_THROW(topo::make("augmented:base=torus:dims=4x4,p=2,extra=2"),
               std::invalid_argument);
  EXPECT_THROW(topo::make("augmented:extra=2"), std::invalid_argument);
  // The legacy shorthand is sugar for an explicit Slim Fly base: same
  // default seed, same graph.
  EXPECT_EQ(topo::make("augmented:q=5,extra=2")->graph().edges(),
            topo::make("augmented:base=slimfly:q=5,extra=2")->graph().edges());
  // Seed identity extends to base= specs.
  EXPECT_EQ(topo::make("augmented:base=hypercube:n=5,extra=1")->graph().edges(),
            topo::make("augmented:base=hypercube:n=5,extra=1,seed=11")
                ->graph()
                .edges());
}

TEST(RoutingRegistry, GenericStackSupportsExoticFamilies) {
  // MIN/VAL/UGAL-L/UGAL-G only need Graph + DistanceTable, so every new
  // comparison family must pass routing_supported and actually build.
  for (const char* spec : {"dln:n=36,k=6,p=2", "longhop:n=5,extra=2",
                           "augmented:q=5,extra=2"}) {
    auto topo = topo::make(spec);
    for (sim::RoutingKind kind :
         {sim::RoutingKind::Minimal, sim::RoutingKind::Valiant,
          sim::RoutingKind::UgalL, sim::RoutingKind::UgalG}) {
      EXPECT_TRUE(sim::routing_supported(kind, *topo)) << spec;
      auto bundle = sim::make_routing(kind, *topo);
      ASSERT_NE(bundle.algorithm, nullptr) << spec;
      EXPECT_GE(bundle.algorithm->max_hops(), 1) << spec;
    }
    // Topology-restricted routings refuse with a self-serve message naming
    // the topology and its family, never an assert.
    EXPECT_FALSE(sim::routing_supported(sim::RoutingKind::DragonflyUgalL, *topo));
    EXPECT_FALSE(sim::routing_supported(sim::RoutingKind::FatTreeAnca, *topo));
    try {
      sim::make_routing(sim::RoutingKind::DragonflyUgalL, *topo);
      FAIL() << "expected invalid_argument for " << spec;
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("DF-UGAL-L"), std::string::npos) << msg;
      EXPECT_NE(msg.find(topo::family_of(*topo)), std::string::npos) << msg;
    }
  }
}

TEST(RoutingRegistry, RoundTripEveryName) {
  auto names = sim::routing_names();
  EXPECT_EQ(names.size(), 6u);
  for (const auto& name : names) {
    EXPECT_EQ(sim::to_string(sim::routing_kind_from_string(name)), name);
  }
  EXPECT_THROW(sim::routing_kind_from_string("NOPE"), std::invalid_argument);
}

TEST(RoutingRegistry, SupportMatchesRequirement) {
  sf::SlimFlyMMS sf(5);
  Dragonfly df(2, 4, 2, 9);
  FatTree3 ft(4);
  EXPECT_TRUE(sim::routing_supported(sim::RoutingKind::Minimal, sf));
  EXPECT_TRUE(sim::routing_supported(sim::RoutingKind::DragonflyUgalL, df));
  EXPECT_FALSE(sim::routing_supported(sim::RoutingKind::DragonflyUgalL, sf));
  EXPECT_TRUE(sim::routing_supported(sim::RoutingKind::FatTreeAnca, ft));
  EXPECT_FALSE(sim::routing_supported(sim::RoutingKind::FatTreeAnca, df));
  // String-keyed make_routing round-trips through the kind.
  auto bundle = sim::make_routing("UGAL-G", sf);
  EXPECT_EQ(bundle.algorithm->name(), "UGAL-G");
}

TEST(RoutingRegistry, ErrorsNameTheOffendingSpec) {
  // CLI users must be able to self-serve from the message alone: it names
  // the string they typed and the valid alternatives, not just an enum.
  try {
    sim::routing_kind_from_string("UGAL");  // plausible typo
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("\"UGAL\""), std::string::npos) << msg;
    EXPECT_NE(msg.find("UGAL-L"), std::string::npos) << msg;
    EXPECT_NE(msg.find("FT-ANCA"), std::string::npos) << msg;
  }
  // Routing on the wrong topology: the message names the topology it
  // actually got and its registry family.
  sf::SlimFlyMMS sf(5);
  try {
    sim::make_routing(sim::RoutingKind::FatTreeAnca, sf);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("FT-ANCA"), std::string::npos) << msg;
    EXPECT_NE(msg.find(sf.name()), std::string::npos) << msg;
    EXPECT_NE(msg.find("slimfly"), std::string::npos) << msg;
  }
}

TEST(TrafficRegistry, RoundTripEveryName) {
  sf::SlimFlyMMS sf(5);
  Dragonfly df(2, 4, 2, 9);
  FatTree3 ft(4);
  for (const auto& name : sim::traffic_names()) {
    const std::string need = sim::traffic_requirement(name);
    const Topology& topo = need == "dragonfly"
                               ? static_cast<const Topology&>(df)
                               : need == "fattree"
                                     ? static_cast<const Topology&>(ft)
                                     : static_cast<const Topology&>(sf);
    auto pattern = sim::make_traffic(name, topo);
    ASSERT_NE(pattern, nullptr) << name;
    // name() maps back into the registry ("worstcase" dispatches onto the
    // concrete worst-* entry; every other name round-trips exactly).
    auto again = sim::make_traffic(pattern->name(), topo);
    EXPECT_EQ(again->name(), pattern->name()) << name;
    if (name != "worstcase") {
      EXPECT_EQ(pattern->name(), name);
    }
  }
  EXPECT_THROW(sim::make_traffic("nosuch", sf), std::invalid_argument);
  EXPECT_THROW(sim::make_traffic("worst-df", sf), std::invalid_argument);
  EXPECT_THROW(sim::make_traffic("worst-ft", df), std::invalid_argument);
}

TEST(LoadSweep, LegacySeedSemanticsPreserved) {
  // load_sweep is now a wrapper over the engine's sequential path; it must
  // still run every point with the caller's config seed and a fresh traffic
  // instance, exactly like a hand-written simulate() loop.
  sf::SlimFlyMMS topo(5);
  auto cfg = tiny_config();
  auto bundle = sim::make_routing(sim::RoutingKind::Minimal, topo);
  auto points = sim::load_sweep(
      topo, *bundle.algorithm,
      [&] { return sim::make_uniform(topo.num_endpoints()); }, cfg,
      {0.1, 0.3}, true);
  ASSERT_GE(points.size(), 1u);
  for (const auto& pt : points) {
    auto traffic = sim::make_uniform(topo.num_endpoints());
    auto direct = sim::simulate(topo, *bundle.algorithm, *traffic, cfg, pt.load);
    EXPECT_EQ(pt.result.avg_latency, direct.avg_latency);
    EXPECT_EQ(pt.result.accepted_load, direct.accepted_load);
    EXPECT_EQ(pt.result.delivered, direct.delivered);
  }
}

}  // namespace
}  // namespace slimfly
