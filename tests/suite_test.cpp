#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/json.hpp"
#include "exp/suite.hpp"
#include "sim/simulation.hpp"

namespace slimfly {
namespace {

std::string source_path(const std::string& rel) {
  return std::string(SLIMFLY_SOURCE_DIR) + "/" + rel;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

/// Expects parse_suite (or a later expansion step) to throw an
/// invalid_argument whose message contains every needle — the named-error
/// contract: a user can fix the file from the message alone.
void expect_parse_error(const std::string& text,
                        const std::vector<std::string>& needles) {
  try {
    exp::Suite suite = exp::parse_suite(text);
    exp::suite_to_spec(suite);
    FAIL() << "expected invalid_argument for: " << text;
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (const auto& needle : needles) {
      EXPECT_NE(msg.find(needle), std::string::npos)
          << "message \"" << msg << "\" lacks \"" << needle << "\"";
    }
  }
}

// ---- checked-in suites ------------------------------------------------------

TEST(SuiteFiles, EveryCheckedInSuiteParsesAndExpands) {
  for (const char* name :
       {"fig06a", "fig06b", "fig06c", "fig06d", "fig08a_buffers", "fig08be",
        "abl_ugal", "abl_valiant", "golden_mini", "workloads"}) {
    const std::string path =
        source_path("examples/suites/" + std::string(name) + ".json");
    exp::Suite suite = exp::load_suite_file(path);
    exp::ExperimentSpec spec = exp::suite_to_spec(suite);
    EXPECT_FALSE(spec.series.empty()) << path;
    EXPECT_FALSE(spec.loads.empty()) << path;
  }
}

TEST(SuiteFiles, Fig06aScalesExpandToExpectedPointCounts) {
  exp::Suite suite =
      exp::load_suite_file(source_path("examples/suites/fig06a.json"));
  exp::ExperimentSpec small = exp::suite_to_spec(suite, "small");
  exp::ExperimentSpec paper = exp::suite_to_spec(suite, "paper");
  // The Figure 6 grid: 6 series (SF x 4 routings, DF, FT) x 10 loads at
  // both scales — only the topologies and cycle windows change.
  EXPECT_EQ(small.series.size(), 6u);
  EXPECT_EQ(paper.series.size(), 6u);
  EXPECT_EQ(small.series.size() * small.loads.size(), 60u);
  EXPECT_EQ(paper.series.size() * paper.loads.size(), 60u);
  EXPECT_EQ(small.series[0].topology, "slimfly:q=7");
  EXPECT_EQ(paper.series[0].topology, "slimfly:q=19");
  EXPECT_EQ(small.config.warmup_cycles, 800);
  EXPECT_EQ(paper.config.warmup_cycles, 3000);
  EXPECT_EQ(paper.config.drain_cycles, 40000);
  // Default scale is small.
  EXPECT_EQ(exp::suite_to_spec(suite).series[0].topology, "slimfly:q=7");
}

TEST(SuiteFiles, AblationSuitesCarryParameterizedRoutings) {
  exp::Suite ugal =
      exp::load_suite_file(source_path("examples/suites/abl_ugal.json"));
  exp::ExperimentSpec small = exp::suite_to_spec(ugal, "small");
  exp::ExperimentSpec paper = exp::suite_to_spec(ugal, "paper");
  // 4 candidate counts x {local, global} x {uniform, worst-sf}.
  EXPECT_EQ(small.series.size(), 16u);
  EXPECT_EQ(paper.series.size(), 16u);
  EXPECT_EQ(small.series.size() * small.loads.size(), 80u);
  sim::RoutingSpec parsed = sim::parse_routing_spec(small.series[0].routing);
  EXPECT_EQ(parsed.ugal_candidates, 1);

  exp::Suite val =
      exp::load_suite_file(source_path("examples/suites/abl_valiant.json"));
  exp::ExperimentSpec vspec = exp::suite_to_spec(val);
  ASSERT_EQ(vspec.series.size(), 4u);
  EXPECT_EQ(vspec.series[2].routing, "VAL:hoplimit=3");
  EXPECT_EQ(*sim::parse_routing_spec("VAL:hoplimit=3").val_hop_limit, 3);
}

TEST(SuiteFiles, Fig08aCarriesPerSeriesBufferOverrides) {
  exp::Suite suite =
      exp::load_suite_file(source_path("examples/suites/fig08a_buffers.json"));
  exp::ExperimentSpec spec = exp::suite_to_spec(suite);
  ASSERT_EQ(spec.series.size(), 6u);
  EXPECT_EQ(spec.series[0].config_overrides.at("buffer_per_port"), 8.0);
  EXPECT_EQ(spec.series[5].config_overrides.at("buffer_per_port"), 256.0);
  // Overrides feed the per-point seed: same axes, different buffers, so
  // the six series must not share streams.
  EXPECT_NE(exp::point_seed(spec, 0, 0), exp::point_seed(spec, 1, 0));
}

// ---- round-trip -------------------------------------------------------------

TEST(SuiteRoundTrip, SerializeParseReproducesSpec) {
  exp::ExperimentSpec spec;
  spec.name = "rt";
  spec.loads = {0.1, 0.25};
  spec.config.seed = 42;
  spec.config.warmup_cycles = 77;
  spec.config.buffer_per_port = 48;
  spec.truncate_at_saturation = false;
  spec.series = {{"slimfly:q=5", "UGAL-L:c=2", "uniform", "lab", {}},
                 {"slimfly:q=5", "VAL", "worst-sf", "", {{"num_vcs", 8.0}}}};

  exp::Suite suite = exp::suite_from_spec(spec, 3);
  const std::string text = exp::serialize_suite(suite);
  exp::Suite reparsed = exp::parse_suite(text);
  EXPECT_EQ(reparsed.threads, 3u);
  exp::ExperimentSpec back = exp::suite_to_spec(reparsed);

  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.loads, spec.loads);
  EXPECT_EQ(back.truncate_at_saturation, spec.truncate_at_saturation);
  EXPECT_EQ(back.config.seed, spec.config.seed);
  EXPECT_EQ(back.config.warmup_cycles, spec.config.warmup_cycles);
  EXPECT_EQ(back.config.buffer_per_port, spec.config.buffer_per_port);
  EXPECT_EQ(back.config.num_vcs, spec.config.num_vcs);
  EXPECT_EQ(back.config.latency_cap, spec.config.latency_cap);
  ASSERT_EQ(back.series.size(), spec.series.size());
  for (std::size_t i = 0; i < spec.series.size(); ++i) {
    EXPECT_EQ(back.series[i].topology, spec.series[i].topology);
    EXPECT_EQ(back.series[i].routing, spec.series[i].routing);
    EXPECT_EQ(back.series[i].traffic, spec.series[i].traffic);
    EXPECT_EQ(back.series[i].label, spec.series[i].label);
    EXPECT_EQ(back.series[i].config_overrides,
              spec.series[i].config_overrides);
  }
  // Identical series + config => identical per-point seeds, hence
  // bit-identical runs without executing anything here.
  EXPECT_EQ(exp::point_seed(back, 1, 1), exp::point_seed(spec, 1, 1));
}

// ---- negative / fuzz --------------------------------------------------------

TEST(SuiteParser, MalformedJsonNamesLineAndColumn) {
  expect_parse_error("{", {"line 1", "unexpected end of input"});
  expect_parse_error("", {"unexpected end of input"});
  expect_parse_error("[1, 2]", {"expected a suite object"});
  expect_parse_error("{\"suite\": }", {"col 11", "unexpected character"});
  expect_parse_error("{} trailing", {"trailing characters"});
  expect_parse_error("{\"suite\": \"x\", \"suite\": \"y\"}",
                     {"duplicate object key \"suite\""});
  expect_parse_error("{\"suite\": \"a\nb\"}", {"raw control character"});
  // "01" parses as "0" then chokes on the stray digit (no leading zeros).
  expect_parse_error("{\"suite\": 01}", {"col 12", "expected ',' or '}'"});
}

TEST(SuiteParser, UnknownNamesAreNamedErrorsNeverDefaults) {
  const char* base =
      "{\"suite\": \"x\", \"loads\": [0.1], \"series\": "
      "[{\"topology\": \"%T%\", \"routing\": \"%R%\", \"traffic\": \"%F%\"}]}";
  auto with = [&](const std::string& t, const std::string& r,
                  const std::string& f) {
    std::string text = base;
    text.replace(text.find("%T%"), 3, t);
    text.replace(text.find("%R%"), 3, r);
    text.replace(text.find("%F%"), 3, f);
    return text;
  };
  // Unknown registry names: the message carries the PR 2 registry errors.
  expect_parse_error(with("nosuch:q=5", "MIN", "uniform"), {"nosuch"});
  expect_parse_error(with("slimfly:q=5", "UGAL", "uniform"),
                     {"unknown routing \"UGAL\"", "UGAL-L", "FT-ANCA"});
  expect_parse_error(with("slimfly:q=5", "MIN", "unifrom"),
                     {"unknown traffic pattern \"unifrom\"", "SPEC_GRAMMAR"});
  // Bad routing parameters.
  expect_parse_error(with("slimfly:q=5", "UGAL-L:c=0", "uniform"),
                     {"UGAL-L:c=0", "1..64"});
  expect_parse_error(with("slimfly:q=5", "VAL:hoplimit=x", "uniform"),
                     {"hoplimit", "1..255"});
  expect_parse_error(with("slimfly:q=5", "MIN:c=4", "uniform"),
                     {"unknown parameter \"c\" for MIN"});
  // Incompatible explicit series are rejected, not silently skipped.
  expect_parse_error(with("slimfly:q=5", "FT-ANCA", "uniform"),
                     {"FT-ANCA", "slimfly:q=5"});
  expect_parse_error(with("slimfly:q=5", "MIN", "worst-df"),
                     {"worst-df", "slimfly:q=5"});
}

TEST(SuiteParser, StructuralErrorsAreNamed) {
  expect_parse_error("{\"suite\": \"x\", \"loads\": [0.1], \"zzz\": 1, "
                     "\"series\": [{\"topology\": \"slimfly:q=5\", "
                     "\"routing\": \"MIN\", \"traffic\": \"uniform\"}]}",
                     {"unknown key \"zzz\""});
  expect_parse_error("{\"suite\": \"x/y\", \"loads\": [0.1]}",
                     {"not a valid tag"});
  expect_parse_error("{\"suite\": \"x\", \"loads\": []}",
                     {"empty load list"});
  expect_parse_error("{\"suite\": \"x\", \"loads\": [-0.1]}",
                     {"must be positive"});
  expect_parse_error("{\"suite\": \"x\", \"loads\": [0.1]}",
                     {"\"series\", \"cross\", or both"});
  expect_parse_error(
      "{\"suite\": \"x\", \"loads\": [0.1], \"config\": {\"zz\": 1}, "
      "\"series\": [{\"topology\": \"slimfly:q=5\", \"routing\": \"MIN\", "
      "\"traffic\": \"uniform\"}]}",
      {"unknown config key \"zz\"", "buffer_per_port"});
  // Per-series config blocks must not smuggle run-level keys.
  expect_parse_error(
      "{\"suite\": \"x\", \"loads\": [0.1], \"series\": "
      "[{\"topology\": \"slimfly:q=5\", \"routing\": \"MIN\", "
      "\"traffic\": \"uniform\", \"config\": {\"seed\": 3}}]}",
      {"unknown config key \"seed\"", "experiment-level"});
  // Scale references must be declared.
  expect_parse_error(
      "{\"suite\": \"x\", \"loads\": [0.1], \"series\": "
      "[{\"topology\": {\"big\": \"slimfly:q=5\"}, \"routing\": \"MIN\", "
      "\"traffic\": \"uniform\"}]}",
      {"scale \"big\"", "not declared"});
  expect_parse_error(
      "{\"suite\": \"x\", \"scale\": \"paper\", \"loads\": [0.1], "
      "\"series\": [{\"topology\": \"slimfly:q=5\", \"routing\": \"MIN\", "
      "\"traffic\": \"uniform\"}]}",
      {"default scale \"paper\"", "not declared"});
  expect_parse_error(
      "{\"suite\": \"x\", \"loads\": [0.1], \"threads\": 9999, \"series\": "
      "[{\"topology\": \"slimfly:q=5\", \"routing\": \"MIN\", "
      "\"traffic\": \"uniform\"}]}",
      {"threads", "0..4096"});
  // Wrong value kinds name the path and both kinds.
  expect_parse_error("{\"suite\": 5, \"loads\": [0.1]}",
                     {"suite", "expected string, got number"});
  expect_parse_error("{\"suite\": \"x\", \"loads\": 0.1}",
                     {"loads", "expected array, got number"});
}

TEST(SuiteParser, UnknownScaleAtExpansionListsAvailable) {
  exp::Suite suite =
      exp::load_suite_file(source_path("examples/suites/fig06a.json"));
  try {
    exp::suite_to_spec(suite, "huge");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("\"huge\""), std::string::npos) << msg;
    EXPECT_NE(msg.find("small"), std::string::npos) << msg;
    EXPECT_NE(msg.find("paper"), std::string::npos) << msg;
  }
}

TEST(SuiteParser, FuzzTruncationsAndMutationsNeverCrash) {
  const std::string valid =
      read_file(source_path("examples/suites/golden_mini.json"));
  ASSERT_FALSE(valid.empty());
  // Every prefix: either parses (only possible once the closing '}' is in;
  // shorter prefixes are cut documents) or throws invalid_argument;
  // anything else (crash, other exception type) fails the test harness.
  const std::size_t closing = valid.rfind('}');
  ASSERT_NE(closing, std::string::npos);
  for (std::size_t len = 0; len < valid.size(); ++len) {
    try {
      exp::parse_suite(valid.substr(0, len));
      if (len <= closing) {
        ADD_FAILURE() << "truncated prefix of length " << len << " parsed";
      }
    } catch (const std::invalid_argument&) {
    }
  }
  // Single-character mutations: must yield success or invalid_argument.
  const std::string mutations = "{}[]\",:x0\x01";
  for (std::size_t i = 0; i < valid.size(); i += 7) {
    for (char m : mutations) {
      std::string text = valid;
      text[i] = m;
      try {
        exp::parse_suite(text);
      } catch (const std::invalid_argument&) {
      }
    }
  }
  // Deep nesting is bounded, not stack-exhausting.
  std::string deep(10000, '[');
  EXPECT_THROW(exp::json::parse(deep), std::invalid_argument);
  try {
    exp::json::parse(deep);
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("nesting"), std::string::npos);
  }
}

TEST(RoutingSpecs, ParseAndConstructParameterized) {
  sim::RoutingSpec spec = sim::parse_routing_spec("UGAL-G:c=8");
  EXPECT_EQ(spec.kind, sim::RoutingKind::UgalG);
  EXPECT_EQ(spec.ugal_candidates, 8);
  EXPECT_FALSE(sim::parse_routing_spec("MIN").val_hop_limit.has_value());
  EXPECT_THROW(sim::parse_routing_spec("UGAL-L:c=65"), std::invalid_argument);
  EXPECT_THROW(sim::parse_routing_spec("UGAL-L:"), std::invalid_argument);
  EXPECT_THROW(sim::parse_routing_spec("VAL:hoplimit="),
               std::invalid_argument);
  EXPECT_THROW(sim::parse_routing_spec("NOPE:c=4"), std::invalid_argument);
}

}  // namespace
}  // namespace slimfly
