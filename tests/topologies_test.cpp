// Structural invariants of every comparison topology: size, degree,
// diameter (Table II formulas), and packaging.

#include <gtest/gtest.h>

#include "analysis/metrics.hpp"
#include "topo/dln.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/flatbutterfly.hpp"
#include "topo/hypercube.hpp"
#include "topo/longhop.hpp"
#include "topo/torus.hpp"

namespace slimfly {
namespace {

TEST(Torus, Structure3D) {
  Torus t({4, 4, 4});
  EXPECT_EQ(t.num_routers(), 64);
  EXPECT_TRUE(t.graph().is_regular());
  EXPECT_EQ(t.graph().max_degree(), 6);
  EXPECT_EQ(analysis::diameter(t.graph()), t.diameter());
  EXPECT_EQ(t.diameter(), 6);  // 3 * floor(4/2)
  EXPECT_TRUE(t.folded_electrical());
}

TEST(Torus, Structure5D) {
  Torus t({3, 3, 3, 3, 3});
  EXPECT_EQ(t.num_routers(), 243);
  EXPECT_EQ(t.graph().max_degree(), 10);
  EXPECT_EQ(analysis::diameter(t.graph()), 5);  // 5 * floor(3/2)
}

TEST(Torus, MakeCubicMeetsMinimum) {
  auto t = Torus::make_cubic(3, 500);
  EXPECT_GE(t->num_routers(), 500);
  EXPECT_EQ(t->dims().size(), 3u);
}

TEST(Torus, RejectsTinyExtent) {
  EXPECT_THROW(Torus({2, 4, 4}), std::invalid_argument);
}

TEST(Hypercube, Structure) {
  Hypercube hc(6);
  EXPECT_EQ(hc.num_routers(), 64);
  EXPECT_TRUE(hc.graph().is_regular());
  EXPECT_EQ(hc.graph().max_degree(), 6);
  EXPECT_EQ(analysis::diameter(hc.graph()), 6);
}

TEST(FatTree3, PaperSlimMatchesTableIV) {
  // k = 44, p = 22: Nr = 3p^2 = 1452, N = p^3 = 10648 (paper Section V).
  FatTree3 ft(22, FatTreeVariant::PaperSlim);
  EXPECT_EQ(ft.num_routers(), 1452);
  EXPECT_EQ(ft.num_endpoints(), 10648);
  EXPECT_EQ(ft.router_radix(), 44);
}

TEST(FatTree3, ClassicMatchesPaperText) {
  // Section VI-B3c: 5p^2 routers, 2p^3 endpoints.
  FatTree3 ft(4, FatTreeVariant::Classic);
  EXPECT_EQ(ft.num_routers(), 5 * 16);
  EXPECT_EQ(ft.num_endpoints(), 2 * 64);
}

TEST(FatTree3, DiameterIsFour) {
  FatTree3 ft(4, FatTreeVariant::PaperSlim);
  EXPECT_EQ(analysis::diameter(ft.graph()), 4);
}

TEST(FatTree3, LevelsAndPods) {
  FatTree3 ft(3, FatTreeVariant::PaperSlim);
  int edge = 0, agg = 0, core = 0;
  for (int r = 0; r < ft.num_routers(); ++r) {
    switch (ft.level(r)) {
      case 0: ++edge; EXPECT_GE(ft.pod(r), 0); break;
      case 1: ++agg; EXPECT_GE(ft.pod(r), 0); break;
      case 2: ++core; EXPECT_EQ(ft.pod(r), -1); break;
    }
  }
  EXPECT_EQ(edge, 9);
  EXPECT_EQ(agg, 9);
  EXPECT_EQ(core, 9);
  // Only edge switches carry endpoints.
  for (int r = 0; r < ft.num_routers(); ++r) {
    EXPECT_EQ(ft.endpoints_at(r) > 0, ft.level(r) == 0);
  }
}

TEST(FlattenedButterfly, Structure3Level) {
  FlattenedButterfly fbf(3, 4);
  EXPECT_EQ(fbf.num_routers(), 64);
  EXPECT_TRUE(fbf.graph().is_regular());
  EXPECT_EQ(fbf.graph().max_degree(), 9);  // 3 * (4-1)
  EXPECT_EQ(analysis::diameter(fbf.graph()), 3);
  EXPECT_EQ(fbf.concentration(), 4);  // balanced p = c
  EXPECT_EQ(fbf.num_endpoints(), 256);
}

TEST(FlattenedButterfly, TwoLevelIsClique) {
  FlattenedButterfly fbf(1, 8);
  EXPECT_EQ(analysis::diameter(fbf.graph()), 1);
  EXPECT_EQ(fbf.graph().max_degree(), 7);
}

TEST(Dragonfly, BalancedPalmtree) {
  auto df = Dragonfly::balanced(3);  // a=6, h=3, g=19
  EXPECT_EQ(df->groups(), 19);
  EXPECT_EQ(df->num_routers(), 114);
  EXPECT_TRUE(df->graph().is_regular());
  EXPECT_EQ(df->graph().max_degree(), 8);  // (a-1) + h
  EXPECT_EQ(analysis::diameter(df->graph()), 3);
  EXPECT_EQ(df->router_radix(), 11);  // k = 4p - 1
  // Exactly one global link between every pair of groups.
  for (int gi = 0; gi < df->groups(); ++gi) {
    int global_links = 0;
    for (int r = gi * df->a(); r < (gi + 1) * df->a(); ++r) {
      for (int n : df->graph().neighbors(r)) {
        if (df->group_of(n) != gi) ++global_links;
      }
    }
    EXPECT_EQ(global_links, df->a() * df->h());
  }
}

TEST(Dragonfly, PaperEvaluationConfig) {
  // Section V: k = 27, p = 7, Nr = 1386, N = 9702 (a=14, h=7, g=99).
  Dragonfly df(7, 14, 7, 99);
  EXPECT_EQ(df.num_routers(), 1386);
  EXPECT_EQ(df.num_endpoints(), 9702);
  EXPECT_EQ(df.router_radix(), 27);
}

TEST(Dragonfly, SubscaledKeepsRouterDegreeBounded) {
  // Table IV case study: a=22, h=11, g=45 (N=10890, k=43).
  Dragonfly df(11, 22, 11, 45);
  EXPECT_EQ(df.num_routers(), 990);
  EXPECT_EQ(df.num_endpoints(), 10890);
  // Degree can fall slightly short of (a-1)+h when parallel router pairs
  // are deduplicated, but must never exceed it.
  EXPECT_LE(df.graph().max_degree(), 32);
  EXPECT_GE(df.graph().num_edges(),
            static_cast<std::int64_t>(990) * 32 / 2 * 95 / 100);
  EXPECT_EQ(analysis::diameter(df.graph()), 3);
}

TEST(Dragonfly, RejectsOversizedGroupCount) {
  EXPECT_THROW(Dragonfly(2, 4, 2, 10), std::invalid_argument);  // g > a*h+1
}

TEST(Dln, RingPlusShortcuts) {
  Dln dln(100, 8, 3);
  EXPECT_EQ(dln.num_routers(), 100);
  EXPECT_LE(dln.graph().max_degree(), 8);
  // Near-regular: average degree within 5% of target.
  double avg = 2.0 * static_cast<double>(dln.graph().num_edges()) / 100.0;
  EXPECT_GT(avg, 8.0 * 0.95);
  // Ring edges present.
  for (int v = 0; v < 100; ++v) {
    EXPECT_TRUE(dln.graph().has_edge(v, (v + 1) % 100));
  }
  EXPECT_TRUE(analysis::is_connected(dln.graph()));
}

TEST(Dln, ExhaustedMatchingThrowsNamedError) {
  // Near-complete (n, k): the shortcuts must tile almost the whole ring
  // complement, and seed 1's 32 matching attempts all dead-end (construction
  // is deterministic per seed, so this exhaustion is stable). The error must
  // carry the full configuration so it maps back to the spec string.
  try {
    Dln dln(55, 53, 1, 1);
    FAIL() << "expected runtime_error from matching exhaustion";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("n=55"), std::string::npos) << msg;
    EXPECT_NE(msg.find("k=53"), std::string::npos) << msg;
    EXPECT_NE(msg.find("seed=1"), std::string::npos) << msg;
  }
}

TEST(Dln, SeedSelectsAReproducibleInstance) {
  Dln a(36, 6, 2, 5);
  Dln b(36, 6, 2, 5);
  EXPECT_EQ(a.graph().edges(), b.graph().edges());
  Dln c(36, 6, 2, 6);
  EXPECT_NE(a.graph().edges(), c.graph().edges());
}

TEST(Dln, LowDiameterLikeThePaper) {
  Dln dln(338, 14, 3);  // the paper's 338-endpoint-class DLN
  int d = analysis::diameter(dln.graph());
  EXPECT_GE(d, 3);
  EXPECT_LE(d, 10);  // Table II range
}

TEST(LongHop, AugmentedHypercube) {
  LongHop lh(8, 4);  // 256 routers, degree 12
  EXPECT_EQ(lh.num_routers(), 256);
  EXPECT_TRUE(lh.graph().is_regular());
  EXPECT_EQ(lh.graph().max_degree(), 12);
  // Diameter must be well below the hypercube's 8.
  int d = analysis::diameter(lh.graph());
  EXPECT_LE(d, 5);
  EXPECT_GE(d, 2);
}

TEST(LongHop, GeneratorsIncludeBasis) {
  LongHop lh(6, 2);
  const auto& gens = lh.generators();
  ASSERT_GE(gens.size(), 6u);
  for (int b = 0; b < 6; ++b) {
    EXPECT_EQ(gens[static_cast<std::size_t>(b)], 1u << b);
  }
}

TEST(Topology, EndpointMappingConsistent) {
  Hypercube hc(4, 3);  // p = 3
  EXPECT_EQ(hc.num_endpoints(), 48);
  for (int e = 0; e < hc.num_endpoints(); ++e) {
    int r = hc.endpoint_router(e);
    EXPECT_GE(e, hc.first_endpoint(r));
    EXPECT_LT(e, hc.first_endpoint(r) + hc.endpoints_at(r));
  }
}

}  // namespace
}  // namespace slimfly
