// The Slim Fly MMS topology itself: order, regularity, diameter 2, the
// Hoffman-Singleton special case, unique-common-neighbour structure, and
// the balanced concentration rule.

#include <gtest/gtest.h>

#include "analysis/metrics.hpp"
#include "sf/mms.hpp"

namespace slimfly::sf {
namespace {

class MmsInvariants : public ::testing::TestWithParam<int> {};

TEST_P(MmsInvariants, OrderAndRadix) {
  int q = GetParam();
  SlimFlyMMS topo(q);
  int delta = topo.delta();
  EXPECT_EQ(topo.num_routers(), 2 * q * q);
  EXPECT_EQ(topo.k_net(), (3 * q - delta) / 2);
  EXPECT_TRUE(topo.graph().is_regular());
  EXPECT_EQ(topo.graph().max_degree(), topo.k_net());
  // Edge count: Nr * k' / 2.
  EXPECT_EQ(topo.graph().num_edges(),
            static_cast<std::int64_t>(2 * q * q) * topo.k_net() / 2);
}

TEST_P(MmsInvariants, DiameterIsTwo) {
  SlimFlyMMS topo(GetParam());
  EXPECT_EQ(analysis::diameter(topo.graph()), 2);
}

TEST_P(MmsInvariants, BalancedConcentration) {
  int q = GetParam();
  SlimFlyMMS topo(q);
  // p = ceil(k'/2) => roughly 2/3 network ports, 1/3 endpoint ports.
  EXPECT_EQ(topo.concentration(), (topo.k_net() + 1) / 2);
  EXPECT_EQ(topo.num_endpoints(), topo.concentration() * 2 * q * q);
  double network_fraction = static_cast<double>(topo.k_net()) /
                            (topo.k_net() + topo.concentration());
  EXPECT_NEAR(network_fraction, 2.0 / 3.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(SupportedQ, MmsInvariants,
                         ::testing::Values(3, 4, 5, 7, 8, 9, 11, 13, 16, 17, 19));

TEST(Mms, HoffmanSingletonForQ5) {
  // q = 5 yields the Hoffman-Singleton graph: 50 vertices, 7-regular,
  // 175 edges, diameter 2, girth 5 (no triangles or 4-cycles).
  SlimFlyMMS topo(5);
  const Graph& g = topo.graph();
  EXPECT_EQ(g.num_vertices(), 50);
  EXPECT_EQ(g.num_edges(), 175);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.max_degree(), 7);
  EXPECT_EQ(analysis::diameter(g), 2);
  // Moore graph property: any two adjacent vertices share no common
  // neighbour (girth 5), any two non-adjacent share exactly one.
  for (int u = 0; u < 50; ++u) {
    for (int v = u + 1; v < 50; ++v) {
      int common = 0;
      for (int w : g.neighbors(u)) {
        if (g.has_edge(w, v)) ++common;
      }
      if (g.has_edge(u, v)) {
        EXPECT_EQ(common, 0) << u << "," << v;
      } else {
        EXPECT_EQ(common, 1) << u << "," << v;
      }
    }
  }
}

TEST(Mms, CrossSubgraphPairsHaveUniqueCommonNeighbor) {
  // Structural property used in the diameter-2 proof: routers (0,x,y) and
  // (0,x',y') with x != x' have exactly one common neighbour, (1,m,c).
  SlimFlyMMS topo(7);
  const Graph& g = topo.graph();
  int q = 7;
  for (int x = 0; x < q; ++x) {
    for (int xp = x + 1; xp < q; ++xp) {
      for (int y = 0; y < q; ++y) {
        int u = topo.router_id(0, x, y);
        int v = topo.router_id(0, xp, (y + 3) % q);
        int common = 0;
        for (int w : g.neighbors(u)) {
          if (g.has_edge(w, v)) ++common;
        }
        EXPECT_EQ(common, 1) << "x=" << x << " x'=" << xp << " y=" << y;
      }
    }
  }
}

TEST(Mms, PaperFlagshipConfigQ19) {
  // The paper's running example: q=19 => N=10830, Nr=722, k'=29, p=15, k=44.
  SlimFlyMMS topo(19);
  EXPECT_EQ(topo.num_routers(), 722);
  EXPECT_EQ(topo.k_net(), 29);
  EXPECT_EQ(topo.concentration(), 15);
  EXPECT_EQ(topo.num_endpoints(), 10830);
  EXPECT_EQ(topo.router_radix(), 44);
}

TEST(Mms, OversubscribedConcentration) {
  SlimFlyMMS topo(19, 18);  // Section V-E study
  EXPECT_EQ(topo.concentration(), 18);
  EXPECT_EQ(topo.num_endpoints(), 12996);
}

TEST(Mms, RejectsInvalidQ) {
  EXPECT_THROW(SlimFlyMMS(2), std::invalid_argument);
  EXPECT_THROW(SlimFlyMMS(6), std::invalid_argument);
  EXPECT_THROW(SlimFlyMMS(15), std::invalid_argument);
}

TEST(Mms, RackStructure) {
  SlimFlyMMS topo(5);
  EXPECT_EQ(topo.num_racks(), 5);
  // Rack x holds subgroups (0,x,*) and (1,x,*): 2q routers.
  std::vector<int> count(5, 0);
  for (int r = 0; r < topo.num_routers(); ++r) {
    ++count[static_cast<std::size_t>(topo.rack_of_router(r))];
  }
  for (int c : count) EXPECT_EQ(c, 10);
}

TEST(Mms, RouterIdRoundTrip) {
  SlimFlyMMS topo(9);
  for (int s = 0; s < 2; ++s) {
    for (int x = 0; x < 9; ++x) {
      for (int y = 0; y < 9; ++y) {
        int r = topo.router_id(s, x, y);
        EXPECT_EQ(topo.subgraph_of(r), s);
        EXPECT_EQ(topo.x_of(r), x);
        EXPECT_EQ(topo.y_of(r), y);
      }
    }
  }
}

}  // namespace
}  // namespace slimfly::sf
