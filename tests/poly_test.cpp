#include <gtest/gtest.h>

#include "gf/poly.hpp"

namespace slimfly::gf {
namespace {

TEST(Poly, NormalizeDropsTrailingZeros) {
  Poly a{{1, 2, 0, 0}};
  EXPECT_EQ(normalize(a).degree(), 1);
  EXPECT_EQ(normalize(Poly{{0, 0}}).degree(), -1);
}

TEST(Poly, AddSubRoundTrip) {
  int p = 5;
  Poly a{{1, 2, 3}};
  Poly b{{4, 0, 2}};
  Poly s = add(a, b, p);
  EXPECT_EQ(sub(s, b, p), normalize(a));
  EXPECT_EQ(sub(s, a, p), normalize(b));
}

TEST(Poly, AddCancellationReducesDegree) {
  int p = 3;
  Poly a{{1, 2}};
  Poly b{{1, 1}};
  EXPECT_EQ(add(a, b, p).degree(), 0);  // (2x) + (x) = 3x = 0 mod 3
}

TEST(Poly, MulDegreesAdd) {
  int p = 7;
  Poly a{{1, 1}};      // 1 + x
  Poly b{{2, 0, 1}};   // 2 + x^2
  Poly c = mul(a, b, p);
  EXPECT_EQ(c.degree(), 3);
  // (1+x)(2+x^2) = 2 + 2x + x^2 + x^3
  EXPECT_EQ(c.coeffs, (std::vector<int>{2, 2, 1, 1}));
}

TEST(Poly, MulByZeroIsZero) {
  EXPECT_TRUE(mul(Poly{{1, 2}}, Poly{}, 5).is_zero());
}

TEST(Poly, ModReducesBelowDivisorDegree) {
  int p = 2;
  Poly f{{1, 1, 0, 1}};  // 1 + x + x^3 (irreducible over GF(2))
  Poly a{{0, 0, 0, 0, 0, 1}};  // x^5
  Poly r = mod(a, f, p);
  EXPECT_LT(r.degree(), f.degree());
}

TEST(Poly, ModRequiresMonic) {
  EXPECT_THROW(mod(Poly{{1}}, Poly{{1, 2}}, 5), std::invalid_argument);
  EXPECT_THROW(mod(Poly{{1}}, Poly{}, 5), std::invalid_argument);
}

TEST(IsIrreducible, KnownPolynomials) {
  // x^2 + 1 over GF(3) is irreducible (-1 is not a square mod 3).
  EXPECT_TRUE(is_irreducible(Poly{{1, 0, 1}}, 3));
  // x^2 + 1 over GF(5) factors: (x+2)(x+3) = x^2 + 5x + 6 = x^2 + 1 mod 5.
  EXPECT_FALSE(is_irreducible(Poly{{1, 0, 1}}, 5));
  // x^2 + x + 1 over GF(2) is the classic irreducible.
  EXPECT_TRUE(is_irreducible(Poly{{1, 1, 1}}, 2));
  // x^2 + x over GF(2) = x(x+1).
  EXPECT_FALSE(is_irreducible(Poly{{0, 1, 1}}, 2));
}

TEST(FindIrreducible, ProducesIrreducibleOfRightDegree) {
  for (auto [p, m] : std::vector<std::pair<int, int>>{
           {2, 2}, {2, 3}, {2, 5}, {3, 2}, {3, 3}, {5, 2}, {7, 2}}) {
    Poly f = find_irreducible(p, m);
    EXPECT_EQ(f.degree(), m);
    EXPECT_EQ(f.coeffs.back(), 1);  // monic
    EXPECT_TRUE(is_irreducible(f, p));
  }
}

}  // namespace
}  // namespace slimfly::gf
