// Cycle simulator: conservation (no packet loss), credit safety, zero-load
// latency sanity, throughput monotonicity, and deadlock freedom under
// adversarial load.

#include <gtest/gtest.h>

#include "sf/mms.hpp"
#include "sim/simulation.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/torus.hpp"

namespace slimfly::sim {
namespace {

SimConfig quick_config() {
  SimConfig cfg;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 500;
  cfg.drain_cycles = 20000;
  return cfg;
}

TEST(Network, ZeroLoadLatencyMatchesPipelineModel) {
  sf::SlimFlyMMS topo(5);
  auto routing = make_routing(RoutingKind::Minimal, topo);
  auto traffic = make_uniform(topo.num_endpoints());
  SimConfig cfg = quick_config();
  SimResult r = simulate(topo, *routing.algorithm, *traffic, cfg, 0.01);
  EXPECT_FALSE(r.saturated);
  // Diameter 2 => at most 3 router traversals (src, via, dst) plus
  // injection/ejection; per hop latency = channel(1) + pipeline(2). At
  // 1% load queueing is negligible: latency must be a small constant.
  EXPECT_GT(r.avg_latency, 3.0);
  EXPECT_LT(r.avg_latency, 20.0);
}

TEST(Network, AllMeasuredPacketsDeliveredAtLowLoad) {
  sf::SlimFlyMMS topo(5);
  auto routing = make_routing(RoutingKind::Minimal, topo);
  auto traffic = make_uniform(topo.num_endpoints());
  Network net(topo, *routing.algorithm, *traffic, quick_config(), 0.2);
  SimResult r = net.run();
  EXPECT_FALSE(r.saturated);
  EXPECT_EQ(net.stats().measured_delivered(), net.stats().measured_generated());
  // Injection keeps running during drain, so the network holds a bounded
  // steady-state population (~ N * load * latency), far from capacity.
  EXPECT_LT(net.flits_in_flight(), 10 * topo.num_endpoints());
}

TEST(Network, AcceptedTracksOfferedBelowSaturation) {
  sf::SlimFlyMMS topo(5);
  auto routing = make_routing(RoutingKind::Minimal, topo);
  auto traffic = make_uniform(topo.num_endpoints());
  SimConfig cfg = quick_config();
  SimResult r = simulate(topo, *routing.algorithm, *traffic, cfg, 0.3);
  EXPECT_FALSE(r.saturated);
  EXPECT_NEAR(r.accepted_load, 0.3, 0.05);
}

TEST(Network, LatencyIncreasesWithLoad) {
  sf::SlimFlyMMS topo(5);
  auto routing = make_routing(RoutingKind::Minimal, topo);
  SimConfig cfg = quick_config();
  auto factory = [&] { return make_uniform(topo.num_endpoints()); };
  auto points = load_sweep(topo, *routing.algorithm, factory, cfg,
                           {0.1, 0.5, 0.8}, false);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_LE(points[0].result.avg_latency, points[1].result.avg_latency);
  EXPECT_LE(points[1].result.avg_latency, points[2].result.avg_latency * 1.05);
}

TEST(Network, ValiantPathsAreLonger) {
  sf::SlimFlyMMS topo(5);
  auto min_routing = make_routing(RoutingKind::Minimal, topo);
  auto val_routing = make_routing(RoutingKind::Valiant, topo);
  auto traffic_a = make_uniform(topo.num_endpoints());
  auto traffic_b = make_uniform(topo.num_endpoints());
  SimConfig cfg = quick_config();
  SimResult rmin = simulate(topo, *min_routing.algorithm, *traffic_a, cfg, 0.05);
  SimResult rval = simulate(topo, *val_routing.algorithm, *traffic_b, cfg, 0.05);
  EXPECT_GT(rval.avg_latency, rmin.avg_latency);
}

TEST(Network, UgalRunsOnSlimFly) {
  sf::SlimFlyMMS topo(5);
  for (RoutingKind kind : {RoutingKind::UgalL, RoutingKind::UgalG}) {
    auto routing = make_routing(kind, topo);
    auto traffic = make_uniform(topo.num_endpoints());
    SimResult r = simulate(topo, *routing.algorithm, *traffic, quick_config(), 0.2);
    EXPECT_FALSE(r.saturated) << to_string(kind);
    EXPECT_GT(r.delivered, 0) << to_string(kind);
  }
}

TEST(Network, DragonflyUgalRuns) {
  auto df = Dragonfly::balanced(2);  // a=4, h=2, g=9, Nr=36, N=72
  auto routing = make_routing(RoutingKind::DragonflyUgalL, *df);
  auto traffic = make_uniform(df->num_endpoints());
  SimResult r = simulate(*df, *routing.algorithm, *traffic, quick_config(), 0.2);
  EXPECT_FALSE(r.saturated);
}

TEST(Network, FatTreeAncaRuns) {
  FatTree3 ft(4);  // paper-slim: 4 pods, N=64
  auto routing = make_routing(RoutingKind::FatTreeAnca, ft);
  auto traffic = make_uniform(ft.num_endpoints());
  SimResult r = simulate(ft, *routing.algorithm, *traffic, quick_config(), 0.3);
  EXPECT_FALSE(r.saturated);
  EXPECT_NEAR(r.accepted_load, 0.3, 0.05);
}

TEST(Network, NoDeadlockUnderAdversarialOverload) {
  // Overloaded worst-case traffic with minimal routing: the network must
  // saturate (report it) but keep delivering packets — VC ordering makes
  // deadlock impossible.
  sf::SlimFlyMMS topo(5);
  auto routing = make_routing(RoutingKind::Minimal, topo);
  auto traffic = make_worst_case_sf(topo);
  SimConfig cfg = quick_config();
  cfg.drain_cycles = 2000;
  SimResult r = simulate(topo, *routing.algorithm, *traffic, cfg, 0.9);
  EXPECT_TRUE(r.saturated);
  EXPECT_GT(r.delivered, 0);
}

TEST(Network, RejectsTooFewVcs) {
  sf::SlimFlyMMS topo(5);
  auto routing = make_routing(RoutingKind::Valiant, topo);  // needs 4 VCs
  auto traffic = make_uniform(topo.num_endpoints());
  SimConfig cfg = quick_config();
  cfg.num_vcs = 1;
  EXPECT_THROW(Network(topo, *routing.algorithm, *traffic, cfg, 0.1),
               std::invalid_argument);
}

TEST(Network, PortOfNeighborInverse) {
  sf::SlimFlyMMS topo(5);
  auto routing = make_routing(RoutingKind::Minimal, topo);
  auto traffic = make_uniform(topo.num_endpoints());
  Network net(topo, *routing.algorithm, *traffic, quick_config(), 0.0);
  const Graph& g = topo.graph();
  for (int r = 0; r < topo.num_routers(); r += 7) {
    const auto& nbrs = g.neighbors(r);
    for (int i = 0; i < static_cast<int>(nbrs.size()); ++i) {
      EXPECT_EQ(net.port_of_neighbor(r, nbrs[static_cast<std::size_t>(i)]), i);
    }
  }
  EXPECT_THROW(net.port_of_neighbor(0, 0), std::invalid_argument);
  // Out-of-range ids throw the same named error, never an OOB read.
  EXPECT_THROW(net.port_of_neighbor(-1, 0), std::invalid_argument);
  EXPECT_THROW(net.port_of_neighbor(0, topo.num_routers()),
               std::invalid_argument);
}

TEST(Network, PortOfNeighborSparseFallbackAboveDenseLimit) {
  // Above kDenseNeighborPortLimit routers the dense table is skipped and
  // lookups binary-search the adjacency list — same answers, same errors.
  Torus topo({13, 13, 13});  // 2197 routers > 2048
  ASSERT_GT(topo.num_routers(), Network::kDenseNeighborPortLimit);
  auto routing = make_routing(RoutingKind::Minimal, topo);
  auto traffic = make_uniform(topo.num_endpoints());
  SimConfig cfg = quick_config();
  cfg.num_vcs = routing.algorithm->max_hops();  // diameter 18 on this torus
  Network net(topo, *routing.algorithm, *traffic, cfg, 0.0);
  const Graph& g = topo.graph();
  for (int r = 0; r < topo.num_routers(); r += 97) {
    const auto& nbrs = g.neighbors(r);
    for (int i = 0; i < static_cast<int>(nbrs.size()); ++i) {
      EXPECT_EQ(net.port_of_neighbor(r, nbrs[static_cast<std::size_t>(i)]), i);
    }
  }
  EXPECT_THROW(net.port_of_neighbor(0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace slimfly::sim
