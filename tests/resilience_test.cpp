#include <gtest/gtest.h>

#include "analysis/metrics.hpp"
#include "analysis/resilience.hpp"
#include "sf/mms.hpp"
#include "topo/torus.hpp"

namespace slimfly::analysis {
namespace {

Graph ring(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  g.finalize();
  return g;
}

TEST(RemoveRandomLinks, RemovesExactCount) {
  Graph g = ring(20);
  Graph damaged = remove_random_links(g, 5, 1);
  EXPECT_EQ(damaged.num_edges(), 15);
  EXPECT_EQ(damaged.num_vertices(), 20);
}

TEST(RemoveRandomLinks, CapAtTotal) {
  Graph g = ring(10);
  Graph damaged = remove_random_links(g, 100, 1);
  EXPECT_EQ(damaged.num_edges(), 0);
}

TEST(RemoveRandomLinks, Deterministic) {
  Graph g = ring(20);
  auto a = remove_random_links(g, 7, 42).edges();
  auto b = remove_random_links(g, 7, 42).edges();
  EXPECT_EQ(a, b);
}

TEST(MaxFailures, RingIsFragile) {
  // Removing 10% of a 40-link ring (4 links) almost surely disconnects it.
  ResilienceOptions opts;
  opts.trials = 10;
  EXPECT_LE(max_failures_connected(ring(40), opts), 5);
}

TEST(MaxFailures, SlimFlyIsHighlyResilient) {
  // Table III: SF tolerates ~45% at N=256-class sizes; q=5 is smaller but
  // must clearly beat the torus.
  sf::SlimFlyMMS topo(5);
  ResilienceOptions opts;
  opts.trials = 8;
  int sf_level = max_failures_connected(topo.graph(), opts);
  Torus torus({4, 4, 4});
  int torus_level = max_failures_connected(torus.graph(), opts);
  EXPECT_GT(sf_level, torus_level);
  EXPECT_GE(sf_level, 30);
}

TEST(MaxFailuresDiameter, ZeroBudgetIsStrict) {
  // With budget 0 and a Moore graph, any removal that stretches a distance
  // fails: the tolerated fraction collapses to (near) zero.
  sf::SlimFlyMMS topo(5);
  ResilienceOptions opts;
  opts.trials = 6;
  int level = max_failures_diameter(topo.graph(), 0, opts);
  EXPECT_LE(level, 10);
}

TEST(MaxFailuresDiameter, BudgetTwoMatchesPaperSetup) {
  sf::SlimFlyMMS topo(5);
  ResilienceOptions opts;
  opts.trials = 6;
  int level = max_failures_diameter(topo.graph(), 2, opts);
  EXPECT_GE(level, 15);  // Section III-D2 reports ~40% at larger scale
  EXPECT_LT(level, 100);
}

TEST(MaxFailuresAvgDistance, MonotoneInBudget) {
  sf::SlimFlyMMS topo(5);
  ResilienceOptions opts;
  opts.trials = 6;
  int tight = max_failures_avg_distance(topo.graph(), 0.1, opts);
  int loose = max_failures_avg_distance(topo.graph(), 1.0, opts);
  EXPECT_LE(tight, loose);
}

TEST(MaxFailures, CustomPredicate) {
  // Survives iff at least 90% of vertices stay in one component.
  Graph g = ring(30);
  ResilienceOptions opts;
  opts.trials = 6;
  int level = max_failures(
      g, [](const Graph& damaged) { return largest_component(damaged) >= 27; },
      opts);
  EXPECT_GE(level, 0);
  EXPECT_LT(level, 100);
}

}  // namespace
}  // namespace slimfly::analysis
