// Router-parallel stepping: bit-identical results for any intra-point
// worker count, across routings (including per-hop adaptive FT-ANCA),
// scheduling modes, and a saturated network where a phase-ordering race
// would surface as reordered allocations.

#include <gtest/gtest.h>

#include <cstdlib>

#include "exp/experiment.hpp"
#include "sf/mms.hpp"
#include "sim/simulation.hpp"
#include "topo/fattree.hpp"
#include "topo/registry.hpp"

namespace slimfly::sim {
namespace {

SimConfig quick_config() {
  SimConfig cfg;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 400;
  cfg.drain_cycles = 4000;
  cfg.seed = 11;
  return cfg;
}

void expect_same_result(const SimResult& a, const SimResult& b,
                        const std::string& what) {
  // Byte-identical, not approximately equal: the phase/thread-safety
  // contract promises the worker count cannot leak into the simulation.
  EXPECT_EQ(a.avg_latency, b.avg_latency) << what;
  EXPECT_EQ(a.avg_network_latency, b.avg_network_latency) << what;
  EXPECT_EQ(a.p99_latency, b.p99_latency) << what;
  EXPECT_EQ(a.accepted_load, b.accepted_load) << what;
  EXPECT_EQ(a.delivered, b.delivered) << what;
  EXPECT_EQ(a.saturated, b.saturated) << what;
}

SimResult run_point(const Topology& topo, RoutingKind kind, double load,
                    int intra_threads, TrafficPattern* traffic = nullptr) {
  auto bundle = make_routing(kind, topo);
  std::unique_ptr<TrafficPattern> owned;
  if (!traffic) owned = make_uniform(topo.num_endpoints());
  SimConfig cfg = quick_config();
  cfg.intra_threads = intra_threads;
  return simulate(topo, *bundle.algorithm, traffic ? *traffic : *owned, cfg,
                  load);
}

TEST(NetworkParallel, EveryRoutingBitIdenticalAcrossIntraThreadCounts) {
  sf::SlimFlyMMS sf(5);
  for (RoutingKind kind : {RoutingKind::Minimal, RoutingKind::Valiant,
                           RoutingKind::UgalL, RoutingKind::UgalG}) {
    SimResult sequential = run_point(sf, kind, 0.3, 1);
    for (int intra : {2, 4, 7}) {
      expect_same_result(sequential, run_point(sf, kind, 0.3, intra),
                         to_string(kind) + " intra=" + std::to_string(intra));
    }
    // 0 = auto (hardware threads) must resolve to the same simulation too.
    expect_same_result(sequential, run_point(sf, kind, 0.3, 0),
                       to_string(kind) + " intra=auto");
  }
}

TEST(NetworkParallel, PerHopAdaptiveRoutingBitIdentical) {
  // FT-ANCA picks output ports from queue estimates during the allocation
  // phase — the contract's "own router only" read; a violation would show
  // up here as diverging port choices under sharding.
  FatTree3 ft(4);
  SimResult sequential = run_point(ft, RoutingKind::FatTreeAnca, 0.3, 1);
  for (int intra : {2, 4}) {
    expect_same_result(sequential,
                       run_point(ft, RoutingKind::FatTreeAnca, 0.3, intra),
                       "FT-ANCA intra=" + std::to_string(intra));
  }
}

TEST(NetworkParallel, SaturatedNetworkBitIdentical) {
  // Past saturation every buffer is contended and every cycle allocates at
  // nearly every router, so any phase-ordering race (a shard reading state
  // another shard already advanced) changes results with high probability.
  sf::SlimFlyMMS sf(5);
  auto make_traffic = [&] { return make_worst_case_sf(sf); };
  SimConfig cfg = quick_config();
  cfg.drain_cycles = 800;
  auto run_at = [&](int intra) {
    auto bundle = make_routing(RoutingKind::Minimal, sf);
    auto traffic = make_traffic();
    SimConfig c = cfg;
    c.intra_threads = intra;
    return simulate(sf, *bundle.algorithm, *traffic, c, 0.9);
  };
  SimResult sequential = run_at(1);
  EXPECT_TRUE(sequential.saturated);
  for (int intra : {2, 4}) {
    expect_same_result(sequential, run_at(intra),
                       "saturated intra=" + std::to_string(intra));
  }
}

TEST(NetworkParallel, StepLevelStateMatchesSequential) {
  // Beyond the SimResult summary: the full in-flight population and the
  // delivery counters agree cycle by cycle.
  sf::SlimFlyMMS sf(5);
  auto bundle_a = make_routing(RoutingKind::Minimal, sf);
  auto bundle_b = make_routing(RoutingKind::Minimal, sf);
  auto traffic_a = make_uniform(sf.num_endpoints());
  auto traffic_b = make_uniform(sf.num_endpoints());
  SimConfig cfg = quick_config();
  cfg.intra_threads = 1;
  Network sequential(sf, *bundle_a.algorithm, *traffic_a, cfg, 0.4);
  cfg.intra_threads = 4;
  Network sharded(sf, *bundle_b.algorithm, *traffic_b, cfg, 0.4);
  EXPECT_EQ(sharded.intra_threads(), 4u);
  for (int cycle = 0; cycle < 300; ++cycle) {
    sequential.step();
    sharded.step();
    if (cycle % 50 == 0) {
      EXPECT_EQ(sequential.flits_in_flight(), sharded.flits_in_flight())
          << "cycle " << cycle;
      EXPECT_EQ(sequential.stats().total_delivered(),
                sharded.stats().total_delivered())
          << "cycle " << cycle;
    }
  }
}

TEST(NetworkParallel, IntraThreadsResolution) {
  sf::SlimFlyMMS sf(5);  // 50 routers
  auto bundle = make_routing(RoutingKind::Minimal, sf);
  auto traffic = make_uniform(sf.num_endpoints());
  SimConfig cfg = quick_config();
  cfg.intra_threads = 1;
  EXPECT_EQ(Network(sf, *bundle.algorithm, *traffic, cfg, 0.1).intra_threads(),
            1u);
  cfg.intra_threads = 4096;  // capped by router count
  EXPECT_EQ(Network(sf, *bundle.algorithm, *traffic, cfg, 0.1).intra_threads(),
            50u);
  cfg.intra_threads = 0;  // auto resolves to >= 1
  EXPECT_GE(Network(sf, *bundle.algorithm, *traffic, cfg, 0.1).intra_threads(),
            1u);
  cfg.intra_threads = -3;  // nonsense means sequential
  EXPECT_EQ(Network(sf, *bundle.algorithm, *traffic, cfg, 0.1).intra_threads(),
            1u);
}

TEST(NetworkParallel, EngineSchedulingModesBitIdentical) {
  // The same spec through both engine scheduling modes — wide-grid
  // (across-point workers, sequential points) and deep-point (one point at
  // a time, router-parallel) — and the auto split, all byte-identical.
  exp::ExperimentSpec spec;
  spec.name = "sched";
  spec.loads = {0.1, 0.4};
  spec.config = quick_config();
  spec.series = {{"slimfly:q=5", "UGAL-L", "uniform", "SF"},
                 {"fattree:k=4", "FT-ANCA", "uniform", "FT"}};

  spec.config.intra_threads = 1;
  exp::ExperimentEngine across(4);
  auto wide = across.run(spec);

  spec.config.intra_threads = 4;
  exp::ExperimentEngine deep(4);
  auto narrow = deep.run(spec);

  spec.config.intra_threads = 0;
  exp::ExperimentEngine split(4);
  auto autosplit = split.run(spec);

  ASSERT_EQ(wide.size(), narrow.size());
  ASSERT_EQ(wide.size(), autosplit.size());
  for (std::size_t i = 0; i < wide.size(); ++i) {
    EXPECT_EQ(wide[i].seed, narrow[i].seed);
    expect_same_result(wide[i].result, narrow[i].result, "deep point " +
                       std::to_string(i));
    expect_same_result(wide[i].result, autosplit[i].result, "auto point " +
                       std::to_string(i));
  }
}

TEST(NetworkParallel, ExoticTopologiesBitIdenticalAcrossThreadMatrix) {
  // The Section 2 comparison families ride the topology-generic routing
  // stack; their randomized construction must not leak thread identity —
  // the full SF_THREADS x SF_INTRA_THREADS matrix reproduces the
  // single-threaded trajectory bit for bit.
  exp::ExperimentSpec spec;
  spec.name = "exotic";
  spec.loads = {0.1, 0.4};
  spec.config = quick_config();
  spec.series = {{"dln:n=36,k=6,p=2,seed=3", "UGAL-L", "uniform", "DLN"},
                 {"longhop:n=5,extra=2", "UGAL-L", "uniform", "LH"}};
  spec.config.intra_threads = 1;
  exp::ExperimentEngine base(1);
  auto want = base.run(spec);
  ASSERT_FALSE(want.empty());
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (int intra : {1, 2}) {
      if (threads == 1 && intra == 1) continue;  // the baseline itself
      exp::ExperimentSpec run = spec;
      run.config.intra_threads = intra;
      exp::ExperimentEngine engine(threads);
      auto got = engine.run(run);
      ASSERT_EQ(want.size(), got.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(want[i].seed, got[i].seed);
        expect_same_result(want[i].result, got[i].result,
                           "threads=" + std::to_string(threads) +
                               " intra=" + std::to_string(intra) + " point " +
                               std::to_string(i));
      }
    }
  }
}

TEST(NetworkParallel, SchedulePolicy) {
  exp::ExperimentEngine engine(8);
  // Wide grid, intra off: every worker goes across points.
  EXPECT_EQ(engine.schedule(100, 1), (std::pair<std::size_t, int>{8, 1}));
  // Explicit intra: across shrinks so across * intra <= threads, and intra
  // itself is capped by the engine's budget.
  EXPECT_EQ(engine.schedule(100, 4), (std::pair<std::size_t, int>{2, 4}));
  EXPECT_EQ(engine.schedule(100, 16), (std::pair<std::size_t, int>{1, 8}));
  // Negatives mean sequential, matching Network's resolution.
  EXPECT_EQ(engine.schedule(100, -1), (std::pair<std::size_t, int>{8, 1}));
  // Auto: wide grids stay across-point...
  EXPECT_EQ(engine.schedule(100, 0), (std::pair<std::size_t, int>{8, 1}));
  // ...while narrow grids split the budget over the few points.
  EXPECT_EQ(engine.schedule(2, 0), (std::pair<std::size_t, int>{2, 4}));
  EXPECT_EQ(engine.schedule(1, 0), (std::pair<std::size_t, int>{1, 8}));
}

TEST(NetworkParallel, OracleModesBitIdenticalAcrossThreadMatrix) {
  // Swapping the dense table for a per-family oracle (or the reverse) is a
  // pure memory decision: same seeds, byte-identical SimResults, across a
  // routing mix that exercises every oracle query path (sampled minimal
  // walks, UGAL candidate comparison, dragonfly group sampling, and the
  // compressed-BFS fallback on dln).
  exp::ExperimentSpec spec;
  spec.name = "oracle";
  spec.loads = {0.1, 0.4};
  spec.config = quick_config();
  spec.series = {{"slimfly:q=5", "UGAL-L", "uniform", "SF"},
                 {"dragonfly:p=2,a=4,h=2", "DF-UGAL-L", "uniform", "DF"},
                 {"fattree:k=4", "FT-ANCA", "uniform", "FT"},
                 {"dln:n=36,k=6,p=2,seed=3", "VAL", "uniform", "DLN"}};

  spec.config.oracle = OracleMode::Table;
  exp::ExperimentEngine engine(4);
  auto table = engine.run(spec);
  ASSERT_FALSE(table.empty());

  spec.config.oracle = OracleMode::Family;
  auto family = engine.run(spec);
  ASSERT_EQ(table.size(), family.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(table[i].seed, family[i].seed) << "point " << i;
    expect_same_result(table[i].result, family[i].result,
                       "family oracle point " + std::to_string(i));
  }

  // The per-series override spelling ("config": {"oracle": "family"} in a
  // suite file) must reach the same cells — and, like engine, must not
  // perturb the per-point seed stream.
  spec.config.oracle = OracleMode::Table;
  for (auto& s : spec.series) {
    s.config_overrides["oracle"] =
        static_cast<double>(OracleMode::Family);
  }
  auto per_series = engine.run(spec);
  ASSERT_EQ(table.size(), per_series.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(table[i].seed, per_series[i].seed) << "point " << i;
    expect_same_result(table[i].result, per_series[i].result,
                       "per-series oracle point " + std::to_string(i));
  }
}

TEST(NetworkParallel, OracleFromEnv) {
  setenv("SF_ORACLE", "family", 1);
  EXPECT_EQ(exp::oracle_from_env(), OracleMode::Family);
  setenv("SF_ORACLE", "table", 1);
  EXPECT_EQ(exp::oracle_from_env(), OracleMode::Table);
  setenv("SF_ORACLE", "auto", 1);
  EXPECT_EQ(exp::oracle_from_env(), OracleMode::Auto);
  setenv("SF_ORACLE", "junk", 1);  // tolerant: cannot change results
  EXPECT_EQ(exp::oracle_from_env(), OracleMode::Auto);
  unsetenv("SF_ORACLE");
  EXPECT_EQ(exp::oracle_from_env(), OracleMode::Auto);
}

TEST(NetworkParallel, IntraThreadsFromEnv) {
  setenv("SF_INTRA_THREADS", "3", 1);
  EXPECT_EQ(exp::intra_threads_from_env(), 3);
  setenv("SF_INTRA_THREADS", "0", 1);
  EXPECT_EQ(exp::intra_threads_from_env(), 0);
  setenv("SF_INTRA_THREADS", "junk", 1);
  EXPECT_EQ(exp::intra_threads_from_env(), 1);
  unsetenv("SF_INTRA_THREADS");
  EXPECT_EQ(exp::intra_threads_from_env(), 1);
}

}  // namespace
}  // namespace slimfly::sim
