#include <gtest/gtest.h>

#include "analysis/partition.hpp"
#include "sf/mms.hpp"
#include "topo/fattree.hpp"
#include "topo/hypercube.hpp"
#include "topo/torus.hpp"

namespace slimfly::analysis {
namespace {

TEST(Bisect, SidesBalanced) {
  Hypercube hc(6);
  auto result = bisect(hc.graph());
  int side0 = 0;
  for (int s : result.side) side0 += (s == 0);
  EXPECT_NEAR(side0, 32, 1);
  EXPECT_EQ(cut_of(hc.graph(), result.side), result.cut_edges);
}

TEST(Bisect, HypercubeClosedForm) {
  // Minimum bisection of an n-cube is 2^(n-1) (cut one dimension).
  for (int n : {4, 5, 6, 7}) {
    Hypercube hc(n);
    auto result = bisect(hc.graph(), 8, 3);
    EXPECT_EQ(result.cut_edges, 1 << (n - 1)) << "n=" << n;
  }
}

TEST(Bisect, Torus2DNearClosedForm) {
  // 8x8 torus: the optimal bisection cuts 2 columns of 8 wrap pairs = 16
  // links. Flat FM can stall in a 20-cut local optimum from blob-shaped
  // seeds; with enough multi-starts it must land within 25% of optimal.
  Torus t({8, 8});
  auto result = bisect(t.graph(), 24, 5);
  EXPECT_GE(result.cut_edges, 16);
  EXPECT_LE(result.cut_edges, 20);
}

TEST(Bisect, RingIsTwo) {
  Graph ring(16);
  for (int i = 0; i < 16; ++i) ring.add_edge(i, (i + 1) % 16);
  ring.finalize();
  EXPECT_EQ(bisect(ring).cut_edges, 2);
}

TEST(Bisect, TooSmallThrows) {
  Graph g(1);
  g.finalize();
  EXPECT_THROW(bisect(g), std::invalid_argument);
}

TEST(BisectionBandwidth, SlimFlyBeatsQuarterBandwidth) {
  // Paper Fig. 5c: SF clearly exceeds the N/4-links class (DF, FBF) —
  // its relative bisection is over 0.3 links/endpoint at 10 Gb/s each.
  sf::SlimFlyMMS topo(7);  // N = 588
  double bb = bisection_bandwidth_gbps(topo, 10.0, 8);
  double full = topo.num_endpoints() / 2.0 * 10.0;
  // Paper Fig. 5c: SF sits well above the N/4 class (DF, FBF-3); measured
  // ~0.59 of full bisection at this scale.
  EXPECT_GT(bb, 0.5 * full);
  EXPECT_LE(bb, 1.2 * full);
}

TEST(BisectionBandwidth, FatTreeIsFull) {
  // FT-3 has full bisection: N/2 links * 10 Gb/s. The FM bound must come
  // out at or above it (transit cores give the partitioner slack, so allow
  // a modest overshoot but not a huge one).
  FatTree3 ft(4, FatTreeVariant::PaperSlim);
  double bb = bisection_bandwidth_gbps(ft, 10.0, 8);
  double full = ft.num_endpoints() / 2.0 * 10.0;
  EXPECT_GE(bb, 0.9 * full);
}

TEST(BisectionBandwidth, HypercubeExact) {
  Hypercube hc(6);  // p = 1: BB = N/2 links
  double bb = bisection_bandwidth_gbps(hc, 10.0, 8, 3);
  EXPECT_DOUBLE_EQ(bb, 32 * 10.0);
}

}  // namespace
}  // namespace slimfly::analysis
