#include <gtest/gtest.h>

#include "sim/buffer.hpp"

namespace slimfly::sim {
namespace {

Packet make_packet(std::int64_t id) {
  Packet p;
  p.id = id;
  return p;
}

TEST(VcBuffer, FifoOrder) {
  VcBuffer buf(4);
  for (int i = 0; i < 4; ++i) buf.push(make_packet(i));
  EXPECT_TRUE(buf.full());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(buf.front().id, i);
    EXPECT_EQ(buf.pop().id, i);
  }
  EXPECT_TRUE(buf.empty());
}

TEST(VcBuffer, OverflowThrows) {
  VcBuffer buf(1);
  buf.push(make_packet(0));
  EXPECT_THROW(buf.push(make_packet(1)), std::logic_error);
}

TEST(VcBuffer, UnderflowThrows) {
  VcBuffer buf(1);
  EXPECT_THROW(buf.pop(), std::logic_error);
  EXPECT_THROW(buf.front(), std::logic_error);
}

TEST(VcBuffer, ZeroCapacityAlwaysFull) {
  VcBuffer buf(0);
  EXPECT_TRUE(buf.full());
  EXPECT_THROW(buf.push(make_packet(0)), std::logic_error);
}

}  // namespace
}  // namespace slimfly::sim
