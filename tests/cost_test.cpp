#include <gtest/gtest.h>

#include "cost/cables.hpp"
#include "cost/costmodel.hpp"
#include "cost/layout.hpp"
#include "cost/power.hpp"
#include "sf/mms.hpp"
#include "topo/dragonfly.hpp"
#include "topo/torus.hpp"

namespace slimfly::cost {
namespace {

TEST(CableModel, PaperCoefficients) {
  CableModel fdr = cable_fdr10();
  // Section VI-B1 regression values at 40 Gb/s.
  EXPECT_NEAR(fdr.electric_cost(1.0), (0.4079 + 0.5771) * 40.0, 1e-9);
  EXPECT_NEAR(fdr.optical_cost(10.0), (0.919 + 2.7452) * 40.0, 1e-9);
}

TEST(CableModel, OpticalWinsAtLength) {
  for (const CableModel& m : {cable_fdr10(), cable_qdr56(), cable_elpeus10()}) {
    double cross = m.crossover_meters();
    EXPECT_GT(cross, 1.0) << m.name;
    EXPECT_LT(cross, 15.0) << m.name;
    EXPECT_LT(m.electric_cost(1.0), m.optical_cost(1.0)) << m.name;
    EXPECT_GT(m.electric_cost(30.0), m.optical_cost(30.0)) << m.name;
  }
}

TEST(RouterCost, LinearWithFloor) {
  RouterCostModel m;
  EXPECT_NEAR(m.cost(43), 350.4 * 43 - 892.3, 1e-9);
  EXPECT_GE(m.cost(1), 350.4);  // floored, never negative
}

TEST(RackGrid, NearSquare) {
  RackGrid grid(19);
  EXPECT_EQ(grid.cols, 5);
  EXPECT_DOUBLE_EQ(grid.distance_m(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(grid.distance_m(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(grid.distance_m(0, 6), 2.0);  // (1,1)
}

TEST(Power, MatchesTableIVForSlimFly) {
  // Table IV: SF q=19 at 8.02 W per endpoint with k=43 ports. Our port
  // count is k'=29 + p=15 = 44 in-use ports, giving 722*44*2.8/10830 =
  // 8.22 W — within 3% of the paper's value (which uses k=43).
  sf::SlimFlyMMS topo(19);
  PowerModel power;
  EXPECT_NEAR(power.watts_per_endpoint(topo), 8.22, 0.15);
}

TEST(Power, DragonflyMatchesTableIV) {
  // DF (p=11, a=22, h=11, g=45): Table IV reports 10.9 W per endpoint.
  Dragonfly df(11, 22, 11, 45);
  PowerModel power;
  EXPECT_NEAR(power.watts_per_endpoint(df), 10.9, 0.4);
}

TEST(Cost, SlimFlyCheaperThanComparableDragonfly) {
  // The headline claim: ~25% cost and power advantage over a Dragonfly of
  // comparable N and identical k (Table IV's rightmost columns).
  sf::SlimFlyMMS sf_topo(19);          // N=10830, k=44
  Dragonfly df(11, 22, 11, 45);        // N=10890, k=43
  auto cables = cable_fdr10();
  auto sf_cost = evaluate_cost(sf_topo, cables);
  auto df_cost = evaluate_cost(df, cables);
  double advantage = 1.0 - sf_cost.cost_per_endpoint / df_cost.cost_per_endpoint;
  EXPECT_GT(advantage, 0.10) << "SF=" << sf_cost.cost_per_endpoint
                             << " DF=" << df_cost.cost_per_endpoint;
  EXPECT_LT(advantage, 0.45);
  // Power advantage ~25%.
  double power_adv = 1.0 - sf_cost.watts_per_endpoint / df_cost.watts_per_endpoint;
  EXPECT_GT(power_adv, 0.15);
  EXPECT_LT(power_adv, 0.35);
}

TEST(Cost, ToriAreAllElectric) {
  Torus t({4, 4, 4});
  auto summary = enumerate_cables(t, cable_fdr10());
  EXPECT_EQ(summary.fiber_count, 0);
  EXPECT_EQ(summary.electric_count, t.graph().num_edges());
}

TEST(Cost, CableCountsConserveEdges) {
  sf::SlimFlyMMS topo(7);
  auto summary = enumerate_cables(topo, cable_fdr10());
  EXPECT_EQ(summary.electric_count + summary.fiber_count,
            topo.graph().num_edges());
  EXPECT_EQ(summary.endpoint_count, topo.num_endpoints());
  EXPECT_GT(summary.total_cost(), 0.0);
}

TEST(Cost, EvaluateCostFieldsConsistent) {
  sf::SlimFlyMMS topo(5);
  auto cost = evaluate_cost(topo, cable_fdr10());
  EXPECT_EQ(cost.num_endpoints, topo.num_endpoints());
  EXPECT_NEAR(cost.total_cost, cost.router_cost + cost.cable_cost, 1e-6);
  EXPECT_NEAR(cost.cost_per_endpoint * cost.num_endpoints, cost.total_cost, 1e-6);
}

TEST(Cost, LowRadixTopologiesCostMorePerNode) {
  // Table IV: tori/hypercubes cost far more per endpoint than SF because
  // p = 1 means one router per endpoint.
  sf::SlimFlyMMS sf_topo(5);   // N=200
  Torus torus({6, 6, 6});      // N=216
  auto cables = cable_fdr10();
  auto sf_cost = evaluate_cost(sf_topo, cables);
  auto torus_cost = evaluate_cost(torus, cables);
  EXPECT_GT(torus_cost.cost_per_endpoint, sf_cost.cost_per_endpoint);
}

}  // namespace
}  // namespace slimfly::cost
