#include <gtest/gtest.h>

#include "sim/channel.hpp"

namespace slimfly::sim {
namespace {

TEST(DelayLine, NotReadyBeforeTime) {
  DelayLine<int> line(4);
  line.push(10, 42);
  EXPECT_FALSE(line.pop_ready(9).has_value());
  auto v = line.pop_ready(10);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(line.empty());
}

TEST(DelayLine, FifoWithConstantLatency) {
  DelayLine<int> line(4);
  line.push(5, 1);
  line.push(6, 2);
  line.push(7, 3);
  EXPECT_EQ(line.size(), 3u);
  EXPECT_EQ(*line.pop_ready(100), 1);
  EXPECT_EQ(*line.pop_ready(100), 2);
  EXPECT_EQ(*line.pop_ready(100), 3);
  EXPECT_FALSE(line.pop_ready(100).has_value());
}

TEST(DelayLine, HeadOfLineBlocksLaterItems) {
  // Constant latency means the head is always the earliest; a not-ready
  // head implies nothing behind it is ready either.
  DelayLine<int> line(4);
  line.push(10, 1);
  line.push(11, 2);
  EXPECT_FALSE(line.pop_ready(9).has_value());
  EXPECT_EQ(*line.pop_ready(10), 1);
  EXPECT_FALSE(line.pop_ready(10).has_value());
}

TEST(DelayLine, FixedCapacityOverflowThrows) {
  // Lines are sized once at wire() from the flow-control occupancy bound;
  // pushing past that bound is a protocol violation, not a resize request.
  DelayLine<int> line(2);
  line.push(5, 1);
  line.push(5, 2);
  EXPECT_THROW(line.push(5, 3), std::logic_error);
  EXPECT_EQ(*line.pop_ready(5), 1);
  line.push(6, 4);  // slot freed; wrap-around reuse
  EXPECT_EQ(*line.pop_ready(6), 2);
  EXPECT_EQ(*line.pop_ready(6), 4);
}

}  // namespace
}  // namespace slimfly::sim
