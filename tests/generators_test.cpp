// MMS generator sets: the diameter-2 conditions (A1/A2/B/S of DESIGN.md)
// must hold for every supported q, and the delta = +1 canonical sets must
// match the paper's quadratic-residue formula.

#include <gtest/gtest.h>

#include <algorithm>

#include "gf/gf.hpp"
#include "sf/generators.hpp"

namespace slimfly::sf {
namespace {

TEST(DeltaOfQ, ResidueClasses) {
  EXPECT_EQ(delta_of_q(5), 1);    // 5 = 4*1 + 1
  EXPECT_EQ(delta_of_q(7), -1);   // 7 = 4*2 - 1
  EXPECT_EQ(delta_of_q(8), 0);    // 8 = 4*2
  EXPECT_EQ(delta_of_q(19), -1);
  EXPECT_EQ(delta_of_q(25), 1);
  EXPECT_THROW(delta_of_q(6), std::invalid_argument);
}

TEST(IsValidMmsQ, AcceptsThePapersFamily) {
  // The 11 balanced configs <= 20k endpoints (paper Section VII-A).
  for (int q : {4, 5, 7, 8, 9, 11, 13, 16, 17, 19, 23}) {
    EXPECT_TRUE(is_valid_mms_q(q)) << q;
  }
  EXPECT_FALSE(is_valid_mms_q(2));   // q = 2 (mod 4)
  EXPECT_FALSE(is_valid_mms_q(6));   // not a prime power
  EXPECT_FALSE(is_valid_mms_q(12));  // not a prime power
  EXPECT_FALSE(is_valid_mms_q(15));  // not a prime power
}

class GeneratorConditions : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorConditions, VerifiedForAllSupportedQ) {
  gf::Field field(GetParam());
  GeneratorSets gens = make_generators(field);
  EXPECT_TRUE(check_diameter2_conditions(field, gens));
  // Size fixes the network radix k' = (3q - delta)/2.
  int q = GetParam();
  int delta = delta_of_q(q);
  EXPECT_EQ(static_cast<int>(gens.x.size()), (q - delta) / 2);
  EXPECT_EQ(static_cast<int>(gens.xprime.size()), (q - delta) / 2);
}

TEST_P(GeneratorConditions, SetsAreSymmetric) {
  gf::Field field(GetParam());
  GeneratorSets gens = make_generators(field);
  EXPECT_TRUE(is_symmetric_set(field, gens.x));
  EXPECT_TRUE(is_symmetric_set(field, gens.xprime));
}

INSTANTIATE_TEST_SUITE_P(SupportedQ, GeneratorConditions,
                         ::testing::Values(3, 4, 5, 7, 8, 9, 11, 13, 16, 17, 19,
                                           23, 25, 27, 29, 32, 37, 41, 43, 47,
                                           49, 53, 59, 64));

TEST(Generators, Delta1MatchesPaperFormula) {
  // For q = 5: xi = 2, X = {1, 4} (even powers), X' = {2, 3} (odd powers) —
  // the paper's worked example in Section II-B1d.
  gf::Field field(5);
  GeneratorSets gens = make_generators(field);
  std::vector<int> x = gens.x, xp = gens.xprime;
  std::sort(x.begin(), x.end());
  std::sort(xp.begin(), xp.end());
  EXPECT_EQ(x, (std::vector<int>{1, 4}));
  EXPECT_EQ(xp, (std::vector<int>{2, 3}));
}

TEST(Generators, Delta1IsQuadraticResidues) {
  // X must be exactly the nonzero squares for q = 1 (mod 4).
  for (int q : {13, 17, 29}) {
    gf::Field field(q);
    GeneratorSets gens = make_generators(field);
    std::vector<bool> is_square(static_cast<std::size_t>(q), false);
    for (int a = 1; a < q; ++a) is_square[static_cast<std::size_t>(field.mul(a, a))] = true;
    for (int e : gens.x) EXPECT_TRUE(is_square[static_cast<std::size_t>(e)]) << q;
    for (int e : gens.xprime) EXPECT_FALSE(is_square[static_cast<std::size_t>(e)]) << q;
  }
}

TEST(Generators, CoverageIsTightForDelta1) {
  // delta = +1: X and X' partition GF(q)^* (no overlap).
  gf::Field field(13);
  GeneratorSets gens = make_generators(field);
  std::vector<int> all = gens.x;
  all.insert(all.end(), gens.xprime.begin(), gens.xprime.end());
  std::sort(all.begin(), all.end());
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
  EXPECT_EQ(static_cast<int>(all.size()), 12);
}

TEST(Generators, CoverageOverlapsByOnePairForDeltaMinus1) {
  // delta = -1: |X| + |X'| = q + 1, so exactly one symmetric pair overlaps.
  gf::Field field(19);
  GeneratorSets gens = make_generators(field);
  std::vector<int> overlap;
  for (int e : gens.x) {
    if (std::find(gens.xprime.begin(), gens.xprime.end(), e) != gens.xprime.end()) {
      overlap.push_back(e);
    }
  }
  EXPECT_EQ(overlap.size(), 2u);  // {t, -t}
  if (overlap.size() == 2) {
    EXPECT_EQ(field.neg(overlap[0]), overlap[1]);
  }
}

TEST(Generators, RejectsUnsupportedQ) {
  gf::Field f2(2);
  EXPECT_THROW(make_generators(f2), std::invalid_argument);
}

TEST(CoversWithSums, DetectsNonCovering) {
  gf::Field field(13);
  // {1, 12} = {±1}: sums {2, 0, 11}; covered = {1,2,11,12} — far from all.
  EXPECT_FALSE(covers_with_sums(field, {1, 12}));
}

}  // namespace
}  // namespace slimfly::sf
