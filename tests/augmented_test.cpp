#include <gtest/gtest.h>

#include "analysis/metrics.hpp"
#include "sf/mms.hpp"
#include "topo/augmented.hpp"

namespace slimfly {
namespace {

TEST(Augmented, AddsRequestedPorts) {
  sf::SlimFlyMMS base(5);
  AugmentedTopology aug(base, 2);
  // Every base edge kept, about extra_ports/2 * Nr new edges.
  EXPECT_GT(aug.graph().num_edges(), base.graph().num_edges());
  std::int64_t added = aug.graph().num_edges() - base.graph().num_edges();
  EXPECT_NEAR(static_cast<double>(added), 50.0, 5.0);  // 2*50/2
  for (const auto& [u, v] : base.graph().edges()) {
    EXPECT_TRUE(aug.graph().has_edge(u, v));
  }
  EXPECT_LE(aug.graph().max_degree(), base.k_net() + 2);
}

TEST(Augmented, InheritsPackaging) {
  sf::SlimFlyMMS base(5);
  AugmentedTopology aug(base, 1);
  EXPECT_EQ(aug.num_racks(), base.num_racks());
  EXPECT_EQ(aug.concentration(), base.concentration());
  EXPECT_EQ(aug.num_endpoints(), base.num_endpoints());
  for (int r = 0; r < base.num_routers(); ++r) {
    EXPECT_EQ(aug.rack_of_router(r), base.rack_of_router(r));
  }
}

TEST(Augmented, IntraRackOnlyStaysLocal) {
  sf::SlimFlyMMS base(7);
  AugmentedTopology aug(base, 2, /*intra_rack_only=*/true);
  for (const auto& [u, v] : aug.graph().edges()) {
    if (base.graph().has_edge(u, v)) continue;  // original cable
    EXPECT_EQ(base.rack_of_router(u), base.rack_of_router(v));
  }
}

TEST(Augmented, ImprovesAverageDistance) {
  // The whole point of Section VII-A: extra random channels shorten paths.
  sf::SlimFlyMMS base(7);
  AugmentedTopology aug(base, 4);
  EXPECT_LT(analysis::average_endpoint_distance(aug),
            analysis::average_endpoint_distance(base));
  EXPECT_LE(analysis::diameter(aug.graph()), 2);
}

TEST(Augmented, Deterministic) {
  sf::SlimFlyMMS base(5);
  AugmentedTopology a(base, 2, false, 9);
  AugmentedTopology b(base, 2, false, 9);
  EXPECT_EQ(a.graph().edges(), b.graph().edges());
}

TEST(Augmented, RejectsZeroPorts) {
  sf::SlimFlyMMS base(5);
  EXPECT_THROW(AugmentedTopology(base, 0), std::invalid_argument);
}

}  // namespace
}  // namespace slimfly
