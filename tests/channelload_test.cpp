#include <gtest/gtest.h>

#include "analysis/channelload.hpp"
#include "sf/mms.hpp"
#include "topo/hypercube.hpp"

namespace slimfly::analysis {
namespace {

TEST(ChannelLoad, AnalyticMatchesPaperBalance) {
  // Section II-B2: balanced p makes l == Nr/p... i.e. injection rate p*Nr
  // equals total sustainable throughput; here check p ~ ceil(k'/2).
  for (int q : {5, 7, 11, 13, 17, 19}) {
    sf::SlimFlyMMS topo(q);
    int p = balanced_concentration_d2(topo.num_routers(), topo.k_net());
    EXPECT_NEAR(p, (topo.k_net() + 1) / 2, 1.0) << "q=" << q;
  }
}

TEST(ChannelLoad, AnalyticFormulaValue) {
  // Direct evaluation for q=19: l = (2*722 - 29 - 2) * p^2 / 29.
  double l = analytic_channel_load_d2(722, 29, 15);
  EXPECT_NEAR(l, (2.0 * 722 - 31) * 225 / 29.0, 1e-9);
}

TEST(ChannelLoad, MeasuredMatchesAnalyticOnSlimFly) {
  // The analytic model assumes uniform all-to-all with minimal routing;
  // the measured Brandes-style count must agree closely (same assumptions,
  // exact arithmetic) on a vertex-transitive diameter-2 graph.
  sf::SlimFlyMMS topo(7);
  auto measured = measured_channel_load(topo);
  double analytic =
      analytic_channel_load_d2(topo.num_routers(), topo.k_net(), topo.concentration());
  EXPECT_NEAR(measured.average, analytic, analytic * 0.02);
}

TEST(ChannelLoad, MaxCloseToAverageOnSymmetricGraph) {
  // MMS graphs are highly symmetric: no channel should carry far more than
  // the mean under uniform traffic.
  sf::SlimFlyMMS topo(5);
  auto measured = measured_channel_load(topo);
  EXPECT_LT(measured.maximum, measured.average * 1.6);
}

TEST(ChannelLoad, HypercubeUniform) {
  // On the n-cube with p=1 every channel carries the same load by symmetry:
  // average == maximum.
  Hypercube hc(4);
  auto measured = measured_channel_load(hc);
  EXPECT_NEAR(measured.maximum, measured.average, measured.average * 0.01);
}

}  // namespace
}  // namespace slimfly::analysis
