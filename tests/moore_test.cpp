#include <gtest/gtest.h>

#include "analysis/moore.hpp"
#include "sf/mms.hpp"

namespace slimfly::analysis {
namespace {

TEST(MooreBound, ClosedForms) {
  // D=2: 1 + k' + k'(k'-1) = k'^2 + 1.
  EXPECT_EQ(moore_bound(7, 2), 50);     // Hoffman-Singleton is tight
  EXPECT_EQ(moore_bound(57, 2), 3250);  // the open Moore graph case
  EXPECT_EQ(moore_bound(3, 2), 10);     // Petersen graph
  // D=1: complete graph.
  EXPECT_EQ(moore_bound(5, 1), 6);
  // D=3: 1 + k'(1 + (k'-1) + (k'-1)^2).
  EXPECT_EQ(moore_bound(3, 3), 1 + 3 * (1 + 2 + 4));
}

TEST(MooreBound, PaperFigure5aAnchor) {
  // "For k' = 96, MMS has 8192 routers, only 12% worse than the upper
  // bound (9217)" — Section II-B3.
  EXPECT_EQ(moore_bound(96, 2), 9217);
  EXPECT_NEAR(moore_fraction(8192, 96, 2), 0.888, 0.01);
}

TEST(MooreBound, HoffmanSingletonIsOptimal) {
  sf::SlimFlyMMS topo(5);
  EXPECT_DOUBLE_EQ(moore_fraction(topo.num_routers(), topo.k_net(), 2), 1.0);
}

TEST(MooreBound, SlimFlyStaysNearOptimal) {
  // All supported q keep >= 2/3 of the Moore bound (the 2q^2 / (k'^2+1)
  // ratio tends to 8/9 for delta = 0).
  for (int q : {5, 7, 9, 11, 13, 17, 19, 23}) {
    sf::SlimFlyMMS topo(q);
    double f = moore_fraction(topo.num_routers(), topo.k_net(), 2);
    EXPECT_GT(f, 0.66) << "q=" << q;
    EXPECT_LE(f, 1.0) << "q=" << q;
  }
}

TEST(MooreBound, InvalidArguments) {
  EXPECT_THROW(moore_bound(0, 2), std::invalid_argument);
  EXPECT_THROW(moore_bound(5, 0), std::invalid_argument);
}

}  // namespace
}  // namespace slimfly::analysis
