#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace slimfly {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterations) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, SingleWorkerFallsBackSequential) {
  ThreadPool pool(1);
  std::vector<int> order;
  parallel_for(pool, 10, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForChecked, RethrowsFirstExceptionAfterRunningAll) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(
      parallel_for_checked(pool, hits.size(),
                           [&](std::size_t i) {
                             hits[i].fetch_add(1);
                             if (i == 13) throw std::runtime_error("boom");
                           }),
      std::runtime_error);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);  // the throw poisons only i=13
}

TEST(ParallelForChecked, NoThrowBehavesLikeParallelFor) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  parallel_for_checked(pool, 100, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
}

TEST(Barrier, SynchronizesRepeatedRounds) {
  // Workers iterate rounds with a barrier between them; if the barrier
  // failed to hold back a fast worker, it would observe a stale round
  // counter written by a straggler.
  constexpr std::size_t kWorkers = 4;
  constexpr int kRounds = 50;
  ThreadPool pool(kWorkers - 1);
  Barrier barrier(kWorkers);
  std::vector<std::vector<int>> seen(kWorkers);
  std::atomic<int> round_sum{0};
  run_region(pool, kWorkers, [&](std::size_t w) {
    for (int round = 0; round < kRounds; ++round) {
      round_sum.fetch_add(1);
      barrier.arrive_and_wait();
      // Every worker has contributed to this round before anyone reads.
      seen[w].push_back(round_sum.load());
      barrier.arrive_and_wait();
    }
  });
  for (std::size_t w = 0; w < kWorkers; ++w) {
    ASSERT_EQ(seen[w].size(), static_cast<std::size_t>(kRounds));
    for (int round = 0; round < kRounds; ++round) {
      EXPECT_EQ(seen[w][static_cast<std::size_t>(round)],
                static_cast<int>(kWorkers) * (round + 1))
          << "worker " << w << " round " << round;
    }
  }
}

TEST(RunRegion, RunsEveryWorkerExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(4);
  run_region(pool, 4, [&](std::size_t w) { hits[w].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunRegion, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  std::size_t calls = 0;
  run_region(pool, 1, [&](std::size_t w) {
    EXPECT_EQ(w, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(Rng, DeterministicStreams) {
  Rng a(1), b(1), c(2);
  EXPECT_EQ(a.next_u32(), b.next_u32());
  // Different seeds diverge (overwhelmingly likely on first draws).
  bool diverged = false;
  for (int i = 0; i < 4; ++i) {
    if (a.next_u32() != c.next_u32()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(3);
  for (int bound : {1, 2, 7, 100}) {
    for (int t = 0; t < 200; ++t) {
      auto v = rng.next_below(static_cast<std::uint32_t>(bound));
      EXPECT_LT(v, static_cast<std::uint32_t>(bound));
    }
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(4);
  for (int t = 0; t < 100; ++t) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, UniformityRoughCheck) {
  Rng rng(5);
  int buckets[10] = {};
  for (int t = 0; t < 10000; ++t) {
    ++buckets[static_cast<int>(rng.next_double() * 10)];
  }
  for (int b : buckets) {
    EXPECT_GT(b, 800);
    EXPECT_LT(b, 1200);
  }
}

}  // namespace
}  // namespace slimfly
