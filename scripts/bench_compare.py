#!/usr/bin/env python3
"""Soft-compare two BENCH_hotpath.json files and print a markdown report.

Usage: bench_compare.py OLD.json NEW.json

Joins the two batteries on cell name and prints per-cell Mcycles/s deltas
(cycle and active engines), the peak-RSS delta, and the intra-scaling curve
side by side. REPORT ONLY: always exits 0 when both files parse (CI hardware
varies run to run, so throughput is recorded, never gated — the same policy
as `sweep diff` wall time). A missing or unreadable OLD file also exits 0
with a note, so the very first run of a new CI branch does not fail.

Intended consumer: the perf-smoke CI job appends the output to
$GITHUB_STEP_SUMMARY after downloading the previous run's BENCH_hotpath
artifact. Works just as well locally:

    python3 scripts/bench_compare.py /tmp/prev.json BENCH_hotpath.json
"""

import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def fmt_rate(v):
    # 3 significant digits: cell rates span orders of magnitude (a
    # fleet-scale point's Mcycles/s is ~1e-4; a tiny cell's is ~1e-1).
    return f"{v:.3g}" if isinstance(v, (int, float)) else "-"


def fmt_delta(old, new):
    """Signed percent change, or '-' when either side is missing/zero."""
    if not isinstance(old, (int, float)) or not isinstance(new, (int, float)):
        return "-"
    if old == 0:
        return "-"
    return f"{(new - old) / old * 100.0:+.1f}%"


def fmt_bytes(v):
    if not isinstance(v, (int, float)) or v <= 0:
        return "-"
    return f"{v / 2**30:.2f} GiB"


def cell_map(doc):
    return {c.get("name", f"cell{i}"): c
            for i, c in enumerate(doc.get("cells", []))}


def engine_rate(cell, engine):
    return cell.get("engines", {}).get(engine, {}).get("mcycles_per_sec")


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip().splitlines()[2])
        return 2
    old_path, new_path = sys.argv[1], sys.argv[2]

    try:
        new = load(new_path)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read new file {new_path}: {e}")
        return 2  # the file this CI run just wrote must exist and parse

    print("### Hot-path throughput vs previous run (report only)\n")
    try:
        old = load(old_path)
    except (OSError, ValueError) as e:
        print(f"_No previous BENCH_hotpath to compare against "
              f"({old_path}: {e}). First run on this branch?_")
        return 0

    old_cells, new_cells = cell_map(old), cell_map(new)
    print("| cell | cycle Mcyc/s (old → new) | Δ | active Mcyc/s (old → new)"
          " | Δ |")
    print("|---|---|---|---|---|")
    for name, cell in new_cells.items():
        prev = old_cells.get(name)
        for_row = []
        for engine in ("cycle", "active"):
            o = engine_rate(prev, engine) if prev else None
            n = engine_rate(cell, engine)
            for_row.append(f"{fmt_rate(o)} → {fmt_rate(n)}")
            for_row.append(fmt_delta(o, n))
        print(f"| {name} | {for_row[0]} | {for_row[1]} | {for_row[2]} |"
              f" {for_row[3]} |")
    dropped = sorted(set(old_cells) - set(new_cells))
    if dropped:
        print(f"\n_Cells present before but not now: {', '.join(dropped)}_")

    print("\n| cell | peak RSS (old → new) | Δ |")
    print("|---|---|---|")
    for name, cell in new_cells.items():
        prev = old_cells.get(name)
        o = prev.get("peak_rss_bytes") if prev else None
        n = cell.get("peak_rss_bytes")
        print(f"| {name} | {fmt_bytes(o)} → {fmt_bytes(n)} |"
              f" {fmt_delta(o, n)} |")

    old_scaling = {p.get("workers"): p for p in old.get("intra_scaling", [])}
    new_scaling = new.get("intra_scaling", [])
    if new_scaling:
        print("\n| intra workers | Mcyc/s (old → new) | Δ |")
        print("|---|---|---|")
        for p in new_scaling:
            w = p.get("workers")
            o = old_scaling.get(w, {}).get("mcycles_per_sec")
            n = p.get("mcycles_per_sec")
            print(f"| {w} | {fmt_rate(o)} → {fmt_rate(n)} | {fmt_delta(o, n)} |")

    print("\n_Throughput and RSS are reported, never gated: CI hardware"
          " varies run to run. Investigate consistent multi-run trends, not"
          " single deltas._")
    return 0


if __name__ == "__main__":
    sys.exit(main())
