#!/usr/bin/env python3
"""Fail on dead relative links in markdown files.

Usage: check_links.py FILE.md [FILE.md ...]

Checks every inline markdown link/image whose target is not an absolute
URL, mailto, or pure fragment: the referenced path must exist relative to
the file containing the link (fragments are stripped, not resolved).
Exits 1 listing every dead link, 0 when all resolve.
"""

import os
import re
import sys

# Inline links and images: [text](target) / ![alt](target). Reference-style
# definitions are rare in this repo and intentionally out of scope.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def dead_links(md_path):
    base = os.path.dirname(os.path.abspath(md_path))
    dead = []
    with open(md_path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            for target in LINK_RE.findall(line):
                if target.startswith(SKIP_PREFIXES):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                if not os.path.exists(os.path.join(base, path)):
                    dead.append((lineno, target))
    return dead


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for md_path in argv[1:]:
        if not os.path.exists(md_path):
            print(f"{md_path}: file not found", file=sys.stderr)
            failures += 1
            continue
        for lineno, target in dead_links(md_path):
            print(f"{md_path}:{lineno}: dead link -> {target}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"{failures} dead link(s)", file=sys.stderr)
        return 1
    print(f"all relative links resolve in {len(argv) - 1} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
