#!/usr/bin/env python3
"""sf_lint.py — repo-specific determinism and hot-path invariant linter.

The simulator's load-bearing invariants (bit-identical results across the
SF_THREADS x SF_INTRA_THREADS x SF_ENGINE x SF_ORACLE matrix, zero
steady-state heap allocations in Network::step(), per-endpoint/per-router
PCG32 streams) are enforced dynamically by the golden byte-equality tests
and the allocator-counting hotpath_test. This linter enforces the *static*
side of the same contract — classes of bug the stock tools cannot express.
Rules (full rationale in docs/CORRECTNESS.md):

  rng            No global/platform RNG or wall-clock source outside
                 util/rng.hpp: rand()/srand()/std::mt19937/
                 std::random_device/time()/std::chrono::*_clock::now()
                 would silently break the RNG-stream discipline.
  hot-alloc      No allocating construct inside a function annotated
                 /* SF_HOT */ (the Network::step() call graph): new/malloc,
                 allocating container calls (push_back, resize, insert, …),
                 std::string construction, std::vector construction.
                 Throw statements are exempt (an exception is by definition
                 off the steady-state path).
  unordered-iter No iteration over std::unordered_map/std::unordered_set in
                 code that feeds point_seed, stats, or trajectory output
                 (src/sim, src/exp, src/analysis): hash-table iteration
                 order is an implementation detail, and double accumulation
                 in that order is platform-dependent.
  stoi           No stoi/atoi-family parsing outside the vetted registry
                 helpers (the PR-4 class of bug: stoi accepts signs,
                 whitespace, 0x, and silently truncates).
  float-stats    No `float` anywhere in src/: statistics must accumulate in
                 double or integer counters (float would quantize latency
                 sums long before the golden harness could notice).

Waivers, both requiring a justification:
  * inline:      <code>  // sf-lint: allow(<rule>) <why>
  * central:     scripts/sf_lint_allow.txt lines of the form
                 rule|path|line-substring|why
    Unused central entries are hard errors, so the allowlist can never go
    stale.

Exit status: 0 clean, 1 findings (printed as file:line: [rule] message),
2 internal/usage error. `--self-test` runs the checker over
tests/lint_fixtures/ and verifies every rule fires on its violating
fixture and stays silent on the clean twin.

Implementation: tokenizer + regex with scope awareness (comments and
string/char literals are blanked preserving offsets; SF_HOT function
extents and throw statements are found by brace/semicolon tracking).
libclang is NOT required — this must run anywhere CI can run python3.
"""

import argparse
import pathlib
import re
import sys

HOT_MARKER = "/* SF_HOT */"
ALLOW_RE = re.compile(r"//\s*sf-lint:\s*allow\(([a-z-]+)\)\s*(.*)")

# ---------------------------------------------------------------------------
# Tokenizer: blank comments and string/char literals, preserving offsets.
# ---------------------------------------------------------------------------


def strip_code(text):
    """Returns `text` with comments and string/char literal *contents*
    replaced by spaces (newlines kept), so rule regexes only ever match
    real code tokens at their original offsets."""
    out = list(text)
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = i
            while j < n and text[j] != "\n":
                out[j] = " "
                j += 1
            i = j
        elif c == "/" and nxt == "*":
            j = i
            end = text.find("*/", i + 2)
            stop = n if end < 0 else end + 2
            while j < stop:
                if text[j] != "\n":
                    out[j] = " "
                j += 1
            i = stop
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    out[j] = " "
                    if j + 1 < n and text[j + 1] != "\n":
                        out[j + 1] = " "
                    j += 2
                    continue
                if text[j] != "\n":
                    out[j] = " "
                j += 1
            i = j + 1
        else:
            i += 1
    return "".join(out)


def line_starts(text):
    starts = [0]
    for i, c in enumerate(text):
        if c == "\n":
            starts.append(i + 1)
    return starts


def line_of(offset, starts):
    """1-based line number of a character offset (binary search)."""
    lo, hi = 0, len(starts) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if starts[mid] <= offset:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1


def hot_regions(text, stripped):
    """[(start, end)] character ranges of function bodies annotated with
    /* SF_HOT */ (marker anywhere before the signature; the region is the
    brace-balanced body that follows)."""
    regions = []
    pos = 0
    while True:
        at = text.find(HOT_MARKER, pos)
        if at < 0:
            break
        pos = at + len(HOT_MARKER)
        open_brace = stripped.find("{", pos)
        if open_brace < 0:
            break
        depth = 0
        end = None
        for i in range(open_brace, len(stripped)):
            if stripped[i] == "{":
                depth += 1
            elif stripped[i] == "}":
                depth -= 1
                if depth == 0:
                    end = i + 1
                    break
        if end is None:
            end = len(stripped)
        regions.append((at, end))
        pos = end
    return regions


def throw_ranges(stripped):
    """Character ranges of `throw …;` statements (hot-alloc exempts them:
    constructing an exception message allocates, and exceptions are by
    definition off the steady-state path)."""
    ranges = []
    for m in re.finditer(r"\bthrow\b", stripped):
        depth = 0
        end = len(stripped)
        for i in range(m.end(), len(stripped)):
            c = stripped[i]
            if c in "([{":
                depth += 1
            elif c in ")]}":
                depth -= 1
            elif c == ";" and depth <= 0:
                end = i + 1
                break
        ranges.append((m.start(), end))
    return ranges


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

RNG_PATTERNS = [
    (re.compile(r"\b(?:std::)?(?:rand|srand|rand_r|drand48|srand48|lrand48|"
                r"mrand48|random)\s*\("),
     "global C RNG (use util/rng.hpp streams)"),
    (re.compile(r"\bstd::random_device\b"),
     "std::random_device is nondeterministic (use util/rng.hpp streams)"),
    (re.compile(r"\bstd::(?:mt19937|mt19937_64|minstd_rand0?|ranlux\w+|"
                r"knuth_b|default_random_engine)\b"),
     "std <random> engine (use util/rng.hpp streams)"),
    (re.compile(r"\bstd::(?:uniform_int_distribution|"
                r"uniform_real_distribution|bernoulli_distribution|"
                r"normal_distribution)\b"),
     "std <random> distribution (platform-varying; use Rng helpers)"),
    (re.compile(r"\b(?:std::)?time\s*\("),
     "wall clock (results must not depend on time)"),
    # Any X::now() call — catches chrono clocks reached through type
    # aliases (`using clock = std::chrono::steady_clock; clock::now()`).
    (re.compile(r"\b[\w:]+::now\s*\("),
     "wall clock (only whitelisted timing sites may read it)"),
    (re.compile(r"\b(?:gettimeofday|clock_gettime|getentropy)\s*\("),
     "platform clock/entropy source"),
]

HOT_ALLOC_PATTERNS = [
    (re.compile(r"\bnew\b"), "operator new in SF_HOT function"),
    (re.compile(r"\b(?:std::)?(?:malloc|calloc|realloc)\s*\("),
     "heap allocation in SF_HOT function"),
    (re.compile(r"\bmake_(?:unique|shared)\b"),
     "heap allocation in SF_HOT function"),
    (re.compile(r"\.(?:push_back|emplace_back|emplace|resize|reserve|assign|"
                r"insert|shrink_to_fit)\s*\("),
     "allocating container call in SF_HOT function"),
    (re.compile(r"\bstd::(?:string\b|to_string\b)"),
     "std::string churn in SF_HOT function"),
    (re.compile(r"\bstd::vector\s*<"),
     "std::vector construction in SF_HOT function"),
]

STOI_PATTERN = re.compile(
    r"\b(?:std::)?(?:stoi|stol|stoll|stoul|stoull|atoi|atol|atoll|strtol|"
    r"strtoll|strtoul|strtoull|sscanf)\s*\(")

FLOAT_PATTERN = re.compile(r"\bfloat\b")

UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*?>\s+(\w+)\s*"
    r"[;({=]", re.S)

# Directories whose code feeds point_seed, stats, or trajectory output.
UNORDERED_SCOPE = ("src/sim/", "src/exp/", "src/analysis/")

# The one file allowed to touch RNG machinery.
RNG_HOME = "src/util/rng.hpp"


class Finding:
    def __init__(self, path, line, rule, message, text):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.text = text

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def inline_waivers(raw_lines):
    """line -> (rule, justification) for `// sf-lint: allow(rule) why`."""
    waivers = {}
    for i, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if m:
            waivers[i] = (m.group(1), m.group(2).strip())
    return waivers


def lint_file(path, rel, all_rules=False):
    """Returns (findings, errors). `rel` is the posix path used in scoping
    and diagnostics; `all_rules` disables path-based rule scoping (used by
    the fixture self-test)."""
    text = path.read_text()
    stripped = strip_code(text)
    starts = line_starts(stripped)
    raw_lines = text.split("\n")
    waivers = inline_waivers(raw_lines)
    findings = []
    errors = []

    def emit(offset, rule, message):
        ln = line_of(offset, starts)
        waiver = waivers.get(ln)
        if waiver and waiver[0] == rule:
            if not waiver[1]:
                errors.append(f"{rel}:{ln}: sf-lint allow({rule}) waiver "
                              "has no justification")
            return
        findings.append(Finding(rel, ln, rule, message,
                                raw_lines[ln - 1].strip()))

    # rng — everywhere except the RNG home itself.
    if all_rules or rel != RNG_HOME:
        for pattern, message in RNG_PATTERNS:
            for m in pattern.finditer(stripped):
                emit(m.start(), "rng", message)

    # hot-alloc — inside /* SF_HOT */ bodies, minus throw statements.
    regions = hot_regions(text, stripped)
    if regions:
        throws = throw_ranges(stripped)
        # Receivers with fixed-capacity storage are exempt from the
        # container-call patterns: anything declared InlinePath or
        # FixedRing<...> in this file, plus the conventional `path`
        # member/local (Packet::path is an InlinePath). push_back on these
        # writes a preallocated slot — overflow throws, never allocates.
        # LazyRing<...> receivers are exempt too: their logical capacity is
        # fixed at wire() (overflow throws, like FixedRing) and physical
        # growth is the sanctioned pool-backed settling path — it draws
        # slabs from the preloaded SlabPool and stops at the high-water
        # mark, with the dynamic zero-steady-state-allocation guarantee
        # enforced by tests/hotpath_test.cpp.
        # GrowRing is deliberately NOT exempt: its amortized growth is
        # allowed at exactly one audited site (the endpoint source queue),
        # which carries an explicit waiver.
        fixed_cap = set(re.findall(r"\bInlinePath\b[&\s]*(\w+)", stripped))
        fixed_cap.update(
            re.findall(r"\b(?:Fixed|Lazy)Ring\s*<[^;{}>]*>\s*&?\s*(\w+)",
                       stripped))
        fixed_cap.add("path")

        def in_throw(offset):
            return any(s <= offset < e for s, e in throws)

        def receiver_of(offset):
            m = re.search(r"([A-Za-z_]\w*)$", stripped[:offset])
            return m.group(1) if m else ""

        for start, end in regions:
            segment = stripped[start:end]
            for pattern, message in HOT_ALLOC_PATTERNS:
                for m in pattern.finditer(segment):
                    at = start + m.start()
                    if in_throw(at):
                        continue
                    if (segment[m.start()] == "."
                            and receiver_of(at) in fixed_cap):
                        continue
                    # std::vector<T>& / <T>* is a reference to existing
                    # storage, not a construction.
                    if m.group(0).startswith("std::vector"):
                        depth = 0
                        tail = ""
                        for c in segment[m.end() - 1:]:
                            if c == "<":
                                depth += 1
                            elif c == ">":
                                depth -= 1
                                if depth == 0:
                                    continue
                            elif depth == 0 and not c.isspace():
                                tail = c
                                break
                        if tail in ("&", "*"):
                            continue
                    emit(at, "hot-alloc", message)

    # unordered-iter — only where hash order could reach output.
    if all_rules or rel.startswith(UNORDERED_SCOPE):
        names = set(UNORDERED_DECL.findall(stripped))
        for name in sorted(names):
            iter_patterns = [
                re.compile(r"for\s*\([^;)]*:\s*" + re.escape(name) + r"\b"),
                # .end()/.cend() alone is a lookup sentinel (it != m.end()),
                # not traversal — only begin-family calls indicate iteration.
                re.compile(r"\b" + re.escape(name) +
                           r"\.(?:begin|cbegin|rbegin|crbegin)\s*\("),
            ]
            for pattern in iter_patterns:
                for m in pattern.finditer(stripped):
                    emit(m.start(), "unordered-iter",
                         f"iteration over unordered container '{name}' "
                         "(hash order is nondeterministic)")

    # stoi — everywhere (the vetted helpers live in the allowlist).
    for m in STOI_PATTERN.finditer(stripped):
        emit(m.start(), "stoi",
             "stoi/atoi-family parsing (use the vetted registry to_int "
             "helpers; see topo/registry.cpp)")

    # float-stats — everywhere.
    for m in FLOAT_PATTERN.finditer(stripped):
        emit(m.start(), "float-stats",
             "float arithmetic (stats must accumulate in double or "
             "integer counters)")

    return findings, errors


# ---------------------------------------------------------------------------
# Central allowlist
# ---------------------------------------------------------------------------


def load_allowlist(path):
    entries = []
    if not path.exists():
        return entries
    for i, line in enumerate(path.read_text().split("\n"), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|")
        if len(parts) != 4 or not all(p.strip() for p in parts):
            raise SystemExit(f"{path}:{i}: allowlist entries are "
                             "rule|path|line-substring|why (4 non-empty "
                             "fields)")
        entries.append({"rule": parts[0].strip(), "path": parts[1].strip(),
                        "substr": parts[2].strip(), "why": parts[3].strip(),
                        "where": f"{path}:{i}", "used": False})
    return entries


def apply_allowlist(findings, entries):
    kept = []
    for f in findings:
        waived = False
        for e in entries:
            if (e["rule"] == f.rule and e["path"] == f.path
                    and e["substr"] in f.text):
                e["used"] = True
                waived = True
                break
        if not waived:
            kept.append(f)
    return kept


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


def scan_tree(root, allowlist_path):
    files = sorted(root.glob("src/**/*.hpp")) + sorted(root.glob("src/**/*.cpp"))
    if not files:
        print(f"sf_lint: no sources under {root}/src", file=sys.stderr)
        return 2
    entries = load_allowlist(allowlist_path)
    all_findings = []
    all_errors = []
    for path in files:
        rel = path.relative_to(root).as_posix()
        findings, errors = lint_file(path, rel)
        all_findings.extend(findings)
        all_errors.extend(errors)
    all_findings = apply_allowlist(all_findings, entries)
    for e in entries:
        if not e["used"]:
            all_errors.append(f"{e['where']}: stale allowlist entry "
                              f"({e['rule']}|{e['path']}|{e['substr']}) — "
                              "nothing matches it; delete it")
    for f in all_findings:
        print(f)
    for e in all_errors:
        print(e)
    if all_findings or all_errors:
        print(f"sf_lint: {len(all_findings)} finding(s), "
              f"{len(all_errors)} error(s) over {len(files)} files")
        return 1
    print(f"sf_lint: clean ({len(files)} files)")
    return 0


def self_test(root):
    fixtures = root / "tests" / "lint_fixtures"
    rules = ["rng", "hot-alloc", "unordered-iter", "stoi", "float-stats"]
    failures = []
    for rule in rules:
        stem = rule.replace("-", "_")
        violating = fixtures / f"{stem}_violation.cpp"
        clean = fixtures / f"{stem}_clean.cpp"
        for fixture in (violating, clean):
            if not fixture.exists():
                failures.append(f"missing fixture {fixture}")
        if failures:
            continue
        v_findings, v_errors = lint_file(
            violating, violating.relative_to(root).as_posix(), all_rules=True)
        fired = {f.rule for f in v_findings}
        if rule not in fired:
            failures.append(f"{violating.name}: rule {rule} did not fire")
        if fired - {rule}:
            failures.append(f"{violating.name}: unexpected rules fired: "
                            f"{sorted(fired - {rule})}")
        c_findings, c_errors = lint_file(
            clean, clean.relative_to(root).as_posix(), all_rules=True)
        if c_findings:
            failures.append(f"{clean.name}: should be clean but got: " +
                            "; ".join(str(f) for f in c_findings))
        for err in v_errors + c_errors:
            failures.append(err)
    # The waiver fixture: a violation with an inline justification must pass,
    # one with an empty justification must error.
    waived = fixtures / "waiver_ok.cpp"
    if waived.exists():
        findings, errors = lint_file(
            waived, waived.relative_to(root).as_posix(), all_rules=True)
        if findings or errors:
            failures.append(f"{waived.name}: inline waiver did not suppress: "
                            + "; ".join(map(str, findings + errors)))
    unjustified = fixtures / "waiver_unjustified.cpp"
    if unjustified.exists():
        findings, errors = lint_file(
            unjustified, unjustified.relative_to(root).as_posix(),
            all_rules=True)
        if not errors:
            failures.append(f"{unjustified.name}: empty waiver justification "
                            "was not rejected")
    if failures:
        for f in failures:
            print(f"sf_lint self-test FAIL: {f}")
        return 1
    print(f"sf_lint self-test: all {len(rules)} rules fire on their "
          "violating fixture and stay silent on the clean twin")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Slim Fly repo determinism/hot-path linter "
                    "(rules: docs/CORRECTNESS.md)")
    default_root = pathlib.Path(__file__).resolve().parent.parent
    parser.add_argument("--root", default=str(default_root),
                        help="repository root (default: the repo containing "
                             "this script, so invocation cwd never matters)")
    parser.add_argument("--allowlist", default=None,
                        help="central allowlist "
                             "(default: <root>/scripts/sf_lint_allow.txt)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule against tests/lint_fixtures/")
    args = parser.parse_args()
    root = pathlib.Path(args.root).resolve()
    if args.self_test:
        return self_test(root)
    allowlist = (pathlib.Path(args.allowlist) if args.allowlist
                 else root / "scripts" / "sf_lint_allow.txt")
    return scan_tree(root, allowlist)


if __name__ == "__main__":
    sys.exit(main())
