#pragma once
// Distance metrics on router graphs: BFS, diameter, average distance
// (paper Sections III-A and III-B, Figure 1, Table II).

#include <cstdint>
#include <vector>

#include "topo/graph.hpp"
#include "topo/topology.hpp"

namespace slimfly::analysis {

/// Hop distances from `source` to every vertex; -1 for unreachable.
std::vector<int> bfs_distances(const Graph& g, int source);

/// Exact diameter via all-pairs BFS; -1 if the graph is disconnected.
int diameter(const Graph& g);

/// Eccentricity of one vertex; -1 if it cannot reach every vertex.
int eccentricity(const Graph& g, int source);

/// Average router-to-router hop distance over all ordered vertex pairs
/// (excluding self pairs); -1.0 if disconnected.
double average_distance(const Graph& g);

/// Average network hops between distinct endpoints under uniform traffic
/// and minimal routing (Figure 1): endpoint pairs on the same router count
/// as 0 hops. Only endpoint-bearing routers are weighted.
double average_endpoint_distance(const Topology& topo);

/// True iff the graph is connected (n == 0 counts as connected).
bool is_connected(const Graph& g);

/// Largest connected component size.
int largest_component(const Graph& g);

/// Number of vertex pairs at each distance from `source`'s BFS (helper for
/// channel-load reasoning and tests).
std::vector<std::int64_t> distance_histogram(const Graph& g);

}  // namespace slimfly::analysis
