#pragma once
// Graph bisection for the bisection-bandwidth comparison (paper Section
// III-C, Figure 5c). The paper approximates SF and DLN bisections with
// METIS; this module is a from-scratch substitute: multi-start
// Fiduccia–Mattheyses refinement over random and BFS-region initial
// partitions. On structured graphs with known closed-form bisections
// (hypercube, torus) it reproduces the exact values (verified in tests).

#include <cstdint>
#include <vector>

#include "topo/graph.hpp"
#include "topo/topology.hpp"

namespace slimfly::analysis {

struct BisectionResult {
  std::vector<int> side;     ///< 0/1 per vertex; sizes differ by at most 1
  std::int64_t cut_edges = 0;
};

/// Minimum-cut balanced bisection estimate (upper bound on the true cut).
BisectionResult bisect(const Graph& g, int num_starts = 8, std::uint64_t seed = 1);

/// Cut size of a given assignment (test helper).
std::int64_t cut_of(const Graph& g, const std::vector<int>& side);

/// Bisection bandwidth in Gb/s: cut links between endpoint-balanced halves
/// times the per-link rate (the paper assumes 10 Gb/s). For topologies with
/// transit routers (fat tree) the balance constraint applies to
/// endpoint-bearing routers; transit routers may land on either side.
double bisection_bandwidth_gbps(const Topology& topo, double link_gbps = 10.0,
                                int num_starts = 8, std::uint64_t seed = 1);

}  // namespace slimfly::analysis
