#pragma once
// Moore bound (paper Section II-A): the maximum number of radix-k' routers
// a network of diameter D can contain, Nr <= 1 + k' * sum_{i=0}^{D-1} (k'-1)^i.

#include <cstdint>

namespace slimfly::analysis {

/// Moore bound on router count for network radix k_net and diameter d.
std::int64_t moore_bound(int k_net, int d);

/// Fraction of the Moore bound achieved by a network with num_routers
/// routers of network radix k_net and diameter d.
double moore_fraction(std::int64_t num_routers, int k_net, int d);

}  // namespace slimfly::analysis
