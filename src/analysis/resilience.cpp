#include "analysis/resilience.hpp"

#include <algorithm>
#include <atomic>

#include "analysis/metrics.hpp"
#include "util/rng.hpp"

namespace slimfly::analysis {

Graph remove_random_links(const Graph& g, std::int64_t remove_count,
                          std::uint64_t seed) {
  auto edges = g.edges();
  Rng rng(seed);
  std::shuffle(edges.begin(), edges.end(), rng);
  if (remove_count > static_cast<std::int64_t>(edges.size())) {
    remove_count = static_cast<std::int64_t>(edges.size());
  }
  Graph out(g.num_vertices());
  for (std::size_t i = static_cast<std::size_t>(remove_count); i < edges.size(); ++i) {
    out.add_edge(edges[i].first, edges[i].second);
  }
  out.finalize();
  return out;
}

int max_failures(const Graph& g,
                 const std::function<bool(const Graph&)>& survives,
                 const ResilienceOptions& opts) {
  std::int64_t total = g.num_edges();
  int last_ok = 0;
  for (int percent = opts.step_percent; percent < 100; percent += opts.step_percent) {
    std::int64_t remove = total * percent / 100;
    int ok = 0;
    for (int t = 0; t < opts.trials; ++t) {
      Graph damaged = remove_random_links(
          g, remove, opts.seed + static_cast<std::uint64_t>(percent) * 1000 +
                         static_cast<std::uint64_t>(t));
      if (survives(damaged)) ++ok;
    }
    if (static_cast<double>(ok) < opts.majority * opts.trials) break;
    last_ok = percent;
  }
  return last_ok;
}

int max_failures_connected(const Graph& g, const ResilienceOptions& opts) {
  return max_failures(g, [](const Graph& damaged) { return is_connected(damaged); },
                      opts);
}

int max_failures_diameter(const Graph& g, int budget, const ResilienceOptions& opts) {
  int base = diameter(g);
  return max_failures(
      g,
      [base, budget](const Graph& damaged) {
        int d = diameter(damaged);
        return d >= 0 && d <= base + budget;
      },
      opts);
}

int max_failures_avg_distance(const Graph& g, double budget,
                              const ResilienceOptions& opts) {
  double base = average_distance(g);
  return max_failures(
      g,
      [base, budget](const Graph& damaged) {
        double d = average_distance(damaged);
        return d >= 0.0 && d <= base + budget;
      },
      opts);
}

}  // namespace slimfly::analysis
