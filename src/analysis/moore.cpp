#include "analysis/moore.hpp"

#include <stdexcept>

namespace slimfly::analysis {

std::int64_t moore_bound(int k_net, int d) {
  if (k_net < 1 || d < 1) throw std::invalid_argument("moore_bound: bad arguments");
  std::int64_t sum = 0;
  std::int64_t term = 1;  // (k'-1)^i
  for (int i = 0; i < d; ++i) {
    sum += term;
    term *= (k_net - 1);
  }
  return 1 + k_net * sum;
}

double moore_fraction(std::int64_t num_routers, int k_net, int d) {
  return static_cast<double>(num_routers) /
         static_cast<double>(moore_bound(k_net, d));
}

}  // namespace slimfly::analysis
