#pragma once
// Exact connectivity analysis via max-flow (Edmonds-Karp on unit-capacity
// edges). The paper attributes Slim Fly's resiliency to "high path
// diversity" and its expander structure (Sections III-D and IX); this
// module quantifies that claim exactly:
//   * edge_disjoint_paths(u, v)  — Menger path diversity between routers,
//   * edge_connectivity()        — global min cut (worst-case cable cut),
// both exact, not sampled.

#include "topo/graph.hpp"

namespace slimfly::analysis {

/// Maximum number of edge-disjoint u-v paths (== min u-v edge cut).
int edge_disjoint_paths(const Graph& g, int source, int sink);

/// Global edge connectivity: min over v != 0 of the (0, v) edge cut.
/// (Correct because some global min cut separates vertex 0 from somebody.)
int edge_connectivity(const Graph& g);

}  // namespace slimfly::analysis
