#include "analysis/partition.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "util/rng.hpp"

namespace slimfly::analysis {

namespace {

/// One Fiduccia–Mattheyses refinement run from a given initial assignment.
/// `weight` is 1 for vertices that count toward the balance constraint and
/// 0 for free (transit) vertices.
struct FmRunner {
  const Graph& g;
  const std::vector<int>& weight;
  std::vector<int> side;
  int total_weight = 0;
  int side0_weight = 0;

  FmRunner(const Graph& graph, const std::vector<int>& w, std::vector<int> initial)
      : g(graph), weight(w), side(std::move(initial)) {
    for (int v = 0; v < g.num_vertices(); ++v) {
      total_weight += weight[static_cast<std::size_t>(v)];
      if (side[static_cast<std::size_t>(v)] == 0) {
        side0_weight += weight[static_cast<std::size_t>(v)];
      }
    }
  }

  std::int64_t current_cut() const { return cut_of(g, side); }

  /// Runs FM passes until a pass yields no improvement; returns final cut.
  std::int64_t refine() {
    std::int64_t best = current_cut();
    for (int pass = 0; pass < 64; ++pass) {
      std::int64_t after = one_pass(best);
      if (after >= best) break;
      best = after;
    }
    return best;
  }

 private:
  bool balance_ok(int new_side0_weight) const {
    // Moves may wander one unit outside perfect balance so FM can swap
    // vertices; only tightly balanced states are *recorded* (see one_pass).
    int lo = total_weight / 2 - 1;
    int hi = total_weight - lo;
    return new_side0_weight >= lo && new_side0_weight <= hi;
  }

  bool tightly_balanced() const {
    // side0 in {floor(W/2), ceil(W/2)} — the bisection definition.
    return side0_weight == total_weight / 2 ||
           side0_weight == total_weight - total_weight / 2;
  }

  std::int64_t one_pass(std::int64_t start_cut) {
    int n = g.num_vertices();
    std::vector<int> gain(static_cast<std::size_t>(n), 0);
    std::vector<bool> locked(static_cast<std::size_t>(n), false);
    int max_deg = g.max_degree();
    // Bucket array with lazy deletion: bucket[gain + max_deg] holds vertex
    // candidates; stale entries (gain changed or locked) are skipped on pop.
    std::vector<std::vector<int>> buckets(static_cast<std::size_t>(2 * max_deg + 1));
    auto push = [&](int v) {
      buckets[static_cast<std::size_t>(gain[static_cast<std::size_t>(v)] + max_deg)]
          .push_back(v);
    };
    for (int v = 0; v < n; ++v) {
      int external = 0;
      for (int w : g.neighbors(v)) {
        if (side[static_cast<std::size_t>(w)] != side[static_cast<std::size_t>(v)]) {
          ++external;
        }
      }
      gain[static_cast<std::size_t>(v)] = 2 * external - g.degree(v);
      push(v);
    }

    std::int64_t cut = start_cut;
    std::int64_t best_cut = start_cut;
    std::vector<int> moves;
    moves.reserve(static_cast<std::size_t>(n));
    std::size_t best_prefix = 0;

    for (int step = 0; step < n; ++step) {
      // Pop the highest-gain movable vertex.
      int chosen = -1;
      for (int b = 2 * max_deg; b >= 0 && chosen < 0; --b) {
        auto& bucket = buckets[static_cast<std::size_t>(b)];
        while (!bucket.empty()) {
          int v = bucket.back();
          if (locked[static_cast<std::size_t>(v)] ||
              gain[static_cast<std::size_t>(v)] + max_deg != b) {
            bucket.pop_back();
            continue;
          }
          int w = weight[static_cast<std::size_t>(v)];
          int delta = side[static_cast<std::size_t>(v)] == 0 ? -w : w;
          if (!balance_ok(side0_weight + delta)) {
            bucket.pop_back();  // cannot move now; will be re-pushed on gain update
            continue;
          }
          bucket.pop_back();
          chosen = v;
          break;
        }
      }
      if (chosen < 0) break;

      // Apply the move.
      int v = chosen;
      cut -= gain[static_cast<std::size_t>(v)];
      int w = weight[static_cast<std::size_t>(v)];
      side0_weight += side[static_cast<std::size_t>(v)] == 0 ? -w : w;
      side[static_cast<std::size_t>(v)] ^= 1;
      locked[static_cast<std::size_t>(v)] = true;
      moves.push_back(v);
      if (cut < best_cut && tightly_balanced()) {
        best_cut = cut;
        best_prefix = moves.size();
      }
      // Update neighbour gains.
      for (int u : g.neighbors(v)) {
        if (locked[static_cast<std::size_t>(u)]) continue;
        if (side[static_cast<std::size_t>(u)] == side[static_cast<std::size_t>(v)]) {
          gain[static_cast<std::size_t>(u)] -= 2;  // v now internal to u
        } else {
          gain[static_cast<std::size_t>(u)] += 2;
        }
        push(u);
      }
    }

    // Roll back to the best prefix.
    for (std::size_t i = moves.size(); i > best_prefix; --i) {
      int v = moves[i - 1];
      int w = weight[static_cast<std::size_t>(v)];
      side0_weight += side[static_cast<std::size_t>(v)] == 0 ? -w : w;
      side[static_cast<std::size_t>(v)] ^= 1;
    }
    return best_cut;
  }
};

std::vector<int> random_balanced(const Graph& g, const std::vector<int>& weight,
                                 Rng& rng) {
  int n = g.num_vertices();
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  std::shuffle(order.begin(), order.end(), rng);
  int total = 0;
  for (int v = 0; v < n; ++v) total += weight[static_cast<std::size_t>(v)];
  std::vector<int> side(static_cast<std::size_t>(n), 1);
  int acc = 0;
  for (int v : order) {
    if (acc < total / 2) {
      side[static_cast<std::size_t>(v)] = 0;
      acc += weight[static_cast<std::size_t>(v)];
    }
  }
  return side;
}

std::vector<int> bfs_region(const Graph& g, const std::vector<int>& weight,
                            Rng& rng) {
  int n = g.num_vertices();
  int total = 0;
  for (int v = 0; v < n; ++v) total += weight[static_cast<std::size_t>(v)];
  std::vector<int> side(static_cast<std::size_t>(n), 1);
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::queue<int> queue;
  int start = rng.next_int(0, n - 1);
  queue.push(start);
  seen[static_cast<std::size_t>(start)] = true;
  int acc = 0;
  while (!queue.empty() && acc < total / 2) {
    int v = queue.front();
    queue.pop();
    side[static_cast<std::size_t>(v)] = 0;
    acc += weight[static_cast<std::size_t>(v)];
    for (int w : g.neighbors(v)) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        queue.push(w);
      }
    }
  }
  return side;
}

BisectionResult bisect_weighted(const Graph& g, const std::vector<int>& weight,
                                int num_starts, std::uint64_t seed) {
  if (g.num_vertices() < 2) throw std::invalid_argument("bisect: graph too small");
  Rng rng(seed);
  BisectionResult best;
  best.cut_edges = std::numeric_limits<std::int64_t>::max();
  for (int s = 0; s < num_starts; ++s) {
    std::vector<int> initial = (s % 2 == 0) ? bfs_region(g, weight, rng)
                                            : random_balanced(g, weight, rng);
    FmRunner runner(g, weight, std::move(initial));
    std::int64_t cut = runner.refine();
    if (cut < best.cut_edges) {
      best.cut_edges = cut;
      best.side = runner.side;
    }
  }
  return best;
}

}  // namespace

std::int64_t cut_of(const Graph& g, const std::vector<int>& side) {
  std::int64_t cut = 0;
  for (const auto& [u, v] : g.edges()) {
    if (side[static_cast<std::size_t>(u)] != side[static_cast<std::size_t>(v)]) ++cut;
  }
  return cut;
}

BisectionResult bisect(const Graph& g, int num_starts, std::uint64_t seed) {
  std::vector<int> weight(static_cast<std::size_t>(g.num_vertices()), 1);
  return bisect_weighted(g, weight, num_starts, seed);
}

double bisection_bandwidth_gbps(const Topology& topo, double link_gbps,
                                int num_starts, std::uint64_t seed) {
  std::vector<int> weight(static_cast<std::size_t>(topo.num_routers()), 0);
  for (int r = 0; r < topo.num_endpoint_routers(); ++r) {
    weight[static_cast<std::size_t>(r)] = 1;
  }
  auto result = bisect_weighted(topo.graph(), weight, num_starts, seed);
  return static_cast<double>(result.cut_edges) * link_gbps;
}

}  // namespace slimfly::analysis
