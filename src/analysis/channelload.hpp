#pragma once
// Channel-load model (paper Section II-B2): the average number of minimal
// routes per channel under all-to-all steady-state traffic, the balanced
// concentration derived from it, and a measured counterpart computed by
// splitting shortest-path flow evenly over all minimal next hops.

#include <vector>

#include "topo/graph.hpp"
#include "topo/topology.hpp"

namespace slimfly::analysis {

/// Analytic average channel load for a diameter-2 network with Nr routers
/// of network radix k_net and concentration p:
///   l = (2 Nr - k' - 2) p^2 / k'                 (Section II-B2)
double analytic_channel_load_d2(int num_routers, int k_net, int concentration);

/// Balanced concentration p ~= k' Nr / (2 Nr - k' - 2) (~ ceil(k'/2)).
int balanced_concentration_d2(int num_routers, int k_net);

struct ChannelLoadStats {
  double average = 0.0;  ///< mean load over directed channels
  double maximum = 0.0;  ///< most loaded channel
};

/// Measured channel load: every ordered endpoint pair contributes one unit
/// of flow, split evenly across all minimal paths (computed by BFS DAG
/// counting). O(V * E); intended for networks up to a few thousand routers.
ChannelLoadStats measured_channel_load(const Topology& topo);

}  // namespace slimfly::analysis
