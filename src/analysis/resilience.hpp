#pragma once
// Link-failure resiliency analysis (paper Section III-D).
//
// Three metrics, each evaluated by removing a random fraction of cables in
// 5% increments with repeated sampling:
//   1. disconnection  — largest removable fraction with the network still
//                       connected (Table III),
//   2. diameter       — largest fraction with diameter increase <= budget
//                       (Section III-D2; the paper tolerates +2),
//   3. average path   — largest fraction with average-distance increase
//                       <= budget hops (Section III-D3; the paper uses +1).
//
// The paper samples until a 95% confidence interval of width 2 (percentage
// points); we expose the trial count and use the median judgement across
// trials at each step, which converges to the same comparison.

#include <cstdint>
#include <functional>

#include "topo/graph.hpp"
#include "util/threadpool.hpp"

namespace slimfly::analysis {

struct ResilienceOptions {
  int step_percent = 5;      ///< failure-fraction granularity
  int trials = 20;           ///< random samples per fraction
  std::uint64_t seed = 42;
  double majority = 0.5;     ///< fraction of trials that must survive
};

/// Maximum percentage of links removable with the graph still connected
/// (in `step_percent` increments; 0 if even the first step disconnects).
int max_failures_connected(const Graph& g, const ResilienceOptions& opts = {});

/// Maximum percentage of links removable with diameter <= base + budget.
int max_failures_diameter(const Graph& g, int budget,
                          const ResilienceOptions& opts = {});

/// Maximum percentage of links removable with average distance <= base + budget.
int max_failures_avg_distance(const Graph& g, double budget,
                              const ResilienceOptions& opts = {});

/// Copy of g with `remove_count` uniformly random edges deleted.
Graph remove_random_links(const Graph& g, std::int64_t remove_count,
                          std::uint64_t seed);

/// Generic sweep: returns the largest failure percentage (multiple of
/// step_percent, < 100) for which at least `majority` of trials satisfy
/// `survives`. Exposed for custom metrics.
int max_failures(const Graph& g,
                 const std::function<bool(const Graph&)>& survives,
                 const ResilienceOptions& opts);

}  // namespace slimfly::analysis
