#include "analysis/connectivity.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

namespace slimfly::analysis {

namespace {

/// Unit-capacity flow network over the undirected graph: each undirected
/// edge becomes a pair of arcs with capacity 1 each (standard reduction for
/// edge-disjoint paths in undirected graphs).
struct FlowNetwork {
  struct Arc {
    int to;
    int capacity;
    int paired;  // index of the reverse arc
  };
  std::vector<std::vector<int>> incident;  // vertex -> arc indices
  std::vector<Arc> arcs;

  explicit FlowNetwork(const Graph& g) : incident(static_cast<std::size_t>(g.num_vertices())) {
    for (const auto& [u, v] : g.edges()) {
      int a = static_cast<int>(arcs.size());
      arcs.push_back({v, 1, a + 1});
      arcs.push_back({u, 1, a});
      incident[static_cast<std::size_t>(u)].push_back(a);
      incident[static_cast<std::size_t>(v)].push_back(a + 1);
    }
  }

  void reset() {
    // Undirected unit edges: restore both arcs to capacity 1.
    for (std::size_t a = 0; a < arcs.size(); a += 2) {
      int total = arcs[a].capacity + arcs[a + 1].capacity;
      (void)total;
      arcs[a].capacity = 1;
      arcs[a + 1].capacity = 1;
    }
  }

  /// One BFS augmenting step; returns false when no augmenting path exists.
  bool augment(int source, int sink) {
    std::vector<int> via(incident.size(), -1);  // arc used to reach vertex
    std::vector<bool> seen(incident.size(), false);
    std::queue<int> queue;
    queue.push(source);
    seen[static_cast<std::size_t>(source)] = true;
    while (!queue.empty() && !seen[static_cast<std::size_t>(sink)]) {
      int v = queue.front();
      queue.pop();
      for (int a : incident[static_cast<std::size_t>(v)]) {
        const Arc& arc = arcs[static_cast<std::size_t>(a)];
        if (arc.capacity <= 0 || seen[static_cast<std::size_t>(arc.to)]) continue;
        seen[static_cast<std::size_t>(arc.to)] = true;
        via[static_cast<std::size_t>(arc.to)] = a;
        queue.push(arc.to);
      }
    }
    if (!seen[static_cast<std::size_t>(sink)]) return false;
    for (int v = sink; v != source;) {
      int a = via[static_cast<std::size_t>(v)];
      arcs[static_cast<std::size_t>(a)].capacity -= 1;
      arcs[static_cast<std::size_t>(arcs[static_cast<std::size_t>(a)].paired)]
          .capacity += 1;
      v = arcs[static_cast<std::size_t>(arcs[static_cast<std::size_t>(a)].paired)].to;
    }
    return true;
  }

  int max_flow(int source, int sink, int stop_at) {
    int flow = 0;
    while (flow < stop_at && augment(source, sink)) ++flow;
    return flow;
  }
};

}  // namespace

int edge_disjoint_paths(const Graph& g, int source, int sink) {
  if (source == sink) throw std::invalid_argument("edge_disjoint_paths: source == sink");
  FlowNetwork net(g);
  // Flow is bounded by min degree of the endpoints.
  int bound = std::min(g.degree(source), g.degree(sink));
  return net.max_flow(source, sink, bound);
}

int edge_connectivity(const Graph& g) {
  int n = g.num_vertices();
  if (n < 2) return 0;
  FlowNetwork net(g);
  int best = std::numeric_limits<int>::max();
  for (int v = 1; v < n; ++v) {
    net.reset();
    best = std::min(best, net.max_flow(0, v, best));
    if (best == 0) break;
  }
  return best;
}

}  // namespace slimfly::analysis
