#include "analysis/channelload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace slimfly::analysis {

double analytic_channel_load_d2(int num_routers, int k_net, int concentration) {
  double nr = num_routers;
  double p = concentration;
  return (2.0 * nr - k_net - 2.0) * p * p / static_cast<double>(k_net);
}

int balanced_concentration_d2(int num_routers, int k_net) {
  double nr = num_routers;
  double p = static_cast<double>(k_net) * nr / (2.0 * nr - k_net - 2.0);
  return static_cast<int>(std::lround(p));
}

ChannelLoadStats measured_channel_load(const Topology& topo) {
  const Graph& g = topo.graph();
  int n = g.num_vertices();
  // Directed edge index: for edge {u,v}, channel u->v and v->u.
  std::unordered_map<std::int64_t, double> load;
  auto key = [n](int u, int v) {
    return static_cast<std::int64_t>(u) * n + v;
  };

  std::vector<int> dist(static_cast<std::size_t>(n));
  std::vector<double> sigma(static_cast<std::size_t>(n));
  std::vector<double> acc(static_cast<std::size_t>(n));
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));

  double p = topo.concentration();
  for (int s = 0; s < topo.num_endpoint_routers(); ++s) {
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(acc.begin(), acc.end(), 0.0);
    order.clear();

    // BFS with shortest-path counting (Brandes-style).
    dist[static_cast<std::size_t>(s)] = 0;
    sigma[static_cast<std::size_t>(s)] = 1.0;
    std::size_t head = 0;
    order.push_back(s);
    while (head < order.size()) {
      int v = order[head++];
      for (int w : g.neighbors(v)) {
        if (dist[static_cast<std::size_t>(w)] < 0) {
          dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(v)] + 1;
          order.push_back(w);
        }
        if (dist[static_cast<std::size_t>(w)] ==
            dist[static_cast<std::size_t>(v)] + 1) {
          sigma[static_cast<std::size_t>(w)] += sigma[static_cast<std::size_t>(v)];
        }
      }
    }

    // demand at t = p_s * p_t flow units for ordered endpoint pair count.
    for (int t : order) {
      if (t == s) continue;
      if (topo.endpoints_at(t) > 0) acc[static_cast<std::size_t>(t)] = p * p;
    }
    // Reverse-order accumulation: split incoming flow over predecessors
    // proportionally to their shortest-path counts.
    for (std::size_t i = order.size(); i-- > 1;) {
      int v = order[i];
      double flow = acc[static_cast<std::size_t>(v)];
      if (flow <= 0.0) continue;
      for (int u : g.neighbors(v)) {
        if (dist[static_cast<std::size_t>(u)] + 1 != dist[static_cast<std::size_t>(v)]) {
          continue;
        }
        double share = flow * sigma[static_cast<std::size_t>(u)] /
                       sigma[static_cast<std::size_t>(v)];
        load[key(u, v)] += share;
        acc[static_cast<std::size_t>(u)] += share;
      }
    }
  }

  ChannelLoadStats stats;
  double total = 0.0;
  double maximum = 0.0;
  // Accumulate in fixed (u, then adjacency) order, never unordered_map
  // order: double summation is order-sensitive, and hash-table iteration
  // order is an implementation detail — the sf_lint `unordered-iter` rule
  // bans it anywhere results feed output.
  for (int u = 0; u < n; ++u) {
    for (int v : g.neighbors(u)) {
      auto it = load.find(key(u, v));
      if (it == load.end()) continue;
      total += it->second;
      maximum = std::max(maximum, it->second);
    }
  }
  // Average over all directed channels (2 per undirected link), including
  // channels that carry no flow.
  double channels = 2.0 * static_cast<double>(g.num_edges());
  stats.average = channels > 0 ? total / channels : 0.0;
  stats.maximum = maximum;
  return stats;
}

}  // namespace slimfly::analysis
