#include "analysis/metrics.hpp"

#include <algorithm>
#include <queue>

namespace slimfly::analysis {

std::vector<int> bfs_distances(const Graph& g, int source) {
  std::vector<int> dist(static_cast<std::size_t>(g.num_vertices()), -1);
  std::vector<int> frontier{source};
  dist[static_cast<std::size_t>(source)] = 0;
  int depth = 0;
  while (!frontier.empty()) {
    std::vector<int> next;
    for (int v : frontier) {
      for (int w : g.neighbors(v)) {
        auto& d = dist[static_cast<std::size_t>(w)];
        if (d < 0) {
          d = depth + 1;
          next.push_back(w);
        }
      }
    }
    frontier = std::move(next);
    ++depth;
  }
  return dist;
}

int eccentricity(const Graph& g, int source) {
  auto dist = bfs_distances(g, source);
  int ecc = 0;
  for (int d : dist) {
    if (d < 0) return -1;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

int diameter(const Graph& g) {
  int diam = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    int e = eccentricity(g, v);
    if (e < 0) return -1;
    diam = std::max(diam, e);
  }
  return diam;
}

double average_distance(const Graph& g) {
  std::int64_t total = 0;
  std::int64_t pairs = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    auto dist = bfs_distances(g, v);
    for (int w = 0; w < g.num_vertices(); ++w) {
      if (w == v) continue;
      if (dist[static_cast<std::size_t>(w)] < 0) return -1.0;
      total += dist[static_cast<std::size_t>(w)];
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(pairs);
}

double average_endpoint_distance(const Topology& topo) {
  const Graph& g = topo.graph();
  int p = topo.concentration();
  int ep_routers = topo.num_endpoint_routers();
  long long n = topo.num_endpoints();
  // Sum over ordered endpoint pairs: pairs on the same router contribute 0;
  // pairs on routers (r, s) contribute p * p * dist(r, s).
  double total = 0.0;
  for (int r = 0; r < ep_routers; ++r) {
    auto dist = bfs_distances(g, r);
    for (int s = 0; s < ep_routers; ++s) {
      if (s == r) continue;
      total += static_cast<double>(p) * p * dist[static_cast<std::size_t>(s)];
    }
  }
  double ordered_pairs = static_cast<double>(n) * static_cast<double>(n - 1);
  return total / ordered_pairs;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  return largest_component(g) == g.num_vertices();
}

int largest_component(const Graph& g) {
  int n = g.num_vertices();
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  int best = 0;
  for (int s = 0; s < n; ++s) {
    if (seen[static_cast<std::size_t>(s)]) continue;
    int size = 0;
    std::queue<int> queue;
    queue.push(s);
    seen[static_cast<std::size_t>(s)] = true;
    while (!queue.empty()) {
      int v = queue.front();
      queue.pop();
      ++size;
      for (int w : g.neighbors(v)) {
        if (!seen[static_cast<std::size_t>(w)]) {
          seen[static_cast<std::size_t>(w)] = true;
          queue.push(w);
        }
      }
    }
    best = std::max(best, size);
  }
  return best;
}

std::vector<std::int64_t> distance_histogram(const Graph& g) {
  std::vector<std::int64_t> histogram;
  for (int v = 0; v < g.num_vertices(); ++v) {
    auto dist = bfs_distances(g, v);
    for (int w = 0; w < g.num_vertices(); ++w) {
      int d = dist[static_cast<std::size_t>(w)];
      if (d < 0) continue;
      if (static_cast<std::size_t>(d) >= histogram.size()) {
        histogram.resize(static_cast<std::size_t>(d) + 1, 0);
      }
      ++histogram[static_cast<std::size_t>(d)];
    }
  }
  return histogram;
}

}  // namespace slimfly::analysis
