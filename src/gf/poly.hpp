#pragma once
// Dense polynomials over the prime field Z_p, used only to bootstrap
// GF(p^m): finding an irreducible modulus polynomial and reducing products.
// Degrees and moduli are tiny (p^m <= 1024), so simplicity wins over speed.

#include <vector>

namespace slimfly::gf {

/// Polynomial with coefficients in Z_p, least-significant coefficient first.
/// The invariant coeffs.empty() || coeffs.back() != 0 (normal form) holds
/// for every value returned by the functions below.
struct Poly {
  std::vector<int> coeffs;

  /// Degree; the zero polynomial has degree -1.
  int degree() const { return static_cast<int>(coeffs.size()) - 1; }
  bool is_zero() const { return coeffs.empty(); }
  bool operator==(const Poly& other) const { return coeffs == other.coeffs; }
  bool operator!=(const Poly& other) const { return !(*this == other); }
};

/// Drops trailing zero coefficients (normal form).
Poly normalize(Poly a);

Poly add(const Poly& a, const Poly& b, int p);
Poly sub(const Poly& a, const Poly& b, int p);
Poly mul(const Poly& a, const Poly& b, int p);

/// Remainder of a divided by monic divisor d (coefficients mod p).
Poly mod(const Poly& a, const Poly& d, int p);

/// True iff monic polynomial f of degree >= 1 is irreducible over Z_p,
/// by trial division with all monic polynomials of degree <= deg(f)/2.
bool is_irreducible(const Poly& f, int p);

/// Smallest (in lexicographic coefficient order) monic irreducible
/// polynomial of degree m over Z_p.
Poly find_irreducible(int p, int m);

}  // namespace slimfly::gf
