#include "gf/gf.hpp"

#include <stdexcept>

#include "util/numtheory.hpp"

namespace slimfly::gf {

Field::Field(int q) : q_(q) {
  if (q < 2 || q > 4096) {
    throw std::invalid_argument("Field: q out of supported range [2, 4096]");
  }
  auto pp = as_prime_power(q);
  if (!pp) throw std::invalid_argument("Field: q is not a prime power");
  p_ = static_cast<int>(pp->p);
  m_ = pp->m;
  modulus_ = find_irreducible(p_, m_);

  const std::size_t qz = static_cast<std::size_t>(q_);
  add_table_.resize(qz * qz);
  mul_table_.resize(qz * qz);
  neg_.resize(qz);
  inv_.assign(qz, -1);

  for (int a = 0; a < q_; ++a) {
    Poly pa = decode(a);
    for (int b = 0; b < q_; ++b) {
      Poly pb = decode(b);
      add_table_[static_cast<std::size_t>(a) * qz +
                 static_cast<std::size_t>(b)] = encode(gf::add(pa, pb, p_));
      mul_table_[static_cast<std::size_t>(a) * qz +
                 static_cast<std::size_t>(b)] =
          encode(gf::mod(gf::mul(pa, pb, p_), modulus_, p_));
    }
  }
  for (int a = 0; a < q_; ++a) {
    neg_[static_cast<std::size_t>(a)] = encode(gf::sub(Poly{}, decode(a), p_));
  }
  for (int a = 1; a < q_; ++a) {
    for (int b = 1; b < q_; ++b) {
      if (mul_table_[static_cast<std::size_t>(a) * qz +
                     static_cast<std::size_t>(b)] == 1) {
        inv_[static_cast<std::size_t>(a)] = b;
        break;
      }
    }
  }

  // Exhaustive search for a primitive element (viable for q <= 4096).
  xi_ = 0;
  for (int a = 2; a < q_; ++a) {
    if (order(a) == q_ - 1) {
      xi_ = a;
      break;
    }
  }
  if (xi_ == 0 && q_ == 2) xi_ = 1;  // GF(2)^* = {1}
  if (xi_ == 0 && q_ == 3) xi_ = 2;
  if (xi_ == 0) throw std::logic_error("Field: no primitive element found");
}

int Field::check(int a) const {
  if (a < 0 || a >= q_) throw std::out_of_range("Field: element out of range");
  return a;
}

int Field::inv(int a) const {
  check(a);
  if (a == 0) throw std::domain_error("Field::inv: zero");
  return inv_[static_cast<std::size_t>(a)];
}

int Field::pow(int a, std::int64_t e) const {
  check(a);
  if (e < 0) throw std::invalid_argument("Field::pow: negative exponent");
  int result = 1;
  int base = a;
  while (e > 0) {
    if (e & 1) result = mul(result, base);
    base = mul(base, base);
    e >>= 1;
  }
  return result;
}

int Field::order(int a) const {
  check(a);
  if (a == 0) throw std::domain_error("Field::order: zero");
  int ord = 1;
  int x = a;
  while (x != 1) {
    x = mul(x, a);
    ++ord;
    if (ord > q_) throw std::logic_error("Field::order: diverged");
  }
  return ord;
}

int Field::encode(const Poly& poly) const {
  int value = 0;
  for (int i = poly.degree(); i >= 0; --i) {
    value = value * p_ + poly.coeffs[static_cast<std::size_t>(i)];
  }
  return value;
}

Poly Field::decode(int value) const {
  Poly poly;
  while (value > 0) {
    poly.coeffs.push_back(value % p_);
    value /= p_;
  }
  return poly;
}

}  // namespace slimfly::gf
