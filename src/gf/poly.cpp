#include "gf/poly.hpp"

#include <stdexcept>

#include "util/numtheory.hpp"

namespace slimfly::gf {

Poly normalize(Poly a) {
  while (!a.coeffs.empty() && a.coeffs.back() == 0) a.coeffs.pop_back();
  return a;
}

Poly add(const Poly& a, const Poly& b, int p) {
  Poly r;
  r.coeffs.resize(std::max(a.coeffs.size(), b.coeffs.size()), 0);
  for (std::size_t i = 0; i < r.coeffs.size(); ++i) {
    int va = i < a.coeffs.size() ? a.coeffs[i] : 0;
    int vb = i < b.coeffs.size() ? b.coeffs[i] : 0;
    r.coeffs[i] = (va + vb) % p;
  }
  return normalize(std::move(r));
}

Poly sub(const Poly& a, const Poly& b, int p) {
  Poly r;
  r.coeffs.resize(std::max(a.coeffs.size(), b.coeffs.size()), 0);
  for (std::size_t i = 0; i < r.coeffs.size(); ++i) {
    int va = i < a.coeffs.size() ? a.coeffs[i] : 0;
    int vb = i < b.coeffs.size() ? b.coeffs[i] : 0;
    r.coeffs[i] = ((va - vb) % p + p) % p;
  }
  return normalize(std::move(r));
}

Poly mul(const Poly& a, const Poly& b, int p) {
  if (a.is_zero() || b.is_zero()) return Poly{};
  Poly r;
  r.coeffs.assign(a.coeffs.size() + b.coeffs.size() - 1, 0);
  for (std::size_t i = 0; i < a.coeffs.size(); ++i) {
    if (a.coeffs[i] == 0) continue;
    for (std::size_t j = 0; j < b.coeffs.size(); ++j) {
      r.coeffs[i + j] = (r.coeffs[i + j] + a.coeffs[i] * b.coeffs[j]) % p;
    }
  }
  return normalize(std::move(r));
}

Poly mod(const Poly& a, const Poly& d, int p) {
  if (d.is_zero()) throw std::invalid_argument("poly mod: zero divisor");
  if (d.coeffs.back() != 1) throw std::invalid_argument("poly mod: divisor not monic");
  Poly r = normalize(a);
  int dd = d.degree();
  while (r.degree() >= dd) {
    int shift = r.degree() - dd;
    int factor = r.coeffs.back();
    for (int i = 0; i <= dd; ++i) {
      const std::size_t idx = static_cast<std::size_t>(shift + i);
      r.coeffs[idx] = ((r.coeffs[idx] -
                        factor * d.coeffs[static_cast<std::size_t>(i)]) %
                           p +
                       p) %
                      p;
    }
    r = normalize(std::move(r));
  }
  return r;
}

bool is_irreducible(const Poly& f, int p) {
  int n = f.degree();
  if (n <= 0) return false;
  if (n == 1) return true;
  // Trial division by every monic polynomial of degree 1..n/2.
  for (int d = 1; d * 2 <= n; ++d) {
    std::int64_t count = 1;
    for (int i = 0; i < d; ++i) count *= p;
    for (std::int64_t code = 0; code < count; ++code) {
      Poly g;
      g.coeffs.resize(static_cast<std::size_t>(d) + 1, 0);
      std::int64_t c = code;
      for (int i = 0; i < d; ++i) {
        g.coeffs[static_cast<std::size_t>(i)] = static_cast<int>(c % p);
        c /= p;
      }
      g.coeffs[static_cast<std::size_t>(d)] = 1;
      if (mod(f, g, p).is_zero()) return false;
    }
  }
  return true;
}

Poly find_irreducible(int p, int m) {
  if (m < 1) throw std::invalid_argument("find_irreducible: m < 1");
  if (m == 1) {
    return Poly{{0, 1}};  // x itself
  }
  std::int64_t count = 1;
  for (int i = 0; i < m; ++i) count *= p;
  for (std::int64_t code = 0; code < count; ++code) {
    Poly f;
    f.coeffs.resize(static_cast<std::size_t>(m) + 1, 0);
    std::int64_t c = code;
    for (int i = 0; i < m; ++i) {
      f.coeffs[static_cast<std::size_t>(i)] = static_cast<int>(c % p);
      c /= p;
    }
    f.coeffs[static_cast<std::size_t>(m)] = 1;
    if (is_irreducible(f, p)) return f;
  }
  throw std::logic_error("find_irreducible: none found (unreachable)");
}

}  // namespace slimfly::gf
