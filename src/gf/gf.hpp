#pragma once
// Finite field GF(q) for any prime power q = p^m (q <= 4096).
//
// Elements are integers in [0, q). For m == 1 an element is its residue
// mod p; for m > 1 the integer encodes the coefficient vector of a
// polynomial over Z_p in base p (value = c0 + c1*p + c2*p^2 + ...), reduced
// modulo a fixed irreducible monic polynomial of degree m.
//
// All operations are table-driven after construction, so arithmetic inside
// the MMS generator search is a couple of array loads.

#include <cstdint>
#include <vector>

#include "gf/poly.hpp"

namespace slimfly::gf {

class Field {
 public:
  /// Builds GF(q); throws std::invalid_argument unless q is a prime power
  /// with 2 <= q <= 4096.
  explicit Field(int q);

  int q() const { return q_; }
  int p() const { return p_; }        ///< characteristic
  int degree() const { return m_; }   ///< extension degree m (q = p^m)

  int add(int a, int b) const { return add_table_[idx(a, b)]; }
  int sub(int a, int b) const { return add_table_[idx(a, neg(b))]; }
  int neg(int a) const {
    return neg_[static_cast<std::size_t>(check(a))];
  }
  int mul(int a, int b) const { return mul_table_[idx(a, b)]; }

  /// Multiplicative inverse; throws std::domain_error for 0.
  int inv(int a) const;
  /// a / b; throws std::domain_error when b == 0.
  int div(int a, int b) const { return mul(a, inv(b)); }

  /// a^e with e >= 0 (0^0 == 1).
  int pow(int a, std::int64_t e) const;

  /// A fixed primitive element xi (generator of GF(q)^*), found by
  /// exhaustive search exactly as the paper prescribes (Section II-B1a).
  int primitive_element() const { return xi_; }

  /// Multiplicative order of a nonzero element.
  int order(int a) const;

  /// The modulus polynomial (degree m; x for m == 1). Exposed for tests.
  const Poly& modulus() const { return modulus_; }

 private:
  std::size_t idx(int a, int b) const {
    return static_cast<std::size_t>(check(a)) * static_cast<std::size_t>(q_) +
           static_cast<std::size_t>(check(b));
  }
  int check(int a) const;
  int encode(const Poly& poly) const;
  Poly decode(int value) const;

  int q_ = 0, p_ = 0, m_ = 0;
  Poly modulus_;
  std::vector<int> add_table_;
  std::vector<int> mul_table_;
  std::vector<int> neg_;
  std::vector<int> inv_;
  int xi_ = 0;
};

}  // namespace slimfly::gf
