#pragma once
// Suite files — whole experiment suites as first-class, versioned JSON
// artifacts instead of command lines (ROADMAP follow-up; the regression
// firewall of docs/SPEC_GRAMMAR.md §"Suite files").
//
// A suite is an ExperimentSpec plus everything the CLI used to carry out of
// band: a tag, named scales (the old SF_BENCH_SCALE env knob folded into the
// file), per-scale topology grids and config windows, scheduling hints, and
// per-series SimConfig overrides. `sweep --config file.json` runs one;
// `sweep --emit-config` exports any CLI invocation back into one; the
// checked-in suites live under examples/suites/.
//
// Schema (full reference in docs/SPEC_GRAMMAR.md):
//
//   {
//     "suite": "fig06a",                      // required; BENCH_<suite>.json
//     "description": "...",                   // optional
//     "scale": "small",                       // default scale name
//     "scales": {                             // optional named scales
//       "small": {"config": {...}, "loads": [...]},
//       "paper": {"config": {...}}
//     },
//     "loads": [0.05, 0.1, ...],              // default load grid
//     "config": {"seed": 1, ...},             // SimConfig overrides
//     "truncate_at_saturation": true,
//     "threads": 0,                           // across-point hint; 0 = auto
//     "scheduler": "stealing",                // optional: static | stealing
//     "series": [
//       {"topology": "slimfly:q=7",           // plain string, or per scale:
//        // "topology": {"small": "slimfly:q=7", "paper": "slimfly:q=19"},
//        "routing": "UGAL-L:c=8", "traffic": "uniform",
//        "label": "SF", "config": {"buffer_per_port": 8}}
//     ],
//     "cross": {"topologies": [...], "routings": [...], "traffics": [...]}
//   }
//
// Parsing is strict: unknown keys, malformed values, unknown registry names
// and incompatible combinations all throw std::invalid_argument naming the
// offending path — never a crash, never a silent default.

#include <map>
#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace slimfly::exp {

/// One suite series. `topology` maps scale name -> topo::make spec; the
/// reserved key "" means "every scale" (a plain JSON string parses to it).
/// A series whose map lacks the chosen scale is skipped by suite_to_spec —
/// that is how a suite's grid can differ per scale.
struct SuiteSeries {
  std::map<std::string, std::string> topology;
  std::string routing;
  std::string traffic;
  std::string label;
  ConfigOverrides config;
};

/// Per-scale overlays: config overrides applied after the suite-level block,
/// and an optional replacement load grid.
struct SuiteScale {
  ConfigOverrides config;
  std::vector<double> loads;
};

struct Suite {
  std::string name;
  std::string description;
  std::string default_scale;  ///< "" = "small" when scales exist
  std::map<std::string, SuiteScale> scales;
  std::vector<double> loads;
  ConfigOverrides config;  ///< run keys (seed, intra_threads) allowed
  bool truncate_at_saturation = true;
  std::size_t threads = 0;  ///< across-point worker hint; 0 = unset
  /// Point-scheduler hint ("static" | "stealing"); "" = unset (env/default
  /// decides). A suite-level execution knob like `threads`, NOT a config
  /// key: both schedulers return byte-identical results, so it never enters
  /// point_seed hashing.
  std::string scheduler;
  std::vector<SuiteSeries> series;
  /// Cross block: compatible combinations are expanded, incompatible ones
  /// skipped (exactly ExperimentSpec::cross). Topologies use the same
  /// scale-map form as SuiteSeries::topology.
  std::vector<std::map<std::string, std::string>> cross_topologies;
  std::vector<std::string> cross_routings;
  std::vector<std::string> cross_traffics;

  /// Scale names this suite defines, sorted (empty for unscaled suites).
  std::vector<std::string> scale_names() const;
};

/// Parses and fully validates a suite document. `origin` (usually the file
/// name) prefixes every error message.
Suite parse_suite(const std::string& text, const std::string& origin = "");

/// Reads and parses a suite file; throws std::invalid_argument when the
/// file cannot be read.
Suite load_suite_file(const std::string& path);

/// The scale name suite_to_spec would expand `requested` to: the request
/// itself, else the suite default, else "small" — or "" for an unscaled
/// suite. Throws on an unknown scale (listing the available ones).
std::string resolve_scale(const Suite& suite, const std::string& requested);

/// True when the suite (or the resolved scale's block) sets `key` in a
/// config block — lets callers distinguish an explicit suite value from
/// the SimConfig default (e.g. env fallback for intra_threads).
bool suite_sets_config_key(const Suite& suite, const std::string& scale,
                           const std::string& key);

/// Expands a suite at a scale into a runnable spec. `scale` "" means the
/// suite's default. Throws when the scale is unknown, the load grid is
/// empty, or no series survives scale selection.
ExperimentSpec suite_to_spec(const Suite& suite, const std::string& scale = "");

/// Round-trip: captures a fully-resolved spec as an unscaled suite whose
/// config block lists every SimConfig field explicitly (robust against
/// default drift). parse_suite(serialize_suite(...)) reproduces the spec
/// bit-identically (tests/suite_test.cpp).
Suite suite_from_spec(const ExperimentSpec& spec, std::size_t threads = 0,
                      const std::string& scheduler = "");

/// Deterministic, diffable JSON serialization of a suite.
std::string serialize_suite(const Suite& suite);

}  // namespace slimfly::exp
