#pragma once
// BENCH trajectory comparison — the regression half of the suite firewall.
//
// A "trajectory" is the per-point stats record a run leaves behind
// (BENCH_<tag>.json, written by exp::write_json). Because the engine is
// bit-identical for every SF_THREADS / SF_INTRA_THREADS value, two runs of
// the same suite must produce *exactly* equal trajectories; `sweep diff`
// joins two of them on run-point identity (series label + offered load) and
// reports per-point deltas in latency/throughput metrics with configurable
// tolerances. Wall time is reported but never gated — it is the one field
// that legitimately varies between runs.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace slimfly::exp {

struct TrajectoryPoint {
  std::string label;
  std::string topology;
  std::string routing;
  std::string traffic;
  double load = 0.0;
  std::uint64_t seed = 0;
  double wall_seconds = 0.0;
  /// Process peak RSS in bytes (reported, never gated — the wall_seconds
  /// policy; 0 in BENCH files predating the field).
  std::uint64_t peak_rss_bytes = 0;
  /// Simulated cycles (deterministic; gated when both sides carry it —
  /// absent in BENCH files predating the field, parsed as -1).
  std::int64_t cycles = -1;
  /// Wall-derived throughput (reported, never gated — like wall time).
  double mcycles_per_sec = 0.0;
  double latency = 0.0;
  double network_latency = 0.0;
  double p99_latency = 0.0;
  double accepted = 0.0;
  std::int64_t delivered = 0;
  bool saturated = false;

  /// Join identity: series label + offered load (the label already encodes
  /// topology/routing/traffic/config deviations for registry-built runs).
  std::string key() const;
};

struct Trajectory {
  std::string experiment;
  std::vector<TrajectoryPoint> points;
};

/// Parses a BENCH_<tag>.json document (strict; errors name `origin` and the
/// JSON path). Throws std::invalid_argument on malformed input or duplicate
/// run-point identities.
Trajectory parse_bench_json(const std::string& text,
                            const std::string& origin = "");

/// Reads and parses a BENCH file from disk.
Trajectory load_bench_file(const std::string& path);

/// Converts engine output into a Trajectory without the JSON detour.
Trajectory trajectory_of(const ExperimentSpec& spec,
                         const std::vector<RunResult>& results);

struct DiffOptions {
  /// |a-b| <= abs_tol + rel_tol * max(|a|, |b|) per numeric metric.
  /// The defaults demand exact equality — valid because runs are
  /// deterministic.
  double rel_tol = 0.0;
  double abs_tol = 0.0;
  /// When false (default), points present in only one trajectory fail the
  /// comparison (a shrunken grid is a regression too).
  bool allow_missing = false;
};

struct MetricDelta {
  const char* name;  ///< "latency", "accepted", ...
  double a = 0.0;
  double b = 0.0;
  bool out_of_tolerance = false;
};

struct PointDelta {
  std::string key;
  std::vector<MetricDelta> metrics;
  bool seed_mismatch = false;      ///< different seeds = different experiment
  bool saturated_flip = false;
  double wall_a = 0.0, wall_b = 0.0;  ///< informational only
  std::uint64_t rss_a = 0, rss_b = 0;  ///< peak RSS bytes; informational only
  bool out_of_tolerance = false;   ///< any metric/seed/saturation failure
};

struct DiffReport {
  std::vector<PointDelta> points;  ///< joined points, in A's order
  std::vector<std::string> only_in_a;
  std::vector<std::string> only_in_b;
  std::size_t compared = 0;
  std::size_t regressions = 0;  ///< joined points out of tolerance
  bool passed = false;          ///< overall verdict under the options used
};

DiffReport diff_trajectories(const Trajectory& a, const Trajectory& b,
                             const DiffOptions& options = {});

/// Human-readable report: per-point failures (or all deltas when `verbose`),
/// missing points, and a one-line summary with total wall-time change.
void print_diff(std::ostream& os, const DiffReport& report, bool verbose);

/// Copies wall_seconds — and peak_rss_bytes, when the prior point carries a
/// nonzero value — from matching points of `prior` (joined on run-point
/// identity) onto `results`, returning the number patched. Golden
/// regeneration uses this so a regenerated BENCH file differs only in
/// result-bearing fields — wall time (and the throughput derived from it)
/// and the machine-dependent RSS stay at the checked-in values instead of
/// churning every regen. A prior file predating peak_rss_bytes (parsed as
/// 0) keeps the fresh measurement, so the field appears on first regen.
std::size_t preserve_wall_seconds(const Trajectory& prior,
                                 const ExperimentSpec& spec,
                                 std::vector<RunResult>& results);

/// Canonical golden-trajectory serialization: one '|'-separated line per
/// kept point (label, axes, load, seed, every stats field — wall time
/// excluded), preceded by a version header. Byte-for-byte stable across
/// thread counts, which makes exact golden-file comparison valid
/// (tests/golden_test.cpp, tests/golden/).
std::string golden_trajectory(const ExperimentSpec& spec,
                              const std::vector<RunResult>& results);

}  // namespace slimfly::exp
