#pragma once
// ExperimentEngine — the paper's evaluation as data (Section V cross-product
// of topologies x routings x traffics x offered loads).
//
// An ExperimentSpec names every axis with registry strings (topo::make
// specs, sim::routing_names(), sim::traffic_names()); the engine expands it
// into independent run points and executes them over a ThreadPool.
//
// Thread-safety contract (audited; keep it when touching the simulator):
//   * Each run point owns its Network, its RNG streams (seeded
//     deterministically from the spec and the point, never from thread
//     identity), its RoutingAlgorithm instance, and its TrafficPattern
//     instance.
//   * Topology and DistanceOracle are built once per topology spec (one
//     oracle per distinct (topology, resolved OracleMode)) and shared
//     across points strictly read-only (const references /
//     shared_ptr<const>-style usage; sample_minimal_path is const and
//     draws from the caller's Rng).
// Consequently a parallel run is bit-identical to a single-threaded run of
// the same spec (covered by tests/experiment_test.cpp).
//
// Two composable parallelism levels (docs/ARCHITECTURE.md has the full
// decision guide):
//   * across points — independent run points over the engine's ThreadPool
//     (SF_THREADS workers); ideal for wide grids of small/medium points.
//   * within a point — SimConfig::intra_threads router-parallel stepping
//     workers inside each Network (SF_INTRA_THREADS / sweep --intra);
//     ideal for a few paper-scale points that would otherwise serialize.
// run_prepared() composes them without oversubscription: with
// intra_threads == 1 every engine worker runs whole points; with
// intra_threads == N > 1 the across-point width shrinks to threads/N; with
// intra_threads == 0 ("auto") wide grids (points >= threads) go fully
// across-point and narrow grids split the workers across the few points.
// Neither level affects results — only wall-clock time.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/routing/routing.hpp"
#include "sim/stats.hpp"
#include "sim/traffic.hpp"
#include "util/table.hpp"

namespace slimfly {
class ThreadPool;
class Topology;
}  // namespace slimfly

namespace slimfly::exp {

/// String-keyed SimConfig overrides ("buffer_per_port": 128, ...), the
/// mechanism behind per-series parameter studies (Figure 8a's buffer sweep)
/// and suite-file config blocks. Ordered so serialization is deterministic.
using ConfigOverrides = std::map<std::string, double>;

/// Applies overrides onto `base`. Keys are the SimConfig field names
/// (num_vcs, buffer_per_port, channel_latency, router_pipeline,
/// credit_delay, alloc_iterations, output_staging, warmup_cycles,
/// measure_cycles, drain_cycles, latency_cap, engine, oracle); with
/// `allow_run_keys` also seed and intra_threads (suite-level blocks own
/// those; per-series blocks must not — engine and oracle are allowed per
/// series because, like intra_threads, they cannot change results and
/// point_seed skips them).
/// Unknown keys and non-integral values for integer fields throw
/// std::invalid_argument naming the key and `context`.
sim::SimConfig apply_config_overrides(sim::SimConfig base,
                                      const ConfigOverrides& overrides,
                                      bool allow_run_keys,
                                      const std::string& context);

/// One latency-vs-load curve, every axis a registry string.
struct SeriesSpec {
  std::string topology;  ///< topo::make spec, e.g. "slimfly:q=19"
  std::string routing;   ///< routing spec, e.g. "UGAL-L" or "UGAL-L:c=8"
  std::string traffic;   ///< traffic name, e.g. "uniform"
  std::string label;     ///< row label; "" means topology|routing|traffic
  /// SimConfig deviations for this series only (see apply_config_overrides);
  /// empty for the common case. Feeds the per-point seed so two series
  /// differing only in config draw different streams.
  ConfigOverrides config_overrides = {};
  std::string display_label() const;
};

struct ExperimentSpec {
  std::string name;                 ///< tag used for tables and BENCH_*.json
  std::vector<SeriesSpec> series;
  std::vector<double> loads;        ///< offered loads, ascending
  sim::SimConfig config;            ///< config.seed is the base seed
  /// Drop a series' points after its first saturated load, matching the
  /// sequential sweep methodology (a parallel run still executes them).
  bool truncate_at_saturation = true;

  /// Cross-product helper: one series per compatible combination;
  /// topology-specific routings/traffics silently skip non-matching
  /// topologies (DF-UGAL-L only rides Dragonfly specs, worst-ft only
  /// fat-tree specs, ...).
  static ExperimentSpec cross(std::string name,
                              const std::vector<std::string>& topologies,
                              const std::vector<std::string>& routings,
                              const std::vector<std::string>& traffics,
                              std::vector<double> loads,
                              sim::SimConfig config);
};

/// Outcome of one expanded run point.
struct RunResult {
  std::size_t series_index = 0;
  double load = 0.0;
  std::uint64_t seed = 0;      ///< per-point seed actually used
  double wall_seconds = 0.0;   ///< wall time of this point on its worker
  /// Process peak RSS in bytes when the point finished (util/rss.hpp);
  /// monotone across points. Reported in BENCH files, never gated.
  std::uint64_t peak_rss_bytes = 0;
  sim::SimResult result;
};

/// Per-point simulator throughput: simulated cycles per wall second, in
/// millions (0 when no wall time was recorded). The perf trajectory field
/// written into every BENCH_*.json — wall-derived, so reported but never
/// gated by `sweep diff`.
double mcycles_per_sec(const RunResult& r);

/// Deterministic per-point seed: a hash of the base seed, the series'
/// identity strings, and the load index — independent of thread schedule.
std::uint64_t point_seed(const ExperimentSpec& spec, std::size_t series_index,
                         std::size_t load_index);

/// Worker count policy: SF_THREADS env var when set and > 0;
/// SF_THREADS=0, unset, or unparsable means hardware_concurrency().
std::size_t threads_from_env();

/// Intra-point worker policy: SF_INTRA_THREADS env var when set and a
/// plausible digit string (0 = let the engine's scheduler decide); unset or
/// unparsable means 1 (sequential stepping), the SimConfig default.
int intra_threads_from_env();

/// Parses a stepping-engine name ("cycle" | "active"); anything else throws
/// std::invalid_argument naming `context`.
sim::StepEngine step_engine_from_string(const std::string& name,
                                        const std::string& context);

/// Stepping-engine policy: SF_ENGINE env var when set to a known name;
/// unset or unparsable means StepEngine::Cycle, the SimConfig default
/// (matching the tolerance of the other env knobs — the engine cannot
/// change results, so junk safely falls back).
sim::StepEngine engine_from_env();

/// Parses a distance-oracle mode ("auto" | "table" | "family"); anything
/// else throws std::invalid_argument naming `context`.
sim::OracleMode oracle_from_string(const std::string& name,
                                   const std::string& context);

/// Distance-oracle policy: SF_ORACLE env var when set to a known name;
/// unset or unparsable means OracleMode::Auto, the SimConfig default (the
/// oracle cannot change results, so junk safely falls back).
sim::OracleMode oracle_from_env();

/// Point-scheduling policy for run_prepared. Execution-only, like
/// SF_THREADS: both modes produce byte-identical results (same points, same
/// per-point seeds, same truncation), so the knob is a suite-level hint and
/// never enters point_seed hashing.
///
///   Static   — the fixed across/intra split schedule() computes up front;
///              every point steps with the same intra team for its whole
///              life. A grid whose points finish at very different times
///              strands workers: a runner that drains its share idles while
///              the big point next door steps single-file.
///   Stealing — every engine worker is a runner claiming points from a
///              shared counter; a runner that finds the grid empty retires
///              its worker into a spare pool, and the still-running points'
///              team providers (SimConfig::team_provider) claim those
///              spares to widen their intra-shard teams mid-flight. Big
///              points absorb the machine as small points drain.
enum class SchedulerMode : std::uint8_t { Static = 0, Stealing = 1 };

inline const char* to_string(SchedulerMode mode) {
  return mode == SchedulerMode::Stealing ? "stealing" : "static";
}

/// Parses a scheduler name ("static" | "stealing"); anything else throws
/// std::invalid_argument naming `context`.
SchedulerMode scheduler_from_string(const std::string& name,
                                    const std::string& context);

/// Scheduler policy: SF_SCHEDULER env var when set to a known name; unset
/// or unparsable means SchedulerMode::Static (the scheduler cannot change
/// results, so junk safely falls back).
SchedulerMode scheduler_from_env();

// ---- prepared (non-registry) form ------------------------------------------
// The compatibility path for callers that already hold topology / routing /
// traffic objects (sim::load_sweep). The registry path lowers onto this.

struct PreparedSeries {
  const Topology* topo = nullptr;  ///< shared read-only across points
  /// Fresh routing instance per point (may close over a shared const
  /// DistanceTable; a single-threaded run may return the same instance).
  std::function<std::shared_ptr<sim::RoutingAlgorithm>()> make_routing;
  /// Fresh traffic instance per point (patterns carry per-run state).
  std::function<std::unique_ptr<sim::TrafficPattern>()> make_traffic;
  std::string label;
  /// Applied onto the experiment's SimConfig for this series' points.
  ConfigOverrides config_overrides;
};

struct PreparedExperiment {
  std::vector<PreparedSeries> series;
  std::vector<double> loads;
  sim::SimConfig config;
  bool truncate_at_saturation = true;
  /// Per-point seed; nullptr keeps config.seed for every point (the legacy
  /// load_sweep behaviour).
  std::function<std::uint64_t(std::size_t series_idx, std::size_t load_idx)>
      seed_fn;
};

class ExperimentEngine {
 public:
  /// threads == 0 defers to threads_from_env().
  explicit ExperimentEngine(std::size_t threads = 0);
  ~ExperimentEngine();

  std::size_t threads() const;

  /// Point-scheduling policy (defaults to scheduler_from_env()). Execution
  /// only: run/run_prepared return byte-identical results either way.
  SchedulerMode scheduler() const;
  void set_scheduler(SchedulerMode mode);

  /// Completion hook for long runs: called once per finished point, from
  /// worker threads but never concurrently (the engine serializes calls).
  using ProgressFn = std::function<void(const PreparedSeries& series,
                                        const RunResult& point)>;

  /// Expands and runs a registry-keyed spec. Topologies and distance tables
  /// are built once per distinct topology string (in parallel), then all
  /// points run over the pool. Results are ordered by (series, load).
  std::vector<RunResult> run(const ExperimentSpec& spec,
                             const ProgressFn& on_point = {});

  /// Runs an already-prepared experiment. When points run one at a time
  /// (one engine worker, or intra-point workers claiming the whole budget)
  /// and truncate_at_saturation is set, loads past a series' first
  /// saturated point are skipped entirely (the sequential early-stop of the
  /// original load_sweep); an across-point parallel run skips a point once
  /// a lower load of its series is known saturated and drops the rest after
  /// the fact — either way the returned points are identical.
  std::vector<RunResult> run_prepared(const PreparedExperiment& prepared,
                                      const ProgressFn& on_point = {});

  /// The (across-point width, per-point intra worker count) run_prepared
  /// would use for a grid of `n_points` under `requested_intra`
  /// (SimConfig::intra_threads). Exposed for tests and schedulers; the
  /// product never exceeds threads().
  std::pair<std::size_t, int> schedule(std::size_t n_points,
                                       int requested_intra) const;

 private:
  /// Inline loop when width <= 1; otherwise parallel_for_checked over a
  /// lazily-created pool of `width` workers (so sequential wrappers never
  /// spawn workers they won't use).
  void for_indices(std::size_t n, std::size_t width,
                   const std::function<void(std::size_t)>& body);

  std::size_t threads_ = 1;
  SchedulerMode scheduler_ = SchedulerMode::Static;
  std::size_t pool_width_ = 0;
  std::unique_ptr<ThreadPool> pool_;
};

// ---- result sinks ----------------------------------------------------------

/// Rows in the bench latency-table shape:
/// series | offered | latency | net_latency | accepted | saturated.
Table to_table(const ExperimentSpec& spec,
               const std::vector<RunResult>& results);

/// Machine-readable dump: spec, per-series points with seed, wall time and
/// every SimResult field.
void write_json(std::ostream& os, const ExperimentSpec& spec,
                const std::vector<RunResult>& results, std::size_t threads);

/// Writes write_json() output to `dir`/BENCH_<spec.name>.json; returns the
/// path ("" and a stderr note when the file cannot be opened).
std::string write_json_file(const ExperimentSpec& spec,
                            const std::vector<RunResult>& results,
                            std::size_t threads, const std::string& dir = ".");

/// CSV with one line per point: label,topology,routing,traffic,load,...
/// (fields carrying separators are RFC 4180-quoted).
void write_csv(std::ostream& os, const ExperimentSpec& spec,
               const std::vector<RunResult>& results);

/// Writes write_csv() output to `dir`/BENCH_<spec.name>.csv; returns the
/// path ("" and a stderr note when the file cannot be opened).
std::string write_csv_file(const ExperimentSpec& spec,
                           const std::vector<RunResult>& results,
                           const std::string& dir = ".");

}  // namespace slimfly::exp
