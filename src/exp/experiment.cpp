#include "exp/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <thread>
#include <iostream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "exp/json.hpp"
#include "sim/simulation.hpp"
#include "topo/registry.hpp"
#include "topo/topology.hpp"
#include "sim/routing/oracle.hpp"
#include "util/rng.hpp"
#include "util/rss.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace slimfly::exp {
namespace {

std::uint64_t fnv1a(const std::string& s, std::uint64_t h) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Digits-only parse shared by the SF_THREADS / SF_INTRA_THREADS policies:
// negatives, signs, junk, and absurd counts all map to `fallback`, never a
// wrapped-around astronomical worker count.
unsigned long parse_worker_env(const char* name, unsigned long fallback) {
  const char* env = std::getenv(name);
  if (!env || !*env) return fallback;
  for (const char* p = env; *p; ++p) {
    if (*p < '0' || *p > '9') return fallback;
  }
  unsigned long v = std::strtoul(env, nullptr, 10);
  if (v > 4096) return fallback;
  return v;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {  // RFC 8259 forbids raw control characters
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(raw);
        }
    }
  }
  return out;
}

std::string csv_field(const std::string& s) { return Table::csv_quote(s); }

// Shortest exact round-trip (exp/json.hpp): BENCH files and CSVs must
// reload to the same bits or golden comparison would chase phantom ULPs.
std::string json_num(double v) { return json::number(v); }

}  // namespace

double mcycles_per_sec(const RunResult& r) {
  if (!(r.wall_seconds > 0.0)) return 0.0;
  return static_cast<double>(r.result.cycles) / r.wall_seconds / 1e6;
}

std::string SeriesSpec::display_label() const {
  if (!label.empty()) return label;
  return topology + "|" + routing + "|" + traffic;
}

sim::SimConfig apply_config_overrides(sim::SimConfig base,
                                      const ConfigOverrides& overrides,
                                      bool allow_run_keys,
                                      const std::string& context) {
  auto integral = [&](const std::string& key, double v, double min,
                      double max) -> long long {
    if (!(v >= min && v <= max) || v != static_cast<double>(static_cast<long long>(v))) {
      throw std::invalid_argument(context + ": config key \"" + key +
                                  "\" must be an integer in " + json_num(min) +
                                  ".." + json_num(max) + " (got " +
                                  json_num(v) + ")");
    }
    return static_cast<long long>(v);
  };
  for (const auto& [key, value] : overrides) {
    if (key == "num_vcs") {
      base.num_vcs = static_cast<int>(integral(key, value, 1, 64));
    } else if (key == "buffer_per_port") {
      base.buffer_per_port = static_cast<int>(integral(key, value, 1, 1 << 20));
    } else if (key == "channel_latency") {
      base.channel_latency = static_cast<int>(integral(key, value, 1, 1024));
    } else if (key == "router_pipeline") {
      base.router_pipeline = static_cast<int>(integral(key, value, 1, 64));
    } else if (key == "credit_delay") {
      base.credit_delay = static_cast<int>(integral(key, value, 0, 1024));
    } else if (key == "alloc_iterations") {
      base.alloc_iterations = static_cast<int>(integral(key, value, 1, 64));
    } else if (key == "output_staging") {
      base.output_staging = static_cast<int>(integral(key, value, 1, 4096));
    } else if (key == "warmup_cycles") {
      base.warmup_cycles = integral(key, value, 0, 1e12);
    } else if (key == "measure_cycles") {
      base.measure_cycles = integral(key, value, 1, 1e12);
    } else if (key == "drain_cycles") {
      base.drain_cycles = integral(key, value, 0, 1e12);
    } else if (key == "latency_cap") {
      if (!(value > 0)) {
        throw std::invalid_argument(context +
                                    ": config key \"latency_cap\" must be "
                                    "positive (got " + json_num(value) + ")");
      }
      base.latency_cap = value;
    } else if (key == "engine") {
      // Allowed per series (unlike seed/intra_threads): the stepping engine
      // cannot change results, point_seed skips it, and golden_mini's
      // engine=active cell relies on the per-series form.
      base.engine = static_cast<sim::StepEngine>(integral(key, value, 0, 1));
    } else if (key == "oracle") {
      // Same contract as engine: every oracle is bit-identical with the
      // dense table (tests/oracle_test.cpp), point_seed skips the key, and
      // golden_mini's oracle=family cell relies on the per-series form.
      base.oracle = static_cast<sim::OracleMode>(integral(key, value, 0, 2));
    } else if (key == "stats_window") {
      // Pure observation (windowed counters never feed back into the
      // simulation), so — like engine/oracle — allowed per series and
      // skipped by point_seed.
      base.stats_window = integral(key, value, 0, 1e9);
    } else if (allow_run_keys && key == "seed") {
      // Doubles carry integers exactly up to 2^53 — far beyond any seed in
      // use; suite files wanting full 64 bits should derive via --seed.
      base.seed = static_cast<std::uint64_t>(integral(key, value, 0, 9007199254740992.0));
    } else if (allow_run_keys && key == "intra_threads") {
      base.intra_threads = static_cast<int>(integral(key, value, 0, 4096));
    } else {
      throw std::invalid_argument(
          context + ": unknown config key \"" + key +
          "\" (known: num_vcs, buffer_per_port, channel_latency, "
          "router_pipeline, credit_delay, alloc_iterations, output_staging, "
          "warmup_cycles, measure_cycles, drain_cycles, latency_cap, engine, "
          "oracle, stats_window" +
          (allow_run_keys ? ", seed, intra_threads)" :
                            "; seed and intra_threads are experiment-level)"));
    }
  }
  return base;
}

ExperimentSpec ExperimentSpec::cross(std::string name,
                                     const std::vector<std::string>& topologies,
                                     const std::vector<std::string>& routings,
                                     const std::vector<std::string>& traffics,
                                     std::vector<double> loads,
                                     sim::SimConfig config) {
  ExperimentSpec spec;
  spec.name = std::move(name);
  spec.loads = std::move(loads);
  spec.config = config;
  for (const auto& topo_spec : topologies) {
    const std::string family = topo::parse_spec(topo_spec).family;
    for (const auto& routing : routings) {
      const std::string need =
          sim::routing_requirement(sim::parse_routing_spec(routing).kind);
      if (!need.empty() && need != family) continue;
      for (const auto& traffic : traffics) {
        const std::string tneed = sim::traffic_requirement(traffic);
        if (!tneed.empty() && tneed != family) continue;
        spec.series.push_back({topo_spec, routing, traffic, "", {}});
      }
    }
  }
  return spec;
}

std::uint64_t point_seed(const ExperimentSpec& spec, std::size_t series_index,
                         std::size_t load_index) {
  const SeriesSpec& s = spec.series.at(series_index);
  std::uint64_t h = fnv1a(s.topology, 1469598103934665603ULL);
  h = fnv1a("|" + s.routing + "|" + s.traffic, h);
  // Config overrides are part of a series' identity (Figure 8a's buffer
  // study runs the same topo/routing/traffic six times); an empty map keeps
  // every pre-override seed unchanged.
  for (const auto& [key, value] : s.config_overrides) {
    // The stepping engine, distance oracle and stats window are "hashed
    // into nothing": they cannot change results, so overriding them must
    // not change the point's streams (golden_mini's engine=active and
    // oracle=family cells reproduce their sibling rows exactly).
    if (key == "engine" || key == "oracle" || key == "stats_window") continue;
    h = fnv1a("|" + key + "=" + json_num(value), h);
  }
  h = splitmix64(h ^ spec.config.seed);
  return splitmix64(h + load_index);
}

std::size_t threads_from_env() {
  return static_cast<std::size_t>(parse_worker_env("SF_THREADS", 0));
}

int intra_threads_from_env() {
  return static_cast<int>(parse_worker_env("SF_INTRA_THREADS", 1));
}

sim::StepEngine step_engine_from_string(const std::string& name,
                                        const std::string& context) {
  if (name == "cycle") return sim::StepEngine::Cycle;
  if (name == "active") return sim::StepEngine::Active;
  throw std::invalid_argument(context + ": unknown stepping engine \"" + name +
                              "\" (known: cycle, active)");
}

sim::StepEngine engine_from_env() {
  const char* env = std::getenv("SF_ENGINE");
  if (!env) return sim::StepEngine::Cycle;
  const std::string name(env);
  if (name == "active") return sim::StepEngine::Active;
  return sim::StepEngine::Cycle;  // unset/junk: the tolerant env fallback
}

sim::OracleMode oracle_from_string(const std::string& name,
                                   const std::string& context) {
  if (name == "auto") return sim::OracleMode::Auto;
  if (name == "table") return sim::OracleMode::Table;
  if (name == "family") return sim::OracleMode::Family;
  throw std::invalid_argument(context + ": unknown distance oracle \"" + name +
                              "\" (known: auto, table, family)");
}

sim::OracleMode oracle_from_env() {
  const char* env = std::getenv("SF_ORACLE");
  if (!env) return sim::OracleMode::Auto;
  const std::string name(env);
  if (name == "table") return sim::OracleMode::Table;
  if (name == "family") return sim::OracleMode::Family;
  return sim::OracleMode::Auto;  // unset/junk: the tolerant env fallback
}

SchedulerMode scheduler_from_string(const std::string& name,
                                    const std::string& context) {
  if (name == "static") return SchedulerMode::Static;
  if (name == "stealing") return SchedulerMode::Stealing;
  throw std::invalid_argument(context + ": unknown scheduler \"" + name +
                              "\" (known: static, stealing)");
}

SchedulerMode scheduler_from_env() {
  const char* env = std::getenv("SF_SCHEDULER");
  if (!env) return SchedulerMode::Static;
  const std::string name(env);
  if (name == "stealing") return SchedulerMode::Stealing;
  return SchedulerMode::Static;  // unset/junk: the tolerant env fallback
}

ExperimentEngine::ExperimentEngine(std::size_t threads) {
  if (threads == 0) threads = threads_from_env();
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_ = threads;
  scheduler_ = scheduler_from_env();
}

ExperimentEngine::~ExperimentEngine() = default;

std::size_t ExperimentEngine::threads() const { return threads_; }

SchedulerMode ExperimentEngine::scheduler() const { return scheduler_; }

void ExperimentEngine::set_scheduler(SchedulerMode mode) { scheduler_ = mode; }

void ExperimentEngine::for_indices(
    std::size_t n, std::size_t width,
    const std::function<void(std::size_t)>& body) {
  if (width <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // The pool is created on first parallel use, so single-threaded wrappers
  // (sim::load_sweep) never spawn a worker they won't use. It is resized
  // when the schedule narrows the across-point width (intra-point workers
  // claiming part of the budget) so the two levels never oversubscribe.
  if (!pool_ || pool_width_ != width) {
    pool_.reset();
    pool_ = std::make_unique<ThreadPool>(width);
    pool_width_ = width;
  }
  parallel_for_checked(*pool_, n, body);
}

std::pair<std::size_t, int> ExperimentEngine::schedule(
    std::size_t n_points, int requested_intra) const {
  // Negatives are treated as sequential, matching the Network-level
  // resolution of the same SimConfig field.
  if (requested_intra != 0 && requested_intra <= 1) return {threads_, 1};
  if (n_points == 0) return {threads_, 1};
  if (requested_intra > 1) {
    // Explicit intra count: across-point width shrinks so that
    // across * intra stays within the engine's worker budget — which also
    // caps intra itself (requesting more stepping workers than the engine
    // owns would oversubscribe every point).
    int intra = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(requested_intra), std::max<std::size_t>(1, threads_)));
    std::size_t across =
        std::max<std::size_t>(1, threads_ / static_cast<std::size_t>(intra));
    return {across, intra};
  }
  // Auto (0): wide grids keep every worker busy across points; narrow grids
  // (fewer points than workers — the paper-scale regime) split the budget
  // so each concurrent point steps router-parallel with the spare workers.
  if (n_points >= threads_) return {threads_, 1};
  std::size_t across = std::max<std::size_t>(1, n_points);
  return {across, static_cast<int>(std::max<std::size_t>(1, threads_ / across))};
}

std::vector<RunResult> ExperimentEngine::run(const ExperimentSpec& spec,
                                             const ProgressFn& on_point) {
  // One shared, immutable Topology per distinct topology spec string, and
  // one shared distance oracle per distinct (topology, resolved OracleMode)
  // — a series may pick its own oracle backend via the per-series "oracle"
  // override, but two series agreeing on both share one instance. Run
  // points only ever read them.
  struct TopoEntry {
    std::string spec;
    std::unique_ptr<Topology> topo;
  };
  struct OracleEntry {
    std::size_t topo_index = 0;
    sim::OracleMode mode = sim::OracleMode::Auto;
    std::shared_ptr<const sim::DistanceOracle> oracle;
  };
  std::vector<TopoEntry> topos;
  std::unordered_map<std::string, std::size_t> topo_index;
  std::vector<OracleEntry> oracles;
  std::map<std::pair<std::size_t, int>, std::size_t> oracle_index;
  std::vector<std::size_t> series_topo;
  // Oracle entry per series; npos for FT-ANCA, which needs no distances.
  constexpr std::size_t kNoOracle = static_cast<std::size_t>(-1);
  std::vector<std::size_t> series_oracle;
  series_topo.reserve(spec.series.size());
  series_oracle.reserve(spec.series.size());
  for (const auto& s : spec.series) {
    // Fail fast on unknown names and incompatible combinations using the
    // spec strings alone — before any topology or distance-table build
    // (minutes at paper scale). Routing typos throw from
    // routing_kind_from_string below. Traffic validation covers the full
    // parameterized grammar (burst:/hotspot:/allreduce:/trace:) without
    // touching the filesystem.
    try {
      sim::validate_traffic_spec(s.traffic);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("experiment \"" + spec.name + "\": " +
                                  e.what());
    }
    topo::validate_spec(s.topology);
    const std::string family = topo::parse_spec(s.topology).family;
    sim::RoutingKind kind = sim::parse_routing_spec(s.routing).kind;
    const std::string need = sim::routing_requirement(kind);
    if (!need.empty() && need != family) {
      throw std::invalid_argument("experiment \"" + spec.name +
                                  "\": routing " + s.routing +
                                  " cannot run on topology " + s.topology);
    }
    const std::string tneed = sim::traffic_requirement(s.traffic);
    if (!tneed.empty() && tneed != family) {
      throw std::invalid_argument("experiment \"" + spec.name +
                                  "\": traffic " + s.traffic +
                                  " cannot run on topology " + s.topology);
    }
    // Validate per-series overrides before any expensive build, too — and
    // capture the resolved config, whose oracle field keys the oracle cache.
    const sim::SimConfig resolved =
        apply_config_overrides(spec.config, s.config_overrides, false,
                               "experiment \"" + spec.name + "\" series \"" +
                                   s.display_label() + "\"");
    auto [it, inserted] = topo_index.emplace(s.topology, topos.size());
    if (inserted) topos.push_back({s.topology, nullptr});
    series_topo.push_back(it->second);
    if (kind == sim::RoutingKind::FatTreeAnca) {
      series_oracle.push_back(kNoOracle);
    } else {
      const std::pair<std::size_t, int> key{it->second,
                                            static_cast<int>(resolved.oracle)};
      auto [oit, oinserted] = oracle_index.emplace(key, oracles.size());
      if (oinserted) oracles.push_back({it->second, resolved.oracle, nullptr});
      series_oracle.push_back(oit->second);
    }
  }

  for_indices(topos.size(), threads_, [&](std::size_t i) {
    topos[i].topo = topo::make(topos[i].spec);
  });
  for_indices(oracles.size(), threads_, [&](std::size_t i) {
    oracles[i].oracle = sim::make_distance_oracle(
        *topos[oracles[i].topo_index].topo, oracles[i].mode);
  });

  PreparedExperiment prepared;
  prepared.loads = spec.loads;
  prepared.config = spec.config;
  prepared.truncate_at_saturation = spec.truncate_at_saturation;
  prepared.seed_fn = [&spec](std::size_t s, std::size_t l) {
    return point_seed(spec, s, l);
  };
  for (std::size_t i = 0; i < spec.series.size(); ++i) {
    const TopoEntry& entry = topos[series_topo[i]];
    std::shared_ptr<const sim::DistanceOracle> dist =
        series_oracle[i] == kNoOracle ? nullptr : oracles[series_oracle[i]].oracle;
    PreparedSeries ps;
    ps.topo = entry.topo.get();
    ps.label = spec.series[i].display_label();
    ps.config_overrides = spec.series[i].config_overrides;
    ps.make_routing = [routing = spec.series[i].routing,
                       topo = entry.topo.get(), dist = std::move(dist)]() {
      auto bundle = sim::make_routing_spec(routing, *topo, dist);
      // The closure's `dist` copy outlives every point, so the algorithm's
      // reference into the shared oracle stays valid.
      return std::shared_ptr<sim::RoutingAlgorithm>(std::move(bundle.algorithm));
    };
    ps.make_traffic = [name = spec.series[i].traffic,
                       topo = entry.topo.get()]() {
      return sim::make_traffic(name, *topo);
    };
    prepared.series.push_back(std::move(ps));
  }
  return run_prepared(prepared, on_point);
}

std::vector<RunResult> ExperimentEngine::run_prepared(
    const PreparedExperiment& prepared, const ProgressFn& on_point) {
  const std::size_t n_loads = prepared.loads.size();
  const std::size_t n_points = prepared.series.size() * n_loads;
  const std::pair<std::size_t, int> sched =
      schedule(n_points, prepared.config.intra_threads);
  const std::size_t across = sched.first;
  const int intra = sched.second;
  std::mutex progress_mutex;
  auto run_point = [&](std::size_t s, std::size_t l, int point_intra,
                       const std::function<int()>& team_provider) {
    const PreparedSeries& series = prepared.series[s];
    sim::SimConfig cfg = prepared.config;
    if (!series.config_overrides.empty()) {
      cfg = apply_config_overrides(cfg, series.config_overrides, false,
                                   "series \"" + series.label + "\"");
    }
    // Execution-only fields, applied after the overrides on purpose: the
    // schedule (or the stealing runner) owns how a point uses the machine,
    // and neither field enters point_seed, so results are unchanged.
    cfg.intra_threads = point_intra;  // never 0 here
    cfg.team_provider = team_provider;
    if (prepared.seed_fn) cfg.seed = prepared.seed_fn(s, l);
    auto routing = series.make_routing();
    auto traffic = series.make_traffic();
    RunResult out;
    out.series_index = s;
    out.load = prepared.loads[l];
    out.seed = cfg.seed;
    Timer timer;
    out.result = sim::simulate(*series.topo, *routing, *traffic, cfg,
                               prepared.loads[l]);
    out.wall_seconds = timer.seconds();
    out.peak_rss_bytes = peak_rss_bytes();
    if (on_point) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      on_point(series, out);
    }
    return out;
  };

  // Per-series lowest load index already observed saturated: truncation
  // drops everything past it, so such points can be skipped outright
  // without changing the kept output (they're the slowest points, too —
  // saturated networks churn maximum traffic until the drain cap).
  std::vector<std::atomic<std::size_t>> first_saturated(prepared.series.size());
  for (auto& f : first_saturated) f.store(n_loads, std::memory_order_relaxed);
  auto note_saturated = [&](std::size_t s, std::size_t l) {
    std::size_t seen = first_saturated[s].load(std::memory_order_relaxed);
    while (l < seen && !first_saturated[s].compare_exchange_weak(
                           seen, l, std::memory_order_relaxed)) {
    }
  };
  // Post-filter shared by every parallel path: keep each series' prefix up
  // to and including its first saturated point — exactly what the
  // sequential early-stop path produces, so all schedules return identical
  // points.
  auto filter_truncated = [&](std::vector<RunResult>&& all) {
    std::vector<RunResult> kept;
    for (std::size_t s = 0; s < prepared.series.size(); ++s) {
      for (std::size_t l = 0; l < n_loads; ++l) {
        kept.push_back(std::move(all[s * n_loads + l]));
        if (prepared.truncate_at_saturation && kept.back().result.saturated) {
          break;
        }
      }
    }
    return kept;
  };

  if (scheduler_ == SchedulerMode::Stealing && threads_ > 1 && n_points > 0) {
    // Work stealing: every engine worker is a runner claiming whole points
    // from a shared counter. A runner that finds the grid drained retires
    // its worker into `spares`; the points still running poll the spare
    // pool once per simulated cycle (via SimConfig::team_provider) and
    // widen their intra-shard stepping teams to absorb the freed workers —
    // so the tail of a grid (a few big points) still fills the machine.
    // `spares` counts permissions, not threads: the claiming point's own
    // Network supplies the extra stepping workers, and the retired runner
    // thread simply exits its loop. Per-point seeds, truncation, and
    // result bytes are identical to the static schedule.
    std::vector<RunResult> all(n_points);
    std::atomic<std::size_t> next{0};
    std::atomic<int> spares{0};
    const int max_team = static_cast<int>(threads_);
    for_indices(threads_, threads_, [&](std::size_t) {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n_points) break;
        const std::size_t s = i / n_loads;
        const std::size_t l = i % n_loads;
        if (prepared.truncate_at_saturation &&
            l > first_saturated[s].load(std::memory_order_relaxed)) {
          continue;  // guaranteed to be truncated; leave the slot empty
        }
        // Claims are point-local: the team starts as just this runner and
        // grows monotonically while the point runs (claimed spares are only
        // returned when the point finishes, below).
        std::atomic<int> claimed{0};
        auto provider = [&spares, &claimed, max_team]() {
          int team = 1 + claimed.load(std::memory_order_relaxed);
          while (team < max_team) {
            int avail = spares.load(std::memory_order_relaxed);
            if (avail <= 0) break;
            if (spares.compare_exchange_weak(avail, avail - 1,
                                             std::memory_order_relaxed)) {
              team = 2 + claimed.fetch_add(1, std::memory_order_relaxed);
            }
          }
          return team;
        };
        // intra_threads = the full worker budget so the Network shards at
        // the finest granularity a grown team could use (sharding is
        // results-invariant; the live team size is what the provider says).
        all[i] = run_point(s, l, max_team, provider);
        spares.fetch_add(claimed.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
        if (all[i].result.saturated) note_saturated(s, l);
      }
      spares.fetch_add(1, std::memory_order_relaxed);
    });
    return filter_truncated(std::move(all));
  }

  if (across == 1 && prepared.truncate_at_saturation) {
    // Sequential early stop: never simulate past a series' saturation point.
    std::vector<RunResult> out;
    for (std::size_t s = 0; s < prepared.series.size(); ++s) {
      for (std::size_t l = 0; l < n_loads; ++l) {
        out.push_back(run_point(s, l, intra, {}));
        if (out.back().result.saturated) break;
      }
    }
    return out;
  }

  std::vector<RunResult> all(n_points);
  for_indices(n_points, across, [&](std::size_t i) {
    const std::size_t s = i / n_loads;
    const std::size_t l = i % n_loads;
    if (prepared.truncate_at_saturation &&
        l > first_saturated[s].load(std::memory_order_relaxed)) {
      return;  // guaranteed to be truncated; leave the slot empty
    }
    all[i] = run_point(s, l, intra, {});
    if (all[i].result.saturated) note_saturated(s, l);
  });
  return filter_truncated(std::move(all));
}

Table to_table(const ExperimentSpec& spec,
               const std::vector<RunResult>& results) {
  Table table({"series", "offered", "latency", "net_latency", "accepted",
               "saturated"});
  for (const auto& r : results) {
    table.add_row({spec.series.at(r.series_index).display_label(),
                   Table::num(r.load, 2), Table::num(r.result.avg_latency, 1),
                   Table::num(r.result.avg_network_latency, 1),
                   Table::num(r.result.accepted_load, 3),
                   r.result.saturated ? "yes" : "no"});
  }
  return table;
}

void write_json(std::ostream& os, const ExperimentSpec& spec,
                const std::vector<RunResult>& results, std::size_t threads) {
  os << "{\n";
  os << "  \"experiment\": \"" << json_escape(spec.name) << "\",\n";
  os << "  \"threads\": " << threads << ",\n";
  os << "  \"config\": {\"warmup_cycles\": " << spec.config.warmup_cycles
     << ", \"measure_cycles\": " << spec.config.measure_cycles
     << ", \"drain_cycles\": " << spec.config.drain_cycles
     << ", \"num_vcs\": " << spec.config.num_vcs
     << ", \"buffer_per_port\": " << spec.config.buffer_per_port
     << ", \"intra_threads\": " << spec.config.intra_threads
     << ", \"engine\": \"" << sim::to_string(spec.config.engine)
     << "\", \"stats_window\": " << spec.config.stats_window
     << ", \"seed\": " << spec.config.seed << "},\n";
  os << "  \"series\": [\n";
  for (std::size_t s = 0; s < spec.series.size(); ++s) {
    const SeriesSpec& series = spec.series[s];
    os << "    {\"label\": \"" << json_escape(series.display_label())
       << "\", \"topology\": \"" << json_escape(series.topology)
       << "\", \"routing\": \"" << json_escape(series.routing)
       << "\", \"traffic\": \"" << json_escape(series.traffic)
       << "\", \"points\": [\n";
    bool first = true;
    for (const auto& r : results) {
      if (r.series_index != s) continue;
      os << (first ? "" : ",\n");
      first = false;
      os << "      {\"load\": " << json_num(r.load) << ", \"seed\": " << r.seed
         << ", \"wall_seconds\": " << json_num(r.wall_seconds)
         << ", \"peak_rss_bytes\": " << r.peak_rss_bytes
         << ", \"cycles\": " << r.result.cycles
         << ", \"mcycles_per_sec\": " << json_num(mcycles_per_sec(r))
         << ", \"latency\": " << json_num(r.result.avg_latency)
         << ", \"network_latency\": " << json_num(r.result.avg_network_latency)
         << ", \"p99_latency\": " << json_num(r.result.p99_latency)
         << ", \"accepted\": " << json_num(r.result.accepted_load)
         << ", \"delivered\": " << r.result.delivered
         << ", \"saturated\": " << (r.result.saturated ? "true" : "false");
      if (!r.result.windows.empty()) {
        // Compact per-window rows [generated, delivered, latency_sum,
        // dep_stalled_sends, dep_stall_cycles]; sweep diff ignores unknown
        // keys, so windowed runs stay comparable to older benches.
        os << ", \"stats_window\": " << r.result.stats_window
           << ", \"windows\": [";
        for (std::size_t w = 0; w < r.result.windows.size(); ++w) {
          const sim::WindowStats& ws = r.result.windows[w];
          os << (w ? ", " : "") << "[" << ws.generated << ", " << ws.delivered
             << ", " << ws.latency_sum << ", " << ws.dep_stalled_sends << ", "
             << ws.dep_stall_cycles << "]";
        }
        os << "]";
      }
      os << "}";
    }
    os << "\n    ]}" << (s + 1 < spec.series.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

std::string write_json_file(const ExperimentSpec& spec,
                            const std::vector<RunResult>& results,
                            std::size_t threads, const std::string& dir) {
  std::string path = dir + "/BENCH_" + spec.name + ".json";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "warning: cannot write " << path << "\n";
    return "";
  }
  write_json(os, spec, results, threads);
  return path;
}

void write_csv(std::ostream& os, const ExperimentSpec& spec,
               const std::vector<RunResult>& results) {
  os << "label,topology,routing,traffic,load,seed,wall_seconds,"
        "peak_rss_bytes,cycles,"
        "mcycles_per_sec,latency,"
        "network_latency,p99_latency,accepted,delivered,saturated\n";
  for (const auto& r : results) {
    const SeriesSpec& s = spec.series.at(r.series_index);
    os << csv_field(s.display_label()) << ',' << csv_field(s.topology) << ','
       << csv_field(s.routing) << ',' << csv_field(s.traffic) << ','
       << json_num(r.load) << ',' << r.seed << ','
       << json_num(r.wall_seconds) << ',' << r.peak_rss_bytes << ','
       << r.result.cycles << ','
       << json_num(mcycles_per_sec(r)) << ','
       << json_num(r.result.avg_latency)
       << ',' << json_num(r.result.avg_network_latency) << ','
       << json_num(r.result.p99_latency) << ','
       << json_num(r.result.accepted_load) << ',' << r.result.delivered << ','
       << (r.result.saturated ? "yes" : "no") << '\n';
  }
}

std::string write_csv_file(const ExperimentSpec& spec,
                           const std::vector<RunResult>& results,
                           const std::string& dir) {
  std::string path = dir + "/BENCH_" + spec.name + ".csv";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "warning: cannot write " << path << "\n";
    return "";
  }
  write_csv(os, spec, results);
  return path;
}

}  // namespace slimfly::exp
