#pragma once
// Minimal strict JSON reader shared by the suite loader (exp/suite.hpp) and
// the BENCH trajectory differ (exp/diff.hpp). Deliberately tiny: the repo
// bakes in no third-party JSON dependency, and the two consumers only need
// a faithful value tree with good error messages.
//
// Properties the consumers rely on:
//   * strict RFC 8259 parsing — trailing garbage, unquoted keys, comments,
//     and control characters in strings are errors, never silently accepted;
//   * errors are std::invalid_argument naming line and column, so a typo in
//     a suite file is self-serve diagnosable from the message alone;
//   * object member order is preserved (round-trip serialization stays
//     diffable) and duplicate keys are rejected;
//   * numbers keep their raw text next to the double value, so 64-bit seeds
//     round-trip exactly through as_uint64() without a double detour;
//   * nesting depth is capped, so adversarial input exhausts neither the
//     stack nor the parser (tests/suite_test.cpp fuzzes truncations).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace slimfly::exp::json {

class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string raw;     ///< exact source text of a Number
  std::string string;  ///< decoded contents of a String
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  ///< insertion order

  bool is_null() const { return kind == Kind::Null; }
  bool is_bool() const { return kind == Kind::Bool; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_object() const { return kind == Kind::Object; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;

  /// Human name of the kind ("object", "number", ...) for error messages.
  static const char* kind_name(Kind kind);

  // Checked accessors: throw std::invalid_argument naming `context` (a
  // JSON-path-like string maintained by the caller) and the actual kind.
  bool as_bool(const std::string& context) const;
  double as_number(const std::string& context) const;
  /// Exact unsigned 64-bit read from the raw number text (rejects
  /// fractions, exponents, and negatives).
  std::uint64_t as_uint64(const std::string& context) const;
  const std::string& as_string(const std::string& context) const;
  const std::vector<Value>& as_array(const std::string& context) const;
  const std::vector<std::pair<std::string, Value>>& as_object(
      const std::string& context) const;
};

/// Parses exactly one JSON document. Throws std::invalid_argument with
/// "<origin>: line L col C: ..." on any syntax error (origin "" omits the
/// prefix — useful when the text does not come from a file).
Value parse(const std::string& text, const std::string& origin = "");

/// Serializes a string with RFC 8259 escaping, including the quotes.
std::string quote(const std::string& s);

/// Serializes a double as the shortest decimal that parses back to the
/// same bits (std::to_chars; precision-17 fallback on older toolchains).
/// Every number the BENCH/suite writers emit goes through this, so written
/// trajectories reload exactly — the property golden-file comparison and
/// `sweep diff`'s default zero tolerance rest on.
std::string number(double v);

}  // namespace slimfly::exp::json
