#include "exp/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace slimfly::exp::json {
namespace {

constexpr int kMaxDepth = 64;  // far beyond any suite/BENCH file; bounds fuzz

class Parser {
 public:
  Parser(const std::string& text, const std::string& origin)
      : text_(text), origin_(origin) {}

  Value run() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw std::invalid_argument((origin_.empty() ? "" : origin_ + ": ") +
                                "line " + std::to_string(line) + " col " +
                                std::to_string(col) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 64 levels");
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (consume_literal("true")) {
          Value v;
          v.kind = Value::Kind::Bool;
          v.boolean = true;
          return v;
        }
        fail("invalid literal (expected \"true\")");
      case 'f':
        if (consume_literal("false")) {
          Value v;
          v.kind = Value::Kind::Bool;
          v.boolean = false;
          return v;
        }
        fail("invalid literal (expected \"false\")");
      case 'n':
        if (consume_literal("null")) return Value{};
        fail("invalid literal (expected \"null\")");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  Value parse_object(int depth) {
    ++pos_;  // '{'
    Value v;
    v.kind = Value::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected '\"' to start an object key");
      std::string key = parse_string();
      for (const auto& member : v.object) {
        if (member.first == key) fail("duplicate object key \"" + key + "\"");
      }
      skip_ws();
      if (peek() != ':') fail("expected ':' after object key \"" + key + "\"");
      ++pos_;
      v.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value parse_array(int depth) {
    ++pos_;  // '['
    Value v;
    v.kind = Value::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value(depth + 1));
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    ++pos_;  // opening '"'
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;
      char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) fail("truncated \\u escape");
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs collapse to
          // U+FFFD — suite files are ASCII in practice).
          if (code >= 0xD800 && code <= 0xDFFF) code = 0xFFFD;
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("invalid escape sequence");
      }
    }
  }

  Value parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("malformed number");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // leading zeros are not JSON
    } else {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("malformed number (digits required after '.')");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("malformed number (digits required in exponent)");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    Value v;
    v.kind = Value::Kind::Number;
    v.raw = text_.substr(start, pos_ - start);
    v.number = std::strtod(v.raw.c_str(), nullptr);
    return v;
  }

  const std::string& text_;
  const std::string& origin_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& member : object) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

const char* Value::kind_name(Kind kind) {
  switch (kind) {
    case Kind::Null: return "null";
    case Kind::Bool: return "boolean";
    case Kind::Number: return "number";
    case Kind::String: return "string";
    case Kind::Array: return "array";
    case Kind::Object: return "object";
  }
  return "?";
}

namespace {
[[noreturn]] void kind_error(const std::string& context, const char* want,
                             Value::Kind got) {
  throw std::invalid_argument(context + ": expected " + want + ", got " +
                              Value::kind_name(got));
}
}  // namespace

bool Value::as_bool(const std::string& context) const {
  if (kind != Kind::Bool) kind_error(context, "boolean", kind);
  return boolean;
}

double Value::as_number(const std::string& context) const {
  if (kind != Kind::Number) kind_error(context, "number", kind);
  return number;
}

std::uint64_t Value::as_uint64(const std::string& context) const {
  if (kind != Kind::Number) kind_error(context, "number", kind);
  if (raw.empty() || raw.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument(context + ": expected a non-negative integer, got " + raw);
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
  if (errno != 0 || (end && *end)) {
    throw std::invalid_argument(context + ": integer out of range: " + raw);
  }
  return static_cast<std::uint64_t>(v);
}

const std::string& Value::as_string(const std::string& context) const {
  if (kind != Kind::String) kind_error(context, "string", kind);
  return string;
}

const std::vector<Value>& Value::as_array(const std::string& context) const {
  if (kind != Kind::Array) kind_error(context, "array", kind);
  return array;
}

const std::vector<std::pair<std::string, Value>>& Value::as_object(
    const std::string& context) const {
  if (kind != Kind::Object) kind_error(context, "object", kind);
  return object;
}

Value parse(const std::string& text, const std::string& origin) {
  return Parser(text, origin).run();
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(raw);
        }
    }
  }
  out += '"';
  return out;
}

std::string number(double v) {
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  char buf[32];
  auto result = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, result.ptr);
#else
  std::ostringstream ss;
  ss.precision(17);
  ss << v;
  return ss.str();
#endif
}

}  // namespace slimfly::exp::json
