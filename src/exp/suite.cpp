#include "exp/suite.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "exp/json.hpp"
#include "sim/simulation.hpp"
#include "sim/traffic.hpp"
#include "topo/registry.hpp"

namespace slimfly::exp {
namespace {

std::string json_num(double v) { return json::number(v); }

[[noreturn]] void fail(const std::string& context, const std::string& msg) {
  throw std::invalid_argument(context + ": " + msg);
}

void check_keys(const json::Value& obj, const std::string& context,
                const std::vector<std::string>& allowed) {
  for (const auto& [key, value] : obj.as_object(context)) {
    (void)value;
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      std::string known;
      for (const auto& k : allowed) known += (known.empty() ? "" : ", ") + k;
      fail(context, "unknown key \"" + key + "\" (known: " + known + ")");
    }
  }
}

ConfigOverrides parse_config_block(const json::Value& v,
                                   const std::string& context,
                                   bool allow_run_keys) {
  ConfigOverrides out;
  for (const auto& [key, value] : v.as_object(context)) {
    if (key == "engine" && value.is_string()) {
      // String-valued config key: "cycle" | "active", stored as the
      // StepEngine enum value (serialize_config writes the name back).
      out[key] = static_cast<double>(step_engine_from_string(
          value.as_string(context + "." + key), context + "." + key));
      continue;
    }
    if (key == "oracle" && value.is_string()) {
      // Likewise "auto" | "table" | "family" for the distance oracle.
      out[key] = static_cast<double>(oracle_from_string(
          value.as_string(context + "." + key), context + "." + key));
      continue;
    }
    out[key] = value.as_number(context + "." + key);
  }
  // Validate keys and ranges once against a scratch config so errors
  // surface at parse time, not mid-run.
  apply_config_overrides(sim::SimConfig{}, out, allow_run_keys, context);
  return out;
}

std::vector<double> parse_loads_array(const json::Value& v,
                                      const std::string& context) {
  std::vector<double> loads;
  for (const auto& item : v.as_array(context)) {
    double load = item.as_number(context + "[" + std::to_string(loads.size()) + "]");
    if (!(load > 0.0)) {
      fail(context, "loads must be positive (got " + json_num(load) + ")");
    }
    loads.push_back(load);
  }
  if (loads.empty()) fail(context, "empty load list");
  // Ascending, like the CLI: the engine's saturation truncation assumes it.
  std::sort(loads.begin(), loads.end());
  return loads;
}

/// "slimfly:q=7" or {"small": "slimfly:q=7", "paper": "slimfly:q=19"};
/// every spec is structurally validated, every scale key must be declared.
std::map<std::string, std::string> parse_topology_entry(
    const json::Value& v, const std::string& context,
    const std::map<std::string, SuiteScale>& scales) {
  std::map<std::string, std::string> out;
  if (v.is_string()) {
    out[""] = v.string;
  } else if (v.is_object()) {
    for (const auto& [scale, spec] : v.object) {
      if (scales.find(scale) == scales.end()) {
        fail(context, "scale \"" + scale + "\" is not declared in \"scales\"");
      }
      out[scale] = spec.as_string(context + "." + scale);
    }
    if (out.empty()) fail(context, "empty per-scale topology object");
  } else {
    fail(context, std::string("expected a topology spec string or a "
                              "{scale: spec} object, got ") +
                      json::Value::kind_name(v.kind));
  }
  for (const auto& [scale, spec] : out) {
    (void)scale;
    topo::validate_spec(spec);
  }
  return out;
}

void validate_routing_and_traffic(const std::string& routing,
                                  const std::string& traffic,
                                  const std::string& context) {
  sim::parse_routing_spec(routing);  // throws with the named spec
  try {
    // Full grammar check, parameterized specs included; no filesystem
    // access (trace files are opened when the series actually runs).
    sim::validate_traffic_spec(traffic);
  } catch (const std::invalid_argument& e) {
    fail(context, e.what());
  }
}

/// Explicit series must be compatible on every scale they name; cross
/// blocks filter instead (the ExperimentSpec::cross contract).
void validate_series_compat(const SuiteSeries& series,
                            const std::string& context) {
  const std::string need =
      sim::routing_requirement(sim::parse_routing_spec(series.routing).kind);
  const std::string tneed = sim::traffic_requirement(series.traffic);
  for (const auto& [scale, topo_spec] : series.topology) {
    const std::string family = topo::parse_spec(topo_spec).family;
    const std::string where =
        context + (scale.empty() ? "" : " (scale " + scale + ")");
    if (!need.empty() && need != family) {
      fail(where, "routing " + series.routing + " cannot run on topology " +
                      topo_spec);
    }
    if (!tneed.empty() && tneed != family) {
      fail(where, "traffic " + series.traffic + " cannot run on topology " +
                      topo_spec);
    }
  }
}

void serialize_config(std::ostream& os, const ConfigOverrides& config,
                      const std::string& indent) {
  os << "{";
  bool first = true;
  for (const auto& [key, value] : config) {
    os << (first ? "" : ",") << "\n" << indent << "  " << json::quote(key)
       << ": ";
    if (key == "engine") {
      os << json::quote(
          sim::to_string(static_cast<sim::StepEngine>(value != 0.0)));
    } else if (key == "oracle") {
      os << json::quote(sim::to_string(
          static_cast<sim::OracleMode>(static_cast<int>(value))));
    } else {
      os << json_num(value);
    }
    first = false;
  }
  os << "\n" << indent << "}";
}

void serialize_topology(std::ostream& os,
                        const std::map<std::string, std::string>& topology) {
  if (topology.size() == 1 && topology.begin()->first.empty()) {
    os << json::quote(topology.begin()->second);
    return;
  }
  os << "{";
  bool first = true;
  for (const auto& [scale, spec] : topology) {
    os << (first ? "" : ", ") << json::quote(scale) << ": "
       << json::quote(spec);
    first = false;
  }
  os << "}";
}

void serialize_loads(std::ostream& os, const std::vector<double>& loads) {
  os << "[";
  for (std::size_t i = 0; i < loads.size(); ++i) {
    os << (i ? ", " : "") << json_num(loads[i]);
  }
  os << "]";
}

}  // namespace

std::vector<std::string> Suite::scale_names() const {
  std::vector<std::string> names;
  for (const auto& [scale_name, scale] : scales) {
    (void)scale;
    names.push_back(scale_name);
  }
  return names;
}

Suite parse_suite(const std::string& text, const std::string& origin) {
  const std::string ctx = origin.empty() ? "suite" : origin;
  json::Value root = json::parse(text, origin);
  if (!root.is_object()) {
    fail(ctx, std::string("expected a suite object at top level, got ") +
                  json::Value::kind_name(root.kind));
  }
  check_keys(root, ctx,
             {"suite", "description", "scale", "scales", "loads", "config",
              "truncate_at_saturation", "threads", "scheduler", "series",
              "cross"});

  Suite suite;
  const json::Value* name = root.find("suite");
  if (!name) fail(ctx, "missing required key \"suite\" (the experiment tag)");
  suite.name = name->as_string(ctx + ".suite");
  if (suite.name.empty() ||
      suite.name.find_first_not_of(
          "abcdefghijklmnopqrstuvwxyz"
          "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-") != std::string::npos) {
    fail(ctx + ".suite",
         "\"" + suite.name +
             "\" is not a valid tag (need [A-Za-z0-9._-]+; it names "
             "BENCH_<tag>.json)");
  }

  if (const json::Value* v = root.find("description")) {
    suite.description = v->as_string(ctx + ".description");
  }
  if (const json::Value* v = root.find("scales")) {
    for (const auto& [scale_name, scale_val] : v->as_object(ctx + ".scales")) {
      const std::string sctx = ctx + ".scales." + scale_name;
      if (scale_name.empty()) fail(sctx, "empty scale name");
      check_keys(scale_val, sctx, {"config", "loads"});
      SuiteScale scale;
      if (const json::Value* c = scale_val.find("config")) {
        scale.config = parse_config_block(*c, sctx + ".config", true);
      }
      if (const json::Value* l = scale_val.find("loads")) {
        scale.loads = parse_loads_array(*l, sctx + ".loads");
      }
      suite.scales.emplace(scale_name, std::move(scale));
    }
  }
  if (const json::Value* v = root.find("scale")) {
    suite.default_scale = v->as_string(ctx + ".scale");
    if (suite.scales.find(suite.default_scale) == suite.scales.end()) {
      fail(ctx + ".scale", "default scale \"" + suite.default_scale +
                               "\" is not declared in \"scales\"");
    }
  }
  if (const json::Value* v = root.find("loads")) {
    suite.loads = parse_loads_array(*v, ctx + ".loads");
  }
  if (suite.loads.empty()) {
    if (suite.scales.empty()) fail(ctx, "missing required key \"loads\"");
    for (const auto& [scale_name, scale] : suite.scales) {
      if (scale.loads.empty()) {
        fail(ctx, "no top-level \"loads\" and scale \"" + scale_name +
                      "\" defines none");
      }
    }
  }
  if (const json::Value* v = root.find("config")) {
    suite.config = parse_config_block(*v, ctx + ".config", true);
  }
  if (const json::Value* v = root.find("truncate_at_saturation")) {
    suite.truncate_at_saturation =
        v->as_bool(ctx + ".truncate_at_saturation");
  }
  if (const json::Value* v = root.find("threads")) {
    const std::uint64_t t = v->as_uint64(ctx + ".threads");
    if (t > 4096) fail(ctx + ".threads", "want 0..4096 (0 = auto)");
    suite.threads = static_cast<std::size_t>(t);
  }
  if (const json::Value* v = root.find("scheduler")) {
    suite.scheduler = v->as_string(ctx + ".scheduler");
    // Validate eagerly (strict parse everywhere else); the string form is
    // kept so "" can mean "unset — env/default decides".
    scheduler_from_string(suite.scheduler, ctx + ".scheduler");
  }

  if (const json::Value* v = root.find("series")) {
    const auto& items = v->as_array(ctx + ".series");
    for (std::size_t i = 0; i < items.size(); ++i) {
      const std::string sctx = ctx + ".series[" + std::to_string(i) + "]";
      check_keys(items[i], sctx,
                 {"topology", "routing", "traffic", "label", "config"});
      SuiteSeries series;
      const json::Value* topo = items[i].find("topology");
      if (!topo) fail(sctx, "missing required key \"topology\"");
      series.topology =
          parse_topology_entry(*topo, sctx + ".topology", suite.scales);
      const json::Value* routing = items[i].find("routing");
      if (!routing) fail(sctx, "missing required key \"routing\"");
      series.routing = routing->as_string(sctx + ".routing");
      const json::Value* traffic = items[i].find("traffic");
      if (!traffic) fail(sctx, "missing required key \"traffic\"");
      series.traffic = traffic->as_string(sctx + ".traffic");
      if (const json::Value* label = items[i].find("label")) {
        series.label = label->as_string(sctx + ".label");
      }
      if (const json::Value* config = items[i].find("config")) {
        series.config = parse_config_block(*config, sctx + ".config", false);
      }
      validate_routing_and_traffic(series.routing, series.traffic, sctx);
      validate_series_compat(series, sctx);
      suite.series.push_back(std::move(series));
    }
  }

  if (const json::Value* v = root.find("cross")) {
    const std::string cctx = ctx + ".cross";
    check_keys(*v, cctx, {"topologies", "routings", "traffics"});
    const json::Value* topos = v->find("topologies");
    const json::Value* routings = v->find("routings");
    const json::Value* traffics = v->find("traffics");
    if (!topos || !routings || !traffics) {
      fail(cctx, "needs all of \"topologies\", \"routings\", \"traffics\"");
    }
    const auto& titems = topos->as_array(cctx + ".topologies");
    for (std::size_t i = 0; i < titems.size(); ++i) {
      suite.cross_topologies.push_back(parse_topology_entry(
          titems[i], cctx + ".topologies[" + std::to_string(i) + "]",
          suite.scales));
    }
    for (const auto& r : routings->as_array(cctx + ".routings")) {
      suite.cross_routings.push_back(r.as_string(cctx + ".routings"));
      sim::parse_routing_spec(suite.cross_routings.back());
    }
    for (const auto& t : traffics->as_array(cctx + ".traffics")) {
      const std::string traffic = t.as_string(cctx + ".traffics");
      try {
        sim::validate_traffic_spec(traffic);
      } catch (const std::invalid_argument& e) {
        fail(cctx + ".traffics", e.what());
      }
      suite.cross_traffics.push_back(traffic);
    }
    if (suite.cross_topologies.empty() || suite.cross_routings.empty() ||
        suite.cross_traffics.empty()) {
      fail(cctx, "every axis needs at least one entry");
    }
  }

  if (suite.series.empty() && suite.cross_topologies.empty()) {
    fail(ctx, "a suite needs \"series\", \"cross\", or both");
  }
  return suite;
}

Suite load_suite_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::invalid_argument("cannot read suite file \"" + path + "\"");
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return parse_suite(buffer.str(), path);
}

std::string resolve_scale(const Suite& suite, const std::string& requested) {
  const std::string ctx = "suite \"" + suite.name + "\"";
  if (suite.scales.empty()) {
    if (!requested.empty()) {
      fail(ctx,
           "scale \"" + requested + "\" requested but the suite defines none");
    }
    return "";
  }
  const std::string chosen =
      !requested.empty()
          ? requested
          : (!suite.default_scale.empty() ? suite.default_scale : "small");
  if (suite.scales.find(chosen) == suite.scales.end()) {
    std::string known;
    for (const auto& name : suite.scale_names()) {
      known += (known.empty() ? "" : ", ") + name;
    }
    fail(ctx, "unknown scale \"" + chosen + "\" (available: " + known + ")");
  }
  return chosen;
}

bool suite_sets_config_key(const Suite& suite, const std::string& scale,
                           const std::string& key) {
  if (suite.config.count(key)) return true;
  const std::string chosen = resolve_scale(suite, scale);
  return !chosen.empty() && suite.scales.at(chosen).config.count(key) > 0;
}

ExperimentSpec suite_to_spec(const Suite& suite, const std::string& scale) {
  const std::string ctx = "suite \"" + suite.name + "\"";
  const std::string chosen = resolve_scale(suite, scale);

  ExperimentSpec spec;
  spec.name = suite.name;
  spec.truncate_at_saturation = suite.truncate_at_saturation;
  sim::SimConfig cfg;
  cfg = apply_config_overrides(cfg, suite.config, true, ctx + " config");
  spec.loads = suite.loads;
  if (!chosen.empty()) {
    const SuiteScale& sc = suite.scales.at(chosen);
    cfg = apply_config_overrides(cfg, sc.config, true,
                                 ctx + " scale \"" + chosen + "\" config");
    if (!sc.loads.empty()) spec.loads = sc.loads;
  }
  spec.config = cfg;
  if (spec.loads.empty()) {
    fail(ctx, "no load grid at scale \"" + chosen + "\"");
  }

  auto resolve = [&chosen](const std::map<std::string, std::string>& m)
      -> const std::string* {
    auto it = m.find("");
    if (it != m.end()) return &it->second;
    it = m.find(chosen);
    return it == m.end() ? nullptr : &it->second;
  };

  for (const SuiteSeries& series : suite.series) {
    const std::string* topo = resolve(series.topology);
    if (!topo) continue;  // series not present at this scale
    spec.series.push_back(
        {*topo, series.routing, series.traffic, series.label, series.config});
  }
  if (!suite.cross_topologies.empty()) {
    std::vector<std::string> topos;
    for (const auto& entry : suite.cross_topologies) {
      if (const std::string* topo = resolve(entry)) topos.push_back(*topo);
    }
    ExperimentSpec crossed =
        ExperimentSpec::cross(suite.name, topos, suite.cross_routings,
                              suite.cross_traffics, spec.loads, cfg);
    for (auto& s : crossed.series) spec.series.push_back(std::move(s));
  }
  if (spec.series.empty()) {
    fail(ctx, chosen.empty()
                  ? std::string("no series to run")
                  : "no series present at scale \"" + chosen + "\"");
  }
  return spec;
}

Suite suite_from_spec(const ExperimentSpec& spec, std::size_t threads,
                      const std::string& scheduler) {
  if (spec.config.seed > (1ULL << 53)) {
    throw std::invalid_argument(
        "suite_from_spec: seed " + std::to_string(spec.config.seed) +
        " exceeds 2^53 and cannot round-trip through a JSON number");
  }
  Suite suite;
  suite.name = spec.name;
  suite.loads = spec.loads;
  suite.truncate_at_saturation = spec.truncate_at_saturation;
  suite.threads = threads;
  if (!scheduler.empty()) {
    scheduler_from_string(scheduler, "suite_from_spec");
    suite.scheduler = scheduler;
  }
  const sim::SimConfig& c = spec.config;
  // Every field explicit, so the suite is immune to SimConfig default drift
  // — a requirement for golden trajectories.
  suite.config = {{"num_vcs", static_cast<double>(c.num_vcs)},
                  {"buffer_per_port", static_cast<double>(c.buffer_per_port)},
                  {"channel_latency", static_cast<double>(c.channel_latency)},
                  {"router_pipeline", static_cast<double>(c.router_pipeline)},
                  {"credit_delay", static_cast<double>(c.credit_delay)},
                  {"alloc_iterations", static_cast<double>(c.alloc_iterations)},
                  {"output_staging", static_cast<double>(c.output_staging)},
                  {"warmup_cycles", static_cast<double>(c.warmup_cycles)},
                  {"measure_cycles", static_cast<double>(c.measure_cycles)},
                  {"drain_cycles", static_cast<double>(c.drain_cycles)},
                  {"latency_cap", c.latency_cap},
                  {"seed", static_cast<double>(c.seed)},
                  {"intra_threads", static_cast<double>(c.intra_threads)},
                  {"engine", static_cast<double>(c.engine)},
                  {"oracle", static_cast<double>(c.oracle)},
                  {"stats_window", static_cast<double>(c.stats_window)}};
  for (const SeriesSpec& s : spec.series) {
    SuiteSeries series;
    series.topology[""] = s.topology;
    series.routing = s.routing;
    series.traffic = s.traffic;
    series.label = s.label;
    series.config = s.config_overrides;
    suite.series.push_back(std::move(series));
  }
  return suite;
}

std::string serialize_suite(const Suite& suite) {
  std::ostringstream os;
  os << "{\n  \"suite\": " << json::quote(suite.name);
  if (!suite.description.empty()) {
    os << ",\n  \"description\": " << json::quote(suite.description);
  }
  if (!suite.default_scale.empty()) {
    os << ",\n  \"scale\": " << json::quote(suite.default_scale);
  }
  if (!suite.scales.empty()) {
    os << ",\n  \"scales\": {";
    bool first_scale = true;
    for (const auto& [name, scale] : suite.scales) {
      os << (first_scale ? "" : ",") << "\n    " << json::quote(name) << ": {";
      bool first_part = true;
      if (!scale.config.empty()) {
        os << "\n      \"config\": ";
        serialize_config(os, scale.config, "      ");
        first_part = false;
      }
      if (!scale.loads.empty()) {
        os << (first_part ? "" : ",") << "\n      \"loads\": ";
        serialize_loads(os, scale.loads);
      }
      os << "\n    }";
      first_scale = false;
    }
    os << "\n  }";
  }
  if (!suite.loads.empty()) {
    os << ",\n  \"loads\": ";
    serialize_loads(os, suite.loads);
  }
  if (!suite.config.empty()) {
    os << ",\n  \"config\": ";
    serialize_config(os, suite.config, "  ");
  }
  os << ",\n  \"truncate_at_saturation\": "
     << (suite.truncate_at_saturation ? "true" : "false");
  if (suite.threads != 0) os << ",\n  \"threads\": " << suite.threads;
  if (!suite.scheduler.empty()) {
    os << ",\n  \"scheduler\": " << json::quote(suite.scheduler);
  }
  if (!suite.series.empty()) {
    os << ",\n  \"series\": [";
    for (std::size_t i = 0; i < suite.series.size(); ++i) {
      const SuiteSeries& s = suite.series[i];
      os << (i ? "," : "") << "\n    {\"topology\": ";
      serialize_topology(os, s.topology);
      os << ", \"routing\": " << json::quote(s.routing)
         << ", \"traffic\": " << json::quote(s.traffic);
      if (!s.label.empty()) os << ", \"label\": " << json::quote(s.label);
      if (!s.config.empty()) {
        os << ",\n     \"config\": ";
        serialize_config(os, s.config, "     ");
      }
      os << "}";
    }
    os << "\n  ]";
  }
  if (!suite.cross_topologies.empty()) {
    os << ",\n  \"cross\": {\n    \"topologies\": [";
    for (std::size_t i = 0; i < suite.cross_topologies.size(); ++i) {
      os << (i ? ", " : "");
      serialize_topology(os, suite.cross_topologies[i]);
    }
    os << "],\n    \"routings\": [";
    for (std::size_t i = 0; i < suite.cross_routings.size(); ++i) {
      os << (i ? ", " : "") << json::quote(suite.cross_routings[i]);
    }
    os << "],\n    \"traffics\": [";
    for (std::size_t i = 0; i < suite.cross_traffics.size(); ++i) {
      os << (i ? ", " : "") << json::quote(suite.cross_traffics[i]);
    }
    os << "]\n  }";
  }
  os << "\n}\n";
  return os.str();
}

}  // namespace slimfly::exp
