#include "exp/diff.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "exp/json.hpp"

namespace slimfly::exp {
namespace {

std::string json_num(double v) { return json::number(v); }

double number_field(const json::Value& obj, const char* key,
                    const std::string& context) {
  const json::Value* v = obj.find(key);
  if (!v) {
    throw std::invalid_argument(context + ": missing \"" + key + "\"");
  }
  return v->as_number(context + "." + key);
}

bool within(double a, double b, const DiffOptions& options) {
  return std::abs(a - b) <=
         options.abs_tol + options.rel_tol * std::max(std::abs(a), std::abs(b));
}

}  // namespace

std::string TrajectoryPoint::key() const {
  return (label.empty() ? topology + "|" + routing + "|" + traffic : label) +
         " @ " + json_num(load);
}

Trajectory parse_bench_json(const std::string& text,
                            const std::string& origin) {
  const std::string ctx = origin.empty() ? "bench json" : origin;
  json::Value root = json::parse(text, origin);
  if (!root.is_object()) {
    throw std::invalid_argument(ctx + ": expected a BENCH object at top level");
  }
  Trajectory out;
  if (const json::Value* v = root.find("experiment")) {
    out.experiment = v->as_string(ctx + ".experiment");
  }
  const json::Value* series = root.find("series");
  if (!series) {
    throw std::invalid_argument(ctx + ": missing \"series\" array");
  }
  std::unordered_set<std::string> seen;
  const auto& items = series->as_array(ctx + ".series");
  for (std::size_t s = 0; s < items.size(); ++s) {
    const std::string sctx = ctx + ".series[" + std::to_string(s) + "]";
    const json::Value& entry = items[s];
    entry.as_object(sctx);
    TrajectoryPoint base;
    if (const json::Value* v = entry.find("label")) {
      base.label = v->as_string(sctx + ".label");
    }
    if (const json::Value* v = entry.find("topology")) {
      base.topology = v->as_string(sctx + ".topology");
    }
    if (const json::Value* v = entry.find("routing")) {
      base.routing = v->as_string(sctx + ".routing");
    }
    if (const json::Value* v = entry.find("traffic")) {
      base.traffic = v->as_string(sctx + ".traffic");
    }
    const json::Value* points = entry.find("points");
    if (!points) {
      throw std::invalid_argument(sctx + ": missing \"points\" array");
    }
    const auto& pitems = points->as_array(sctx + ".points");
    for (std::size_t p = 0; p < pitems.size(); ++p) {
      const std::string pctx = sctx + ".points[" + std::to_string(p) + "]";
      const json::Value& pv = pitems[p];
      pv.as_object(pctx);
      TrajectoryPoint point = base;
      point.load = number_field(pv, "load", pctx);
      const json::Value* seed = pv.find("seed");
      point.seed = seed ? seed->as_uint64(pctx + ".seed") : 0;
      if (const json::Value* v = pv.find("wall_seconds")) {
        point.wall_seconds = v->as_number(pctx + ".wall_seconds");
      }
      if (const json::Value* v = pv.find("peak_rss_bytes")) {
        point.peak_rss_bytes = v->as_uint64(pctx + ".peak_rss_bytes");
      }
      if (const json::Value* v = pv.find("cycles")) {
        point.cycles = static_cast<std::int64_t>(v->as_number(pctx + ".cycles"));
      }
      if (const json::Value* v = pv.find("mcycles_per_sec")) {
        point.mcycles_per_sec = v->as_number(pctx + ".mcycles_per_sec");
      }
      point.latency = number_field(pv, "latency", pctx);
      point.network_latency = number_field(pv, "network_latency", pctx);
      point.p99_latency = number_field(pv, "p99_latency", pctx);
      point.accepted = number_field(pv, "accepted", pctx);
      point.delivered =
          static_cast<std::int64_t>(number_field(pv, "delivered", pctx));
      const json::Value* saturated = pv.find("saturated");
      if (!saturated) {
        throw std::invalid_argument(pctx + ": missing \"saturated\"");
      }
      point.saturated = saturated->as_bool(pctx + ".saturated");
      if (!seen.insert(point.key()).second) {
        throw std::invalid_argument(ctx + ": duplicate run-point identity \"" +
                                    point.key() +
                                    "\" (labels must disambiguate series)");
      }
      out.points.push_back(std::move(point));
    }
  }
  return out;
}

Trajectory load_bench_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::invalid_argument("cannot read BENCH file \"" + path + "\"");
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return parse_bench_json(buffer.str(), path);
}

Trajectory trajectory_of(const ExperimentSpec& spec,
                         const std::vector<RunResult>& results) {
  Trajectory out;
  out.experiment = spec.name;
  for (const RunResult& r : results) {
    const SeriesSpec& s = spec.series.at(r.series_index);
    TrajectoryPoint point;
    point.label = s.display_label();
    point.topology = s.topology;
    point.routing = s.routing;
    point.traffic = s.traffic;
    point.load = r.load;
    point.seed = r.seed;
    point.wall_seconds = r.wall_seconds;
    point.peak_rss_bytes = r.peak_rss_bytes;
    point.cycles = r.result.cycles;
    point.mcycles_per_sec = mcycles_per_sec(r);
    point.latency = r.result.avg_latency;
    point.network_latency = r.result.avg_network_latency;
    point.p99_latency = r.result.p99_latency;
    point.accepted = r.result.accepted_load;
    point.delivered = r.result.delivered;
    point.saturated = r.result.saturated;
    out.points.push_back(std::move(point));
  }
  return out;
}

DiffReport diff_trajectories(const Trajectory& a, const Trajectory& b,
                             const DiffOptions& options) {
  DiffReport report;
  std::unordered_map<std::string, const TrajectoryPoint*> b_index;
  for (const TrajectoryPoint& point : b.points) {
    b_index.emplace(point.key(), &point);
  }
  std::unordered_set<std::string> joined;
  for (const TrajectoryPoint& pa : a.points) {
    auto it = b_index.find(pa.key());
    if (it == b_index.end()) {
      report.only_in_a.push_back(pa.key());
      continue;
    }
    const TrajectoryPoint& pb = *it->second;
    joined.insert(pa.key());
    PointDelta delta;
    delta.key = pa.key();
    delta.wall_a = pa.wall_seconds;
    delta.wall_b = pb.wall_seconds;
    delta.rss_a = pa.peak_rss_bytes;
    delta.rss_b = pb.peak_rss_bytes;
    delta.metrics = {
        {"latency", pa.latency, pb.latency, false},
        {"network_latency", pa.network_latency, pb.network_latency, false},
        {"p99_latency", pa.p99_latency, pb.p99_latency, false},
        {"accepted", pa.accepted, pb.accepted, false},
        {"delivered", static_cast<double>(pa.delivered),
         static_cast<double>(pb.delivered), false},
    };
    if (pa.cycles >= 0 && pb.cycles >= 0) {
      // Simulated cycle count is deterministic (it encodes how long the
      // drain ran), so it is a gated result when both files carry it;
      // files predating the field simply skip the check. The wall-derived
      // mcycles_per_sec is never gated, like wall time.
      delta.metrics.push_back({"cycles", static_cast<double>(pa.cycles),
                               static_cast<double>(pb.cycles), false});
    }
    for (MetricDelta& metric : delta.metrics) {
      metric.out_of_tolerance = !within(metric.a, metric.b, options);
      if (metric.out_of_tolerance) delta.out_of_tolerance = true;
    }
    delta.seed_mismatch = pa.seed != pb.seed;
    delta.saturated_flip = pa.saturated != pb.saturated;
    // A different seed means the runs are not the same experiment, and a
    // saturation flip changes which points the grid even keeps — neither is
    // a "small delta", so no tolerance applies.
    if (delta.seed_mismatch || delta.saturated_flip) {
      delta.out_of_tolerance = true;
    }
    if (delta.out_of_tolerance) ++report.regressions;
    ++report.compared;
    report.points.push_back(std::move(delta));
  }
  for (const TrajectoryPoint& pb : b.points) {
    if (joined.find(pb.key()) == joined.end()) {
      report.only_in_b.push_back(pb.key());
    }
  }
  const bool missing = !report.only_in_a.empty() || !report.only_in_b.empty();
  report.passed = report.regressions == 0 &&
                  (options.allow_missing || !missing) && report.compared > 0;
  return report;
}

void print_diff(std::ostream& os, const DiffReport& report, bool verbose) {
  double wall_a = 0.0, wall_b = 0.0;
  for (const PointDelta& delta : report.points) {
    wall_a += delta.wall_a;
    wall_b += delta.wall_b;
    if (!delta.out_of_tolerance && !verbose) continue;
    os << (delta.out_of_tolerance ? "FAIL " : "ok   ") << delta.key << "\n";
    for (const MetricDelta& metric : delta.metrics) {
      if (!metric.out_of_tolerance && !verbose) continue;
      os << "       " << metric.name << ": " << json_num(metric.a) << " -> "
         << json_num(metric.b) << " (delta " << json_num(metric.b - metric.a)
         << (metric.out_of_tolerance ? ", OUT OF TOLERANCE)" : ")") << "\n";
    }
    if (delta.seed_mismatch) {
      os << "       seed differs (not the same experiment)\n";
    }
    if (delta.saturated_flip) os << "       saturated flag flipped\n";
    if (verbose || delta.out_of_tolerance) {
      os << "       wall: " << json_num(delta.wall_a) << "s -> "
         << json_num(delta.wall_b) << "s (informational)\n";
      if (delta.rss_a != 0 || delta.rss_b != 0) {
        os << "       peak_rss: " << delta.rss_a << " -> " << delta.rss_b
           << " bytes (informational)\n";
      }
    }
  }
  for (const std::string& key : report.only_in_a) {
    os << "MISSING in B: " << key << "\n";
  }
  for (const std::string& key : report.only_in_b) {
    os << "MISSING in A: " << key << "\n";
  }
  os << "compared " << report.compared << " points: " << report.regressions
     << " out of tolerance, " << report.only_in_a.size() << " only in A, "
     << report.only_in_b.size() << " only in B; total wall "
     << json_num(wall_a) << "s -> " << json_num(wall_b)
     << "s (not gated)\n";
  os << (report.passed ? "PASS" : "FAIL") << "\n";
}

std::size_t preserve_wall_seconds(const Trajectory& prior,
                                  const ExperimentSpec& spec,
                                  std::vector<RunResult>& results) {
  std::unordered_map<std::string, std::pair<double, std::uint64_t>> prior_wall;
  for (const TrajectoryPoint& point : prior.points) {
    prior_wall.emplace(point.key(),
                       std::make_pair(point.wall_seconds, point.peak_rss_bytes));
  }
  std::size_t patched = 0;
  for (RunResult& r : results) {
    TrajectoryPoint key_point;
    key_point.label = spec.series.at(r.series_index).display_label();
    key_point.topology = spec.series.at(r.series_index).topology;
    key_point.routing = spec.series.at(r.series_index).routing;
    key_point.traffic = spec.series.at(r.series_index).traffic;
    key_point.load = r.load;
    auto it = prior_wall.find(key_point.key());
    if (it == prior_wall.end()) continue;
    r.wall_seconds = it->second.first;
    // A prior file predating peak_rss_bytes parses as 0 — keep the fresh
    // measurement so the field appears on first regeneration.
    if (it->second.second > 0) r.peak_rss_bytes = it->second.second;
    ++patched;
  }
  return patched;
}

std::string golden_trajectory(const ExperimentSpec& spec,
                              const std::vector<RunResult>& results) {
  std::ostringstream os;
  os << "# golden trajectory v1: label|topology|routing|traffic|load|seed|"
        "latency|network_latency|p99_latency|accepted|delivered|saturated\n";
  for (const RunResult& r : results) {
    const SeriesSpec& s = spec.series.at(r.series_index);
    os << s.display_label() << '|' << s.topology << '|' << s.routing << '|'
       << s.traffic << '|' << json_num(r.load) << '|' << r.seed << '|'
       << json_num(r.result.avg_latency) << '|'
       << json_num(r.result.avg_network_latency) << '|'
       << json_num(r.result.p99_latency) << '|'
       << json_num(r.result.accepted_load) << '|' << r.result.delivered << '|'
       << (r.result.saturated ? "yes" : "no") << '\n';
  }
  return os.str();
}

}  // namespace slimfly::exp
