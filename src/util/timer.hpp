#pragma once
// Wall-clock stopwatch used by benches and examples. This is the repo's one
// sanctioned wall-clock reader: its output only ever feeds wall_seconds /
// throughput reporting, which the diff gate explicitly never compares.
// Hence the sf-lint rng-rule waivers below — everything else must not read
// the clock at all (see docs/CORRECTNESS.md).

#include <chrono>

namespace slimfly {

class Timer {
 public:
  Timer() : start_(clock::now()) {}  // sf-lint: allow(rng) sanctioned stopwatch; feeds only ungated wall_seconds

  void reset() { start_ = clock::now(); }  // sf-lint: allow(rng) sanctioned stopwatch; feeds only ungated wall_seconds

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_)  // sf-lint: allow(rng) sanctioned stopwatch; feeds only ungated wall_seconds
        .count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace slimfly
