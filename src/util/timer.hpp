#pragma once
// Wall-clock stopwatch used by benches and examples.

#include <chrono>

namespace slimfly {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace slimfly
