#include "util/numtheory.hpp"

#include <stdexcept>
#include <vector>

namespace slimfly {

bool is_prime(std::int64_t n) {
  if (n < 2) return false;
  if (n < 4) return true;
  if (n % 2 == 0) return false;
  for (std::int64_t d = 3; d * d <= n; d += 2) {
    if (n % d == 0) return false;
  }
  return true;
}

std::optional<PrimePower> as_prime_power(std::int64_t n) {
  if (n < 2) return std::nullopt;
  // Find the smallest prime factor; n is a prime power iff it is the only one.
  std::int64_t p = 0;
  if (n % 2 == 0) {
    p = 2;
  } else {
    for (std::int64_t d = 3; d * d <= n; d += 2) {
      if (n % d == 0) {
        p = d;
        break;
      }
    }
    if (p == 0) return PrimePower{n, 1};  // n itself is prime
  }
  int m = 0;
  std::int64_t rest = n;
  while (rest % p == 0) {
    rest /= p;
    ++m;
  }
  if (rest != 1) return std::nullopt;
  return PrimePower{p, m};
}

std::int64_t mul_mod(std::int64_t a, std::int64_t b, std::int64_t m) {
  return static_cast<std::int64_t>(
      (static_cast<__int128>(a) * static_cast<__int128>(b)) % m);
}

std::int64_t pow_mod(std::int64_t base, std::int64_t exp, std::int64_t m) {
  std::int64_t result = 1 % m;
  base %= m;
  if (base < 0) base += m;
  while (exp > 0) {
    if (exp & 1) result = mul_mod(result, base, m);
    base = mul_mod(base, base, m);
    exp >>= 1;
  }
  return result;
}

std::int64_t gcd(std::int64_t a, std::int64_t b) {
  while (b != 0) {
    std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a < 0 ? -a : a;
}

std::int64_t inv_mod(std::int64_t a, std::int64_t p) {
  a %= p;
  if (a < 0) a += p;
  if (a == 0) throw std::invalid_argument("inv_mod: zero has no inverse");
  return pow_mod(a, p - 2, p);  // Fermat; p is prime
}

std::int64_t primitive_root(std::int64_t p) {
  if (!is_prime(p)) throw std::invalid_argument("primitive_root: p not prime");
  if (p == 2) return 1;
  // Factor p-1 once, then test candidates g by checking g^((p-1)/f) != 1.
  std::int64_t order = p - 1;
  std::vector<std::int64_t> factors;
  std::int64_t rest = order;
  for (std::int64_t d = 2; d * d <= rest; ++d) {
    if (rest % d == 0) {
      factors.push_back(d);
      while (rest % d == 0) rest /= d;
    }
  }
  if (rest > 1) factors.push_back(rest);
  for (std::int64_t g = 2; g < p; ++g) {
    bool ok = true;
    for (std::int64_t f : factors) {
      if (pow_mod(g, order / f, p) == 1) {
        ok = false;
        break;
      }
    }
    if (ok) return g;
  }
  throw std::logic_error("primitive_root: not found (unreachable for prime p)");
}

}  // namespace slimfly
