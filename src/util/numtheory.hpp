#pragma once
// Elementary number theory used by the MMS/BDF constructions: primality,
// prime-power factoring, and modular arithmetic on machine integers.

#include <cstdint>
#include <optional>

namespace slimfly {

/// True iff n is prime (deterministic trial division; inputs are small).
bool is_prime(std::int64_t n);

/// Decomposition of a prime power n = p^m.
struct PrimePower {
  std::int64_t p = 0;  ///< prime base
  int m = 0;           ///< exponent, m >= 1
};

/// Returns {p, m} if n = p^m for a prime p and m >= 1, nullopt otherwise.
std::optional<PrimePower> as_prime_power(std::int64_t n);

/// (a * b) mod m without overflow for m < 2^31.
std::int64_t mul_mod(std::int64_t a, std::int64_t b, std::int64_t m);

/// (base ^ exp) mod m.
std::int64_t pow_mod(std::int64_t base, std::int64_t exp, std::int64_t m);

/// Multiplicative inverse of a modulo prime p (a != 0 mod p).
std::int64_t inv_mod(std::int64_t a, std::int64_t p);

/// Smallest primitive root modulo prime p (generator of Z_p^*).
std::int64_t primitive_root(std::int64_t p);

/// Greatest common divisor.
std::int64_t gcd(std::int64_t a, std::int64_t b);

}  // namespace slimfly
