#pragma once
// Small, fast, reproducible random number generator (PCG32).
//
// The cycle simulator draws millions of random numbers per run; std::mt19937
// is larger and slower than needed and its seeding is awkward to make
// reproducible across platforms. PCG32 has a 64-bit state, passes BigCrush,
// and produces an identical stream everywhere, which keeps simulation
// results and tests deterministic.

#include <cstdint>

// Compiler-level backstop for the scripts/sf_lint.py `rng` rule (see
// docs/CORRECTNESS.md): with SF_FORBID_GLOBAL_RNG defined (the slimfly
// CMake target defines it PUBLIC, so every in-repo TU gets it), any use of
// the global C RNG entry points is a hard compile error. GCC's poison
// pragma does not exempt system headers, so the headers that *mention*
// these identifiers (declarations in <cstdlib>/<stdlib.h>, std::rand inside
// <algorithm>'s random_shuffle) are included first — their guards make any
// later include a no-op, leaving only in-repo uses to trip the poison.
#if defined(SF_FORBID_GLOBAL_RNG) && defined(__GNUC__)
#include <algorithm>
#include <cstdlib>
#include <stdlib.h>
namespace slimfly {
/// static_assert-backed witness that the global-RNG ban is active in this
/// translation unit; referenced by tests to prove the macro reaches every
/// dependent target.
inline constexpr bool kGlobalRngForbidden = true;
static_assert(kGlobalRngForbidden,
              "SF_FORBID_GLOBAL_RNG is defined but the guard is inactive");
}  // namespace slimfly
#pragma GCC poison rand srand rand_r drand48 srand48 lrand48 mrand48
#endif

namespace slimfly {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL)
      : state_(0), inc_((stream << 1u) | 1u) {
    next_u32();
    state_ += seed;
    next_u32();
  }

  /// Uniform 32-bit value.
  std::uint32_t next_u32() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform value in [0, bound) without modulo bias. The rejection
  /// threshold is < bound, so a draw >= bound is always accepted — the
  /// overwhelmingly common case pays one modulo instead of two. Draw
  /// sequence and results are identical to the classic two-modulo form.
  std::uint32_t next_below(std::uint32_t bound) {
    if (bound <= 1) return 0;
    std::uint32_t r = next_u32();
    if (r >= bound) return r % bound;
    std::uint32_t threshold = (0u - bound) % bound;
    for (;;) {
      if (r >= threshold) return r % bound;
      r = next_u32();
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int next_int(int lo, int hi) {
    return lo + static_cast<int>(next_below(static_cast<std::uint32_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return (next_u32() >> 8) * (1.0 / 16777216.0);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return next_double() < p; }

  // Interface required by std::shuffle and friends.
  using result_type = std::uint32_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }
  result_type operator()() { return next_u32(); }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mix used to derive
/// independent seeds (per experiment point, per router, per endpoint) from
/// a base seed plus an integer identity. Sequential ids land far apart in
/// PCG32 state space, so derived streams are effectively uncorrelated.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic RNG stream `stream_id` of a family tagged `tag` under
/// `seed`: hash-seeded and on its own PCG32 stream, so streams never
/// overlap regardless of how many draws each one makes. The tag separates
/// families sharing a seed (router streams vs endpoint streams).
inline Rng rng_stream(std::uint64_t seed, std::uint64_t tag,
                      std::uint64_t stream_id) {
  return Rng(splitmix64(seed ^ splitmix64(tag + stream_id)),
             (tag << 32) + stream_id);
}

}  // namespace slimfly
