#pragma once
// Small, fast, reproducible random number generator (PCG32).
//
// The cycle simulator draws millions of random numbers per run; std::mt19937
// is larger and slower than needed and its seeding is awkward to make
// reproducible across platforms. PCG32 has a 64-bit state, passes BigCrush,
// and produces an identical stream everywhere, which keeps simulation
// results and tests deterministic.

#include <cstdint>

namespace slimfly {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL)
      : state_(0), inc_((stream << 1u) | 1u) {
    next_u32();
    state_ += seed;
    next_u32();
  }

  /// Uniform 32-bit value.
  std::uint32_t next_u32() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform value in [0, bound) without modulo bias.
  std::uint32_t next_below(std::uint32_t bound) {
    if (bound <= 1) return 0;
    std::uint32_t threshold = (0u - bound) % bound;
    for (;;) {
      std::uint32_t r = next_u32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int next_int(int lo, int hi) {
    return lo + static_cast<int>(next_below(static_cast<std::uint32_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return (next_u32() >> 8) * (1.0 / 16777216.0);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return next_double() < p; }

  // Interface required by std::shuffle and friends.
  using result_type = std::uint32_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }
  result_type operator()() { return next_u32(); }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace slimfly
