#include "util/threadpool.hpp"

#include <algorithm>
#include <exception>

namespace slimfly {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (pool.size() <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // One chunk per worker keeps scheduling overhead negligible for the
  // coarse-grained trials this helper is used for.
  std::size_t chunks = std::min(n, pool.size() * 4);
  std::size_t per = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    std::size_t lo = c * per;
    std::size_t hi = std::min(n, lo + per);
    if (lo >= hi) break;
    pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    });
  }
  pool.wait_idle();
}

void parallel_for_checked(ThreadPool& pool, std::size_t n,
                          const std::function<void(std::size_t)>& body) {
  std::vector<std::exception_ptr> errors(n);
  parallel_for(pool, n, [&](std::size_t i) {
    try {
      body(i);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  });
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

Barrier::Barrier(std::size_t parties) : parties_(parties == 0 ? 1 : parties) {}

void Barrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t my_generation = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return generation_ != my_generation; });
}

void run_region(ThreadPool& pool, std::size_t workers,
                const std::function<void(std::size_t)>& body) {
  if (workers <= 1) {
    body(0);
    return;
  }
  for (std::size_t w = 1; w < workers; ++w) {
    pool.submit([&body, w] { body(w); });
  }
  body(0);
  pool.wait_idle();
}

}  // namespace slimfly
