#pragma once
// Process peak resident set size, recorded per run point into BENCH
// trajectories (reported, never gated — the wall_seconds policy) so the
// memory footprint is tracked PR-over-PR alongside throughput.

#include <cstdint>

#if !defined(_WIN32)
#include <sys/resource.h>
#endif

namespace slimfly {

/// Peak RSS of the calling process in bytes; 0 when the platform cannot
/// report it. Monotone over the process lifetime (the kernel high-water
/// mark), so per-point values record the largest footprint reached so far.
inline std::uint64_t peak_rss_bytes() {
#if defined(_WIN32)
  return 0;
#else
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB elsewhere
#endif
#endif
}

}  // namespace slimfly
