#pragma once
// Aligned text-table and CSV printer for the bench harness.
//
// Every bench binary prints its figure/table as (a) a human-readable aligned
// table and (b) machine-readable CSV prefixed lines, so results can be both
// eyeballed against the paper and plotted.

#include <iosfwd>
#include <string>
#include <vector>

namespace slimfly {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  // One integer overload per width so no call is ambiguous against the
  // double overload (integral->floating and integral->integral conversions
  // tie in overload rank).
  static std::string num(int v) { return std::to_string(v); }
  static std::string num(long v) { return std::to_string(v); }
  static std::string num(long long v);

  /// Aligned human-readable rendering.
  void print(std::ostream& os) const;

  /// CSV rendering, each line prefixed with "csv," for easy grepping.
  void print_csv(std::ostream& os, const std::string& tag) const;

  /// RFC 4180 field quoting: wraps fields carrying separators/quotes and
  /// doubles embedded quotes. Shared by every CSV emitter in the project.
  static std::string csv_quote(const std::string& field);

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace slimfly
