#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace slimfly {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(long long v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  line(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    rule += std::string(width[c], '-') + "  ";
  }
  os << rule << '\n';
  for (const auto& row : rows_) line(row);
}

std::string Table::csv_quote(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  return out += "\"";
}

void Table::print_csv(std::ostream& os, const std::string& tag) const {
  // Quoting matters here: registry-derived series labels carry commas
  // ("dragonfly:p=4,a=8,...|MIN"), which would otherwise shift columns.
  auto csv_line = [&](const std::vector<std::string>& cells) {
    os << "csv," << csv_quote(tag);
    for (const auto& cell : cells) os << ',' << csv_quote(cell);
    os << '\n';
  };
  csv_line(header_);
  for (const auto& row : rows_) csv_line(row);
}

}  // namespace slimfly
