#pragma once
// Minimal fixed-size thread pool with a parallel_for helper, plus the
// reusable Barrier / run_region primitives backing phase-synchronized
// parallel regions (the simulator's router-parallel stepping).
//
// Used by the resiliency sampler and load sweeps, which are embarrassingly
// parallel across trials. The pool degrades gracefully to sequential
// execution when hardware_concurrency() == 1.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace slimfly {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks may not themselves block on the pool.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs body(i) for i in [0, n), distributing chunks over the pool.
/// Falls back to a plain loop when the pool has a single worker.
/// The body must not throw (an escaping exception terminates the worker
/// thread and the process); use parallel_for_checked for throwing bodies.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// parallel_for with exception transport: every index runs (a throwing
/// index poisons only itself), then the first captured exception — in index
/// order — is rethrown on the calling thread.
void parallel_for_checked(ThreadPool& pool, std::size_t n,
                          const std::function<void(std::size_t)>& body);

/// Reusable sense-reversing barrier: `parties` threads block in
/// arrive_and_wait() until all have arrived, then all proceed and the
/// barrier resets for the next round. Safe to reuse immediately (a thread
/// may re-enter while stragglers from the previous round are still waking).
class Barrier {
 public:
  explicit Barrier(std::size_t parties);

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  void arrive_and_wait();

  std::size_t parties() const { return parties_; }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t parties_;
  std::size_t waiting_ = 0;
  std::uint64_t generation_ = 0;
};

/// Runs body(worker) for worker in [0, workers) concurrently: workers-1
/// pool tasks plus the calling thread as worker 0, returning when all are
/// done. Bodies may synchronize with each other through a Barrier of
/// `workers` parties — which is exactly why the pool must have at least
/// workers-1 idle threads when this is called: a region sharing its pool
/// with unrelated queued tasks could leave some workers unscheduled while
/// the rest block on the barrier. Intended for a pool dedicated to the
/// region's owner (see sim::Network's intra-point stepping). The body must
/// not throw (same contract as parallel_for); callers needing exception
/// transport capture per-worker exception_ptrs themselves.
void run_region(ThreadPool& pool, std::size_t workers,
                const std::function<void(std::size_t)>& body);

}  // namespace slimfly
