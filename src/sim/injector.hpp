#pragma once
// Endpoint-side state: the unbounded source queue (so offered load is
// well-defined even past saturation), the credit counter for the single
// uplink into the router's injection port, and the endpoint's private RNG
// stream. Generation draws (Bernoulli arrivals, traffic destinations,
// routing path sampling) come from `rng`, never from a shared generator,
// so the injection phase is deterministic under any endpoint processing
// order — the keystone of router-parallel stepping (sim/network.hpp).
//
// The source queue is a GrowRing, the one hot-path queue that may allocate:
// past saturation it must absorb unbounded offered load, so it doubles
// amortized; below saturation it settles at a small stable capacity and
// the steady-state loop never allocates.

#include <cstdint>

#include "sim/channel.hpp"
#include "sim/packet.hpp"
#include "sim/ring.hpp"
#include "util/rng.hpp"

namespace slimfly::sim {

struct EndpointState {
  GrowRing<Packet> source_queue;
  int credits = 0;                 ///< slots free in the injection buffer
  Rng rng{};                       ///< private stream, seeded from (seed, id)
  std::int64_t next_seq = 0;       ///< per-endpoint packet sequence number
  /// Active engine only: the precomputed cycle of the next Bernoulli
  /// arrival while the source queue is empty (kUnplanned = not planned —
  /// backlog mode draws live per cycle; INT64_MAX = never, for load 0).
  /// The cycle engine ignores it, so the field is pure scheduling state
  /// and never observable in results.
  std::int64_t next_arrival = -1;
  // (Returning uplink credits ride the owning router's ep_credits event
  // line — see sim/router.hpp — so idle endpoints are never polled.)
};

class Injector {
 public:
  /// Seeds every endpoint's RNG stream deterministically from `seed` and
  /// the endpoint id — independent of thread schedule by construction.
  void init(int num_endpoints, int initial_credits, std::uint64_t seed);

  /* SF_HOT */ EndpointState& endpoint(int e) { return endpoints_[static_cast<std::size_t>(e)]; }
  /* SF_HOT */ const EndpointState& endpoint(int e) const {
    return endpoints_[static_cast<std::size_t>(e)];
  }
  int num_endpoints() const { return static_cast<int>(endpoints_.size()); }

  /// Total packets waiting in source queues (saturation indicator).
  std::int64_t backlog() const;

 private:
  std::vector<EndpointState> endpoints_;
};

}  // namespace slimfly::sim
