#pragma once
// Endpoint-side state: the unbounded source queue (so offered load is
// well-defined even past saturation) and the credit counter for the single
// uplink into the router's injection port.

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/channel.hpp"
#include "sim/packet.hpp"

namespace slimfly::sim {

struct EndpointState {
  std::deque<Packet> source_queue;
  int credits = 0;                 ///< slots free in the injection buffer
  DelayLine<int> credit_return;    ///< credits on their way back
};

class Injector {
 public:
  void init(int num_endpoints, int initial_credits);

  EndpointState& endpoint(int e) { return endpoints_[static_cast<std::size_t>(e)]; }
  const EndpointState& endpoint(int e) const {
    return endpoints_[static_cast<std::size_t>(e)];
  }
  int num_endpoints() const { return static_cast<int>(endpoints_.size()); }

  /// Total packets waiting in source queues (saturation indicator).
  std::int64_t backlog() const;

 private:
  std::vector<EndpointState> endpoints_;
};

}  // namespace slimfly::sim
