#pragma once
// Endpoint-side state: the unbounded source queue (so offered load is
// well-defined even past saturation), the credit counter for the single
// uplink into the router's injection port, and the endpoint's private RNG
// stream. Generation draws (Bernoulli arrivals, traffic destinations,
// routing path sampling) come from `rng`, never from a shared generator,
// so the injection phase is deterministic under any endpoint processing
// order — the keystone of router-parallel stepping (sim/network.hpp).
//
// Storage is SoA: one capacity-exact array per field instead of an array
// of endpoint structs. The injection phase walks a router's endpoints
// checking credits and (active engine) planned arrivals every cycle —
// with a million endpoints those polls now stream through dense int
// arrays instead of striding over struct padding, and each field costs
// exactly its own width. Endpoints are numbered contiguously per router
// (topology first_endpoint order), so each stepping shard owns contiguous
// slices of every array — the same ownership split as the router state.
//
// The source queue is a GrowRing, the one hot-path queue that may allocate:
// past saturation it must absorb unbounded offered load, so it doubles
// amortized; below saturation it settles at a small stable capacity and
// the steady-state loop never allocates.

#include <cstdint>
#include <vector>

#include "sim/channel.hpp"
#include "sim/packet.hpp"
#include "sim/ring.hpp"
#include "util/rng.hpp"

namespace slimfly::sim {

/// Reference bundle over one endpoint's SoA columns — call sites keep the
/// `ep.credits` field syntax while the storage stays columnar.
struct EndpointRef {
  GrowRing<Packet>& source_queue;
  int& credits;                    ///< slots free in the injection buffer
  Rng& rng;                        ///< private stream, seeded from (seed, id)
  std::int64_t& next_seq;          ///< per-endpoint packet sequence number
  /// Active engine only: the precomputed cycle of the next Bernoulli
  /// arrival while the source queue is empty (kUnplanned = not planned —
  /// backlog mode draws live per cycle; INT64_MAX = never, for load 0).
  /// The cycle engine ignores it, so the field is pure scheduling state
  /// and never observable in results.
  std::int64_t& next_arrival;
  // (Returning uplink credits ride the owning router's ep_credits event
  // line — see sim/router.hpp — so idle endpoints are never polled.)
};

class Injector {
 public:
  /// Seeds every endpoint's RNG stream deterministically from `seed` and
  /// the endpoint id — independent of thread schedule by construction.
  void init(int num_endpoints, int initial_credits, std::uint64_t seed);

  /* SF_HOT */ EndpointRef endpoint(int e) {
    const auto i = static_cast<std::size_t>(e);
    return EndpointRef{source_queue_[i], credits_[i], rng_[i], next_seq_[i],
                       next_arrival_[i]};
  }
  /* SF_HOT */ GrowRing<Packet>& source_queue(int e) {
    return source_queue_[static_cast<std::size_t>(e)];
  }
  /* SF_HOT */ const GrowRing<Packet>& source_queue(int e) const {
    return source_queue_[static_cast<std::size_t>(e)];
  }
  /* SF_HOT */ int& credits(int e) {
    return credits_[static_cast<std::size_t>(e)];
  }
  /* SF_HOT */ Rng& rng(int e) { return rng_[static_cast<std::size_t>(e)]; }
  /* SF_HOT */ std::int64_t& next_arrival(int e) {
    return next_arrival_[static_cast<std::size_t>(e)];
  }
  int num_endpoints() const { return static_cast<int>(credits_.size()); }

  /// Total packets waiting in source queues (saturation indicator).
  std::int64_t backlog() const;

 private:
  std::vector<GrowRing<Packet>> source_queue_;
  std::vector<int> credits_;
  std::vector<Rng> rng_;
  std::vector<std::int64_t> next_seq_;
  std::vector<std::int64_t> next_arrival_;
};

}  // namespace slimfly::sim
