#include "sim/buffer.hpp"

#include <stdexcept>

namespace slimfly::sim {

void VcBuffer::push(Packet packet) {
  if (full()) {
    throw std::logic_error("VcBuffer: overflow (credit protocol violation)");
  }
  packets_.push_back(std::move(packet));
}

const Packet& VcBuffer::front() const {
  if (packets_.empty()) throw std::logic_error("VcBuffer: front on empty buffer");
  return packets_.front();
}

Packet VcBuffer::pop() {
  if (packets_.empty()) throw std::logic_error("VcBuffer: pop on empty buffer");
  Packet p = std::move(packets_.front());
  packets_.pop_front();
  return p;
}

}  // namespace slimfly::sim
