#pragma once
// Measurement collection: packet latency statistics and accepted throughput
// over the measurement window (warmup -> measure -> drain methodology).

#include <cstdint>
#include <vector>

namespace slimfly::sim {

class Stats {
 public:
  /// `latency` counts from generation (includes source queueing);
  /// `network_latency` from injection into the source router.
  void record_delivery(std::int64_t latency, std::int64_t network_latency,
                       bool measured);

  /// Absorbs another accumulator (per-shard collection during
  /// router-parallel stepping). Every consumer of the merged latency pool
  /// is order-independent — integer sums, sorted percentiles, max — so the
  /// merged result is bit-identical no matter how deliveries were sharded.
  void merge(const Stats& other);

  void set_measured_generated(std::int64_t count) { measured_generated_ = count; }
  std::int64_t measured_generated() const { return measured_generated_; }
  std::int64_t measured_delivered() const { return measured_delivered_; }
  std::int64_t total_delivered() const { return total_delivered_; }

  double average_latency() const;
  double average_network_latency() const;
  double percentile_latency(double p) const;  ///< p in (0, 1]
  std::int64_t max_latency() const;

  bool all_measured_delivered() const {
    return measured_delivered_ >= measured_generated_;
  }

  /// Pre-reserves the latency pools (see Network::reserve_measurement_stats:
  /// makes the measurement phase allocation-free when the caller can afford
  /// the upper-bound reservation).
  void reserve(std::size_t samples) {
    latencies_.reserve(samples);
    network_latencies_.reserve(samples);
  }

 private:
  std::vector<std::int64_t> latencies_;          // measured packets only
  std::vector<std::int64_t> network_latencies_;  // measured packets only
  std::int64_t measured_generated_ = 0;
  std::int64_t measured_delivered_ = 0;
  std::int64_t total_delivered_ = 0;
};

/// One windowed-stats bucket (SimConfig::stats_window cycles wide): the
/// time-resolved view of a run. Counters are plain integer sums over the
/// window, so per-shard rows merge by elementwise addition and the merged
/// result is bit-identical for any sharding. Windows are indexed by
/// cycle / W from cycle 0 (warmup included — phase boundaries land on
/// window boundaries when W divides the phase lengths).
struct WindowStats {
  std::int64_t generated = 0;  ///< packets created in the window
  std::int64_t delivered = 0;  ///< packets ejected in the window
  /// Sum of generation→ejection latencies of the window's deliveries.
  std::int64_t latency_sum = 0;
  /// Self-clocked replay only: sends whose dependency (`after:` edge) held
  /// them past FIFO readiness, and the total cycles so spent. Independent
  /// injection patterns have no dependencies and always report 0 — a
  /// nonzero column is the signature of request→reply causality.
  std::int64_t dep_stalled_sends = 0;
  std::int64_t dep_stall_cycles = 0;

  void merge(const WindowStats& other) {
    generated += other.generated;
    delivered += other.delivered;
    latency_sum += other.latency_sum;
    dep_stalled_sends += other.dep_stalled_sends;
    dep_stall_cycles += other.dep_stall_cycles;
  }
};

/// Result of one (topology, routing, traffic, load) simulation point.
struct SimResult {
  double offered_load = 0.0;    ///< flits/cycle/endpoint offered
  double accepted_load = 0.0;   ///< measured flits delivered / (endpoints*cycles)
  double avg_latency = 0.0;         ///< generation -> ejection
  double avg_network_latency = 0.0; ///< injection -> ejection (Figure 8a metric)
  double p99_latency = 0.0;
  bool saturated = false;       ///< drain incomplete or latency beyond cap
  std::int64_t delivered = 0;
  /// Cycles actually simulated (warmup + measurement + drain used) — the
  /// deterministic numerator of the per-point throughput trajectory.
  std::int64_t cycles = 0;
  /// Cycles the stepping engine actually executed (phases run). For the
  /// cycle engine this equals `cycles`; the active engine fast-forwards
  /// globally-idle stretches, so `cycles - cycles_stepped` is the audited
  /// skipped-cycle count (bench/hotpath prints both).
  std::int64_t cycles_stepped = 0;
  /// Crossbar traversals granted over the whole run (one per packet per
  /// router hop); flit_hops / wall time is the hot path's work rate.
  std::int64_t flit_hops = 0;
  /// Window width the run collected with (0 = windowed stats disabled).
  std::int64_t stats_window = 0;
  /// Per-window rows (empty unless stats_window > 0), already merged across
  /// shards and trimmed to the cycles the run actually executed.
  std::vector<WindowStats> windows;
};

}  // namespace slimfly::sim
