#pragma once
// Slab pool backing the LazyRing storage tier (sim/ring.hpp): power-of-two
// byte slabs handed out to rings as they grow toward their wire()-time
// logical capacity, and recycled when a ring trades up to the next size.
//
// Why a pool instead of plain new/delete: at fleet scale the Network holds
// millions of rings whose *capacity* is sized for the worst case the flow
// control admits, but whose *occupancy* tracks offered load. Lazy growth
// means RSS follows occupancy; the pool keeps that growth (a) recycled —
// a slab dropped by one ring feeds the next grower, so the settling phase
// does not churn the allocator — and (b) allocation-free once the reserve
// float is charged, which is what lets the zero-steady-state-allocation
// guarantee (tests/hotpath_test.cpp) survive a straggler ring that reaches
// its high-water mark late.
//
// Thread safety: acquire/release take a mutex. Growth is a settling-phase
// event (a ring that reached occupancy n never grows again until it
// exceeds n), so the lock is cold in steady state; correctness matters
// because the allocation phase grows rings owned by *remote* routers
// (granted flits push into the downstream router's incoming line).

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <vector>

namespace slimfly::sim {

class SlabPool {
 public:
  SlabPool() {
    // Freelists never allocate in release(): each class holds at most
    // kShelfDepth recycled slabs and overflow is returned to the heap.
    for (auto& shelf : shelves_) shelf.reserve(kShelfDepth);
  }

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  ~SlabPool() {
    for (std::size_t c = 0; c < shelves_.size(); ++c) {
      for (void* slab : shelves_[c]) ::operator delete(slab);
    }
  }

  /// Rounds `bytes` up to its power-of-two size class.
  static std::size_t class_bytes(std::size_t bytes) {
    std::size_t c = kMinBytes;
    while (c < bytes) c <<= 1;
    return c;
  }

  /// Hands out a slab of at least `bytes` (rounded to the class size):
  /// recycled from the shelf when one is waiting, fresh from the heap
  /// otherwise. Returns the class size through `got_bytes` so the caller
  /// can release exactly what it holds.
  void* acquire(std::size_t bytes, std::size_t& got_bytes) {
    const std::size_t cls = class_bytes(bytes);
    got_bytes = cls;
    const std::size_t idx = class_index(cls);
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto& shelf = shelves_[idx];
      if (!shelf.empty()) {
        void* slab = shelf.back();
        shelf.pop_back();
        return slab;
      }
    }
    return ::operator new(cls);
  }

  /// Returns a slab of `bytes` (a prior acquire's got_bytes). The shelf
  /// keeps at most kShelfDepth slabs per class — beyond that the slab goes
  /// straight back to the heap, so release() itself never allocates.
  void release(void* slab, std::size_t bytes) {
    const std::size_t idx = class_index(bytes);
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto& shelf = shelves_[idx];
      if (shelf.size() < kShelfDepth) {
        shelf.push_back(slab);
        return;
      }
    }
    ::operator delete(slab);
  }

  /// Charges the reserve float: `count` slabs in every class from
  /// kMinBytes up to `max_bytes`. Called once at Network::wire() so that
  /// late ring growth in the guarded steady state draws from the shelf
  /// instead of the allocator. ~1 MiB at the defaults — noise next to the
  /// arenas it protects.
  void preload(std::size_t max_bytes = kDefaultPreloadMaxBytes,
               std::size_t count = kDefaultPreloadCount) {
    for (std::size_t cls = kMinBytes; cls <= max_bytes; cls <<= 1) {
      const std::size_t idx = class_index(cls);
      std::lock_guard<std::mutex> lock(mu_);
      auto& shelf = shelves_[idx];
      while (shelf.size() < count && shelf.size() < kShelfDepth) {
        shelf.push_back(::operator new(cls));
      }
    }
  }

  /// Bytes currently parked on the shelves (diagnostics only).
  std::size_t pooled_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < shelves_.size(); ++c) {
      total += shelves_[c].size() * (kMinBytes << c);
    }
    return total;
  }

  // Compile-time shape of the pool, public so opt-in callers (the
  // measurement-window reserve in Network) can charge a deeper float in
  // terms of the same limits.
  static constexpr std::size_t kMinBytes = 64;
  static constexpr std::size_t kNumClasses = 32;  // 64 B .. 128 GiB
  static constexpr std::size_t kShelfDepth = 1024;
  static constexpr std::size_t kDefaultPreloadMaxBytes = 8192;
  static constexpr std::size_t kDefaultPreloadCount = 64;

 private:

  static std::size_t class_index(std::size_t cls) {
    std::size_t idx = 0;
    while ((kMinBytes << idx) < cls) ++idx;
    return idx;
  }

  mutable std::mutex mu_;
  std::array<std::vector<void*>, kNumClasses> shelves_;
};

}  // namespace slimfly::sim
