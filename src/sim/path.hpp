#pragma once
// Fixed-capacity inline router path — the hot-path replacement for the
// heap-allocated std::vector<int> a Packet used to carry. Storing the hops
// inline (uint16 ids, one-byte length) makes Packet trivially copyable, so
// the ring buffers holding packets relocate them with memcpy-class moves
// and routing never touches the allocator.
//
// Capacity rationale: every simulated topology family is low-diameter
// (Slim Fly / DLN / Long Hop / Dragonfly / fat tree are diameter <= 3
// sources with <= 2x Valiant detours), and the capacity still covers the
// registry's practical outliers (MIN on torus:dims=8x8x8 = 12 hops,
// VAL on torus:dims=4x4x4 = 12 hops). Longer walks — Valiant on a
// diameter > 7 torus/hypercube — throw PathOverflowError at route time: a
// named, actionable error rather than silent heap fallback. Router ids
// are bounded by the uint16 storage (a >65535-router cycle simulation is
// already excluded by the O(n^2) distance table). The capacity is kept
// tight deliberately: it is what makes Packet exactly one cache line, and
// Packet size is the dominant term in the hot path's memory traffic
// (every hop copies the packet a handful of times).

#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>

namespace slimfly::sim {

/// Thrown when a routing algorithm builds a path longer than
/// InlinePath::kMaxRouters - 1 hops (or names a router id outside uint16).
class PathOverflowError : public std::length_error {
 public:
  explicit PathOverflowError(const std::string& what) : std::length_error(what) {}
};

class InlinePath {
 public:
  /// Max routers on a path (kMaxRouters - 1 links): covers 2x-Valiant on
  /// every registry family plus moderate torus/hypercube outliers, and
  /// keeps sizeof(Packet) at one cache line.
  static constexpr int kMaxRouters = 15;

  InlinePath() = default;
  InlinePath(std::initializer_list<int> routers) {
    for (int r : routers) push_back(r);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear() { size_ = 0; }

  int operator[](std::size_t i) const { return routers_[i]; }
  int front() const { return routers_[0]; }
  int back() const { return routers_[size_ - 1]; }

  void push_back(int router) {
    if (size_ >= kMaxRouters) {
      throw PathOverflowError(
          "InlinePath: path exceeds " + std::to_string(kMaxRouters - 1) +
          " hops (InlinePath::kMaxRouters); this topology/routing pair needs "
          "a larger inline path capacity");
    }
    if (router < 0 || router > 0xFFFF) {
      throw PathOverflowError("InlinePath: router id " +
                              std::to_string(router) +
                              " outside the uint16 inline storage");
    }
    routers_[size_++] = static_cast<std::uint16_t>(router);
  }

  friend bool operator==(const InlinePath& a, const InlinePath& b) {
    if (a.size_ != b.size_) return false;
    for (std::uint8_t i = 0; i < a.size_; ++i) {
      if (a.routers_[i] != b.routers_[i]) return false;
    }
    return true;
  }

 private:
  // Deliberately not zero-initialized: size_ governs validity, and a
  // memset per constructed packet is measurable in the injection loop.
  std::uint16_t routers_[kMaxRouters];
  std::uint8_t size_ = 0;
};

}  // namespace slimfly::sim
