#include "sim/router.hpp"

namespace slimfly::sim {

std::vector<RouterState> make_routers(int num_routers) {
  return std::vector<RouterState>(static_cast<std::size_t>(num_routers));
}

}  // namespace slimfly::sim
