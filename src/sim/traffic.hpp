#pragma once
// Traffic patterns (paper Section V): uniform random for irregular
// workloads; shuffle / bit reversal / bit complement / shift for
// collectives and stencils; and the adversarial worst-case patterns for
// Slim Fly (Figure 9), Dragonfly (Kim Section 4.2) and the fat tree
// (forced core traversal).
//
// On top of the paper's independent-injection patterns sits the workload
// layer (ROADMAP item 3): rate-modulated wrappers (`burst:`, `hotspot:`)
// composable over any base pattern, and self-clocked dependency replay
// (`trace:`, `allreduce:`) where a send becomes eligible only when the
// message it waits on has been ejected. Both families are driven through
// the parameterized spec grammar accepted by make_traffic (see
// docs/SPEC_GRAMMAR.md).

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace slimfly::sim {

class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;
  virtual std::string name() const = 0;
  /// Destination endpoint for a packet from src, or -1 when src is idle in
  /// this pattern (inactive endpoints never generate traffic).
  virtual int destination(int src_endpoint, Rng& rng) = 0;
  virtual bool is_active(int src_endpoint) const {
    (void)src_endpoint;
    return true;
  }

  // ---- workload hooks ------------------------------------------------------
  // Defaults describe classic independent injection; only the workload-layer
  // patterns override them. The engine caches modulates_rate()/self_clocked()
  // once at construction, so the unmodulated hot path stays byte-identical
  // to the pre-workload code.

  /// True when the pattern scales the per-endpoint injection rate over time.
  virtual bool modulates_rate() const { return false; }
  /// Rate multiplier for endpoint e at cycle t. A multiplier of exactly 0
  /// means hard-off: the engine consumes NO Bernoulli draw from e's stream
  /// that cycle (this is what keeps the cycle and active engines' draw
  /// sequences identical). Called with nondecreasing t per endpoint — the
  /// pattern may advance internal per-endpoint state, and must tolerate
  /// gaps in t (the active engine never queries cycles it fast-forwards,
  /// and plans batches of future cycles ahead of time).
  virtual double rate_multiplier(int src_endpoint, std::int64_t t) {
    (void)src_endpoint;
    (void)t;
    return 1.0;
  }

  /// True when the pattern is self-clocked (dependency replay): sends come
  /// from per-endpoint message lists gated by delivery of their `after:`
  /// dependency, not from Bernoulli load coins. Self-clocked patterns ignore
  /// the configured load entirely — the workload itself is the clock.
  virtual bool self_clocked() const { return false; }
  /// Self-clocked only: if endpoint e's head message is eligible at `cycle`
  /// (FIFO-ready and its dependency delivered), pops it and returns its
  /// destination; returns -1 when blocked or exhausted. `dep_stall` (may be
  /// null) receives the cycles the send spent waiting on its dependency
  /// beyond FIFO readiness — the engine feeds it into windowed stats.
  virtual int next_send(int src_endpoint, std::int64_t cycle,
                        std::int64_t* dep_stall) {
    (void)src_endpoint;
    (void)cycle;
    (void)dep_stall;
    return -1;
  }
  /// Self-clocked only: endpoint e has an eligible head right now. Keeps
  /// e's router in the active engine's busy set.
  virtual bool pending_eligible(int src_endpoint) const {
    (void)src_endpoint;
    return false;
  }
  /// Self-clocked only: called serially between cycles when the packet
  /// carrying message `seq` of endpoint `src` is ejected at `cycle`.
  /// Appends every endpoint whose blocked head just became eligible to
  /// `unlocked` (the active engine wakes their routers). Never allocates
  /// beyond `unlocked`'s reserved capacity of completion_fanout().
  virtual void on_delivered(int src, std::int64_t seq, std::int64_t cycle,
                            std::vector<int>& unlocked) {
    (void)src;
    (void)seq;
    (void)cycle;
    (void)unlocked;
  }
  /// Upper bound on entries a single on_delivered call can append — the
  /// engine reserves its unlock scratch to this before stepping starts.
  virtual std::size_t completion_fanout() const { return 0; }
};

/// Every endpoint sends to a uniformly random other endpoint.
std::unique_ptr<TrafficPattern> make_uniform(int num_endpoints);

/// Bit permutations over the largest power-of-two subset of endpoints
/// (the paper deactivates the rest, Section V-B).
std::unique_ptr<TrafficPattern> make_shuffle(int num_endpoints);
std::unique_ptr<TrafficPattern> make_bit_reversal(int num_endpoints);
std::unique_ptr<TrafficPattern> make_bit_complement(int num_endpoints);

/// Shift: d = (s mod N/2) + N/2 or (s mod N/2), each with probability 1/2.
std::unique_ptr<TrafficPattern> make_shift(int num_endpoints);

/// Worst case for minimal routing on Slim Fly (Figure 9): maximize the
/// load on single links; endpoints not covered by the construction idle.
std::unique_ptr<TrafficPattern> make_worst_case_sf(const Topology& topo);

/// Worst case for Dragonfly: every group sends to its successor group.
std::unique_ptr<TrafficPattern> make_worst_case_df(const Dragonfly& topo);

/// Fat-tree adversarial pattern: every packet must cross a core switch
/// (destination in the next pod).
std::unique_ptr<TrafficPattern> make_worst_case_ft(const FatTree3& topo);

/// 3D stencil workload (the paper's motivating HPC pattern, Section V):
/// endpoints are arranged in a near-cubic 3D process grid; each endpoint
/// sends to its six nearest neighbours (periodic boundaries) round-robin.
/// Endpoints beyond the largest complete grid idle.
std::unique_ptr<TrafficPattern> make_stencil3d(int num_endpoints);

/// Trace replay: a fixed list of (src, dst) flows; each generation event at
/// src picks the next dst from src's flow list round-robin. Lets users
/// replay application communication matrices. Sources without flows idle.
/// Duplicate (src, dst) entries are deliberately kept: listing a flow k
/// times gives it k slots in src's round-robin, i.e. k× the weight — this
/// is how a communication matrix with unequal flow volumes is expressed.
std::unique_ptr<TrafficPattern> make_trace(
    int num_endpoints, const std::vector<std::pair<int, int>>& flows);

/// ON/OFF burst modulation over `base` (tenants with duty cycles): each
/// endpoint alternates ON segments (rate = load × mult) and OFF segments
/// (rate 0) whose lengths are uniform integers in [1, 2·mean−1] drawn from
/// the endpoint's own burst stream (rng_stream(seed, tag, endpoint)), so
/// endpoints desynchronize and results stay bit-identical across the
/// thread/engine matrix. Mean offered load = load × mult × on/(on+off).
std::unique_ptr<TrafficPattern> make_burst(std::unique_ptr<TrafficPattern> base,
                                           int num_endpoints,
                                           std::int64_t on_mean,
                                           std::int64_t off_mean, double mult,
                                           std::uint64_t seed);

/// Hotspot skew over `base`: H = max(1, round(frac·N)) endpoints (chosen by
/// a seeded Fisher–Yates shuffle) each receive `heat`× the uniform share of
/// traffic; the rest of the load follows `base`. Redirect probability
/// q = H(heat−1)/(N−H) must be ≤ 1 (throws otherwise, naming the bound).
std::unique_ptr<TrafficPattern> make_hotspot(
    std::unique_ptr<TrafficPattern> base, int num_endpoints, double frac,
    double heat, std::uint64_t seed);

// ---- string-keyed traffic registry -----------------------------------------
// Bare names match TrafficPattern::name(): "uniform", "shuffle", "bitrev",
// "bitcomp", "shift", "stencil3d", "worst-sf", "worst-df", "worst-ft" —
// plus "worstcase", which picks the adversarial pattern matching the
// topology's type (worst-df on Dragonfly, worst-ft on FatTree3, worst-sf
// otherwise).
//
// Parameterized workload specs follow the routing-spec grammar
// "name:key=value,key=value" (docs/SPEC_GRAMMAR.md):
//   burst:on=<cycles>,off=<cycles>,mult=<x>[,seed=<s>][,base=<spec>]
//   hotspot:frac=<f>,heat=<x>[,seed=<s>][,base=<spec>]
//   allreduce:ranks=<r>[,algo=ring|tree]
//   trace:file=<path/to/trace.json>
// A nested base=<spec> spells its own commas as ';'
// (e.g. "hotspot:frac=0.05,heat=8,base=burst:on=50;off=450;mult=10").

/// A parsed traffic spec: bare name plus key=value parameters.
struct TrafficSpec {
  std::string name;
  std::map<std::string, std::string> params;
};

/// Splits "name[:k=v,...]" into name and parameters. Grammar errors throw
/// invalid_argument naming the spec; parameter values are not interpreted.
TrafficSpec parse_traffic_spec(const std::string& spec);

/// Full topology-independent validation: grammar, known name, required /
/// unknown keys, value ranges, nested base specs. Never touches the
/// filesystem (trace files are opened by make_traffic). Throws
/// invalid_argument with a named error.
void validate_traffic_spec(const std::string& spec);

/// Builds a fresh pattern instance for `topo` from a bare name or a
/// parameterized spec. Throws std::invalid_argument on unknown names,
/// invalid parameters, or topology-specific patterns on the wrong topology.
std::unique_ptr<TrafficPattern> make_traffic(const std::string& spec,
                                             const Topology& topo);

/// All registered bare traffic names, sorted. Parameterized patterns
/// (burst/hotspot/allreduce/trace) are not listed here — they require
/// parameters and are documented in docs/SPEC_GRAMMAR.md.
std::vector<std::string> traffic_names();

/// Topology-registry family this traffic is restricted to ("dragonfly" for
/// worst-df, "fattree" for worst-ft), or "" when it runs on any topology.
/// Spec-aware: burst/hotspot inherit the requirement of their base pattern.
std::string traffic_requirement(const std::string& spec);

}  // namespace slimfly::sim
