#pragma once
// Traffic patterns (paper Section V): uniform random for irregular
// workloads; shuffle / bit reversal / bit complement / shift for
// collectives and stencils; and the adversarial worst-case patterns for
// Slim Fly (Figure 9), Dragonfly (Kim Section 4.2) and the fat tree
// (forced core traversal).

#include <memory>
#include <string>
#include <vector>

#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace slimfly::sim {

class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;
  virtual std::string name() const = 0;
  /// Destination endpoint for a packet from src, or -1 when src is idle in
  /// this pattern (inactive endpoints never generate traffic).
  virtual int destination(int src_endpoint, Rng& rng) = 0;
  virtual bool is_active(int src_endpoint) const {
    (void)src_endpoint;
    return true;
  }
};

/// Every endpoint sends to a uniformly random other endpoint.
std::unique_ptr<TrafficPattern> make_uniform(int num_endpoints);

/// Bit permutations over the largest power-of-two subset of endpoints
/// (the paper deactivates the rest, Section V-B).
std::unique_ptr<TrafficPattern> make_shuffle(int num_endpoints);
std::unique_ptr<TrafficPattern> make_bit_reversal(int num_endpoints);
std::unique_ptr<TrafficPattern> make_bit_complement(int num_endpoints);

/// Shift: d = (s mod N/2) + N/2 or (s mod N/2), each with probability 1/2.
std::unique_ptr<TrafficPattern> make_shift(int num_endpoints);

/// Worst case for minimal routing on Slim Fly (Figure 9): maximize the
/// load on single links; endpoints not covered by the construction idle.
std::unique_ptr<TrafficPattern> make_worst_case_sf(const Topology& topo);

/// Worst case for Dragonfly: every group sends to its successor group.
std::unique_ptr<TrafficPattern> make_worst_case_df(const Dragonfly& topo);

/// Fat-tree adversarial pattern: every packet must cross a core switch
/// (destination in the next pod).
std::unique_ptr<TrafficPattern> make_worst_case_ft(const FatTree3& topo);

/// 3D stencil workload (the paper's motivating HPC pattern, Section V):
/// endpoints are arranged in a near-cubic 3D process grid; each endpoint
/// sends to its six nearest neighbours (periodic boundaries) round-robin.
/// Endpoints beyond the largest complete grid idle.
std::unique_ptr<TrafficPattern> make_stencil3d(int num_endpoints);

/// Trace replay: a fixed list of (src, dst) flows; each generation event at
/// src picks the next dst from src's flow list round-robin. Lets users
/// replay application communication matrices. Sources without flows idle.
std::unique_ptr<TrafficPattern> make_trace(
    int num_endpoints, const std::vector<std::pair<int, int>>& flows);

// ---- string-keyed traffic registry -----------------------------------------
// Names match TrafficPattern::name(): "uniform", "shuffle", "bitrev",
// "bitcomp", "shift", "stencil3d", "worst-sf", "worst-df", "worst-ft" —
// plus "worstcase", which picks the adversarial pattern matching the
// topology's type (worst-df on Dragonfly, worst-ft on FatTree3, worst-sf
// otherwise).

/// Builds a fresh pattern instance for `topo`. Throws std::invalid_argument
/// on unknown names or topology-specific patterns on the wrong topology.
std::unique_ptr<TrafficPattern> make_traffic(const std::string& name,
                                             const Topology& topo);

/// All registered traffic names, sorted.
std::vector<std::string> traffic_names();

/// Topology-registry family this traffic is restricted to ("dragonfly" for
/// worst-df, "fattree" for worst-ft), or "" when it runs on any topology.
std::string traffic_requirement(const std::string& name);

}  // namespace slimfly::sim
