#pragma once
// Input-queued router state: per-(port, VC) input buffers, per-output
// staging queues with credit counters, and the flit/credit delay lines of
// the attached channels. The allocation logic lives in Network (it needs
// global state for arrivals and credits).
//
// Every piece of state here has exactly one writer per step phase (see the
// phase/thread-safety contract in sim/network.hpp). Data placement is
// chosen so each phase's *polling* is local and only *real traffic* pays a
// remote touch:
//   * the flit line of a network link lives at the RECEIVING InputPort
//     (`incoming`): arrivals polls its own contiguous inputs instead of
//     chasing a pointer into the upstream router's outputs every cycle,
//     and the upstream allocation (the sole producer of that line, in a
//     phase where nobody reads it) does one remote write per granted
//     flit — with its final ready time, since the staging stage drains
//     exactly one flit per cycle (see OutputPort::staged);
//   * an OutputPort's credit_return line is filled by the one downstream
//     router its link feeds (allocation) and drained locally by the owner
//     (arrivals).
// That single-producer/single-consumer structure is what makes
// router-sharded stepping race-free without any locking.
//
// Layout (docs/ARCHITECTURE.md, "hot-path memory layout"): the variable-
// length families — input ports, output ports, per-VC buffers, per-VC
// credit counters, route cache, occupancy bitmasks — are Spans into
// Network-owned SoA arenas sized capacity-exact at wire(), one allocation
// per family for the whole fleet instead of one std::vector per port.
// Queue capacities are fixed at wire() too, but their slabs are LazyRing-
// backed: steady-state stepping performs zero heap allocations, while RSS
// tracks occupancy instead of worst-case capacity.

#include <cstdint>
#include <vector>

#include "sim/buffer.hpp"
#include "sim/channel.hpp"
#include "sim/config.hpp"
#include "sim/packet.hpp"
#include "sim/ring.hpp"
#include "sim/span.hpp"

namespace slimfly::sim {

/// Credit and endpoint-credit event lines store their ready cycle in 32
/// bits — the Network constructor bounds the cycle horizon below 2^31, so
/// the narrow slot halves the dominant fleet-scale event-line footprint.
using CreditLine = DelayLine<int, std::int32_t>;

struct OutputPort {
  // Hot members first: the arrivals credit poll and the allocation grant
  // path touch credit_return / credits / consumed / staging every cycle;
  // wiring metadata trails behind.
  CreditLine credit_return;        ///< VCs credited back to this port
  Span<int> credits;               ///< per-VC slots free downstream
  /// Credits consumed downstream across all VCs, maintained incrementally
  /// (+1 on every grant that spends a credit, -1 on every credit return) so
  /// UGAL's queue_estimate is O(1) instead of a per-call VC scan.
  int consumed = 0;
  int rr_pointer = 0;              ///< round-robin over input (port,vc)
  /// Occupancy of the staging stage (between crossbar and channel). For a
  /// NETWORK port this is the whole staging model: because the stage
  /// drains exactly one flit per cycle, a granted packet's departure cycle
  /// is cycle + staged, so the grant writes the packet straight into the
  /// downstream incoming line with its final ready time and staging never
  /// stores packets. Ejection ports keep a real ring (below) because the
  /// per-router ejection line needs time-ordered pushes across ports.
  int staged = 0;
  LazyRing<Packet> staging;        ///< ejection ports only (see `staged`)

  int dest_router = -1;  ///< -1 => ejection port to an endpoint
  int dest_endpoint = -1;///< endpoint id for ejection ports
  /// Input port index at dest_router (16-bit: the constructor bounds the
  /// per-router port count far below 2^15).
  std::int16_t dest_port = -1;
  int initial_credit = 0;

  int consumed_credits() const { return consumed; }
};

struct InputPort {
  /// Per-VC buffers — a full num_vcs span for network inputs, a single-VC
  /// span for injection inputs (endpoint uplinks only ever enter on VC 0,
  /// in both engines; paying num_vcs worst-case slabs per endpoint was
  /// pure capacity slack).
  Span<VcBuffer> vcs;
  /// Flits on (or staged for) the network link ending here. Filled by the
  /// upstream router's allocation phase (its sole producer) at grant time
  /// with the packet's final ready cycle, drained by this router's
  /// arrivals — placing the line at the receiver makes the every-cycle
  /// readiness poll a local, contiguous access. Unused (capacity 0) on
  /// injection ports.
  DelayLine<Packet> incoming;
  /// Upstream (router, output port) feeding this input, or (-1, -1) for
  /// injection ports.
  int src_router = -1;
  std::int16_t src_port = -1;
  /* SF_HOT */ int occupancy() const {
    int total = 0;
    for (const auto& b : vcs) total += b.size();
    return total;
  }
};

/// Cached head-of-line routing decision for one (input port, VC) buffer:
/// the output port and link VC its head packet requests. port < 0 means
/// "not cached" — recompute from the packet. Kept in a flat per-router
/// array (not inside VcBuffer) so the allocation gather reads one small
/// contiguous cache instead of touching every buffer every iteration.
struct RouteDecision {
  std::int16_t port = -1;
  std::int16_t vc_link = 0;
};

struct RouterState {
  Span<InputPort> inputs;    ///< [0,deg) network + [deg, deg+p) injection
  Span<OutputPort> outputs;  ///< [0,deg) network + [deg, deg+p) ejection
  int network_ports = 0;     ///< router degree in the graph

  /// vc_occupied[ip] bit vc set <=> inputs[ip].vcs[vc] is non-empty
  /// (bounds SimConfig::num_vcs to 64). Lets the allocation gather visit
  /// only occupied buffers.
  Span<std::uint64_t> vc_occupied;
  /// route_cache[ip * num_vcs + vc]: cached decision of that buffer's head
  /// (see RouteDecision). Invalidated on pop; only written for routings
  /// with cacheable_decisions().
  Span<RouteDecision> route_cache;

  /// staging_nonempty[op / 64] bit (op % 64) set <=> outputs[op].staging
  /// is non-empty: transmission walks set bits instead of touching every
  /// OutputPort every cycle. Set on grant (allocation), cleared when the
  /// staging ring drains (transmission) — both phases of the owning router.
  Span<std::uint64_t> staging_nonempty;

  /// Flits in flight to this router's endpoints, aggregated across its
  /// ejection ports (transmission pushes in port order; arrivals drains
  /// everything mature — same per-cycle delivery set as per-port lines,
  /// with one poll per router instead of one per ejection port).
  DelayLine<Packet> ejection;
  /// Uplink credits returning to this router's endpoints: events of
  /// endpoint-local index j, pushed by this router's own allocation when
  /// it drains an injection buffer, drained by its own arrivals. Replaces
  /// a per-endpoint delay line that had to be polled every cycle.
  CreditLine ep_credits;

  /// Congestion estimate for UGAL: staging occupancy plus credits consumed
  /// downstream (an upper bound on the downstream queue for this port).
  /* SF_HOT */ int queue_estimate(int port) const {
    const OutputPort& out = outputs[static_cast<std::size_t>(port)];
    return out.staged + out.consumed_credits();
  }
};

/// Builds the router state array for a topology graph; wiring of
/// dest_router/dest_port/ejection ports (and the arena spans every Span
/// member points into) is done by Network.
std::vector<RouterState> make_routers(int num_routers);

}  // namespace slimfly::sim
