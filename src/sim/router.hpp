#pragma once
// Input-queued router state: per-(port, VC) input buffers, per-output
// staging queues with credit counters, and the flit/credit delay lines of
// the attached outgoing channel. The allocation logic lives in Network
// (it needs global state for arrivals and credits).
//
// Every piece of state here has exactly one writer per step phase (see the
// phase/thread-safety contract in sim/network.hpp): an OutputPort's channel
// is filled by its owning router (transmission) and drained by the unique
// downstream router it feeds (arrivals); its credit_return line is filled
// by that same downstream router (allocation) and drained by the owner
// (arrivals). That single-producer/single-consumer structure is what makes
// router-sharded stepping race-free without any locking.

#include <vector>

#include "sim/buffer.hpp"
#include "sim/channel.hpp"
#include "sim/config.hpp"
#include "sim/packet.hpp"

namespace slimfly::sim {

struct OutputPort {
  int dest_router = -1;  ///< -1 => ejection port to an endpoint
  int dest_port = -1;    ///< input port index at dest_router
  int dest_endpoint = -1;///< endpoint id for ejection ports

  std::vector<int> credits;        ///< per-VC slots free downstream
  std::deque<Packet> staging;      ///< between crossbar and channel
  DelayLine<Packet> channel;       ///< flits in flight on the wire
  DelayLine<int> credit_return;    ///< VCs credited back to this port
  int rr_pointer = 0;              ///< round-robin over input (port,vc)

  int consumed_credits() const {
    int consumed = 0;
    for (std::size_t v = 0; v < credits.size(); ++v) consumed += initial_credit - credits[v];
    return consumed;
  }
  int initial_credit = 0;
};

struct InputPort {
  std::vector<VcBuffer> vcs;
  /// Upstream (router, output port) feeding this input, or (-1, -1) for
  /// injection ports. Lets the arrivals phase *pull* from the one channel
  /// that targets it, keeping every buffer write local to the router that
  /// owns it when stepping is sharded.
  int src_router = -1;
  int src_port = -1;
  int occupancy() const {
    int total = 0;
    for (const auto& b : vcs) total += b.size();
    return total;
  }
};

struct RouterState {
  std::vector<InputPort> inputs;    ///< [0,deg) network + [deg, deg+p) injection
  std::vector<OutputPort> outputs;  ///< [0,deg) network + [deg, deg+p) ejection
  int network_ports = 0;            ///< router degree in the graph

  /// Congestion estimate for UGAL: staging occupancy plus credits consumed
  /// downstream (an upper bound on the downstream queue for this port).
  int queue_estimate(int port) const {
    const OutputPort& out = outputs[static_cast<std::size_t>(port)];
    return static_cast<int>(out.staging.size()) + out.consumed_credits();
  }
};

/// Builds the router state array for a topology graph; wiring of
/// dest_router/dest_port/ejection ports is done by Network.
std::vector<RouterState> make_routers(int num_routers);

}  // namespace slimfly::sim
