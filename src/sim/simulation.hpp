#pragma once
// High-level simulation driver: routing factories, single-point runs and
// offered-load sweeps (the x-axis of the paper's Figures 6 and 8).

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/network.hpp"
#include "sim/routing/routing.hpp"
#include "sim/traffic.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/topology.hpp"

namespace slimfly::sim {

enum class RoutingKind { Minimal, Valiant, UgalL, UgalG, DragonflyUgalL, FatTreeAnca };

std::string to_string(RoutingKind kind);

// ---- string-keyed routing registry ----------------------------------------
// The experiment layer identifies routings by the same names the paper's
// figures use: "MIN", "VAL", "UGAL-L", "UGAL-G", "DF-UGAL-L", "FT-ANCA".

/// Inverse of to_string(); throws std::invalid_argument on unknown names.
RoutingKind routing_kind_from_string(const std::string& name);

/// All registered routing names, in enum order.
std::vector<std::string> routing_names();

/// Topology-registry family this routing is restricted to ("dragonfly" for
/// DF-UGAL-L, "fattree" for FT-ANCA), or "" when it runs on any topology.
std::string routing_requirement(RoutingKind kind);

/// True when make_routing(kind, topo) would succeed.
bool routing_supported(RoutingKind kind, const Topology& topo);

/// Routing algorithm plus the distance oracle it borrows (kept alive
/// here). The oracle is const so one instance can be shared read-only
/// across concurrently-running simulation points (see exp/experiment.hpp).
struct RoutingBundle {
  std::shared_ptr<const DistanceOracle> distances;
  std::unique_ptr<RoutingAlgorithm> algorithm;
};

/// Builds a routing algorithm for `topo`. DragonflyUgalL requires a
/// Dragonfly topology and FatTreeAnca a FatTree3 (checked at runtime).
/// An existing distance oracle may be shared to avoid recomputation; when
/// none is passed, one is selected via make_distance_oracle(topo, Auto)
/// (sim/routing/oracle.hpp) — the dense table on small networks, the
/// per-family oracle beyond.
RoutingBundle make_routing(RoutingKind kind, const Topology& topo,
                           std::shared_ptr<const DistanceOracle> distances = nullptr);

/// String-keyed wrapper: make_routing(routing_kind_from_string(name), ...).
RoutingBundle make_routing(const std::string& name, const Topology& topo,
                           std::shared_ptr<const DistanceOracle> distances = nullptr);

// ---- parameterized routing specs ------------------------------------------
// The routing analogue of topo::parse_spec: "NAME[:key=value,...]", so the
// paper's routing ablations (Sections IV-B/IV-C) are registry strings too.
//
//   "UGAL-L:c=8"      UGAL with 8 Valiant candidates (c in 1..64; default 4)
//   "UGAL-G:c=2"
//   "VAL:hoplimit=3"  Valiant constrained to <= 3 hops (1..255; the paper's
//                     "at most 3 hops" variant)
//
// Every other routing takes no parameters. Unknown names, unknown keys, and
// out-of-range values throw std::invalid_argument naming the offending spec.

struct RoutingSpec {
  RoutingKind kind = RoutingKind::Minimal;
  int ugal_candidates = 4;           ///< UGAL-L / UGAL-G only
  std::optional<int> val_hop_limit;  ///< VAL only
};

/// Parses and validates a routing spec string without building anything.
RoutingSpec parse_routing_spec(const std::string& spec);

/// make_routing honouring spec parameters. A bare name behaves exactly like
/// make_routing(name, ...).
RoutingBundle make_routing_spec(const std::string& spec, const Topology& topo,
                                std::shared_ptr<const DistanceOracle> distances = nullptr);

/// Runs one (topology, routing, traffic, load) point.
SimResult simulate(const Topology& topo, RoutingAlgorithm& routing,
                   TrafficPattern& traffic, SimConfig config, double load);

struct SweepPoint {
  double load = 0.0;
  SimResult result;
};

/// Sweeps offered load over `loads` (ascending); stops after the first
/// saturated point when stop_at_saturation is set. The traffic pattern is
/// rebuilt per point via the factory so state never leaks between points.
std::vector<SweepPoint> load_sweep(
    const Topology& topo, RoutingAlgorithm& routing,
    const std::function<std::unique_ptr<TrafficPattern>()>& traffic_factory,
    SimConfig config, const std::vector<double>& loads,
    bool stop_at_saturation = true);

/// Standard load grid 0.05 .. 0.95 in steps of `step`.
std::vector<double> default_loads(double step = 0.1, double max = 0.95);

}  // namespace slimfly::sim
