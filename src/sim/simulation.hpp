#pragma once
// High-level simulation driver: routing factories, single-point runs and
// offered-load sweeps (the x-axis of the paper's Figures 6 and 8).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/network.hpp"
#include "sim/routing/routing.hpp"
#include "sim/traffic.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/topology.hpp"

namespace slimfly::sim {

enum class RoutingKind { Minimal, Valiant, UgalL, UgalG, DragonflyUgalL, FatTreeAnca };

std::string to_string(RoutingKind kind);

/// Routing algorithm plus the distance table it borrows (kept alive here).
struct RoutingBundle {
  std::shared_ptr<DistanceTable> distances;
  std::unique_ptr<RoutingAlgorithm> algorithm;
};

/// Builds a routing algorithm for `topo`. DragonflyUgalL requires a
/// Dragonfly topology and FatTreeAnca a FatTree3 (checked at runtime).
/// An existing distance table may be shared to avoid recomputation.
RoutingBundle make_routing(RoutingKind kind, const Topology& topo,
                           std::shared_ptr<DistanceTable> distances = nullptr);

/// Runs one (topology, routing, traffic, load) point.
SimResult simulate(const Topology& topo, RoutingAlgorithm& routing,
                   TrafficPattern& traffic, SimConfig config, double load);

struct SweepPoint {
  double load = 0.0;
  SimResult result;
};

/// Sweeps offered load over `loads` (ascending); stops after the first
/// saturated point when stop_at_saturation is set. The traffic pattern is
/// rebuilt per point via the factory so state never leaks between points.
std::vector<SweepPoint> load_sweep(
    const Topology& topo, RoutingAlgorithm& routing,
    const std::function<std::unique_ptr<TrafficPattern>()>& traffic_factory,
    SimConfig config, const std::vector<double>& loads,
    bool stop_at_saturation = true);

/// Standard load grid 0.05 .. 0.95 in steps of `step`.
std::vector<double> default_loads(double step = 0.1, double max = 0.95);

}  // namespace slimfly::sim
