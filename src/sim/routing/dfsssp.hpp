#pragma once
// DFSSSP-style virtual-channel assignment (paper Section IV-D; Domke,
// Hoefler, Nagel IPDPS'11): given deterministic shortest-path routes for
// every ordered router pair, assign each route to a VC layer such that the
// channel dependency graph of every layer is acyclic (Dally-Seitz
// criterion). The number of layers used is the number of VCs a generic
// deadlock-free deployment (e.g. OFED) needs. The paper reports 3 for all
// Slim Flies and 8-15 for DLN random topologies.

#include <cstdint>

#include "topo/graph.hpp"

namespace slimfly::sim {

struct DfssspResult {
  int vcs_used = 0;      ///< layers needed; 0 when max_layers was exceeded
  std::int64_t routes = 0;
};

/// Computes the VC count for deterministic single-shortest-path routing on
/// g (one BFS-tree path per ordered pair). Routes are processed in a seeded
/// random order; a route moves to the next layer when adding it would close
/// a cycle in the current layer's channel dependency graph.
DfssspResult dfsssp_vc_count(const Graph& g, int max_layers = 32,
                             std::uint64_t seed = 1);

}  // namespace slimfly::sim
