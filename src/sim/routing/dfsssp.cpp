#include "sim/routing/dfsssp.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace slimfly::sim {

namespace {

/// One VC layer: a channel dependency graph with batched, revertible edge
/// insertion and DFS cycle detection.
class Layer {
 public:
  explicit Layer(int channels) : adjacency_(static_cast<std::size_t>(channels)) {}

  /// Tries to add the dependency batch; reverts and returns false if the
  /// layer would become cyclic.
  bool try_add(const std::vector<std::pair<int, int>>& deps) {
    std::vector<int> touched;
    for (const auto& [from, to] : deps) {
      adjacency_[static_cast<std::size_t>(from)].push_back(to);
      touched.push_back(from);
    }
    if (acyclic()) return true;
    for (auto it = touched.rbegin(); it != touched.rend(); ++it) {
      adjacency_[static_cast<std::size_t>(*it)].pop_back();
    }
    return false;
  }

 private:
  bool acyclic() const {
    int n = static_cast<int>(adjacency_.size());
    // Kahn's algorithm over the dependency graph.
    std::vector<int> indegree(static_cast<std::size_t>(n), 0);
    for (const auto& list : adjacency_) {
      for (int to : list) ++indegree[static_cast<std::size_t>(to)];
    }
    std::vector<int> stack;
    for (int c = 0; c < n; ++c) {
      if (indegree[static_cast<std::size_t>(c)] == 0) stack.push_back(c);
    }
    int visited = 0;
    while (!stack.empty()) {
      int c = stack.back();
      stack.pop_back();
      ++visited;
      for (int to : adjacency_[static_cast<std::size_t>(c)]) {
        if (--indegree[static_cast<std::size_t>(to)] == 0) stack.push_back(to);
      }
    }
    return visited == n;
  }

  std::vector<std::vector<int>> adjacency_;
};

}  // namespace

DfssspResult dfsssp_vc_count(const Graph& g, int max_layers, std::uint64_t seed) {
  int n = g.num_vertices();
  if (n < 2) return {1, 0};

  // Directed channel ids in CSR order.
  std::vector<int> offset(static_cast<std::size_t>(n) + 1, 0);
  for (int v = 0; v < n; ++v) {
    offset[static_cast<std::size_t>(v) + 1] =
        offset[static_cast<std::size_t>(v)] + g.degree(v);
  }
  int channels = offset[static_cast<std::size_t>(n)];
  auto channel_id = [&](int u, int v) {
    const auto& nbrs = g.neighbors(u);
    auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
    return offset[static_cast<std::size_t>(u)] +
           static_cast<int>(it - nbrs.begin());
  };

  // Destinations in seeded random order; for each, the BFS in-tree routes
  // of all sources define the dependency batch.
  std::vector<int> destinations(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) destinations[static_cast<std::size_t>(v)] = v;
  Rng rng(seed);
  std::shuffle(destinations.begin(), destinations.end(), rng);

  std::vector<Layer> layers;
  layers.emplace_back(channels);
  DfssspResult result;

  std::vector<int> next_hop(static_cast<std::size_t>(n));
  for (int d : destinations) {
    // BFS from d; next_hop[v] = lowest-id neighbour of v closer to d.
    std::vector<int> dist(static_cast<std::size_t>(n), -1);
    std::queue<int> queue;
    dist[static_cast<std::size_t>(d)] = 0;
    queue.push(d);
    while (!queue.empty()) {
      int v = queue.front();
      queue.pop();
      for (int w : g.neighbors(v)) {
        if (dist[static_cast<std::size_t>(w)] < 0) {
          dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(v)] + 1;
          queue.push(w);
        }
      }
    }
    for (int v = 0; v < n; ++v) {
      if (v == d) continue;
      if (dist[static_cast<std::size_t>(v)] < 0) {
        throw std::invalid_argument("dfsssp_vc_count: graph disconnected");
      }
      for (int w : g.neighbors(v)) {
        if (dist[static_cast<std::size_t>(w)] ==
            dist[static_cast<std::size_t>(v)] - 1) {
          next_hop[static_cast<std::size_t>(v)] = w;
          break;  // neighbours sorted => deterministic lowest-id choice
        }
      }
    }

    // Dependency batch: all routes toward d follow the BFS in-tree, so the
    // unique dependencies are the consecutive channel pairs along the tree —
    // one per non-final router.
    std::vector<std::pair<int, int>> deps;
    for (int v = 0; v < n; ++v) {
      if (v == d) continue;
      int u2 = next_hop[static_cast<std::size_t>(v)];
      if (u2 != d) {
        deps.emplace_back(channel_id(v, u2),
                          channel_id(u2, next_hop[static_cast<std::size_t>(u2)]));
      }
      ++result.routes;
    }

    bool placed = false;
    for (auto& layer : layers) {
      if (layer.try_add(deps)) {
        placed = true;
        break;
      }
    }
    if (!placed) {
      if (static_cast<int>(layers.size()) >= max_layers) {
        result.vcs_used = 0;  // exceeded budget
        return result;
      }
      layers.emplace_back(channels);
      if (!layers.back().try_add(deps)) {
        throw std::logic_error("dfsssp_vc_count: single-destination routes cyclic");
      }
    }
  }
  result.vcs_used = static_cast<int>(layers.size());
  return result;
}

}  // namespace slimfly::sim
