#include "sim/routing/ugal.hpp"

#include <limits>

#include "sim/network.hpp"

namespace slimfly::sim {

UgalRouting::UgalRouting(const Topology& topo, const DistanceOracle& dist,
                         UgalMode mode, int candidates, CandidateSampler sampler)
    : topo_(topo),
      dist_(dist),
      mode_(mode),
      candidates_(candidates),
      valiant_(topo, dist),
      sampler_(std::move(sampler)) {}

/* SF_HOT */ double UgalRouting::path_cost(const Network& net, const InlinePath& path) const {
  double hops = static_cast<double>(path.size()) - 1.0;
  if (hops <= 0.0) return 0.0;
  if (mode_ == UgalMode::Local) {
    // Length of the local output queue toward the first hop, weighted by
    // path length (Section IV-C2).
    int port = net.port_of_neighbor(path[0], path[1]);
    return hops * (1.0 + net.queue_estimate(path[0], port));
  }
  // Global: sum of output queues along the path plus the hop count as a
  // zero-load tie-breaker (Section IV-C1).
  double cost = hops;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    int port = net.port_of_neighbor(path[i], path[i + 1]);
    cost += net.queue_estimate(path[i], port);
  }
  return cost;
}

/* SF_HOT */ void UgalRouting::route_at_injection(Network& net, Packet& pkt, Rng& rng) {
  const int src = topo_.endpoint_router(pkt.src_endpoint);
  const int dst = pkt.dst_router;
  // Minimal candidate. Both candidate buffers live on the stack (InlinePath
  // is inline storage), so candidate comparison allocates nothing.
  InlinePath best;
  best.push_back(src);
  dist_.sample_minimal_path(topo_.graph(), src, dst, rng, best);
  double best_cost = path_cost(net, best);

  InlinePath candidate;
  for (int c = 0; c < candidates_; ++c) {
    candidate.clear();
    if (sampler_) {
      sampler_(src, dst, rng, candidate);
    } else {
      valiant_.build_path(src, dst, rng, candidate);
    }
    double cost = path_cost(net, candidate);
    if (cost < best_cost) {
      best_cost = cost;
      best = candidate;
    }
  }
  pkt.path = best;
}

}  // namespace slimfly::sim
