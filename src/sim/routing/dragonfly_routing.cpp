#include "sim/routing/dragonfly_routing.hpp"

namespace slimfly::sim {

UgalRouting::CandidateSampler dragonfly_group_sampler(const Dragonfly& topo,
                                                      const DistanceOracle& dist) {
  const Dragonfly* df = &topo;
  const DistanceOracle* dt = &dist;
  // The sampler runs once per injected packet under UGAL-L.
  return /* SF_HOT */ [df, dt](int src, int dst, Rng& rng, InlinePath& path) {
    path.clear();
    path.push_back(src);
    if (src == dst) return;
    int groups = df->groups();
    int src_group = df->group_of(src);
    int dst_group = df->group_of(dst);
    int via_group = src_group;
    if (groups > 2) {
      // Random intermediate group distinct from source and destination
      // groups (Kim et al., Section 4); falls back to router-Valiant when
      // only two groups exist.
      while (via_group == src_group || via_group == dst_group) {
        via_group = rng.next_int(0, groups - 1);
      }
    }
    int via = via_group * df->a() + rng.next_int(0, df->a() - 1);
    if (via != src) dt->sample_minimal_path(df->graph(), src, via, rng, path);
    if (via != dst) dt->sample_minimal_path(df->graph(), via, dst, rng, path);
  };
}

std::unique_ptr<UgalRouting> make_dragonfly_ugal_l(const Dragonfly& topo,
                                                   const DistanceOracle& dist,
                                                   int candidates) {
  return std::make_unique<UgalRouting>(topo, dist, UgalMode::Local, candidates,
                                       dragonfly_group_sampler(topo, dist));
}

}  // namespace slimfly::sim
