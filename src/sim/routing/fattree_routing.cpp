#include "sim/routing/fattree_routing.hpp"

#include <limits>
#include <stdexcept>

#include "sim/network.hpp"

namespace slimfly::sim {

void FatTreeAncaRouting::route_at_injection(Network& net, Packet& pkt, Rng& rng) {
  (void)net;
  (void)rng;
  pkt.path.clear();  // per-hop routed
}

/* SF_HOT */ int FatTreeAncaRouting::adaptive_up(const Network& net, const Packet& pkt,
                                    int router, int level) const {
  // All upward neighbours reach every destination; pick the least-loaded
  // output port (ANCA's adaptivity). The scan starts at a packet-dependent
  // offset so that ties (ubiquitous at low load, where every queue estimate
  // is zero) spread traffic instead of herding onto the first port. The
  // candidate list lives on the stack: this runs in the allocation hot
  // loop, which must not allocate (docs/ARCHITECTURE.md).
  int ups[kMaxUpPorts];
  std::size_t n_ups = 0;
  for (int n : topo_.graph().neighbors(router)) {
    if (topo_.level(n) == level + 1) {
      if (n_ups >= kMaxUpPorts) {
        throw std::logic_error("FT-ANCA: more than kMaxUpPorts upward ports");
      }
      ups[n_ups++] = n;
    }
  }
  if (n_ups == 0) throw std::logic_error("FT-ANCA: no upward neighbour");
  std::size_t offset = static_cast<std::size_t>(
      (pkt.id + pkt.src_endpoint + 31 * router) % static_cast<int>(n_ups));
  int best = -1;
  int best_queue = std::numeric_limits<int>::max();
  for (std::size_t k = 0; k < n_ups; ++k) {
    int n = ups[(k + offset) % n_ups];
    int q = net.queue_estimate(router, net.port_of_neighbor(router, n));
    if (q < best_queue) {
      best_queue = q;
      best = n;
    }
  }
  return best;
}

/* SF_HOT */ int FatTreeAncaRouting::next_router(const Network& net, const Packet& pkt,
                                    int current_router) const {
  int dst = pkt.dst_router;  // always an edge switch
  if (current_router == dst) return -1;
  int level = topo_.level(current_router);
  int dst_pod = topo_.pod(dst);
  switch (level) {
    case 0:
      // Edge switch other than the destination: go up adaptively.
      return adaptive_up(net, pkt, current_router, 0);
    case 1: {
      if (topo_.pod(current_router) == dst_pod) return dst;  // down to dst edge
      return adaptive_up(net, pkt, current_router, 1);
    }
    case 2: {
      // Core (j, l) connects to aggregation j in every pod; descend into the
      // destination pod.
      int j = topo_.index_in_level(current_router) / topo_.p();
      int agg = topo_.pods() * topo_.p() + dst_pod * topo_.p() + j;
      return agg;
    }
    default:
      throw std::logic_error("FT-ANCA: bad level");
  }
}

}  // namespace slimfly::sim
