#pragma once
// Dragonfly routing (paper Section V; Kim et al. ISCA'08):
//  * minimal hierarchical routing falls out of the generic shortest-path
//    machinery (local - global - local, <= 3 hops),
//  * DF-UGAL-L uses Valiant-to-a-random-GROUP candidates (Kim's VAL_group)
//    compared against the minimal path with local queue information.

#include <memory>

#include "sim/routing/ugal.hpp"
#include "topo/dragonfly.hpp"

namespace slimfly::sim {

/// Builds the paper's DF-UGAL-L: UGAL with group-Valiant candidates.
std::unique_ptr<UgalRouting> make_dragonfly_ugal_l(const Dragonfly& topo,
                                                   const DistanceOracle& dist,
                                                   int candidates = 4);

/// Group-Valiant sampler exposed for tests: minimal to a random router in a
/// random intermediate group, then minimal to the destination.
UgalRouting::CandidateSampler dragonfly_group_sampler(const Dragonfly& topo,
                                                      const DistanceOracle& dist);

}  // namespace slimfly::sim
