#pragma once
// Adaptive Nearest Common Ancestor routing for fat trees (FT-ANCA, paper
// Section V; Gomez et al., IPDPS'07). Per-hop adaptive on the way up —
// every up-port reaches the destination, so the least-loaded one is chosen
// — and deterministic on the way down from the nearest common ancestor.
// The up/down order is acyclic, so hop-indexed VCs stay deadlock-free.

#include "sim/routing/routing.hpp"
#include "topo/fattree.hpp"

namespace slimfly::sim {

class FatTreeAncaRouting : public RoutingAlgorithm {
 public:
  explicit FatTreeAncaRouting(const FatTree3& topo) : topo_(topo) {}

  std::string name() const override { return "ANCA"; }
  int max_hops() const override { return FatTree3::kDiameter; }

  /// Per-hop adaptive: nothing to decide at injection.
  void route_at_injection(Network& net, Packet& pkt, Rng& rng) override;

  int next_router(const Network& net, const Packet& pkt,
                  int current_router) const override;

  // cacheable_decisions()/follows_packet_path() stay at the base-class
  // false: the upward decision reads live queue estimates (it must be
  // re-derived every allocation iteration) and both next_router and
  // link_vc are overridden.

  /// Up/down routes are acyclic, so any per-packet VC is deadlock-free;
  /// hashing the packet id over all VCs avoids single-VC HOL blocking
  /// (with VC = hop index every fat-tree link would see exactly one VC).
  int link_vc(const Packet& pkt) const override {
    return static_cast<int>(pkt.id % FatTree3::kDiameter);
  }

 private:
  /// Upper bound on a switch's upward ports (k/2 for a k-port fat tree);
  /// bounds the stack-allocated candidate list in adaptive_up.
  static constexpr std::size_t kMaxUpPorts = 256;

  int adaptive_up(const Network& net, const Packet& pkt, int router,
                  int level) const;

  const FatTree3& topo_;
};

}  // namespace slimfly::sim
