#include "sim/routing/valiant.hpp"

namespace slimfly::sim {

/* SF_HOT */ void ValiantRouting::build_path(int src_router, int dst_router, Rng& rng,
                                InlinePath& path) const {
  int nr = topo_.num_routers();
  for (int attempt = 0; attempt < 64; ++attempt) {
    path.clear();
    path.push_back(src_router);
    if (src_router != dst_router) {
      // Random intermediate distinct from both ends (Section IV-B).
      int via = src_router;
      while (via == src_router || via == dst_router) via = rng.next_int(0, nr - 1);
      try {
        dist_.sample_minimal_path(topo_.graph(), src_router, via, rng, path);
        dist_.sample_minimal_path(topo_.graph(), via, dst_router, rng, path);
      } catch (const PathOverflowError&) {
        // Hop-limited variant: a walk that outgrows the inline path is a
        // fortiori over the limit — count it as a failed attempt so the
        // totality machinery below still runs. Plain Valiant propagates:
        // there a too-long walk means the topology/routing pair is
        // unsupported, and a named error beats silently resampling.
        if (!hop_limit_) throw;
        continue;
      }
    }
    if (!hop_limit_ || static_cast<int>(path.size()) - 1 <= *hop_limit_) return;
  }
  // Hop-limited variant: fall back to a minimal path when sampling keeps
  // exceeding the limit (rare; keeps the algorithm total).
  path.clear();
  path.push_back(src_router);
  dist_.sample_minimal_path(topo_.graph(), src_router, dst_router, rng, path);
}

/* SF_HOT */ void ValiantRouting::route_at_injection(Network& net, Packet& pkt, Rng& rng) {
  (void)net;
  build_path(topo_.endpoint_router(pkt.src_endpoint), pkt.dst_router, rng,
             pkt.path);
}

}  // namespace slimfly::sim
