#pragma once
// UGAL — Universal Globally-Adaptive Load-balanced routing (paper Section
// IV-C; Singh's thesis). At injection the algorithm compares the minimal
// path against `candidates` random Valiant paths:
//
//  * UGAL-L (local)  — cost = path hops * source-router output queue length
//    for the path's first link (only locally observable state),
//  * UGAL-G (global) — cost = sum of the output queue lengths along the
//    whole path (idealized global knowledge).
//
// The paper finds 4 Valiant candidates empirically best; that is the
// default. An optional intermediate sampler supports Dragonfly-style
// "Valiant to a random group" candidates (see dragonfly_routing.hpp).

#include <functional>

#include "sim/routing/valiant.hpp"

namespace slimfly::sim {

enum class UgalMode { Local, Global };

class UgalRouting : public PathFollowingRouting {
 public:
  /// `valiant_path(src, dst, rng, out)` draws one non-minimal candidate;
  /// pass {} to use plain router-Valiant.
  using CandidateSampler =
      std::function<void(int, int, Rng&, InlinePath&)>;

  UgalRouting(const Topology& topo, const DistanceOracle& dist, UgalMode mode,
              int candidates = 4, CandidateSampler sampler = {});

  std::string name() const override {
    return mode_ == UgalMode::Local ? "UGAL-L" : "UGAL-G";
  }
  int max_hops() const override { return 2 * dist_.diameter(); }

  void route_at_injection(Network& net, Packet& pkt, Rng& rng) override;

 private:
  double path_cost(const Network& net, const InlinePath& path) const;

  const Topology& topo_;
  const DistanceOracle& dist_;
  UgalMode mode_;
  int candidates_;
  ValiantRouting valiant_;
  CandidateSampler sampler_;
};

}  // namespace slimfly::sim
