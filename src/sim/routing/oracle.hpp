#pragma once
// Per-family distance/next-hop oracles (ROADMAP item 1): answer the
// DistanceOracle queries without materializing the O(N^2) dense table.
//
// Every oracle here returns EXACT BFS hop distances — certified
// exhaustively against DistanceTable in tests/oracle_test.cpp — and keeps
// (or bit-identically replicates) the default sample_minimal_path walk, so
// swapping one in never changes simulation results, only memory:
//
//   family          | oracle               | state held
//   ----------------+----------------------+---------------------------------
//   slimfly         | SlimFlyOracle        | GF(q) tables + generator masks,
//                   |                      | O(q^2) ~ O(N) bytes
//   torus           | TorusOracle          | the dims vector
//   hypercube       | HypercubeOracle      | n
//   flatbutterfly   | FlatButterflyOracle  | (n_dims, extent)
//   fattree         | FatTreeOracle        | (p, pods)
//   dragonfly       | DragonflyOracle      | per-router global-neighbor
//                   |                      | lists, O(N*h)
//   augmented       | Diameter2Oracle      | adjacency queries on the graph
//                   | (falls back below    | (verified diameter <= 2 at
//                   |  when diameter > 2)  | build)
//   dln/longhop/... | CompressedBfsOracle  | 2-bit dist-mod-3 matrix, N^2/4
//                   |                      | bytes (vs N^2 for the table)
//
// make_distance_oracle() is the selection point ExperimentEngine and
// make_routing go through; OracleMode (sim/config.hpp) picks dense vs
// family, with Auto keeping the dense table below a small-N threshold
// where O(N^2) is free and queries are fastest.
//
// Lifetime contract: oracles built from a Topology may retain a reference
// to it (or its graph) — the topology must outlive the oracle, the same
// contract routing algorithms already have.

#include <memory>
#include <string>
#include <vector>

#include "gf/gf.hpp"
#include "sim/config.hpp"
#include "sim/routing/routing.hpp"

namespace slimfly {
class Topology;
class Torus;
class Hypercube;
class FlattenedButterfly;
class FatTree3;
class Dragonfly;
}  // namespace slimfly

namespace slimfly::sf {
class SlimFlyMMS;
}

namespace slimfly::sim {

/// Auto mode keeps the dense DistanceTable up to this many routers
/// (N^2 = 16 MB of table — negligible); beyond it the per-family oracle
/// takes over. Exposed for tests.
inline constexpr int kDenseOracleRouterLimit = 4096;

/// MMS algebra (paper Section II-B): distance is decidable from the
/// connection equations (1)-(3) — adjacency is generator-set membership or
/// the line-point incidence y = mx + c, and every non-adjacent pair is at
/// distance exactly 2 (the paper's diameter-2 property). Self-contained:
/// copies the field tables and membership masks (O(q^2) bytes).
class SlimFlyOracle : public DistanceOracle {
 public:
  explicit SlimFlyOracle(const sf::SlimFlyMMS& topo);

  int dist(int u, int v) const override;
  int diameter() const override { return 2; }

 private:
  gf::Field field_;
  int q_;
  std::vector<std::uint8_t> in_x_;       // X membership, indexed by element
  std::vector<std::uint8_t> in_xprime_;  // X' membership
};

/// Per-dimension ring distance: sum of min(|a-b|, k-|a-b|).
class TorusOracle : public DistanceOracle {
 public:
  explicit TorusOracle(const Torus& topo);

  int dist(int u, int v) const override;
  int diameter() const override { return diameter_; }

 private:
  std::vector<int> dims_;
  int diameter_;
};

/// Hamming distance on the bit coordinates.
class HypercubeOracle : public DistanceOracle {
 public:
  explicit HypercubeOracle(const Hypercube& topo);

  int dist(int u, int v) const override;
  int diameter() const override { return n_dims_; }

 private:
  int n_dims_;
};

/// Each dimension is a clique, so distance = number of differing
/// base-extent digits.
class FlatButterflyOracle : public DistanceOracle {
 public:
  explicit FlatButterflyOracle(const FlattenedButterfly& topo);

  int dist(int u, int v) const override;
  int diameter() const override { return n_dims_; }

 private:
  int n_dims_;
  int extent_;
};

/// Level/pod rules on the three-level tree (both variants share the wiring
/// shape): the graph is bipartite (aggs vs edges+cores), so the case
/// analysis per level pair is exact.
class FatTreeOracle : public DistanceOracle {
 public:
  explicit FatTreeOracle(const FatTree3& topo);

  int dist(int u, int v) const override;
  int diameter() const override { return 4; }  // pods >= 2 always (p >= 2)

 private:
  int p_;
  int pods_;
};

/// Group rules plus per-router global-neighbor lists read off the built
/// graph (intra-group is a clique; distance > 1 is a 2-path case analysis
/// over the global links; g <= a*h+1 guarantees every group pair is
/// directly linked, capping distance at 3).
class DragonflyOracle : public DistanceOracle {
 public:
  explicit DragonflyOracle(const Dragonfly& topo);

  int dist(int u, int v) const override;
  int diameter() const override { return diameter_; }

 private:
  bool two_path_exists(int u, int v) const;
  const std::vector<int>& globals(int r) const {
    return globals_[static_cast<std::size_t>(r)];
  }

  int a_;
  int diameter_;
  std::vector<std::vector<int>> globals_;  // sorted (adjacency order)
};

/// Exact distances on any graph of diameter <= 2 straight from adjacency
/// (O(log degree) per query, no per-pair state): 0 / 1 / 2. Built via
/// try_build(), which VERIFIES the diameter-2 property with a transient
/// bitset sweep and returns nullptr when some pair is uncovered — the
/// augmented family's oracle (random augmentation usually lands at
/// diameter 2, but nothing guarantees it, and the base may be anything).
class Diameter2Oracle : public DistanceOracle {
 public:
  /// nullptr when the graph's diameter exceeds 2 (caller falls back to
  /// CompressedBfsOracle). The graph must outlive the oracle.
  static std::unique_ptr<Diameter2Oracle> try_build(const Graph& g);

  int dist(int u, int v) const override;
  int diameter() const override { return diameter_; }

 private:
  Diameter2Oracle(const Graph& g, int diameter);

  const Graph* g_;
  int diameter_;
};

/// BFS fallback for the random families (dln, longhop, unknown): stores
/// dist mod 3 in 2 bits per pair (N^2/4 bytes, 4x smaller than the dense
/// table) plus the exact diameter recorded during the build sweep.
/// Neighbors of u sit at distance d-1, d, or d+1 from v — distinct mod 3 —
/// so the exact distance is recovered by walking greedily toward v, and
/// minimal next-hop candidates are exactly the neighbors whose residue is
/// one step closer (sample_minimal_path below scans the same candidates in
/// the same order as the dense table: bit-identical RNG consumption).
class CompressedBfsOracle : public DistanceOracle {
 public:
  /// The graph must outlive the oracle. Throws like DistanceTable on a
  /// disconnected graph.
  explicit CompressedBfsOracle(const Graph& g);

  int dist(int u, int v) const override;
  int diameter() const override { return diameter_; }

  void sample_minimal_path(const Graph& g, int u, int v, Rng& rng,
                           InlinePath& out) const override;

 private:
  int mod3(int u, int v) const {
    const std::size_t idx = static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
                            static_cast<std::size_t>(v);
    return (packed_[idx >> 2] >> ((idx & 3u) * 2)) & 3u;
  }

  const Graph* g_;
  int n_;
  int diameter_ = 0;
  std::vector<std::uint8_t> packed_;
};

/// Builds the per-family oracle for `topo` (algebraic / coordinate / level
/// rules per the table above; Diameter2-else-CompressedBfs for augmented;
/// CompressedBfs for everything unrecognized).
std::shared_ptr<const DistanceOracle> make_family_oracle(const Topology& topo);

/// Oracle selection (the point ExperimentEngine and make_routing funnel
/// through): Table = dense DistanceTable, Family = make_family_oracle,
/// Auto = dense up to kDenseOracleRouterLimit routers, family beyond.
std::shared_ptr<const DistanceOracle> make_distance_oracle(const Topology& topo,
                                                           OracleMode mode);

}  // namespace slimfly::sim
