#pragma once
// Valiant random routing (paper Section IV-B): route minimally to a random
// intermediate router, then minimally to the destination. Load-balances
// adversarial traffic at the cost of up to doubled path length. The
// optional hop limit implements the paper's "at most 3 hops" variant
// (which the paper found to increase latency by restricting path choice).

#include <optional>

#include "sim/routing/routing.hpp"
#include "topo/topology.hpp"

namespace slimfly::sim {

class ValiantRouting : public PathFollowingRouting {
 public:
  ValiantRouting(const Topology& topo, const DistanceOracle& dist,
                 std::optional<int> hop_limit = std::nullopt)
      : topo_(topo), dist_(dist), hop_limit_(hop_limit) {}

  std::string name() const override { return hop_limit_ ? "VAL-3" : "VAL"; }
  int max_hops() const override {
    return hop_limit_ ? *hop_limit_ : 2 * dist_.diameter();
  }

  void route_at_injection(Network& net, Packet& pkt, Rng& rng) override;

  /// Builds one Valiant path into `path` (used by UGAL to draw candidates).
  void build_path(int src_router, int dst_router, Rng& rng,
                  InlinePath& path) const;

 private:
  const Topology& topo_;
  const DistanceOracle& dist_;
  std::optional<int> hop_limit_;
};

}  // namespace slimfly::sim
