#include "sim/routing/minimal.hpp"

namespace slimfly::sim {

void MinimalRouting::route_at_injection(Network& net, Packet& pkt, Rng& rng) {
  (void)net;
  pkt.path.clear();
  pkt.path.push_back(pkt.src_router);
  dist_.sample_minimal_path(topo_.graph(), pkt.src_router, pkt.dst_router, rng,
                            pkt.path);
}

}  // namespace slimfly::sim
