#include "sim/routing/minimal.hpp"

namespace slimfly::sim {

/* SF_HOT */ void MinimalRouting::route_at_injection(Network& net, Packet& pkt, Rng& rng) {
  (void)net;
  const int src = topo_.endpoint_router(pkt.src_endpoint);
  pkt.path.clear();
  pkt.path.push_back(src);
  dist_.sample_minimal_path(topo_.graph(), src, pkt.dst_router, rng, pkt.path);
}

}  // namespace slimfly::sim
