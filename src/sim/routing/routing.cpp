#include "sim/routing/routing.hpp"

#include <limits>
#include <stdexcept>

namespace slimfly::sim {

/* SF_HOT */ void DistanceOracle::sample_minimal_path(const Graph& g, int u, int v, Rng& rng,
                                         InlinePath& out) const {
  // Mirror of DistanceTable::sample_minimal_path below over virtual dist()
  // — identical candidate sets scanned in identical (sorted adjacency)
  // order, so both consume the RNG stream bit-identically.
  int current = u;
  while (current != v) {
    const int d = dist(current, v);
    if (d == 1) {
      // Exactly one candidate (v itself), which would draw nothing from
      // rng (next_below(1) is draw-free): skip the scan.
      out.push_back(v);
      break;
    }
    const int want = d - 1;
    int chosen = -1;
    int seen = 0;
    for (int w : g.neighbors(current)) {
      if (dist(w, v) == want) {
        ++seen;
        if (rng.next_below(static_cast<std::uint32_t>(seen)) == 0) chosen = w;
      }
    }
    if (chosen < 0) throw std::logic_error("sample_minimal_path: no progress");
    out.push_back(chosen);
    current = chosen;
  }
}

DistanceTable::DistanceTable(const Graph& g) : n_(g.num_vertices()) {
  table_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_), 255);
  std::vector<int> frontier;
  for (int s = 0; s < n_; ++s) {
    auto* row = &table_[static_cast<std::size_t>(s) * static_cast<std::size_t>(n_)];
    row[s] = 0;
    frontier.assign(1, s);
    int depth = 0;
    while (!frontier.empty()) {
      std::vector<int> next;
      for (int v : frontier) {
        for (int w : g.neighbors(v)) {
          if (row[w] == 255) {
            if (depth + 1 >= 255) throw std::logic_error("DistanceTable: diameter too large");
            row[w] = static_cast<std::uint8_t>(depth + 1);
            next.push_back(w);
          }
        }
      }
      frontier = std::move(next);
      ++depth;
    }
    for (int v = 0; v < n_; ++v) {
      if (row[v] == 255) throw std::invalid_argument("DistanceTable: graph disconnected");
      diameter_ = std::max(diameter_, static_cast<int>(row[v]));
    }
  }
}

/* SF_HOT */ void DistanceTable::sample_minimal_path(const Graph& g, int u, int v, Rng& rng,
                                        InlinePath& out) const {
  // Graphs are undirected (topo/graph.hpp), so dist(x, v) == dist(v, x):
  // scanning row v keeps every lookup of this walk inside one contiguous,
  // cache-resident row instead of striding a column of the n x n table.
  const std::uint8_t* row_v =
      &table_[static_cast<std::size_t>(v) * static_cast<std::size_t>(n_)];
  int current = u;
  while (current != v) {
    const int d = row_v[current];
    if (d == 1) {
      // The only vertex at distance 0 from v is v itself, so the scan
      // below would find exactly one candidate (seen == 1, which draws
      // nothing from rng): skip it. Every minimal walk ends with one of
      // these steps, so on diameter-2 graphs this halves the scans.
      out.push_back(v);
      break;
    }
    const int want = d - 1;
    // Reservoir-sample one minimal next hop uniformly.
    int chosen = -1;
    int seen = 0;
    for (int w : g.neighbors(current)) {
      if (row_v[w] == want) {
        ++seen;
        if (rng.next_below(static_cast<std::uint32_t>(seen)) == 0) chosen = w;
      }
    }
    if (chosen < 0) throw std::logic_error("sample_minimal_path: no progress");
    out.push_back(chosen);
    current = chosen;
  }
}

/* SF_HOT */ int RoutingAlgorithm::next_router(const Network& net, const Packet& pkt,
                                  int current_router) const {
  (void)net;
  std::size_t hop = static_cast<std::size_t>(pkt.hop);
  if (hop >= pkt.path.size()) throw std::logic_error("next_router: hop out of range");
  if (pkt.path[hop] != current_router) {
    throw std::logic_error("next_router: packet not on its path");
  }
  if (hop + 1 == pkt.path.size()) return -1;  // at destination router
  return pkt.path[hop + 1];
}

}  // namespace slimfly::sim
