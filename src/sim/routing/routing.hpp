#pragma once
// Routing algorithm interface (paper Section IV) and the all-pairs
// distance table shared by every algorithm.
//
// Most algorithms are source-routed: the full router path is chosen at
// injection (where UGAL's queue comparison happens) and the packet then
// follows it with VC = hop index, which guarantees deadlock freedom because
// VCs increase strictly along every path (Gopal's scheme, Section IV-D).
// Fat-tree ANCA overrides next_router() for per-hop adaptivity; its up/down
// structure is acyclic so the same VC discipline applies.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/packet.hpp"
#include "topo/graph.hpp"
#include "util/rng.hpp"

namespace slimfly::sim {

class Network;

/// Hop-distance oracle: the query interface every routing algorithm
/// consumes. Implementations must return EXACT shortest-path hop counts —
/// sample_minimal_path's default walk relies on dist() dropping by exactly
/// one per step, and simulate() sizes the VC set from diameter(), so an
/// off-by-one here silently changes results. The dense DistanceTable below
/// is the BFS reference implementation; the per-family oracles
/// (sim/routing/oracle.hpp) answer the same queries from algebra,
/// coordinates, or level rules without the O(N^2) table.
///
/// RNG contract: sample_minimal_path must consume the RNG stream exactly
/// like the default implementation here — one reservoir scan over the
/// sorted adjacency list per non-final hop, nothing drawn for the final
/// hop. Every oracle with exact distances that keeps the default (or
/// replicates its candidate sets in the same order) is bit-identical with
/// the dense table, which is what keeps golden trajectories stable across
/// OracleMode.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Exact shortest-path hop count between routers u and v.
  virtual int dist(int u, int v) const = 0;
  /// Exact graph diameter (max over all pairs of dist).
  virtual int diameter() const = 0;

  /// Appends a uniformly-sampled minimal path from u to v onto `out`
  /// (excluding u, including v). No-op when u == v. The default walks
  /// greedily: at each router it reservoir-samples uniformly among the
  /// neighbors (sorted adjacency order) that are one hop closer to v.
  virtual void sample_minimal_path(const Graph& g, int u, int v, Rng& rng,
                                   InlinePath& out) const;
};

/// All-pairs hop distances with minimal-path sampling — the dense BFS
/// reference oracle and the small-N fast path (row-cached sampling).
class DistanceTable : public DistanceOracle {
 public:
  explicit DistanceTable(const Graph& g);

  int dist(int u, int v) const override {
    return table_[static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
                  static_cast<std::size_t>(v)];
  }
  int diameter() const override { return diameter_; }

  void sample_minimal_path(const Graph& g, int u, int v, Rng& rng,
                           InlinePath& out) const override;

 private:
  int n_;
  int diameter_ = 0;
  std::vector<std::uint8_t> table_;
};

class RoutingAlgorithm {
 public:
  virtual ~RoutingAlgorithm() = default;

  virtual std::string name() const = 0;
  /// Largest number of links any produced path can traverse (defines the
  /// number of VCs needed for deadlock freedom).
  virtual int max_hops() const = 0;

  /// Called once when the packet enters its source router; source-routed
  /// algorithms fill pkt.path here (pkt.path[0] == src_router).
  virtual void route_at_injection(Network& net, Packet& pkt, Rng& rng) = 0;

  /// Next router from `current_router`, or -1 to eject. The default follows
  /// pkt.path.
  virtual int next_router(const Network& net, const Packet& pkt,
                          int current_router) const;

  /// True when next_router()/link_vc() are pure functions of the packet
  /// (and the static topology), which lets the allocator cache the
  /// head-of-line decision per input VC until the packet is popped instead
  /// of re-deriving it every cycle the packet waits. Defaults to FALSE —
  /// the conservative, always-correct choice for algorithms the allocator
  /// knows nothing about (per-hop adaptive decisions that read live queue
  /// state, like FT-ANCA's, legitimately change while a packet waits, so
  /// caching them would change results). Source-routed algorithms opt in.
  virtual bool cacheable_decisions() const { return false; }

  /// True when this algorithm keeps the DEFAULT next_router (follow
  /// pkt.path) and DEFAULT link_vc (VC = hop index): the allocator then
  /// computes the head-of-line decision inline from the packet instead of
  /// paying two virtual calls per packet per router. Defaults to FALSE so
  /// a subclass overriding next_router()/link_vc() is never silently
  /// bypassed; algorithms keeping the defaults opt in (see
  /// PathFollowingRouting below).
  virtual bool follows_packet_path() const { return false; }

  /// Virtual channel for the link the packet is about to take. The default
  /// (VC = hop index, Gopal's scheme) is deadlock-free on any topology
  /// because VCs strictly increase along a path. Algorithms whose physical
  /// routes are acyclic (fat-tree up/down) may spread packets over all
  /// max_hops() VCs instead, avoiding single-VC head-of-line blocking.
  virtual int link_vc(const Packet& pkt) const { return pkt.hop; }
};

/// Base for source-routed algorithms that keep the default
/// next_router/link_vc (follow pkt.path, VC = hop index): opts into the
/// allocator's head-of-line decision cache and its inline, devirtualized
/// path following. Derive from RoutingAlgorithm directly when overriding
/// either virtual — the conservative defaults there keep a forgotten flag
/// from silently bypassing your logic.
class PathFollowingRouting : public RoutingAlgorithm {
 public:
  bool cacheable_decisions() const override { return true; }
  bool follows_packet_path() const override { return true; }
};

}  // namespace slimfly::sim
