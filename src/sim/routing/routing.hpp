#pragma once
// Routing algorithm interface (paper Section IV) and the all-pairs
// distance table shared by every algorithm.
//
// Most algorithms are source-routed: the full router path is chosen at
// injection (where UGAL's queue comparison happens) and the packet then
// follows it with VC = hop index, which guarantees deadlock freedom because
// VCs increase strictly along every path (Gopal's scheme, Section IV-D).
// Fat-tree ANCA overrides next_router() for per-hop adaptivity; its up/down
// structure is acyclic so the same VC discipline applies.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/packet.hpp"
#include "topo/graph.hpp"
#include "util/rng.hpp"

namespace slimfly::sim {

class Network;

/// All-pairs hop distances with minimal-path sampling.
class DistanceTable {
 public:
  explicit DistanceTable(const Graph& g);

  int dist(int u, int v) const {
    return table_[static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
                  static_cast<std::size_t>(v)];
  }
  int diameter() const { return diameter_; }

  /// Appends a uniformly-sampled minimal path from u to v onto `out`
  /// (excluding u, including v). No-op when u == v.
  void sample_minimal_path(const Graph& g, int u, int v, Rng& rng,
                           InlinePath& out) const;

 private:
  int n_;
  int diameter_ = 0;
  std::vector<std::uint8_t> table_;
};

class RoutingAlgorithm {
 public:
  virtual ~RoutingAlgorithm() = default;

  virtual std::string name() const = 0;
  /// Largest number of links any produced path can traverse (defines the
  /// number of VCs needed for deadlock freedom).
  virtual int max_hops() const = 0;

  /// Called once when the packet enters its source router; source-routed
  /// algorithms fill pkt.path here (pkt.path[0] == src_router).
  virtual void route_at_injection(Network& net, Packet& pkt, Rng& rng) = 0;

  /// Next router from `current_router`, or -1 to eject. The default follows
  /// pkt.path.
  virtual int next_router(const Network& net, const Packet& pkt,
                          int current_router) const;

  /// True when next_router()/link_vc() are pure functions of the packet
  /// (and the static topology), which lets the allocator cache the
  /// head-of-line decision per input VC until the packet is popped instead
  /// of re-deriving it every cycle the packet waits. Defaults to FALSE —
  /// the conservative, always-correct choice for algorithms the allocator
  /// knows nothing about (per-hop adaptive decisions that read live queue
  /// state, like FT-ANCA's, legitimately change while a packet waits, so
  /// caching them would change results). Source-routed algorithms opt in.
  virtual bool cacheable_decisions() const { return false; }

  /// True when this algorithm keeps the DEFAULT next_router (follow
  /// pkt.path) and DEFAULT link_vc (VC = hop index): the allocator then
  /// computes the head-of-line decision inline from the packet instead of
  /// paying two virtual calls per packet per router. Defaults to FALSE so
  /// a subclass overriding next_router()/link_vc() is never silently
  /// bypassed; algorithms keeping the defaults opt in (see
  /// PathFollowingRouting below).
  virtual bool follows_packet_path() const { return false; }

  /// Virtual channel for the link the packet is about to take. The default
  /// (VC = hop index, Gopal's scheme) is deadlock-free on any topology
  /// because VCs strictly increase along a path. Algorithms whose physical
  /// routes are acyclic (fat-tree up/down) may spread packets over all
  /// max_hops() VCs instead, avoiding single-VC head-of-line blocking.
  virtual int link_vc(const Packet& pkt) const { return pkt.hop; }
};

/// Base for source-routed algorithms that keep the default
/// next_router/link_vc (follow pkt.path, VC = hop index): opts into the
/// allocator's head-of-line decision cache and its inline, devirtualized
/// path following. Derive from RoutingAlgorithm directly when overriding
/// either virtual — the conservative defaults there keep a forgotten flag
/// from silently bypassing your logic.
class PathFollowingRouting : public RoutingAlgorithm {
 public:
  bool cacheable_decisions() const override { return true; }
  bool follows_packet_path() const override { return true; }
};

}  // namespace slimfly::sim
