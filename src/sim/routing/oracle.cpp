#include "sim/routing/oracle.hpp"

#include <algorithm>
#include <stdexcept>

#include "sf/mms.hpp"
#include "topo/augmented.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/flatbutterfly.hpp"
#include "topo/hypercube.hpp"
#include "topo/topology.hpp"
#include "topo/torus.hpp"

namespace slimfly::sim {

// ---- slimfly: MMS connection equations (paper Section II-B) ---------------

SlimFlyOracle::SlimFlyOracle(const sf::SlimFlyMMS& topo)
    : field_(topo.field()),
      q_(topo.q()),
      in_x_(static_cast<std::size_t>(q_), 0),
      in_xprime_(static_cast<std::size_t>(q_), 0) {
  for (int e : topo.generators().x) in_x_[static_cast<std::size_t>(e)] = 1;
  for (int e : topo.generators().xprime) in_xprime_[static_cast<std::size_t>(e)] = 1;
}

/* SF_HOT */ int SlimFlyOracle::dist(int u, int v) const {
  if (u == v) return 0;
  const int qq = q_ * q_;
  const int s1 = u / qq, s2 = v / qq;
  const int a1 = (u % qq) / q_, b1 = u % q_;
  const int a2 = (v % qq) / q_, b2 = v % q_;
  if (s1 == s2) {
    // Eq. (1)/(2): intra-subgraph edges exist only inside one column (same
    // x resp. m) when the y-difference lies in the generator set; any other
    // same-subgraph pair has a common neighbour (conditions A1/A2), so 2.
    if (a1 != a2) return 2;
    const int diff = field_.sub(b1, b2);
    const auto& mask = s1 == 0 ? in_x_ : in_xprime_;
    return mask[static_cast<std::size_t>(diff)] ? 1 : 2;
  }
  // Eq. (3): (0, x, y) ~ (1, m, c)  iff  y = m*x + c; non-adjacent cross
  // pairs are at distance exactly 2 (condition B / unique line-point
  // incidence), the paper's diameter-2 property.
  const int x = s1 == 0 ? a1 : a2, y = s1 == 0 ? b1 : b2;
  const int m = s1 == 0 ? a2 : a1, c = s1 == 0 ? b2 : b1;
  return y == field_.add(field_.mul(m, x), c) ? 1 : 2;
}

// ---- torus ----------------------------------------------------------------

TorusOracle::TorusOracle(const Torus& topo)
    : dims_(topo.dims()), diameter_(topo.diameter()) {}

/* SF_HOT */ int TorusOracle::dist(int u, int v) const {
  int d = 0;
  for (int extent : dims_) {
    const int a = u % extent, b = v % extent;
    u /= extent;
    v /= extent;
    const int gap = a < b ? b - a : a - b;
    d += std::min(gap, extent - gap);
  }
  return d;
}

// ---- hypercube ------------------------------------------------------------

HypercubeOracle::HypercubeOracle(const Hypercube& topo) : n_dims_(topo.n_dims()) {}

/* SF_HOT */ int HypercubeOracle::dist(int u, int v) const {
  unsigned x = static_cast<unsigned>(u) ^ static_cast<unsigned>(v);
  int d = 0;
  while (x != 0) {
    x &= x - 1;
    ++d;
  }
  return d;
}

// ---- flattened butterfly --------------------------------------------------

FlatButterflyOracle::FlatButterflyOracle(const FlattenedButterfly& topo)
    : n_dims_(topo.n_dims()), extent_(topo.extent()) {}

/* SF_HOT */ int FlatButterflyOracle::dist(int u, int v) const {
  int d = 0;
  for (int i = 0; i < n_dims_; ++i) {
    if (u % extent_ != v % extent_) ++d;
    u /= extent_;
    v /= extent_;
  }
  return d;
}

// ---- fat tree -------------------------------------------------------------

FatTreeOracle::FatTreeOracle(const FatTree3& topo)
    : p_(topo.p()), pods_(topo.pods()) {}

/* SF_HOT */ int FatTreeOracle::dist(int u, int v) const {
  if (u == v) return 0;
  const int agg_base = pods_ * p_;
  const int core_base = 2 * pods_ * p_;
  const auto level = [&](int r) { return r < agg_base ? 0 : r < core_base ? 1 : 2; };
  if (level(u) > level(v)) std::swap(u, v);
  const int lu = level(u), lv = level(v);
  // Pod for edge/agg switches; core column j for cores/aggs (core (j, l)
  // connects to agg j of every pod — fattree.cpp's numbering comment).
  const auto pod = [&](int r) { return (r - level(r) * agg_base) / p_; };
  const auto agg_j = [&](int r) { return (r - agg_base) % p_; };
  const auto core_j = [&](int r) { return (r - core_base) / p_; };
  if (lu == 0 && lv == 0) return pod(u) == pod(v) ? 2 : 4;
  if (lu == 0 && lv == 1) return pod(u) == pod(v) ? 1 : 3;
  if (lu == 0 && lv == 2) return 2;  // edge - (any agg of its pod) - core
  if (lu == 1 && lv == 1) {
    if (pod(u) == pod(v)) return 2;          // via a shared edge switch
    return agg_j(u) == agg_j(v) ? 2 : 4;     // via a shared core, else down-up
  }
  if (lu == 1 && lv == 2) return agg_j(u) == core_j(v) ? 1 : 3;
  return core_j(u) == core_j(v) ? 2 : 4;     // core-core via a shared agg
}

// ---- dragonfly ------------------------------------------------------------

DragonflyOracle::DragonflyOracle(const Dragonfly& topo)
    : a_(topo.a()), globals_(static_cast<std::size_t>(topo.num_routers())) {
  const Graph& g = topo.graph();
  const int n = g.num_vertices();
  for (int r = 0; r < n; ++r) {
    const int gr = r / a_;
    for (int w : g.neighbors(r)) {
      if (w / a_ != gr) globals_[static_cast<std::size_t>(r)].push_back(w);
    }
  }
  // Exact diameter. Complete graph (tiny dense configs) is 1; otherwise 2
  // unless some cross-group pair has no 2-path. A router with a global link
  // into group B reaches all of B in <= 2 hops, so only (u, B) pairs where
  // u has no link into B can contribute a distance-3 pair — scan those.
  bool complete = n > 1;
  for (int r = 0; complete && r < n; ++r) complete = g.degree(r) == n - 1;
  if (complete) {
    diameter_ = 1;
    return;
  }
  diameter_ = 2;
  const int groups = topo.groups();
  std::vector<std::uint8_t> reached(static_cast<std::size_t>(groups));
  for (int u = 0; u < n && diameter_ == 2; ++u) {
    std::fill(reached.begin(), reached.end(), 0);
    const int gu = u / a_;
    reached[static_cast<std::size_t>(gu)] = 1;
    for (int w : globals(u)) reached[static_cast<std::size_t>(w / a_)] = 1;
    for (int b = 0; b < groups && diameter_ == 2; ++b) {
      if (reached[static_cast<std::size_t>(b)]) continue;
      for (int v = b * a_; v < (b + 1) * a_; ++v) {
        if (dist(u, v) == 3) {
          diameter_ = 3;
          break;
        }
      }
    }
  }
}

bool DragonflyOracle::two_path_exists(int u, int v) const {
  const int gu = u / a_, gv = v / a_;
  for (int w : globals(u)) {
    if (w / a_ == gv) return true;  // global into v's group, then local
    // global-global: w's global list is sorted adjacency order.
    const auto& gw = globals(w);
    if (std::binary_search(gw.begin(), gw.end(), v)) return true;
  }
  for (int w : globals(v)) {
    if (w / a_ == gu) return true;  // local out of u's group, then global
  }
  return false;
}

/* SF_HOT */ int DragonflyOracle::dist(int u, int v) const {
  if (u == v) return 0;
  if (u / a_ == v / a_) return 1;  // intra-group clique
  const auto& gu = globals(u);
  if (std::binary_search(gu.begin(), gu.end(), v)) return 1;
  return two_path_exists(u, v) ? 2 : 3;
}

// ---- diameter-2 adjacency oracle (augmented) ------------------------------

Diameter2Oracle::Diameter2Oracle(const Graph& g, int diameter)
    : g_(&g), diameter_(diameter) {}

std::unique_ptr<Diameter2Oracle> Diameter2Oracle::try_build(const Graph& g) {
  const int n = g.num_vertices();
  if (n <= 1) return nullptr;
  bool complete = true;
  for (int r = 0; complete && r < n; ++r) complete = g.degree(r) == n - 1;
  if (complete) {
    return std::unique_ptr<Diameter2Oracle>(new Diameter2Oracle(g, 1));
  }
  // Verify every pair is covered at distance <= 2: OR each vertex's
  // neighbour rows over a transient adjacency bitset (N^2/8 bytes, freed on
  // return).
  const std::size_t words = (static_cast<std::size_t>(n) + 63) / 64;
  std::vector<std::uint64_t> rows(static_cast<std::size_t>(n) * words, 0);
  for (int u = 0; u < n; ++u) {
    std::uint64_t* row = &rows[static_cast<std::size_t>(u) * words];
    for (int w : g.neighbors(u)) {
      row[static_cast<std::size_t>(w) >> 6] |= std::uint64_t{1} << (w & 63);
    }
  }
  std::vector<std::uint64_t> cover(words);
  for (int u = 0; u < n; ++u) {
    const std::uint64_t* row = &rows[static_cast<std::size_t>(u) * words];
    std::copy(row, row + words, cover.begin());
    cover[static_cast<std::size_t>(u) >> 6] |= std::uint64_t{1} << (u & 63);
    for (int w : g.neighbors(u)) {
      const std::uint64_t* wrow = &rows[static_cast<std::size_t>(w) * words];
      for (std::size_t i = 0; i < words; ++i) cover[i] |= wrow[i];
    }
    for (std::size_t i = 0; i < words; ++i) {
      std::uint64_t want = ~std::uint64_t{0};
      if (i + 1 == words && (n & 63) != 0) want = (std::uint64_t{1} << (n & 63)) - 1;
      if (cover[i] != want) return nullptr;  // some pair is > 2 hops apart
    }
  }
  return std::unique_ptr<Diameter2Oracle>(new Diameter2Oracle(g, 2));
}

/* SF_HOT */ int Diameter2Oracle::dist(int u, int v) const {
  if (u == v) return 0;
  return g_->has_edge(u, v) ? 1 : 2;
}

// ---- compressed BFS fallback ----------------------------------------------

CompressedBfsOracle::CompressedBfsOracle(const Graph& g)
    : g_(&g), n_(g.num_vertices()) {
  packed_.assign((static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_) + 3) / 4, 0);
  std::vector<std::uint8_t> row(static_cast<std::size_t>(n_));
  std::vector<int> frontier;
  for (int s = 0; s < n_; ++s) {
    std::fill(row.begin(), row.end(), 255);
    row[static_cast<std::size_t>(s)] = 0;
    frontier.assign(1, s);
    int depth = 0;
    while (!frontier.empty()) {
      std::vector<int> next;
      for (int v : frontier) {
        for (int w : g.neighbors(v)) {
          if (row[static_cast<std::size_t>(w)] == 255) {
            if (depth + 1 >= 255) {
              throw std::logic_error("CompressedBfsOracle: diameter too large");
            }
            row[static_cast<std::size_t>(w)] = static_cast<std::uint8_t>(depth + 1);
            next.push_back(w);
          }
        }
      }
      frontier = std::move(next);
      ++depth;
    }
    for (int v = 0; v < n_; ++v) {
      const int d = row[static_cast<std::size_t>(v)];
      if (d == 255) throw std::invalid_argument("CompressedBfsOracle: graph disconnected");
      diameter_ = std::max(diameter_, d);
      const std::size_t idx = static_cast<std::size_t>(s) * static_cast<std::size_t>(n_) +
                              static_cast<std::size_t>(v);
      packed_[idx >> 2] |= static_cast<std::uint8_t>((d % 3) << ((idx & 3u) * 2));
    }
  }
}

/* SF_HOT */ int CompressedBfsOracle::dist(int u, int v) const {
  // Neighbours of a vertex at distance d from v sit at d-1, d, or d+1 —
  // pairwise distinct mod 3 — so a greedy walk toward the residue one step
  // closer recovers the exact distance.
  int steps = 0;
  int current = u;
  while (current != v) {
    const int want = (mod3(current, v) + 2) % 3;
    int next = -1;
    for (int w : g_->neighbors(current)) {
      if (mod3(w, v) == want) {
        next = w;
        break;
      }
    }
    if (next < 0) throw std::logic_error("CompressedBfsOracle: no progress");
    current = next;
    ++steps;
  }
  return steps;
}

/* SF_HOT */ void CompressedBfsOracle::sample_minimal_path(const Graph& g, int u, int v, Rng& rng,
                                              InlinePath& out) const {
  // Same walk as DistanceTable::sample_minimal_path with the same candidate
  // sets in the same (sorted adjacency) order — bit-identical RNG
  // consumption. has_edge(current, v) <=> dist == 1 replaces the d == 1
  // shortcut; the mod-3 residue one step closer selects exactly the
  // neighbours at distance d-1 (see dist() above).
  int current = u;
  while (current != v) {
    if (g.has_edge(current, v)) {
      out.push_back(v);
      break;
    }
    const int want = (mod3(current, v) + 2) % 3;
    int chosen = -1;
    int seen = 0;
    for (int w : g.neighbors(current)) {
      if (mod3(w, v) == want) {
        ++seen;
        if (rng.next_below(static_cast<std::uint32_t>(seen)) == 0) chosen = w;
      }
    }
    if (chosen < 0) throw std::logic_error("sample_minimal_path: no progress");
    out.push_back(chosen);
    current = chosen;
  }
}

// ---- selection ------------------------------------------------------------

std::shared_ptr<const DistanceOracle> make_family_oracle(const Topology& topo) {
  if (auto* sf = dynamic_cast<const sf::SlimFlyMMS*>(&topo)) {
    return std::make_shared<SlimFlyOracle>(*sf);
  }
  if (auto* t = dynamic_cast<const Torus*>(&topo)) {
    return std::make_shared<TorusOracle>(*t);
  }
  if (auto* h = dynamic_cast<const Hypercube*>(&topo)) {
    return std::make_shared<HypercubeOracle>(*h);
  }
  if (auto* f = dynamic_cast<const FlattenedButterfly*>(&topo)) {
    return std::make_shared<FlatButterflyOracle>(*f);
  }
  if (auto* ft = dynamic_cast<const FatTree3*>(&topo)) {
    return std::make_shared<FatTreeOracle>(*ft);
  }
  if (auto* df = dynamic_cast<const Dragonfly*>(&topo)) {
    return std::make_shared<DragonflyOracle>(*df);
  }
  if (dynamic_cast<const AugmentedTopology*>(&topo) != nullptr) {
    // Random augmentation usually lands at diameter 2 (that is its point),
    // but nothing guarantees it and the base may be anything: verify, and
    // fall through to the compressed BFS fallback when it is not.
    if (auto d2 = Diameter2Oracle::try_build(topo.graph())) {
      return std::shared_ptr<const DistanceOracle>(std::move(d2));
    }
  }
  return std::make_shared<CompressedBfsOracle>(topo.graph());
}

std::shared_ptr<const DistanceOracle> make_distance_oracle(const Topology& topo,
                                                           OracleMode mode) {
  switch (mode) {
    case OracleMode::Table:
      return std::make_shared<DistanceTable>(topo.graph());
    case OracleMode::Family:
      return make_family_oracle(topo);
    default:
      if (topo.num_routers() <= kDenseOracleRouterLimit) {
        return std::make_shared<DistanceTable>(topo.graph());
      }
      return make_family_oracle(topo);
  }
}

}  // namespace slimfly::sim
