#pragma once
// Minimal static routing (paper Section IV-A): a uniformly random shortest
// path is chosen at injection — direct neighbours in one hop, everything
// else in diameter-many hops. Matches what statically routed InfiniBand or
// Ethernet would do on the topology.

#include "sim/routing/routing.hpp"
#include "topo/topology.hpp"

namespace slimfly::sim {

class MinimalRouting : public PathFollowingRouting {
 public:
  MinimalRouting(const Topology& topo, const DistanceOracle& dist)
      : topo_(topo), dist_(dist) {}

  std::string name() const override { return "MIN"; }
  int max_hops() const override { return dist_.diameter(); }

  void route_at_injection(Network& net, Packet& pkt, Rng& rng) override;

 protected:
  const Topology& topo_;
  const DistanceOracle& dist_;
};

}  // namespace slimfly::sim
