#include "sim/simulation.hpp"

#include <stdexcept>

#include "sim/routing/dragonfly_routing.hpp"
#include "sim/routing/fattree_routing.hpp"
#include "sim/routing/minimal.hpp"
#include "sim/routing/ugal.hpp"
#include "sim/routing/valiant.hpp"

namespace slimfly::sim {

std::string to_string(RoutingKind kind) {
  switch (kind) {
    case RoutingKind::Minimal: return "MIN";
    case RoutingKind::Valiant: return "VAL";
    case RoutingKind::UgalL: return "UGAL-L";
    case RoutingKind::UgalG: return "UGAL-G";
    case RoutingKind::DragonflyUgalL: return "DF-UGAL-L";
    case RoutingKind::FatTreeAnca: return "FT-ANCA";
  }
  return "?";
}

RoutingBundle make_routing(RoutingKind kind, const Topology& topo,
                           std::shared_ptr<DistanceTable> distances) {
  RoutingBundle bundle;
  if (kind != RoutingKind::FatTreeAnca) {
    bundle.distances = distances ? std::move(distances)
                                 : std::make_shared<DistanceTable>(topo.graph());
  }
  switch (kind) {
    case RoutingKind::Minimal:
      bundle.algorithm = std::make_unique<MinimalRouting>(topo, *bundle.distances);
      break;
    case RoutingKind::Valiant:
      bundle.algorithm = std::make_unique<ValiantRouting>(topo, *bundle.distances);
      break;
    case RoutingKind::UgalL:
      bundle.algorithm = std::make_unique<UgalRouting>(topo, *bundle.distances,
                                                       UgalMode::Local);
      break;
    case RoutingKind::UgalG:
      bundle.algorithm = std::make_unique<UgalRouting>(topo, *bundle.distances,
                                                       UgalMode::Global);
      break;
    case RoutingKind::DragonflyUgalL: {
      const auto* df = dynamic_cast<const Dragonfly*>(&topo);
      if (!df) throw std::invalid_argument("DF-UGAL-L requires a Dragonfly topology");
      bundle.algorithm = make_dragonfly_ugal_l(*df, *bundle.distances);
      break;
    }
    case RoutingKind::FatTreeAnca: {
      const auto* ft = dynamic_cast<const FatTree3*>(&topo);
      if (!ft) throw std::invalid_argument("FT-ANCA requires a FatTree3 topology");
      bundle.algorithm = std::make_unique<FatTreeAncaRouting>(*ft);
      break;
    }
  }
  return bundle;
}

SimResult simulate(const Topology& topo, RoutingAlgorithm& routing,
                   TrafficPattern& traffic, SimConfig config, double load) {
  if (config.num_vcs < routing.max_hops()) config.num_vcs = routing.max_hops();
  Network net(topo, routing, traffic, config, load);
  return net.run();
}

std::vector<SweepPoint> load_sweep(
    const Topology& topo, RoutingAlgorithm& routing,
    const std::function<std::unique_ptr<TrafficPattern>()>& traffic_factory,
    SimConfig config, const std::vector<double>& loads, bool stop_at_saturation) {
  std::vector<SweepPoint> points;
  for (double load : loads) {
    auto traffic = traffic_factory();
    SweepPoint point;
    point.load = load;
    point.result = simulate(topo, routing, *traffic, config, load);
    points.push_back(point);
    if (stop_at_saturation && point.result.saturated) break;
  }
  return points;
}

std::vector<double> default_loads(double step, double max) {
  std::vector<double> loads;
  for (double l = step; l <= max + 1e-9; l += step) loads.push_back(l);
  return loads;
}

}  // namespace slimfly::sim
