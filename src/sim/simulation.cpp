#include "sim/simulation.hpp"

#include <stdexcept>

#include "exp/experiment.hpp"
#include "sim/routing/dragonfly_routing.hpp"
#include "sim/routing/fattree_routing.hpp"
#include "sim/routing/minimal.hpp"
#include "sim/routing/oracle.hpp"
#include "sim/routing/ugal.hpp"
#include "sim/routing/valiant.hpp"
#include "topo/registry.hpp"

namespace slimfly::sim {

namespace {
constexpr RoutingKind kAllRoutingKinds[] = {
    RoutingKind::Minimal,        RoutingKind::Valiant,
    RoutingKind::UgalL,          RoutingKind::UgalG,
    RoutingKind::DragonflyUgalL, RoutingKind::FatTreeAnca};

// Names the concrete topology the caller handed over — "DF-UGAL-L requires
// a dragonfly topology; got \"SlimFly MMS q=5\" (family slimfly)" — so CLI
// users can fix their spec string without reading the source.
std::string unsupported_message(RoutingKind kind, const Topology& topo) {
  const std::string family = topo::family_of(topo);
  return to_string(kind) + " requires a " + routing_requirement(kind) +
         " topology; got \"" + topo.name() + "\"" +
         (family.empty() ? "" : " (family " + family + ")");
}
}  // namespace

std::string to_string(RoutingKind kind) {
  switch (kind) {
    case RoutingKind::Minimal: return "MIN";
    case RoutingKind::Valiant: return "VAL";
    case RoutingKind::UgalL: return "UGAL-L";
    case RoutingKind::UgalG: return "UGAL-G";
    case RoutingKind::DragonflyUgalL: return "DF-UGAL-L";
    case RoutingKind::FatTreeAnca: return "FT-ANCA";
  }
  return "?";
}

RoutingKind routing_kind_from_string(const std::string& name) {
  for (RoutingKind kind : kAllRoutingKinds) {
    if (to_string(kind) == name) return kind;
  }
  // Self-serve CLI errors: name the offending string and every valid one.
  std::string known;
  for (RoutingKind kind : kAllRoutingKinds) {
    if (!known.empty()) known += ", ";
    known += to_string(kind);
  }
  throw std::invalid_argument("unknown routing \"" + name + "\" (known: " +
                              known + ")");
}

std::vector<std::string> routing_names() {
  std::vector<std::string> names;
  for (RoutingKind kind : kAllRoutingKinds) names.push_back(to_string(kind));
  return names;
}

std::string routing_requirement(RoutingKind kind) {
  switch (kind) {
    case RoutingKind::DragonflyUgalL: return "dragonfly";
    case RoutingKind::FatTreeAnca: return "fattree";
    default: return "";
  }
}

bool routing_supported(RoutingKind kind, const Topology& topo) {
  // Derived from routing_requirement so the restriction lives in one place;
  // family_of uses the same dynamic_casts make_routing relies on.
  const std::string need = routing_requirement(kind);
  return need.empty() || need == topo::family_of(topo);
}

RoutingBundle make_routing(RoutingKind kind, const Topology& topo,
                           std::shared_ptr<const DistanceOracle> distances) {
  RoutingBundle bundle;
  if (kind != RoutingKind::FatTreeAnca) {
    bundle.distances = distances
                           ? std::move(distances)
                           : make_distance_oracle(topo, OracleMode::Auto);
  }
  switch (kind) {
    case RoutingKind::Minimal:
      bundle.algorithm = std::make_unique<MinimalRouting>(topo, *bundle.distances);
      break;
    case RoutingKind::Valiant:
      bundle.algorithm = std::make_unique<ValiantRouting>(topo, *bundle.distances);
      break;
    case RoutingKind::UgalL:
      bundle.algorithm = std::make_unique<UgalRouting>(topo, *bundle.distances,
                                                       UgalMode::Local);
      break;
    case RoutingKind::UgalG:
      bundle.algorithm = std::make_unique<UgalRouting>(topo, *bundle.distances,
                                                       UgalMode::Global);
      break;
    case RoutingKind::DragonflyUgalL: {
      const auto* df = dynamic_cast<const Dragonfly*>(&topo);
      if (!df) throw std::invalid_argument(unsupported_message(kind, topo));
      bundle.algorithm = make_dragonfly_ugal_l(*df, *bundle.distances);
      break;
    }
    case RoutingKind::FatTreeAnca: {
      const auto* ft = dynamic_cast<const FatTree3*>(&topo);
      if (!ft) throw std::invalid_argument(unsupported_message(kind, topo));
      bundle.algorithm = std::make_unique<FatTreeAncaRouting>(*ft);
      break;
    }
  }
  return bundle;
}

RoutingBundle make_routing(const std::string& name, const Topology& topo,
                           std::shared_ptr<const DistanceOracle> distances) {
  return make_routing(routing_kind_from_string(name), topo,
                      std::move(distances));
}

namespace {

// Strict positive-integer read for routing spec parameters; `what` names the
// spec and key so the message is self-serve ("routing spec \"VAL:hoplimit=x\":
// hoplimit must be an integer in 1..255").
int parse_routing_param(const std::string& value, int min, int max,
                        const std::string& what) {
  bool ok = !value.empty() && value.size() <= 6 &&
            value.find_first_not_of("0123456789") == std::string::npos;
  long parsed = ok ? std::stol(value) : 0;
  if (!ok || parsed < min || parsed > max) {
    throw std::invalid_argument(what + " must be an integer in " +
                                std::to_string(min) + ".." +
                                std::to_string(max) + " (got \"" + value +
                                "\")");
  }
  return static_cast<int>(parsed);
}

}  // namespace

RoutingSpec parse_routing_spec(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  RoutingSpec out;
  out.kind = routing_kind_from_string(spec.substr(0, colon));
  if (colon == std::string::npos) return out;

  const std::string context = "routing spec \"" + spec + "\"";
  std::string params = spec.substr(colon + 1);
  std::size_t start = 0;
  while (start <= params.size()) {
    std::size_t end = params.find(',', start);
    std::string part = params.substr(
        start, end == std::string::npos ? std::string::npos : end - start);
    std::size_t eq = part.find('=');
    if (part.empty() || eq == std::string::npos || eq == 0) {
      throw std::invalid_argument(context + ": expected key=value, got \"" +
                                  part + "\"");
    }
    const std::string key = part.substr(0, eq);
    const std::string value = part.substr(eq + 1);
    if ((out.kind == RoutingKind::UgalL || out.kind == RoutingKind::UgalG) &&
        key == "c") {
      out.ugal_candidates =
          parse_routing_param(value, 1, 64, context + ": c");
    } else if (out.kind == RoutingKind::Valiant && key == "hoplimit") {
      out.val_hop_limit =
          parse_routing_param(value, 1, 255, context + ": hoplimit");
    } else {
      throw std::invalid_argument(
          context + ": unknown parameter \"" + key + "\" for " +
          to_string(out.kind) +
          " (UGAL-L/UGAL-G take c=<1..64>, VAL takes hoplimit=<1..255>; "
          "other routings take none)");
    }
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return out;
}

RoutingBundle make_routing_spec(const std::string& spec, const Topology& topo,
                                std::shared_ptr<const DistanceOracle> distances) {
  const RoutingSpec parsed = parse_routing_spec(spec);
  RoutingBundle bundle = make_routing(parsed.kind, topo, std::move(distances));
  // Rebuild the two parameterizable algorithms when a non-default parameter
  // was requested; the bundle already holds the shared distance oracle.
  if (parsed.kind == RoutingKind::Valiant && parsed.val_hop_limit) {
    bundle.algorithm = std::make_unique<ValiantRouting>(topo, *bundle.distances,
                                                        parsed.val_hop_limit);
  } else if ((parsed.kind == RoutingKind::UgalL ||
              parsed.kind == RoutingKind::UgalG) &&
             parsed.ugal_candidates != 4) {
    bundle.algorithm = std::make_unique<UgalRouting>(
        topo, *bundle.distances,
        parsed.kind == RoutingKind::UgalL ? UgalMode::Local : UgalMode::Global,
        parsed.ugal_candidates);
  }
  return bundle;
}

SimResult simulate(const Topology& topo, RoutingAlgorithm& routing,
                   TrafficPattern& traffic, SimConfig config, double load) {
  if (config.num_vcs < routing.max_hops()) config.num_vcs = routing.max_hops();
  Network net(topo, routing, traffic, config, load);
  return net.run();
}

std::vector<SweepPoint> load_sweep(
    const Topology& topo, RoutingAlgorithm& routing,
    const std::function<std::unique_ptr<TrafficPattern>()>& traffic_factory,
    SimConfig config, const std::vector<double>& loads, bool stop_at_saturation) {
  // Thin compatibility wrapper over the experiment engine's sequential
  // path: one prepared series sharing the caller's routing instance, the
  // fixed config seed at every point, and early stop at saturation.
  exp::PreparedExperiment prepared;
  exp::PreparedSeries series;
  series.topo = &topo;
  series.make_routing = [&routing] {
    return std::shared_ptr<RoutingAlgorithm>(&routing,
                                             [](RoutingAlgorithm*) {});
  };
  series.make_traffic = traffic_factory;
  prepared.series.push_back(std::move(series));
  prepared.loads = loads;
  prepared.config = config;
  prepared.truncate_at_saturation = stop_at_saturation;

  exp::ExperimentEngine engine(1);
  std::vector<SweepPoint> points;
  for (const auto& r : engine.run_prepared(prepared)) {
    points.push_back({r.load, r.result});
  }
  return points;
}

std::vector<double> default_loads(double step, double max) {
  std::vector<double> loads;
  for (double l = step; l <= max + 1e-9; l += step) loads.push_back(l);
  return loads;
}

}  // namespace slimfly::sim
