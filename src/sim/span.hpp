#pragma once
// Minimal contiguous view used by the SoA router arenas (sim/router.hpp):
// a (pointer, length) pair into Network-owned backing storage. The router
// structs keep their field names and indexing syntax, but the elements of
// every router live consecutively in one capacity-exact arena sized at
// Network::wire() instead of in millions of per-object std::vectors — one
// allocation per state family instead of one per port, and no per-vector
// malloc headers or capacity slack at fleet scale.
//
// Deliberately not std::span (C++20) and deliberately tiny: fixed after
// wire(), no ownership, 32-bit length (the arena sizes are bounded by
// ports x VCs, far under 2^32).

#include <cstddef>
#include <cstdint>

namespace slimfly::sim {

template <typename T>
class Span {
 public:
  Span() = default;
  Span(T* data, std::size_t size)
      : data_(data), size_(static_cast<std::uint32_t>(size)) {}

  /* SF_HOT */ T& operator[](std::size_t i) { return data_[i]; }
  /* SF_HOT */ const T& operator[](std::size_t i) const { return data_[i]; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  T* data_ = nullptr;
  std::uint32_t size_ = 0;
};

}  // namespace slimfly::sim
