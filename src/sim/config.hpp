#pragma once
// Simulator configuration (paper Section V, "Performance" methodology):
// single-flit packets, Bernoulli injection, input-queued routers with
// credit-based virtual-channel flow control, internal speedup 2, 64-flit
// default buffering per port, 2-cycle credit processing, 1-cycle channel /
// allocation / crossbar stages.

#include <cstdint>
#include <functional>

namespace slimfly::sim {

/// Stepping engine selection. Both engines produce bit-identical results —
/// the knob only trades wall-clock time (like intra_threads), so it is
/// excluded from exp::point_seed hashing and allowed per-series in suites.
///
///   Cycle  — visit every router every cycle (the PR 5 data-oriented loop).
///   Active — per-shard active-router sets plus a min-heap of future wake
///            times: quiet routers are skipped and globally-idle stretches
///            fast-forward the cycle counter in one jump
///            (docs/ARCHITECTURE.md §"Stepping engines").
enum class StepEngine : std::uint8_t { Cycle = 0, Active = 1 };

inline const char* to_string(StepEngine engine) {
  return engine == StepEngine::Active ? "active" : "cycle";
}

/// Distance-oracle selection. Every oracle returns exactly the BFS
/// distances (certified by tests/oracle_test.cpp) and consumes the RNG
/// stream bit-identically in sample_minimal_path, so — like StepEngine —
/// the knob trades memory/build time only, is excluded from
/// exp::point_seed hashing, and is allowed per-series in suites.
///
///   Auto   — dense DistanceTable for small networks (cheap and fastest to
///            query), the per-family oracle beyond the threshold where the
///            O(N^2) table stops being free.
///   Table  — always the dense O(N^2) reference table.
///   Family — always the per-family oracle (algebraic for slimfly,
///            coordinate arithmetic for torus/hypercube/flatbutterfly,
///            level rules for fattree/dragonfly, compressed BFS fallback
///            for the random families) — see sim/routing/oracle.hpp.
enum class OracleMode : std::uint8_t { Auto = 0, Table = 1, Family = 2 };

inline const char* to_string(OracleMode mode) {
  switch (mode) {
    case OracleMode::Table: return "table";
    case OracleMode::Family: return "family";
    default: return "auto";
  }
}

struct SimConfig {
  int num_vcs = 4;             ///< VC = hop index (Gopal); 4 covers <=4-hop paths
  int buffer_per_port = 64;    ///< total flit slots per input port (all VCs)
  int channel_latency = 1;     ///< cycles on the wire
  int router_pipeline = 2;     ///< SA + crossbar stages folded together
  int credit_delay = 2;        ///< cycles to return a credit upstream
  int alloc_iterations = 2;    ///< internal speedup
  int output_staging = 4;      ///< slots between crossbar and channel

  std::int64_t warmup_cycles = 2000;
  std::int64_t measure_cycles = 2000;
  std::int64_t drain_cycles = 30000;   ///< cap on the drain phase
  double latency_cap = 2000.0;         ///< declare saturation beyond this

  std::uint64_t seed = 1;

  /// Router-parallel stepping workers inside one simulation point: 1 (the
  /// default) steps sequentially, N > 1 shards routers over N workers with
  /// barriers between the cycle phases, 0 means "auto" (all hardware
  /// threads when a Network resolves it; the scheduling policy when an
  /// ExperimentEngine does — see exp/experiment.hpp). Results are
  /// bit-identical for every value: the knob only trades wall-clock time.
  int intra_threads = 1;

  /// Stepping engine (cycle | active). Never changes results; see StepEngine.
  StepEngine engine = StepEngine::Cycle;

  /// Distance-oracle backend (auto | table | family). Never changes
  /// results; see OracleMode.
  OracleMode oracle = OracleMode::Auto;

  /// Windowed-stats bucket width in cycles; 0 (the default) disables
  /// windowed collection. When > 0, every window of W cycles accumulates a
  /// WindowStats row (generated/delivered/latency/dependency stalls — see
  /// stats.hpp) exposed as SimResult::windows and in BENCH JSON. Pure
  /// observation: never changes simulation results, so — like engine and
  /// oracle — it is excluded from exp::point_seed hashing and allowed
  /// per-series in suites.
  std::int64_t stats_window = 0;

  /// Execution-only hook the Network polls once per step(): lets an
  /// external scheduler (the work-stealing experiment engine — see
  /// exp/experiment.hpp) grow or shrink the intra-point worker team while
  /// the point runs. The returned count is clamped to [1, intra_threads];
  /// null (the default) keeps a fixed team. Like intra_threads itself this
  /// never changes results — workers cover contiguous shard ranges between
  /// the same global phase barriers for every team size — so it is
  /// excluded from exp::point_seed hashing.
  std::function<int()> team_provider;

  /// Flit slots available to each VC.
  int buffer_per_vc() const { return buffer_per_port / num_vcs; }
};

}  // namespace slimfly::sim
