#pragma once
// Simulator configuration (paper Section V, "Performance" methodology):
// single-flit packets, Bernoulli injection, input-queued routers with
// credit-based virtual-channel flow control, internal speedup 2, 64-flit
// default buffering per port, 2-cycle credit processing, 1-cycle channel /
// allocation / crossbar stages.

#include <cstdint>

namespace slimfly::sim {

struct SimConfig {
  int num_vcs = 4;             ///< VC = hop index (Gopal); 4 covers <=4-hop paths
  int buffer_per_port = 64;    ///< total flit slots per input port (all VCs)
  int channel_latency = 1;     ///< cycles on the wire
  int router_pipeline = 2;     ///< SA + crossbar stages folded together
  int credit_delay = 2;        ///< cycles to return a credit upstream
  int alloc_iterations = 2;    ///< internal speedup
  int output_staging = 4;      ///< slots between crossbar and channel

  std::int64_t warmup_cycles = 2000;
  std::int64_t measure_cycles = 2000;
  std::int64_t drain_cycles = 30000;   ///< cap on the drain phase
  double latency_cap = 2000.0;         ///< declare saturation beyond this

  std::uint64_t seed = 1;

  /// Router-parallel stepping workers inside one simulation point: 1 (the
  /// default) steps sequentially, N > 1 shards routers over N workers with
  /// barriers between the cycle phases, 0 means "auto" (all hardware
  /// threads when a Network resolves it; the scheduling policy when an
  /// ExperimentEngine does — see exp/experiment.hpp). Results are
  /// bit-identical for every value: the knob only trades wall-clock time.
  int intra_threads = 1;

  /// Flit slots available to each VC.
  int buffer_per_vc() const { return buffer_per_port / num_vcs; }
};

}  // namespace slimfly::sim
