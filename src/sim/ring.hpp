#pragma once
// Ring-buffer deques backing every hot-path queue in the simulator.
//
// The steady-state stepping loop must never touch the allocator (see the
// "hot-path memory layout" section of docs/ARCHITECTURE.md), so the
// std::deque-based queues were replaced by:
//
//  * FixedRing<T>  — capacity chosen once (at Network::wire(), from the
//    flow-control config that already bounds the queue's occupancy);
//    overflow throws a named error because it is always a protocol
//    violation, never a sizing decision.
//  * GrowRing<T>   — amortized-doubling ring for the one genuinely
//    unbounded queue (the endpoint source queue, which must absorb offered
//    load past saturation). Below saturation it reaches a small stable
//    capacity and never allocates again.
//
// Both keep elements contiguous-in-ring with head/size indices and
// conditional (branch, not modulo) wrap-around.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace slimfly::sim {

/// Fixed-capacity FIFO. `reset(capacity)` (re)allocates storage exactly
/// once; push beyond capacity throws std::logic_error naming the ring.
template <typename T>
class FixedRing {
 public:
  FixedRing() = default;
  explicit FixedRing(std::size_t capacity) { reset(capacity); }

  /// Sizes the ring and clears it. The only allocating operation.
  void reset(std::size_t capacity) {
    slots_.assign(capacity, T{});
    head_ = 0;
    size_ = 0;
  }

  std::size_t capacity() const { return slots_.size(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= slots_.size(); }

  /* SF_HOT */ void push_back(const T& value) { push_slot() = value; }

  /// Claims the next tail slot and returns it for in-place assignment —
  /// the zero-copy variant of push_back (the hot path writes a packet
  /// straight from one ring into the next without intermediate copies).
  /* SF_HOT */ T& push_slot() {
    if (full()) {
      throw std::logic_error(
          "FixedRing: overflow at capacity " + std::to_string(slots_.size()) +
          " (the wire()-time occupancy bound was violated)");
    }
    std::size_t tail = head_ + size_;
    if (tail >= slots_.size()) tail -= slots_.size();
    ++size_;
    return slots_[tail];
  }

  /* SF_HOT */ const T& front() const {
    if (empty()) throw std::logic_error("FixedRing: front on empty ring");
    return slots_[head_];
  }

  /// Discards the front element without returning it (pairs with front()
  /// for copy-free consumption).
  /* SF_HOT */ void drop_front() {
    if (empty()) throw std::logic_error("FixedRing: pop on empty ring");
    ++head_;
    if (head_ >= slots_.size()) head_ = 0;
    --size_;
  }

  /* SF_HOT */ T pop_front() {
    if (empty()) throw std::logic_error("FixedRing: pop on empty ring");
    T value = std::move(slots_[head_]);
    ++head_;
    if (head_ >= slots_.size()) head_ = 0;
    --size_;
    return value;
  }

 private:
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Unbounded FIFO with amortized-doubling growth. Storage is allocated on
/// first use (so idle endpoints cost nothing) and only grows — a queue that
/// once held n elements never allocates again until it exceeds n.
template <typename T>
class GrowRing {
 public:
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

  // grow() below is the sanctioned amortized cold path, so push_back
  // itself must stay allocation-free.
  /* SF_HOT */ void push_back(T value) {
    if (size_ >= slots_.size()) grow();
    std::size_t tail = head_ + size_;
    if (tail >= slots_.size()) tail -= slots_.size();
    slots_[tail] = std::move(value);
    ++size_;
  }

  /* SF_HOT */ const T& front() const {
    if (empty()) throw std::logic_error("GrowRing: front on empty ring");
    return slots_[head_];
  }

  /* SF_HOT */ T pop_front() {
    if (empty()) throw std::logic_error("GrowRing: pop on empty ring");
    T value = std::move(slots_[head_]);
    ++head_;
    if (head_ >= slots_.size()) head_ = 0;
    --size_;
    return value;
  }

 private:
  void grow() {
    std::size_t next = slots_.empty() ? kInitialCapacity : slots_.size() * 2;
    std::vector<T> bigger(next);
    for (std::size_t i = 0; i < size_; ++i) {
      std::size_t at = head_ + i;
      if (at >= slots_.size()) at -= slots_.size();
      bigger[i] = std::move(slots_[at]);
    }
    slots_ = std::move(bigger);
    head_ = 0;
  }

  static constexpr std::size_t kInitialCapacity = 8;

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace slimfly::sim
