#pragma once
// Ring-buffer deques backing every hot-path queue in the simulator.
//
// The steady-state stepping loop must never touch the allocator (see the
// "hot-path memory layout" section of docs/ARCHITECTURE.md), so the
// std::deque-based queues were replaced by:
//
//  * FixedRing<T>  — capacity chosen once (at Network::wire(), from the
//    flow-control config that already bounds the queue's occupancy);
//    overflow throws a named error because it is always a protocol
//    violation, never a sizing decision.
//  * GrowRing<T>   — amortized-doubling ring for the one genuinely
//    unbounded queue (the endpoint source queue, which must absorb offered
//    load past saturation). Below saturation it reaches a small stable
//    capacity and never allocates again.
//  * LazyRing<T>   — the fleet-scale hybrid: the *logical* capacity is
//    fixed at wire() exactly like FixedRing (overflow still throws — the
//    flow-control bound is still the contract), but the *physical* slab
//    starts empty and doubles toward it as occupancy demands, drawing
//    slabs from a shared SlabPool (sim/slab.hpp). RSS then tracks what the
//    simulated traffic actually queues instead of the worst case the
//    credit loop admits — the difference between a 0.05-load point paying
//    for its occupancy and paying for its capacity. Growth settles at the
//    high-water mark (same amortized argument as GrowRing), so the
//    steady-state loop stops touching the pool, and the pool's reserve
//    float keeps even a late straggler's growth allocation-free.
//
// All keep elements contiguous-in-ring with head/size indices and
// conditional (branch, not modulo) wrap-around.

#include <cstddef>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/slab.hpp"

namespace slimfly::sim {

/// Fixed-capacity FIFO. `reset(capacity)` (re)allocates storage exactly
/// once; push beyond capacity throws std::logic_error naming the ring.
template <typename T>
class FixedRing {
 public:
  FixedRing() = default;
  explicit FixedRing(std::size_t capacity) { reset(capacity); }

  /// Sizes the ring and clears it. The only allocating operation.
  void reset(std::size_t capacity) {
    slots_.assign(capacity, T{});
    head_ = 0;
    size_ = 0;
  }

  std::size_t capacity() const { return slots_.size(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= slots_.size(); }

  /* SF_HOT */ void push_back(const T& value) { push_slot() = value; }

  /// Claims the next tail slot and returns it for in-place assignment —
  /// the zero-copy variant of push_back (the hot path writes a packet
  /// straight from one ring into the next without intermediate copies).
  /* SF_HOT */ T& push_slot() {
    if (full()) {
      throw std::logic_error(
          "FixedRing: overflow at capacity " + std::to_string(slots_.size()) +
          " (the wire()-time occupancy bound was violated)");
    }
    std::size_t tail = head_ + size_;
    if (tail >= slots_.size()) tail -= slots_.size();
    ++size_;
    return slots_[tail];
  }

  /* SF_HOT */ const T& front() const {
    if (empty()) throw std::logic_error("FixedRing: front on empty ring");
    return slots_[head_];
  }

  /// Discards the front element without returning it (pairs with front()
  /// for copy-free consumption).
  /* SF_HOT */ void drop_front() {
    if (empty()) throw std::logic_error("FixedRing: pop on empty ring");
    ++head_;
    if (head_ >= slots_.size()) head_ = 0;
    --size_;
  }

  /* SF_HOT */ T pop_front() {
    if (empty()) throw std::logic_error("FixedRing: pop on empty ring");
    T value = std::move(slots_[head_]);
    ++head_;
    if (head_ >= slots_.size()) head_ = 0;
    --size_;
    return value;
  }

 private:
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Unbounded FIFO with amortized-doubling growth. Storage is allocated on
/// first use (so idle endpoints cost nothing) and only grows — a queue that
/// once held n elements never allocates again until it exceeds n.
template <typename T>
class GrowRing {
 public:
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

  // grow() below is the sanctioned amortized cold path, so push_back
  // itself must stay allocation-free.
  /* SF_HOT */ void push_back(T value) {
    if (size_ >= slots_.size()) grow();
    std::size_t tail = head_ + size_;
    if (tail >= slots_.size()) tail -= slots_.size();
    slots_[tail] = std::move(value);
    ++size_;
  }

  /* SF_HOT */ const T& front() const {
    if (empty()) throw std::logic_error("GrowRing: front on empty ring");
    return slots_[head_];
  }

  /* SF_HOT */ T pop_front() {
    if (empty()) throw std::logic_error("GrowRing: pop on empty ring");
    T value = std::move(slots_[head_]);
    ++head_;
    if (head_ >= slots_.size()) head_ = 0;
    --size_;
    return value;
  }

 private:
  void grow() {
    std::size_t next = slots_.empty() ? kInitialCapacity : slots_.size() * 2;
    std::vector<T> bigger(next);
    for (std::size_t i = 0; i < size_; ++i) {
      std::size_t at = head_ + i;
      if (at >= slots_.size()) at -= slots_.size();
      bigger[i] = std::move(slots_[at]);
    }
    slots_ = std::move(bigger);
    head_ = 0;
  }

  static constexpr std::size_t kInitialCapacity = 8;

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Fixed *logical* capacity, lazy *physical* backing (see the header
/// comment). API-compatible with FixedRing; reset() additionally takes the
/// SlabPool growth draws from (nullptr = private heap slabs, for tests and
/// standalone use). Restricted to trivially-copyable payloads so slabs can
/// be raw pool memory and growth a flat copy.
template <typename T>
class LazyRing {
  static_assert(std::is_trivially_copyable<T>::value,
                "LazyRing slabs are raw pool memory");
  static_assert(std::is_trivially_destructible<T>::value,
                "LazyRing never runs element destructors");

 public:
  LazyRing() = default;
  explicit LazyRing(std::size_t capacity) { reset(capacity); }

  LazyRing(const LazyRing&) = delete;
  LazyRing& operator=(const LazyRing&) = delete;

  LazyRing(LazyRing&& other) noexcept { steal(other); }
  LazyRing& operator=(LazyRing&& other) noexcept {
    if (this != &other) {
      free_slab();
      steal(other);
    }
    return *this;
  }

  ~LazyRing() { free_slab(); }

  /// Sets the logical capacity and clears the ring; the physical slab (if
  /// any) goes back to the pool. The only point where the pool binding can
  /// change.
  void reset(std::size_t logical_capacity, SlabPool* pool = nullptr) {
    free_slab();
    pool_ = pool;
    logical_ = logical_capacity;
    head_ = 0;
    size_ = 0;
  }

  /// The wire()-time occupancy bound (what FixedRing::capacity() was).
  std::size_t capacity() const { return logical_; }
  /// Slots physically backed right now (<= capacity(); RSS diagnostics).
  std::size_t physical_capacity() const { return physical_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= logical_; }

  /// Materializes the first physical slab now (no-op once backed). Opt-in
  /// warm-up for allocation-guard/bench runs (via Network::
  /// reserve_measurement_stats): a ring whose first traffic lands after
  /// the settle phase then grows from its own slab instead of touching the
  /// pool, making the zero-allocation window airtight. Deliberately NOT
  /// the default — the lazy tier's whole point is that untouched rings
  /// cost nothing at fleet scale.
  void prewarm() {
    if (physical_ == 0 && logical_ > 0) grow();
  }

  /* SF_HOT */ void push_back(const T& value) { push_slot() = value; }

  /// Claims the next tail slot for in-place assignment. grow() below is
  /// the sanctioned settling-phase cold path (pool-backed, doubles toward
  /// the fixed logical capacity), so push_slot itself stays
  /// allocation-free, mirroring GrowRing::push_back.
  /* SF_HOT */ T& push_slot() {
    if (size_ >= physical_) grow();
    std::size_t tail = head_ + size_;
    if (tail >= physical_) tail -= physical_;
    ++size_;
    return slots_[tail];
  }

  /* SF_HOT */ const T& front() const {
    if (empty()) throw std::logic_error("LazyRing: front on empty ring");
    return slots_[head_];
  }

  /* SF_HOT */ void drop_front() {
    if (empty()) throw std::logic_error("LazyRing: pop on empty ring");
    ++head_;
    if (head_ >= physical_) head_ = 0;
    --size_;
  }

  /* SF_HOT */ T pop_front() {
    if (empty()) throw std::logic_error("LazyRing: pop on empty ring");
    T value = slots_[head_];
    ++head_;
    if (head_ >= physical_) head_ = 0;
    --size_;
    return value;
  }

 private:
  static constexpr std::size_t kInitialSlots = 4;

  // Cold path: called only when occupancy crosses the current physical
  // high-water mark, at most log2(capacity) times over a ring's lifetime.
  void grow() {
    if (size_ >= logical_) {
      throw std::logic_error(
          "LazyRing: overflow at capacity " + std::to_string(logical_) +
          " (the wire()-time occupancy bound was violated)");
    }
    std::size_t want = physical_ == 0 ? kInitialSlots : physical_ * 2;
    if (want > logical_) want = logical_;
    std::size_t got_bytes = SlabPool::class_bytes(want * sizeof(T));
    void* raw = pool_ ? pool_->acquire(want * sizeof(T), got_bytes)
                      : ::operator new(got_bytes);
    // Slabs are handed out round-robin, so zero them: a slot's first read
    // after a partial write must see deterministic bytes, exactly as the
    // FixedRing value-initialization guaranteed.
    std::memset(raw, 0, got_bytes);
    T* bigger = static_cast<T*>(raw);
    for (std::size_t i = 0; i < size_; ++i) {
      std::size_t at = head_ + i;
      if (at >= physical_) at -= physical_;
      bigger[i] = slots_[at];
    }
    free_slab();
    slots_ = bigger;
    slab_bytes_ = got_bytes;
    // Use everything the size class gave us, up to the logical bound.
    physical_ = got_bytes / sizeof(T);
    if (physical_ > logical_) physical_ = logical_;
    head_ = 0;
  }

  void free_slab() {
    if (!slots_) return;
    if (pool_) {
      pool_->release(slots_, slab_bytes_);
    } else {
      ::operator delete(slots_);
    }
    slots_ = nullptr;
    physical_ = 0;
    slab_bytes_ = 0;
  }

  void steal(LazyRing& other) {
    slots_ = other.slots_;
    pool_ = other.pool_;
    slab_bytes_ = other.slab_bytes_;
    logical_ = other.logical_;
    physical_ = other.physical_;
    head_ = other.head_;
    size_ = other.size_;
    other.slots_ = nullptr;
    other.physical_ = 0;
    other.slab_bytes_ = 0;
    other.head_ = 0;
    other.size_ = 0;
  }

  T* slots_ = nullptr;
  SlabPool* pool_ = nullptr;
  std::size_t slab_bytes_ = 0;
  std::size_t logical_ = 0;
  std::size_t physical_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace slimfly::sim
