#pragma once
// Fixed-latency FIFO delay line modelling wires: flit channels and credit
// return paths. Items pushed at cycle t with latency L become visible at
// t + L; FIFO order is preserved because latency is constant.

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

namespace slimfly::sim {

template <typename T>
class DelayLine {
 public:
  void push(std::int64_t ready_cycle, T item) {
    items_.emplace_back(ready_cycle, std::move(item));
  }

  /// Pops the front item if it is ready at `cycle`.
  std::optional<T> pop_ready(std::int64_t cycle) {
    if (items_.empty() || items_.front().first > cycle) return std::nullopt;
    T item = std::move(items_.front().second);
    items_.pop_front();
    return item;
  }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

 private:
  std::deque<std::pair<std::int64_t, T>> items_;
};

}  // namespace slimfly::sim
