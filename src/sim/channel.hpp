#pragma once
// Fixed-latency FIFO delay line modelling wires: flit channels and credit
// return paths. Items pushed with ready cycle t become visible at t.
//
// CONTRACT: a producer must push NON-DECREASING ready cycles (asserted in
// debug builds). The pop side only ever inspects the head, so an item
// pushed with an earlier ready than its predecessor would be stuck behind
// a not-yet-ready head and silently stall. Every current producer
// satisfies this: constant-latency pushes trivially, and the grant-time
// incoming-line pushes because per output `cycle + staged` is strictly
// increasing (see phase_allocation).
//
// Storage is a LazyRing whose *logical* capacity is set once via init()
// (Network::wire() derives it from the flow-control config, which bounds
// every line's occupancy: a flit channel holds at most latency+1 in-flight
// flits, a credit line at most alloc_iterations credits per cycle of
// credit delay) and whose physical slab grows lazily from the shared
// SlabPool as real traffic arrives — an idle line at fleet scale costs its
// header, not its worst case. Pushing past the logical capacity throws —
// it means the occupancy argument was violated, not that the line needs to
// grow.
//
// ReadyT is the stored width of the ready cycle: int64 by default, int32
// for the high-multiplicity credit/ejection event lines — the Network
// constructor already bounds the cycle horizon below 2^31 (the PR 5
// field-width precedent), so the narrow form halves a Timed<int> slot.
//
// The head's ready cycle is mirrored in the header (head_ready_): the
// arrivals phase polls every line every cycle, and the mirror keeps a
// not-ready/empty poll to a single header read instead of chasing the
// slot array.

#include <cassert>
#include <cstdint>
#include <limits>
#include <optional>
#include <utility>

#include "sim/ring.hpp"
#include "sim/slab.hpp"

namespace slimfly::sim {

template <typename T, typename ReadyT = std::int64_t>
class DelayLine {
 public:
  DelayLine() = default;
  explicit DelayLine(std::size_t capacity) { init(capacity); }

  /// Sets the line's logical capacity (and the slab pool lazy growth draws
  /// from); must be called before the first push.
  void init(std::size_t capacity, SlabPool* pool = nullptr) {
    items_.reset(capacity, pool);
    head_ready_ = kEmpty;
  }

  /* SF_HOT */ void push(std::int64_t ready_cycle, T item) {
    push_slot(ready_cycle) = std::move(item);
  }

  /// Claims the next slot for in-place assignment (zero-copy push): the
  /// caller writes the payload through the returned reference. Ready
  /// cycles must be non-decreasing per line (see the header contract).
  /* SF_HOT */ T& push_slot(std::int64_t ready_cycle) {
#ifndef NDEBUG
    assert(items_.empty() || ready_cycle >= last_push_ready_);
    last_push_ready_ = ready_cycle;
#endif
    if (items_.empty()) head_ready_ = ready_cycle;
    Timed& slot = items_.push_slot();
    slot.ready = static_cast<ReadyT>(ready_cycle);
    return slot.item;
  }

  /// Pops the front item if it is ready at `cycle`.
  /* SF_HOT */ std::optional<T> pop_ready(std::int64_t cycle) {
    if (head_ready_ > cycle) return std::nullopt;
    T item = std::move(items_.pop_front().item);
    head_ready_ = items_.empty() ? kEmpty : items_.front().ready;
    return item;
  }

  /// Copy-free variant of pop_ready: a pointer to the front payload when
  /// it is ready at `cycle` (consume with drop_front()), else nullptr.
  /* SF_HOT */ const T* front_ready(std::int64_t cycle) const {
    if (head_ready_ > cycle) return nullptr;
    return &items_.front().item;
  }

  /* SF_HOT */ void drop_front() {
    items_.drop_front();
    head_ready_ = items_.empty() ? kEmpty : items_.front().ready;
  }

  /// Backs the first slab eagerly (see LazyRing::prewarm).
  void prewarm() { items_.prewarm(); }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return items_.capacity(); }
  /// Slots physically backed right now (<= capacity(); RSS diagnostics).
  std::size_t physical_capacity() const { return items_.physical_capacity(); }

 private:
  static constexpr std::int64_t kEmpty =
      std::numeric_limits<std::int64_t>::max();

  struct Timed {
    ReadyT ready = 0;
    T item{};
  };
  LazyRing<Timed> items_;
  std::int64_t head_ready_ = kEmpty;
#ifndef NDEBUG
  std::int64_t last_push_ready_ = 0;
#endif
};

}  // namespace slimfly::sim
