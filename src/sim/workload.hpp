#pragma once
// Dependency-aware workload traces (ROADMAP item 3b/3c): per-endpoint
// message lists with `after:` reply edges, replayed self-clocked — a send
// becomes eligible only when the message it depends on has been ejected.
// Traces come from a JSON file (`trace:file=`) or are synthesized by the
// collective generator (`allreduce:ranks=,algo=`). The replay pattern is a
// TrafficPattern using the self-clocked hooks (traffic.hpp); the Network
// feeds ejections back through on_delivered between cycles, which makes the
// replay schedule independent of shard count and stepping engine.
//
// Trace file format (parsed with src/exp/json, so the usual named-error and
// depth-cap behaviour applies):
//   {
//     "trace": "reqreply",                   // optional display tag
//     "endpoints": {
//       "0": [ {"dst": 5}, {"dst": 7, "after": "5.0"} ],
//       "5": [ {"dst": 0, "after": "0.0"} ]
//     }
//   }
// Message ids are "<endpoint>.<index>" (index into that endpoint's list).
// Each endpoint's list is FIFO: message i cannot be sent before i−1.
// Validation rejects self-sends, dangling or self-referential `after:`
// edges, and any dependency cycle — including cycles that only close
// through the implicit FIFO edges.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/traffic.hpp"

namespace slimfly::sim {

/// One message of a trace: destination endpoint plus an optional
/// dependency on message `dep_idx` of endpoint `dep_src` (−1/−1 = none).
struct TraceMessage {
  int dst = -1;
  int dep_src = -1;
  std::int64_t dep_idx = -1;
};

/// A parsed, validated workload trace. Endpoint ids are sparse — only
/// endpoints with messages appear; everyone else idles.
struct WorkloadTrace {
  std::string name;  ///< display tag ("trace" when the file gives none)
  std::vector<std::pair<int, std::vector<TraceMessage>>> endpoints;
};

/// Parses and validates trace JSON. `origin` names the source in errors
/// (file path or test label). Throws invalid_argument on malformed JSON,
/// malformed endpoints/messages, dangling `after:` references, or
/// dependency cycles (each error names the offending key or message id).
WorkloadTrace parse_workload_trace(const std::string& text,
                                   const std::string& origin);

/// Reads and parses a trace file; the path resolves against the current
/// working directory. Throws invalid_argument when unreadable.
WorkloadTrace load_workload_trace(const std::string& path);

/// Synthesizes an all-reduce collective over ranks 0..ranks−1 as a
/// dependency trace (endpoints ≥ ranks idle):
///   ring — 2(R−1) phased rounds; message k of rank i goes to (i+1) mod R
///          and waits on message k−1 of rank i−1 (reduce-scatter then
///          all-gather around the ring).
///   tree — binomial reduce to rank 0 followed by binomial broadcast;
///          ranks must be a power of two.
WorkloadTrace make_allreduce_trace(int ranks, const std::string& algo);

/// Wraps a trace in a self-clocked TrafficPattern for a topology with
/// `num_endpoints` endpoints. Validates endpoint ids and destinations
/// against the topology size. `display_name` becomes pattern->name().
std::unique_ptr<TrafficPattern> make_dependency_replay(
    int num_endpoints, const WorkloadTrace& trace, std::string display_name);

}  // namespace slimfly::sim
