#include "sim/workload.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "exp/json.hpp"

namespace slimfly::sim {

namespace {

namespace json = ::slimfly::exp::json;

[[noreturn]] void fail(const std::string& where, const std::string& msg) {
  throw std::invalid_argument(where + ": " + msg);
}

/// Strict decimal parse for endpoint ids and message indices: digits only,
/// capped at 9 chars so the value always fits an int32.
long parse_decimal(const std::string& where, const std::string& text,
                   const std::string& what) {
  if (text.empty() || text.size() > 9 ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    fail(where, what + " \"" + text + "\" is not a decimal number");
  }
  return std::stol(text);
}

std::string msg_id(int endpoint, std::int64_t index) {
  return std::to_string(endpoint) + "." + std::to_string(index);
}

/// Rejects any dependency cycle over the combined graph: explicit `after:`
/// edges plus the implicit per-endpoint FIFO edges (e,i−1)→(e,i). A pure
/// Kahn pass finds whether a cycle exists; the error then walks predecessor
/// links from an unprocessed message until it revisits one, so the named
/// message is genuinely on a cycle (not merely downstream of one).
void check_acyclic(const std::string& where, const WorkloadTrace& trace,
                   const std::vector<int>& slot_of_endpoint) {
  // Flat node ids: offset[slot] + message index.
  std::vector<std::size_t> offset(trace.endpoints.size() + 1, 0);
  for (std::size_t s = 0; s < trace.endpoints.size(); ++s) {
    offset[s + 1] = offset[s] + trace.endpoints[s].second.size();
  }
  const std::size_t total = offset.back();
  auto node_of = [&](int endpoint, std::int64_t index) {
    return offset[static_cast<std::size_t>(
               slot_of_endpoint[static_cast<std::size_t>(endpoint)])] +
           static_cast<std::size_t>(index);
  };

  std::vector<int> indegree(total, 0);
  std::vector<std::vector<std::size_t>> out(total);
  for (std::size_t s = 0; s < trace.endpoints.size(); ++s) {
    const auto& [endpoint, msgs] = trace.endpoints[s];
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      const std::size_t v = offset[s] + i;
      if (i > 0) {  // FIFO edge from the previous message
        out[v - 1].push_back(v);
        ++indegree[v];
      }
      if (msgs[i].dep_src >= 0) {
        const std::size_t d = node_of(msgs[i].dep_src, msgs[i].dep_idx);
        out[d].push_back(v);
        ++indegree[v];
      }
    }
  }

  std::vector<std::size_t> ready;
  ready.reserve(total);
  for (std::size_t v = 0; v < total; ++v) {
    if (indegree[v] == 0) ready.push_back(v);
  }
  std::size_t processed = 0;
  std::vector<int> remaining = indegree;
  while (!ready.empty()) {
    const std::size_t v = ready.back();
    ready.pop_back();
    ++processed;
    for (std::size_t w : out[v]) {
      if (--remaining[w] == 0) ready.push_back(w);
    }
  }
  if (processed == total) return;

  // Name a message on the cycle: every unprocessed node has an unprocessed
  // predecessor, so walking predecessors must revisit within `total` steps.
  auto slot_index_of = [&](std::size_t v) {
    std::size_t s = 0;
    while (offset[s + 1] <= v) ++s;
    return std::make_pair(s, static_cast<std::int64_t>(v - offset[s]));
  };
  std::size_t v = 0;
  while (remaining[v] == 0) ++v;
  std::vector<char> seen(total, 0);
  while (!seen[v]) {
    seen[v] = 1;
    const auto [s, i] = slot_index_of(v);
    const auto& msgs = trace.endpoints[s].second;
    const auto& m = msgs[static_cast<std::size_t>(i)];
    if (m.dep_src >= 0 && remaining[node_of(m.dep_src, m.dep_idx)] > 0) {
      v = node_of(m.dep_src, m.dep_idx);
    } else {
      v = offset[s] + static_cast<std::size_t>(i) - 1;  // FIFO predecessor
    }
  }
  const auto [s, i] = slot_index_of(v);
  fail(where, "dependency cycle involving message " +
                  msg_id(trace.endpoints[s].first, i) +
                  " (after: edges plus per-endpoint FIFO order must form a "
                  "DAG)");
}

/// Self-clocked replay of a validated WorkloadTrace. Endpoint e's head
/// message is eligible once its `after:` dependency has been delivered and
/// its FIFO predecessor has been sent; eligibility flips only in the serial
/// between-cycles completion pass (Network::apply_completions), so the
/// replay schedule is identical for every shard count and stepping engine.
/// All state is preallocated at construction — the hot path never allocates.
class DependencyReplay final : public TrafficPattern {
 public:
  DependencyReplay(int num_endpoints, const WorkloadTrace& trace,
                   std::string display_name)
      : name_(std::move(display_name)),
        msgs_(static_cast<std::size_t>(num_endpoints)),
        cursor_(static_cast<std::size_t>(num_endpoints), 0),
        head_ready_(static_cast<std::size_t>(num_endpoints), 0),
        delivered_at_(static_cast<std::size_t>(num_endpoints)),
        dependents_(static_cast<std::size_t>(num_endpoints)) {
    const std::string where = "traffic \"" + name_ + "\"";
    for (const auto& [endpoint, list] : trace.endpoints) {
      if (endpoint < 0 || endpoint >= num_endpoints) {
        fail(where, "trace endpoint " + std::to_string(endpoint) +
                        " out of range (topology has " +
                        std::to_string(num_endpoints) + " endpoints)");
      }
      const auto e = static_cast<std::size_t>(endpoint);
      msgs_[e] = list;
      delivered_at_[e].assign(list.size(), -1);
      dependents_[e].resize(list.size());
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (list[i].dst < 0 || list[i].dst >= num_endpoints) {
          fail(where,
               "message " + msg_id(endpoint, static_cast<std::int64_t>(i)) +
                   " destination " + std::to_string(list[i].dst) +
                   " out of range (topology has " +
                   std::to_string(num_endpoints) + " endpoints)");
        }
      }
    }
    for (const auto& [endpoint, list] : trace.endpoints) {
      for (const auto& m : list) {
        if (m.dep_src >= 0) {
          auto& deps = dependents_[static_cast<std::size_t>(m.dep_src)]
                                  [static_cast<std::size_t>(m.dep_idx)];
          deps.push_back(endpoint);
          fanout_ = std::max(fanout_, deps.size());
        }
      }
    }
  }

  std::string name() const override { return name_; }
  /* SF_HOT */ int destination(int src, Rng& rng) override {
    // Self-clocked patterns generate through next_send; the Bernoulli
    // destination hook is never consulted by the engine.
    (void)src;
    (void)rng;
    return -1;
  }
  bool is_active(int src) const override {
    return !msgs_[static_cast<std::size_t>(src)].empty();
  }

  bool self_clocked() const override { return true; }

  bool pending_eligible(int src) const override {
    const auto e = static_cast<std::size_t>(src);
    const auto c = static_cast<std::size_t>(cursor_[e]);
    if (c >= msgs_[e].size()) return false;
    return dep_satisfied(msgs_[e][c]);
  }

  /* SF_HOT */ int next_send(int src, std::int64_t cycle,
                std::int64_t* dep_stall) override {
    const auto e = static_cast<std::size_t>(src);
    const auto c = static_cast<std::size_t>(cursor_[e]);
    if (c >= msgs_[e].size()) return -1;
    const TraceMessage& m = msgs_[e][c];
    if (!dep_satisfied(m)) return -1;
    if (dep_stall) {
      // The engine pops an eligible head at the first injection phase after
      // max(FIFO-ready, dependency-delivered), so cycle − head_ready_ is
      // exactly the dependency-induced wait (0 for dependency-free sends).
      *dep_stall =
          m.dep_src >= 0 ? std::max<std::int64_t>(0, cycle - head_ready_[e])
                         : 0;
    }
    ++cursor_[e];
    head_ready_[e] = cycle + 1;
    return m.dst;
  }

  /* SF_HOT */ void on_delivered(int src, std::int64_t seq, std::int64_t cycle,
                    std::vector<int>& unlocked) override {
    const auto e = static_cast<std::size_t>(src);
    if (e >= msgs_.size() || seq < 0 ||
        static_cast<std::size_t>(seq) >= msgs_[e].size()) {
      return;
    }
    delivered_at_[e][static_cast<std::size_t>(seq)] = cycle;
    for (int dep : dependents_[e][static_cast<std::size_t>(seq)]) {
      const auto d = static_cast<std::size_t>(dep);
      const auto c = static_cast<std::size_t>(cursor_[d]);
      if (c >= msgs_[d].size()) continue;
      const TraceMessage& head = msgs_[d][c];
      if (head.dep_src == src && head.dep_idx == seq) {
        unlocked.push_back(dep);  // head was blocked on exactly this message  // sf-lint: allow(hot-alloc) caller's scratch, reserved to completion_fanout() in wire()
      }
    }
  }

  std::size_t completion_fanout() const override { return fanout_; }

 private:
  bool dep_satisfied(const TraceMessage& m) const {
    return m.dep_src < 0 ||
           delivered_at_[static_cast<std::size_t>(m.dep_src)]
                        [static_cast<std::size_t>(m.dep_idx)] >= 0;
  }

  std::string name_;
  std::vector<std::vector<TraceMessage>> msgs_;
  std::vector<std::int64_t> cursor_;      ///< next message index per endpoint
  std::vector<std::int64_t> head_ready_;  ///< cycle the head became FIFO-ready
  std::vector<std::vector<std::int64_t>> delivered_at_;  ///< −1 = in flight
  std::vector<std::vector<std::vector<int>>> dependents_;
  std::size_t fanout_ = 0;
};

int log2_exact(int v) {
  int bits = 0;
  while ((1 << (bits + 1)) <= v) ++bits;
  return bits;
}

}  // namespace

WorkloadTrace parse_workload_trace(const std::string& text,
                                   const std::string& origin) {
  const std::string where =
      origin.empty() ? std::string("workload trace") : origin;
  json::Value root = json::parse(text, origin);
  if (!root.is_object()) fail(where, "expected a trace object at top level");

  WorkloadTrace out;
  out.name = "trace";
  const json::Value* endpoints = nullptr;
  for (const auto& [key, value] : root.object) {
    if (key == "trace") {
      out.name = value.as_string(where + ": trace");
    } else if (key == "endpoints") {
      endpoints = &value;
    } else {
      fail(where, "unknown key \"" + key +
                      "\" (a trace has \"trace\" and \"endpoints\")");
    }
  }
  if (!endpoints) fail(where, "missing \"endpoints\" object");
  const auto& members = endpoints->as_object(where + ": endpoints");
  if (members.empty()) {
    fail(where, "\"endpoints\" must list at least one endpoint");
  }

  // Pass 1: endpoints, destinations, and raw `after:` references (resolved
  // in pass 2 once every endpoint's list length is known).
  std::unordered_set<int> declared;
  std::vector<std::vector<std::string>> raw_after;
  for (const auto& [key, value] : members) {
    const int endpoint =
        static_cast<int>(parse_decimal(where, key, "endpoint key"));
    if (!declared.insert(endpoint).second) {
      // The JSON layer rejects textually duplicate keys; this catches
      // numerically equal spellings like "7" vs "007".
      fail(where, "endpoint " + std::to_string(endpoint) +
                      " is declared more than once");
    }
    const std::string ctx = where + ": endpoint " + std::to_string(endpoint);
    std::vector<TraceMessage> msgs;
    std::vector<std::string> afters;
    for (const auto& entry : value.as_array(ctx)) {
      const std::string mctx =
          where + ": message " +
          msg_id(endpoint, static_cast<std::int64_t>(msgs.size()));
      if (!entry.is_object()) fail(where, mctx + " must be an object");
      TraceMessage m;
      std::string after;
      for (const auto& [mkey, mval] : entry.object) {
        if (mkey == "dst") {
          const double d = mval.as_number(mctx + ": dst");
          if (d < 0 || d > 2147483647.0 || d != static_cast<int>(d)) {
            fail(where, mctx + ": dst must be a non-negative endpoint id");
          }
          m.dst = static_cast<int>(d);
        } else if (mkey == "after") {
          after = mval.as_string(mctx + ": after");
        } else {
          fail(where, mctx + ": unknown key \"" + mkey +
                          "\" (a message has \"dst\" and \"after\")");
        }
      }
      if (m.dst < 0) fail(where, mctx + " is missing \"dst\"");
      if (m.dst == endpoint) fail(where, mctx + " sends to itself");
      msgs.push_back(m);
      afters.push_back(after);
    }
    out.endpoints.emplace_back(endpoint, std::move(msgs));
    raw_after.push_back(std::move(afters));
  }

  // Pass 2: resolve `after:` references against the declared lists.
  int max_endpoint = 0;
  for (const auto& [endpoint, msgs] : out.endpoints) {
    (void)msgs;
    max_endpoint = std::max(max_endpoint, endpoint);
  }
  std::vector<int> slot_of(static_cast<std::size_t>(max_endpoint) + 1, -1);
  for (std::size_t s = 0; s < out.endpoints.size(); ++s) {
    slot_of[static_cast<std::size_t>(out.endpoints[s].first)] =
        static_cast<int>(s);
  }
  for (std::size_t s = 0; s < out.endpoints.size(); ++s) {
    auto& [endpoint, msgs] = out.endpoints[s];
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      const std::string& ref = raw_after[s][i];
      if (ref.empty()) continue;
      const std::string mctx = where + ": message " +
                               msg_id(endpoint, static_cast<std::int64_t>(i)) +
                               ": after \"" + ref + "\"";
      const auto dot = ref.find('.');
      if (dot == std::string::npos) {
        fail(where, mctx + " is not of the form \"<endpoint>.<index>\"");
      }
      const int dep_src = static_cast<int>(
          parse_decimal(mctx, ref.substr(0, dot), "endpoint"));
      const std::int64_t dep_idx =
          parse_decimal(mctx, ref.substr(dot + 1), "message index");
      if (dep_src > max_endpoint ||
          slot_of[static_cast<std::size_t>(dep_src)] < 0) {
        fail(where, mctx + " references undeclared endpoint " +
                        std::to_string(dep_src));
      }
      const auto& dep_list =
          out.endpoints[static_cast<std::size_t>(
                            slot_of[static_cast<std::size_t>(dep_src)])]
              .second;
      if (static_cast<std::size_t>(dep_idx) >= dep_list.size()) {
        fail(where, mctx + " references a message that does not exist "
                        "(endpoint " + std::to_string(dep_src) + " has " +
                        std::to_string(dep_list.size()) + " messages)");
      }
      if (dep_src == endpoint && static_cast<std::size_t>(dep_idx) == i) {
        fail(where, mctx + " depends on itself");
      }
      msgs[i].dep_src = dep_src;
      msgs[i].dep_idx = dep_idx;
    }
  }

  check_acyclic(where, out, slot_of);
  return out;
}

WorkloadTrace load_workload_trace(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) {
    throw std::invalid_argument(
        "cannot read trace file \"" + path +
        "\" (the path resolves against the working directory)");
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return parse_workload_trace(buffer.str(), path);
}

WorkloadTrace make_allreduce_trace(int ranks, const std::string& algo) {
  if (ranks < 2) {
    throw std::invalid_argument("allreduce: ranks must be >= 2");
  }
  WorkloadTrace out;
  out.name = "allreduce-" + algo;
  if (algo == "ring") {
    // Reduce-scatter then all-gather: 2(R−1) phased rounds around the ring.
    // Round k of rank i forwards to (i+1) mod R and waits for the chunk it
    // received in round k−1 from (i−1) mod R.
    const int rounds = 2 * (ranks - 1);
    for (int i = 0; i < ranks; ++i) {
      std::vector<TraceMessage> msgs;
      msgs.reserve(static_cast<std::size_t>(rounds));
      for (int k = 0; k < rounds; ++k) {
        TraceMessage m;
        m.dst = (i + 1) % ranks;
        if (k > 0) {
          m.dep_src = (i - 1 + ranks) % ranks;
          m.dep_idx = k - 1;
        }
        msgs.push_back(m);
      }
      out.endpoints.emplace_back(i, std::move(msgs));
    }
    return out;
  }
  if (algo == "tree") {
    if ((ranks & (ranks - 1)) != 0) {
      throw std::invalid_argument(
          "allreduce: algo=tree requires power-of-two ranks (got " +
          std::to_string(ranks) + ")");
    }
    // Binomial reduce to rank 0, then binomial broadcast back out. Each
    // message waits on the arrival that ends its phase (messages carry a
    // single `after:` edge; the per-endpoint FIFO serializes the rest).
    const int levels = log2_exact(ranks);
    auto ctz = [](int v) {
      int c = 0;
      while (((v >> c) & 1) == 0) ++c;
      return c;
    };
    for (int j = 0; j < ranks; ++j) {
      std::vector<TraceMessage> msgs;
      const int c = j == 0 ? levels : ctz(j);
      if (j != 0) {  // reduce: send the partial up at phase c
        TraceMessage m;
        m.dst = j - (1 << c);
        if (c > 0) {
          m.dep_src = j + (1 << (c - 1));  // last child to report
          m.dep_idx = 0;
        }
        msgs.push_back(m);
      }
      // broadcast: forward the result down at phases c−1 .. 0.
      for (int t = c - 1; t >= 0; --t) {
        TraceMessage m;
        m.dst = j + (1 << t);
        if (t == c - 1) {  // first forward waits for the result to arrive
          if (j == 0) {
            m.dep_src = ranks / 2;  // the root's last reduce arrival
            m.dep_idx = 0;
          } else {
            // Parent p = j − 2^c forwards to j as its broadcast message for
            // phase c; compute that message's index in p's list.
            const int p = j - (1 << c);
            const int pc = p == 0 ? levels : ctz(p);
            m.dep_src = p;
            m.dep_idx = (p == 0 ? 0 : 1) + (pc - 1 - c);
          }
        }
        msgs.push_back(m);
      }
      out.endpoints.emplace_back(j, std::move(msgs));
    }
    return out;
  }
  throw std::invalid_argument("allreduce: unknown algo \"" + algo +
                              "\" (ring or tree)");
}

std::unique_ptr<TrafficPattern> make_dependency_replay(
    int num_endpoints, const WorkloadTrace& trace, std::string display_name) {
  if (num_endpoints < 2) {
    throw std::invalid_argument("dependency replay: need >= 2 endpoints");
  }
  return std::make_unique<DependencyReplay>(num_endpoints, trace,
                                            std::move(display_name));
}

}  // namespace slimfly::sim
