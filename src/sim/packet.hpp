#pragma once
// Single-flit packet, following the paper's choice of one-flit packets to
// isolate routing behaviour from flow-control effects (Section V).
//
// The packet is exactly one cache line (64 bytes), trivially copyable, and
// carries its router path inline (InlinePath) rather than on the heap: the
// simulator's ring buffers relocate packets with single-line copies and
// the steady-state stepping loop never allocates. Every field is sized to
// its real range (see the static_asserts; docs/ARCHITECTURE.md, "hot-path
// memory layout"):
//   * timestamps are 32-bit cycle counts — Network rejects configs whose
//     horizon could exceed them;
//   * router ids are uint16 (an O(n^2)-distance-table simulation of more
//     than 65k routers is already infeasible);
//   * the source router is not stored: it is derivable from src_endpoint
//     (Topology::endpoint_router), and injection-time routing does so.

#include <cstdint>
#include <type_traits>

#include "sim/path.hpp"

namespace slimfly::sim {

struct Packet {
  std::int64_t id = 0;
  std::int32_t t_generated = 0;  ///< cycle the endpoint created the packet
  std::int32_t t_injected = 0;   ///< cycle the packet entered its source router
  std::int32_t src_endpoint = -1;
  std::int32_t dst_endpoint = -1;
  std::uint16_t dst_router = 0;

  /// Router path for source-routed algorithms (path[0] == source router,
  /// path.back() == dst_router). Empty for per-hop adaptive routing.
  InlinePath path;
  /// Index of the router the packet currently occupies (0 at the source).
  std::int8_t hop = 0;
  /// VC assigned to the link currently being traversed (set at switch
  /// allocation from RoutingAlgorithm::link_vc).
  std::int8_t wire_vc = 0;
  bool measured = false;         ///< generated inside the measurement window

  /// VC used on the link leaving the current router (VC = hop index).
  int next_vc() const { return hop; }
};

static_assert(std::is_trivially_copyable<Packet>::value,
              "Packet must stay trivially copyable: the hot-path ring "
              "buffers rely on allocation-free relocation");
static_assert(sizeof(Packet) == 64,
              "Packet is sized to exactly one cache line; growing it is a "
              "measurable hot-path regression — shrink something else or "
              "consciously update this assert");

}  // namespace slimfly::sim
