#pragma once
// Single-flit packet, following the paper's choice of one-flit packets to
// isolate routing behaviour from flow-control effects (Section V).

#include <cstdint>
#include <vector>

namespace slimfly::sim {

struct Packet {
  std::int64_t id = 0;
  int src_endpoint = -1;
  int dst_endpoint = -1;
  int src_router = -1;
  int dst_router = -1;

  /// Router path for source-routed algorithms (path[0] == src_router,
  /// path.back() == dst_router). Empty for per-hop adaptive routing.
  std::vector<int> path;
  /// Index of the router the packet currently occupies (0 at the source).
  int hop = 0;
  /// VC assigned to the link currently being traversed (set at switch
  /// allocation from RoutingAlgorithm::link_vc).
  int wire_vc = 0;

  std::int64_t t_generated = 0;  ///< cycle the endpoint created the packet
  std::int64_t t_injected = 0;   ///< cycle the packet entered its source router
  std::int64_t t_delivered = -1;
  bool measured = false;         ///< generated inside the measurement window

  /// VC used on the link leaving the current router (VC = hop index).
  int next_vc() const { return hop; }
};

}  // namespace slimfly::sim
