#pragma once
// Per-(input port, VC) flit buffer with a hard capacity, the unit of
// credit-based flow control.

#include <deque>

#include "sim/packet.hpp"

namespace slimfly::sim {

class VcBuffer {
 public:
  explicit VcBuffer(int capacity = 0) : capacity_(capacity) {}

  bool full() const { return static_cast<int>(packets_.size()) >= capacity_; }
  bool empty() const { return packets_.empty(); }
  int size() const { return static_cast<int>(packets_.size()); }
  int capacity() const { return capacity_; }

  /// Throws std::logic_error if the buffer is full (a credit violation —
  /// upstream must never send without a credit).
  void push(Packet packet);

  const Packet& front() const;
  Packet pop();

 private:
  std::deque<Packet> packets_;
  int capacity_;
};

}  // namespace slimfly::sim
