#pragma once
// Per-(input port, VC) flit buffer with a hard capacity, the unit of
// credit-based flow control — a LazyRing whose logical capacity is sized
// once from buffer_per_vc (so the credit contract is unchanged: push past
// it throws) and whose physical slab grows from the shared SlabPool only
// as flits actually queue, so an idle VC at fleet scale costs a ring
// header instead of a worst-case slab. Header-only: push/front/pop run
// millions of times per simulated second and must inline into the phase
// loops. (The head-of-line routing-decision cache lives in
// RouterState::route_cache, a flat per-router array, so the allocation
// gather never has to touch a buffer whose decision is already cached.)

#include <stdexcept>

#include "sim/packet.hpp"
#include "sim/ring.hpp"
#include "sim/slab.hpp"

namespace slimfly::sim {

class VcBuffer {
 public:
  explicit VcBuffer(int capacity = 0) {
    ring_.reset(static_cast<std::size_t>(capacity < 0 ? 0 : capacity));
  }

  /// Sets the logical capacity and the slab pool lazy growth draws from.
  void init(int capacity, SlabPool* pool) {
    ring_.reset(static_cast<std::size_t>(capacity < 0 ? 0 : capacity), pool);
  }

  /// Backs the first slab eagerly (see LazyRing::prewarm).
  void prewarm() { ring_.prewarm(); }

  bool full() const { return ring_.full(); }
  bool empty() const { return ring_.empty(); }
  int size() const { return static_cast<int>(ring_.size()); }
  int capacity() const { return static_cast<int>(ring_.capacity()); }

  /// Throws std::logic_error if the buffer is full (a credit violation —
  /// upstream must never send without a credit).
  /* SF_HOT */ void push(const Packet& packet) {
    if (full()) {
      throw std::logic_error("VcBuffer: overflow (credit protocol violation)");
    }
    ring_.push_back(packet);
  }

  /* SF_HOT */ const Packet& front() const {
    if (ring_.empty()) throw std::logic_error("VcBuffer: front on empty buffer");
    return ring_.front();
  }

  /* SF_HOT */ Packet pop() {
    if (ring_.empty()) throw std::logic_error("VcBuffer: pop on empty buffer");
    return ring_.pop_front();
  }

  /// Copy-free pop: discards the head (front() gives access first).
  /* SF_HOT */ void drop_front() {
    if (ring_.empty()) throw std::logic_error("VcBuffer: pop on empty buffer");
    ring_.drop_front();
  }

 private:
  LazyRing<Packet> ring_;
};

}  // namespace slimfly::sim
