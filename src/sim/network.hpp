#pragma once
// The cycle-driven network engine: input-queued routers with virtual
// channels and credit-based flow control, Bernoulli endpoint injection,
// two switch-allocation iterations per cycle (internal speedup 2), and the
// warmup / measurement / drain methodology of the paper (Section V).
//
// Port layout per router r of degree d with e = endpoints_at(r):
//   inputs  [0, d) from neighbours, [d, d+e) injection from endpoints
//   outputs [0, d) to neighbours,   [d, d+e) ejection to endpoints
// Neighbour i (in sorted adjacency order) uses port i on both sides.
//
// ---- Step phases and the thread-safety contract ----------------------------
//
// A cycle is four explicit phases with a barrier between consecutive ones.
// Routers (and the endpoints attached to them) are sharded into contiguous
// ranges; within a phase each shard touches only state it exclusively owns,
// so SimConfig::intra_threads workers step the phases in parallel and the
// result is bit-identical to sequential stepping for every worker and shard
// count (docs/ARCHITECTURE.md spells out the full argument; the ctest
// network_parallel_test enforces it).
//
//   1. arrivals      Local: router r pops the credit_return lines of its
//                    own network outputs, pops the incoming flit line
//                    stored at each of its own inputs (filled by the
//                    upstream router's allocation — see sim/router.hpp
//                    for the receiver-side placement), delivers from its
//                    own aggregated ejection line into its shard's Stats,
//                    and drains its ep_credits event line.
//                      writes: r's credits/inputs (incl. occupied_vcs
//                              masks), shard stats, ep credits.
//                      reads:  cycle_.
//   2. injection     Per endpoint of r: Bernoulli generation and uplink
//                    into r's injection buffer, drawing only from the
//                    endpoint's private RNG stream. route_at_injection
//                    (UGAL's queue comparison) reads output-queue state of
//                    arbitrary routers — legal because no output queue or
//                    credit count mutates during this phase, so any
//                    endpoint order sees identical snapshots.
//                      writes: ep state, r's injection-port buffers, packet
//                              ids/seq, shard measured_generated.
//                      reads:  any router's outputs (frozen), cycle_.
//   3. allocation    Both alloc_iterations for router r back-to-back: pops
//                    r's input buffers, spends r's output credits and
//                    staging slots, and performs two kinds of remote
//                    pushes, each with a single producer and invisible
//                    until a later cycle's arrivals: freed-slot credits
//                    onto the upstream credit_return lines feeding r
//                    (credit_delay >= 1), and granted network packets
//                    onto the downstream incoming lines (final ready time
//                    = cycle + staged occupancy + wire latency, always
//                    >= next cycle; no shard reads any incoming line
//                    during this phase). next_router() may read r's own
//                    queue estimates (FT-ANCA adaptivity) — never another
//                    router's.
//                      writes: r's inputs/credits/staged/rr/route caches/
//                              masks, ejection-port staging rings, r's
//                              ep_credits line, upstream credit_return
//                              lines (sole producer), downstream incoming
//                              lines (sole producer).
//                      reads:  r's outputs, cycle_.
//   4. transmission  Advances r's staging counters (one flit per output
//                    per cycle; network packets already sit in the
//                    downstream incoming line) and moves ejection staging
//                    heads onto r's own aggregated ejection line.
//                      writes: r's staged counters/staging_nonempty masks,
//                              ejection staging rings, ejection line.
//                      reads:  cycle_.
//
// Serial between cycles: ++cycle_, the run() loop checks, and — for
// self-clocked traffic — apply_completions(): deliveries recorded by each
// shard during arrivals are fed back into the traffic pattern's dependency
// state here, even when shards_ == 1, so a message delivered at cycle T
// unlocks its dependents for injection at T+1 regardless of shard count or
// stepping engine. Anything not listed as writable in a phase must not be
// written there; widening a phase's write set requires re-auditing every
// cross-shard read above.
//
// ---- Workload layer --------------------------------------------------------
//
// TrafficPattern's workload hooks (traffic.hpp) plug in here:
//   * rate modulation (burst:) — the injection phase asks the pattern for a
//     per-endpoint multiplier each cycle; a zero multiplier consumes NO
//     Bernoulli draw, which keeps the cycle engine (querying every cycle)
//     and the active engine (querying inside plan_arrival_from's batched
//     loop) bit-identical. The unmodulated path is byte-for-byte the
//     pre-workload code (the flag is cached at construction).
//   * self-clocked replay (trace:/allreduce:) — injection pops eligible
//     sends from the pattern instead of drawing coins; deliveries flow back
//     through per-shard completion outboxes (drained serially, above), and
//     the active engine treats an endpoint with an eligible head as busy
//     and wakes the routers of endpoints a delivery unlocks.
//   * windowed stats (SimConfig::stats_window) — per-shard WindowStats rows
//     (preallocated; merged by elementwise sums) giving the time-resolved
//     generated/delivered/latency/dependency-stall view.
//
// ---- Stepping engines ------------------------------------------------------
//
// SimConfig::engine selects how the four phases are scheduled; results are
// bit-identical either way (golden_test + engine_test enforce it):
//
//   cycle   Every router runs every phase every cycle (the loop above).
//   active  Each shard keeps (a) a busy bitmask over its routers — busy iff
//           any input VC is occupied, any staging counter is nonzero, or an
//           attached endpoint's source queue is nonempty — and (b) a
//           min-heap of future wake times fed by every event with a known
//           maturity cycle: granted flits (downstream incoming-line ready),
//           returning credits (upstream credit_return ready — keeps UGAL's
//           remote queue_estimate reads exact on sleeping routers),
//           ejection-line readies, endpoint uplink credits, and injector
//           next-arrival cycles (precomputed: the Bernoulli draws a sleeping
//           endpoint would have made are batched at plan time, the
//           destination/routing draws stay at the materialize cycle, so
//           every stream consumes values in exactly the cycle-engine
//           order). A step() runs the phases only over busy|woken routers;
//           run() fast-forwards cycle_ to the earliest heap entry when
//           every shard is idle. step() itself always advances exactly one
//           cycle, so step-level instrumentation sees identical state.
//
// Stepping a quiet router is always a no-op, so spurious wakes are safe;
// only a *missed* wake could break equivalence — which is why every remote
// push above doubles as a wake-event source under the active engine.

#include <algorithm>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/config.hpp"
#include "sim/injector.hpp"
#include "sim/router.hpp"
#include "sim/slab.hpp"
#include "sim/span.hpp"
#include "sim/routing/routing.hpp"
#include "sim/stats.hpp"
#include "sim/traffic.hpp"
#include "topo/topology.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace slimfly::sim {

class Network {
 public:
  /// All references must outlive the Network.
  Network(const Topology& topo, RoutingAlgorithm& routing,
          TrafficPattern& traffic, const SimConfig& config, double offered_load);

  /// Advances one cycle (all four phases, sharded when intra_threads > 1).
  void step();

  /// Runs warmup + measurement + drain and returns the summary.
  SimResult run();

  std::int64_t cycle() const { return cycle_; }
  /// Cycles whose phases actually executed; cycle() - cycles_stepped() is
  /// the fast-forwarded count (always 0 for the cycle engine).
  std::int64_t cycles_stepped() const { return cycles_stepped_; }
  /// Aggregated measurement view (per-shard accumulators merged on demand).
  const Stats& stats() const;

  // ---- Introspection used by routing algorithms -------------------------
  const Topology& topology() const { return topo_; }
  /// Largest router count for which wire() builds the dense neighbor->port
  /// table (2048^2 x int16 = 8 MB per Network; every paper-scale config is
  /// well below it). Larger networks fall back to the O(log degree) binary
  /// search so per-point memory stays near-linear.
  static constexpr int kDenseNeighborPortLimit = 2048;

  /// Output port index on `router` leading to `neighbor`. O(1) for
  /// networks up to kDenseNeighborPortLimit routers via a dense
  /// router x router -> port table (int16, -1 = not adjacent), replacing
  /// the per-call binary search the allocation loop and UGAL's path
  /// costing used to pay; O(log degree) beyond. Out-of-range ids throw
  /// the same named error as a non-adjacent pair (never an out-of-bounds
  /// read).
  /* SF_HOT */ int port_of_neighbor(int router, int neighbor) const {
    if (static_cast<unsigned>(router) >= static_cast<unsigned>(num_routers_) ||
        static_cast<unsigned>(neighbor) >= static_cast<unsigned>(num_routers_)) {
      throw_not_adjacent(router, neighbor);
    }
    if (!neighbor_port_.empty()) {
      int port = neighbor_port_[static_cast<std::size_t>(router) *
                                    static_cast<std::size_t>(num_routers_) +
                                static_cast<std::size_t>(neighbor)];
      if (port < 0) throw_not_adjacent(router, neighbor);
      return port;
    }
    return port_of_neighbor_sparse(router, neighbor);
  }
  /// Congestion estimate for an output port: staging occupancy plus
  /// credits consumed downstream.
  /* SF_HOT */ int queue_estimate(int router, int port) const {
    return routers_[static_cast<std::size_t>(router)].queue_estimate(port);
  }

  // ---- Deterministic RNG streams ----------------------------------------
  // One stream per endpoint (drives generation/routing draws during the
  // injection phase) and one per router (reserved for allocation-phase
  // randomness in per-hop adaptive algorithms; every shipped algorithm is
  // deterministic there today). Streams are seeded from hash(seed, id), so
  // no draw ever depends on thread schedule or shard count. Contract: a
  // stream may only be drawn from by the shard owning its endpoint/router,
  // and only in the phase named above.
  /* SF_HOT */ Rng& endpoint_rng(int e) { return injector_.rng(e); }
  /* SF_HOT */ Rng& router_rng(int r) { return router_rngs_[static_cast<std::size_t>(r)]; }

  /// Resolved intra-point worker count (>= 1, capped by router count).
  /// This is the SHARD count — the unit of state ownership, fixed at
  /// wire() so results never depend on how many workers execute them.
  std::size_t intra_threads() const { return shards_; }

  /// Workers currently executing the shards (team size, <= shards_).
  std::size_t team() const { return team_; }

  /// Execution-only scheduling hook for the work-stealing experiment
  /// scheduler: polled once per step (serial, between cycles); the return
  /// value is clamped to [1, intra_threads()] and sets how many workers
  /// step the fixed shard set this cycle. Workers always cover contiguous
  /// shard ranges phase-by-phase between the same global barriers, so the
  /// trajectory is bit-identical for every team size — the provider can
  /// never affect results, only wall-clock.
  void set_team_provider(std::function<int()> provider) {
    team_provider_ = std::move(provider);
  }

  /// Total flits currently buffered in the network (test/debug hook).
  std::int64_t flits_in_flight() const;
  /// Endpoints that can generate traffic under the pattern.
  int active_endpoints() const { return active_endpoints_; }
  /// Crossbar traversals granted so far (one per packet per router) — the
  /// hot path's unit of work, reported by bench/hotpath as flit-hops/s.
  std::int64_t flit_hops() const;

  /// Pre-reserves the per-shard latency pools for the full measurement
  /// window (active endpoints x measure_cycles samples). Opt-in hook for
  /// the allocation-guard test and bench/hotpath: it makes the measurement
  /// phase allocation-free at the cost of an upper-bound reservation,
  /// which would be wasteful as a default at paper scale and low load.
  void reserve_measurement_stats();

 private:
  void wire();
  [[noreturn]] void throw_not_adjacent(int router, int neighbor) const;
  /// Binary search over the sorted adjacency list (networks too large for
  /// the dense table).
  int port_of_neighbor_sparse(int router, int neighbor) const;
  /// One worker's slice of a cycle: its contiguous shard sub-range through
  /// all four phases, with the global barrier between phases (a worker
  /// finishes phase k for ALL its shards before any worker enters k+1 —
  /// required because allocation writes remote lines that later phases
  /// read). With team_ == shards_ this is exactly the old one-shard body.
  void step_worker(std::size_t worker);
  /// Shard sub-range [first, second) owned by `worker` this cycle.
  std::pair<std::size_t, std::size_t> worker_shards(std::size_t worker) const {
    return {worker * shards_ / team_, (worker + 1) * shards_ / team_};
  }
  /// Applies the team provider's verdict (clamped to [1, shards_]); tears
  /// down the pool/barrier on change so step() recreates them at the new
  /// party count. Rare by design: the stealing scheduler only grows teams.
  void resize_team(int want);
  void sync();  ///< barrier between phases; no-op when sequential
  void phase_arrivals(std::size_t shard);
  void phase_injection(std::size_t shard);
  void phase_allocation(std::size_t shard);
  void phase_transmission(std::size_t shard);
  /// Per-router phase bodies shared by both stepping engines.
  void arrivals_router(std::size_t shard, int r);
  void transmission_router(std::size_t shard, int r);
  void injection_router(std::size_t shard, int r, bool in_measurement);
  /// One router's allocator (both internal-speedup iterations).
  void allocate_router(std::size_t shard, int r);
  void deliver(std::size_t shard, const Packet& pkt);
  bool all_measured_delivered() const;  ///< cheap per-cycle drain check
  std::int64_t delivered_in_window() const;

  // ---- workload layer ----------------------------------------------------
  /// Creates one packet from endpoint e to dst at cycle_ — the single
  /// generation body shared by both engines and both injection modes
  /// (Bernoulli and self-clocked); `dep_stall` feeds the windowed
  /// dependency-stall counters.
  void generate_packet(std::size_t shard, int e, int dst, bool in_measurement,
                       std::int64_t dep_stall);
  /// Injection decision for a rate-modulated pattern at the current cycle
  /// (multiplier query + at most one Bernoulli draw; zero multiplier draws
  /// nothing). Shared verbatim by the cycle loop, the active backlog draw,
  /// and plan_arrival_from's batched draws.
  /* SF_HOT */ bool modulated_hit(int e, std::int64_t t, Rng& rng) {
    const double m = traffic_.rate_multiplier(e, t);
    return m > 0.0 && rng.bernoulli(std::min(1.0, load_ * m));
  }
  /// Drains the per-shard completion outboxes into the traffic pattern
  /// (serially, between cycles) and wakes unlocked endpoints' routers.
  void apply_completions();
  /* SF_HOT */ std::size_t window_index(std::int64_t cycle, std::size_t count) const {
    const auto idx = static_cast<std::size_t>(cycle / stats_window_);
    return idx < count ? idx : count - 1;
  }

  // ---- active engine (config_.engine == StepEngine::Active) -------------
  void init_active();
  /// Ensures `router` is stepped at cycle `at`. Own-shard events go
  /// straight into the producing shard's heap (single writer during
  /// phases); cross-shard events land in the producer's outbox, merged
  /// serially by step() after the parallel region.
  void schedule_wake(std::size_t shard, int router, std::int64_t at);
  void drain_wake_outboxes();
  /// Pops every due heap event and merges with the busy mask into the
  /// shard's index-ordered active router list.
  void build_active_list(std::size_t shard);
  /// Recomputes busy bits for the routers this shard just stepped.
  void update_busy(std::size_t shard);
  bool router_is_busy(int r) const;
  void active_phase_arrivals(std::size_t shard);
  void active_phase_injection(std::size_t shard);
  void active_phase_allocation(std::size_t shard);
  void active_phase_transmission(std::size_t shard);
  void active_injection_router(std::size_t shard, int r, bool in_measurement);
  /// Batches the endpoint's Bernoulli draws for cycles >= `from` until the
  /// first hit, records it in EndpointState::next_arrival, and schedules
  /// the wake. Draws past the run's absolute end are capped (unobservable).
  void plan_arrival_from(std::size_t shard, int r, int e, std::int64_t from);
  /// When every shard is idle, jumps cycle_ to the earliest future wake
  /// (clamped to `bound`). run()-only: step() always advances one cycle.
  void fast_forward(std::int64_t bound);

  const Topology& topo_;
  RoutingAlgorithm& routing_;
  TrafficPattern& traffic_;
  SimConfig config_;
  double load_;

  // Declared before every ring-holding member: LazyRing slabs release into
  // the pool at destruction, so the pool must be destroyed last.
  SlabPool slab_pool_;

  // ---- SoA arenas (docs/ARCHITECTURE.md, "hot-path memory layout") ------
  // One capacity-exact allocation per state family for the whole fleet,
  // sized by a counting pass in wire(); every Span member of RouterState /
  // InputPort / OutputPort points into these. Never resized after wire().
  std::vector<InputPort> input_arena_;
  std::vector<OutputPort> output_arena_;
  std::vector<VcBuffer> vc_arena_;        ///< num_vcs per network input, 1 per injection input
  std::vector<int> credit_arena_;         ///< num_vcs per output port
  std::vector<std::uint64_t> mask_arena_; ///< vc_occupied + staging_nonempty words
  std::vector<RouteDecision> route_arena_;

  std::vector<RouterState> routers_;
  Injector injector_;
  std::vector<Rng> router_rngs_;
  std::int64_t cycle_ = 0;
  int active_endpoints_ = 0;
  int num_routers_ = 0;
  /// Dense neighbor->port table: neighbor_port_[r * num_routers_ + n] is
  /// the output port of r toward n, or -1 when not adjacent.
  std::vector<std::int16_t> neighbor_port_;
  /// Routing declared its head-of-line decision a pure function of the
  /// packet, enabling the per-VC decision cache (see phase_allocation).
  bool routing_cacheable_ = false;
  /// Routing keeps the default next_router/link_vc: decisions are computed
  /// inline from pkt.path with no virtual dispatch.
  bool routing_follows_path_ = false;

  // ---- sharding ---------------------------------------------------------
  // Shard s owns routers [shard_ranges_[s].first, .second) and their
  // endpoints. All counters below are per-shard so phases never contend on
  // a shared accumulator; merging is order-independent (integer sums and
  // a latency pool consumed only via sort/sum/max), hence bit-identical
  // results for any shard count.
  struct ShardTotals {
    Stats stats;
    std::int64_t measured_generated = 0;
    std::int64_t delivered_in_window = 0;
    std::int64_t flit_hops = 0;  ///< crossbar grants in this shard
    /// Windowed rows (stats_window > 0 only), preallocated for the whole
    /// run; merged into SimResult::windows by elementwise sums.
    std::vector<WindowStats> windows;
  };
  std::size_t shards_ = 1;
  /// Workers executing the shards this cycle (team size). Shards are the
  /// ownership unit and never change after wire(); the team is pure
  /// execution and may change between cycles (work-stealing scheduler).
  std::size_t team_ = 1;
  std::function<int()> team_provider_;  ///< see set_team_provider()
  std::vector<std::pair<int, int>> shard_ranges_;
  std::vector<ShardTotals> shard_totals_;
  std::vector<std::exception_ptr> shard_errors_;
  std::unique_ptr<ThreadPool> pool_;   ///< team_-1 dedicated workers
  std::unique_ptr<Barrier> barrier_;   ///< team_ parties, one per phase gap
  mutable Stats merged_stats_;
  mutable bool stats_dirty_ = true;

  // Persistent per-shard allocation scratch, sized once at wire() for the
  // widest router in the shard's range (so the per-cycle allocation loop
  // reuses flat storage instead of rebuilding nested vectors):
  //   heads   — one head-of-line request per non-empty (input port, VC)
  //   sorted  — the same requests counting-sorted by output port (stable,
  //             so each output sees its candidates in (port, VC) order —
  //             identical to the old per-output bucket push_back order)
  //   offsets — per-output [begin, end) ranges into `sorted`
  //   granted — per-input-port grant flag for the 1-grant-per-input rule
  struct Request {
    int input_port;
    int vc;
    int output_port;
    int vc_link;
  };
  struct AllocScratch {
    std::vector<Request> heads;
    std::vector<Request> sorted;
    std::vector<int> offsets;
    std::vector<std::uint8_t> granted;
  };
  std::vector<AllocScratch> alloc_scratch_;  // [shard]

  // ---- active-engine state (sized once by init_active; the steady-state
  // loop pushes/pops within the reserved capacities and never allocates) --
  bool engine_active_ = false;
  std::int64_t cycles_stepped_ = 0;
  std::vector<std::uint16_t> shard_of_router_;
  /// Per-shard min-heap (std::push_heap/pop_heap with std::greater) of
  /// packed (cycle << 16) | router events. Router ids fit 16 bits (the
  /// constructor enforces <= 65536 routers), cycles fit 31 (ditto).
  std::vector<std::vector<std::int64_t>> wake_heaps_;
  /// Cross-shard wake events, indexed by the *producing* shard.
  std::vector<std::vector<std::int64_t>> wake_outbox_;
  /// Busy/woken bitmasks over shard-LOCAL router indices (local indexing
  /// keeps shard-boundary routers out of shared words).
  std::vector<std::vector<std::uint64_t>> busy_;
  std::vector<std::vector<std::uint64_t>> woken_;
  std::vector<std::vector<int>> active_list_;  // [shard] global router ids

  // ---- workload-layer state (sized once at construction; the steady-state
  // loop stays allocation-free) -------------------------------------------
  bool traffic_modulated_ = false;    ///< cached traffic_.modulates_rate()
  bool traffic_self_clocked_ = false; ///< cached traffic_.self_clocked()
  std::int64_t stats_window_ = 0;     ///< cached config_.stats_window
  /// Per-shard delivered-message records, packed (src << 32) | seq; filled
  /// by deliver() during arrivals (shard-owned), drained serially by
  /// apply_completions(). Reserved to the shard's ejection-line capacity.
  std::vector<std::vector<std::int64_t>> completion_outbox_;
  /// Scratch for TrafficPattern::on_delivered, reserved to
  /// completion_fanout(). Touched only in the serial completion pass.
  std::vector<int> unlocked_scratch_;

  /// Head-of-line decision for `pkt` at router r: the output port
  /// (network or ejection) and the VC on the outgoing link. Inlines the
  /// default follow-the-path protocol when the routing declared it.
  RouteDecision head_decision(const RouterState& router, int r,
                              const Packet& pkt) const;
};

}  // namespace slimfly::sim
