#pragma once
// The cycle-driven network engine: input-queued routers with virtual
// channels and credit-based flow control, Bernoulli endpoint injection,
// two switch-allocation iterations per cycle (internal speedup 2), and the
// warmup / measurement / drain methodology of the paper (Section V).
//
// Port layout per router r of degree d with e = endpoints_at(r):
//   inputs  [0, d) from neighbours, [d, d+e) injection from endpoints
//   outputs [0, d) to neighbours,   [d, d+e) ejection to endpoints
// Neighbour i (in sorted adjacency order) uses port i on both sides.
//
// ---- Step phases and the thread-safety contract ----------------------------
//
// A cycle is four explicit phases with a barrier between consecutive ones.
// Routers (and the endpoints attached to them) are sharded into contiguous
// ranges; within a phase each shard touches only state it exclusively owns,
// so SimConfig::intra_threads workers step the phases in parallel and the
// result is bit-identical to sequential stepping for every worker and shard
// count (docs/ARCHITECTURE.md spells out the full argument; the ctest
// network_parallel_test enforces it).
//
//   1. arrivals      Pull-based: router r pops the credit_return lines of
//                    its own outputs, pops the one upstream channel feeding
//                    each of its inputs (single consumer per channel, see
//                    sim/router.hpp), delivers from its own ejection
//                    channels into its shard's Stats, and pops uplink
//                    credits for its endpoints.
//                      writes: r's credits/inputs, upstream channel deques
//                              (sole consumer), shard stats, ep credits.
//                      reads:  cycle_.
//   2. injection     Per endpoint of r: Bernoulli generation and uplink
//                    into r's injection buffer, drawing only from the
//                    endpoint's private RNG stream. route_at_injection
//                    (UGAL's queue comparison) reads output-queue state of
//                    arbitrary routers — legal because no output queue or
//                    credit count mutates during this phase, so any
//                    endpoint order sees identical snapshots.
//                      writes: ep state, r's injection-port buffers, packet
//                              ids/seq, shard measured_generated.
//                      reads:  any router's outputs (frozen), cycle_.
//   3. allocation    Both alloc_iterations for router r back-to-back: pops
//                    r's input buffers, spends r's output credits, fills
//                    r's staging, and pushes freed-slot credits onto the
//                    upstream credit_return lines feeding r (single
//                    producer per line) with credit_delay >= 1, so nothing
//                    pushed here is visible before the next cycle's
//                    arrivals. next_router() may read r's own queue
//                    estimates (FT-ANCA adaptivity) — never another
//                    router's.
//                      writes: r's inputs/credits/staging/rr, upstream
//                              credit_return lines (sole producer),
//                              endpoint credit_return lines.
//                      reads:  r's outputs, cycle_.
//   4. transmission  Head of each of r's staging queues onto its own
//                    channel.
//                      writes: r's staging/channels.  reads: cycle_.
//
// Serial between cycles: ++cycle_ and the run() loop checks. Anything not
// listed as writable in a phase must not be written there; widening a
// phase's write set requires re-auditing every cross-shard read above.

#include <exception>
#include <memory>
#include <utility>
#include <vector>

#include "sim/config.hpp"
#include "sim/injector.hpp"
#include "sim/router.hpp"
#include "sim/routing/routing.hpp"
#include "sim/stats.hpp"
#include "sim/traffic.hpp"
#include "topo/topology.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace slimfly::sim {

class Network {
 public:
  /// All references must outlive the Network.
  Network(const Topology& topo, RoutingAlgorithm& routing,
          TrafficPattern& traffic, const SimConfig& config, double offered_load);

  /// Advances one cycle (all four phases, sharded when intra_threads > 1).
  void step();

  /// Runs warmup + measurement + drain and returns the summary.
  SimResult run();

  std::int64_t cycle() const { return cycle_; }
  /// Aggregated measurement view (per-shard accumulators merged on demand).
  const Stats& stats() const;

  // ---- Introspection used by routing algorithms -------------------------
  const Topology& topology() const { return topo_; }
  /// Output port index on `router` leading to `neighbor`.
  int port_of_neighbor(int router, int neighbor) const;
  /// Congestion estimate for an output port: staging occupancy plus
  /// credits consumed downstream.
  int queue_estimate(int router, int port) const {
    return routers_[static_cast<std::size_t>(router)].queue_estimate(port);
  }

  // ---- Deterministic RNG streams ----------------------------------------
  // One stream per endpoint (drives generation/routing draws during the
  // injection phase) and one per router (reserved for allocation-phase
  // randomness in per-hop adaptive algorithms; every shipped algorithm is
  // deterministic there today). Streams are seeded from hash(seed, id), so
  // no draw ever depends on thread schedule or shard count. Contract: a
  // stream may only be drawn from by the shard owning its endpoint/router,
  // and only in the phase named above.
  Rng& endpoint_rng(int e) { return injector_.endpoint(e).rng; }
  Rng& router_rng(int r) { return router_rngs_[static_cast<std::size_t>(r)]; }

  /// Resolved intra-point worker count (>= 1, capped by router count).
  std::size_t intra_threads() const { return shards_; }

  /// Total flits currently buffered in the network (test/debug hook).
  std::int64_t flits_in_flight() const;
  /// Endpoints that can generate traffic under the pattern.
  int active_endpoints() const { return active_endpoints_; }

 private:
  void wire();
  void step_shard(std::size_t shard);
  void sync();  ///< barrier between phases; no-op when sequential
  void phase_arrivals(std::size_t shard);
  void phase_injection(std::size_t shard);
  void phase_allocation(std::size_t shard);
  void phase_transmission(std::size_t shard);
  void deliver(std::size_t shard, Packet pkt);
  bool all_measured_delivered() const;  ///< cheap per-cycle drain check
  std::int64_t delivered_in_window() const;

  const Topology& topo_;
  RoutingAlgorithm& routing_;
  TrafficPattern& traffic_;
  SimConfig config_;
  double load_;

  std::vector<RouterState> routers_;
  Injector injector_;
  std::vector<Rng> router_rngs_;
  std::int64_t cycle_ = 0;
  int active_endpoints_ = 0;

  // ---- sharding ---------------------------------------------------------
  // Shard s owns routers [shard_ranges_[s].first, .second) and their
  // endpoints. All counters below are per-shard so phases never contend on
  // a shared accumulator; merging is order-independent (integer sums and
  // a latency pool consumed only via sort/sum/max), hence bit-identical
  // results for any shard count.
  struct ShardTotals {
    Stats stats;
    std::int64_t measured_generated = 0;
    std::int64_t delivered_in_window = 0;
  };
  std::size_t shards_ = 1;
  std::vector<std::pair<int, int>> shard_ranges_;
  std::vector<ShardTotals> shard_totals_;
  std::vector<std::exception_ptr> shard_errors_;
  std::unique_ptr<ThreadPool> pool_;   ///< shards_-1 dedicated workers
  std::unique_ptr<Barrier> barrier_;   ///< shards_ parties, one per phase gap
  mutable Stats merged_stats_;
  mutable bool stats_dirty_ = true;

  // Scratch request lists rebuilt each allocation iteration:
  // per router, per output port, candidate (input port, vc) pairs.
  struct Request {
    int input_port;
    int vc;
    int output_port;
    int vc_link;
  };
  std::vector<std::vector<std::vector<Request>>> requests_;  // [router][output]
};

}  // namespace slimfly::sim
