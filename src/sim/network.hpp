#pragma once
// The cycle-driven network engine: input-queued routers with virtual
// channels and credit-based flow control, Bernoulli endpoint injection,
// two switch-allocation iterations per cycle (internal speedup 2), and the
// warmup / measurement / drain methodology of the paper (Section V).
//
// Port layout per router r of degree d with e = endpoints_at(r):
//   inputs  [0, d) from neighbours, [d, d+e) injection from endpoints
//   outputs [0, d) to neighbours,   [d, d+e) ejection to endpoints
// Neighbour i (in sorted adjacency order) uses port i on both sides.

#include <memory>
#include <vector>

#include "sim/config.hpp"
#include "sim/injector.hpp"
#include "sim/router.hpp"
#include "sim/routing/routing.hpp"
#include "sim/stats.hpp"
#include "sim/traffic.hpp"
#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace slimfly::sim {

class Network {
 public:
  /// All references must outlive the Network.
  Network(const Topology& topo, RoutingAlgorithm& routing,
          TrafficPattern& traffic, const SimConfig& config, double offered_load);

  /// Advances one cycle.
  void step();

  /// Runs warmup + measurement + drain and returns the summary.
  SimResult run();

  std::int64_t cycle() const { return cycle_; }
  const Stats& stats() const { return stats_; }

  // ---- Introspection used by routing algorithms -------------------------
  const Topology& topology() const { return topo_; }
  /// Output port index on `router` leading to `neighbor`.
  int port_of_neighbor(int router, int neighbor) const;
  /// Congestion estimate for an output port: staging occupancy plus
  /// credits consumed downstream.
  int queue_estimate(int router, int port) const {
    return routers_[static_cast<std::size_t>(router)].queue_estimate(port);
  }
  Rng& rng() { return rng_; }

  /// Total flits currently buffered in the network (test/debug hook).
  std::int64_t flits_in_flight() const;
  /// Endpoints that can generate traffic under the pattern.
  int active_endpoints() const { return active_endpoints_; }

 private:
  void wire();
  void do_arrivals();
  void do_injection();
  void do_allocation();
  void do_transmission();
  void deliver(Packet pkt);

  const Topology& topo_;
  RoutingAlgorithm& routing_;
  TrafficPattern& traffic_;
  SimConfig config_;
  double load_;

  std::vector<RouterState> routers_;
  Injector injector_;
  Stats stats_;
  Rng rng_;
  std::int64_t cycle_ = 0;
  std::int64_t next_packet_id_ = 0;
  std::int64_t measured_generated_ = 0;
  std::int64_t delivered_in_window_ = 0;
  int active_endpoints_ = 0;

  // Scratch request lists rebuilt each allocation iteration:
  // per router, per output port, candidate (input port, vc) pairs.
  struct Request {
    int input_port;
    int vc;
    int output_port;
    int vc_link;
  };
  std::vector<std::vector<std::vector<Request>>> requests_;  // [router][output]
};

}  // namespace slimfly::sim
