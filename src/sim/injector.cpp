#include "sim/injector.hpp"

namespace slimfly::sim {

namespace {
// Distinguishes endpoint streams from the router streams seeded in
// Network::wire() under the same base seed.
constexpr std::uint64_t kEndpointStreamTag = 0x9d5c7f2b;
}  // namespace

void Injector::init(int num_endpoints, int initial_credits,
                    std::uint64_t seed) {
  const auto n = static_cast<std::size_t>(num_endpoints);
  source_queue_.clear();
  source_queue_.resize(n);
  credits_.assign(n, initial_credits);
  rng_.assign(n, Rng{});
  next_seq_.assign(n, 0);
  next_arrival_.assign(n, -1);
  for (int e = 0; e < num_endpoints; ++e) {
    rng_[static_cast<std::size_t>(e)] =
        rng_stream(seed, kEndpointStreamTag, static_cast<std::uint64_t>(e));
  }
}

std::int64_t Injector::backlog() const {
  std::int64_t total = 0;
  for (const auto& q : source_queue_) {
    total += static_cast<std::int64_t>(q.size());
  }
  return total;
}

}  // namespace slimfly::sim
