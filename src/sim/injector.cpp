#include "sim/injector.hpp"

namespace slimfly::sim {

void Injector::init(int num_endpoints, int initial_credits) {
  endpoints_.assign(static_cast<std::size_t>(num_endpoints), EndpointState{});
  for (auto& ep : endpoints_) ep.credits = initial_credits;
}

std::int64_t Injector::backlog() const {
  std::int64_t total = 0;
  for (const auto& ep : endpoints_) {
    total += static_cast<std::int64_t>(ep.source_queue.size());
  }
  return total;
}

}  // namespace slimfly::sim
