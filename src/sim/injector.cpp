#include "sim/injector.hpp"

namespace slimfly::sim {

namespace {
// Distinguishes endpoint streams from the router streams seeded in
// Network::wire() under the same base seed.
constexpr std::uint64_t kEndpointStreamTag = 0x9d5c7f2b;
}  // namespace

void Injector::init(int num_endpoints, int initial_credits,
                    std::uint64_t seed) {
  endpoints_.assign(static_cast<std::size_t>(num_endpoints), EndpointState{});
  for (int e = 0; e < num_endpoints; ++e) {
    EndpointState& ep = endpoints_[static_cast<std::size_t>(e)];
    ep.credits = initial_credits;
    ep.rng = rng_stream(seed, kEndpointStreamTag,
                        static_cast<std::uint64_t>(e));
  }
}

std::int64_t Injector::backlog() const {
  std::int64_t total = 0;
  for (const auto& ep : endpoints_) {
    total += static_cast<std::int64_t>(ep.source_queue.size());
  }
  return total;
}

}  // namespace slimfly::sim
