#include "sim/traffic.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <stdexcept>

#include "analysis/metrics.hpp"
#include "sim/workload.hpp"
#include "topo/registry.hpp"

namespace slimfly::sim {

namespace {

class UniformTraffic final : public TrafficPattern {
 public:
  explicit UniformTraffic(int n) : n_(n) {}
  std::string name() const override { return "uniform"; }
  /* SF_HOT */ int destination(int src, Rng& rng) override {
    int dst = rng.next_int(0, n_ - 2);
    return dst >= src ? dst + 1 : dst;  // uniform over all others
  }

 private:
  int n_;
};

/// Base for the power-of-two bit permutations: endpoints >= 2^b are idle.
class BitPermutation : public TrafficPattern {
 public:
  explicit BitPermutation(int n) {
    if (n < 2) throw std::invalid_argument("BitPermutation: need >= 2 endpoints");
    bits_ = 0;
    while ((2 << bits_) <= n) ++bits_;  // largest 2^bits_ <= n
    active_ = 1 << bits_;
  }
  /* SF_HOT */ int destination(int src, Rng& rng) override {
    (void)rng;
    if (src >= active_) return -1;
    int dst = permute(src);
    return dst == src ? -1 : dst;  // self-sends would be no-ops
  }
  bool is_active(int src) const override {
    return src < active_ && permute(src) != src;
  }

 protected:
  virtual int permute(int src) const = 0;
  int bits_ = 0;
  int active_ = 0;
};

class ShuffleTraffic final : public BitPermutation {
 public:
  using BitPermutation::BitPermutation;
  std::string name() const override { return "shuffle"; }

 protected:
  // d_i = s_(i-1 mod b): rotate the address left by one bit.
  int permute(int src) const override {
    return ((src << 1) | (src >> (bits_ - 1))) & (active_ - 1);
  }
};

class BitReversalTraffic final : public BitPermutation {
 public:
  using BitPermutation::BitPermutation;
  std::string name() const override { return "bitrev"; }

 protected:
  int permute(int src) const override {
    int dst = 0;
    for (int i = 0; i < bits_; ++i) {
      if (src & (1 << i)) dst |= 1 << (bits_ - 1 - i);
    }
    return dst;
  }
};

class BitComplementTraffic final : public BitPermutation {
 public:
  using BitPermutation::BitPermutation;
  std::string name() const override { return "bitcomp"; }

 protected:
  int permute(int src) const override { return ~src & (active_ - 1); }
};

class ShiftTraffic final : public TrafficPattern {
 public:
  explicit ShiftTraffic(int n) : n_(n) {}
  std::string name() const override { return "shift"; }
  /* SF_HOT */ int destination(int src, Rng& rng) override {
    int half = n_ / 2;
    int base = src % half;
    int dst = rng.bernoulli(0.5) ? base + half : base;
    return dst == src ? (src < half ? src + half : src - half) : dst;
  }

 private:
  int n_;
};

/// Figure 9 construction: pick a link (Rx, Ry); routers adjacent to Ry
/// whose 2-hop minimal path to Rx leads through Ry all send to Rx (and Rx
/// replies), and symmetrically for Ry; repeat over links until no more
/// routers can be assigned.
class WorstCaseSfTraffic final : public TrafficPattern {
 public:
  explicit WorstCaseSfTraffic(const Topology& topo) {
    const Graph& g = topo.graph();
    int nr = topo.num_routers();
    int p = topo.concentration();
    std::vector<int> target(static_cast<std::size_t>(nr), -1);  // per router

    // Distances once (diameter-2 class networks are small enough for this).
    std::vector<std::vector<int>> dist(static_cast<std::size_t>(nr));
    for (int r = 0; r < nr; ++r) dist[static_cast<std::size_t>(r)] = analysis::bfs_distances(g, r);

    for (const auto& [rx, ry] : g.edges()) {
      if (rx >= topo.num_endpoint_routers() || ry >= topo.num_endpoint_routers()) continue;
      if (target[static_cast<std::size_t>(rx)] != -1 ||
          target[static_cast<std::size_t>(ry)] != -1) {
        continue;
      }
      bool any = false;
      for (int ri : g.neighbors(ry)) {
        if (ri == rx || ri >= topo.num_endpoint_routers()) continue;
        if (target[static_cast<std::size_t>(ri)] != -1) continue;
        if (dist[static_cast<std::size_t>(ri)][static_cast<std::size_t>(rx)] == 2) {
          target[static_cast<std::size_t>(ri)] = rx;  // path Ri -> Ry -> Rx
          any = true;
        }
      }
      for (int rb : g.neighbors(rx)) {
        if (rb == ry || rb >= topo.num_endpoint_routers()) continue;
        if (target[static_cast<std::size_t>(rb)] != -1) continue;
        if (dist[static_cast<std::size_t>(rb)][static_cast<std::size_t>(ry)] == 2) {
          target[static_cast<std::size_t>(rb)] = ry;
          any = true;
        }
      }
      if (any) {
        // The overloaded routers reply to one of their attackers so they
        // also "send and receive" (Section V-C).
        for (int ri : g.neighbors(ry)) {
          if (target[static_cast<std::size_t>(ri)] == rx) {
            target[static_cast<std::size_t>(rx)] = ri;
            break;
          }
        }
        for (int rb : g.neighbors(rx)) {
          if (target[static_cast<std::size_t>(rb)] == ry) {
            target[static_cast<std::size_t>(ry)] = rb;
            break;
          }
        }
      }
    }

    // Endpoint-level map: endpoint j of router r -> endpoint j of target(r).
    dst_.assign(static_cast<std::size_t>(topo.num_endpoints()), -1);
    for (int r = 0; r < topo.num_endpoint_routers(); ++r) {
      int t = target[static_cast<std::size_t>(r)];
      if (t < 0) continue;
      for (int j = 0; j < p; ++j) {
        dst_[static_cast<std::size_t>(topo.first_endpoint(r) + j)] =
            topo.first_endpoint(t) + j;
      }
    }
  }

  std::string name() const override { return "worst-sf"; }
  /* SF_HOT */ int destination(int src, Rng& rng) override {
    (void)rng;
    return dst_[static_cast<std::size_t>(src)];
  }
  bool is_active(int src) const override {
    return dst_[static_cast<std::size_t>(src)] >= 0;
  }

 private:
  std::vector<int> dst_;
};

class WorstCaseDfTraffic final : public TrafficPattern {
 public:
  explicit WorstCaseDfTraffic(const Dragonfly& topo) : topo_(topo) {}
  std::string name() const override { return "worst-df"; }
  /* SF_HOT */ int destination(int src, Rng& rng) override {
    int p = topo_.concentration();
    int group = topo_.group_of(src / p);
    int next_group = (group + 1) % topo_.groups();
    // Random endpoint inside the successor group.
    int router = next_group * topo_.a() + rng.next_int(0, topo_.a() - 1);
    return topo_.first_endpoint(router) + rng.next_int(0, p - 1);
  }

 private:
  const Dragonfly& topo_;
};

class WorstCaseFtTraffic final : public TrafficPattern {
 public:
  explicit WorstCaseFtTraffic(const FatTree3& topo) : topo_(topo) {}
  std::string name() const override { return "worst-ft"; }
  /* SF_HOT */ int destination(int src, Rng& rng) override {
    (void)rng;
    // Shift by one pod: every route must climb to a core switch.
    int pod_endpoints = topo_.p() * topo_.p();
    return (src + pod_endpoints) % topo_.num_endpoints();
  }

 private:
  const FatTree3& topo_;
};

class Stencil3dTraffic final : public TrafficPattern {
 public:
  explicit Stencil3dTraffic(int n) {
    // Largest cubic grid fitting in n endpoints.
    side_ = 1;
    while ((side_ + 1) * (side_ + 1) * (side_ + 1) <= n) ++side_;
    active_ = side_ * side_ * side_;
    next_face_.assign(static_cast<std::size_t>(active_), 0);
  }
  std::string name() const override { return "stencil3d"; }
  /* SF_HOT */ int destination(int src, Rng& rng) override {
    (void)rng;
    if (src >= active_ || side_ < 2) return -1;
    int face = next_face_[static_cast<std::size_t>(src)];
    next_face_[static_cast<std::size_t>(src)] = (face + 1) % 6;
    int x = src % side_;
    int y = (src / side_) % side_;
    int z = src / (side_ * side_);
    int dim = face / 2;
    int dir = (face % 2 == 0) ? 1 : side_ - 1;  // +1 or -1 mod side
    int coords[3] = {x, y, z};
    coords[dim] = (coords[dim] + dir) % side_;
    return coords[0] + coords[1] * side_ + coords[2] * side_ * side_;
  }
  bool is_active(int src) const override { return src < active_ && side_ >= 2; }

 private:
  int side_ = 0;
  int active_ = 0;
  std::vector<int> next_face_;  // round-robin over the 6 neighbours
};

class TraceTraffic final : public TrafficPattern {
 public:
  TraceTraffic(int n, const std::vector<std::pair<int, int>>& flows)
      : flows_(static_cast<std::size_t>(n)), cursor_(static_cast<std::size_t>(n), 0) {
    for (const auto& [src, dst] : flows) {
      if (src < 0 || src >= n || dst < 0 || dst >= n || src == dst) {
        throw std::invalid_argument("make_trace: bad flow endpoint");
      }
      // Duplicates are kept by design: k copies of (src, dst) give dst k
      // slots in src's round-robin, i.e. k× the flow's weight (see the
      // make_trace contract in traffic.hpp).
      flows_[static_cast<std::size_t>(src)].push_back(dst);
    }
  }
  std::string name() const override { return "trace"; }
  /* SF_HOT */ int destination(int src, Rng& rng) override {
    (void)rng;
    const auto& list = flows_[static_cast<std::size_t>(src)];
    if (list.empty()) return -1;
    auto& cur = cursor_[static_cast<std::size_t>(src)];
    int dst = list[static_cast<std::size_t>(cur)];
    cur = (cur + 1) % static_cast<int>(list.size());
    return dst;
  }
  bool is_active(int src) const override {
    return !flows_[static_cast<std::size_t>(src)].empty();
  }

 private:
  std::vector<std::vector<int>> flows_;
  std::vector<int> cursor_;
};

// ---- workload-layer wrappers ------------------------------------------------

/// Dedicated RNG stream tags, disjoint from the injector's endpoint streams
/// and the routers' tie-break streams: burst segment lengths and the hotspot
/// endpoint choice come from their own substreams of the run seed, so
/// wrapping a pattern never perturbs the base pattern's draws.
constexpr std::uint64_t kBurstStreamTag = 0x6b75c2e9;
constexpr std::uint64_t kHotspotStreamTag = 0x3fa8d17b;

/// ON/OFF modulation (make_burst contract in traffic.hpp). Segment state
/// advances lazily from the queried cycle: each endpoint keeps the end cycle
/// of its current segment and rolls forward while t passes it, drawing each
/// segment length as a uniform integer in [1, 2·mean−1] from the endpoint's
/// own burst stream. Draw consumption therefore depends only on the largest
/// t queried — which is what keeps the cycle engine (querying every cycle)
/// and the active engine (querying with gaps while planning) bit-identical.
class BurstTraffic final : public TrafficPattern {
 public:
  BurstTraffic(std::unique_ptr<TrafficPattern> base, int n, std::int64_t on,
               std::int64_t off, double mult, std::uint64_t seed)
      : base_(std::move(base)), on_(on), off_(off), mult_(mult) {
    const double duty =
        static_cast<double>(on) / static_cast<double>(on + off);
    states_.reserve(static_cast<std::size_t>(n));
    for (int e = 0; e < n; ++e) {
      State s;
      s.rng = rng_stream(seed, kBurstStreamTag, static_cast<std::uint64_t>(e));
      // Random initial phase per endpoint (so tenants don't burst in
      // lockstep): the first query toggles into the drawn starting state.
      s.on = !(s.rng.next_double() < duty);
      s.segment_end = 0;
      states_.push_back(s);
    }
  }

  std::string name() const override { return "burst(" + base_->name() + ")"; }
  /* SF_HOT */ int destination(int src, Rng& rng) override {
    return base_->destination(src, rng);
  }
  bool is_active(int src) const override { return base_->is_active(src); }

  bool modulates_rate() const override { return true; }
  /* SF_HOT */ double rate_multiplier(int src, std::int64_t t) override {
    State& s = states_[static_cast<std::size_t>(src)];
    while (t >= s.segment_end) {
      s.on = !s.on;
      const std::int64_t mean = s.on ? on_ : off_;
      s.segment_end += 1 + static_cast<std::int64_t>(s.rng.next_below(
                               static_cast<std::uint32_t>(2 * mean - 1)));
    }
    return (s.on ? mult_ : 0.0) * base_->rate_multiplier(src, t);
  }

 private:
  struct State {
    Rng rng;
    bool on = false;
    std::int64_t segment_end = 0;  ///< first cycle past the current segment
  };
  std::unique_ptr<TrafficPattern> base_;
  std::int64_t on_;
  std::int64_t off_;
  double mult_;
  std::vector<State> states_;
};

/// Hotspot skew (make_hotspot contract in traffic.hpp): with probability
/// q = H(heat−1)/(N−H) a send is redirected to one of the H hot endpoints,
/// so each hot endpoint receives heat× the uniform share while the
/// remaining traffic keeps the base pattern's shape. A redirect that picks
/// the sender itself falls through to the base pattern.
class HotspotTraffic final : public TrafficPattern {
 public:
  HotspotTraffic(std::unique_ptr<TrafficPattern> base, int n, double frac,
                 double heat, std::uint64_t seed)
      : base_(std::move(base)) {
    int h = static_cast<int>(frac * n + 0.5);
    h = std::max(1, std::min(h, n - 1));
    q_ = h * (heat - 1.0) / (n - h);
    if (q_ > 1.0) {
      throw std::invalid_argument(
          "hotspot: heat=" + std::to_string(heat) + " with frac=" +
          std::to_string(frac) + " needs redirect probability q=" +
          std::to_string(q_) + " > 1 (q = H(heat-1)/(N-H), H=" +
          std::to_string(h) + ", N=" + std::to_string(n) +
          "); lower heat or frac");
    }
    // Seeded Fisher–Yates prefix: the hot set is a property of the pattern,
    // drawn once at construction from its own stream.
    Rng rng = rng_stream(seed, kHotspotStreamTag, 0);
    std::vector<int> ids(static_cast<std::size_t>(n));
    std::iota(ids.begin(), ids.end(), 0);
    hot_.reserve(static_cast<std::size_t>(h));
    for (int i = 0; i < h; ++i) {
      const int j =
          i + static_cast<int>(rng.next_below(static_cast<std::uint32_t>(n - i)));
      std::swap(ids[static_cast<std::size_t>(i)], ids[static_cast<std::size_t>(j)]);
      hot_.push_back(ids[static_cast<std::size_t>(i)]);
    }
  }

  std::string name() const override {
    return "hotspot(" + base_->name() + ")";
  }
  /* SF_HOT */ int destination(int src, Rng& rng) override {
    if (q_ > 0.0 && rng.bernoulli(q_)) {
      const int pick = hot_[static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint32_t>(hot_.size())))];
      if (pick != src) return pick;
      // self-hit: fall through to the base pattern
    }
    return base_->destination(src, rng);
  }
  bool is_active(int src) const override { return base_->is_active(src); }

  bool modulates_rate() const override { return base_->modulates_rate(); }
  /* SF_HOT */ double rate_multiplier(int src, std::int64_t t) override {
    return base_->rate_multiplier(src, t);
  }

 private:
  std::unique_ptr<TrafficPattern> base_;
  double q_ = 0.0;
  std::vector<int> hot_;
};

}  // namespace

std::unique_ptr<TrafficPattern> make_stencil3d(int n) {
  if (n < 8) throw std::invalid_argument("make_stencil3d: need >= 8 endpoints");
  return std::make_unique<Stencil3dTraffic>(n);
}

std::unique_ptr<TrafficPattern> make_trace(
    int n, const std::vector<std::pair<int, int>>& flows) {
  if (n < 2) throw std::invalid_argument("make_trace: need >= 2 endpoints");
  return std::make_unique<TraceTraffic>(n, flows);
}

std::unique_ptr<TrafficPattern> make_uniform(int n) {
  if (n < 2) throw std::invalid_argument("make_uniform: need >= 2 endpoints");
  return std::make_unique<UniformTraffic>(n);
}
std::unique_ptr<TrafficPattern> make_shuffle(int n) {
  return std::make_unique<ShuffleTraffic>(n);
}
std::unique_ptr<TrafficPattern> make_bit_reversal(int n) {
  return std::make_unique<BitReversalTraffic>(n);
}
std::unique_ptr<TrafficPattern> make_bit_complement(int n) {
  return std::make_unique<BitComplementTraffic>(n);
}
std::unique_ptr<TrafficPattern> make_shift(int n) {
  if (n < 2) throw std::invalid_argument("make_shift: need >= 2 endpoints");
  return std::make_unique<ShiftTraffic>(n);
}
std::unique_ptr<TrafficPattern> make_worst_case_sf(const Topology& topo) {
  return std::make_unique<WorstCaseSfTraffic>(topo);
}
std::unique_ptr<TrafficPattern> make_worst_case_df(const Dragonfly& topo) {
  return std::make_unique<WorstCaseDfTraffic>(topo);
}
std::unique_ptr<TrafficPattern> make_worst_case_ft(const FatTree3& topo) {
  return std::make_unique<WorstCaseFtTraffic>(topo);
}

std::unique_ptr<TrafficPattern> make_burst(std::unique_ptr<TrafficPattern> base,
                                           int n, std::int64_t on_mean,
                                           std::int64_t off_mean, double mult,
                                           std::uint64_t seed) {
  if (!base) throw std::invalid_argument("make_burst: null base pattern");
  if (base->self_clocked()) {
    throw std::invalid_argument(
        "burst cannot modulate a self-clocked base pattern (" + base->name() +
        " has no injection rate to modulate)");
  }
  if (n < 2) throw std::invalid_argument("make_burst: need >= 2 endpoints");
  if (on_mean < 1 || on_mean > 1000000000 || off_mean < 1 ||
      off_mean > 1000000000) {
    throw std::invalid_argument(
        "burst: on/off mean segment lengths must be in [1, 1e9] cycles");
  }
  if (!(mult > 0.0) || mult > 1000000.0) {
    throw std::invalid_argument("burst: mult must be in (0, 1e6]");
  }
  return std::make_unique<BurstTraffic>(std::move(base), n, on_mean, off_mean,
                                        mult, seed);
}

std::unique_ptr<TrafficPattern> make_hotspot(
    std::unique_ptr<TrafficPattern> base, int n, double frac, double heat,
    std::uint64_t seed) {
  if (!base) throw std::invalid_argument("make_hotspot: null base pattern");
  if (base->self_clocked()) {
    throw std::invalid_argument(
        "hotspot cannot redirect a self-clocked base pattern (" +
        base->name() + " replays fixed destinations)");
  }
  if (n < 2) throw std::invalid_argument("make_hotspot: need >= 2 endpoints");
  if (!(frac > 0.0) || frac > 1.0) {
    throw std::invalid_argument("hotspot: frac must be in (0, 1]");
  }
  if (heat < 1.0 || heat > 1000000.0) {
    throw std::invalid_argument("hotspot: heat must be in [1, 1e6]");
  }
  return std::make_unique<HotspotTraffic>(std::move(base), n, frac, heat,
                                          seed);
}

namespace {

/// Single source of truth for the traffic registry: name, the topology
/// family it is restricted to ("" = any), and the factory. make_traffic,
/// traffic_names and traffic_requirement all derive from this table.
struct TrafficEntry {
  const char* name;
  const char* requirement;
  std::unique_ptr<TrafficPattern> (*make)(const Topology&);
};

constexpr TrafficEntry kTrafficRegistry[] = {
    {"bitcomp", "",
     [](const Topology& t) { return make_bit_complement(t.num_endpoints()); }},
    {"bitrev", "",
     [](const Topology& t) { return make_bit_reversal(t.num_endpoints()); }},
    {"shift", "",
     [](const Topology& t) { return make_shift(t.num_endpoints()); }},
    {"shuffle", "",
     [](const Topology& t) { return make_shuffle(t.num_endpoints()); }},
    {"stencil3d", "",
     [](const Topology& t) { return make_stencil3d(t.num_endpoints()); }},
    {"uniform", "",
     [](const Topology& t) { return make_uniform(t.num_endpoints()); }},
    {"worst-df", "dragonfly",
     [](const Topology& t) {
       // make_traffic has already enforced `requirement`
       return make_worst_case_df(dynamic_cast<const Dragonfly&>(t));
     }},
    {"worst-ft", "fattree",
     [](const Topology& t) {
       return make_worst_case_ft(dynamic_cast<const FatTree3&>(t));
     }},
    {"worst-sf", "",
     [](const Topology& t) { return make_worst_case_sf(t); }},
    {"worstcase", "",
     [](const Topology& t) -> std::unique_ptr<TrafficPattern> {
       if (const auto* df = dynamic_cast<const Dragonfly*>(&t))
         return make_worst_case_df(*df);
       if (const auto* ft = dynamic_cast<const FatTree3*>(&t))
         return make_worst_case_ft(*ft);
       return make_worst_case_sf(t);
     }},
};

/// Decodes a nested base=<spec> value: inside an outer spec the base spells
/// its own commas as ';' (the convention topo/registry.cpp established for
/// augmented:base=).
std::string decode_base_spec(std::string value) {
  std::replace(value.begin(), value.end(), ';', ',');
  return value;
}

[[noreturn]] void spec_fail(const std::string& spec, const std::string& msg) {
  throw std::invalid_argument("traffic spec \"" + spec + "\": " + msg);
}

std::string spec_param(const TrafficSpec& parsed, const char* key,
                       const std::string& fallback) {
  const auto it = parsed.params.find(key);
  return it == parsed.params.end() ? fallback : it->second;
}

/// Rejects parameters outside the pattern's key set with a named error.
void check_spec_keys(const std::string& spec, const TrafficSpec& parsed,
                     const std::vector<const char*>& required,
                     const std::vector<const char*>& optional) {
  for (const char* key : required) {
    if (!parsed.params.count(key)) {
      spec_fail(spec, "missing required parameter \"" + std::string(key) +
                          "\"");
    }
  }
  for (const auto& [key, value] : parsed.params) {
    (void)value;
    const auto known = [&](const std::vector<const char*>& set) {
      return std::any_of(set.begin(), set.end(),
                         [&](const char* k) { return key == k; });
    };
    if (!known(required) && !known(optional)) {
      std::string allowed;
      for (const char* k : required) allowed += std::string(" ") + k;
      for (const char* k : optional) allowed += std::string(" ") + k;
      spec_fail(spec, "unknown parameter \"" + key + "\" (takes:" + allowed +
                          ")");
    }
  }
}

std::int64_t spec_int(const std::string& spec, const std::string& key,
                      const std::string& value, std::int64_t lo,
                      std::int64_t hi) {
  if (value.empty() || value.size() > 10 ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    spec_fail(spec, key + "=" + value + " must be an integer in [" +
                        std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  const std::int64_t v = std::stoll(value);
  if (v < lo || v > hi) {
    spec_fail(spec, key + "=" + value + " out of range [" +
                        std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return v;
}

double spec_double(const std::string& spec, const std::string& key,
                   const std::string& value) {
  const char* text = value.c_str();
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (value.empty() || end != text + value.size() || !(v == v) ||
      v > 1e18 || v < -1e18) {
    spec_fail(spec, key + "=" + value + " must be a finite number");
  }
  return v;
}

std::uint64_t spec_seed(const std::string& spec, const std::string& value) {
  if (value.empty() || value.size() > 20 ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    spec_fail(spec, "seed=" + value + " must be an unsigned integer");
  }
  try {
    return std::stoull(value);
  } catch (const std::out_of_range&) {
    spec_fail(spec, "seed=" + value + " exceeds 64 bits");
  }
}

bool registry_has(const std::string& name) {
  for (const auto& entry : kTrafficRegistry) {
    if (name == entry.name) return true;
  }
  return false;
}

bool is_self_clocked_name(const std::string& base_spec) {
  const std::string name = base_spec.substr(0, base_spec.find(':'));
  return name == "allreduce" || name == "trace";
}

}  // namespace

TrafficSpec parse_traffic_spec(const std::string& spec) {
  TrafficSpec out;
  const auto colon = spec.find(':');
  out.name = spec.substr(0, colon);
  if (out.name.empty()) spec_fail(spec, "empty traffic name");
  if (colon == std::string::npos) return out;
  const std::string rest = spec.substr(colon + 1);
  if (rest.empty()) spec_fail(spec, "expected key=value parameters after ':'");
  std::size_t pos = 0;
  while (pos <= rest.size()) {
    auto comma = rest.find(',', pos);
    if (comma == std::string::npos) comma = rest.size();
    const std::string kv = rest.substr(pos, comma - pos);
    const auto eq = kv.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == kv.size()) {
      spec_fail(spec, "expected key=value, got \"" + kv + "\"");
    }
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    if (!out.params.emplace(key, value).second) {
      spec_fail(spec, "duplicate parameter \"" + key + "\"");
    }
    pos = comma + 1;
  }
  return out;
}

void validate_traffic_spec(const std::string& spec) {
  const TrafficSpec parsed = parse_traffic_spec(spec);
  if (registry_has(parsed.name)) {
    if (!parsed.params.empty()) {
      spec_fail(spec, "traffic \"" + parsed.name + "\" takes no parameters");
    }
    return;
  }
  const auto validate_base = [&](const char* wrapper) {
    const std::string base =
        decode_base_spec(spec_param(parsed, "base", "uniform"));
    if (is_self_clocked_name(base)) {
      spec_fail(spec, std::string(wrapper) +
                          " cannot wrap the self-clocked base \"" + base +
                          "\"");
    }
    validate_traffic_spec(base);  // recursive: nested wrappers are legal
  };
  if (parsed.name == "burst") {
    check_spec_keys(spec, parsed, {"on", "off", "mult"}, {"seed", "base"});
    spec_int(spec, "on", parsed.params.at("on"), 1, 1000000000);
    spec_int(spec, "off", parsed.params.at("off"), 1, 1000000000);
    const double mult = spec_double(spec, "mult", parsed.params.at("mult"));
    if (!(mult > 0.0) || mult > 1e6) {
      spec_fail(spec, "mult must be in (0, 1e6]");
    }
    if (parsed.params.count("seed")) {
      spec_seed(spec, parsed.params.at("seed"));
    }
    validate_base("burst");
    return;
  }
  if (parsed.name == "hotspot") {
    check_spec_keys(spec, parsed, {"frac", "heat"}, {"seed", "base"});
    const double frac = spec_double(spec, "frac", parsed.params.at("frac"));
    if (!(frac > 0.0) || frac > 1.0) {
      spec_fail(spec, "frac must be in (0, 1]");
    }
    const double heat = spec_double(spec, "heat", parsed.params.at("heat"));
    if (heat < 1.0 || heat > 1e6) {
      spec_fail(spec, "heat must be in [1, 1e6]");
    }
    if (parsed.params.count("seed")) {
      spec_seed(spec, parsed.params.at("seed"));
    }
    validate_base("hotspot");
    return;
  }
  if (parsed.name == "allreduce") {
    check_spec_keys(spec, parsed, {"ranks"}, {"algo"});
    const std::int64_t ranks =
        spec_int(spec, "ranks", parsed.params.at("ranks"), 2, 1000000);
    const std::string algo = spec_param(parsed, "algo", "ring");
    if (algo != "ring" && algo != "tree") {
      spec_fail(spec, "algo=" + algo + " (ring or tree)");
    }
    if (algo == "tree" && (ranks & (ranks - 1)) != 0) {
      spec_fail(spec, "algo=tree requires power-of-two ranks (got " +
                          std::to_string(ranks) + ")");
    }
    return;
  }
  if (parsed.name == "trace") {
    check_spec_keys(spec, parsed, {"file"}, {});
    return;  // the file itself is read (and validated) by make_traffic
  }
  throw std::invalid_argument(
      "unknown traffic pattern \"" + parsed.name +
      "\" (bare patterns: sweep --list; parameterized: burst:, hotspot:, "
      "allreduce:, trace: — see docs/SPEC_GRAMMAR.md)");
}

std::unique_ptr<TrafficPattern> make_traffic(const std::string& spec,
                                             const Topology& topo) {
  const TrafficSpec parsed = parse_traffic_spec(spec);
  for (const auto& entry : kTrafficRegistry) {
    if (parsed.name != entry.name) continue;
    if (!parsed.params.empty()) {
      spec_fail(spec, "traffic \"" + parsed.name + "\" takes no parameters");
    }
    // Central requirement check, driven by the same column cross() filters
    // on, so the factories can downcast unconditionally.
    if (*entry.requirement &&
        entry.requirement != topo::family_of(topo)) {
      throw std::invalid_argument("traffic \"" + parsed.name +
                                  "\" requires a " + entry.requirement +
                                  " topology");
    }
    return entry.make(topo);
  }
  validate_traffic_spec(spec);  // named grammar/range/unknown-name errors
  const int n = topo.num_endpoints();
  if (parsed.name == "burst") {
    auto base =
        make_traffic(decode_base_spec(spec_param(parsed, "base", "uniform")),
                     topo);
    return make_burst(std::move(base), n,
                      spec_int(spec, "on", parsed.params.at("on"), 1,
                               1000000000),
                      spec_int(spec, "off", parsed.params.at("off"), 1,
                               1000000000),
                      spec_double(spec, "mult", parsed.params.at("mult")),
                      spec_seed(spec, spec_param(parsed, "seed", "1")));
  }
  if (parsed.name == "hotspot") {
    auto base =
        make_traffic(decode_base_spec(spec_param(parsed, "base", "uniform")),
                     topo);
    return make_hotspot(std::move(base), n,
                        spec_double(spec, "frac", parsed.params.at("frac")),
                        spec_double(spec, "heat", parsed.params.at("heat")),
                        spec_seed(spec, spec_param(parsed, "seed", "1")));
  }
  if (parsed.name == "allreduce") {
    const std::int64_t ranks =
        spec_int(spec, "ranks", parsed.params.at("ranks"), 2, 1000000);
    if (ranks > n) {
      spec_fail(spec, "ranks=" + std::to_string(ranks) +
                          " exceeds the topology's " + std::to_string(n) +
                          " endpoints");
    }
    const std::string algo = spec_param(parsed, "algo", "ring");
    return make_dependency_replay(
        n, make_allreduce_trace(static_cast<int>(ranks), algo),
        "allreduce-" + algo);
  }
  // validate_traffic_spec leaves only trace: to reach here.
  return make_dependency_replay(
      n, load_workload_trace(parsed.params.at("file")), "trace");
}

std::vector<std::string> traffic_names() {
  std::vector<std::string> names;
  for (const auto& entry : kTrafficRegistry) names.push_back(entry.name);
  return names;
}

std::string traffic_requirement(const std::string& spec) {
  const std::string name = spec.substr(0, spec.find(':'));
  for (const auto& entry : kTrafficRegistry) {
    if (name == entry.name) return entry.requirement;
  }
  if (name == "burst" || name == "hotspot") {
    // Wrappers inherit the topology restriction of their base pattern.
    try {
      const TrafficSpec parsed = parse_traffic_spec(spec);
      return traffic_requirement(
          decode_base_spec(spec_param(parsed, "base", "uniform")));
    } catch (const std::invalid_argument&) {
      return "";  // malformed specs fail later, in validation
    }
  }
  return "";
}

}  // namespace slimfly::sim
