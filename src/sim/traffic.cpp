#include "sim/traffic.hpp"

#include <algorithm>
#include <stdexcept>

#include "analysis/metrics.hpp"
#include "topo/registry.hpp"

namespace slimfly::sim {

namespace {

class UniformTraffic final : public TrafficPattern {
 public:
  explicit UniformTraffic(int n) : n_(n) {}
  std::string name() const override { return "uniform"; }
  int destination(int src, Rng& rng) override {
    int dst = rng.next_int(0, n_ - 2);
    return dst >= src ? dst + 1 : dst;  // uniform over all others
  }

 private:
  int n_;
};

/// Base for the power-of-two bit permutations: endpoints >= 2^b are idle.
class BitPermutation : public TrafficPattern {
 public:
  explicit BitPermutation(int n) {
    if (n < 2) throw std::invalid_argument("BitPermutation: need >= 2 endpoints");
    bits_ = 0;
    while ((2 << bits_) <= n) ++bits_;  // largest 2^bits_ <= n
    active_ = 1 << bits_;
  }
  int destination(int src, Rng& rng) override {
    (void)rng;
    if (src >= active_) return -1;
    int dst = permute(src);
    return dst == src ? -1 : dst;  // self-sends would be no-ops
  }
  bool is_active(int src) const override {
    return src < active_ && permute(src) != src;
  }

 protected:
  virtual int permute(int src) const = 0;
  int bits_ = 0;
  int active_ = 0;
};

class ShuffleTraffic final : public BitPermutation {
 public:
  using BitPermutation::BitPermutation;
  std::string name() const override { return "shuffle"; }

 protected:
  // d_i = s_(i-1 mod b): rotate the address left by one bit.
  int permute(int src) const override {
    return ((src << 1) | (src >> (bits_ - 1))) & (active_ - 1);
  }
};

class BitReversalTraffic final : public BitPermutation {
 public:
  using BitPermutation::BitPermutation;
  std::string name() const override { return "bitrev"; }

 protected:
  int permute(int src) const override {
    int dst = 0;
    for (int i = 0; i < bits_; ++i) {
      if (src & (1 << i)) dst |= 1 << (bits_ - 1 - i);
    }
    return dst;
  }
};

class BitComplementTraffic final : public BitPermutation {
 public:
  using BitPermutation::BitPermutation;
  std::string name() const override { return "bitcomp"; }

 protected:
  int permute(int src) const override { return ~src & (active_ - 1); }
};

class ShiftTraffic final : public TrafficPattern {
 public:
  explicit ShiftTraffic(int n) : n_(n) {}
  std::string name() const override { return "shift"; }
  int destination(int src, Rng& rng) override {
    int half = n_ / 2;
    int base = src % half;
    int dst = rng.bernoulli(0.5) ? base + half : base;
    return dst == src ? (src < half ? src + half : src - half) : dst;
  }

 private:
  int n_;
};

/// Figure 9 construction: pick a link (Rx, Ry); routers adjacent to Ry
/// whose 2-hop minimal path to Rx leads through Ry all send to Rx (and Rx
/// replies), and symmetrically for Ry; repeat over links until no more
/// routers can be assigned.
class WorstCaseSfTraffic final : public TrafficPattern {
 public:
  explicit WorstCaseSfTraffic(const Topology& topo) {
    const Graph& g = topo.graph();
    int nr = topo.num_routers();
    int p = topo.concentration();
    std::vector<int> target(static_cast<std::size_t>(nr), -1);  // per router

    // Distances once (diameter-2 class networks are small enough for this).
    std::vector<std::vector<int>> dist(static_cast<std::size_t>(nr));
    for (int r = 0; r < nr; ++r) dist[static_cast<std::size_t>(r)] = analysis::bfs_distances(g, r);

    for (const auto& [rx, ry] : g.edges()) {
      if (rx >= topo.num_endpoint_routers() || ry >= topo.num_endpoint_routers()) continue;
      if (target[static_cast<std::size_t>(rx)] != -1 ||
          target[static_cast<std::size_t>(ry)] != -1) {
        continue;
      }
      bool any = false;
      for (int ri : g.neighbors(ry)) {
        if (ri == rx || ri >= topo.num_endpoint_routers()) continue;
        if (target[static_cast<std::size_t>(ri)] != -1) continue;
        if (dist[static_cast<std::size_t>(ri)][static_cast<std::size_t>(rx)] == 2) {
          target[static_cast<std::size_t>(ri)] = rx;  // path Ri -> Ry -> Rx
          any = true;
        }
      }
      for (int rb : g.neighbors(rx)) {
        if (rb == ry || rb >= topo.num_endpoint_routers()) continue;
        if (target[static_cast<std::size_t>(rb)] != -1) continue;
        if (dist[static_cast<std::size_t>(rb)][static_cast<std::size_t>(ry)] == 2) {
          target[static_cast<std::size_t>(rb)] = ry;
          any = true;
        }
      }
      if (any) {
        // The overloaded routers reply to one of their attackers so they
        // also "send and receive" (Section V-C).
        for (int ri : g.neighbors(ry)) {
          if (target[static_cast<std::size_t>(ri)] == rx) {
            target[static_cast<std::size_t>(rx)] = ri;
            break;
          }
        }
        for (int rb : g.neighbors(rx)) {
          if (target[static_cast<std::size_t>(rb)] == ry) {
            target[static_cast<std::size_t>(ry)] = rb;
            break;
          }
        }
      }
    }

    // Endpoint-level map: endpoint j of router r -> endpoint j of target(r).
    dst_.assign(static_cast<std::size_t>(topo.num_endpoints()), -1);
    for (int r = 0; r < topo.num_endpoint_routers(); ++r) {
      int t = target[static_cast<std::size_t>(r)];
      if (t < 0) continue;
      for (int j = 0; j < p; ++j) {
        dst_[static_cast<std::size_t>(topo.first_endpoint(r) + j)] =
            topo.first_endpoint(t) + j;
      }
    }
  }

  std::string name() const override { return "worst-sf"; }
  int destination(int src, Rng& rng) override {
    (void)rng;
    return dst_[static_cast<std::size_t>(src)];
  }
  bool is_active(int src) const override {
    return dst_[static_cast<std::size_t>(src)] >= 0;
  }

 private:
  std::vector<int> dst_;
};

class WorstCaseDfTraffic final : public TrafficPattern {
 public:
  explicit WorstCaseDfTraffic(const Dragonfly& topo) : topo_(topo) {}
  std::string name() const override { return "worst-df"; }
  int destination(int src, Rng& rng) override {
    int p = topo_.concentration();
    int group = topo_.group_of(src / p);
    int next_group = (group + 1) % topo_.groups();
    // Random endpoint inside the successor group.
    int router = next_group * topo_.a() + rng.next_int(0, topo_.a() - 1);
    return topo_.first_endpoint(router) + rng.next_int(0, p - 1);
  }

 private:
  const Dragonfly& topo_;
};

class WorstCaseFtTraffic final : public TrafficPattern {
 public:
  explicit WorstCaseFtTraffic(const FatTree3& topo) : topo_(topo) {}
  std::string name() const override { return "worst-ft"; }
  int destination(int src, Rng& rng) override {
    (void)rng;
    // Shift by one pod: every route must climb to a core switch.
    int pod_endpoints = topo_.p() * topo_.p();
    return (src + pod_endpoints) % topo_.num_endpoints();
  }

 private:
  const FatTree3& topo_;
};

class Stencil3dTraffic final : public TrafficPattern {
 public:
  explicit Stencil3dTraffic(int n) {
    // Largest cubic grid fitting in n endpoints.
    side_ = 1;
    while ((side_ + 1) * (side_ + 1) * (side_ + 1) <= n) ++side_;
    active_ = side_ * side_ * side_;
    next_face_.assign(static_cast<std::size_t>(active_), 0);
  }
  std::string name() const override { return "stencil3d"; }
  int destination(int src, Rng& rng) override {
    (void)rng;
    if (src >= active_ || side_ < 2) return -1;
    int face = next_face_[static_cast<std::size_t>(src)];
    next_face_[static_cast<std::size_t>(src)] = (face + 1) % 6;
    int x = src % side_;
    int y = (src / side_) % side_;
    int z = src / (side_ * side_);
    int dim = face / 2;
    int dir = (face % 2 == 0) ? 1 : side_ - 1;  // +1 or -1 mod side
    int coords[3] = {x, y, z};
    coords[dim] = (coords[dim] + dir) % side_;
    return coords[0] + coords[1] * side_ + coords[2] * side_ * side_;
  }
  bool is_active(int src) const override { return src < active_ && side_ >= 2; }

 private:
  int side_ = 0;
  int active_ = 0;
  std::vector<int> next_face_;  // round-robin over the 6 neighbours
};

class TraceTraffic final : public TrafficPattern {
 public:
  TraceTraffic(int n, const std::vector<std::pair<int, int>>& flows)
      : flows_(static_cast<std::size_t>(n)), cursor_(static_cast<std::size_t>(n), 0) {
    for (const auto& [src, dst] : flows) {
      if (src < 0 || src >= n || dst < 0 || dst >= n || src == dst) {
        throw std::invalid_argument("make_trace: bad flow endpoint");
      }
      flows_[static_cast<std::size_t>(src)].push_back(dst);
    }
  }
  std::string name() const override { return "trace"; }
  int destination(int src, Rng& rng) override {
    (void)rng;
    const auto& list = flows_[static_cast<std::size_t>(src)];
    if (list.empty()) return -1;
    auto& cur = cursor_[static_cast<std::size_t>(src)];
    int dst = list[static_cast<std::size_t>(cur)];
    cur = (cur + 1) % static_cast<int>(list.size());
    return dst;
  }
  bool is_active(int src) const override {
    return !flows_[static_cast<std::size_t>(src)].empty();
  }

 private:
  std::vector<std::vector<int>> flows_;
  std::vector<int> cursor_;
};

}  // namespace

std::unique_ptr<TrafficPattern> make_stencil3d(int n) {
  if (n < 8) throw std::invalid_argument("make_stencil3d: need >= 8 endpoints");
  return std::make_unique<Stencil3dTraffic>(n);
}

std::unique_ptr<TrafficPattern> make_trace(
    int n, const std::vector<std::pair<int, int>>& flows) {
  if (n < 2) throw std::invalid_argument("make_trace: need >= 2 endpoints");
  return std::make_unique<TraceTraffic>(n, flows);
}

std::unique_ptr<TrafficPattern> make_uniform(int n) {
  if (n < 2) throw std::invalid_argument("make_uniform: need >= 2 endpoints");
  return std::make_unique<UniformTraffic>(n);
}
std::unique_ptr<TrafficPattern> make_shuffle(int n) {
  return std::make_unique<ShuffleTraffic>(n);
}
std::unique_ptr<TrafficPattern> make_bit_reversal(int n) {
  return std::make_unique<BitReversalTraffic>(n);
}
std::unique_ptr<TrafficPattern> make_bit_complement(int n) {
  return std::make_unique<BitComplementTraffic>(n);
}
std::unique_ptr<TrafficPattern> make_shift(int n) {
  if (n < 2) throw std::invalid_argument("make_shift: need >= 2 endpoints");
  return std::make_unique<ShiftTraffic>(n);
}
std::unique_ptr<TrafficPattern> make_worst_case_sf(const Topology& topo) {
  return std::make_unique<WorstCaseSfTraffic>(topo);
}
std::unique_ptr<TrafficPattern> make_worst_case_df(const Dragonfly& topo) {
  return std::make_unique<WorstCaseDfTraffic>(topo);
}
std::unique_ptr<TrafficPattern> make_worst_case_ft(const FatTree3& topo) {
  return std::make_unique<WorstCaseFtTraffic>(topo);
}

namespace {

/// Single source of truth for the traffic registry: name, the topology
/// family it is restricted to ("" = any), and the factory. make_traffic,
/// traffic_names and traffic_requirement all derive from this table.
struct TrafficEntry {
  const char* name;
  const char* requirement;
  std::unique_ptr<TrafficPattern> (*make)(const Topology&);
};

constexpr TrafficEntry kTrafficRegistry[] = {
    {"bitcomp", "",
     [](const Topology& t) { return make_bit_complement(t.num_endpoints()); }},
    {"bitrev", "",
     [](const Topology& t) { return make_bit_reversal(t.num_endpoints()); }},
    {"shift", "",
     [](const Topology& t) { return make_shift(t.num_endpoints()); }},
    {"shuffle", "",
     [](const Topology& t) { return make_shuffle(t.num_endpoints()); }},
    {"stencil3d", "",
     [](const Topology& t) { return make_stencil3d(t.num_endpoints()); }},
    {"uniform", "",
     [](const Topology& t) { return make_uniform(t.num_endpoints()); }},
    {"worst-df", "dragonfly",
     [](const Topology& t) {
       // make_traffic has already enforced `requirement`
       return make_worst_case_df(dynamic_cast<const Dragonfly&>(t));
     }},
    {"worst-ft", "fattree",
     [](const Topology& t) {
       return make_worst_case_ft(dynamic_cast<const FatTree3&>(t));
     }},
    {"worst-sf", "",
     [](const Topology& t) { return make_worst_case_sf(t); }},
    {"worstcase", "",
     [](const Topology& t) -> std::unique_ptr<TrafficPattern> {
       if (const auto* df = dynamic_cast<const Dragonfly*>(&t))
         return make_worst_case_df(*df);
       if (const auto* ft = dynamic_cast<const FatTree3*>(&t))
         return make_worst_case_ft(*ft);
       return make_worst_case_sf(t);
     }},
};

}  // namespace

std::unique_ptr<TrafficPattern> make_traffic(const std::string& name,
                                             const Topology& topo) {
  for (const auto& entry : kTrafficRegistry) {
    if (name != entry.name) continue;
    // Central requirement check, driven by the same column cross() filters
    // on, so the factories can downcast unconditionally.
    if (*entry.requirement &&
        entry.requirement != topo::family_of(topo)) {
      throw std::invalid_argument("traffic \"" + name + "\" requires a " +
                                  entry.requirement + " topology");
    }
    return entry.make(topo);
  }
  throw std::invalid_argument("unknown traffic pattern \"" + name + "\"");
}

std::vector<std::string> traffic_names() {
  std::vector<std::string> names;
  for (const auto& entry : kTrafficRegistry) names.push_back(entry.name);
  return names;
}

std::string traffic_requirement(const std::string& name) {
  for (const auto& entry : kTrafficRegistry) {
    if (name == entry.name) return entry.requirement;
  }
  return "";
}

}  // namespace slimfly::sim
