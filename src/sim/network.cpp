#include "sim/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace slimfly::sim {

namespace {
// Distinguishes router streams from the endpoint streams seeded in
// Injector::init() under the same base seed.
constexpr std::uint64_t kRouterStreamTag = 0x51a3e8d1;

std::size_t resolve_intra_threads(int requested, int num_routers) {
  std::size_t w;
  if (requested > 1) {
    w = static_cast<std::size_t>(requested);
  } else if (requested == 0) {
    w = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  } else {
    w = 1;  // 1 and any nonsensical negative mean sequential
  }
  return std::max<std::size_t>(
      1, std::min(w, static_cast<std::size_t>(num_routers)));
}
}  // namespace

Network::Network(const Topology& topo, RoutingAlgorithm& routing,
                 TrafficPattern& traffic, const SimConfig& config,
                 double offered_load)
    : topo_(topo),
      routing_(routing),
      traffic_(traffic),
      config_(config),
      load_(offered_load) {
  if (config_.num_vcs < routing_.max_hops()) {
    throw std::invalid_argument(
        "Network: num_vcs must cover the routing algorithm's max hops (" +
        std::to_string(routing_.max_hops()) + " needed)");
  }
  if (config_.buffer_per_vc() < 1) {
    throw std::invalid_argument("Network: buffer_per_port too small for num_vcs");
  }
  shards_ = resolve_intra_threads(config_.intra_threads, topo_.num_routers());
  wire();
  for (int e = 0; e < topo_.num_endpoints(); ++e) {
    if (traffic_.is_active(e)) ++active_endpoints_;
  }
}

void Network::wire() {
  const Graph& g = topo_.graph();
  int nr = topo_.num_routers();
  routers_ = make_routers(nr);
  requests_.resize(static_cast<std::size_t>(nr));
  int buf_vc = config_.buffer_per_vc();

  for (int r = 0; r < nr; ++r) {
    RouterState& router = routers_[static_cast<std::size_t>(r)];
    int deg = g.degree(r);
    int eps = topo_.endpoints_at(r);
    router.network_ports = deg;
    router.inputs.resize(static_cast<std::size_t>(deg + eps));
    router.outputs.resize(static_cast<std::size_t>(deg + eps));
    for (auto& in : router.inputs) {
      in.vcs.assign(static_cast<std::size_t>(config_.num_vcs), VcBuffer(buf_vc));
    }
    const auto& nbrs = g.neighbors(r);
    for (int i = 0; i < deg; ++i) {
      OutputPort& out = router.outputs[static_cast<std::size_t>(i)];
      out.dest_router = nbrs[static_cast<std::size_t>(i)];
      out.initial_credit = buf_vc;
      out.credits.assign(static_cast<std::size_t>(config_.num_vcs), buf_vc);
    }
    for (int j = 0; j < eps; ++j) {
      OutputPort& out = router.outputs[static_cast<std::size_t>(deg + j)];
      out.dest_router = -1;
      out.dest_endpoint = topo_.first_endpoint(r) + j;
      // Endpoints always consume: model as unbounded credit.
      out.initial_credit = 1 << 28;
      out.credits.assign(static_cast<std::size_t>(config_.num_vcs), 1 << 28);
    }
  }
  // Reverse port wiring: input port i of r receives from neighbour i. Both
  // directions are recorded so arrivals can pull (input -> feeding output)
  // and allocation can return credits (input -> upstream credit line).
  for (int r = 0; r < nr; ++r) {
    const auto& nbrs = g.neighbors(r);
    for (int i = 0; i < static_cast<int>(nbrs.size()); ++i) {
      int u = nbrs[static_cast<std::size_t>(i)];
      int uport = port_of_neighbor(u, r);
      routers_[static_cast<std::size_t>(r)].outputs[static_cast<std::size_t>(i)]
          .dest_port = uport;
      InputPort& in =
          routers_[static_cast<std::size_t>(r)].inputs[static_cast<std::size_t>(i)];
      in.src_router = u;
      in.src_port = uport;
    }
  }
  injector_.init(topo_.num_endpoints(), buf_vc, config_.seed);

  router_rngs_.clear();
  router_rngs_.reserve(static_cast<std::size_t>(nr));
  for (int r = 0; r < nr; ++r) {
    router_rngs_.push_back(
        rng_stream(config_.seed, kRouterStreamTag, static_cast<std::uint64_t>(r)));
  }

  // Contiguous router shards (endpoints follow their router). The split is
  // balanced but otherwise arbitrary: results do not depend on it.
  shard_ranges_.clear();
  for (std::size_t s = 0; s < shards_; ++s) {
    int lo = static_cast<int>(s * static_cast<std::size_t>(nr) / shards_);
    int hi = static_cast<int>((s + 1) * static_cast<std::size_t>(nr) / shards_);
    shard_ranges_.emplace_back(lo, hi);
  }
  shard_totals_.assign(shards_, ShardTotals{});
  shard_errors_.assign(shards_, nullptr);
}

int Network::port_of_neighbor(int router, int neighbor) const {
  const auto& nbrs = topo_.graph().neighbors(router);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), neighbor);
  if (it == nbrs.end() || *it != neighbor) {
    throw std::invalid_argument("port_of_neighbor: not adjacent");
  }
  return static_cast<int>(it - nbrs.begin());
}

void Network::phase_arrivals(std::size_t shard) {
  auto [lo, hi] = shard_ranges_[shard];
  for (int r = lo; r < hi; ++r) {
    RouterState& router = routers_[static_cast<std::size_t>(r)];
    // Credits coming back from downstream consumption of my outputs.
    for (auto& out : router.outputs) {
      while (auto vc = out.credit_return.pop_ready(cycle_)) {
        ++out.credits[static_cast<std::size_t>(*vc)];
      }
    }
    // Pull flits whose channel ends at one of my inputs (this shard is the
    // sole consumer of each of those channels).
    for (int i = 0; i < router.network_ports; ++i) {
      InputPort& in = router.inputs[static_cast<std::size_t>(i)];
      OutputPort& feed = routers_[static_cast<std::size_t>(in.src_router)]
                             .outputs[static_cast<std::size_t>(in.src_port)];
      if (auto pkt = feed.channel.pop_ready(cycle_)) {
        int vc = pkt->wire_vc;  // VC used on the link just traversed
        in.vcs[static_cast<std::size_t>(vc)].push(std::move(*pkt));
      }
    }
    // My ejection channels complete deliveries to my endpoints.
    for (std::size_t p = static_cast<std::size_t>(router.network_ports);
         p < router.outputs.size(); ++p) {
      if (auto pkt = router.outputs[p].channel.pop_ready(cycle_)) {
        deliver(shard, std::move(*pkt));
      }
    }
    // Uplink credits for my endpoints.
    for (int j = 0; j < topo_.endpoints_at(r); ++j) {
      auto& ep = injector_.endpoint(topo_.first_endpoint(r) + j);
      while (auto c = ep.credit_return.pop_ready(cycle_)) {
        (void)c;
        ++ep.credits;
      }
    }
  }
}

void Network::phase_injection(std::size_t shard) {
  bool in_measurement = cycle_ >= config_.warmup_cycles &&
                        cycle_ < config_.warmup_cycles + config_.measure_cycles;
  auto [lo, hi] = shard_ranges_[shard];
  for (int r = lo; r < hi; ++r) {
    for (int j = 0; j < topo_.endpoints_at(r); ++j) {
      int e = topo_.first_endpoint(r) + j;
      auto& ep = injector_.endpoint(e);
      // Bernoulli generation, drawing only from the endpoint's own stream.
      if (ep.rng.bernoulli(load_)) {
        int dst = traffic_.destination(e, ep.rng);
        if (dst >= 0) {
          Packet pkt;
          // Unique and schedule-independent: the endpoint's sequence number
          // strided by endpoint count.
          pkt.id = ep.next_seq++ * topo_.num_endpoints() + e;
          pkt.src_endpoint = e;
          pkt.dst_endpoint = dst;
          pkt.src_router = r;
          pkt.dst_router = topo_.endpoint_router(dst);
          pkt.t_generated = cycle_;
          pkt.measured = in_measurement;
          if (pkt.measured) ++shard_totals_[shard].measured_generated;
          ep.source_queue.push_back(std::move(pkt));
        }
      }
      // Uplink: move the head of the source queue into the router's
      // injection buffer (VC 0) when a credit is available. Routing happens
      // here so UGAL sees the queue state at the moment of injection; that
      // state is frozen for the whole phase, so the endpoint order cannot
      // influence the decision.
      if (!ep.source_queue.empty() && ep.credits > 0) {
        Packet pkt = std::move(ep.source_queue.front());
        ep.source_queue.pop_front();
        --ep.credits;
        pkt.t_injected = cycle_;
        routing_.route_at_injection(*this, pkt, ep.rng);
        int port = routers_[static_cast<std::size_t>(r)].network_ports + j;
        routers_[static_cast<std::size_t>(r)]
            .inputs[static_cast<std::size_t>(port)]
            .vcs[0]
            .push(std::move(pkt));
      }
    }
  }
}

void Network::phase_allocation(std::size_t shard) {
  auto [lo, hi] = shard_ranges_[shard];
  // Both internal-speedup iterations run back-to-back per router: routers
  // exchange nothing during allocation (credits pushed upstream carry
  // credit_delay >= 1, so they surface in a later cycle's arrivals), which
  // makes the per-router ordering equivalent to the per-iteration one.
  for (int r = lo; r < hi; ++r) {
    RouterState& router = routers_[static_cast<std::size_t>(r)];
    int num_inputs = static_cast<int>(router.inputs.size());
    int num_outputs = static_cast<int>(router.outputs.size());
    for (int iter = 0; iter < config_.alloc_iterations; ++iter) {
      // Collect head-of-line requests, bucketed by requested output port so
      // each output only scans its own candidates.
      auto& by_output = requests_[static_cast<std::size_t>(r)];
      if (by_output.size() != static_cast<std::size_t>(num_outputs)) {
        by_output.resize(static_cast<std::size_t>(num_outputs));
      }
      for (auto& bucket : by_output) bucket.clear();
      for (int ip = 0; ip < num_inputs; ++ip) {
        for (int vc = 0; vc < config_.num_vcs; ++vc) {
          const VcBuffer& buf = router.inputs[static_cast<std::size_t>(ip)]
                                    .vcs[static_cast<std::size_t>(vc)];
          if (buf.empty()) continue;
          const Packet& pkt = buf.front();
          int next = routing_.next_router(*this, pkt, r);
          int op;
          int vc_link;
          if (next < 0) {
            op = router.network_ports + (pkt.dst_endpoint - topo_.first_endpoint(r));
            vc_link = 0;  // ejection ports have unbounded credit on VC 0
          } else {
            op = port_of_neighbor(r, next);
            vc_link = routing_.link_vc(pkt);
          }
          by_output[static_cast<std::size_t>(op)].push_back(
              Request{ip, vc, op, vc_link});
        }
      }
      // Output-major separable allocation with per-input grant limit 1.
      std::vector<bool> input_granted(static_cast<std::size_t>(num_inputs), false);
      for (int op = 0; op < num_outputs; ++op) {
        OutputPort& out = router.outputs[static_cast<std::size_t>(op)];
        if (static_cast<int>(out.staging.size()) >= config_.output_staging) continue;
        // Round-robin over this output's candidates.
        auto& requests = by_output[static_cast<std::size_t>(op)];
        int n_req = static_cast<int>(requests.size());
        if (n_req == 0) continue;
        int start = out.rr_pointer % n_req;
        for (int k = 0; k < n_req; ++k) {
          const Request& req = requests[static_cast<std::size_t>((start + k) % n_req)];
          if (input_granted[static_cast<std::size_t>(req.input_port)]) continue;
          if (out.credits[static_cast<std::size_t>(req.vc_link)] <= 0) continue;
          VcBuffer& buf = router.inputs[static_cast<std::size_t>(req.input_port)]
                              .vcs[static_cast<std::size_t>(req.vc)];
          if (buf.empty()) continue;  // granted earlier this cycle
          Packet pkt = buf.pop();
          --out.credits[static_cast<std::size_t>(req.vc_link)];
          pkt.wire_vc = req.vc_link;
          ++pkt.hop;
          out.staging.push_back(std::move(pkt));
          input_granted[static_cast<std::size_t>(req.input_port)] = true;
          out.rr_pointer = (start + k + 1) % n_req;
          // Return the freed buffer slot upstream. This shard is the sole
          // producer of that credit_return line (one downstream input per
          // output port), and credit_delay keeps the push invisible until a
          // later cycle's arrivals.
          if (req.input_port < router.network_ports) {
            const InputPort& in =
                router.inputs[static_cast<std::size_t>(req.input_port)];
            routers_[static_cast<std::size_t>(in.src_router)]
                .outputs[static_cast<std::size_t>(in.src_port)]
                .credit_return.push(cycle_ + config_.credit_delay, req.vc);
          } else {
            int endpoint = topo_.first_endpoint(r) +
                           (req.input_port - router.network_ports);
            injector_.endpoint(endpoint)
                .credit_return.push(cycle_ + config_.credit_delay, 0);
          }
          break;
        }
      }
    }
  }
}

void Network::phase_transmission(std::size_t shard) {
  std::int64_t ready = cycle_ + config_.channel_latency + config_.router_pipeline;
  auto [lo, hi] = shard_ranges_[shard];
  for (int r = lo; r < hi; ++r) {
    for (auto& out : routers_[static_cast<std::size_t>(r)].outputs) {
      if (out.staging.empty()) continue;
      out.channel.push(ready, std::move(out.staging.front()));
      out.staging.pop_front();
    }
  }
}

void Network::deliver(std::size_t shard, Packet pkt) {
  ShardTotals& totals = shard_totals_[shard];
  totals.stats.record_delivery(cycle_ - pkt.t_generated, cycle_ - pkt.t_injected,
                               pkt.measured);
  if (cycle_ >= config_.warmup_cycles &&
      cycle_ < config_.warmup_cycles + config_.measure_cycles) {
    ++totals.delivered_in_window;
  }
}

void Network::sync() {
  if (barrier_) barrier_->arrive_and_wait();
}

void Network::step_shard(std::size_t shard) {
  // A phase that throws poisons only its shard; the shard keeps arriving at
  // the remaining barriers so its peers never hang, and step() rethrows.
  auto guarded = [&](void (Network::*phase)(std::size_t)) {
    if (shard_errors_[shard]) return;
    try {
      (this->*phase)(shard);
    } catch (...) {
      shard_errors_[shard] = std::current_exception();
    }
  };
  guarded(&Network::phase_arrivals);
  sync();
  guarded(&Network::phase_injection);
  sync();
  guarded(&Network::phase_allocation);
  sync();
  guarded(&Network::phase_transmission);
}

void Network::step() {
  std::fill(shard_errors_.begin(), shard_errors_.end(), nullptr);
  if (shards_ == 1) {
    step_shard(0);
  } else {
    if (!pool_) {
      // Dedicated team: shards_ - 1 pool workers plus the calling thread.
      // Dedicated, because the region's barriers require every worker to be
      // scheduled (util/threadpool.hpp).
      pool_ = std::make_unique<ThreadPool>(shards_ - 1);
      barrier_ = std::make_unique<Barrier>(shards_);
    }
    run_region(*pool_, shards_, [this](std::size_t w) { step_shard(w); });
  }
  for (auto& err : shard_errors_) {
    if (err) std::rethrow_exception(err);
  }
  ++cycle_;
  stats_dirty_ = true;
}

const Stats& Network::stats() const {
  if (stats_dirty_) {
    merged_stats_ = Stats{};
    std::int64_t generated = 0;
    for (const auto& totals : shard_totals_) {
      merged_stats_.merge(totals.stats);
      generated += totals.measured_generated;
    }
    merged_stats_.set_measured_generated(generated);
    stats_dirty_ = false;
  }
  return merged_stats_;
}

bool Network::all_measured_delivered() const {
  std::int64_t generated = 0;
  std::int64_t delivered = 0;
  for (const auto& totals : shard_totals_) {
    generated += totals.measured_generated;
    delivered += totals.stats.measured_delivered();
  }
  return delivered >= generated;
}

std::int64_t Network::delivered_in_window() const {
  std::int64_t total = 0;
  for (const auto& totals : shard_totals_) total += totals.delivered_in_window;
  return total;
}

std::int64_t Network::flits_in_flight() const {
  std::int64_t total = 0;
  for (const auto& router : routers_) {
    for (const auto& in : router.inputs) total += in.occupancy();
    for (const auto& out : router.outputs) {
      total += static_cast<std::int64_t>(out.staging.size() + out.channel.size());
    }
  }
  return total;
}

SimResult Network::run() {
  std::int64_t horizon = config_.warmup_cycles + config_.measure_cycles;
  while (cycle_ < horizon) step();
  std::int64_t drain_end = horizon + config_.drain_cycles;
  while (!all_measured_delivered() && cycle_ < drain_end) step();

  const Stats& merged = stats();
  SimResult result;
  result.offered_load = load_;
  result.avg_latency = merged.average_latency();
  result.avg_network_latency = merged.average_network_latency();
  result.p99_latency = merged.percentile_latency(0.99);
  result.delivered = merged.total_delivered();
  // Accepted throughput counts ejections *during* the measurement window
  // (Dally & Towles methodology); packets delivered later in the drain
  // improve latency statistics but not throughput.
  double denom = static_cast<double>(active_endpoints_) *
                 static_cast<double>(config_.measure_cycles);
  result.accepted_load =
      denom > 0 ? static_cast<double>(delivered_in_window()) / denom : 0.0;
  result.saturated = !merged.all_measured_delivered() ||
                     result.avg_latency > config_.latency_cap;
  return result;
}

}  // namespace slimfly::sim
