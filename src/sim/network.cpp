#include "sim/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace slimfly::sim {

Network::Network(const Topology& topo, RoutingAlgorithm& routing,
                 TrafficPattern& traffic, const SimConfig& config,
                 double offered_load)
    : topo_(topo),
      routing_(routing),
      traffic_(traffic),
      config_(config),
      load_(offered_load),
      rng_(config.seed, 0xfeedULL) {
  if (config_.num_vcs < routing_.max_hops()) {
    throw std::invalid_argument(
        "Network: num_vcs must cover the routing algorithm's max hops (" +
        std::to_string(routing_.max_hops()) + " needed)");
  }
  if (config_.buffer_per_vc() < 1) {
    throw std::invalid_argument("Network: buffer_per_port too small for num_vcs");
  }
  wire();
  for (int e = 0; e < topo_.num_endpoints(); ++e) {
    if (traffic_.is_active(e)) ++active_endpoints_;
  }
}

void Network::wire() {
  const Graph& g = topo_.graph();
  int nr = topo_.num_routers();
  routers_ = make_routers(nr);
  requests_.resize(static_cast<std::size_t>(nr));
  int buf_vc = config_.buffer_per_vc();

  for (int r = 0; r < nr; ++r) {
    RouterState& router = routers_[static_cast<std::size_t>(r)];
    int deg = g.degree(r);
    int eps = topo_.endpoints_at(r);
    router.network_ports = deg;
    router.inputs.resize(static_cast<std::size_t>(deg + eps));
    router.outputs.resize(static_cast<std::size_t>(deg + eps));
    for (auto& in : router.inputs) {
      in.vcs.assign(static_cast<std::size_t>(config_.num_vcs), VcBuffer(buf_vc));
    }
    const auto& nbrs = g.neighbors(r);
    for (int i = 0; i < deg; ++i) {
      OutputPort& out = router.outputs[static_cast<std::size_t>(i)];
      out.dest_router = nbrs[static_cast<std::size_t>(i)];
      out.initial_credit = buf_vc;
      out.credits.assign(static_cast<std::size_t>(config_.num_vcs), buf_vc);
    }
    for (int j = 0; j < eps; ++j) {
      OutputPort& out = router.outputs[static_cast<std::size_t>(deg + j)];
      out.dest_router = -1;
      out.dest_endpoint = topo_.first_endpoint(r) + j;
      // Endpoints always consume: model as unbounded credit.
      out.initial_credit = 1 << 28;
      out.credits.assign(static_cast<std::size_t>(config_.num_vcs), 1 << 28);
    }
  }
  // Reverse port wiring: input port i of r receives from neighbour i.
  for (int r = 0; r < nr; ++r) {
    const auto& nbrs = g.neighbors(r);
    for (int i = 0; i < static_cast<int>(nbrs.size()); ++i) {
      int u = nbrs[static_cast<std::size_t>(i)];
      routers_[static_cast<std::size_t>(r)].outputs[static_cast<std::size_t>(i)]
          .dest_port = port_of_neighbor(u, r);
    }
  }
  injector_.init(topo_.num_endpoints(), buf_vc);
}

int Network::port_of_neighbor(int router, int neighbor) const {
  const auto& nbrs = topo_.graph().neighbors(router);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), neighbor);
  if (it == nbrs.end() || *it != neighbor) {
    throw std::invalid_argument("port_of_neighbor: not adjacent");
  }
  return static_cast<int>(it - nbrs.begin());
}

void Network::do_arrivals() {
  for (auto& router : routers_) {
    for (auto& out : router.outputs) {
      // Credits coming back from downstream consumption.
      while (auto vc = out.credit_return.pop_ready(cycle_)) {
        ++out.credits[static_cast<std::size_t>(*vc)];
      }
      // Flits reaching the far end of the channel.
      if (auto pkt = out.channel.pop_ready(cycle_)) {
        if (out.dest_router < 0) {
          deliver(std::move(*pkt));
        } else {
          int vc = pkt->wire_vc;  // VC used on the link just traversed
          routers_[static_cast<std::size_t>(out.dest_router)]
              .inputs[static_cast<std::size_t>(out.dest_port)]
              .vcs[static_cast<std::size_t>(vc)]
              .push(std::move(*pkt));
        }
      }
    }
  }
  // Endpoint uplink credits.
  for (int e = 0; e < injector_.num_endpoints(); ++e) {
    auto& ep = injector_.endpoint(e);
    while (auto c = ep.credit_return.pop_ready(cycle_)) {
      (void)c;
      ++ep.credits;
    }
  }
}

void Network::do_injection() {
  bool in_measurement = cycle_ >= config_.warmup_cycles &&
                        cycle_ < config_.warmup_cycles + config_.measure_cycles;
  for (int e = 0; e < topo_.num_endpoints(); ++e) {
    auto& ep = injector_.endpoint(e);
    // Bernoulli generation.
    if (rng_.bernoulli(load_)) {
      int dst = traffic_.destination(e, rng_);
      if (dst >= 0) {
        Packet pkt;
        pkt.id = next_packet_id_++;
        pkt.src_endpoint = e;
        pkt.dst_endpoint = dst;
        pkt.src_router = topo_.endpoint_router(e);
        pkt.dst_router = topo_.endpoint_router(dst);
        pkt.t_generated = cycle_;
        pkt.measured = in_measurement;
        if (pkt.measured) ++measured_generated_;
        ep.source_queue.push_back(std::move(pkt));
      }
    }
    // Uplink: move the head of the source queue into the router's injection
    // buffer (VC 0) when a credit is available. Routing happens here so
    // UGAL sees the queue state at the moment of injection.
    if (!ep.source_queue.empty() && ep.credits > 0) {
      Packet pkt = std::move(ep.source_queue.front());
      ep.source_queue.pop_front();
      --ep.credits;
      pkt.t_injected = cycle_;
      routing_.route_at_injection(*this, pkt, rng_);
      int r = pkt.src_router;
      int port = routers_[static_cast<std::size_t>(r)].network_ports +
                 (e - topo_.first_endpoint(r));
      routers_[static_cast<std::size_t>(r)]
          .inputs[static_cast<std::size_t>(port)]
          .vcs[0]
          .push(std::move(pkt));
    }
  }
}

void Network::do_allocation() {
  int nr = topo_.num_routers();
  for (int iter = 0; iter < config_.alloc_iterations; ++iter) {
    for (int r = 0; r < nr; ++r) {
      RouterState& router = routers_[static_cast<std::size_t>(r)];
      int num_inputs = static_cast<int>(router.inputs.size());
      int num_outputs = static_cast<int>(router.outputs.size());
      // Collect head-of-line requests, bucketed by requested output port so
      // each output only scans its own candidates.
      auto& by_output = requests_[static_cast<std::size_t>(r)];
      if (by_output.size() != static_cast<std::size_t>(num_outputs)) {
        by_output.resize(static_cast<std::size_t>(num_outputs));
      }
      for (auto& bucket : by_output) bucket.clear();
      for (int ip = 0; ip < num_inputs; ++ip) {
        for (int vc = 0; vc < config_.num_vcs; ++vc) {
          const VcBuffer& buf = router.inputs[static_cast<std::size_t>(ip)]
                                    .vcs[static_cast<std::size_t>(vc)];
          if (buf.empty()) continue;
          const Packet& pkt = buf.front();
          int next = routing_.next_router(*this, pkt, r);
          int op;
          int vc_link;
          if (next < 0) {
            op = router.network_ports + (pkt.dst_endpoint - topo_.first_endpoint(r));
            vc_link = 0;  // ejection ports have unbounded credit on VC 0
          } else {
            op = port_of_neighbor(r, next);
            vc_link = routing_.link_vc(pkt);
          }
          by_output[static_cast<std::size_t>(op)].push_back(
              Request{ip, vc, op, vc_link});
        }
      }
      // Output-major separable allocation with per-input grant limit 1.
      std::vector<bool> input_granted(static_cast<std::size_t>(num_inputs), false);
      for (int op = 0; op < num_outputs; ++op) {
        OutputPort& out = router.outputs[static_cast<std::size_t>(op)];
        if (static_cast<int>(out.staging.size()) >= config_.output_staging) continue;
        // Round-robin over this output's candidates.
        auto& requests = by_output[static_cast<std::size_t>(op)];
        int n_req = static_cast<int>(requests.size());
        if (n_req == 0) continue;
        int start = out.rr_pointer % n_req;
        for (int k = 0; k < n_req; ++k) {
          const Request& req = requests[static_cast<std::size_t>((start + k) % n_req)];
          if (input_granted[static_cast<std::size_t>(req.input_port)]) continue;
          if (out.credits[static_cast<std::size_t>(req.vc_link)] <= 0) continue;
          VcBuffer& buf = router.inputs[static_cast<std::size_t>(req.input_port)]
                              .vcs[static_cast<std::size_t>(req.vc)];
          if (buf.empty()) continue;  // granted earlier this cycle
          Packet pkt = buf.pop();
          --out.credits[static_cast<std::size_t>(req.vc_link)];
          pkt.wire_vc = req.vc_link;
          ++pkt.hop;
          out.staging.push_back(std::move(pkt));
          input_granted[static_cast<std::size_t>(req.input_port)] = true;
          out.rr_pointer = (start + k + 1) % n_req;
          // Return the freed buffer slot upstream.
          if (req.input_port < router.network_ports) {
            int u = topo_.graph().neighbors(r)[static_cast<std::size_t>(req.input_port)];
            int uport = port_of_neighbor(u, r);
            routers_[static_cast<std::size_t>(u)]
                .outputs[static_cast<std::size_t>(uport)]
                .credit_return.push(cycle_ + config_.credit_delay, req.vc);
          } else {
            int endpoint = topo_.first_endpoint(r) +
                           (req.input_port - router.network_ports);
            injector_.endpoint(endpoint)
                .credit_return.push(cycle_ + config_.credit_delay, 0);
          }
          break;
        }
      }
    }
  }
}

void Network::do_transmission() {
  std::int64_t ready = cycle_ + config_.channel_latency + config_.router_pipeline;
  for (auto& router : routers_) {
    for (auto& out : router.outputs) {
      if (out.staging.empty()) continue;
      out.channel.push(ready, std::move(out.staging.front()));
      out.staging.pop_front();
    }
  }
}

void Network::deliver(Packet pkt) {
  stats_.record_delivery(cycle_ - pkt.t_generated, cycle_ - pkt.t_injected,
                         pkt.measured);
  if (cycle_ >= config_.warmup_cycles &&
      cycle_ < config_.warmup_cycles + config_.measure_cycles) {
    ++delivered_in_window_;
  }
}

void Network::step() {
  do_arrivals();
  do_injection();
  do_allocation();
  do_transmission();
  ++cycle_;
}

std::int64_t Network::flits_in_flight() const {
  std::int64_t total = 0;
  for (const auto& router : routers_) {
    for (const auto& in : router.inputs) total += in.occupancy();
    for (const auto& out : router.outputs) {
      total += static_cast<std::int64_t>(out.staging.size() + out.channel.size());
    }
  }
  return total;
}

SimResult Network::run() {
  std::int64_t horizon = config_.warmup_cycles + config_.measure_cycles;
  while (cycle_ < horizon) step();
  stats_.set_measured_generated(measured_generated_);
  std::int64_t drain_end = horizon + config_.drain_cycles;
  while (!stats_.all_measured_delivered() && cycle_ < drain_end) step();

  SimResult result;
  result.offered_load = load_;
  result.avg_latency = stats_.average_latency();
  result.avg_network_latency = stats_.average_network_latency();
  result.p99_latency = stats_.percentile_latency(0.99);
  result.delivered = stats_.total_delivered();
  // Accepted throughput counts ejections *during* the measurement window
  // (Dally & Towles methodology); packets delivered later in the drain
  // improve latency statistics but not throughput.
  double denom = static_cast<double>(active_endpoints_) *
                 static_cast<double>(config_.measure_cycles);
  result.accepted_load =
      denom > 0 ? static_cast<double>(delivered_in_window_) / denom : 0.0;
  result.saturated = !stats_.all_measured_delivered() ||
                     result.avg_latency > config_.latency_cap;
  return result;
}

}  // namespace slimfly::sim
