#include "sim/network.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <thread>

namespace slimfly::sim {

namespace {
// Distinguishes router streams from the endpoint streams seeded in
// Injector::init() under the same base seed.
constexpr std::uint64_t kRouterStreamTag = 0x51a3e8d1;

// Index of the lowest set bit; callers guarantee mask != 0.
inline int ctz64(std::uint64_t mask) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_ctzll(mask);
#else
  int i = 0;
  while (!(mask & 1)) {
    mask >>= 1;
    ++i;
  }
  return i;
#endif
}

// EndpointState::next_arrival sentinels (active engine only).
constexpr std::int64_t kUnplannedArrival = -1;  // backlog mode: draw live
constexpr std::int64_t kNeverArrives = std::numeric_limits<std::int64_t>::max();

std::size_t resolve_intra_threads(int requested, int num_routers) {
  std::size_t w;
  if (requested > 1) {
    w = static_cast<std::size_t>(requested);
  } else if (requested == 0) {
    w = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  } else {
    w = 1;  // 1 and any nonsensical negative mean sequential
  }
  return std::max<std::size_t>(
      1, std::min(w, static_cast<std::size_t>(num_routers)));
}
}  // namespace

Network::Network(const Topology& topo, RoutingAlgorithm& routing,
                 TrafficPattern& traffic, const SimConfig& config,
                 double offered_load)
    : topo_(topo),
      routing_(routing),
      traffic_(traffic),
      config_(config),
      load_(offered_load) {
  if (config_.num_vcs < routing_.max_hops()) {
    throw std::invalid_argument(
        "Network: num_vcs must cover the routing algorithm's max hops (" +
        std::to_string(routing_.max_hops()) + " needed)");
  }
  if (config_.num_vcs > 64) {
    throw std::invalid_argument(
        "Network: num_vcs above 64 is unsupported (the per-input VC "
        "occupancy bitmask is 64 bits wide)");
  }
  // Margin: credit/ejection event lines store READY cycles (cycle + delay)
  // in 32-bit slots (sim/router.hpp CreditLine), so the horizon must leave
  // headroom for the largest delay any push adds to cycle_.
  const std::int64_t horizon_margin =
      static_cast<std::int64_t>(config_.channel_latency) +
      config_.router_pipeline + config_.output_staging + config_.credit_delay +
      2;
  if (config_.warmup_cycles + config_.measure_cycles + config_.drain_cycles >
      static_cast<std::int64_t>(std::numeric_limits<std::int32_t>::max()) -
          horizon_margin) {
    throw std::invalid_argument(
        "Network: warmup+measure+drain cycles exceed 2^31-1 (packet "
        "timestamps and event-line ready cycles are 32-bit cycle counts)");
  }
  if (topo_.num_routers() > 0x10000) {
    throw std::invalid_argument(
        "Network: more than 65536 routers is unsupported (packet router "
        "ids are 16-bit; the O(n^2) tables would be infeasible anyway)");
  }
  if (config_.buffer_per_vc() < 1) {
    throw std::invalid_argument("Network: buffer_per_port too small for num_vcs");
  }
  shards_ = resolve_intra_threads(config_.intra_threads, topo_.num_routers());
  team_ = shards_;
  if (config_.team_provider) team_provider_ = config_.team_provider;
  wire();
  for (int e = 0; e < topo_.num_endpoints(); ++e) {
    if (traffic_.is_active(e)) ++active_endpoints_;
  }
  // ---- workload layer: cache the pattern's flags and preallocate every
  // container the steady-state loop will touch (before init_active, whose
  // initial wake/plan pass depends on traffic_self_clocked_).
  traffic_modulated_ = traffic_.modulates_rate();
  traffic_self_clocked_ = traffic_.self_clocked();
  stats_window_ = config_.stats_window;
  if (stats_window_ < 0) {
    throw std::invalid_argument("Network: stats_window must be >= 0");
  }
  if (stats_window_ > 0) {
    const std::int64_t total = config_.warmup_cycles + config_.measure_cycles +
                               config_.drain_cycles;
    const std::int64_t count =
        total > 0 ? (total - 1) / stats_window_ + 1 : 1;
    if (count > (std::int64_t{1} << 22)) {
      throw std::invalid_argument(
          "Network: stats_window " + std::to_string(stats_window_) + " needs " +
          std::to_string(count) +
          " window rows (cap 4194304) — widen the window");
    }
    for (auto& totals : shard_totals_) {
      totals.windows.assign(static_cast<std::size_t>(count), WindowStats{});
    }
  }
  if (traffic_self_clocked_) {
    // Per cycle a shard can complete at most as many deliveries as its
    // ejection lines hold, so that sum bounds the outbox high-water mark.
    completion_outbox_.resize(shards_);
    for (std::size_t s = 0; s < shards_; ++s) {
      std::size_t cap = 0;
      for (int r = shard_ranges_[s].first; r < shard_ranges_[s].second; ++r) {
        cap += routers_[static_cast<std::size_t>(r)].ejection.capacity();
      }
      completion_outbox_[s].reserve(cap);
    }
    unlocked_scratch_.reserve(traffic_.completion_fanout());
  }
  if (config_.engine == StepEngine::Active) init_active();
}

void Network::wire() {
  const Graph& g = topo_.graph();
  int nr = topo_.num_routers();
  num_routers_ = nr;
  routers_ = make_routers(nr);
  int buf_vc = config_.buffer_per_vc();

  // ---- ring capacities, derived once from the flow-control config --------
  // Flit channel: <= 1 flit matures per cycle, head popped as soon as it
  // matures (arrivals), so occupancy never exceeds the wire+pipeline
  // latency; +2 is slack for the push-after-pop ordering within a cycle.
  // A network link's incoming line additionally holds its staged-but-not-
  // departed packets (grants write them in with their final ready time).
  const std::size_t chan_cap = static_cast<std::size_t>(
      config_.channel_latency + config_.router_pipeline + 2);
  const std::size_t incoming_cap =
      chan_cap + static_cast<std::size_t>(config_.output_staging);
  // Credit line: <= alloc_iterations pushes per cycle (one grant per input
  // port per iteration), fully drained once mature, so occupancy is
  // bounded by alloc_iterations x (credit_delay + 1).
  const std::size_t credit_cap = static_cast<std::size_t>(
      config_.alloc_iterations * (config_.credit_delay + 1) + 2);

  // Dense neighbor -> output-port table (the O(1) port_of_neighbor the
  // allocation loop and UGAL's path costing rely on). Built before the
  // reverse wiring below, which already uses the fast lookup. Networks
  // beyond the dense limit keep the binary-search fallback so per-point
  // memory stays near-linear.
  neighbor_port_.clear();
  if (nr <= kDenseNeighborPortLimit) {
    neighbor_port_.assign(
        static_cast<std::size_t>(nr) * static_cast<std::size_t>(nr), -1);
    for (int r = 0; r < nr; ++r) {
      const auto& nbrs = g.neighbors(r);
      for (int i = 0; i < static_cast<int>(nbrs.size()); ++i) {
        neighbor_port_[static_cast<std::size_t>(r) * static_cast<std::size_t>(nr) +
                       static_cast<std::size_t>(nbrs[static_cast<std::size_t>(i)])] =
            static_cast<std::int16_t>(i);
      }
    }
  }

  // ---- SoA arenas (docs/ARCHITECTURE.md, "hot-path memory layout") -------
  // Counting pass first: every variable-length per-router family gets one
  // capacity-exact arena for the whole fleet, then the per-router Spans are
  // carved out of it in router order. Ring payload slabs stay lazy (the
  // shared SlabPool), so the arenas hold exactly the always-resident state.
  const std::size_t nvc = static_cast<std::size_t>(config_.num_vcs);
  std::size_t total_ports = 0, total_vcs = 0, total_cache = 0, total_words = 0;
  for (int r = 0; r < nr; ++r) {
    const std::size_t deg = static_cast<std::size_t>(g.degree(r));
    const std::size_t eps = static_cast<std::size_t>(topo_.endpoints_at(r));
    const std::size_t ports = deg + eps;
    if (ports > 0x7fff) {
      throw std::invalid_argument(
          "Network: more than 32767 ports on one router is unsupported "
          "(port indices are 16-bit)");
    }
    total_ports += ports;
    // Injection inputs only ever buffer on VC 0 (both engines), so they
    // carry single-VC spans instead of num_vcs worst-case buffers.
    total_vcs += deg * nvc + eps;
    total_cache += ports * nvc;
    total_words += ports + (ports + 63) / 64;  // vc_occupied + staging_nonempty
  }
  input_arena_.clear();
  input_arena_.resize(total_ports);
  output_arena_.clear();
  output_arena_.resize(total_ports);
  vc_arena_.clear();
  vc_arena_.resize(total_vcs);
  credit_arena_.assign(total_ports * nvc, 0);
  mask_arena_.assign(total_words, 0);
  route_arena_.assign(total_cache, RouteDecision{});
  // Charge the pool's reserve float so a straggler ring growing late (in
  // the zero-allocation guard window) pops a shelf instead of allocating.
  slab_pool_.preload();

  std::size_t port_base = 0, vc_base = 0, credit_base = 0, word_base = 0,
              cache_base = 0;
  for (int r = 0; r < nr; ++r) {
    RouterState& router = routers_[static_cast<std::size_t>(r)];
    int deg = g.degree(r);
    int eps = topo_.endpoints_at(r);
    const std::size_t ports = static_cast<std::size_t>(deg + eps);
    router.network_ports = deg;
    router.inputs = Span<InputPort>(input_arena_.data() + port_base, ports);
    router.outputs = Span<OutputPort>(output_arena_.data() + port_base, ports);
    router.vc_occupied =
        Span<std::uint64_t>(mask_arena_.data() + word_base, ports);
    word_base += ports;
    router.staging_nonempty =
        Span<std::uint64_t>(mask_arena_.data() + word_base, (ports + 63) / 64);
    word_base += (ports + 63) / 64;
    router.route_cache =
        Span<RouteDecision>(route_arena_.data() + cache_base, ports * nvc);
    cache_base += ports * nvc;
    const auto& nbrs = g.neighbors(r);
    for (std::size_t i = 0; i < ports; ++i) {
      InputPort& in = router.inputs[i];
      const bool network_input = i < static_cast<std::size_t>(deg);
      const std::size_t nv = network_input ? nvc : 1;
      in.vcs = Span<VcBuffer>(vc_arena_.data() + vc_base, nv);
      vc_base += nv;
      for (auto& b : in.vcs) b.init(buf_vc, &slab_pool_);
      // Network inputs receive their link's flit line locally (see
      // sim/router.hpp): the upstream allocation phase fills it.
      in.incoming.init(network_input ? incoming_cap : 0, &slab_pool_);
    }
    // Aggregated per-router event lines: ejection flits (one push per
    // ejection port per cycle, mature after chan_cap-ish latency) and
    // endpoint uplink credits (<= alloc_iterations per endpoint per cycle,
    // credit_delay deep).
    router.ejection.init(static_cast<std::size_t>(eps) * chan_cap,
                         &slab_pool_);
    router.ep_credits.init(static_cast<std::size_t>(eps) * credit_cap,
                           &slab_pool_);
    for (int i = 0; i < deg + eps; ++i) {
      OutputPort& out = router.outputs[static_cast<std::size_t>(i)];
      // Network ports model staging as a counter (the packet itself is
      // written straight to the downstream incoming line at grant time);
      // only ejection ports store staged packets.
      out.staging.reset(
          i < deg ? 0 : static_cast<std::size_t>(config_.output_staging),
          &slab_pool_);
      out.credit_return.init(i < deg ? credit_cap : 0, &slab_pool_);
      out.credits = Span<int>(credit_arena_.data() + credit_base, nvc);
      credit_base += nvc;
      if (i < deg) {
        out.dest_router = nbrs[static_cast<std::size_t>(i)];
        out.initial_credit = buf_vc;
        for (int& c : out.credits) c = buf_vc;
      } else {
        out.dest_router = -1;
        out.dest_endpoint = topo_.first_endpoint(r) + (i - deg);
        // Endpoints always consume: model as unbounded credit.
        out.initial_credit = 1 << 28;
        for (int& c : out.credits) c = 1 << 28;
      }
    }
    port_base += ports;
  }
  // Reverse port wiring: input port i of r receives from neighbour i. Both
  // directions are recorded so arrivals can pull (input -> feeding output)
  // and allocation can return credits (input -> upstream credit line).
  for (int r = 0; r < nr; ++r) {
    const auto& nbrs = g.neighbors(r);
    for (int i = 0; i < static_cast<int>(nbrs.size()); ++i) {
      int u = nbrs[static_cast<std::size_t>(i)];
      int uport = port_of_neighbor(u, r);
      routers_[static_cast<std::size_t>(r)].outputs[static_cast<std::size_t>(i)]
          .dest_port = static_cast<std::int16_t>(uport);
      InputPort& in =
          routers_[static_cast<std::size_t>(r)].inputs[static_cast<std::size_t>(i)];
      in.src_router = u;
      in.src_port = static_cast<std::int16_t>(uport);
    }
  }
  injector_.init(topo_.num_endpoints(), buf_vc, config_.seed);

  routing_cacheable_ = routing_.cacheable_decisions();
  routing_follows_path_ = routing_.follows_packet_path();

  router_rngs_.clear();
  router_rngs_.reserve(static_cast<std::size_t>(nr));
  for (int r = 0; r < nr; ++r) {
    router_rngs_.push_back(
        rng_stream(config_.seed, kRouterStreamTag, static_cast<std::uint64_t>(r)));
  }

  // Contiguous router shards (endpoints follow their router). The split is
  // balanced but otherwise arbitrary: results do not depend on it.
  shard_ranges_.clear();
  for (std::size_t s = 0; s < shards_; ++s) {
    int lo = static_cast<int>(s * static_cast<std::size_t>(nr) / shards_);
    int hi = static_cast<int>((s + 1) * static_cast<std::size_t>(nr) / shards_);
    shard_ranges_.emplace_back(lo, hi);
  }
  shard_totals_.assign(shards_, ShardTotals{});
  shard_errors_.assign(shards_, nullptr);

  // Persistent allocation scratch, sized for the widest router per shard.
  alloc_scratch_.assign(shards_, AllocScratch{});
  for (std::size_t s = 0; s < shards_; ++s) {
    std::size_t max_reqs = 0, max_outputs = 0, max_inputs = 0;
    for (int r = shard_ranges_[s].first; r < shard_ranges_[s].second; ++r) {
      const RouterState& router = routers_[static_cast<std::size_t>(r)];
      max_inputs = std::max(max_inputs, router.inputs.size());
      max_outputs = std::max(max_outputs, router.outputs.size());
      max_reqs = std::max(max_reqs, router.inputs.size() *
                                        static_cast<std::size_t>(config_.num_vcs));
    }
    AllocScratch& scratch = alloc_scratch_[s];
    scratch.heads.resize(max_reqs);
    scratch.sorted.resize(max_reqs);
    scratch.offsets.resize(max_outputs + 1);
    scratch.granted.resize(max_inputs);
  }
}

/* SF_HOT */ RouteDecision Network::head_decision(const RouterState& router, int r,
                                     const Packet& pkt) const {
  int next;
  int vc_link;
  if (routing_follows_path_) {
    // Inline default next_router/link_vc: follow pkt.path with VC = hop
    // index, no virtual dispatch. Same sanity guards as the virtual
    // default — a corrupted hop/path must surface as a named error, not
    // as an out-of-range output port fed to the allocator.
    const std::size_t hop = static_cast<std::size_t>(pkt.hop);
    if (hop >= pkt.path.size()) {
      throw std::logic_error("head_decision: hop out of range");
    }
    if (pkt.path[hop] != r) {
      throw std::logic_error("head_decision: packet not on its path");
    }
    next = hop + 1 < pkt.path.size() ? pkt.path[hop + 1] : -1;
    vc_link = pkt.hop;
  } else {
    next = routing_.next_router(*this, pkt, r);
    vc_link = next < 0 ? 0 : routing_.link_vc(pkt);
  }
  int op;
  if (next < 0) {
    op = router.network_ports + (pkt.dst_endpoint - topo_.first_endpoint(r));
    vc_link = 0;  // ejection ports have unbounded credit on VC 0
  } else {
    op = port_of_neighbor(r, next);
  }
  return RouteDecision{static_cast<std::int16_t>(op),
                       static_cast<std::int16_t>(vc_link)};
}


void Network::throw_not_adjacent(int router, int neighbor) const {
  throw std::invalid_argument("port_of_neighbor: not adjacent (" +
                              std::to_string(router) + ", " +
                              std::to_string(neighbor) + ")");
}

/* SF_HOT */ int Network::port_of_neighbor_sparse(int router, int neighbor) const {
  const auto& nbrs = topo_.graph().neighbors(router);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), neighbor);
  if (it == nbrs.end() || *it != neighbor) throw_not_adjacent(router, neighbor);
  return static_cast<int>(it - nbrs.begin());
}

/* SF_HOT */ void Network::arrivals_router(std::size_t shard, int r) {
  RouterState& router = routers_[static_cast<std::size_t>(r)];
  // Credits coming back from downstream consumption of my outputs.
  // Network ports only: nothing ever returns credits to an ejection port
  // (endpoints always consume), so polling them would be pure overhead.
  for (int p = 0; p < router.network_ports; ++p) {
    OutputPort& out = router.outputs[static_cast<std::size_t>(p)];
    while (auto vc = out.credit_return.pop_ready(cycle_)) {
      ++out.credits[static_cast<std::size_t>(*vc)];
      --out.consumed;
    }
  }
  // Flit lines ending at my inputs live *in* my inputs, so the readiness
  // poll walks my own contiguous state; front_ready/drop_front is the
  // copy-free path: the packet is copied exactly once, line slot to VC
  // buffer slot.
  for (int i = 0; i < router.network_ports; ++i) {
    InputPort& in = router.inputs[static_cast<std::size_t>(i)];
    if (const Packet* pkt = in.incoming.front_ready(cycle_)) {
      int vc = pkt->wire_vc;  // VC used on the link just traversed
      in.vcs[static_cast<std::size_t>(vc)].push(*pkt);
      router.vc_occupied[static_cast<std::size_t>(i)] |= std::uint64_t{1} << vc;
      in.incoming.drop_front();
    }
  }
  // My aggregated ejection line completes deliveries to my endpoints
  // (same per-cycle delivery set as per-port lines: at most one flit per
  // ejection port matures per cycle, in port order).
  while (const Packet* pkt = router.ejection.front_ready(cycle_)) {
    deliver(shard, *pkt);
    router.ejection.drop_front();
  }
  // Uplink credits for my endpoints, as events on the per-router line.
  int first_ep = topo_.first_endpoint(r);
  while (auto j = router.ep_credits.pop_ready(cycle_)) {
    ++injector_.credits(first_ep + *j);
  }
}

/* SF_HOT */ void Network::phase_arrivals(std::size_t shard) {
  auto [lo, hi] = shard_ranges_[shard];
  for (int r = lo; r < hi; ++r) arrivals_router(shard, r);
}

/* SF_HOT */ void Network::generate_packet(std::size_t shard, int e, int dst,
                              bool in_measurement, std::int64_t dep_stall) {
  auto ep = injector_.endpoint(e);  // reference bundle over the SoA columns
  Packet pkt;
  // Unique and schedule-independent: the endpoint's sequence number
  // strided by endpoint count.
  pkt.id = ep.next_seq++ * topo_.num_endpoints() + e;
  pkt.src_endpoint = e;
  pkt.dst_endpoint = dst;
  pkt.dst_router = static_cast<std::uint16_t>(topo_.endpoint_router(dst));
  pkt.t_generated = static_cast<std::int32_t>(cycle_);
  pkt.measured = in_measurement;
  if (pkt.measured) ++shard_totals_[shard].measured_generated;
  ep.source_queue.push_back(pkt);  // sf-lint: allow(hot-alloc) GrowRing: amortized doubling is the one sanctioned hot-queue growth (hotpath_test budgets it)
  if (stats_window_ > 0) {
    auto& windows = shard_totals_[shard].windows;
    WindowStats& w = windows[window_index(cycle_, windows.size())];
    ++w.generated;
    if (dep_stall > 0) {
      ++w.dep_stalled_sends;
      w.dep_stall_cycles += dep_stall;
    }
  }
}

/* SF_HOT */ void Network::injection_router(std::size_t shard, int r, bool in_measurement) {
  for (int j = 0; j < topo_.endpoints_at(r); ++j) {
    int e = topo_.first_endpoint(r) + j;
    auto ep = injector_.endpoint(e);  // reference bundle over the SoA columns
    if (traffic_self_clocked_) {
      // Self-clocked replay: the pattern decides when the next message is
      // eligible (FIFO order plus `after:` dependency delivery); no load
      // coin is consumed — the workload itself is the clock.
      std::int64_t dep_stall = 0;
      int dst = traffic_.next_send(e, cycle_, &dep_stall);
      if (dst >= 0) generate_packet(shard, e, dst, in_measurement, dep_stall);
    } else {
      // Bernoulli generation, drawing only from the endpoint's own stream.
      // Rate-modulated patterns scale the coin's probability per cycle; a
      // hard-OFF cycle (multiplier 0) consumes no draw at all, so the
      // stream position depends only on ON-cycle count — the invariant the
      // active engine's batched planning relies on (see modulated_hit).
      const bool hit = traffic_modulated_ ? modulated_hit(e, cycle_, ep.rng)
                                          : ep.rng.bernoulli(load_);
      if (hit) {
        int dst = traffic_.destination(e, ep.rng);
        if (dst >= 0) generate_packet(shard, e, dst, in_measurement, 0);
      }
    }
    // Uplink: move the head of the source queue into the router's
    // injection buffer (VC 0) when a credit is available. Routing happens
    // here so UGAL sees the queue state at the moment of injection; that
    // state is frozen for the whole phase, so the endpoint order cannot
    // influence the decision.
    if (!ep.source_queue.empty() && ep.credits > 0) {
      Packet pkt = ep.source_queue.pop_front();
      --ep.credits;
      pkt.t_injected = static_cast<std::int32_t>(cycle_);
      routing_.route_at_injection(*this, pkt, ep.rng);
      RouterState& router = routers_[static_cast<std::size_t>(r)];
      int port = router.network_ports + j;
      router.inputs[static_cast<std::size_t>(port)].vcs[0].push(pkt);
      router.vc_occupied[static_cast<std::size_t>(port)] |= 1;
    }
  }
}

/* SF_HOT */ void Network::phase_injection(std::size_t shard) {
  bool in_measurement = cycle_ >= config_.warmup_cycles &&
                        cycle_ < config_.warmup_cycles + config_.measure_cycles;
  auto [lo, hi] = shard_ranges_[shard];
  for (int r = lo; r < hi; ++r) injection_router(shard, r, in_measurement);
}

/* SF_HOT */ void Network::phase_allocation(std::size_t shard) {
  auto [lo, hi] = shard_ranges_[shard];
  // Both internal-speedup iterations run back-to-back per router: routers
  // exchange nothing during allocation (credits pushed upstream carry
  // credit_delay >= 1, so they surface in a later cycle's arrivals), which
  // makes the per-router ordering equivalent to the per-iteration one.
  for (int r = lo; r < hi; ++r) allocate_router(shard, r);
}

// Requests are gathered per occupied input VC (the vc_occupied bitmask
// skips empty buffers without touching them) and counting-sorted by output
// port. For cacheable routings the (output port, link VC) decision is read
// from the flat per-router route cache — computed once when a packet
// becomes head, invalidated on pop — so next_router runs once per packet
// per router instead of once per waiting cycle; per-hop adaptive routings
// (FT-ANCA) re-derive it every iteration because their decision reads live
// queue state.
/* SF_HOT */ void Network::allocate_router(std::size_t shard, int r) {
  RouterState& router = routers_[static_cast<std::size_t>(r)];
  AllocScratch& scratch = alloc_scratch_[shard];
  const int num_inputs = static_cast<int>(router.inputs.size());
  const int num_outputs = static_cast<int>(router.outputs.size());
  const int nvc = config_.num_vcs;
  for (int iter = 0; iter < config_.alloc_iterations; ++iter) {
    std::fill(scratch.offsets.begin(),
              scratch.offsets.begin() + num_outputs + 1, 0);
    int n_heads = 0;
    for (int ip = 0; ip < num_inputs; ++ip) {
      // Visit only occupied VCs (ascending — the same order a full scan
      // would use). For cached decisions the gather touches just the
      // occupancy word and the flat route cache, never the buffer.
      std::uint64_t mask = router.vc_occupied[static_cast<std::size_t>(ip)];
      while (mask) {
        const int vc = ctz64(mask);
        mask &= mask - 1;
        const std::size_t ci =
            static_cast<std::size_t>(ip) * static_cast<std::size_t>(nvc) +
            static_cast<std::size_t>(vc);
        RouteDecision d = router.route_cache[ci];
        if (!(routing_cacheable_ && d.port >= 0)) {
          const Packet& pkt = router.inputs[static_cast<std::size_t>(ip)]
                                  .vcs[static_cast<std::size_t>(vc)]
                                  .front();
          d = head_decision(router, r, pkt);
          if (routing_cacheable_) router.route_cache[ci] = d;
        }
        scratch.heads[static_cast<std::size_t>(n_heads++)] =
            Request{ip, vc, d.port, d.vc_link};
        ++scratch.offsets[static_cast<std::size_t>(d.port) + 1];
      }
    }
    // No heads at all: nothing can be granted this iteration, and an
    // iteration without grants leaves every allocator input unchanged, so
    // the remaining iterations are no-ops too.
    if (n_heads == 0) break;
    // Counting-sort the requests by output port (stable: (ip, vc) order
    // within each output). After the prefix sum, offsets[op] is the begin
    // of op's range; the scatter advances it in place, leaving offsets[op]
    // == end of op's range (= begin of op+1's).
    for (int op = 0; op < num_outputs; ++op) {
      scratch.offsets[static_cast<std::size_t>(op) + 1] +=
          scratch.offsets[static_cast<std::size_t>(op)];
    }
    for (int i = 0; i < n_heads; ++i) {
      const Request& req = scratch.heads[static_cast<std::size_t>(i)];
      int& cursor = scratch.offsets[static_cast<std::size_t>(req.output_port)];
      scratch.sorted[static_cast<std::size_t>(cursor++)] = req;
    }
    std::fill(scratch.granted.begin(),
              scratch.granted.begin() + num_inputs, std::uint8_t{0});
    int grants = 0;
    for (int op = 0; op < num_outputs; ++op) {
      // Candidate check first: it reads only scratch-local offsets, so
      // outputs nobody requested never touch their OutputPort at all.
      int begin = op == 0 ? 0 : scratch.offsets[static_cast<std::size_t>(op) - 1];
      int n_req = scratch.offsets[static_cast<std::size_t>(op)] - begin;
      if (n_req == 0) continue;
      OutputPort& out = router.outputs[static_cast<std::size_t>(op)];
      if (out.staged >= config_.output_staging) continue;
      // Round-robin over this output's candidates.
      int start = out.rr_pointer % n_req;
      for (int k = 0; k < n_req; ++k) {
        const Request& req = scratch.sorted[static_cast<std::size_t>(
            begin + (start + k) % n_req)];
        if (scratch.granted[static_cast<std::size_t>(req.input_port)]) continue;
        if (out.credits[static_cast<std::size_t>(req.vc_link)] <= 0) continue;
        InputPort& in =
            router.inputs[static_cast<std::size_t>(req.input_port)];
        VcBuffer& buf = in.vcs[static_cast<std::size_t>(req.vc)];
        if (buf.empty()) continue;  // granted earlier this cycle
        // One copy: VC buffer slot to the packet's next resting place,
        // fields patched in place, then the buffer head is dropped and its
        // cached routing decision invalidated (the next packet is a new
        // head). For a network port that resting place is the DOWNSTREAM
        // incoming line directly: the staging stage drains exactly one
        // flit per cycle, so a packet granted with `staged` flits ahead of
        // it departs at cycle + staged and matures a wire+pipeline later —
        // the ready time is final at grant time, and per output the
        // readies are strictly increasing, preserving line FIFO order.
        // This phase is the line's sole producer (all grants to a link
        // happen in its one upstream router), and nothing reads incoming
        // lines during allocation.
        Packet* staged_pkt;
        if (op < router.network_ports) {
          const std::int64_t ready = cycle_ + out.staged +
                                     config_.channel_latency +
                                     config_.router_pipeline;
          staged_pkt = &routers_[static_cast<std::size_t>(out.dest_router)]
                            .inputs[static_cast<std::size_t>(out.dest_port)]
                            .incoming.push_slot(ready);
          // The downstream router must run arrivals when this flit matures,
          // even if it is asleep by then.
          if (engine_active_) schedule_wake(shard, out.dest_router, ready);
        } else {
          staged_pkt = &out.staging.push_slot();
        }
        Packet& staged = *staged_pkt;
        staged = buf.front();
        buf.drop_front();
        router.route_cache[static_cast<std::size_t>(req.input_port) *
                               static_cast<std::size_t>(nvc) +
                           static_cast<std::size_t>(req.vc)]
            .port = -1;
        if (buf.empty()) {
          router.vc_occupied[static_cast<std::size_t>(req.input_port)] &=
              ~(std::uint64_t{1} << req.vc);
        }
        --out.credits[static_cast<std::size_t>(req.vc_link)];
        ++out.consumed;
        staged.wire_vc = static_cast<std::int8_t>(req.vc_link);
        ++staged.hop;
        ++out.staged;
        router.staging_nonempty[static_cast<std::size_t>(op) / 64] |=
            std::uint64_t{1} << (op % 64);
        ++grants;
        ++shard_totals_[shard].flit_hops;
        scratch.granted[static_cast<std::size_t>(req.input_port)] = 1;
        out.rr_pointer = (start + k + 1) % n_req;
        if (req.input_port < router.network_ports) {
          routers_[static_cast<std::size_t>(in.src_router)]
              .outputs[static_cast<std::size_t>(in.src_port)]
              .credit_return.push(cycle_ + config_.credit_delay, req.vc);
          // Credit maturation must run on time even on a sleeping upstream
          // router: UGAL's queue_estimate reads `consumed` remotely, so a
          // stale counter would change adaptive decisions.
          if (engine_active_) {
            schedule_wake(shard, in.src_router, cycle_ + config_.credit_delay);
          }
        } else {
          router.ep_credits.push(cycle_ + config_.credit_delay,
                                 req.input_port - router.network_ports);
          // This router may drain to idle before the uplink credit matures.
          if (engine_active_) {
            schedule_wake(shard, r, cycle_ + config_.credit_delay);
          }
        }
        break;
      }
    }
    // An iteration that granted nothing leaves every allocator input
    // untouched, so all remaining iterations would replay it verbatim.
    if (grants == 0) break;
  }
}

/* SF_HOT */ void Network::transmission_router(std::size_t shard, int r) {
  const std::int64_t ready =
      cycle_ + config_.channel_latency + config_.router_pipeline;
  RouterState& router = routers_[static_cast<std::size_t>(r)];
  int num_words = static_cast<int>(router.staging_nonempty.size());
  for (int w = 0; w < num_words; ++w) {
    std::uint64_t mask = router.staging_nonempty[static_cast<std::size_t>(w)];
    while (mask) {
      const int op = w * 64 + ctz64(mask);
      mask &= mask - 1;
      OutputPort& out = router.outputs[static_cast<std::size_t>(op)];
      // One flit leaves the staging stage per cycle. Network-port
      // packets already sit in the downstream incoming line (written at
      // grant time with their final ready), so only the occupancy
      // counter advances here; ejection packets hop from the staging
      // ring onto the router's aggregated ejection line now, keeping
      // that line's pushes time-ordered across ports.
      if (op >= router.network_ports) {
        router.ejection.push_slot(ready) = out.staging.front();
        out.staging.drop_front();
        // The delivery must run when the flit matures, and nothing else
        // keeps this router awake once its buffers drain.
        if (engine_active_) schedule_wake(shard, r, ready);
      }
      if (--out.staged == 0) {
        router.staging_nonempty[static_cast<std::size_t>(w)] &=
            ~(std::uint64_t{1} << (op % 64));
      }
    }
  }
}

/* SF_HOT */ void Network::phase_transmission(std::size_t shard) {
  auto [lo, hi] = shard_ranges_[shard];
  for (int r = lo; r < hi; ++r) transmission_router(shard, r);
}

/* SF_HOT */ void Network::deliver(std::size_t shard, const Packet& pkt) {
  ShardTotals& totals = shard_totals_[shard];
  totals.stats.record_delivery(cycle_ - pkt.t_generated, cycle_ - pkt.t_injected,
                               pkt.measured);
  if (cycle_ >= config_.warmup_cycles &&
      cycle_ < config_.warmup_cycles + config_.measure_cycles) {
    ++totals.delivered_in_window;
  }
  if (stats_window_ > 0) {
    WindowStats& w = totals.windows[window_index(cycle_, totals.windows.size())];
    ++w.delivered;
    w.latency_sum += cycle_ - pkt.t_generated;
  }
  if (traffic_self_clocked_) {
    // Record the completion for the serial between-cycles pass. The message
    // sequence number is recovered from the packet id (seq * N + src), so
    // no Packet field is spent on it.
    completion_outbox_[shard].push_back(  // sf-lint: allow(hot-alloc) capacity reserved in wire(); steady state never reallocates
        (static_cast<std::int64_t>(pkt.src_endpoint) << 32) |
        (pkt.id / topo_.num_endpoints()));
  }
}

// Serial between-cycles completion pass: every delivery recorded during this
// cycle's arrivals unlocks its dependents in the pattern before the next
// cycle begins. Running it serially — even with one shard, where deliver()
// could have applied completions inline — gives every (shards, engine)
// configuration the same uniform one-cycle eligibility deferral, which is
// what makes replay schedules bit-identical across the whole matrix.
/* SF_HOT */ void Network::apply_completions() {
  for (std::size_t s = 0; s < shards_; ++s) {
    for (std::int64_t packed : completion_outbox_[s]) {
      const int src = static_cast<int>(packed >> 32);
      const std::int64_t seq = packed & 0xffffffff;
      unlocked_scratch_.clear();
      traffic_.on_delivered(src, seq, cycle_, unlocked_scratch_);
      if (engine_active_) {
        for (int e : unlocked_scratch_) {
          // Called serially, so pass the owner shard: the wake goes straight
          // to its heap, never through an outbox.
          const int r = topo_.endpoint_router(e);
          schedule_wake(shard_of_router_[static_cast<std::size_t>(r)], r,
                        cycle_ + 1);
        }
      }
    }
    completion_outbox_[s].clear();
  }
}

void Network::sync() {
  if (barrier_) barrier_->arrive_and_wait();
}

void Network::resize_team(int want) {
  std::size_t w = want < 1 ? 1 : static_cast<std::size_t>(want);
  if (w > shards_) w = shards_;
  if (w == team_) return;
  team_ = w;
  // Torn down here, recreated lazily by the next parallel step at the new
  // party count — team changes are rare by design (the stealing scheduler
  // only grows a point's team as sibling points finish).
  pool_.reset();
  barrier_.reset();
}

// A worker steps its contiguous shard sub-range through the four phases,
// finishing each phase over ALL its shards before the global barrier:
// allocation writes remote incoming/credit lines that other shards' later
// phases read, so the phases must stay globally aligned no matter how the
// shards are distributed over workers. Within a phase the per-shard order
// is immaterial (each shard only writes state it owns plus single-producer
// remote lines nobody reads during that phase), which is exactly why the
// trajectory is bit-identical for every team size. With team_ == shards_
// each worker owns one shard and this is the classic one-shard body.
/* SF_HOT */ void Network::step_worker(std::size_t worker) {
  const std::pair<std::size_t, std::size_t> range = worker_shards(worker);
  // A phase that throws poisons only its shard; the worker keeps arriving
  // at the remaining barriers so its peers never hang, and step() rethrows.
  auto guarded = [&](void (Network::*phase)(std::size_t)) {
    for (std::size_t shard = range.first; shard < range.second; ++shard) {
      if (shard_errors_[shard]) continue;
      try {
        (this->*phase)(shard);
      } catch (...) {
        shard_errors_[shard] = std::current_exception();
      }
    }
  };
  if (engine_active_) {
    guarded(&Network::active_phase_arrivals);
    sync();
    guarded(&Network::active_phase_injection);
    sync();
    guarded(&Network::active_phase_allocation);
    sync();
    guarded(&Network::active_phase_transmission);
  } else {
    guarded(&Network::phase_arrivals);
    sync();
    guarded(&Network::phase_injection);
    sync();
    guarded(&Network::phase_allocation);
    sync();
    guarded(&Network::phase_transmission);
  }
}

/* SF_HOT */ void Network::step() {
  // Execution-only: the provider can change how many workers step the fixed
  // shard set, never which shard owns what (see set_team_provider).
  if (team_provider_) resize_team(team_provider_());
  std::fill(shard_errors_.begin(), shard_errors_.end(), nullptr);
  if (team_ == 1) {
    step_worker(0);
  } else {
    if (!pool_) {
      // Dedicated team: team_ - 1 pool workers plus the calling thread.
      // Dedicated, because the region's barriers require every worker to be
      // scheduled (util/threadpool.hpp).
      pool_ = std::make_unique<ThreadPool>(team_ - 1);  // sf-lint: allow(hot-alloc) one-time lazy init after a team change, not steady state
      barrier_ = std::make_unique<Barrier>(team_);  // sf-lint: allow(hot-alloc) one-time lazy init after a team change, not steady state
    }
    run_region(*pool_, team_, [this](std::size_t w) { step_worker(w); });
  }
  for (auto& err : shard_errors_) {
    if (err) std::rethrow_exception(err);
  }
  // Merge cross-shard wake events serially, before ++cycle_, so every heap
  // is complete when fast_forward inspects the tops between steps.
  if (engine_active_ && shards_ > 1) drain_wake_outboxes();
  if (traffic_self_clocked_) apply_completions();
  ++cycle_;
  ++cycles_stepped_;
  stats_dirty_ = true;
}

// ---- active engine ---------------------------------------------------------

void Network::init_active() {
  engine_active_ = true;
  shard_of_router_.assign(static_cast<std::size_t>(num_routers_), 0);
  for (std::size_t s = 0; s < shards_; ++s) {
    for (int r = shard_ranges_[s].first; r < shard_ranges_[s].second; ++r) {
      shard_of_router_[static_cast<std::size_t>(r)] =
          static_cast<std::uint16_t>(s);
    }
  }
  wake_heaps_.assign(shards_, {});
  wake_outbox_.assign(shards_, {});
  busy_.assign(shards_, {});
  woken_.assign(shards_, {});
  active_list_.assign(shards_, {});
  for (std::size_t s = 0; s < shards_; ++s) {
    auto [lo, hi] = shard_ranges_[s];
    const std::size_t owned = static_cast<std::size_t>(hi - lo);
    busy_[s].assign((owned + 63) / 64, 0);
    woken_[s].assign((owned + 63) / 64, 0);
    active_list_[s].reserve(owned);
    // Live wakes targeting a router are bounded by the un-matured entries
    // of its event lines (each push schedules exactly one wake at the
    // entry's ready cycle, popped at that cycle's build) plus one per
    // endpoint — a pending injector arrival, or for self-clocked replay a
    // dependency-unlock wake at cycle+1 (consumed next build, and each
    // endpoint's head unlocks at most once) — so the heap's worst case is
    // the sum of the line capacities wire() chose. Reserving it keeps the
    // steady-state push_heap/push_back allocation-free.
    std::size_t cap = 1, inputs = 0;
    for (int r = lo; r < hi; ++r) {
      const RouterState& router = routers_[static_cast<std::size_t>(r)];
      for (int i = 0; i < router.network_ports; ++i) {
        cap += router.inputs[static_cast<std::size_t>(i)].incoming.capacity();
        cap += router.outputs[static_cast<std::size_t>(i)]
                   .credit_return.capacity();
      }
      cap += router.ejection.capacity() + router.ep_credits.capacity();
      cap += static_cast<std::size_t>(topo_.endpoints_at(r));
      inputs += router.inputs.size();
    }
    wake_heaps_[s].reserve(cap);
    // Outbox: cleared every cycle; bounded by this shard's grant count per
    // cycle (one flit wake + one credit wake per grant, <= inputs per
    // allocation iteration).
    wake_outbox_[s].reserve(
        inputs * static_cast<std::size_t>(config_.alloc_iterations) * 2 + 1);
  }
  // Initial injector plans: the cycle engine draws each endpoint's first
  // Bernoulli at cycle 0, so planning starts there. Self-clocked replay
  // draws no coins — instead, wake every router with an initially-eligible
  // message at cycle 0 (pending_eligible then keeps it busy; blocked
  // endpoints are woken later by apply_completions).
  for (std::size_t s = 0; s < shards_; ++s) {
    auto [lo, hi] = shard_ranges_[s];
    for (int r = lo; r < hi; ++r) {
      for (int j = 0; j < topo_.endpoints_at(r); ++j) {
        const int e = topo_.first_endpoint(r) + j;
        if (traffic_self_clocked_) {
          if (traffic_.pending_eligible(e)) schedule_wake(s, r, 0);
        } else {
          plan_arrival_from(s, r, e, 0);
        }
      }
    }
  }
}

/* SF_HOT */ void Network::schedule_wake(std::size_t shard, int router, std::int64_t at) {
  const std::int64_t event =
      (at << 16) | static_cast<std::int64_t>(router & 0xffff);
  const std::size_t owner = shard_of_router_[static_cast<std::size_t>(router)];
  if (owner == shard) {
    auto& heap = wake_heaps_[owner];
    heap.push_back(event);  // sf-lint: allow(hot-alloc) capacity reserved in init_active(); steady state never reallocates
    std::push_heap(heap.begin(), heap.end(), std::greater<std::int64_t>{});
  } else {
    wake_outbox_[shard].push_back(event);  // sf-lint: allow(hot-alloc) capacity reserved in init_active(); steady state never reallocates
  }
}

/* SF_HOT */ void Network::drain_wake_outboxes() {
  for (auto& box : wake_outbox_) {
    for (std::int64_t event : box) {
      auto& heap = wake_heaps_[shard_of_router_[static_cast<std::size_t>(
          event & 0xffff)]];
      heap.push_back(event);  // sf-lint: allow(hot-alloc) capacity reserved in init_active(); steady state never reallocates
      std::push_heap(heap.begin(), heap.end(), std::greater<std::int64_t>{});
    }
    box.clear();
  }
}

/* SF_HOT */ void Network::build_active_list(std::size_t shard) {
  auto [lo, hi] = shard_ranges_[shard];
  auto& woken = woken_[shard];
  std::fill(woken.begin(), woken.end(), 0);
  // Pop every event due at or before this cycle. Stale events (a busy
  // router stepped at its wake cycle anyway) just re-activate a router —
  // stepping a quiet router is a no-op, so duplicates are harmless.
  auto& heap = wake_heaps_[shard];
  const std::int64_t limit = (cycle_ + 1) << 16;
  while (!heap.empty() && heap.front() < limit) {
    const int local = static_cast<int>(heap.front() & 0xffff) - lo;
    woken[static_cast<std::size_t>(local) / 64] |=
        std::uint64_t{1} << (local % 64);
    std::pop_heap(heap.begin(), heap.end(), std::greater<std::int64_t>{});
    heap.pop_back();
  }
  auto& list = active_list_[shard];
  list.clear();
  const auto& busy = busy_[shard];
  for (std::size_t w = 0; w < woken.size(); ++w) {
    std::uint64_t mask = woken[w] | busy[w];
    while (mask) {
      const int local = static_cast<int>(w) * 64 + ctz64(mask);
      mask &= mask - 1;
      list.push_back(lo + local);  // ascending: same order as a full scan  // sf-lint: allow(hot-alloc) capacity reserved in init_active()
    }
  }
}

/* SF_HOT */ bool Network::router_is_busy(int r) const {
  const RouterState& router = routers_[static_cast<std::size_t>(r)];
  for (std::uint64_t w : router.staging_nonempty) {
    if (w) return true;
  }
  for (std::uint64_t w : router.vc_occupied) {
    if (w) return true;
  }
  for (int j = 0; j < topo_.endpoints_at(r); ++j) {
    const int e = topo_.first_endpoint(r) + j;
    if (!injector_.source_queue(e).empty()) return true;
    // Self-clocked replay: an eligible pending send is work — the router
    // must step so injection can pop it (the FIFO gate allows at most one
    // pop per endpoint per cycle, so eligibility can outlive the queues).
    if (traffic_self_clocked_ && traffic_.pending_eligible(e)) return true;
  }
  return false;
}

/* SF_HOT */ void Network::update_busy(std::size_t shard) {
  const int lo = shard_ranges_[shard].first;
  auto& busy = busy_[shard];
  for (int r : active_list_[shard]) {
    const int local = r - lo;
    const std::uint64_t bit = std::uint64_t{1} << (local % 64);
    if (router_is_busy(r)) {
      busy[static_cast<std::size_t>(local) / 64] |= bit;
    } else {
      busy[static_cast<std::size_t>(local) / 64] &= ~bit;
    }
  }
}

/* SF_HOT */ void Network::active_phase_arrivals(std::size_t shard) {
  build_active_list(shard);
  for (int r : active_list_[shard]) arrivals_router(shard, r);
}

/* SF_HOT */ void Network::active_phase_injection(std::size_t shard) {
  bool in_measurement = cycle_ >= config_.warmup_cycles &&
                        cycle_ < config_.warmup_cycles + config_.measure_cycles;
  for (int r : active_list_[shard]) {
    active_injection_router(shard, r, in_measurement);
  }
}

/* SF_HOT */ void Network::active_phase_allocation(std::size_t shard) {
  for (int r : active_list_[shard]) allocate_router(shard, r);
}

/* SF_HOT */ void Network::active_phase_transmission(std::size_t shard) {
  for (int r : active_list_[shard]) transmission_router(shard, r);
  // Shard-local busy refresh: reads only state this shard's phases wrote
  // (VC masks, staging counters, endpoint queues), so it needs no barrier.
  update_busy(shard);
}

/* SF_HOT */ void Network::plan_arrival_from(std::size_t shard, int r, int e,
                                std::int64_t from) {
  auto ep = injector_.endpoint(e);  // reference bundle over the SoA columns
  if (load_ <= 0.0) {
    ep.next_arrival = kNeverArrives;
    return;
  }
  // Batch the per-cycle Bernoulli draws the sleeping endpoint would have
  // made — one draw per cycle, the exact cycle-engine sequence. Draws are
  // capped at the run's absolute last cycle: past it neither engine can
  // materialize a packet, so the leftover stream divergence is unobservable.
  const std::int64_t last = config_.warmup_cycles + config_.measure_cycles +
                            config_.drain_cycles;
  std::int64_t t = from;
  if (traffic_modulated_) {
    // Modulated stream: query the multiplier cycle by cycle so OFF cycles
    // consume no draw — the exact per-cycle sequence injection_router
    // produces (rate_multiplier tolerates the monotone-with-gaps cycles
    // this batch walks).
    while (t < last && !modulated_hit(e, t, ep.rng)) ++t;
  } else {
    while (t < last && !ep.rng.bernoulli(load_)) ++t;
  }
  if (t >= last) {
    ep.next_arrival = kNeverArrives;
    return;
  }
  ep.next_arrival = t;
  schedule_wake(shard, r, t);
}

/* SF_HOT */ void Network::active_injection_router(std::size_t shard, int r,
                                      bool in_measurement) {
  for (int j = 0; j < topo_.endpoints_at(r); ++j) {
    int e = topo_.first_endpoint(r) + j;
    auto ep = injector_.endpoint(e);  // reference bundle over the SoA columns
    if (traffic_self_clocked_) {
      // Replay consumes no load coins, so there is nothing to plan: pop
      // the next eligible message exactly as the cycle engine would.
      // pending_eligible keeps this router busy while sends remain
      // eligible; apply_completions wakes it when a dependency delivers.
      std::int64_t dep_stall = 0;
      int dst = traffic_.next_send(e, cycle_, &dep_stall);
      if (dst >= 0) generate_packet(shard, e, dst, in_measurement, dep_stall);
    } else {
      bool generate = false;
      if (ep.next_arrival == kUnplannedArrival) {
        // Backlog mode: the source queue is nonempty, so the router is busy
        // and steps every cycle — draw live, exactly like the cycle engine.
        generate = traffic_modulated_ ? modulated_hit(e, cycle_, ep.rng)
                                      : ep.rng.bernoulli(load_);
      } else if (cycle_ == ep.next_arrival) {
        // Materialize the precomputed arrival. The Bernoulli draws through
        // this cycle were consumed at plan time; the destination (and any
        // routing) draws happen now, on the same cycle and in the same order
        // the cycle engine makes them.
        generate = true;
        ep.next_arrival = kUnplannedArrival;
      }
      if (generate) {
        int dst = traffic_.destination(e, ep.rng);
        if (dst >= 0) generate_packet(shard, e, dst, in_measurement, 0);
      }
    }
    // Uplink — identical to the cycle engine.
    if (!ep.source_queue.empty() && ep.credits > 0) {
      Packet pkt = ep.source_queue.pop_front();
      --ep.credits;
      pkt.t_injected = static_cast<std::int32_t>(cycle_);
      routing_.route_at_injection(*this, pkt, ep.rng);
      RouterState& router = routers_[static_cast<std::size_t>(r)];
      int port = router.network_ports + j;
      router.inputs[static_cast<std::size_t>(port)].vcs[0].push(pkt);
      router.vc_occupied[static_cast<std::size_t>(port)] |= 1;
    }
    // Invariant: an empty queue always has a plan (or the never sentinel),
    // so a sleeping endpoint's next arrival is a heap event, not a poll.
    // Self-clocked replay plans nothing — eligibility keeps the router in
    // the busy set instead (router_is_busy).
    if (!traffic_self_clocked_ && ep.source_queue.empty() &&
        ep.next_arrival == kUnplannedArrival) {
      plan_arrival_from(shard, r, e, cycle_ + 1);
    }
  }
}

/* SF_HOT */ void Network::fast_forward(std::int64_t bound) {
  if (!engine_active_) return;
  for (const auto& words : busy_) {
    for (std::uint64_t w : words) {
      if (w) return;  // someone has work every cycle: no idle stretch
    }
  }
  std::int64_t next = bound;
  for (const auto& heap : wake_heaps_) {
    if (!heap.empty()) next = std::min(next, heap.front() >> 16);
  }
  if (next > cycle_) cycle_ = next;
}

const Stats& Network::stats() const {
  if (stats_dirty_) {
    merged_stats_ = Stats{};
    std::int64_t generated = 0;
    for (const auto& totals : shard_totals_) {
      merged_stats_.merge(totals.stats);
      generated += totals.measured_generated;
    }
    merged_stats_.set_measured_generated(generated);
    stats_dirty_ = false;
  }
  return merged_stats_;
}

bool Network::all_measured_delivered() const {
  std::int64_t generated = 0;
  std::int64_t delivered = 0;
  for (const auto& totals : shard_totals_) {
    generated += totals.measured_generated;
    delivered += totals.stats.measured_delivered();
  }
  return delivered >= generated;
}

std::int64_t Network::delivered_in_window() const {
  std::int64_t total = 0;
  for (const auto& totals : shard_totals_) total += totals.delivered_in_window;
  return total;
}

std::int64_t Network::flit_hops() const {
  std::int64_t total = 0;
  for (const auto& totals : shard_totals_) total += totals.flit_hops;
  return total;
}

std::int64_t Network::flits_in_flight() const {
  std::int64_t total = 0;
  for (const auto& router : routers_) {
    for (const auto& in : router.inputs) {
      total += in.occupancy() + static_cast<std::int64_t>(in.incoming.size());
    }
    for (const auto& out : router.outputs) {
      total += static_cast<std::int64_t>(out.staging.size());
    }
    total += static_cast<std::int64_t>(router.ejection.size());
  }
  return total;
}

void Network::reserve_measurement_stats() {
  for (std::size_t s = 0; s < shards_; ++s) {
    auto [lo, hi] = shard_ranges_[s];
    std::int64_t endpoints = 0;
    for (int r = lo; r < hi; ++r) endpoints += topo_.endpoints_at(r);
    shard_totals_[s].stats.reserve(
        static_cast<std::size_t>(endpoints * config_.measure_cycles));
  }
  // Charge the pool's full-depth float: at high stable load, hundreds of
  // rings cross new high-water marks long after any settle phase, and the
  // construction-time ~1 MiB float (64 slabs/class) is exhausted by the
  // first wave. kShelfDepth slabs per class up to the default byte ceiling
  // is ~16 MiB — noise next to the arenas, and only charged on this
  // opt-in measurement path, never at fleet-scale construction.
  slab_pool_.preload(SlabPool::kDefaultPreloadMaxBytes, SlabPool::kShelfDepth);
  // Back every lazy ring's FIRST slab eagerly: a ring whose first traffic
  // lands after the guard/bench settle phase then grows privately instead
  // of hitting the pool (whose preload float a low-load settle phase can
  // exhaust). Same opt-in trade as the stats reservation above — wasteful
  // as a default at fleet scale, where untouched rings costing nothing is
  // the whole point of the lazy tier.
  for (auto& router : routers_) {
    for (auto& in : router.inputs) {
      for (auto& b : in.vcs) b.prewarm();
      in.incoming.prewarm();
    }
    for (auto& out : router.outputs) {
      out.staging.prewarm();
      out.credit_return.prewarm();
    }
    router.ejection.prewarm();
    router.ep_credits.prewarm();
  }
}

SimResult Network::run() {
  // fast_forward runs at the top of each iteration (a no-op for the cycle
  // engine): jumping before the bounds check keeps result.cycles identical
  // between engines — a jump straight to the bound ends the loop exactly
  // where the cycle engine's per-cycle stepping would have.
  std::int64_t horizon = config_.warmup_cycles + config_.measure_cycles;
  while (cycle_ < horizon) {
    fast_forward(horizon);
    if (cycle_ >= horizon) break;
    step();
  }
  std::int64_t drain_end = horizon + config_.drain_cycles;
  while (!all_measured_delivered() && cycle_ < drain_end) {
    fast_forward(drain_end);
    if (cycle_ >= drain_end) break;
    step();
  }

  const Stats& merged = stats();
  SimResult result;
  result.offered_load = load_;
  result.avg_latency = merged.average_latency();
  result.avg_network_latency = merged.average_network_latency();
  result.p99_latency = merged.percentile_latency(0.99);
  result.delivered = merged.total_delivered();
  result.cycles = cycle_;
  result.cycles_stepped = cycles_stepped_;
  result.flit_hops = flit_hops();
  // Accepted throughput counts ejections *during* the measurement window
  // (Dally & Towles methodology); packets delivered later in the drain
  // improve latency statistics but not throughput.
  double denom = static_cast<double>(active_endpoints_) *
                 static_cast<double>(config_.measure_cycles);
  result.accepted_load =
      denom > 0 ? static_cast<double>(delivered_in_window()) / denom : 0.0;
  result.saturated = !merged.all_measured_delivered() ||
                     result.avg_latency > config_.latency_cap;
  result.stats_window = stats_window_;
  if (stats_window_ > 0 && cycle_ > 0) {
    // Merge per-shard rows elementwise and trim to the windows the run
    // actually reached; cycle_ is itself deterministic, so the trim is too.
    const std::size_t allocated = shard_totals_[0].windows.size();
    const std::size_t used = std::min(
        allocated,
        static_cast<std::size_t>((cycle_ - 1) / stats_window_) + 1);
    result.windows.assign(used, WindowStats{});
    for (const auto& totals : shard_totals_) {
      for (std::size_t i = 0; i < used; ++i) {
        result.windows[i].merge(totals.windows[i]);
      }
    }
  }
  return result;
}

}  // namespace slimfly::sim
