#include "sim/stats.hpp"

#include <algorithm>
#include <stdexcept>

namespace slimfly::sim {

/* SF_HOT */ void Stats::record_delivery(std::int64_t latency, std::int64_t network_latency,
                            bool measured) {
  ++total_delivered_;
  if (measured) {
    ++measured_delivered_;
    latencies_.push_back(latency);  // sf-lint: allow(hot-alloc) amortized pool growth; reserve_measurement_stats() opt-in makes the guarded path allocation-free
    network_latencies_.push_back(network_latency);  // sf-lint: allow(hot-alloc) amortized pool growth; reserve_measurement_stats() opt-in makes the guarded path allocation-free
  }
}

void Stats::merge(const Stats& other) {
  latencies_.insert(latencies_.end(), other.latencies_.begin(),
                    other.latencies_.end());
  network_latencies_.insert(network_latencies_.end(),
                            other.network_latencies_.begin(),
                            other.network_latencies_.end());
  measured_generated_ += other.measured_generated_;
  measured_delivered_ += other.measured_delivered_;
  total_delivered_ += other.total_delivered_;
}

double Stats::average_network_latency() const {
  if (network_latencies_.empty()) return 0.0;
  std::int64_t sum = 0;
  for (std::int64_t l : network_latencies_) sum += l;
  return static_cast<double>(sum) / static_cast<double>(network_latencies_.size());
}

double Stats::average_latency() const {
  if (latencies_.empty()) return 0.0;
  std::int64_t sum = 0;
  for (std::int64_t l : latencies_) sum += l;
  return static_cast<double>(sum) / static_cast<double>(latencies_.size());
}

double Stats::percentile_latency(double p) const {
  if (latencies_.empty()) return 0.0;
  if (p <= 0.0 || p > 1.0) throw std::invalid_argument("percentile_latency: bad p");
  std::vector<std::int64_t> sorted = latencies_;
  std::sort(sorted.begin(), sorted.end());
  std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size()));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return static_cast<double>(sorted[idx]);
}

std::int64_t Stats::max_latency() const {
  if (latencies_.empty()) return 0;
  return *std::max_element(latencies_.begin(), latencies_.end());
}

}  // namespace slimfly::sim
