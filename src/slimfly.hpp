#pragma once
// Umbrella header: the full public API of the Slim Fly library.
//
//   #include "slimfly.hpp"
//
//   slimfly::sf::SlimFlyMMS sf(19);           // N = 10830, k' = 29, D = 2
//   auto routing = slimfly::sim::make_routing(
//       slimfly::sim::RoutingKind::UgalL, sf);
//   auto traffic = slimfly::sim::make_uniform(sf.num_endpoints());
//   auto result  = slimfly::sim::simulate(sf, *routing.algorithm, *traffic,
//                                         {}, 0.5);
//
// Whole evaluations as data (all cores, deterministic):
//
//   slimfly::exp::ExperimentSpec spec = slimfly::exp::ExperimentSpec::cross(
//       "study", {"slimfly:q=19", "torus:dims=8x8x8"}, {"MIN", "UGAL-L"},
//       {"uniform", "stencil3d"}, {0.1, 0.5, 0.9}, {});
//   auto results = slimfly::exp::ExperimentEngine().run(spec);

#include "analysis/channelload.hpp"
#include "analysis/metrics.hpp"
#include "analysis/connectivity.hpp"
#include "analysis/moore.hpp"
#include "analysis/partition.hpp"
#include "analysis/resilience.hpp"
#include "cost/cables.hpp"
#include "cost/costmodel.hpp"
#include "cost/layout.hpp"
#include "cost/power.hpp"
#include "cost/routers.hpp"
#include "exp/experiment.hpp"
#include "gf/gf.hpp"
#include "sf/bdf.hpp"
#include "sf/delorme.hpp"
#include "sf/enumerate.hpp"
#include "sf/layout.hpp"
#include "sf/mms.hpp"
#include "sf/sfgrouped.hpp"
#include "sim/routing/dfsssp.hpp"
#include "sim/simulation.hpp"
#include "topo/dln.hpp"
#include "topo/augmented.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/flatbutterfly.hpp"
#include "topo/hypercube.hpp"
#include "topo/io.hpp"
#include "topo/longhop.hpp"
#include "topo/registry.hpp"
#include "topo/torus.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
