#include "topo/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace slimfly {

Topology::Topology(Graph graph, int concentration, int endpoint_routers)
    : graph_(std::move(graph)),
      concentration_(concentration),
      endpoint_routers_(endpoint_routers) {
  if (!graph_.finalized()) {
    throw std::invalid_argument("Topology: graph must be finalized");
  }
  if (concentration_ < 1) {
    throw std::invalid_argument("Topology: concentration must be >= 1");
  }
  if (endpoint_routers_ < 1 || endpoint_routers_ > graph_.num_vertices()) {
    throw std::invalid_argument("Topology: bad endpoint router count");
  }
  // Default packaging: about 40 routers per rack (a dense 42U-class rack),
  // overridden by topologies with a structural rack notion.
  routers_per_rack_ = 40;
}

int Topology::router_radix() const {
  int radix = 0;
  for (int r = 0; r < num_routers(); ++r) {
    radix = std::max(radix, graph_.degree(r) + endpoints_at(r));
  }
  return radix;
}

void Topology::set_routers_per_rack(int routers_per_rack) {
  if (routers_per_rack < 1) {
    throw std::invalid_argument("Topology: routers_per_rack must be >= 1");
  }
  routers_per_rack_ = routers_per_rack;
}

int Topology::num_racks() const {
  return (num_routers() + routers_per_rack_ - 1) / routers_per_rack_;
}

int Topology::rack_of_router(int r) const { return r / routers_per_rack_; }

}  // namespace slimfly
