#include "topo/registry.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "sf/mms.hpp"
#include "topo/augmented.hpp"
#include "topo/dln.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/flatbutterfly.hpp"
#include "topo/hypercube.hpp"
#include "topo/longhop.hpp"
#include "topo/torus.hpp"

namespace slimfly::topo {
namespace {

[[noreturn]] void fail(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("topology spec \"" + spec + "\": " + why);
}

// Spec values are canonical decimal digits, nothing else: std::stoi would
// also take leading whitespace and +/- signs ("torus:dims= 8x8",
// "hypercube:n=+6"), and such specs would not round-trip through
// --emit-config. Range-checked here so oversized values fail as parse
// errors instead of overflowing inside a constructor.
std::uint64_t to_u64(const std::string& spec, const std::string& key,
                     const std::string& value, std::uint64_t max) {
  bool digits = !value.empty() && value.size() <= 20 &&
                value.find_first_not_of("0123456789") == std::string::npos &&
                // One canonical spelling per number: "seed=007" would build
                // the same graph as "seed=7" yet hash to different
                // per-point streams (exp::point_seed hashes the raw spec).
                (value.size() == 1 || value[0] != '0');
  if (digits) {
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (errno == 0 && end == value.c_str() + value.size() && v <= max) return v;
  }
  fail(spec, "key \"" + key + "\" needs a canonical integer in 0.." +
                 std::to_string(max) +
                 " (plain decimal digits: no sign, whitespace, radix prefix, "
                 "or leading zeros), got \"" + value + "\"");
}

int to_int(const std::string& spec, const std::string& key,
           const std::string& value) {
  return static_cast<int>(to_u64(
      spec, key, value,
      static_cast<std::uint64_t>(std::numeric_limits<int>::max())));
}

std::vector<int> parse_dims(const std::string& spec, const std::string& key,
                            const std::string& value) {
  std::vector<int> dims;
  std::size_t start = 0;
  while (true) {
    std::size_t sep = value.find('x', start);
    std::string part = value.substr(start, sep - start);
    if (part.empty()) fail(spec, "malformed dims \"" + value + "\"");
    dims.push_back(to_int(spec, key, part));
    if (sep == std::string::npos) break;
    start = sep + 1;
  }
  return dims;
}

/// Consumes params[key]; spec strings must not carry unknown keys, so every
/// factory pulls what it understands and then calls reject_leftovers().
class Params {
 public:
  Params(const std::string& spec, SpecParams params)
      : spec_(spec), params_(std::move(params)) {}

  int require_int(const std::string& key) {
    auto it = params_.find(key);
    if (it == params_.end()) fail(spec_, "missing required key \"" + key + "\"");
    int v = to_int(spec_, key, it->second);
    params_.erase(it);
    return v;
  }

  int optional_int(const std::string& key, int fallback) {
    auto it = params_.find(key);
    if (it == params_.end()) return fallback;
    int v = to_int(spec_, key, it->second);
    params_.erase(it);
    return v;
  }

  /// Construction seed for the randomized families (dln, longhop,
  /// augmented). Because the seed is part of the spec string, it is hashed
  /// into every per-point seed (exp::point_seed hashes the whole spec), so a
  /// spec string fully identifies the instance *and* its traffic streams.
  std::uint64_t optional_seed(const std::string& key, std::uint64_t fallback) {
    auto it = params_.find(key);
    if (it == params_.end()) return fallback;
    std::uint64_t v = to_u64(spec_, key, it->second,
                             std::numeric_limits<std::uint64_t>::max());
    params_.erase(it);
    return v;
  }

  std::string optional_str(const std::string& key, std::string fallback) {
    auto it = params_.find(key);
    if (it == params_.end()) return fallback;
    std::string v = it->second;
    params_.erase(it);
    return v;
  }

  /// "8x8x8" -> {8, 8, 8}.
  std::vector<int> require_dims(const std::string& key) {
    auto it = params_.find(key);
    if (it == params_.end()) fail(spec_, "missing required key \"" + key + "\"");
    std::vector<int> dims = parse_dims(spec_, key, it->second);
    params_.erase(it);
    return dims;
  }

  bool has(const std::string& key) const { return params_.count(key) != 0; }

  void reject_leftovers() const {
    if (params_.empty()) return;
    fail(spec_, "unknown key \"" + params_.begin()->first + "\"");
  }

 private:
  const std::string& spec_;
  SpecParams params_;
};

using Factory =
    std::function<std::unique_ptr<Topology>(const std::string& spec, Params&)>;

/// Nested-spec encoding for augmented's base=<spec>: the outer spec splits
/// parameters on ',', so the inner spec spells its own ',' as ';'
/// ("augmented:base=torus:dims=4x4;c=2,extra=3" augments
/// "torus:dims=4x4,c=2"). ':' and '=' pass through untouched — parse_spec
/// only splits the family at the FIRST ':' and a pair at the FIRST '='.
std::string translate_base_spec(std::string base) {
  std::replace(base.begin(), base.end(), ';', ',');
  return base;
}

/// Factory plus the key names it understands, so specs can be structurally
/// validated without paying for construction (validate_spec below).
struct FamilyInfo {
  std::vector<const char*> required;
  std::vector<const char*> optional;
  Factory make;
  /// Keys whose values are free-form strings ("variant"); every other key
  /// is numeric and validate_spec checks its syntax without constructing.
  std::vector<const char*> string_keys = {};
};

const std::map<std::string, FamilyInfo>& factories() {
  static const std::map<std::string, FamilyInfo> table = {
      {"slimfly",
       {{"q"},
        {"p"},
        [](const std::string&, Params& p) -> std::unique_ptr<Topology> {
          int q = p.require_int("q");
          int conc = p.optional_int("p", 0);
          return std::make_unique<sf::SlimFlyMMS>(q, conc);
        }}},
      {"dragonfly",
       {{"p", "a", "h"},
        {"g"},
        [](const std::string&, Params& p) -> std::unique_ptr<Topology> {
          int conc = p.require_int("p");
          int a = p.require_int("a");
          int h = p.require_int("h");
          int g = p.optional_int("g", a * h + 1);
          return std::make_unique<Dragonfly>(conc, a, h, g);
        }}},
      {"fattree",
       {{"k"},
        {"variant"},
        [](const std::string& spec, Params& p) -> std::unique_ptr<Topology> {
          int k = p.require_int("k");
          std::string variant = p.optional_str("variant", "paperslim");
          if (variant == "paperslim")
            return std::make_unique<FatTree3>(k, FatTreeVariant::PaperSlim);
          if (variant == "classic")
            return std::make_unique<FatTree3>(k, FatTreeVariant::Classic);
          fail(spec, "variant must be classic or paperslim, got \"" + variant +
                         "\"");
        },
        {"variant"}}},
      {"torus",
       {{"dims"},
        {"c"},
        [](const std::string&, Params& p) -> std::unique_ptr<Topology> {
          auto dims = p.require_dims("dims");
          int conc = p.optional_int("c", 1);
          return std::make_unique<Torus>(std::move(dims), conc);
        }}},
      {"hypercube",
       {{"n"},
        {"c"},
        [](const std::string&, Params& p) -> std::unique_ptr<Topology> {
          int n = p.require_int("n");
          int conc = p.optional_int("c", 1);
          return std::make_unique<Hypercube>(n, conc);
        }}},
      {"flatbutterfly",
       {{"n", "extent"},
        {"c"},
        [](const std::string&, Params& p) -> std::unique_ptr<Topology> {
          int n = p.require_int("n");
          int extent = p.require_int("extent");
          int conc = p.optional_int("c", 0);
          return std::make_unique<FlattenedButterfly>(n, extent, conc);
        }}},
      // ---- Section 2/7 comparison topologies --------------------------------
      // Randomized constructions carry their seed in the spec, so the string
      // alone reproduces the instance (and, via exp::point_seed, its traffic).
      {"dln",
       {{"n", "k", "p"},
        {"seed"},
        [](const std::string& spec, Params& p) -> std::unique_ptr<Topology> {
          int n = p.require_int("n");
          int k = p.require_int("k");
          int conc = p.require_int("p");
          std::uint64_t seed = p.optional_seed("seed", Dln::kDefaultSeed);
          if (n < 5) fail(spec, "n must be >= 5 (ring of n routers)");
          if (k < 3 || k >= n) {
            fail(spec, "k must be in 3..n-1 (2 ring links + k-2 shortcuts "
                       "per router; got k=" + std::to_string(k) + ", n=" +
                           std::to_string(n) + ")");
          }
          if (conc < 1) fail(spec, "p must be >= 1 (endpoints per router)");
          return std::make_unique<Dln>(n, k, conc, seed);
        }}},
      {"longhop",
       {{"n", "extra"},
        {"p", "seed"},
        [](const std::string& spec, Params& p) -> std::unique_ptr<Topology> {
          int n = p.require_int("n");
          int extra = p.require_int("extra");
          int conc = p.optional_int("p", 1);
          std::uint64_t seed = p.optional_seed("seed", LongHop::kDefaultSeed);
          if (n < 3 || n > 20) {
            fail(spec, "n must be in 3..20 (routers = 2^n; larger Cayley "
                       "graphs exceed the simulator's scale)");
          }
          if (extra < 0 || extra >= (1 << n) - n) {
            fail(spec, "extra must be in 0.." + std::to_string((1 << n) - n - 1) +
                           " (long-hop generators beyond the " +
                           std::to_string(n) + " basis ones; the feasible "
                           "maximum is lower still — the balanced-weight "
                           "candidate pool, reported by make() when "
                           "exceeded)");
          }
          if (conc < 1) fail(spec, "p must be >= 1 (endpoints per router)");
          return std::make_unique<LongHop>(n, extra, conc, seed);
        }}},
      {"augmented",
       {{"extra"},
        {"q", "p", "seed", "base"},
        [](const std::string& spec, Params& p) -> std::unique_ptr<Topology> {
          int extra = p.require_int("extra");
          std::uint64_t seed = p.optional_seed("seed", AugmentedTopology::kDefaultSeed);
          if (extra < 1) {
            fail(spec, "extra must be >= 1 (spare ports carrying random "
                       "cables on top of the base topology)");
          }
          // Two spellings of the base: base=<spec> augments any registry
          // topology (',' spelled ';' inside the value); the legacy
          // q=/p= shorthand augments a Slim Fly. Exactly one is required.
          std::string base_spec = p.optional_str("base", "");
          if (!base_spec.empty()) {
            if (p.has("q") || p.has("p")) {
              fail(spec, "base= cannot be combined with q/p (those "
                         "describe the implicit Slim Fly base; fold them "
                         "into the base spec instead)");
            }
            // The base is a temporary: AugmentedTopology copies the
            // packaging (racks, concentration) it needs and owns its own
            // graph.
            auto base = make(translate_base_spec(base_spec));
            return std::make_unique<AugmentedTopology>(
                *base, extra, /*intra_rack_only=*/false, seed);
          }
          if (!p.has("q")) {
            fail(spec, "missing required key \"q\" (or base=<spec> to "
                       "augment any registry topology)");
          }
          int q = p.require_int("q");
          int conc = p.optional_int("p", 0);
          sf::SlimFlyMMS base(q, conc);
          return std::make_unique<AugmentedTopology>(
              base, extra, /*intra_rack_only=*/false, seed);
        },
        {"base"}}},
  };
  return table;
}

/// Value-syntax check shared by validate_spec and the Params readers: every
/// numeric value is canonical decimal digits ("seed" up to 2^64-1, "dims"
/// 'x'-separated, the rest up to INT_MAX); keys the family declares in
/// FamilyInfo::string_keys are exempt. Running this in validate_spec means
/// non-canonical values ("n=+6", "dims= 8x8", "seed=007") are rejected even
/// on paths that never construct — e.g. `sweep --emit-config` — so emitted
/// suites always round-trip.
void check_value_syntax(const std::string& spec, const FamilyInfo& info,
                        const std::string& key, const std::string& value) {
  for (const char* s : info.string_keys) {
    if (key == s) return;
  }
  if (key == "dims") {
    parse_dims(spec, key, value);
  } else if (key == "seed") {
    to_u64(spec, key, value, std::numeric_limits<std::uint64_t>::max());
  } else {
    to_int(spec, key, value);
  }
}

}  // namespace

ParsedSpec parse_spec(const std::string& spec) {
  ParsedSpec parsed;
  auto colon = spec.find(':');
  parsed.family = spec.substr(0, colon);
  if (parsed.family.empty()) fail(spec, "empty family name");
  if (colon == std::string::npos) return parsed;

  const std::string params_str = spec.substr(colon + 1);
  // getline would silently drop a trailing empty segment, leaving one
  // instance with two spellings ("hypercube:n=6," vs "hypercube:n=6") that
  // hash to different per-point streams — same hazard as non-canonical
  // digits, so reject it here.
  if (params_str.empty()) fail(spec, "empty parameter list after ':'");
  if (params_str.back() == ',') fail(spec, "trailing ','");

  std::stringstream ss(params_str);
  std::string pair;
  while (std::getline(ss, pair, ',')) {
    auto eq = pair.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == pair.size()) {
      fail(spec, "malformed key=value pair \"" + pair + "\"");
    }
    std::string key = pair.substr(0, eq);
    if (parsed.params.count(key)) {
      fail(spec, "duplicate key \"" + key + "\"");
    }
    parsed.params[key] = pair.substr(eq + 1);
  }
  return parsed;
}

std::unique_ptr<Topology> make(const std::string& spec) {
  validate_spec(spec);  // catch structural errors before the (possibly
                        // minutes-long) construction below
  ParsedSpec parsed = parse_spec(spec);
  auto it = factories().find(parsed.family);
  Params params(spec, std::move(parsed.params));
  // Semantic errors thrown inside a constructor ("q must be a prime power",
  // matching exhaustion) don't know which spec asked for them; prefix the
  // spec so a 30-series suite failure names the offending cell. Messages
  // already carrying the spec (the factories' own fail() calls) pass
  // through untouched.
  auto with_spec = [&](const char* what) {
    std::string msg = what;
    if (msg.find(spec) != std::string::npos) return msg;
    return "topology spec \"" + spec + "\": " + msg;
  };
  try {
    auto topo = it->second.make(spec, params);
    params.reject_leftovers();
    return topo;
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(with_spec(e.what()));
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(with_spec(e.what()));
  }
}

void validate_spec(const std::string& spec) {
  ParsedSpec parsed = parse_spec(spec);
  auto it = factories().find(parsed.family);
  if (it == factories().end()) fail(spec, "unknown topology family");
  const FamilyInfo& info = it->second;
  for (const char* key : info.required) {
    if (!parsed.params.count(key)) {
      fail(spec, "missing required key \"" + std::string(key) + "\"");
    }
  }
  for (const auto& [key, value] : parsed.params) {
    auto known = [&](const std::vector<const char*>& keys) {
      return std::any_of(keys.begin(), keys.end(),
                         [&](const char* k) { return key == k; });
    };
    if (!known(info.required) && !known(info.optional)) {
      fail(spec, "unknown key \"" + key + "\"");
    }
    check_value_syntax(spec, info, key, value);
  }
  // augmented's conditional requirements: exactly one of base=<spec> (any
  // registry topology, validated recursively) or the legacy q= Slim Fly
  // shorthand; p= only concretizes the latter.
  auto base_it = parsed.params.find("base");
  if (base_it != parsed.params.end()) {
    if (parsed.params.count("q") || parsed.params.count("p")) {
      fail(spec, "base= cannot be combined with q/p (those describe the "
                 "implicit Slim Fly base; fold them into the base spec "
                 "instead)");
    }
    validate_spec(translate_base_spec(base_it->second));
  } else if (parsed.family == "augmented" && !parsed.params.count("q")) {
    fail(spec, "missing required key \"q\" (or base=<spec> to augment any "
               "registry topology)");
  }
}

bool is_registered(const std::string& family) {
  return factories().count(family) != 0;
}

std::vector<std::string> registry_names() {
  std::vector<std::string> names;
  for (const auto& [name, factory] : factories()) names.push_back(name);
  return names;
}

std::vector<std::string> example_specs() {
  return {"slimfly:q=5",         "dragonfly:p=2,a=4,h=2",
          "fattree:k=4",         "torus:dims=4x4x4",
          "hypercube:n=6",       "flatbutterfly:n=2,extent=4",
          "dln:n=36,k=6,p=2",    "longhop:n=5,extra=2",
          "augmented:q=5,extra=2"};
}

std::string family_of(const Topology& topo) {
  if (dynamic_cast<const sf::SlimFlyMMS*>(&topo)) return "slimfly";
  if (dynamic_cast<const Dragonfly*>(&topo)) return "dragonfly";
  if (dynamic_cast<const FatTree3*>(&topo)) return "fattree";
  if (dynamic_cast<const Torus*>(&topo)) return "torus";
  if (dynamic_cast<const Hypercube*>(&topo)) return "hypercube";
  if (dynamic_cast<const FlattenedButterfly*>(&topo)) return "flatbutterfly";
  if (dynamic_cast<const Dln*>(&topo)) return "dln";
  if (dynamic_cast<const LongHop*>(&topo)) return "longhop";
  if (dynamic_cast<const AugmentedTopology*>(&topo)) return "augmented";
  return "";
}

}  // namespace slimfly::topo
