#include "topo/registry.hpp"

#include <algorithm>
#include <functional>
#include <sstream>
#include <stdexcept>

#include "sf/mms.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/flatbutterfly.hpp"
#include "topo/hypercube.hpp"
#include "topo/torus.hpp"

namespace slimfly::topo {
namespace {

[[noreturn]] void fail(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("topology spec \"" + spec + "\": " + why);
}

int to_int(const std::string& spec, const std::string& key,
           const std::string& value) {
  try {
    std::size_t pos = 0;
    int v = std::stoi(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    fail(spec, "key \"" + key + "\" needs an integer, got \"" + value + "\"");
  }
}

/// Consumes params[key]; spec strings must not carry unknown keys, so every
/// factory pulls what it understands and then calls reject_leftovers().
class Params {
 public:
  Params(const std::string& spec, SpecParams params)
      : spec_(spec), params_(std::move(params)) {}

  int require_int(const std::string& key) {
    auto it = params_.find(key);
    if (it == params_.end()) fail(spec_, "missing required key \"" + key + "\"");
    int v = to_int(spec_, key, it->second);
    params_.erase(it);
    return v;
  }

  int optional_int(const std::string& key, int fallback) {
    auto it = params_.find(key);
    if (it == params_.end()) return fallback;
    int v = to_int(spec_, key, it->second);
    params_.erase(it);
    return v;
  }

  std::string optional_str(const std::string& key, std::string fallback) {
    auto it = params_.find(key);
    if (it == params_.end()) return fallback;
    std::string v = it->second;
    params_.erase(it);
    return v;
  }

  /// "8x8x8" -> {8, 8, 8}.
  std::vector<int> require_dims(const std::string& key) {
    auto it = params_.find(key);
    if (it == params_.end()) fail(spec_, "missing required key \"" + key + "\"");
    const std::string& value = it->second;
    std::vector<int> dims;
    std::size_t start = 0;
    while (true) {
      std::size_t sep = value.find('x', start);
      std::string part = value.substr(start, sep - start);
      if (part.empty()) fail(spec_, "malformed dims \"" + value + "\"");
      dims.push_back(to_int(spec_, key, part));
      if (sep == std::string::npos) break;
      start = sep + 1;
    }
    params_.erase(it);
    return dims;
  }

  void reject_leftovers() const {
    if (params_.empty()) return;
    fail(spec_, "unknown key \"" + params_.begin()->first + "\"");
  }

 private:
  const std::string& spec_;
  SpecParams params_;
};

using Factory =
    std::function<std::unique_ptr<Topology>(const std::string& spec, Params&)>;

/// Factory plus the key names it understands, so specs can be structurally
/// validated without paying for construction (validate_spec below).
struct FamilyInfo {
  std::vector<const char*> required;
  std::vector<const char*> optional;
  Factory make;
};

const std::map<std::string, FamilyInfo>& factories() {
  static const std::map<std::string, FamilyInfo> table = {
      {"slimfly",
       {{"q"},
        {"p"},
        [](const std::string&, Params& p) -> std::unique_ptr<Topology> {
          int q = p.require_int("q");
          int conc = p.optional_int("p", 0);
          return std::make_unique<sf::SlimFlyMMS>(q, conc);
        }}},
      {"dragonfly",
       {{"p", "a", "h"},
        {"g"},
        [](const std::string&, Params& p) -> std::unique_ptr<Topology> {
          int conc = p.require_int("p");
          int a = p.require_int("a");
          int h = p.require_int("h");
          int g = p.optional_int("g", a * h + 1);
          return std::make_unique<Dragonfly>(conc, a, h, g);
        }}},
      {"fattree",
       {{"k"},
        {"variant"},
        [](const std::string& spec, Params& p) -> std::unique_ptr<Topology> {
          int k = p.require_int("k");
          std::string variant = p.optional_str("variant", "paperslim");
          if (variant == "paperslim")
            return std::make_unique<FatTree3>(k, FatTreeVariant::PaperSlim);
          if (variant == "classic")
            return std::make_unique<FatTree3>(k, FatTreeVariant::Classic);
          fail(spec, "variant must be classic or paperslim, got \"" + variant +
                         "\"");
        }}},
      {"torus",
       {{"dims"},
        {"c"},
        [](const std::string&, Params& p) -> std::unique_ptr<Topology> {
          auto dims = p.require_dims("dims");
          int conc = p.optional_int("c", 1);
          return std::make_unique<Torus>(std::move(dims), conc);
        }}},
      {"hypercube",
       {{"n"},
        {"c"},
        [](const std::string&, Params& p) -> std::unique_ptr<Topology> {
          int n = p.require_int("n");
          int conc = p.optional_int("c", 1);
          return std::make_unique<Hypercube>(n, conc);
        }}},
      {"flatbutterfly",
       {{"n", "extent"},
        {"c"},
        [](const std::string&, Params& p) -> std::unique_ptr<Topology> {
          int n = p.require_int("n");
          int extent = p.require_int("extent");
          int conc = p.optional_int("c", 0);
          return std::make_unique<FlattenedButterfly>(n, extent, conc);
        }}},
  };
  return table;
}

}  // namespace

ParsedSpec parse_spec(const std::string& spec) {
  ParsedSpec parsed;
  auto colon = spec.find(':');
  parsed.family = spec.substr(0, colon);
  if (parsed.family.empty()) fail(spec, "empty family name");
  if (colon == std::string::npos) return parsed;

  std::stringstream ss(spec.substr(colon + 1));
  std::string pair;
  while (std::getline(ss, pair, ',')) {
    auto eq = pair.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == pair.size()) {
      fail(spec, "malformed key=value pair \"" + pair + "\"");
    }
    std::string key = pair.substr(0, eq);
    if (parsed.params.count(key)) {
      fail(spec, "duplicate key \"" + key + "\"");
    }
    parsed.params[key] = pair.substr(eq + 1);
  }
  return parsed;
}

std::unique_ptr<Topology> make(const std::string& spec) {
  validate_spec(spec);  // catch structural errors before the (possibly
                        // minutes-long) construction below
  ParsedSpec parsed = parse_spec(spec);
  auto it = factories().find(parsed.family);
  Params params(spec, std::move(parsed.params));
  auto topo = it->second.make(spec, params);
  params.reject_leftovers();
  return topo;
}

void validate_spec(const std::string& spec) {
  ParsedSpec parsed = parse_spec(spec);
  auto it = factories().find(parsed.family);
  if (it == factories().end()) fail(spec, "unknown topology family");
  const FamilyInfo& info = it->second;
  for (const char* key : info.required) {
    if (!parsed.params.count(key)) {
      fail(spec, "missing required key \"" + std::string(key) + "\"");
    }
  }
  for (const auto& [key, value] : parsed.params) {
    auto known = [&](const std::vector<const char*>& keys) {
      return std::any_of(keys.begin(), keys.end(),
                         [&](const char* k) { return key == k; });
    };
    if (!known(info.required) && !known(info.optional)) {
      fail(spec, "unknown key \"" + key + "\"");
    }
  }
}

bool is_registered(const std::string& family) {
  return factories().count(family) != 0;
}

std::vector<std::string> registry_names() {
  std::vector<std::string> names;
  for (const auto& [name, factory] : factories()) names.push_back(name);
  return names;
}

std::vector<std::string> example_specs() {
  return {"slimfly:q=5",         "dragonfly:p=2,a=4,h=2",
          "fattree:k=4",         "torus:dims=4x4x4",
          "hypercube:n=6",       "flatbutterfly:n=2,extent=4"};
}

std::string family_of(const Topology& topo) {
  if (dynamic_cast<const sf::SlimFlyMMS*>(&topo)) return "slimfly";
  if (dynamic_cast<const Dragonfly*>(&topo)) return "dragonfly";
  if (dynamic_cast<const FatTree3*>(&topo)) return "fattree";
  if (dynamic_cast<const Torus*>(&topo)) return "torus";
  if (dynamic_cast<const Hypercube*>(&topo)) return "hypercube";
  if (dynamic_cast<const FlattenedButterfly*>(&topo)) return "flatbutterfly";
  return "";
}

}  // namespace slimfly::topo
