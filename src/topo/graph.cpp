#include "topo/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace slimfly {

Graph::Graph(int num_vertices) {
  if (num_vertices < 0) throw std::invalid_argument("Graph: negative size");
  adjacency_.resize(static_cast<std::size_t>(num_vertices));
}

int Graph::check(int v) const {
  if (v < 0 || v >= num_vertices()) {
    throw std::out_of_range("Graph: vertex out of range");
  }
  return v;
}

void Graph::add_edge(int u, int v) {
  check(u);
  check(v);
  if (u == v) throw std::invalid_argument("Graph: self-loop rejected");
  adjacency_[static_cast<std::size_t>(u)].push_back(v);
  adjacency_[static_cast<std::size_t>(v)].push_back(u);
  finalized_ = false;
}

void Graph::finalize() {
  num_edges_ = 0;
  for (auto& list : adjacency_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    num_edges_ += static_cast<std::int64_t>(list.size());
  }
  num_edges_ /= 2;
  finalized_ = true;
}

bool Graph::has_edge(int u, int v) const {
  if (!finalized_) throw std::logic_error("Graph::has_edge before finalize");
  const auto& list = adjacency_[static_cast<std::size_t>(check(u))];
  return std::binary_search(list.begin(), list.end(), check(v));
}

std::vector<std::pair<int, int>> Graph::edges() const {
  if (!finalized_) throw std::logic_error("Graph::edges before finalize");
  std::vector<std::pair<int, int>> result;
  result.reserve(static_cast<std::size_t>(num_edges_));
  for (int u = 0; u < num_vertices(); ++u) {
    for (int v : adjacency_[static_cast<std::size_t>(u)]) {
      if (u < v) result.emplace_back(u, v);
    }
  }
  return result;
}

int Graph::max_degree() const {
  int best = 0;
  for (const auto& list : adjacency_) {
    best = std::max(best, static_cast<int>(list.size()));
  }
  return best;
}

bool Graph::is_regular() const {
  if (adjacency_.empty()) return true;
  std::size_t d = adjacency_.front().size();
  for (const auto& list : adjacency_) {
    if (list.size() != d) return false;
  }
  return true;
}

}  // namespace slimfly
