#pragma once
// Graph serialization: the paper ships "a library of practical topologies
// ... that can readily be used to construct efficient Slim Fly networks";
// this module provides that artifact — plain edge lists (loadable by
// Booksim/SST-style simulators and InfiniBand subnet managers) and Graphviz
// DOT for visualisation, plus the inverse parser.

#include <iosfwd>
#include <string>

#include "topo/graph.hpp"
#include "topo/topology.hpp"

namespace slimfly {

/// Writes "u v" per line, preceded by a header comment:
///   # slimfly-edgelist v1
///   # vertices <n> edges <m>
void write_edge_list(std::ostream& os, const Graph& g);

/// Parses the write_edge_list format (comments tolerated anywhere);
/// throws std::invalid_argument on malformed input.
Graph read_edge_list(std::istream& is);

/// Graphviz DOT with one node per router; endpoint-bearing routers are
/// annotated with their concentration.
void write_dot(std::ostream& os, const Topology& topo);

/// Convenience file wrappers (throw std::runtime_error on I/O failure).
void save_edge_list(const std::string& path, const Graph& g);
Graph load_edge_list(const std::string& path);

}  // namespace slimfly
