#include "topo/dragonfly.hpp"

#include <stdexcept>
#include <vector>

namespace slimfly {

Graph Dragonfly::build(int a, int h, int g) {
  if (a < 2 || h < 1 || g < 2) throw std::invalid_argument("Dragonfly: bad parameters");
  if (g > a * h + 1) {
    throw std::invalid_argument("Dragonfly: g exceeds a*h + 1 (not enough global ports)");
  }
  Graph graph(a * g);

  // Local cliques.
  for (int grp = 0; grp < g; ++grp) {
    for (int i = 0; i < a; ++i) {
      for (int j = i + 1; j < a; ++j) {
        graph.add_edge(grp * a + i, grp * a + j);
      }
    }
  }

  // Global links: every peer-group pair receives `base` links; the remaining
  // rem = a*h - base*(g-1) ports per group are spent one per pair along a
  // circulant (i, i+s) pattern so each group ends with exactly a*h global
  // links and each router with exactly h.
  int ports = a * h;
  int base = ports / (g - 1);
  int rem = ports - base * (g - 1);
  std::vector<int> next_port(static_cast<std::size_t>(g), 0);
  // `offset` rotates the router chosen within each group per round: a full
  // round advances every group's counter by a multiple of a when a | g-1,
  // which would otherwise reuse identical router pairs (and the simple
  // graph would silently drop the duplicates).
  auto add_global = [&](int gi, int gj, int offset) {
    int& pi = next_port[static_cast<std::size_t>(gi)];
    int& pj = next_port[static_cast<std::size_t>(gj)];
    int ri = gi * a + ((pi + offset) % a);
    int rj = gj * a + ((pj + offset) % a);
    ++pi;
    ++pj;
    graph.add_edge(ri, rj);
  };
  // Rotation is only sound when a full round advances every group's
  // counter by a multiple of a (otherwise it breaks h-regularity);
  // in the other case the counter drifts naturally and no rotation is
  // needed to avoid repeated router pairs.
  bool rotate = (g - 1) % a == 0;
  for (int round = 0; round < base; ++round) {
    for (int gi = 0; gi < g; ++gi) {
      for (int gj = gi + 1; gj < g; ++gj) add_global(gi, gj, rotate ? round : 0);
    }
  }
  if (rem > 0) {
    if (rem % 2 == 1 && g % 2 == 1) {
      throw std::invalid_argument(
          "Dragonfly: leftover global ports cannot form a regular pattern "
          "(odd remainder with odd group count)");
    }
    // Each stride s < g/2 visits g distinct pairs {gi, gi+s}, consuming two
    // ports per group (one as the left member, one as the right). Strides
    // never reach g/2 because rem < g-1.
    // Constant offset here: within the extras each group's counter walks
    // every router exactly once, so a per-stride offset would fold distinct
    // routers onto each other and push one router past h global links.
    for (int s = 1; s <= rem / 2; ++s) {
      for (int gi = 0; gi < g; ++gi) add_global(gi, (gi + s) % g, rotate ? base : 0);
    }
    if (rem % 2 == 1) {
      for (int gi = 0; gi < g / 2; ++gi) add_global(gi, gi + g / 2, rotate ? base : 0);
    }
  }
  graph.finalize();
  return graph;
}

Dragonfly::Dragonfly(int p, int a, int h, int g)
    : Topology(build(a, h, g), p, a * g), a_(a), h_(h), g_(g) {
  set_routers_per_rack(a);  // one group per rack (paper Section VI-B3e)
}

std::unique_ptr<Dragonfly> Dragonfly::balanced(int p) {
  int a = 2 * p;
  int h = p;
  return std::make_unique<Dragonfly>(p, a, h, a * h + 1);
}

std::string Dragonfly::name() const {
  return "Dragonfly (p=" + std::to_string(concentration()) +
         ", a=" + std::to_string(a_) + ", h=" + std::to_string(h_) +
         ", g=" + std::to_string(g_) + ")";
}

}  // namespace slimfly
