#include "topo/fattree.hpp"

#include <stdexcept>

namespace slimfly {

// Switch numbering: [0, pods*p) edge, [pods*p, 2*pods*p) agg,
// [2*pods*p, 2*pods*p + p^2) core. Edge e of pod i = i*p + e;
// agg j of pod i = pods*p + i*p + j; core (j, l) = 2*pods*p + j*p + l —
// core (j, l) connects to up-port l of aggregation switch j in every pod.
Graph FatTree3::build(int p, int pods) {
  if (p < 2) throw std::invalid_argument("FatTree3: p must be >= 2");
  int edge_base = 0;
  int agg_base = pods * p;
  int core_base = 2 * pods * p;
  Graph g(core_base + p * p);
  for (int i = 0; i < pods; ++i) {
    for (int e = 0; e < p; ++e) {
      for (int j = 0; j < p; ++j) {
        g.add_edge(edge_base + i * p + e, agg_base + i * p + j);
      }
    }
    for (int j = 0; j < p; ++j) {
      for (int l = 0; l < p; ++l) {
        g.add_edge(agg_base + i * p + j, core_base + j * p + l);
      }
    }
  }
  g.finalize();
  return g;
}

FatTree3::FatTree3(int p, FatTreeVariant variant)
    : Topology(build(p, variant == FatTreeVariant::Classic ? 2 * p : p),
               p,
               (variant == FatTreeVariant::Classic ? 2 * p : p) * p),
      p_(p),
      pods_(variant == FatTreeVariant::Classic ? 2 * p : p),
      variant_(variant) {
  // Paper Section VI-B3c: routers are installed in a central row; the
  // packaging below groups one pod per rack plus core racks.
  set_routers_per_rack(2 * p);
}

std::string FatTree3::name() const {
  return std::string("Fat tree 3-level (") +
         (variant_ == FatTreeVariant::Classic ? "classic" : "paper-slim") +
         ", p=" + std::to_string(p_) + ")";
}

int FatTree3::level(int r) const {
  if (r < pods_ * p_) return 0;
  if (r < 2 * pods_ * p_) return 1;
  return 2;
}

int FatTree3::pod(int r) const {
  int lvl = level(r);
  if (lvl == 2) return -1;
  return (r - lvl * pods_ * p_) / p_;
}

int FatTree3::index_in_level(int r) const {
  int lvl = level(r);
  if (lvl == 2) return r - 2 * pods_ * p_;
  return (r - lvl * pods_ * p_) % p_;
}

}  // namespace slimfly
