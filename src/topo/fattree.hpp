#pragma once
// Three-level fat tree (FT-3; Tianhe-2 class).
//
// Two variants are provided because the paper is internally inconsistent
// (see DESIGN.md §2.4):
//  * Classic    — standard k-ary fat tree built from radix-2p switches:
//                 2p pods, p edge + p aggregation switches per pod,
//                 p^2 cores; Nr = 5p^2, N = 2p^3 (matches the paper's text).
//  * PaperSlim  — the variant whose parameters appear in the paper's
//                 Table IV and Section V (k = 44, p = 22, Nr = 3p^2 = 1452,
//                 N = p^3 = 10648): p pods, p edge + p agg per pod, p^2
//                 cores each using only p of their ports.
//
// Edge switches are numbered first (they carry the endpoints), then
// aggregation switches, then cores; see level()/pod().

#include "topo/topology.hpp"

namespace slimfly {

enum class FatTreeVariant { Classic, PaperSlim };

class FatTree3 : public Topology {
 public:
  /// p = k/2 = endpoints per edge switch = up-links per switch.
  explicit FatTree3(int p, FatTreeVariant variant = FatTreeVariant::PaperSlim);

  std::string name() const override;
  std::string symbol() const override { return "FT-3"; }

  int p() const { return p_; }
  int pods() const { return pods_; }
  FatTreeVariant variant() const { return variant_; }

  static constexpr int kDiameter = 4;  // edge-agg-core-agg-edge hops

  /// 0 = edge, 1 = aggregation, 2 = core.
  int level(int r) const;
  /// Pod index for edge/agg switches; -1 for cores.
  int pod(int r) const;
  /// Position of switch r inside its level (and pod, for levels 0/1).
  int index_in_level(int r) const;

  int num_edge() const { return pods_ * p_; }
  int num_agg() const { return pods_ * p_; }
  int num_core() const { return p_ * p_; }

 private:
  static Graph build(int p, int pods);
  int p_;
  int pods_;
  FatTreeVariant variant_;
};

}  // namespace slimfly
