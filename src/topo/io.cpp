#include "topo/io.hpp"
#include <algorithm>

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace slimfly {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << "# slimfly-edgelist v1\n";
  os << "# vertices " << g.num_vertices() << " edges " << g.num_edges() << "\n";
  for (const auto& [u, v] : g.edges()) {
    os << u << ' ' << v << '\n';
  }
}

Graph read_edge_list(std::istream& is) {
  std::string line;
  int vertices = -1;
  std::vector<std::pair<int, int>> edges;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hdr(line);
      std::string hash, word;
      hdr >> hash >> word;
      if (word == "vertices") {
        long long m = 0;
        if (!(hdr >> vertices >> word >> m) || word != "edges") {
          throw std::invalid_argument("edge list: malformed header");
        }
      }
      continue;
    }
    std::istringstream ls(line);
    int u = 0, v = 0;
    if (!(ls >> u >> v)) throw std::invalid_argument("edge list: malformed line: " + line);
    edges.emplace_back(u, v);
  }
  if (vertices < 0) {
    // No header: infer the vertex count.
    for (auto [u, v] : edges) vertices = std::max({vertices, u, v});
    ++vertices;
  }
  Graph g(vertices);
  for (auto [u, v] : edges) g.add_edge(u, v);
  g.finalize();
  return g;
}

void write_dot(std::ostream& os, const Topology& topo) {
  os << "graph \"" << topo.name() << "\" {\n";
  os << "  // " << topo.num_routers() << " routers, "
     << topo.num_endpoints() << " endpoints\n";
  for (int r = 0; r < topo.num_routers(); ++r) {
    os << "  r" << r;
    if (topo.endpoints_at(r) > 0) {
      os << " [label=\"r" << r << " (+" << topo.endpoints_at(r) << " ep)\"]";
    }
    os << ";\n";
  }
  for (const auto& [u, v] : topo.graph().edges()) {
    os << "  r" << u << " -- r" << v << ";\n";
  }
  os << "}\n";
}

void save_edge_list(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  write_edge_list(os, g);
  if (!os) throw std::runtime_error("write failed: " + path);
}

Graph load_edge_list(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return read_edge_list(is);
}

}  // namespace slimfly
