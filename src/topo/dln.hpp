#pragma once
// DLN random shortcut topology (Koibuchi et al., ISCA'12).
//
// A ring of Nr routers augmented with random shortcut links until every
// router reaches the target network radix k'. The paper denotes these
// DLN-2-y (2 ring links + y shortcuts per router). Construction uses a
// seeded RNG so results are reproducible; a configuration is retried with a
// fresh permutation when the random matching dead-ends (rare).

#include "topo/topology.hpp"

namespace slimfly {

class Dln : public Topology {
 public:
  /// Shared by the constructor default and the registry's seed= fallback,
  /// so "dln:..." without seed= and a direct Dln(...) build the same graph.
  static constexpr std::uint64_t kDefaultSeed = 1;

  /// Ring of `num_routers` with shortcuts up to degree `network_radix`.
  /// network_radix >= 3; concentration p per the paper's balancing rule.
  Dln(int num_routers, int network_radix, int concentration,
      std::uint64_t seed = kDefaultSeed);

  std::string name() const override;
  std::string symbol() const override { return "DLN"; }

  int target_radix() const { return k_net_; }

 private:
  static Graph build(int n, int k_net, std::uint64_t seed);
  int k_net_;
};

}  // namespace slimfly
