#pragma once
// Flattened butterfly (Kim, Dally, Abts, ISCA'07).
//
// Routers form an n-dimensional array with extent c per dimension; routers
// that differ in exactly one coordinate are directly connected (each
// dimension is a clique). Network radix k' = n*(c-1); the balanced
// concentration is p = c, matching the paper's p = floor((k+3)/4) for the
// 3-level variant (k = 4c-3).

#include "topo/topology.hpp"

namespace slimfly {

class FlattenedButterfly : public Topology {
 public:
  /// n_dims >= 1, extent >= 2; concentration 0 means "balanced" (= extent).
  FlattenedButterfly(int n_dims, int extent, int concentration = 0);

  std::string name() const override;
  std::string symbol() const override {
    return "FBF-" + std::to_string(n_dims_ + 1);  // levels = dims + 1
  }

  int n_dims() const { return n_dims_; }
  int extent() const { return extent_; }
  int diameter() const { return n_dims_; }

 private:
  static Graph build(int n_dims, int extent);
  int n_dims_;
  int extent_;
};

}  // namespace slimfly
