#include "topo/augmented.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace slimfly {

Graph AugmentedTopology::build(const Topology& base, int extra_ports,
                               bool intra_rack_only, std::uint64_t seed) {
  if (extra_ports < 1) {
    throw std::invalid_argument("AugmentedTopology: extra_ports must be >= 1");
  }
  const Graph& g = base.graph();
  int n = g.num_vertices();
  Rng rng(seed);

  // Stub matching as in the DLN construction, rejecting existing edges and
  // (optionally) cross-rack pairs. Unpairable leftovers are dropped.
  std::vector<int> stubs;
  for (int v = 0; v < n; ++v) {
    for (int s = 0; s < extra_ports; ++s) stubs.push_back(v);
  }
  std::shuffle(stubs.begin(), stubs.end(), rng);

  std::vector<std::vector<int>> extra(static_cast<std::size_t>(n));
  auto compatible = [&](int u, int v) {
    if (u == v || g.has_edge(u, v)) return false;
    if (intra_rack_only && base.rack_of_router(u) != base.rack_of_router(v)) {
      return false;
    }
    const auto& list = extra[static_cast<std::size_t>(u)];
    return std::find(list.begin(), list.end(), v) == list.end();
  };
  while (stubs.size() >= 2) {
    int u = stubs.back();
    stubs.pop_back();
    for (std::size_t i = stubs.size(); i-- > 0;) {
      int v = stubs[i];
      if (compatible(u, v)) {
        stubs.erase(stubs.begin() + static_cast<std::ptrdiff_t>(i));
        extra[static_cast<std::size_t>(u)].push_back(v);
        extra[static_cast<std::size_t>(v)].push_back(u);
        break;
      }
    }
  }

  Graph out(n);
  for (const auto& [u, v] : g.edges()) out.add_edge(u, v);
  for (int v = 0; v < n; ++v) {
    for (int u : extra[static_cast<std::size_t>(v)]) {
      if (v < u) out.add_edge(v, u);
    }
  }
  out.finalize();
  return out;
}

AugmentedTopology::AugmentedTopology(const Topology& base, int extra_ports,
                                     bool intra_rack_only, std::uint64_t seed)
    : Topology(build(base, extra_ports, intra_rack_only, seed),
               base.concentration(), base.num_endpoint_routers()),
      base_name_(base.name()),
      base_symbol_(base.symbol()),
      extra_ports_(extra_ports),
      num_racks_(base.num_racks()) {
  rack_of_.resize(static_cast<std::size_t>(base.num_routers()));
  for (int r = 0; r < base.num_routers(); ++r) {
    rack_of_[static_cast<std::size_t>(r)] = base.rack_of_router(r);
  }
}

std::string AugmentedTopology::name() const {
  return base_name_ + " + " + std::to_string(extra_ports_) + " random ports";
}

}  // namespace slimfly
