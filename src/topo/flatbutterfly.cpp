#include "topo/flatbutterfly.hpp"

#include <stdexcept>

namespace slimfly {

namespace {

long long ipow(int base, int exp) {
  long long r = 1;
  for (int i = 0; i < exp; ++i) r *= base;
  return r;
}

}  // namespace

Graph FlattenedButterfly::build(int n_dims, int extent) {
  if (n_dims < 1) throw std::invalid_argument("FlattenedButterfly: n_dims < 1");
  if (extent < 2) throw std::invalid_argument("FlattenedButterfly: extent < 2");
  long long total = ipow(extent, n_dims);
  if (total > 2'000'000) {
    throw std::invalid_argument("FlattenedButterfly: too large");
  }
  int n = static_cast<int>(total);
  Graph g(n);
  // stride[i] = extent^i; changing coordinate i by d changes the id by d*stride.
  for (int v = 0; v < n; ++v) {
    long long stride = 1;
    int rest = v;
    for (int dim = 0; dim < n_dims; ++dim) {
      int coord = rest % extent;
      rest /= extent;
      for (int other = coord + 1; other < extent; ++other) {
        g.add_edge(v, v + static_cast<int>((other - coord) * stride));
      }
      stride *= extent;
    }
  }
  g.finalize();
  return g;
}

FlattenedButterfly::FlattenedButterfly(int n_dims, int extent, int concentration)
    : Topology(build(n_dims, extent),
               concentration == 0 ? extent : concentration,
               static_cast<int>(ipow(extent, n_dims))),
      n_dims_(n_dims),
      extent_(extent) {
  // Paper Section VI-B3d: p routers per rack, groups form an ideal square.
  set_routers_per_rack(extent);
}

std::string FlattenedButterfly::name() const {
  return "Flattened Butterfly " + std::to_string(n_dims_ + 1) + "-level (c=" +
         std::to_string(extent_) + ")";
}

}  // namespace slimfly
