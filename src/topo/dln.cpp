#include "topo/dln.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace slimfly {

Graph Dln::build(int n, int k_net, std::uint64_t seed) {
  if (n < 5) throw std::invalid_argument("Dln: need at least 5 routers");
  if (k_net < 3 || k_net >= n) throw std::invalid_argument("Dln: bad network radix");
  Rng rng(seed);

  // Random near-regular matching of shortcut stubs: every router owns
  // k_net - 2 stubs; shuffle and pair them, rejecting self/parallel/ring
  // edges. A handful of stubs can remain unpairable; they are dropped, which
  // leaves a few routers one link short (the original DLN paper tolerates
  // the same slack).
  for (int attempt = 0; attempt < 32; ++attempt) {
    Graph g(n);
    for (int v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);

    std::vector<std::vector<int>> extra(static_cast<std::size_t>(n));
    std::vector<int> stubs;
    for (int v = 0; v < n; ++v) {
      for (int s = 0; s < k_net - 2; ++s) stubs.push_back(v);
    }
    std::shuffle(stubs.begin(), stubs.end(), rng);

    auto is_adjacent = [&](int u, int v) {
      if (u == v) return true;
      if ((u + 1) % n == v || (v + 1) % n == u) return true;
      const auto& eu = extra[static_cast<std::size_t>(u)];
      return std::find(eu.begin(), eu.end(), v) != eu.end();
    };

    // Greedy pairing with local retry: take the first stub, scan for a
    // compatible partner.
    std::size_t failures = 0;
    while (stubs.size() >= 2) {
      int u = stubs.back();
      stubs.pop_back();
      bool paired = false;
      for (std::size_t i = stubs.size(); i-- > 0;) {
        int v = stubs[i];
        if (!is_adjacent(u, v)) {
          stubs.erase(stubs.begin() + static_cast<std::ptrdiff_t>(i));
          extra[static_cast<std::size_t>(u)].push_back(v);
          extra[static_cast<std::size_t>(v)].push_back(u);
          paired = true;
          break;
        }
      }
      if (!paired) ++failures;
    }
    if (failures > static_cast<std::size_t>(n) / 20 + 2) continue;  // too ragged, retry

    for (int v = 0; v < n; ++v) {
      for (int u : extra[static_cast<std::size_t>(v)]) {
        if (v < u) g.add_edge(v, u);
      }
    }
    g.finalize();
    return g;
  }
  // Every retry dead-ended: the (n, k) pair leaves too little matching
  // freedom (e.g. the shortcuts must tile the ring complement exactly).
  // Name the full configuration so the error maps back to the spec string.
  throw std::runtime_error(
      "Dln: no near-regular shortcut matching after 32 attempts (n=" +
      std::to_string(n) + ", k=" + std::to_string(k_net) + ", seed=" +
      std::to_string(seed) +
      ") — the (n, k) pair is infeasible or too tight; widen n or lower k");
}

Dln::Dln(int num_routers, int network_radix, int concentration, std::uint64_t seed)
    : Topology(build(num_routers, network_radix, seed), concentration, num_routers),
      k_net_(network_radix) {}

std::string Dln::name() const {
  return "DLN random shortcuts (Nr=" + std::to_string(num_routers()) +
         ", k'=" + std::to_string(k_net_) + ")";
}

}  // namespace slimfly
