#pragma once
// String-keyed topology registry: builds any topology in the evaluation from
// a declarative spec string, so experiments can be data instead of code.
//
// Spec grammar:  family[:key=value[,key=value...]]
//   "slimfly:q=19"            Slim Fly MMS, balanced concentration
//   "slimfly:q=19,p=18"       oversubscribed variant (Section V-E)
//   "dragonfly:p=7,a=14,h=7"  g defaults to a*h+1 (maximum palmtree size)
//   "dragonfly:a=7,p=7,h=7,g=50"
//   "fattree:k=22"            three-level fat tree (k == p, endpoints/edge
//                             switch); variant=classic|paperslim
//   "torus:dims=8x8x8"        k-ary n-D torus; optional c=<concentration>
//   "hypercube:n=10"          binary n-cube; optional c=<concentration>
//   "flatbutterfly:n=3,extent=8"  optional c (0 = balanced = extent)
//   "dln:n=50,k=7,p=4"        DLN random shortcuts: ring of n routers, k-2
//                             shortcuts each, p endpoints; optional seed=<u64>
//   "longhop:n=6,extra=2"     Long Hop Cayley graph over Z_2^n with `extra`
//                             code generators; optional p, seed
//   "augmented:q=19,extra=4"  Slim Fly MMS(q) plus `extra` random cables per
//                             router (Section VII-A); optional p, seed
//
// Randomized families (dln, longhop, augmented) default their seed, so a
// spec string always identifies one concrete instance; pass seed=<u64> for
// another draw. Values are canonical decimal digits — no signs, whitespace
// or radix prefixes — so specs round-trip through `sweep --emit-config`.
//
// Unknown families and unknown or missing keys throw std::invalid_argument
// with a message naming the offending spec.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace slimfly::topo {

/// key=value parameters of a parsed spec string.
using SpecParams = std::map<std::string, std::string>;

struct ParsedSpec {
  std::string family;
  SpecParams params;
};

/// Splits "family:k=v,..." without validating the family or keys.
ParsedSpec parse_spec(const std::string& spec);

/// Builds the topology a spec describes. Throws std::invalid_argument on an
/// unknown family, a malformed/unknown key, or parameters the topology
/// constructor rejects. One exception to the type: dln's randomized
/// matching throws std::runtime_error when a feasible-looking (n, k) pair
/// exhausts its retries (the message names n, k, and seed).
std::unique_ptr<Topology> make(const std::string& spec);

/// Cheap structural validation without constructing anything: the family is
/// registered, every required key is present, no unknown keys appear, and
/// every value is syntactically canonical (plain digits in range — so specs
/// round-trip through `sweep --emit-config` without ever being built).
/// Lets callers fail fast before a minutes-long paper-scale build; semantic
/// value errors (bad radix/degree pairs, non-prime-power q) still surface
/// at make(). Throws std::invalid_argument on violation.
void validate_spec(const std::string& spec);

/// True when `family` names a registered topology family.
bool is_registered(const std::string& family);

/// All registered family names, sorted.
std::vector<std::string> registry_names();

/// One small, valid example spec per registered family (test/help fodder).
std::vector<std::string> example_specs();

/// Registry family name for a constructed topology ("slimfly", "torus", ...),
/// or "" for types outside the registry.
std::string family_of(const Topology& topo);

}  // namespace slimfly::topo
