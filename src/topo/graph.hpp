#pragma once
// Undirected simple graph used for all router-level topologies.
//
// Construction is two-phase: add_edge() collects edges, finalize() freezes
// the graph into sorted adjacency lists (enabling O(log d) has_edge and
// cache-friendly BFS). All analysis and simulation code operates on
// finalized graphs.

#include <cstdint>
#include <utility>
#include <vector>

namespace slimfly {

class Graph {
 public:
  Graph() = default;
  explicit Graph(int num_vertices);

  /// Adds the undirected edge {u, v}. Self-loops are rejected; duplicate
  /// edges are silently deduplicated at finalize() time.
  void add_edge(int u, int v);

  /// Sorts adjacency lists and removes duplicate edges. Idempotent.
  void finalize();

  int num_vertices() const { return static_cast<int>(adjacency_.size()); }
  /// Number of undirected edges (valid after finalize()).
  std::int64_t num_edges() const { return num_edges_; }

  int degree(int v) const {
    return static_cast<int>(adjacency_[static_cast<std::size_t>(check(v))].size());
  }
  const std::vector<int>& neighbors(int v) const {
    return adjacency_[static_cast<std::size_t>(check(v))];
  }

  /// O(log degree(u)); requires finalize().
  bool has_edge(int u, int v) const;

  /// All edges as (u, v) pairs with u < v; requires finalize().
  std::vector<std::pair<int, int>> edges() const;

  /// Maximum vertex degree (0 for empty graph).
  int max_degree() const;
  /// True iff every vertex has the same degree.
  bool is_regular() const;

  bool finalized() const { return finalized_; }

 private:
  int check(int v) const;

  std::vector<std::vector<int>> adjacency_;
  std::int64_t num_edges_ = 0;
  bool finalized_ = false;
};

}  // namespace slimfly
