#pragma once
// Base class for all network topologies compared in the paper (Table II).
//
// A topology is a finalized router graph plus the endpoint attachment rule
// and the physical packaging hints (racks, folded cabling) consumed by the
// cost model. Endpoint-bearing routers are always numbered first, each
// carrying exactly `concentration()` endpoints, so endpoint e attaches to
// router e / p everywhere.

#include <memory>
#include <string>
#include <vector>

#include "topo/graph.hpp"

namespace slimfly {

class Topology {
 public:
  virtual ~Topology() = default;

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  /// Router-level connectivity (finalized).
  const Graph& graph() const { return graph_; }

  int num_routers() const { return graph_.num_vertices(); }
  /// Endpoints per endpoint-bearing router (p in the paper).
  int concentration() const { return concentration_; }
  /// Routers that carry endpoints (numbered 0 .. count-1).
  int num_endpoint_routers() const { return endpoint_routers_; }
  /// Total endpoints N = p * num_endpoint_routers().
  int num_endpoints() const { return concentration_ * endpoint_routers_; }

  /// Router that endpoint e attaches to.
  int endpoint_router(int e) const { return e / concentration_; }
  /// Endpoints attached to router r (0 for pure transit routers).
  int endpoints_at(int r) const {
    return r < endpoint_routers_ ? concentration_ : 0;
  }
  /// First endpoint id attached to router r (valid when endpoints_at > 0).
  int first_endpoint(int r) const { return r * concentration_; }

  /// Router radix k = network ports + endpoint ports (max over routers).
  int router_radix() const;
  /// Network radix k' (max router degree in the graph).
  int network_radix() const { return graph_.max_degree(); }

  virtual std::string name() const = 0;
  /// Short symbol used in the paper's tables (SF, DF, FT-3, ...).
  virtual std::string symbol() const = 0;

  // ---- Physical packaging (cost model, Section VI) -----------------------

  /// Number of racks the routers are packaged into.
  virtual int num_racks() const;
  /// Rack that router r is mounted in.
  virtual int rack_of_router(int r) const;
  /// Tori are physically folded so every cable stays short and electrical.
  virtual bool folded_electrical() const { return false; }

 protected:
  /// `endpoint_routers` <= graph.num_vertices(); the graph must be finalized.
  Topology(Graph graph, int concentration, int endpoint_routers);

  /// Default packaging: fixed number of routers per rack.
  void set_routers_per_rack(int routers_per_rack);

 private:
  Graph graph_;
  int concentration_ = 1;
  int endpoint_routers_ = 0;
  int routers_per_rack_ = 0;
};

}  // namespace slimfly
