#pragma once
// Long Hop topology, hypercube-augmenting variant (LH-HC; Tomic [56],
// Section E-S-3).
//
// Tomic constructs Cayley graphs over Z_2^n whose generator sets come from
// optimal error-correcting codes; the LH-HC variant keeps the n hypercube
// basis generators and adds L code-derived "long hop" generators, raising
// bisection bandwidth to ~3N/2 and cutting the diameter to 4-6.
//
// SUBSTITUTION (see DESIGN.md §2.3): the exact code tables are not public,
// so the extra generators are chosen here by a deterministic greedy search
// over a candidate pool (complemented basis vectors, the all-ones vector,
// and seeded random balanced vectors), picking at each step the generator
// that minimizes the diameter and then maximizes the bisection-crossing
// count. This reproduces LH-HC's published diameter range and its
// bisection-bandwidth and cost scaling, which is all the paper's
// evaluation uses.

#include "topo/topology.hpp"

namespace slimfly {

class LongHop : public Topology {
 public:
  /// Shared by the constructor default and the registry's seed= fallback.
  static constexpr std::uint64_t kDefaultSeed = 7;

  /// 2^n_dims routers with n_dims + extra_generators network links each.
  LongHop(int n_dims, int extra_generators, int concentration = 1,
          std::uint64_t seed = kDefaultSeed);

  std::string name() const override;
  std::string symbol() const override { return "LH-HC"; }

  int n_dims() const { return n_dims_; }
  const std::vector<unsigned>& generators() const { return generators_; }

 private:
  struct Built {
    Graph graph;
    std::vector<unsigned> generators;
  };
  static Built build(int n_dims, int extra, std::uint64_t seed);
  explicit LongHop(Built b, int n_dims, int concentration);

  int n_dims_;
  std::vector<unsigned> generators_;
};

}  // namespace slimfly
