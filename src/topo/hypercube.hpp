#pragma once
// Binary hypercube (HC; NASA Pleiades class). Diameter log2(Nr), degree n.

#include <memory>

#include "topo/topology.hpp"

namespace slimfly {

class Hypercube : public Topology {
 public:
  /// n-dimensional cube with 2^n routers.
  explicit Hypercube(int n_dims, int concentration = 1);

  std::string name() const override { return "Hypercube " + std::to_string(n_dims_) + "D"; }
  std::string symbol() const override { return "HC"; }

  int n_dims() const { return n_dims_; }
  int diameter() const { return n_dims_; }

 private:
  static Graph build(int n_dims);
  int n_dims_;
};

}  // namespace slimfly
