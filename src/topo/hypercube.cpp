#include "topo/hypercube.hpp"

#include <stdexcept>

namespace slimfly {

Graph Hypercube::build(int n_dims) {
  if (n_dims < 1 || n_dims > 24) {
    throw std::invalid_argument("Hypercube: n_dims out of range [1, 24]");
  }
  int n = 1 << n_dims;
  Graph g(n);
  for (int v = 0; v < n; ++v) {
    for (int b = 0; b < n_dims; ++b) {
      int u = v ^ (1 << b);
      if (v < u) g.add_edge(v, u);
    }
  }
  g.finalize();
  return g;
}

Hypercube::Hypercube(int n_dims, int concentration)
    : Topology(build(n_dims), concentration, 1 << n_dims), n_dims_(n_dims) {
  set_routers_per_rack(32);
}

}  // namespace slimfly
