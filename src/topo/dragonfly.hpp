#pragma once
// Dragonfly (Kim, Dally, Scott, Abts, ISCA'08; Cray Cascade class).
//
// g groups of a routers; routers inside a group form a clique; each router
// has h global ports. For the canonical maximum size g = a*h + 1 every pair
// of groups is joined by exactly one global link (palmtree arrangement).
// Smaller g (used by the paper's Table IV case study) distributes the a*h
// global ports of each group evenly over the g-1 peer groups: `base` links
// to every peer plus one extra link along a circulant pattern, keeping every
// router at exactly h global links.
//
// The balanced configuration of the paper is a = 2p = 2h (Section III).

#include "topo/topology.hpp"

namespace slimfly {

class Dragonfly : public Topology {
 public:
  /// p endpoints/router, a routers/group, h global ports/router, g groups.
  /// Requires 2 <= g <= a*h + 1 and (a*h) % (g-1) produced links realizable
  /// (checked at construction).
  Dragonfly(int p, int a, int h, int g);

  /// Balanced Dragonfly a = 2p = 2h at maximum size g = a*h + 1.
  static std::unique_ptr<Dragonfly> balanced(int p);

  std::string name() const override;
  std::string symbol() const override { return "DF"; }

  int a() const { return a_; }
  int h() const { return h_; }
  int groups() const { return g_; }
  int group_of(int r) const { return r / a_; }
  int local_index(int r) const { return r % a_; }

  static constexpr int kDiameter = 3;  // local-global-local

 private:
  static Graph build(int a, int h, int g);
  int a_, h_, g_;
};

}  // namespace slimfly
