#include "topo/torus.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace slimfly {

namespace {

int product(const std::vector<int>& dims) {
  int n = 1;
  for (int d : dims) n *= d;
  return n;
}

}  // namespace

Graph Torus::build(const std::vector<int>& dims) {
  if (dims.empty()) throw std::invalid_argument("Torus: no dimensions");
  for (int d : dims) {
    if (d < 3) throw std::invalid_argument("Torus: extent must be >= 3");
  }
  int n = product(dims);
  Graph g(n);
  // Mixed-radix coordinates: vertex id = sum coords[i] * stride[i].
  std::vector<int> stride(dims.size());
  stride[0] = 1;
  for (std::size_t i = 1; i < dims.size(); ++i) {
    stride[i] = stride[i - 1] * dims[i - 1];
  }
  for (int v = 0; v < n; ++v) {
    int rest = v;
    for (std::size_t i = 0; i < dims.size(); ++i) {
      int coord = rest % dims[i];
      rest /= dims[i];
      int up = (coord + 1) % dims[i];
      int neighbor = v + (up - coord) * stride[i];
      g.add_edge(v, neighbor);
    }
  }
  g.finalize();
  return g;
}

Torus::Torus(std::vector<int> dims, int concentration)
    : Topology(build(dims), concentration, product(dims)), dims_(std::move(dims)) {
  // One "rack" per column of the first two dimensions is physically
  // irrelevant for tori: the folded layout keeps all cables electrical, so
  // the default packaging suffices.
}

std::string Torus::name() const {
  std::string s = "Torus " + std::to_string(dims_.size()) + "D (";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) s += "x";
    s += std::to_string(dims_[i]);
  }
  return s + ")";
}

std::string Torus::symbol() const {
  return "T" + std::to_string(dims_.size()) + "D";
}

int Torus::diameter() const {
  int d = 0;
  for (int extent : dims_) d += extent / 2;
  return d;
}

std::unique_ptr<Torus> Torus::make_cubic(int n_dims, int min_routers,
                                         int concentration) {
  if (n_dims < 1) throw std::invalid_argument("Torus: n_dims < 1");
  int extent = 3;
  auto count = [&](int e) {
    long long n = 1;
    for (int i = 0; i < n_dims; ++i) n *= e;
    return n;
  };
  while (count(extent) < min_routers) ++extent;
  return std::make_unique<Torus>(
      std::vector<int>(static_cast<std::size_t>(n_dims), extent),
      concentration);
}

}  // namespace slimfly
