#include "topo/longhop.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace slimfly {

namespace {

/// BFS eccentricity of vertex 0 in the Cayley graph over Z_2^n with the
/// given generators. Cayley graphs are vertex-transitive, so this equals
/// the diameter.
int cayley_diameter(int n_dims, const std::vector<unsigned>& gens) {
  int n = 1 << n_dims;
  std::vector<int> dist(static_cast<std::size_t>(n), -1);
  std::vector<int> frontier{0};
  dist[0] = 0;
  int depth = 0;
  while (!frontier.empty()) {
    std::vector<int> next;
    for (int v : frontier) {
      for (unsigned g : gens) {
        int u = v ^ static_cast<int>(g);
        if (dist[static_cast<std::size_t>(u)] < 0) {
          dist[static_cast<std::size_t>(u)] = depth + 1;
          next.push_back(u);
        }
      }
    }
    frontier = std::move(next);
    ++depth;
  }
  return depth - 1;
}

int popcount(unsigned x) { return __builtin_popcount(x); }

}  // namespace

LongHop::Built LongHop::build(int n_dims, int extra, std::uint64_t seed) {
  if (n_dims < 3 || n_dims > 20) {
    throw std::invalid_argument("LongHop: n_dims out of range [3, 20]");
  }
  if (extra < 0 || extra >= (1 << n_dims) - n_dims) {
    throw std::invalid_argument("LongHop: bad extra generator count");
  }
  unsigned mask = (n_dims == 32) ? ~0u : ((1u << n_dims) - 1);

  std::vector<unsigned> gens;
  for (int b = 0; b < n_dims; ++b) gens.push_back(1u << b);

  // Candidate pool: all-ones, complemented basis vectors, and seeded random
  // balanced vectors (weight ~ n/2). Long generators shrink distances the
  // most; balanced ones cross any coordinate bisection with probability 1/2.
  std::vector<unsigned> pool;
  pool.push_back(mask);
  for (int b = 0; b < n_dims; ++b) pool.push_back(mask ^ (1u << b));
  Rng rng(seed);
  while (pool.size() < static_cast<std::size_t>(extra) * 8 + 16) {
    unsigned v = rng.next_u32() & mask;
    if (popcount(v) >= n_dims / 2 && v != 0) pool.push_back(v);
  }
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  pool.erase(std::remove_if(pool.begin(), pool.end(),
                            [&](unsigned v) {
                              return std::find(gens.begin(), gens.end(), v) != gens.end();
                            }),
             pool.end());
  // The balanced-weight filter caps the distinct candidates well below the
  // 2^n - n - 1 structural ceiling (e.g. 42 for n=6), so a large `extra`
  // can exhaust the pool; the greedy loop below must never index past it.
  if (pool.size() < static_cast<std::size_t>(extra)) {
    throw std::invalid_argument(
        "LongHop: only " + std::to_string(pool.size()) +
        " distinct long-hop generator candidates exist for n=" +
        std::to_string(n_dims) + ", seed=" + std::to_string(seed) +
        "; requested extra=" + std::to_string(extra));
  }

  // Greedy: add the candidate with the lowest resulting diameter, breaking
  // ties toward higher Hamming weight (better bisection crossing).
  for (int step = 0; step < extra; ++step) {
    int best_diameter = std::numeric_limits<int>::max();
    int best_weight = -1;
    std::size_t best_idx = pool.size();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      gens.push_back(pool[i]);
      int d = cayley_diameter(n_dims, gens);
      gens.pop_back();
      int w = popcount(pool[i]);
      if (d < best_diameter || (d == best_diameter && w > best_weight)) {
        best_diameter = d;
        best_weight = w;
        best_idx = i;
      }
    }
    gens.push_back(pool[best_idx]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best_idx));
  }

  int n = 1 << n_dims;
  Graph g(n);
  for (int v = 0; v < n; ++v) {
    for (unsigned gen : gens) {
      int u = v ^ static_cast<int>(gen);
      if (v < u) g.add_edge(v, u);
    }
  }
  g.finalize();
  return Built{std::move(g), std::move(gens)};
}

LongHop::LongHop(Built b, int n_dims, int concentration)
    : Topology(std::move(b.graph), concentration, 1 << n_dims),
      n_dims_(n_dims),
      generators_(std::move(b.generators)) {
  set_routers_per_rack(32);
}

LongHop::LongHop(int n_dims, int extra_generators, int concentration,
                 std::uint64_t seed)
    : LongHop(build(n_dims, extra_generators, seed), n_dims, concentration) {}

std::string LongHop::name() const {
  return "Long Hop hypercube (n=" + std::to_string(n_dims_) + ", +L=" +
         std::to_string(static_cast<int>(generators_.size()) - n_dims_) + ")";
}

}  // namespace slimfly
