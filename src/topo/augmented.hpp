#pragma once
// Random-channel augmentation (paper Section VII-A): when deployed routers
// have more ports than the Slim Fly construction uses (e.g. 48-port Aries
// routers for the k=43 design), the spare ports can carry extra random
// cables "using strategies presented in [42], [52]", improving latency and
// bandwidth. The paper leaves the analysis to future research; this module
// implements it: a wrapper that adds a random near-regular set of extra
// links on top of any base topology.

#include <memory>

#include "topo/topology.hpp"

namespace slimfly {

class AugmentedTopology : public Topology {
 public:
  /// Shared by the constructor default and the registry's seed= fallback.
  static constexpr std::uint64_t kDefaultSeed = 11;

  /// Adds `extra_ports` random links per router on top of `base`'s graph
  /// (near-regular random matching, deduplicated against existing links).
  /// Packaging (racks, concentration) is inherited from the base topology;
  /// pass intra_rack_only=true to restrict new cables to rack-local pairs
  /// (the paper's cheap copper-only option).
  AugmentedTopology(const Topology& base, int extra_ports,
                    bool intra_rack_only = false,
                    std::uint64_t seed = kDefaultSeed);

  std::string name() const override;
  std::string symbol() const override { return base_symbol_ + "+rnd"; }

  int num_racks() const override { return num_racks_; }
  int rack_of_router(int r) const override {
    return rack_of_[static_cast<std::size_t>(r)];
  }

  int extra_ports() const { return extra_ports_; }

 private:
  static Graph build(const Topology& base, int extra_ports, bool intra_rack_only,
                     std::uint64_t seed);

  std::string base_name_;
  std::string base_symbol_;
  int extra_ports_;
  int num_racks_;
  std::vector<int> rack_of_;
};

}  // namespace slimfly
