#pragma once
// k-ary n-dimensional torus (T3D, T5D in the paper; Cray Gemini / BlueGene/Q
// class networks). Concentration is 1 following the paper's low-radix
// topology setup (Section III, "Topology parameters").

#include <memory>
#include <vector>

#include "topo/topology.hpp"

namespace slimfly {

class Torus : public Topology {
 public:
  /// dims[i] is the extent of dimension i (each >= 2; extent 2 would create
  /// duplicate wrap links, which the simple-graph model deduplicates, so we
  /// require >= 3 to keep degree exactly 2*n).
  Torus(std::vector<int> dims, int concentration = 1);

  std::string name() const override;
  std::string symbol() const override;
  bool folded_electrical() const override { return true; }

  const std::vector<int>& dims() const { return dims_; }

  /// Torus diameter: sum over dims of floor(extent/2).
  int diameter() const;

  /// Nearly cubic n-dimensional torus with at least `min_routers` routers.
  static std::unique_ptr<Torus> make_cubic(int n_dims, int min_routers,
                                           int concentration = 1);

 private:
  static Graph build(const std::vector<int>& dims);
  std::vector<int> dims_;
};

}  // namespace slimfly
