#pragma once
// Router cost model (paper Section VI-B2, Figure 11b): linear in radix,
// fitted by the paper to Mellanox IB FDR10 switches. SerDes dominate, so
// cost scales with ports; the negative intercept reflects amortized chip
// development cost.

namespace slimfly::cost {

struct RouterCostModel {
  double per_port = 350.4;   ///< $ per port (paper regression)
  double intercept = -892.3; ///< $

  /// Cost of one router with the given radix, floored at one port's cost.
  double cost(int radix) const {
    double c = per_port * radix + intercept;
    return c > per_port ? c : per_port;
  }
};

}  // namespace slimfly::cost
