#include "cost/cables.hpp"

namespace slimfly::cost {

CableModel cable_fdr10() {
  // Paper Section VI-B1: f_elec(x) = 0.4079x + 0.5771, f_opt(x) = 0.0919x +
  // 2.7452 [$/Gb/s], 40 Gb/s links.
  return CableModel{"Mellanox IB FDR10 40Gb/s QSFP", 40.0,
                    0.4079, 0.5771, 0.0919, 2.7452};
}

CableModel cable_qdr56() {
  // Fitted to Figure 13a (56 Gb/s, lower $/Gb/s, crossover near 8 m).
  return CableModel{"Mellanox IB QDR56 56Gb/s QSFP", 56.0,
                    0.2600, 0.4100, 0.0640, 1.9800};
}

CableModel cable_elpeus10() {
  // Fitted to Figure 12a (10 Gb/s, higher $/Gb/s, crossover near 5 m).
  return CableModel{"Elpeus Ethernet 10Gb/s SFP+", 10.0,
                    1.0500, 0.9000, 0.2100, 5.1000};
}

}  // namespace slimfly::cost
