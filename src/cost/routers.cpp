// RouterCostModel is header-only; this TU anchors the target and hosts the
// sanity constants used in tests.
#include "cost/routers.hpp"

namespace slimfly::cost {

// Intentionally empty.

}  // namespace slimfly::cost
