#pragma once
// Cable cost models (paper Section VI-B1, Figures 11a/12a/13a): cost per
// Gb/s as a linear function of length, separately for electric (intra-rack)
// and optical (inter-rack) cables. The FDR10 coefficients are the paper's
// regression values verbatim; the other families are fitted to the paper's
// plots (the paper reports the choice shifts relative topology costs by
// only ~1-2%, see DESIGN.md §2.3).

#include <string>

namespace slimfly::cost {

struct CableModel {
  std::string name;
  double rate_gbps = 0.0;
  double electric_slope = 0.0;      ///< $/Gb/s per meter
  double electric_intercept = 0.0;  ///< $/Gb/s
  double optical_slope = 0.0;
  double optical_intercept = 0.0;

  /// Cost in $ of one electric cable of the given length.
  double electric_cost(double meters) const {
    return (electric_slope * meters + electric_intercept) * rate_gbps;
  }
  /// Cost in $ of one optical cable of the given length.
  double optical_cost(double meters) const {
    return (optical_slope * meters + optical_intercept) * rate_gbps;
  }
  /// Length at which optical becomes cheaper than electric.
  double crossover_meters() const {
    return (optical_intercept - electric_intercept) /
           (electric_slope - optical_slope);
  }
};

/// Mellanox InfiniBand FDR10 40 Gb/s QSFP (paper's primary model).
CableModel cable_fdr10();
/// Mellanox InfiniBand QDR 56 Gb/s QSFP (Figure 13 variant; fitted).
CableModel cable_qdr56();
/// Elpeus Ethernet 10 Gb/s SFP+ (Figure 12 variant; fitted).
CableModel cable_elpeus10();

}  // namespace slimfly::cost
