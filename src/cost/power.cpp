#include "cost/power.hpp"

namespace slimfly::cost {

double PowerModel::network_watts(const Topology& topo) const {
  double ports = 0.0;
  for (int r = 0; r < topo.num_routers(); ++r) {
    ports += topo.graph().degree(r) + topo.endpoints_at(r);
  }
  return ports * watts_per_port();
}

}  // namespace slimfly::cost
