#pragma once
// Full network cost (paper Section VI-B, Figures 11c/12c/13c, Table IV):
// router cost plus cable cost under the physical layout.

#include <string>

#include "cost/cables.hpp"
#include "cost/layout.hpp"
#include "cost/power.hpp"
#include "cost/routers.hpp"
#include "topo/topology.hpp"

namespace slimfly::cost {

struct NetworkCost {
  std::string topology;
  int num_endpoints = 0;
  int num_routers = 0;
  int router_radix = 0;
  std::int64_t electric_cables = 0;
  std::int64_t fiber_cables = 0;
  double router_cost = 0.0;
  double cable_cost = 0.0;
  double total_cost = 0.0;
  double cost_per_endpoint = 0.0;
  double watts_total = 0.0;
  double watts_per_endpoint = 0.0;
};

/// Prices a topology with the given cable family; router radix per router
/// is its in-use port count (degree + attached endpoints).
NetworkCost evaluate_cost(const Topology& topo, const CableModel& cables,
                          const RouterCostModel& routers = {},
                          const PowerModel& power = {});

}  // namespace slimfly::cost
