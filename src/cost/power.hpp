#pragma once
// Energy model (paper Section VI-C): each router port has 4 lanes, one
// SerDes per lane at ~0.7 W. Network power is the sum over routers of
// ports-in-use times 2.8 W; per-node power divides by N. Reproduces the
// paper's Table IV values (SF ~8 W/node, DF ~10.9 W/node) analytically.

#include "topo/topology.hpp"

namespace slimfly::cost {

struct PowerModel {
  double watts_per_lane = 0.7;
  int lanes_per_port = 4;

  double watts_per_port() const { return watts_per_lane * lanes_per_port; }

  /// Total network power: every in-use router port (network links plus
  /// endpoint uplinks) burns one port's worth of SerDes.
  double network_watts(const Topology& topo) const;

  double watts_per_endpoint(const Topology& topo) const {
    return network_watts(topo) / topo.num_endpoints();
  }
};

}  // namespace slimfly::cost
