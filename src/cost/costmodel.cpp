#include "cost/costmodel.hpp"

namespace slimfly::cost {

NetworkCost evaluate_cost(const Topology& topo, const CableModel& cables,
                          const RouterCostModel& routers, const PowerModel& power) {
  NetworkCost cost;
  cost.topology = topo.symbol();
  cost.num_endpoints = topo.num_endpoints();
  cost.num_routers = topo.num_routers();
  cost.router_radix = topo.router_radix();

  for (int r = 0; r < topo.num_routers(); ++r) {
    cost.router_cost +=
        routers.cost(topo.graph().degree(r) + topo.endpoints_at(r));
  }

  CableSummary cables_summary = enumerate_cables(topo, cables);
  cost.electric_cables = cables_summary.electric_count;
  cost.fiber_cables = cables_summary.fiber_count;
  cost.cable_cost = cables_summary.total_cost();

  cost.total_cost = cost.router_cost + cost.cable_cost;
  cost.cost_per_endpoint = cost.total_cost / cost.num_endpoints;
  cost.watts_total = power.network_watts(topo);
  cost.watts_per_endpoint = cost.watts_total / cost.num_endpoints;
  return cost;
}

}  // namespace slimfly::cost
