#pragma once
// Physical cabling model (paper Section VI-B): racks of 1x1x2 m arranged in
// a near-square grid, Manhattan cable lengths, 1 m average intra-rack
// cables, +2 m overhead per inter-rack (global) cable. Tori are folded and
// use only short electric cables. Endpoint uplinks are 1 m electric.

#include <cstdint>

#include "cost/cables.hpp"
#include "topo/topology.hpp"

namespace slimfly::cost {

/// Near-square grid placement of racks; rack i sits at (i % cols, i / cols).
struct RackGrid {
  int racks = 0;
  int cols = 0;

  explicit RackGrid(int num_racks);
  /// Manhattan distance between two racks in meters (1 m rack pitch).
  double distance_m(int rack_a, int rack_b) const;
};

struct CableSummary {
  std::int64_t electric_count = 0;  ///< router-router electric cables
  std::int64_t fiber_count = 0;     ///< router-router optical cables
  std::int64_t endpoint_count = 0;  ///< endpoint uplinks (electric)
  double electric_cost = 0.0;       ///< $ incl. endpoint uplinks
  double fiber_cost = 0.0;          ///< $
  double total_cost() const { return electric_cost + fiber_cost; }
};

/// Enumerates all cables of a topology under its rack packaging and prices
/// them with the given cable model.
CableSummary enumerate_cables(const Topology& topo, const CableModel& cables);

/// Overhead added to every inter-rack cable (paper: 2 m).
inline constexpr double kGlobalCableOverheadM = 2.0;
/// Average intra-rack cable length (paper: ~1 m).
inline constexpr double kIntraRackCableM = 1.0;
/// Folded-torus electric cable length (short constant by design).
inline constexpr double kFoldedCableM = 2.0;

}  // namespace slimfly::cost
