#include "cost/layout.hpp"

#include <cmath>
#include <stdexcept>

namespace slimfly::cost {

RackGrid::RackGrid(int num_racks) : racks(num_racks) {
  if (num_racks < 1) throw std::invalid_argument("RackGrid: need >= 1 rack");
  cols = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(num_racks))));
}

double RackGrid::distance_m(int rack_a, int rack_b) const {
  int ax = rack_a % cols, ay = rack_a / cols;
  int bx = rack_b % cols, by = rack_b / cols;
  return static_cast<double>(std::abs(ax - bx) + std::abs(ay - by));
}

CableSummary enumerate_cables(const Topology& topo, const CableModel& cables) {
  CableSummary summary;
  RackGrid grid(topo.num_racks());

  for (const auto& [u, v] : topo.graph().edges()) {
    int rack_u = topo.rack_of_router(u);
    int rack_v = topo.rack_of_router(v);
    if (topo.folded_electrical()) {
      ++summary.electric_count;
      summary.electric_cost += cables.electric_cost(kFoldedCableM);
    } else if (rack_u == rack_v) {
      ++summary.electric_count;
      summary.electric_cost += cables.electric_cost(kIntraRackCableM);
    } else {
      ++summary.fiber_count;
      double len = grid.distance_m(rack_u, rack_v) + kGlobalCableOverheadM;
      summary.fiber_cost += cables.optical_cost(len);
    }
  }

  // Endpoint uplinks: one short electric cable per endpoint.
  summary.endpoint_count = topo.num_endpoints();
  summary.electric_cost +=
      static_cast<double>(topo.num_endpoints()) * cables.electric_cost(kIntraRackCableM);
  return summary;
}

}  // namespace slimfly::cost
