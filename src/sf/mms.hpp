#pragma once
// Slim Fly over McKay–Miller–Širáň graphs (paper Section II-B) — the
// primary contribution of the paper.
//
// For a prime power q = 4w + delta (delta in {-1, 0, +1}):
//   routers  (s, x, y) in {0,1} x GF(q) x GF(q)      Nr = 2 q^2
//   (0,x,y) ~ (0,x,y')  iff  y - y' in X             (Eq. 1)
//   (1,m,c) ~ (1,m,c')  iff  c - c' in X'            (Eq. 2)
//   (0,x,y) ~ (1,m,c)   iff  y = m x + c             (Eq. 3)
//   network radix k' = (3q - delta)/2, diameter 2.
//
// Balanced concentration (full global bandwidth, Section II-B2) is
// p = ceil(k'/2); pass a different p for over/undersubscribed variants
// (Section V-E).

#include <memory>

#include "gf/gf.hpp"
#include "sf/generators.hpp"
#include "topo/topology.hpp"

namespace slimfly::sf {

class SlimFlyMMS : public Topology {
 public:
  /// concentration 0 selects the balanced p = ceil(k'/2).
  explicit SlimFlyMMS(int q, int concentration = 0);

  std::string name() const override;
  std::string symbol() const override { return "SF"; }

  int q() const { return q_; }
  int delta() const { return delta_; }
  /// Network radix k' = (3q - delta)/2.
  int k_net() const { return (3 * q_ - delta_) / 2; }
  /// Balanced concentration ceil(k'/2) for this q.
  static int balanced_concentration(int q);

  static constexpr int kDiameter = 2;

  /// Router id for (subgraph, x, y); subgraph in {0, 1}.
  int router_id(int subgraph, int x, int y) const {
    return subgraph * q_ * q_ + x * q_ + y;
  }
  int subgraph_of(int r) const { return r / (q_ * q_); }
  int x_of(int r) const { return (r % (q_ * q_)) / q_; }
  int y_of(int r) const { return r % q_; }

  const GeneratorSets& generators() const { return generators_; }
  const gf::Field& field() const { return field_; }

  // Physical packaging (Section VI-A): rack x pairs subgroup (0,x,*) with
  // subgroup (1,x,*) — q racks of 2q routers, 2q cables between any two
  // racks.
  int num_racks() const override { return q_; }
  int rack_of_router(int r) const override { return x_of(r); }

 private:
  struct Built {
    Graph graph;
    gf::Field field;
    GeneratorSets gens;
  };
  static Built build(int q);
  SlimFlyMMS(Built built, int q, int concentration);

  int q_;
  int delta_;
  gf::Field field_;
  GeneratorSets generators_;
};

}  // namespace slimfly::sf
