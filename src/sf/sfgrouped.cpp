#include "sf/sfgrouped.hpp"

#include <stdexcept>
#include <vector>

namespace slimfly::sf {

Graph SfGroupedDragonfly::build(int q, int h, int groups) {
  SlimFlyMMS prototype(q);
  int a = prototype.num_routers();  // routers per group
  if (h < 1) throw std::invalid_argument("SfGroupedDragonfly: h must be >= 1");
  if (groups < 2 || groups > a * h + 1) {
    throw std::invalid_argument("SfGroupedDragonfly: bad group count");
  }

  Graph g(a * groups);
  // Replicate the MMS graph in every group.
  auto edges = prototype.graph().edges();
  for (int grp = 0; grp < groups; ++grp) {
    for (const auto& [u, v] : edges) {
      g.add_edge(grp * a + u, grp * a + v);
    }
  }

  // Global links, Dragonfly-style: `base` links between every group pair
  // plus a circulant for the remainder, with a per-round router-rotation
  // offset (see topo/dragonfly.cpp for the rationale).
  int ports = a * h;
  int base = ports / (groups - 1);
  int rem = ports - base * (groups - 1);
  std::vector<int> next_port(static_cast<std::size_t>(groups), 0);
  auto add_global = [&](int gi, int gj, int offset) {
    int ri = gi * a + ((next_port[static_cast<std::size_t>(gi)] + offset) % a);
    int rj = gj * a + ((next_port[static_cast<std::size_t>(gj)] + offset) % a);
    ++next_port[static_cast<std::size_t>(gi)];
    ++next_port[static_cast<std::size_t>(gj)];
    g.add_edge(ri, rj);
  };
  // Rotation is only sound when a full round advances every group's
  // counter by a multiple of a (otherwise it breaks h-regularity);
  // in the other case the counter drifts naturally and no rotation is
  // needed to avoid repeated router pairs.
  bool rotate = (groups - 1) % a == 0;
  for (int round = 0; round < base; ++round) {
    for (int gi = 0; gi < groups; ++gi) {
      for (int gj = gi + 1; gj < groups; ++gj) add_global(gi, gj, rotate ? round : 0);
    }
  }
  if (rem > 0) {
    if (rem % 2 == 1 && groups % 2 == 1) {
      throw std::invalid_argument(
          "SfGroupedDragonfly: leftover ports cannot form a regular pattern");
    }
    for (int s = 1; s <= rem / 2; ++s) {
      for (int gi = 0; gi < groups; ++gi) add_global(gi, (gi + s) % groups, rotate ? base : 0);
    }
    if (rem % 2 == 1) {
      for (int gi = 0; gi < groups / 2; ++gi) add_global(gi, gi + groups / 2, rotate ? base : 0);
    }
  }
  g.finalize();
  return g;
}

SfGroupedDragonfly::SfGroupedDragonfly(int q, int h, int groups, int concentration)
    : Topology(build(q, h, groups),
               concentration == 0 ? SlimFlyMMS::balanced_concentration(q)
                                  : concentration,
               2 * q * q * groups),
      q_(q),
      h_(h),
      groups_(groups) {}

int SfGroupedDragonfly::rack_of_router(int r) const {
  // Rack = (group, MMS x-coordinate): the SF rack structure per group.
  int local = r % group_size();
  int x = (local % (q_ * q_)) / q_;
  return group_of(r) * q_ + x;
}

std::string SfGroupedDragonfly::name() const {
  return "SF-grouped Dragonfly (q=" + std::to_string(q_) + ", h=" +
         std::to_string(h_) + ", g=" + std::to_string(groups_) + ")";
}

}  // namespace slimfly::sf
